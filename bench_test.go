// Package bopsim_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper (regenerating a representative slice of
// it and reporting the figure's metric via b.ReportMetric), the ablation
// benches called out in DESIGN.md, and micro-benchmarks of the core data
// structures. cmd/experiments regenerates the *full* figures; these benches
// exist so `go test -bench` exercises every experiment end to end.
package bopsim_test

import (
	"fmt"
	"runtime"
	"testing"

	"bopsim/internal/core"
	"bopsim/internal/dram"
	"bopsim/internal/experiments"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sbp"
	"bopsim/internal/sim"
	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

// benchInstructions keeps each simulation slice small enough for -bench
// runs while leaving several BO learning phases per run.
const benchInstructions = 150_000

func baseOpts(workload string, cores int, page mem.PageSize) sim.Options {
	o := sim.DefaultOptions(workload)
	o.Cores = cores
	o.Page = page
	o.Instructions = benchInstructions
	return o
}

// runPair runs baseline and variant once per iteration and reports the
// variant/baseline IPC ratio (the figure's metric).
func runPair(b *testing.B, base sim.Options, variant func(sim.Options) sim.Options) {
	b.Helper()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rBase := sim.MustRun(base)
		rVar := sim.MustRun(variant(base))
		speedup = rVar.IPC / rBase.IPC
	}
	b.ReportMetric(speedup, "speedup")
}

// --- Table 1 / Table 2: configuration construction costs -----------------

func BenchmarkTable1BaselineRun(b *testing.B) {
	// One full baseline simulation (Table 1's microarchitecture end to
	// end); the metric is simulated instructions per wall-clock second.
	o := baseOpts("403.gcc", 1, mem.Page4K)
	for i := 0; i < b.N; i++ {
		sim.MustRun(o)
	}
	b.ReportMetric(float64(benchInstructions)*float64(b.N)/b.Elapsed().Seconds(), "sim-instr/s")
}

func BenchmarkTable2BOConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.New(mem.Page4K, core.DefaultParams())
	}
}

// --- Figures --------------------------------------------------------------

// BenchmarkFig2BaselineIPC measures a baseline configuration (the quantity
// Figure 2 plots) on a memory-bound and a compute-bound workload.
func BenchmarkFig2BaselineIPC(b *testing.B) {
	var ipc float64
	for i := 0; i < b.N; i++ {
		ipc = sim.MustRun(baseOpts("462.libquantum", 1, mem.Page4K)).IPC
	}
	b.ReportMetric(ipc, "IPC")
}

func BenchmarkFig3LRUvs5P(b *testing.B) {
	runPair(b, baseOpts("473.astar", 1, mem.Page4K), func(o sim.Options) sim.Options {
		o.L3Policy = "LRU"
		return o
	})
}

func BenchmarkFig3DRRIPvs5P(b *testing.B) {
	runPair(b, baseOpts("473.astar", 1, mem.Page4K), func(o sim.Options) sim.Options {
		o.L3Policy = "DRRIP"
		return o
	})
}

func BenchmarkFig4NoStridePF(b *testing.B) {
	runPair(b, baseOpts("465.tonto", 1, mem.Page4M), func(o sim.Options) sim.Options {
		o.L1PF = prefetch.Spec{Name: "none"}
		return o
	})
}

func BenchmarkFig5NoL2PF(b *testing.B) {
	runPair(b, baseOpts("462.libquantum", 1, mem.Page4K), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFNone
		return o
	})
}

func BenchmarkFig6BOvsNextLine(b *testing.B) {
	runPair(b, baseOpts("433.milc", 1, mem.Page4M), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFBO
		return o
	})
}

func BenchmarkFig7FixedOffset5(b *testing.B) {
	runPair(b, baseOpts("437.leslie3d", 1, mem.Page4K), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFOffsetD(5)
		return o
	})
}

func BenchmarkFig8OffsetSweepPoint(b *testing.B) {
	// One sweep point of Figure 8: offset 32 on the milc stand-in (a peak).
	runPair(b, baseOpts("433.milc", 1, mem.Page4M), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFOffsetD(32)
		return o
	})
}

func BenchmarkFig9BadScore10(b *testing.B) {
	runPair(b, baseOpts("429.mcf", 1, mem.Page4K), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFBO.With("badscore", "10")
		return o
	})
}

func BenchmarkFig10RR32(b *testing.B) {
	runPair(b, baseOpts("429.mcf", 1, mem.Page4K), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFBO.With("rr", "32")
		return o
	})
}

func BenchmarkFig11SBPvsBaseline(b *testing.B) {
	runPair(b, baseOpts("462.libquantum", 1, mem.Page4M), func(o sim.Options) sim.Options {
		o.L2PF = sim.PFSBP
		return o
	})
}

func BenchmarkFig12BOvsSBP(b *testing.B) {
	var speedup float64
	base := baseOpts("433.milc", 1, mem.Page4M)
	for i := 0; i < b.N; i++ {
		oSBP := base
		oSBP.L2PF = sim.PFSBP
		oBO := base
		oBO.L2PF = sim.PFBO
		speedup = sim.MustRun(oBO).IPC / sim.MustRun(oSBP).IPC
	}
	b.ReportMetric(speedup, "BO/SBP")
}

func BenchmarkFig13DRAMTraffic(b *testing.B) {
	var perKI float64
	o := baseOpts("470.lbm", 1, mem.Page4K)
	o.L2PF = sim.PFBO
	for i := 0; i < b.N; i++ {
		perKI = sim.MustRun(o).DRAMAccessesPerKI
	}
	b.ReportMetric(perKI, "DRAM-acc/KI")
}

// --- Ablations (DESIGN.md section 4) ---------------------------------------

// BenchmarkAblationRRAtIssue removes the timeliness information by writing
// the RR table at prefetch issue instead of completion; the learned offsets
// collapse toward small values and the speedup should drop versus stock BO.
func BenchmarkAblationRRAtIssue(b *testing.B) {
	var ratio float64
	base := baseOpts("462.libquantum", 1, mem.Page4M)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		abl := base
		abl.L2PF = sim.PFBO.With("rratissue", "true")
		ratio = sim.MustRun(abl).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "ablated/stock")
}

func BenchmarkAblationNoPrefetchBit(b *testing.B) {
	var ratio float64
	base := baseOpts("433.milc", 1, mem.Page4M)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		abl := base
		abl.L2PF = sim.PFBO.With("allaccess", "true")
		ratio = sim.MustRun(abl).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "ablated/stock")
}

func BenchmarkAblationDenseList(b *testing.B) {
	var ratio float64
	base := baseOpts("433.milc", 1, mem.Page4M)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		abl := base
		abl.L2PF = sim.PFBO.With("offsets", prefetch.FormatInts(prefetch.DenseOffsetList(64)))
		ratio = sim.MustRun(abl).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "ablated/stock")
}

func BenchmarkAblationNoPromotion(b *testing.B) {
	var ratio float64
	base := baseOpts("462.libquantum", 1, mem.Page4K)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		abl := stock
		abl.LatePromote = false
		ratio = sim.MustRun(abl).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "ablated/stock")
}

// --- Extensions (discussed in the paper, not evaluated there) ---------------

// BenchmarkExtensionDegreeTwo measures the degree-2 BO variant of
// section 4.3 against stock degree-1 BO.
func BenchmarkExtensionDegreeTwo(b *testing.B) {
	var ratio float64
	base := baseOpts("471.omnetpp", 1, mem.Page4K)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		ext := base
		ext.L2PF = sim.PFBO.With("degree", "2")
		ratio = sim.MustRun(ext).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "degree2/stock")
}

// BenchmarkExtensionNegativeOffsets measures BO with the candidate list
// extended to negative offsets (section 4.2).
func BenchmarkExtensionNegativeOffsets(b *testing.B) {
	var ratio float64
	base := baseOpts("433.milc", 1, mem.Page4M)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		ext := base
		ext.L2PF = sim.PFBO.With("offsets",
			prefetch.FormatInts(core.WithNegativeOffsets(prefetch.DefaultOffsetList())))
		ratio = sim.MustRun(ext).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "negatives/stock")
}

// BenchmarkExtensionAdaptiveThrottle measures the dynamic-BADSCORE
// heuristic (section 7's future-work item) on the throttling-sensitive mcf
// stand-in.
func BenchmarkExtensionAdaptiveThrottle(b *testing.B) {
	var ratio float64
	base := baseOpts("429.mcf", 1, mem.Page4K)
	for i := 0; i < b.N; i++ {
		stock := base
		stock.L2PF = sim.PFBO
		ext := base
		ext.L2PF = sim.PFBO.With("adaptive", "true")
		ratio = sim.MustRun(ext).IPC / sim.MustRun(stock).IPC
	}
	b.ReportMetric(ratio, "adaptive/stock")
}

// --- Scheduler throughput ---------------------------------------------------

// BenchmarkRunnerParallel measures sweep wall-clock through the experiment
// scheduler over a fixed job set, serial versus parallel, reporting sims/s.
// On multi-core hosts the j>1 variants should show near-linear speedup; the
// tables produced are byte-identical either way (see TestParallelMatchesSerial).
func BenchmarkRunnerParallel(b *testing.B) {
	var jobs []sim.Options
	for _, wl := range []string{"433.milc", "462.libquantum", "429.mcf", "456.hmmer"} {
		for _, page := range []mem.PageSize{mem.Page4K, mem.Page4M} {
			for _, pf := range []prefetch.Spec{sim.PFNextLine, sim.PFBO} {
				o := baseOpts(wl, 1, page)
				o.Instructions = 60_000
				o.L2PF = pf
				jobs = append(jobs, o)
			}
		}
	}
	workers := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	for _, j := range workers {
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A fresh Runner each iteration so nothing is cached.
				r := experiments.NewRunner(60_000, experiments.QuickConfigs())
				r.Workers = j
				if err := r.RunJobs(jobs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
		})
	}
}

// --- Warmup sharing (checkpoint/restore) ------------------------------------

// warmupBenchJobs is one warmup group's variant sweep: N prefetcher
// variants of one workload, all needing the same warmup leg.
func warmupBenchJobs() []sim.Options {
	var jobs []sim.Options
	for _, spec := range []prefetch.Spec{sim.PFNextLine, sim.PFBO, sim.PFSBP, sim.PFOffsetD(4)} {
		o := baseOpts("433.milc", 1, mem.Page4M)
		o.Instructions = 30_000
		o.Warmup = 120_000
		o.L2PF = spec
		jobs = append(jobs, o)
	}
	return jobs
}

// BenchmarkWarmupRepeated is the baseline cost model: every variant
// replays the full warmup before its measured region.
func BenchmarkWarmupRepeated(b *testing.B) {
	jobs := warmupBenchJobs()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(30_000, experiments.QuickConfigs())
		r.Workers = 1
		if err := r.RunJobs(jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// BenchmarkWarmupShared runs the same sweep with warmup sharing: one
// checkpointed warmup leg, every variant forked from the snapshot. The
// sims/s gap versus BenchmarkWarmupRepeated is the headline win — roughly
// the warmup fraction times (variants-1)/variants.
func BenchmarkWarmupShared(b *testing.B) {
	jobs := warmupBenchJobs()
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(30_000, experiments.QuickConfigs())
		r.Workers = 1
		r.Checkpoint = true
		r.CheckpointDir = dir
		if err := r.RunJobs(jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "sims/s")
}

// --- Micro-benchmarks -------------------------------------------------------

func BenchmarkRRTableInsertHit(b *testing.B) {
	rr := core.NewRRTable(256, 12)
	for i := 0; i < b.N; i++ {
		rr.Insert(mem.LineAddr(i))
		rr.Hit(mem.LineAddr(i - 8))
	}
}

func BenchmarkBOOnAccess(b *testing.B) {
	p := core.New(mem.Page4M, core.DefaultParams())
	for i := 0; i < b.N; i++ {
		p.OnAccess(prefetch.AccessInfo{Line: mem.LineAddr(i)})
	}
}

func BenchmarkSBPOnAccess(b *testing.B) {
	p := sbp.New(mem.Page4M, sbp.DefaultParams())
	for i := 0; i < b.N; i++ {
		p.OnAccess(prefetch.AccessInfo{Line: mem.LineAddr(i)})
	}
}

func BenchmarkBloomAddContains(b *testing.B) {
	f := sbp.NewBloom(2048, 3)
	for i := 0; i < b.N; i++ {
		f.Add(mem.LineAddr(i))
		f.Contains(mem.LineAddr(i - 3))
	}
}

func BenchmarkDRAMStream(b *testing.B) {
	m := dram.New(dram.DefaultParams(1))
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		for m.EnqueueRead(mem.LineAddr(i), 0, dram.Pending()) == nil {
			m.Tick(now)
			now++
		}
		m.Tick(now)
		now++
	}
}

func BenchmarkWorkloadGen(b *testing.B) {
	w := trace.MustWorkload("433.milc", 1)
	for i := 0; i < b.N; i++ {
		w.Next()
	}
}

func BenchmarkGeoMean(b *testing.B) {
	xs := make([]float64, 29)
	for i := range xs {
		xs[i] = 1 + float64(i)/100
	}
	for i := 0; i < b.N; i++ {
		stats.GeoMean(xs)
	}
}
