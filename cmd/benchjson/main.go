// Command benchjson captures a benchmark trajectory point: it runs
// `go test -bench` in the repository root, parses the standard benchmark
// output (including -benchmem columns and custom ReportMetric metrics such
// as sim-instr/s), and writes one BENCH_NNNN_<label>.json file per capture.
// The committed BENCH_*.json sequence is the repo's perf trajectory; CI
// appends short-budget points and fails the build when throughput regresses
// more than -maxloss versus the last committed point (see -check).
//
// Usage:
//
//	benchjson -label eventdriven [-bench regex] [-benchtime 3x] [-out DIR]
//	benchjson -check [-bench regex] [-benchtime 1x] [-maxloss 0.20]
//
// -check captures a fresh point, compares it against the newest committed
// BENCH_*.json, and exits non-zero on regression without writing a file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom testing.B.ReportMetric values by unit, e.g.
	// "sim-instr/s" for the headline engine benchmarks.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Point is one trajectory file.
type Point struct {
	Label     string  `json:"label"`
	Timestamp string  `json:"timestamp"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	NumCPU    int     `json:"num_cpu"`
	BenchTime string  `json:"benchtime"`
	Benches   []Bench `json:"benches"`
}

func main() {
	var (
		label     = flag.String("label", "", "trajectory point label (required unless -check)")
		benchRe   = flag.String("bench", "BenchmarkTable1BaselineRun|BenchmarkRunnerParallel|BenchmarkWorkloadGen", "go test -bench regex")
		benchTime = flag.String("benchtime", "3x", "go test -benchtime value")
		outDir    = flag.String("out", ".", "directory holding BENCH_*.json (repo root)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		check     = flag.Bool("check", false, "compare against the last committed point instead of writing a new one")
		maxLoss   = flag.Float64("maxloss", 0.20, "maximum tolerated fractional sims/s loss in -check mode")
		keyBench  = flag.String("key", "BenchmarkTable1BaselineRun", "benchmark whose sim-instr/s metric anchors the -check comparison")
	)
	flag.Parse()
	if !*check && *label == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -label is required when capturing (or use -check)")
		os.Exit(2)
	}

	out, err := runBench(*pkg, *benchRe, *benchTime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n%s", err, out)
		os.Exit(1)
	}
	benches, err := ParseBenchOutput(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched -bench %q\n", *benchRe)
		os.Exit(1)
	}
	pt := Point{
		Label:     *label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		BenchTime: *benchTime,
		Benches:   benches,
	}

	if *check {
		last, path, err := lastPoint(*outDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if err := comparePoints(last, pt, *keyBench, *maxLoss); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: regression vs %s: %v\n", filepath.Base(path), err)
			os.Exit(1)
		}
		fmt.Printf("benchjson: ok vs %s\n", filepath.Base(path))
		report(pt)
		return
	}

	seq, err := nextSeq(*outDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	pt.Label = *label
	path := filepath.Join(*outDir, fmt.Sprintf("BENCH_%04d_%s.json", seq, *label))
	data, err := json.MarshalIndent(pt, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s\n", path)
	report(pt)
}

func runBench(pkg, benchRe, benchTime string) (string, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", benchRe,
		"-benchtime", benchTime, "-benchmem", pkg)
	b, err := cmd.CombinedOutput()
	return string(b), err
}

func report(pt Point) {
	for _, b := range pt.Benches {
		line := fmt.Sprintf("  %-40s %14.0f ns/op", b.Name, b.NsPerOp)
		if v, ok := b.Metrics["sim-instr/s"]; ok {
			line += fmt.Sprintf("  %12.0f sim-instr/s", v)
		}
		if b.AllocsPerOp > 0 {
			line += fmt.Sprintf("  %10.0f allocs/op", b.AllocsPerOp)
		}
		fmt.Println(line)
	}
}

// benchLine matches "BenchmarkFoo-8   3   194447949 ns/op   771417 sim-instr/s ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// ParseBenchOutput extracts benchmark results from go test -bench output.
func ParseBenchOutput(out string) ([]Bench, error) {
	var benches []Bench
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", line)
		}
		b := Bench{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			default:
				b.Metrics[unit] = val
			}
		}
		if len(b.Metrics) == 0 {
			b.Metrics = nil
		}
		benches = append(benches, b)
	}
	return benches, nil
}

// nextSeq returns one past the highest committed BENCH_NNNN_*.json sequence.
func nextSeq(dir string) (int, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_[0-9][0-9][0-9][0-9]_*.json"))
	if err != nil {
		return 0, err
	}
	seq := 0
	for _, p := range paths {
		var n int
		if _, err := fmt.Sscanf(filepath.Base(p), "BENCH_%04d_", &n); err == nil && n+1 > seq {
			seq = n + 1
		}
	}
	return seq, nil
}

// lastPoint loads the newest committed trajectory point.
func lastPoint(dir string) (Point, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_[0-9][0-9][0-9][0-9]_*.json"))
	if err != nil {
		return Point{}, "", err
	}
	if len(paths) == 0 {
		return Point{}, "", fmt.Errorf("no committed BENCH_*.json in %s", dir)
	}
	sort.Strings(paths)
	path := paths[len(paths)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		return Point{}, "", err
	}
	var pt Point
	if err := json.Unmarshal(data, &pt); err != nil {
		return Point{}, "", fmt.Errorf("%s: %v", path, err)
	}
	return pt, path, nil
}

// comparePoints fails when the fresh capture's key throughput metric fell
// more than maxLoss below the committed point's.
func comparePoints(committed, fresh Point, key string, maxLoss float64) error {
	oldV, err := keyMetric(committed, key)
	if err != nil {
		return fmt.Errorf("committed point: %v", err)
	}
	newV, err := keyMetric(fresh, key)
	if err != nil {
		return fmt.Errorf("fresh capture: %v", err)
	}
	if newV < oldV*(1-maxLoss) {
		return fmt.Errorf("%s sim-instr/s %.0f -> %.0f (-%.1f%%, limit %.0f%%)",
			key, oldV, newV, (1-newV/oldV)*100, maxLoss*100)
	}
	fmt.Printf("benchjson: %s sim-instr/s %.0f -> %.0f (%+.1f%%)\n", key, oldV, newV, (newV/oldV-1)*100)
	return nil
}

func keyMetric(pt Point, key string) (float64, error) {
	for _, b := range pt.Benches {
		if b.Name == key {
			if v, ok := b.Metrics["sim-instr/s"]; ok {
				return v, nil
			}
			return 0, fmt.Errorf("%s has no sim-instr/s metric", key)
		}
	}
	return 0, fmt.Errorf("no %s result", key)
}
