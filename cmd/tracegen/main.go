// Command tracegen records a synthetic workload's instruction stream into a
// trace file that bosim can replay (-trace), decoupling trace generation
// from simulation exactly like the paper's Pin-based flow.
//
// Usage:
//
//	tracegen -workload 433.milc -n 1000000 -o milc.trace
//	bosim -trace milc.trace -pf bo
package main

import (
	"flag"
	"fmt"
	"os"

	"bopsim/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "462.libquantum", "workload spec to record (any registered generator)")
		n        = flag.Uint64("n", 1_000_000, "instructions to record")
		out      = flag.String("o", "", "output trace file (required)")
		seed     = flag.Uint64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(2)
	}
	sp, err := trace.ParseSpec(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(2)
	}
	gen, err := trace.NewGenerator(sp, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if err := trace.WriteTraceFile(*out, gen, *n); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions of %s to %s\n", *n, *workload, *out)
}
