// Command bovet runs the repo's custom static-analysis suite: the four
// analyzers that mechanically enforce the simulator's determinism
// (nondeterm), checkpoint completeness (statecodec), zero-alloc hot loops
// (hotalloc) and registry discipline (registryinit). See DESIGN.md "Static
// invariants".
//
// Standalone:
//
//	go run ./cmd/bovet ./...
//	bovet -json ./internal/uncore
//
// As a vet tool (the go command drives one invocation per package and
// supplies export data):
//
//	go build -o /tmp/bovet ./cmd/bovet
//	go vet -vettool=/tmp/bovet ./...
//
// Exit status is 0 when the tree is clean, 2 when any diagnostic survives
// (matching go vet), 1 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"bopsim/internal/analysis"
	"bopsim/internal/analysis/hotalloc"
	"bopsim/internal/analysis/nondeterm"
	"bopsim/internal/analysis/registryinit"
	"bopsim/internal/analysis/statecodec"
)

var suite = []*analysis.Analyzer{
	nondeterm.Analyzer,
	statecodec.Analyzer,
	hotalloc.Analyzer,
	registryinit.Analyzer,
}

func main() {
	// The go vet protocol probes the tool before handing it a package:
	// -V=full must print a stable identity line, -flags the analyzer flags
	// (none), and then each invocation gets a single *.cfg argument.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "-V":
			fmt.Println("bovet version 1")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetTool(os.Args[1]))
		}
	}
	os.Exit(runStandalone())
}

func runStandalone() int {
	fs := flag.NewFlagSet("bovet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("analyzers", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bovet [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, "", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	findings, err := analysis.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findingsJSON(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "bovet:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

type findingJSON struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

func findingsJSON(fs []analysis.Finding) []findingJSON {
	out := make([]findingJSON, 0, len(fs))
	for _, f := range fs {
		out = append(out, findingJSON{Analyzer: f.Analyzer, Position: f.Posn.String(), Message: f.Message})
	}
	return out
}
