// Command bovet runs the repo's custom static-analysis suite: the seven
// analyzers that mechanically enforce the simulator's determinism
// (nondeterm), checkpoint completeness (statecodec), zero-alloc hot loops
// (hotalloc), registry discipline (registryinit), serialized-layout
// stability (schemalock), cache-key/warmup-signature completeness
// (sigcomplete) and allow-inventory hygiene (deadallow). See DESIGN.md
// "Static invariants". Cross-package reasoning — taint and allocation
// summaries flowing from dependency to importer — rides the facts layer;
// packages are analyzed in dependency order.
//
// Standalone:
//
//	go run ./cmd/bovet ./...
//	bovet -json ./internal/uncore
//	bovet -analyzers nondeterm,hotalloc ./...
//
// As a vet tool (the go command drives one invocation per package,
// supplies export data and threads fact files between invocations):
//
//	go build -o /tmp/bovet ./cmd/bovet
//	go vet -vettool=/tmp/bovet ./...
//
// Regenerating the schema lock after a reviewed layout change (refuses to
// run when a governed layout changed without its version constant):
//
//	bovet -write-schema-lock   (or `make schema-lock`)
//
// Exit status is 0 when the tree is clean, 2 when any diagnostic survives
// (matching go vet), 1 on operational errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"bopsim/internal/analysis"
	"bopsim/internal/analysis/deadallow"
	"bopsim/internal/analysis/hotalloc"
	"bopsim/internal/analysis/nondeterm"
	"bopsim/internal/analysis/registryinit"
	"bopsim/internal/analysis/schemalock"
	"bopsim/internal/analysis/sigcomplete"
	"bopsim/internal/analysis/statecodec"
)

var suite = []*analysis.Analyzer{
	nondeterm.Analyzer,
	statecodec.Analyzer,
	hotalloc.Analyzer,
	registryinit.Analyzer,
	schemalock.Analyzer,
	sigcomplete.Analyzer,
	deadallow.Analyzer,
}

func main() {
	// The go vet protocol probes the tool before handing it a package:
	// -V=full must print a stable identity line (bumped when analyzer
	// behavior changes, so go vet's result cache invalidates), -flags the
	// analyzer flags (none), and then each invocation gets a single *.cfg
	// argument.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "-V":
			fmt.Println("bovet version 2")
			return
		case os.Args[1] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(runVetTool(os.Args[1]))
		}
	}
	os.Exit(runStandalone())
}

func runStandalone() int {
	fs := flag.NewFlagSet("bovet", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as JSON, sorted by (package, file, line, analyzer)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	selected := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	writeLock := fs.Bool("write-schema-lock", false, "regenerate internal/analysis/schemalock/schema.lock and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: bovet [-json] [-analyzers a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	active, err := selectAnalyzers(*selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *writeLock {
		return writeSchemaLock(patterns)
	}

	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, "", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	runner := &analysis.Runner{Suite: active, Known: suite, FactDir: factCacheDir()}
	findings, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findingsJSON(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "bovet:", err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// selectAnalyzers resolves the -analyzers flag against the suite. An
// unknown name is an operational error naming the available set — a typo
// must not silently run nothing (or everything).
func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(suite))
	available := make([]string, 0, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
		available = append(available, a.Name)
	}
	var active []*analysis.Analyzer
	seen := make(map[string]bool)
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (available: %s)", name, strings.Join(available, ", "))
		}
		if !seen[name] {
			seen[name] = true
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		return nil, fmt.Errorf("-analyzers selected nothing (available: %s)", strings.Join(available, ", "))
	}
	return active, nil
}

// factCacheDir returns the content-addressed fact cache location:
// $BOVET_FACTDIR, or a bovet subdirectory of the user cache. Empty string
// (no caching) when neither resolves — the cache is an optimization, never
// a requirement.
func factCacheDir() string {
	if dir := os.Getenv("BOVET_FACTDIR"); dir != "" {
		return dir
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "bovet", "facts")
}

// writeSchemaLock regenerates the committed schema lock from the current
// tree: it derives every governed layout (running the schemalock closure
// checks on the way, so an unlockable cross-package reference fails
// generation), refuses to proceed when a version domain's sections changed
// without its version constant, and writes the file the analyzer embeds.
func writeSchemaLock(patterns []string) int {
	fset := token.NewFileSet()
	pkgs, err := analysis.Load(fset, "", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	collector := schemalock.NewCollector()
	runner := &analysis.Runner{Suite: []*analysis.Analyzer{collector.Analyzer()}, Known: suite}
	findings, err := runner.Run(pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintln(os.Stderr, "bovet: schema derivation is incomplete; fix the findings above before regenerating")
		return 1
	}

	lockPath := ""
	for _, pkg := range pkgs {
		if pkg.PkgPath == "bopsim/internal/analysis/schemalock" {
			lockPath = filepath.Join(pkg.Dir, "schema.lock")
		}
	}
	if lockPath == "" {
		fmt.Fprintln(os.Stderr, "bovet: -write-schema-lock needs the schemalock package in the pattern set (run it as `bovet -write-schema-lock ./...` from the module root)")
		return 1
	}
	old, _ := os.ReadFile(lockPath)
	if err := collector.CheckBump(old); err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	data := collector.Format()
	if string(old) == string(data) {
		fmt.Printf("bovet: %s is up to date (%d sections)\n", lockPath, len(collector.Sections))
		return 0
	}
	if err := os.WriteFile(lockPath, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	fmt.Printf("bovet: wrote %s (%d sections); rebuild to embed it\n", lockPath, len(collector.Sections))
	return 0
}

type findingJSON struct {
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

func findingsJSON(fs []analysis.Finding) []findingJSON {
	out := make([]findingJSON, 0, len(fs))
	for _, f := range fs {
		out = append(out, findingJSON{Analyzer: f.Analyzer, Package: f.Pkg, Position: f.Posn.String(), Message: f.Message})
	}
	return out
}
