package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bopsim/internal/analysis"
)

// The go vet driver protocol (x/tools' "unitchecker" protocol): the go
// command invokes the tool once per package with a JSON config file naming
// the package's sources and the export data of every dependency, expects a
// facts file to be written to VetxOutput, and treats exit status 2 as
// "diagnostics found". bovet carries no cross-package facts, so the facts
// file is empty — but it must exist or the build system errors.

// vetConfig mirrors the subset of the config the go command writes that
// bovet consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bovet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "bovet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: only facts wanted, and bovet has none
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The go command also dispatches test variants of each package.
		// bovet's invariants govern shipped simulator code — tests probe the
		// registries and clocks deliberately — so test files are skipped,
		// matching what standalone `bovet ./...` analyzes.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bovet:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0 // external _test package: nothing but test files
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	tconf := types.Config{Importer: imp}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "bovet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Posn, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
