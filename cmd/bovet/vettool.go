package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bopsim/internal/analysis"
)

// The go vet driver protocol (x/tools' "unitchecker" protocol): the go
// command invokes the tool once per package with a JSON config file naming
// the package's sources, the export data of every dependency, and — via
// PackageVetx — the fact files earlier invocations wrote for those
// dependencies. The tool must write this package's facts to VetxOutput
// (the file must exist even when empty, or the build system errors), and
// exit status 2 means "diagnostics found". Facts ride the same gob
// encoding as the standalone runner's cache, so cross-package taint works
// identically under `go vet -vettool=` and `bovet ./...`; the go command's
// own build cache takes the place of bovet's content-addressed fact cache.

// vetConfig mirrors the subset of the config the go command writes that
// bovet consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "bovet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	writeVetx := func(blob []byte) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, blob, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "bovet:", err)
			return false
		}
		return true
	}
	// Facts are only computed for this module's packages; for anything else
	// (the standard library, should the driver ask) an empty fact file
	// satisfies the protocol without running anything.
	if !analysis.ModulePackage(cfg.ImportPath) {
		if !writeVetx(nil) {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// The go command also dispatches test variants of each package.
		// bovet's invariants govern shipped simulator code — tests probe the
		// registries and clocks deliberately — so test files are skipped,
		// matching what standalone `bovet ./...` analyzes.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bovet:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if !writeVetx(nil) {
			return 1 // external _test package: nothing but test files
		}
		return 0
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := analysis.NewInfo()
	tconf := types.Config{Importer: imp}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "bovet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	runner := &analysis.Runner{Suite: suite, Known: suite}
	// Seed dependency facts from the files earlier invocations wrote. The
	// driver lists every dependency; only module packages ever have
	// non-empty blobs.
	for dep, vetx := range cfg.PackageVetx {
		if canonical, ok := cfg.ImportMap[dep]; ok {
			dep = canonical
		}
		if !analysis.ModulePackage(dep) {
			continue
		}
		blob, err := os.ReadFile(vetx)
		if err != nil || len(blob) == 0 {
			continue
		}
		if err := runner.ImportFacts(dep, blob); err != nil {
			fmt.Fprintf(os.Stderr, "bovet: reading facts of %s: %v\n", dep, err)
			return 1
		}
	}

	pkg := &analysis.Package{
		PkgPath: cfg.ImportPath,
		Dir:     cfg.Dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		// A VetxOnly invocation is the driver's dependency pass: facts
		// wanted, diagnostics not. DepOnly makes the runner behave exactly
		// like it does for dependencies of a standalone run.
		DepOnly: cfg.VetxOnly,
	}
	findings, err := runner.Run([]*analysis.Package{pkg})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	blob, err := runner.ExportedFacts(cfg.ImportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bovet:", err)
		return 1
	}
	if !writeVetx(blob) {
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s\n", f.Posn, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
