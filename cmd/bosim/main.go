// Command bosim runs one simulation: a workload on a baseline
// configuration with a chosen L2 prefetcher, printing IPC and the relevant
// event counts.
//
// Usage:
//
//	bosim -workload 462.libquantum -pf bo -page 4MB -cores 1 -n 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"bopsim/internal/mem"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "462.libquantum", "benchmark stand-in (see -list)")
		tracePath = flag.String("trace", "", "replay a recorded trace file instead of a synthetic workload")
		cores     = flag.Int("cores", 1, "active cores (1, 2 or 4)")
		pageStr   = flag.String("page", "4KB", "page size: 4KB or 4MB")
		pf        = flag.String("pf", "nextline", "L2 prefetcher: none|nextline|offset|bo|sbp")
		offset    = flag.Int("offset", 1, "offset for -pf offset")
		n         = flag.Uint64("n", 500_000, "instructions to retire on core 0")
		l3        = flag.String("l3", "5P", "L3 replacement policy: 5P|LRU|DRRIP")
		noStride  = flag.Bool("nostride", false, "disable the DL1 stride prefetcher")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range trace.Benchmarks() {
			fmt.Println(b)
		}
		return
	}

	page := mem.Page4K
	switch *pageStr {
	case "4KB", "4kb":
	case "4MB", "4mb":
		page = mem.Page4M
	default:
		fmt.Fprintf(os.Stderr, "bosim: unknown page size %q\n", *pageStr)
		os.Exit(2)
	}

	o := sim.DefaultOptions(*workload)
	o.Cores = *cores
	o.Page = page
	o.L2PF = sim.PrefetcherKind(*pf)
	o.FixedOffset = *offset
	o.L3Policy = *l3
	o.StridePF = !*noStride
	o.Instructions = *n
	o.Seed = *seed
	o.TracePath = *tracePath

	r, err := sim.Run(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload        %s\n", r.Workload)
	fmt.Printf("config          %s, L2 prefetcher %s, L3 %s\n", sim.ConfigLabel(*cores, page), *pf, *l3)
	fmt.Printf("instructions    %d\n", r.Instructions)
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("IPC             %.4f\n", r.IPC)
	fmt.Printf("DRAM acc/KI     %.2f (reads %d, writes %d)\n", r.DRAMAccessesPerKI, r.DRAM.Reads, r.DRAM.Writes)
	fmt.Printf("DRAM row hits   %d (closed %d, conflicts %d)\n", r.DRAM.RowHits, r.DRAM.RowClosed, r.DRAM.RowConflicts)
	s := r.Hier
	fmt.Printf("DL1 hits/misses %d/%d\n", s.DL1Hits, s.DL1Misses)
	fmt.Printf("L2 pf hits      %d (late promotions %d)\n", s.L2PrefetchedHits, s.PrefLatePromotions)
	fmt.Printf("L2 pf issued    %d (dup-dropped %d, tag-dropped %d, cancelled %d)\n",
		s.PrefIssued, s.PrefDroppedDup, s.PrefDroppedTagCheck, s.PrefCancelled)
	fmt.Printf("DL1 stride pf   %d issued, %d TLB-dropped\n", s.StridePrefIssued, s.StridePrefDroppedTLB)
	fmt.Printf("TLB walks       %d\n", s.TLBWalks)
	if r.BO != nil {
		fmt.Printf("BO              final offset %d, phases %d (off %d), RR insertions %d\n",
			r.FinalBOOffset, r.BO.Phases, r.BO.PhasesOff, r.BO.RRInsertions)
	}
}
