// Command bosim runs one simulation: a workload on a baseline
// configuration with a chosen L2 prefetcher, printing IPC and the relevant
// event counts. It drives the steppable engine directly, so Ctrl-C cancels
// a long run cleanly (reporting the partial measurements) and -progress
// shows the run advancing. With -workers the run executes on a remote
// boworkerd daemon instead of in-process.
//
// Prefetchers are selected by registry spec: any name printed by -list-pf,
// optionally parameterized as name:key=value,key=value.
//
// -verify is the result-cache trust anchor: it re-executes a sample of the
// entries in a -cache directory and diffs each fresh result against the
// stored one, catching caches gone stale after simulator changes (and
// spot-checking results that remote workers computed).
//
// Usage:
//
//	bosim -workload 462.libquantum -l2pf bo -page 4MB -cores 1 -n 1000000
//	bosim -workload gups:footprint=64mb -l2pf bo
//	bosim -workloads "gups:footprint=64mb;stream:stride=128" -l2pf bo
//	bosim -workload 433.milc -l2pf offset:d=4 -l1pf none
//	bosim -workload 433.milc -l2pf bo -warmup 200000 -checkpoint milc.ckpt
//	bosim -workload 429.mcf -l2pf bo:badscore=5 -progress -json
//	bosim -workload 470.lbm -workers 10.0.0.7:9123
//	bosim -verify -cache .simcache -verify-sample 16
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"bopsim/internal/distrib"
	"bopsim/internal/engine"
	"bopsim/internal/experiments"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/profiling"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "462.libquantum", "core-0 workload spec: any registered generator, e.g. 429.mcf, gups:footprint=64mb (see -list-workloads)")
		workloads = flag.String("workloads", "", "per-core workload specs, ';'-separated (\"gups:footprint=64mb;stream:stride=128\"); -cores defaults to the list length")
		tracePath = flag.String("trace", "", "replay a recorded trace file instead of a synthetic workload (shorthand for -workload file:path=FILE)")
		cores     = flag.Int("cores", 1, "active cores (1..4; the paper's baselines use 1, 2 and 4)")
		pageStr   = flag.String("page", "4KB", "page size: 4KB or 4MB")
		l2pf      = flag.String("l2pf", "nextline", "L2 prefetcher spec, e.g. bo, offset:d=4, bo:badscore=5 (see -list-pf)")
		l1pf      = flag.String("l1pf", "stride", "DL1 prefetcher spec: stride, stride:dist=8, none")
		pf        = flag.String("pf", "", "deprecated: historical enum spelling of -l2pf (none|nextline|offset|bo|sbp)")
		offset    = flag.Int("offset", 1, "deprecated: offset for -pf offset (use -l2pf offset:d=N)")
		n         = flag.Uint64("n", 500_000, "instructions to retire on core 0")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions before the measured region (stats reset at the barrier)")
		warmupPF  = flag.Bool("warmup-pf", false, "keep the configured prefetchers active through the warmup (their state crosses the barrier)")
		ckptFile  = flag.String("checkpoint", "", "warmup snapshot file: restore from it when present, else run the warmup once and save it there")
		l3        = flag.String("l3", "5P", "L3 replacement policy: 5P|LRU|DRRIP")
		noStride  = flag.Bool("nostride", false, "deprecated: disable the DL1 stride prefetcher (use -l1pf none)")
		seed      = flag.Uint64("seed", 1, "simulation seed (also seeds -verify sampling)")
		list      = flag.Bool("list", false, "list the benchmark stand-in names and exit")
		listWL    = flag.Bool("list-workloads", false, "list every registered workload generator with its parameter schema, then exit")
		listPF    = flag.Bool("list-pf", false, "list registered prefetchers and their spec names, then exit")
		jsonOut   = flag.Bool("json", false, "print the result as JSON instead of text")
		progress  = flag.Bool("progress", false, "report live progress on stderr while running")

		workersCS = flag.String("workers", "", "comma-separated boworkerd addresses: execute the run remotely instead of in-process")

		verify       = flag.Bool("verify", false, "verify a result cache: re-execute sampled entries from -cache and diff against the stored results")
		cacheDir     = flag.String("cache", "", "result-cache directory for -verify")
		verifySample = flag.Int("verify-sample", 8, "how many cache entries -verify re-executes (0: all)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	)
	flag.StringVar(workload, "wl", "462.libquantum", "alias of -workload")
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	if *list {
		for _, b := range trace.Benchmarks() {
			fmt.Println(b)
		}
		return
	}
	if *listWL {
		listWorkloads()
		return
	}
	if *listPF {
		fmt.Println("L2 prefetchers (-l2pf):")
		for _, name := range prefetch.L2Names() {
			fmt.Printf("  %-10s %s\n", name, prefetch.L2Help(name))
		}
		fmt.Println("DL1 prefetchers (-l1pf):")
		for _, name := range prefetch.L1Names() {
			fmt.Printf("  %-10s %s\n", name, prefetch.L1Help(name))
		}
		return
	}
	if *verify {
		runVerify(*cacheDir, *verifySample, *seed)
		return
	}

	page := mem.Page4K
	switch *pageStr {
	case "4KB", "4kb":
	case "4MB", "4mb":
		page = mem.Page4M
	default:
		fmt.Fprintf(os.Stderr, "bosim: unknown page size %q\n", *pageStr)
		os.Exit(2)
	}

	o := sim.DefaultOptions("")
	o.Workloads, o.Cores = resolveWorkloads(*workload, *workloads, *tracePath, *cores)
	o.Page = page
	o.L2PF = l2Spec(*l2pf, *pf, *offset)
	o.L1PF = parseSpec(*l1pf)
	if *noStride {
		o.L1PF = prefetch.Spec{Name: "none"}
	}
	o.L3Policy = *l3
	o.Instructions = *n
	o.Seed = *seed
	o.Warmup = *warmup
	o.WarmupPF = *warmupPF
	if *ckptFile != "" && *warmup == 0 {
		fmt.Fprintln(os.Stderr, "bosim: -checkpoint needs -warmup N (the snapshot is the warmup barrier)")
		os.Exit(2)
	}

	if *workersCS != "" {
		// Remote execution: the whole run happens on one worker, so there
		// is no stepping, progress or partial-result cancellation here.
		pool, err := distrib.Dial(strings.Split(*workersCS, ","), distrib.RetryPolicy{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
			os.Exit(1)
		}
		var r sim.Result
		if sha := trace.ContentSHA(*ckptFile); *ckptFile != "" && sha != "" {
			// Ship the snapshot's identity; a worker holding a copy forks
			// from it, any other runs the warmup itself.
			r, err = pool.RunFrom(0, o, *ckptFile, sha)
		} else {
			if *ckptFile != "" {
				// Remote execution cannot create the snapshot: the warmup
				// runs on the worker and its barrier state never comes back.
				fmt.Fprintf(os.Stderr, "bosim: -checkpoint is restore-only with -workers; %s does not exist, the worker replays the warmup and no snapshot is saved (create one with a local run first)\n", *ckptFile)
			}
			r, err = pool.Run(0, o)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
			os.Exit(1)
		}
		output(o.Normalized(), r, false, *jsonOut)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s, err := buildSimulation(ctx, o, *ckptFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
		os.Exit(1)
	}
	r, err := run(ctx, s, *progress)
	interrupted := err == context.Canceled
	switch {
	case interrupted:
		// Interrupted: report the partial run, marked as such, and exit
		// nonzero below so callers never mistake it for a complete one.
		fmt.Fprintf(os.Stderr, "bosim: interrupted after %d cycles (%d/%d instructions); partial results follow\n",
			s.Cycles(), s.Retired(), *n)
		r = s.Snapshot()
	case err != nil:
		fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
		os.Exit(1)
	}
	output(s.Options(), r, interrupted, *jsonOut)
	stopProfiles() // exitInterrupted bypasses deferred calls
	exitInterrupted(interrupted)
}

// buildSimulation constructs the run. With -checkpoint it restores the
// warmup barrier from the named snapshot when the file exists; otherwise it
// runs the warmup once, saves the snapshot there, and returns the machine
// standing at the barrier — either way the subsequent measured region is
// byte-identical to a straight run.
func buildSimulation(ctx context.Context, o engine.Options, ckptFile string) (*engine.Simulation, error) {
	if ckptFile == "" {
		return engine.New(o)
	}
	if data, err := os.ReadFile(ckptFile); err == nil {
		s, err := engine.Restore(data, o)
		if err != nil {
			return nil, fmt.Errorf("restoring %s: %w", ckptFile, err)
		}
		fmt.Fprintf(os.Stderr, "bosim: restored warmup barrier from %s (%d instructions skipped)\n", ckptFile, o.Warmup)
		return s, nil
	}
	s, err := engine.New(o)
	if err != nil {
		return nil, err
	}
	if err := s.RunWarmup(ctx); err != nil {
		return nil, err
	}
	snap, err := s.Checkpoint()
	if err != nil {
		return nil, err
	}
	if err := engine.WriteSnapshot(ckptFile, snap); err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "bosim: wrote warmup snapshot %s (%d KB)\n", ckptFile, len(snap)>>10)
	return s, nil
}

// output renders one finished (or interrupted) run, local or remote.
func output(o engine.Options, r sim.Result, interrupted, jsonOut bool) {
	if jsonOut {
		b, err := json.MarshalIndent(struct {
			Options     engine.Options `json:"options"`
			Interrupted bool           `json:"interrupted,omitempty"`
			Result      sim.Result     `json:"result"`
		}{o, interrupted, r}, "", " ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		return
	}
	fmt.Printf("workload        %s\n", r.Workload)
	fmt.Printf("config          %s, L2 prefetcher %s, L3 %s\n", sim.ConfigLabel(o.Cores, o.Page), o.L2PF, o.L3Policy)
	fmt.Printf("instructions    %d\n", r.Instructions)
	fmt.Printf("cycles          %d\n", r.Cycles)
	fmt.Printf("IPC             %.4f\n", r.IPC)
	fmt.Printf("DRAM acc/KI     %.2f (reads %d, writes %d)\n", r.DRAMAccessesPerKI, r.DRAM.Reads, r.DRAM.Writes)
	fmt.Printf("DRAM row hits   %d (closed %d, conflicts %d)\n", r.DRAM.RowHits, r.DRAM.RowClosed, r.DRAM.RowConflicts)
	st := r.Hier
	fmt.Printf("DL1 hits/misses %d/%d\n", st.DL1Hits, st.DL1Misses)
	fmt.Printf("L2 pf hits      %d (late promotions %d)\n", st.L2PrefetchedHits, st.PrefLatePromotions)
	fmt.Printf("L2 pf issued    %d (dup-dropped %d, tag-dropped %d, cancelled %d)\n",
		st.PrefIssued, st.PrefDroppedDup, st.PrefDroppedTagCheck, st.PrefCancelled)
	fmt.Printf("DL1 stride pf   %d issued, %d TLB-dropped\n", st.StridePrefIssued, st.StridePrefDroppedTLB)
	fmt.Printf("TLB walks       %d\n", st.TLBWalks)
	if r.BO != nil {
		fmt.Printf("BO              final offset %d, phases %d (off %d), RR insertions %d\n",
			r.FinalBOOffset, r.BO.Phases, r.BO.PhasesOff, r.BO.RRInsertions)
	}
}

// runVerify is the -verify mode: re-execute sampled cache entries and exit
// nonzero when any stored result diverges from a fresh run.
func runVerify(dir string, sample int, seed uint64) {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "bosim: -verify needs -cache DIR")
		os.Exit(2)
	}
	rep, err := experiments.VerifyCache(dir, sample, seed, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosim: verify: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("verified %d/%d cache entries: %d mismatched, %d orphaned (unreachable key), %d skipped (corrupt or old schema)\n",
		rep.Checked, rep.Entries, rep.Mismatched, rep.Orphaned, rep.Skipped)
	if rep.Mismatched > 0 {
		fmt.Fprintln(os.Stderr, "bosim: cache is STALE — delete the mismatched entries (or the directory) and re-run")
		os.Exit(1)
	}
}

// exitInterrupted exits with the conventional SIGINT status when the run
// was cancelled, after the partial results have been printed.
func exitInterrupted(interrupted bool) {
	if interrupted {
		os.Exit(130)
	}
}

// resolveWorkloads turns the workload flags into the per-core spec list:
// -workloads (';'-separated, one spec per core) wins, then -trace (the
// "file" generator), then -workload/-wl (core 0 only; satellite cores get
// the registry's microthrash default). With -workloads and no explicit
// -cores, the core count follows the list length.
func resolveWorkloads(workload, workloads, tracePath string, coresFlag int) ([]trace.Spec, int) {
	coresSet, workloadSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "cores":
			coresSet = true
		case "workload", "wl":
			workloadSet = true
		}
	})
	switch {
	case workloads != "":
		if tracePath != "" {
			fmt.Fprintln(os.Stderr, "bosim: -workloads and -trace are mutually exclusive (use a file: spec in the list)")
			os.Exit(2)
		}
		if workloadSet {
			// Same rule as -trace: silently dropping an explicit -workload
			// would measure the wrong run without a diagnostic.
			fmt.Fprintln(os.Stderr, "bosim: -workloads and -workload/-wl are mutually exclusive (put the core-0 spec first in -workloads)")
			os.Exit(2)
		}
		specs, err := trace.ParseSpecList(workloads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
			os.Exit(2)
		}
		cores := coresFlag
		if !coresSet && len(specs) > cores {
			cores = len(specs)
		}
		if len(specs) > cores {
			fmt.Fprintf(os.Stderr, "bosim: %d workload specs but -cores %d\n", len(specs), cores)
			os.Exit(2)
		}
		return specs, cores
	case tracePath != "":
		if workloadSet {
			fmt.Fprintln(os.Stderr, "bosim: -trace and -workload/-wl are mutually exclusive (a trace replay is the whole core-0 workload)")
			os.Exit(2)
		}
		return []trace.Spec{trace.FileSpec(tracePath)}, coresFlag
	default:
		sp, err := trace.ParseSpec(workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
			os.Exit(2)
		}
		return []trace.Spec{sp}, coresFlag
	}
}

// listWorkloads renders every registered generator with its parameter
// schema and defaults, mirroring -list-pf on the workload axis.
func listWorkloads() {
	fmt.Println("workload generators (-workload / -workloads):")
	for _, name := range trace.Names() {
		fmt.Printf("  %-15s %s\n", name, trace.Help(name))
		defs, _ := trace.ParamDefaults(name)
		keys := make([]string, 0, len(defs))
		for k := range defs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			if defs[k] == "" {
				parts = append(parts, k+"=?")
				continue
			}
			parts = append(parts, k+"="+defs[k])
		}
		if len(parts) > 0 {
			fmt.Printf("  %-15s   params: %s\n", "", strings.Join(parts, " "))
		}
	}
}

// l2Spec resolves the L2 prefetcher selection: the deprecated -pf/-offset
// enum spelling wins when given (so historical invocations keep working),
// otherwise -l2pf is parsed as a registry spec.
func l2Spec(l2pf, legacy string, legacyOffset int) prefetch.Spec {
	if legacy != "" {
		if legacy == "offset" {
			return sim.PFOffsetD(legacyOffset)
		}
		return parseSpec(legacy)
	}
	return parseSpec(l2pf)
}

// parseSpec parses a spec flag, exiting with a usage error on bad syntax
// (unknown names and parameters are reported by engine.New, which can list
// the registered alternatives).
func parseSpec(s string) prefetch.Spec {
	sp, err := prefetch.ParseSpec(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bosim: %v\n", err)
		os.Exit(2)
	}
	return sp
}

// run drives the simulation to completion. Without -progress it defers to
// the engine's own loop; with it, it steps in visible chunks and rewrites a
// status line between them.
func run(ctx context.Context, s *engine.Simulation, progress bool) (sim.Result, error) {
	if !progress {
		return s.Run(ctx)
	}
	const chunk = 100_000 // cycles between status updates
	target := s.Options().Instructions
	for {
		if err := ctx.Err(); err != nil {
			fmt.Fprintln(os.Stderr)
			return sim.Result{}, err
		}
		done, err := s.Step(chunk)
		if err != nil {
			fmt.Fprintln(os.Stderr)
			return sim.Result{}, err
		}
		fmt.Fprintf(os.Stderr, "\rcycle %-12d retired %d/%d (IPC %.3f)",
			s.Cycles(), s.Retired(), target, s.Snapshot().IPC)
		if done {
			fmt.Fprintln(os.Stderr)
			return s.Snapshot(), nil
		}
	}
}
