// Command boworkerd is the remote-execution worker daemon for the
// experiment scheduler: it serves internal/distrib's worker protocol
// (advertise capacity on /v1/info, execute jobs on /v1/run, accept
// artifact seeding on /v1/artifacts) using the same simulation engine the
// coordinator runs locally, so `experiments -all -workers host:port,...`
// can fan a sweep out over a fleet and still render byte-identical
// tables.
//
// Trace-replay jobs name their trace by content SHA-256; point -trace-dir
// at the director(ies) holding this machine's copies and the daemon
// resolves hashes against them. A coordinator holding a trace this
// worker lacks pushes it via PUT /v1/artifacts/{sha}, so even an empty
// -trace-dir fills itself.
//
// With -announce, the daemon registers itself with a bofleetd
// coordinator (POST /v1/workers) and keeps re-announcing, so a restarted
// worker rejoins the fleet without operator action. SIGTERM triggers a
// graceful drain: /healthz and /v1/run answer 503 (the coordinator
// requeues elsewhere), in-flight jobs run to completion, then the daemon
// exits — a rolling restart never loses work.
//
// Usage:
//
//	boworkerd -listen :9123
//	boworkerd -listen :9123 -capacity 8 -trace-dir /data/traces -v
//	boworkerd -listen :9123 -announce http://coordinator:9200 -advertise 10.0.0.7:9123
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"bopsim/internal/distrib"
	"bopsim/internal/experiments"
)

func main() {
	var (
		listen    = flag.String("listen", ":9123", "address to serve the worker API on")
		capacity  = flag.Int("capacity", runtime.GOMAXPROCS(0), "simulations to execute concurrently (advertised to the coordinator)")
		traceDirs = flag.String("trace-dir", "", "comma-separated directories holding trace files, resolved by content hash")
		ckptDirs  = flag.String("checkpoint-dir", "", "comma-separated directories holding warmup snapshots, resolved by content hash (trace-dir files are indexed too)")
		seedDir   = flag.String("seed-dir", "", "directory for coordinator-pushed artifacts (default: first -trace-dir, then first -checkpoint-dir)")
		announce  = flag.String("announce", "", "bofleetd coordinator URL to register with (POST /v1/workers, repeated every 15s)")
		advertise = flag.String("advertise", "", "address the coordinator should dial back (default: -listen; required with -announce when -listen has no host)")
		drain     = flag.Duration("drain", 5*time.Minute, "maximum time to wait for in-flight jobs on SIGTERM before exiting anyway")
		verbose   = flag.Bool("v", false, "log every job")
	)
	flag.Parse()

	splitDirs := func(csv string) []string {
		var out []string
		for _, d := range strings.Split(csv, ",") {
			if d = strings.TrimSpace(d); d != "" {
				out = append(out, d)
			}
		}
		return out
	}
	dirs := splitDirs(*traceDirs)
	checkpointDirs := splitDirs(*ckptDirs)
	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	cap := *capacity
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}
	worker := &distrib.Server{Capacity: cap, TraceDirs: dirs, CheckpointDirs: checkpointDirs, SeedDir: *seedDir, Log: logw}
	if len(dirs)+len(checkpointDirs) > 0 {
		// Hash the corpus before serving so the first trace job doesn't
		// pay for the scan inside its request.
		fmt.Fprintf(os.Stderr, "boworkerd: indexed %d traces in %s\n",
			worker.WarmTraceIndex(), strings.Join(dirs, ","))
	}
	srv := &http.Server{Addr: *listen, Handler: worker.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *announce != "" {
		addr := *advertise
		if addr == "" {
			addr = *listen
		}
		if strings.HasPrefix(addr, ":") {
			fmt.Fprintf(os.Stderr, "boworkerd: -announce needs a dialable address: set -advertise host:port (got %q)\n", addr)
			os.Exit(2)
		}
		go announceLoop(ctx, *announce, addr)
	}

	// SIGTERM drain: refuse new jobs (503 on /v1/run and /healthz, so the
	// coordinator requeues elsewhere and the revival prober leaves us
	// alone), wait for accepted jobs to finish, then shut the listener
	// down. A second signal — NotifyContext restores default handling
	// after the first — kills the process the hard way, which the
	// coordinator's retry policy also survives.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		worker.StartDraining()
		fmt.Fprintf(os.Stderr, "boworkerd: draining (%d jobs in flight)\n", worker.InFlight())
		deadline := time.Now().Add(*drain)
		for worker.InFlight() > 0 && time.Now().Before(deadline) {
			time.Sleep(100 * time.Millisecond)
		}
		if n := worker.InFlight(); n > 0 {
			fmt.Fprintf(os.Stderr, "boworkerd: drain timeout with %d jobs in flight, exiting anyway\n", n)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "boworkerd: listening on %s (capacity %d, protocol v%d, cache schema v%d)\n",
		*listen, cap, distrib.ProtocolVersion, experiments.SchemaVersion())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "boworkerd: %v\n", err)
		os.Exit(1)
	}
	stop() // unblock the shutdown goroutine when the listener failed on its own
	<-drained
}

// announceLoop registers this worker with the coordinator, immediately
// and then every 15s: the repeat is what heals a coordinator restart
// (journal replay re-dials too, but a fresh state directory would
// otherwise never learn of us) and doubles as the worker's own
// crash-recovery — a restarted boworkerd re-announces and the
// coordinator's AddWorker revives it in place.
func announceLoop(ctx context.Context, coordinator, addr string) {
	coordinator = strings.TrimSuffix(coordinator, "/")
	if !strings.Contains(coordinator, "://") {
		coordinator = "http://" + coordinator
	}
	body, _ := json.Marshal(map[string]string{"addr": addr})
	client := &http.Client{Timeout: 10 * time.Second}
	announced := false
	t := time.NewTicker(15 * time.Second)
	defer t.Stop()
	for {
		resp, err := client.Post(coordinator+"/v1/workers", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && !announced {
				fmt.Fprintf(os.Stderr, "boworkerd: registered with %s as %s\n", coordinator, addr)
				announced = true
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
