// Command boworkerd is the remote-execution worker daemon for the
// experiment scheduler: it serves internal/distrib's worker protocol
// (advertise capacity on /v1/info, execute jobs on /v1/run) using the
// same simulation engine the coordinator runs locally, so
// `experiments -all -workers host:port,...` can fan a sweep out over a
// fleet and still render byte-identical tables.
//
// Trace-replay jobs name their trace by content SHA-256; point -trace-dir
// at the director(ies) holding this machine's copies and the daemon
// resolves hashes against them.
//
// Usage:
//
//	boworkerd -listen :9123
//	boworkerd -listen :9123 -capacity 8 -trace-dir /data/traces -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"bopsim/internal/distrib"
	"bopsim/internal/experiments"
)

func main() {
	var (
		listen    = flag.String("listen", ":9123", "address to serve the worker API on")
		capacity  = flag.Int("capacity", runtime.GOMAXPROCS(0), "simulations to execute concurrently (advertised to the coordinator)")
		traceDirs = flag.String("trace-dir", "", "comma-separated directories holding trace files, resolved by content hash")
		ckptDirs  = flag.String("checkpoint-dir", "", "comma-separated directories holding warmup snapshots, resolved by content hash (trace-dir files are indexed too)")
		verbose   = flag.Bool("v", false, "log every job")
	)
	flag.Parse()

	splitDirs := func(csv string) []string {
		var out []string
		for _, d := range strings.Split(csv, ",") {
			if d = strings.TrimSpace(d); d != "" {
				out = append(out, d)
			}
		}
		return out
	}
	dirs := splitDirs(*traceDirs)
	checkpointDirs := splitDirs(*ckptDirs)
	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	cap := *capacity
	if cap <= 0 {
		cap = runtime.GOMAXPROCS(0)
	}
	worker := &distrib.Server{Capacity: cap, TraceDirs: dirs, CheckpointDirs: checkpointDirs, Log: logw}
	if len(dirs)+len(checkpointDirs) > 0 {
		// Hash the corpus before serving so the first trace job doesn't
		// pay for the scan inside its request.
		fmt.Fprintf(os.Stderr, "boworkerd: indexed %d traces in %s\n",
			worker.WarmTraceIndex(), strings.Join(dirs, ","))
	}
	srv := &http.Server{Addr: *listen, Handler: worker.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// ListenAndServe returns the moment Shutdown is *initiated*, so main
	// must wait for the drain to finish or in-flight jobs die anyway.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Give in-flight jobs a moment to finish; a coordinator retries
		// anything this cuts off.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "boworkerd: listening on %s (capacity %d, protocol v%d, cache schema v%d)\n",
		*listen, cap, distrib.ProtocolVersion, experiments.SchemaVersion())
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "boworkerd: %v\n", err)
		os.Exit(1)
	}
	stop() // unblock the shutdown goroutine when the listener failed on its own
	<-drained
}
