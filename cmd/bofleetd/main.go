// Command bofleetd is the long-lived experiment coordinator: it owns a
// journaled sweep queue (internal/fleet) and a worker pool
// (internal/distrib) and serves the fleet HTTP API. Sweeps submitted via
// `experiments -submit URL` (or raw POST /v1/sweeps) are executed one at
// a time — priorities first, fair-share round-robin across submitters —
// on whatever workers have registered, with dead workers re-probed and
// revived, and missing trace/checkpoint artifacts pushed to workers that
// need them. Because every result lands in the persistent cache and the
// journal records every accepted sweep, the daemon (and any worker) can
// be killed and restarted at any point without losing work or changing a
// single output byte.
//
// Usage:
//
//	bofleetd -listen :9200 -state /var/lib/bofleet
//	bofleetd -listen :9200 -state .bofleet -artifacts /data/traces -v
//	boworkerd -listen :9123 -announce http://coordinator:9200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bopsim/internal/distrib"
	"bopsim/internal/fleet"
)

func main() {
	var (
		listen    = flag.String("listen", ":9200", "address to serve the coordinator API on")
		stateDir  = flag.String("state", ".bofleet", "state directory (sweep journal; default result cache)")
		cacheDir  = flag.String("cache", "", "persistent result cache directory (default: <state>/cache; sharable with `experiments -cache`)")
		artifacts = flag.String("artifacts", "", "comma-separated directories holding traces/checkpoints for seeding workers that lack them")
		probe     = flag.Duration("probe", 2*time.Second, "dead-worker re-probe interval")
		verbose   = flag.Bool("v", false, "log sweeps, worker joins and revivals")
	)
	flag.Parse()

	var dirs []string
	for _, d := range strings.Split(*artifacts, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dirs = append(dirs, d)
		}
	}
	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	svc, err := fleet.Open(fleet.Config{
		Dir:          *stateDir,
		CacheDir:     *cacheDir,
		ArtifactDirs: dirs,
		Retry:        distrib.RetryPolicy{ProbeInterval: *probe},
		Log:          logw,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bofleetd: %v\n", err)
		os.Exit(1)
	}
	svc.Start()

	srv := &http.Server{Addr: *listen, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		<-ctx.Done()
		// The API goes down immediately; an executing sweep is deliberately
		// NOT waited for — it has no completion record yet, so the journal
		// requeues it on the next start and the result cache makes the
		// re-run cheap. Crash and shutdown share one recovery path.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
		svc.Close()
	}()

	fmt.Fprintf(os.Stderr, "bofleetd: listening on %s (state %s)\n", *listen, *stateDir)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "bofleetd: %v\n", err)
		os.Exit(1)
	}
	stop()
	<-closed
}
