// Command experiments regenerates the paper's tables and figures as text
// tables. Each -figN flag runs the simulations that figure needs; -all runs
// everything. Results within one invocation share a run cache, so running
// -all is much cheaper than running the figures separately.
//
// Usage:
//
//	experiments -all -quick            # representative configs, fast
//	experiments -fig6 -n 500000        # full six configs for Figure 6
//	experiments -fig8 -benchmarks 433.milc,470.lbm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bopsim/internal/experiments"
	"bopsim/internal/plot"
	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

func main() {
	var (
		all     = flag.Bool("all", false, "run every table and figure")
		quick   = flag.Bool("quick", false, "use the representative config subset instead of all six")
		n       = flag.Uint64("n", 300_000, "instructions per simulation (core 0)")
		benchCS = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 29)")
		verbose = flag.Bool("v", false, "log every simulation run")

		table1 = flag.Bool("table1", false, "print Table 1 (baseline microarchitecture)")
		table2 = flag.Bool("table2", false, "print Table 2 (BO parameters)")
		doPlot = flag.Bool("plot", false, "render each figure's first column as an ASCII chart")
		fig    [14]*bool
	)
	for i := 2; i <= 13; i++ {
		fig[i] = flag.Bool(fmt.Sprintf("fig%d", i), false, fmt.Sprintf("regenerate Figure %d", i))
	}
	flag.Parse()

	configs := experiments.AllConfigs()
	if *quick {
		configs = experiments.QuickConfigs()
	}
	r := experiments.NewRunner(*n, configs)
	if *benchCS != "" {
		r.Benchmarks = strings.Split(*benchCS, ",")
	} else if *quick {
		// Quick mode also trims the workload list to the memory-active
		// benchmarks plus a few compute-bound representatives.
		r.Benchmarks = quickBenchmarks()
	}
	if *verbose {
		r.Log = os.Stderr
	}

	any := *table1 || *table2
	for i := 2; i <= 13; i++ {
		any = any || *fig[i]
	}
	if !any && !*all {
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	show := func(tables ...*stats.Table) {
		for _, tb := range tables {
			tb.Render(os.Stdout)
			if *doPlot {
				c := &plot.Chart{Title: tb.Title + " [" + tb.Columns[0] + "]", Reference: 1.0}
				for _, row := range tb.Rows() {
					if v, ok := tb.Value(row, 0); ok {
						c.Add(row, v)
					}
				}
				c.Render(os.Stdout)
				fmt.Println()
			}
		}
	}
	if *all || *table1 {
		fmt.Print(experiments.Table1())
		fmt.Println()
	}
	if *all || *table2 {
		fmt.Print(experiments.Table2())
		fmt.Println()
	}
	if *all || *fig[2] {
		show(r.Fig2())
	}
	if *all || *fig[3] {
		show(r.Fig3()...)
	}
	if *all || *fig[4] {
		show(r.Fig4())
	}
	if *all || *fig[5] {
		show(r.Fig5())
	}
	if *all || *fig[6] {
		show(r.Fig6())
	}
	if *all || *fig[7] {
		show(r.Fig7())
	}
	if *all || *fig[8] {
		offsets := experiments.Fig8Offsets()
		if *quick {
			offsets = nil
			for d := 2; d <= 256; d += 6 {
				offsets = append(offsets, d)
			}
		}
		show(r.Fig8(offsets))
	}
	if *all || *fig[9] {
		show(r.Fig9())
	}
	if *all || *fig[10] {
		show(r.Fig10())
	}
	if *all || *fig[11] {
		show(r.Fig11())
	}
	if *all || *fig[12] {
		show(r.Fig12())
	}
	if *all || *fig[13] {
		show(r.Fig13())
	}
	fmt.Fprintf(os.Stderr, "total time: %v\n", time.Since(start))
}

// quickBenchmarks is the subset used by -quick: every benchmark the paper's
// figures single out, plus compute-bound representatives so the GM stays
// meaningful.
func quickBenchmarks() []string {
	want := map[string]bool{
		"403.gcc": true, "410.bwaves": true, "416.gamess": true,
		"429.mcf": true, "433.milc": true, "437.leslie3d": true,
		"450.soplex": true, "456.hmmer": true, "459.GemsFDTD": true,
		"462.libquantum": true, "465.tonto": true, "470.lbm": true,
		"471.omnetpp": true, "473.astar": true, "482.sphinx3": true,
		"483.xalancbmk": true,
	}
	var out []string
	for _, b := range trace.Benchmarks() {
		if want[b] {
			out = append(out, b)
		}
	}
	return out
}
