// Command experiments regenerates the paper's tables and figures as text
// tables. Each -figN flag runs the simulations that figure needs; -all runs
// everything. The runs are scheduled on a worker pool (-j) and deduplicated
// within one invocation; with -cache DIR completed simulations also persist
// across invocations, so re-running a figure is nearly free. -json DIR
// additionally writes each figure as machine-readable JSON.
//
// Usage:
//
//	experiments -all -quick                    # representative configs, fast
//	experiments -all -j 8 -cache .simcache     # parallel + persistent cache
//	experiments -fig6 -n 500000 -json out/     # full six configs for Figure 6
//	experiments -fig8 -benchmarks 433.milc,470.lbm
//	experiments -zoo -quick                    # every registered prefetcher
//	experiments -all -cache .simcache -cache-max-mb 256
//	experiments -all -workers 10.0.0.7:9123,10.0.0.8:9123 -cache .simcache
//	experiments -all -status :8090             # live progress JSON endpoint
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"bopsim/internal/distrib"
	"bopsim/internal/experiments"
	"bopsim/internal/fleet"
	"bopsim/internal/plot"
	"bopsim/internal/profiling"
	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

func main() {
	var (
		all      = flag.Bool("all", false, "run every table and figure")
		quick    = flag.Bool("quick", false, "use the representative config subset instead of all six")
		n        = flag.Uint64("n", 300_000, "instructions per simulation (core 0)")
		benchCS  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 29)")
		wlCS     = flag.String("workloads", "", "';'-separated core-0 workload specs, one table ROW each (satellite cores run microthrash; overrides -benchmarks). Unlike bosim -workloads, entries here are rows, not cores — per-core heterogeneous runs are bosim's job")
		verbose  = flag.Bool("v", false, "log every simulation run")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "simulations to run concurrently")
		cacheDir = flag.String("cache", "", "persistent result-cache directory (empty: in-memory only)")
		jsonDir  = flag.String("json", "", "also write each figure as JSON into this directory")

		warmup     = flag.Uint64("warmup", 0, "warmup instructions per simulation before the measured region (stats reset at the barrier)")
		checkpoint = flag.Bool("checkpoint", false, "share warmup across sweep variants: one checkpointed warmup leg per trace+config group (needs -warmup)")
		ckptDir    = flag.String("checkpoint-dir", "", "warmup snapshot directory (default: <-cache>/checkpoints, or a temp directory)")
		cacheMaxMB = flag.Int64("cache-max-mb", 0, "evict oldest cache entries past this size budget after the run (0: unbounded)")
		workersCS  = flag.String("workers", "", "comma-separated boworkerd addresses (host:port,...) to execute simulations on instead of this process")
		statusAddr = flag.String("status", "", "serve scheduler progress as JSON on this address (e.g. :8090) for long sweeps")
		submitURL  = flag.String("submit", "", "submit the selected targets to a bofleetd coordinator at this URL and tail them (execution-side flags -j/-cache/-workers are the coordinator's business then)")
		submitAs   = flag.String("as", "", "submitter identity for -submit (fair-share tenant; default: $USER or anon)")
		priority   = flag.Int("priority", 0, "queue priority for -submit (higher runs first)")

		table1 = flag.Bool("table1", false, "print Table 1 (baseline microarchitecture)")
		table2 = flag.Bool("table2", false, "print Table 2 (BO parameters)")
		zoo    = flag.Bool("zoo", false, "run every registered L2 prefetcher (the registry-driven ablation sweep)")
		wzoo   = flag.Bool("wzoo", false, "run every registered workload generator (the workload-axis registry sweep)")
		doPlot = flag.Bool("plot", false, "render each figure's first column as an ASCII chart")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at the end of the sweep to this file")

		fig [14]*bool
	)
	for i := 2; i <= 13; i++ {
		fig[i] = flag.Bool(fmt.Sprintf("fig%d", i), false, fmt.Sprintf("regenerate Figure %d", i))
	}
	flag.Parse()

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	defer stopProfiles()

	// selected reports whether a renderable target was asked for; the
	// dispatch below walks experiments.TargetNames() (canonical output
	// order) through it, so local and submitted runs enumerate targets
	// identically.
	selected := func(name string) bool {
		switch name {
		case "table1":
			return *all || *table1
		case "table2":
			return *all || *table2
		case "zoo":
			return *all || *zoo
		case "wzoo":
			// Deliberately not part of -all: the legacy -all output stays
			// byte-identical to the pre-spec table set.
			return *wzoo
		default:
			var i int
			fmt.Sscanf(name, "fig%d", &i)
			return i >= 2 && i <= 13 && (*all || *fig[i])
		}
	}

	if *submitURL != "" {
		var targets []string
		for _, name := range experiments.TargetNames() {
			if selected(name) {
				targets = append(targets, name)
			}
		}
		if len(targets) == 0 {
			flag.Usage()
			os.Exit(2)
		}
		req := fleet.SweepRequest{
			Quick:        *quick,
			Instructions: *n,
			Warmup:       *warmup,
			Submitter:    submitter(*submitAs),
			Priority:     *priority,
		}
		if *wlCS != "" {
			req.Workloads = splitList(*wlCS, ";")
		} else if *benchCS != "" {
			req.Workloads = splitList(*benchCS, ",")
		}
		os.Exit(submitAndTail(*submitURL, targets, req))
	}

	if *cacheDir != "" {
		// Rewrite any enum-era (v1) entries to the spec-based schema before
		// the Runner consults the cache, so a version bump costs a rekey,
		// not a re-simulation.
		if migrated, dropped, err := experiments.MigrateCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: cache migration: %v\n", err)
			os.Exit(1)
		} else if migrated > 0 || dropped > 0 {
			fmt.Fprintf(os.Stderr, "cache: migrated %d entries to schema v%d (%d dropped)\n", migrated, experiments.SchemaVersion(), dropped)
		}
	}

	configs := experiments.AllConfigs()
	if *quick {
		configs = experiments.QuickConfigs()
	}
	r := experiments.NewRunner(*n, configs)
	r.Workers = *jobs
	r.CacheDir = *cacheDir
	r.Warmup = *warmup
	r.Checkpoint = *checkpoint
	r.CheckpointDir = *ckptDir
	if *checkpoint && *warmup == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -checkpoint needs -warmup N (there is no warmup to share otherwise)")
		os.Exit(2)
	}
	if *workersCS != "" {
		pool, err := distrib.Dial(strings.Split(*workersCS, ","), distrib.RetryPolicy{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		r.Backend = pool
		total, _ := pool.Workers()
		fmt.Fprintf(os.Stderr, "distributed: %d workers, %d execution slots\n", total, pool.Slots())
	}
	if *statusAddr != "" {
		// Best-effort observability: a sweep must not die because the
		// status port is taken.
		go func() {
			if err := http.ListenAndServe(*statusAddr, experiments.StatusHandler(r)); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: status endpoint: %v\n", err)
			}
		}()
	}
	if *wlCS != "" {
		specs, err := trace.ParseSpecList(*wlCS)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		r.Benchmarks = specs
	} else if *benchCS != "" {
		// Legacy spelling: comma-separated bare benchmark names.
		r.Benchmarks = nil
		for _, b := range strings.Split(*benchCS, ",") {
			sp, err := trace.ParseSpec(b)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(2)
			}
			r.Benchmarks = append(r.Benchmarks, sp)
		}
	} else if *quick {
		// Quick mode also trims the workload list to the memory-active
		// benchmarks plus a few compute-bound representatives.
		r.Benchmarks = experiments.QuickBenchmarks()
	}
	if *verbose {
		r.Log = os.Stderr
	} else {
		// Live progress: one rewritten line per scheduled job set. The
		// callback runs on worker goroutines: a mutex keeps the counter
		// monotonic on screen (worker completions can report out of
		// order), and the final wipe is padded to the longest line
		// printed so no residue is left for the summary to land on.
		var mu sync.Mutex
		shown := 0
		r.Progress = func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if done < shown {
				return
			}
			shown = done
			line := fmt.Sprintf("  %d/%d sims", done, total)
			fmt.Fprint(os.Stderr, "\r"+line)
			if done == total {
				shown = 0 // next job set starts over
				fmt.Fprint(os.Stderr, "\r"+strings.Repeat(" ", len(line))+"\r")
			}
		}
	}

	any := false
	for _, name := range experiments.TargetNames() {
		any = any || selected(name)
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *checkpoint && *ckptDir == "" && *cacheDir == "" {
		// Snapshots have nowhere durable to live: use a private directory
		// for this invocation and remove it on exit, so repeated sweeps
		// don't accumulate multi-MB snapshots in the system temp dir. This
		// sits after all flag validation so usage errors (os.Exit above)
		// never create the directory; error exits below go through fatalf,
		// which removes it (os.Exit skips defers).
		dir, err := os.MkdirTemp("", "bopsim-checkpoints-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		tmpCkptDir = dir
		r.CheckpointDir = dir
	}

	start := time.Now()
	show := func(name string, tables ...*stats.Table) {
		for _, tb := range tables {
			tb.Render(os.Stdout)
			if *doPlot {
				c := &plot.Chart{Title: tb.Title + " [" + tb.Columns[0] + "]", Reference: 1.0}
				for _, row := range tb.Rows() {
					if v, ok := tb.Value(row, 0); ok {
						c.Add(row, v)
					}
				}
				c.Render(os.Stdout)
				fmt.Println()
			}
		}
		if *jsonDir != "" {
			if err := writeJSON(filepath.Join(*jsonDir, name+".json"), tables); err != nil {
				fatalf("experiments: %v\n", err)
			}
		}
	}
	// One dispatch for every target, shared with the fleet service
	// (experiments.TargetTables): a sweep submitted to bofleetd renders
	// through the same calls, so its bytes match this path by
	// construction.
	for _, name := range experiments.TargetNames() {
		if !selected(name) {
			continue
		}
		switch name {
		case "table1":
			fmt.Print(experiments.Table1())
			fmt.Println()
		case "table2":
			fmt.Print(experiments.Table2())
			fmt.Println()
		default:
			tables, err := experiments.TargetTables(r, name, *quick)
			if err != nil {
				fatalf("experiments: %v\n", err)
			}
			show(name, tables...)
		}
	}
	if *cacheDir != "" && *cacheMaxMB > 0 {
		removed, freed, err := experiments.EvictCache(*cacheDir, *cacheMaxMB<<20)
		if err != nil {
			fatalf("experiments: cache eviction: %v\n", err)
		}
		if removed > 0 {
			fmt.Fprintf(os.Stderr, "cache: evicted %d oldest entries (%d KB) to stay under %d MB\n",
				removed, freed>>10, *cacheMaxMB)
		}
	}
	fmt.Fprintf(os.Stderr, "total time: %v (%d simulations executed, -j %d)\n",
		time.Since(start).Round(time.Millisecond), r.Executed(), *jobs)
}

// tmpCkptDir is the private fallback snapshot directory, when one was
// created; fatalf removes it on error exits, since os.Exit skips the defer
// that handles the normal path.
var tmpCkptDir string

// fatalf reports an error and exits 1, cleaning up the temporary snapshot
// directory first.
func fatalf(format string, args ...any) {
	if tmpCkptDir != "" {
		os.RemoveAll(tmpCkptDir)
	}
	fmt.Fprintf(os.Stderr, format, args...)
	os.Exit(1)
}

// writeJSON stores one figure's tables (most figures have one; Figure 3 has
// two) as a JSON array.
func writeJSON(path string, tables []*stats.Table) error {
	b, err := json.MarshalIndent(tables, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
