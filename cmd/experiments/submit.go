package main

// The -submit mode: instead of executing locally, enqueue the selected
// targets on a bofleetd coordinator and tail them. Every target becomes
// one sweep (same submitter, so the fair-share queue grants them in
// submission order against an idle fleet) and each sweep's output — which
// the coordinator renders through the exact dispatch main() uses — is
// printed to stdout in the canonical target order, so piping -submit and
// a local run to diff is the intended verification.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"bopsim/internal/fleet"
)

// submitter resolves the fair-share identity for -submit: the -as flag,
// else $USER, else the service's "anon" default.
func submitter(as string) string {
	if as != "" {
		return as
	}
	return os.Getenv("USER")
}

// splitList splits a flag value on sep, trimming blanks.
func splitList(csv, sep string) []string {
	var out []string
	for _, s := range strings.Split(csv, sep) {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// submitAndTail enqueues one sweep per target, waits for each in order,
// and prints the outputs. Returns the process exit code.
func submitAndTail(url string, targets []string, req fleet.SweepRequest) int {
	url = strings.TrimSuffix(url, "/")
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	client := &http.Client{Timeout: 30 * time.Second}
	ids := make([]int, 0, len(targets))
	for _, target := range targets {
		r := req
		r.Target = target
		id, err := submitSweep(client, url, r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: submitting %s: %v\n", target, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "submitted %s as sweep %d\n", target, id)
		ids = append(ids, id)
	}
	for i, id := range ids {
		st, err := tailSweep(client, url, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: sweep %d (%s): %v\n", id, targets[i], err)
			return 1
		}
		if st.State == fleet.StateFailed {
			fmt.Fprintf(os.Stderr, "experiments: sweep %d (%s) failed: %s\n", id, targets[i], st.Error)
			return 1
		}
		fmt.Print(st.Output)
	}
	return 0
}

func submitSweep(client *http.Client, url string, req fleet.SweepRequest) (int, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url+"/v1/sweeps", "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		return 0, fmt.Errorf("%s", eb.Error)
	}
	var out struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// tailSweep polls one sweep until it completes, echoing progress to
// stderr. Coordinator hiccups (connection refused during a restart, a
// timeout) are retried indefinitely: the sweep is journaled, so it will
// finish once the coordinator is back.
func tailSweep(client *http.Client, url string, id int) (fleet.SweepStatus, error) {
	var last string
	for {
		st, err := getSweep(client, url, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "\rcoordinator unreachable (%v), retrying...", err)
			last = ""
			time.Sleep(2 * time.Second)
			continue
		}
		switch st.State {
		case fleet.StateDone, fleet.StateFailed:
			if last != "" {
				fmt.Fprint(os.Stderr, "\r"+strings.Repeat(" ", len(last))+"\r")
			}
			return st, nil
		case fleet.StatePending:
			line := fmt.Sprintf("sweep %d queued (position %d)", id, st.Position)
			fmt.Fprint(os.Stderr, "\r"+pad(line, len(last)))
			last = line
		case fleet.StateRunning:
			line := fmt.Sprintf("sweep %d running", id)
			if p := st.Progress; p != nil && p.Total > 0 {
				line = fmt.Sprintf("sweep %d running: %d/%d sims", id, p.Done, p.Total)
			}
			fmt.Fprint(os.Stderr, "\r"+pad(line, len(last)))
			last = line
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// pad right-pads line to width so a shorter rewrite wipes its
// predecessor.
func pad(line string, width int) string {
	if len(line) < width {
		return line + strings.Repeat(" ", width-len(line))
	}
	return line
}

func getSweep(client *http.Client, url string, id int) (fleet.SweepStatus, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/sweeps/%d", url, id))
	if err != nil {
		return fleet.SweepStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleet.SweepStatus{}, fmt.Errorf("coordinator answered %s", resp.Status)
	}
	var st fleet.SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fleet.SweepStatus{}, err
	}
	return st, nil
}
