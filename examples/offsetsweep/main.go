// Offsetsweep reproduces a slice of the paper's Figure 8: it sweeps fixed
// prefetch offsets on the 433.milc stand-in (whose speedup peaks at
// multiples of 32) and renders an ASCII profile with the Best-Offset
// prefetcher's speedup as a reference line.
package main

import (
	"fmt"
	"strings"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sim"
)

func run(pf prefetch.Spec) sim.Result {
	o := sim.DefaultOptions("433.milc")
	o.Page = mem.Page4M
	o.Instructions = 250_000
	o.L2PF = pf
	return sim.MustRun(o)
}

func main() {
	baseline := run(sim.PFNextLine)
	bo := run(sim.PFBO)
	boSpeedup := bo.IPC / baseline.IPC

	fmt.Printf("433.milc stand-in, 4MB pages, 1 core (speedup vs next-line)\n")
	fmt.Printf("BO prefetcher: %.3f (learned offset %d)\n\n", boSpeedup, bo.FinalBOOffset)

	for d := 2; d <= 128; d += 2 {
		r := run(sim.PFOffsetD(d))
		speedup := r.IPC / baseline.IPC
		bar := int((speedup - 0.90) * 100)
		if bar < 0 {
			bar = 0
		}
		marker := " "
		if d%32 == 0 {
			marker = "*" // the paper's peaks: multiples of 32
		}
		fmt.Printf("D=%3d %s %5.3f %s\n", d, marker, speedup, strings.Repeat("#", bar))
	}
	fmt.Println("\n(*) offsets that are multiples of 32, where Figure 8 peaks")
}
