// Stepping drives the engine's incremental API directly: instead of running
// a simulation to completion, it constructs an engine.Simulation, advances
// it in fixed cycle quanta and snapshots between steps, printing the IPC
// trajectory and the offset the BO prefetcher currently favours. This is
// the view a monitoring dashboard (or the cancellable scheduler in
// internal/experiments) has of a run, and it makes BO's learning phases
// visible in time rather than only in the final aggregate.
package main

import (
	"fmt"

	"bopsim/internal/engine"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func main() {
	o := engine.DefaultOptions("433.milc")
	o.Page = mem.Page4M
	o.L2PF = prefetch.MustSpec("bo")
	o.Instructions = 400_000

	s, err := engine.New(o)
	if err != nil {
		panic(err)
	}

	fmt.Printf("%s, %d instructions, BO prefetcher — sampled every 50k cycles\n\n", o.WorkloadLabel(), o.Instructions)
	fmt.Printf("%-10s %10s %10s %10s %8s\n", "cycle", "retired", "IPC", "phases", "offset")

	const quantum = 50_000
	for {
		done, err := s.Step(quantum)
		if err != nil {
			panic(err)
		}
		snap := s.Snapshot()
		fmt.Printf("%-10d %10d %10.3f %10d %8d\n",
			snap.Cycles, snap.Instructions, snap.IPC, snap.BO.Phases, snap.FinalBOOffset)
		if done {
			break
		}
	}

	final := s.Snapshot()
	fmt.Printf("\nfinal: IPC %.3f over %d cycles; BO settled on offset %d after %d phases\n",
		final.IPC, final.Cycles, final.FinalBOOffset, final.BO.Phases)
}
