// Learning drives a Best-Offset prefetcher directly — no simulator — to
// show the learning machinery of section 4 in isolation: the round-robin
// offset scoring against the recent-requests table, phase boundaries, and
// throttling. The "memory system" here is just a FIFO that completes
// prefetches a fixed number of accesses later, which is enough to
// demonstrate that BO picks an offset large enough to cover the latency.
package main

import (
	"fmt"

	"bopsim/internal/core"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func phaseOffsets(lag int) []int {
	p := core.New(mem.Page4M, core.DefaultParams())
	var pending []mem.LineAddr
	var picks []int
	lastPhases := uint64(0)
	x := mem.LineAddr(0)
	for i := 0; i < 300_000 && len(picks) < 6; i++ {
		targets := p.OnAccess(prefetch.AccessInfo{Line: x}) // every access "misses"
		pending = append(pending, targets...)
		// Complete prefetches lag accesses after they were issued.
		if len(pending) > lag {
			p.OnFill(pending[0], true)
			pending = pending[1:]
		}
		if !p.Enabled() {
			p.OnFill(x, false) // D=0 insertion while prefetch is off
		}
		if s := p.Stats(); s.Phases != lastPhases {
			lastPhases = s.Phases
			picks = append(picks, p.Offset())
		}
		x++ // sequential stream
	}
	return picks
}

func main() {
	fmt.Println("BO on a sequential stream; prefetches complete `lag` accesses late")
	fmt.Println("(the learned offset must exceed the lag for timely prefetching)")
	for _, lag := range []int{2, 8, 20, 40} {
		fmt.Printf("lag=%2d -> offsets picked per phase: %v\n", lag, phaseOffsets(lag))
	}

	fmt.Println("\nBO on uniform random accesses (no usable offset):")
	p := core.New(mem.Page4K, core.DefaultParams())
	seed := uint64(42)
	for i := 0; i < 200_000; i++ {
		seed = mem.Mix64(seed)
		x := mem.LineAddr(seed % (1 << 40))
		for _, t := range p.OnAccess(prefetch.AccessInfo{Line: x}) {
			p.OnFill(t, true)
		}
		if !p.Enabled() {
			p.OnFill(x, false)
		}
	}
	s := p.Stats()
	fmt.Printf("prefetch enabled: %v (phases %d, turned off in %d)\n",
		p.Enabled(), s.Phases, s.PhasesOff)
}
