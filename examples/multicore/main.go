// Multicore reproduces the paper's multi-core observation (section 6): when
// core 0 shares the L3 and memory bandwidth with cache-thrashing neighbours,
// L2 miss latency grows, the best offset grows with it, and the BO
// prefetcher's advantage over next-line widens — until bandwidth itself
// becomes the bottleneck at 4 active cores.
package main

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/sim"
)

func main() {
	fmt.Println("470.lbm stand-in, 4MB pages; cores 1-3 run the cache thrasher")
	fmt.Printf("%-8s %12s %12s %10s %10s\n", "cores", "next-line", "BO", "speedup", "BO offset")
	for _, cores := range []int{1, 2, 4} {
		base := sim.DefaultOptions("470.lbm")
		base.Page = mem.Page4M
		base.Cores = cores
		base.Instructions = 300_000

		nl := sim.MustRun(base)

		boOpts := base
		boOpts.L2PF = sim.PFBO
		bo := sim.MustRun(boOpts)

		fmt.Printf("%-8d %12.3f %12.3f %10.3f %10d\n",
			cores, nl.IPC, bo.IPC, bo.IPC/nl.IPC, bo.FinalBOOffset)
	}
}
