// Zoo demonstrates the prefetcher registry: it lists every registered L2
// prefetcher with its spec name, then runs each of them — by spec alone,
// never naming a concrete type — on one memory-bound workload and prints
// the speedup over the next-line baseline. A prefetcher registered from a
// new package (like internal/multi) appears here automatically; see
// internal/prefetch/all.
package main

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sim"
)

func main() {
	fmt.Println("registered L2 prefetchers:")
	for _, name := range prefetch.L2Names() {
		fmt.Printf("  %-10s %s\n", name, prefetch.L2Help(name))
	}
	fmt.Println("\nregistered DL1 prefetchers:")
	for _, name := range prefetch.L1Names() {
		fmt.Printf("  %-10s %s\n", name, prefetch.L1Help(name))
	}

	base := sim.DefaultOptions("462.libquantum")
	base.Page = mem.Page4M
	base.Instructions = 250_000
	baseline := sim.MustRun(base)

	fmt.Printf("\n%s, %s, speedup vs next-line:\n", base.WorkloadLabel(), sim.ConfigLabel(base.Cores, base.Page))
	for _, name := range prefetch.L2Names() {
		o := base
		o.L2PF = prefetch.Spec{Name: name}
		r := sim.MustRun(o)
		fmt.Printf("  %-10s IPC %6.3f  speedup %5.3f\n", name, r.IPC, r.IPC/baseline.IPC)
	}

	// Parameterized variants are one spec string away.
	for _, spec := range []string{"offset:d=4", "bo:badscore=5", "multi:offsets=1+2+4+8"} {
		o := base
		o.L2PF = prefetch.MustSpec(spec)
		r := sim.MustRun(o)
		fmt.Printf("  %-22s IPC %6.3f  speedup %5.3f\n", spec, r.IPC, r.IPC/baseline.IPC)
	}
}
