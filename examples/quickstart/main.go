// Quickstart: run one memory-bound workload with the baseline next-line L2
// prefetcher and with the Best-Offset prefetcher, and print the speedup and
// the offset BO learned. This is the smallest end-to-end use of the
// simulator API.
package main

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/sim"
)

func main() {
	base := sim.DefaultOptions("462.libquantum")
	base.Page = mem.Page4M
	base.Instructions = 400_000

	nextLine := sim.MustRun(base)

	boOpts := base
	boOpts.L2PF = sim.PFBO
	bo := sim.MustRun(boOpts)

	fmt.Printf("workload: %s (%s)\n", base.WorkloadLabel(), sim.ConfigLabel(base.Cores, base.Page))
	fmt.Printf("next-line prefetcher: IPC %.3f\n", nextLine.IPC)
	fmt.Printf("Best-Offset:          IPC %.3f (learned offset %d)\n", bo.IPC, bo.FinalBOOffset)
	fmt.Printf("speedup:              %.3f\n", bo.IPC/nextLine.IPC)
	fmt.Printf("\nBO learning: %d phases, %d RR insertions, prefetch off in %d phases\n",
		bo.BO.Phases, bo.BO.RRInsertions, bo.BO.PhasesOff)
}
