# Developer entry points. CI (.github/workflows/ci.yml) runs the same gates
# split into legible jobs; keep the two in sync.

GO ?= go

.PHONY: all build test race lint fmt bovet schema-lock

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the stock gates plus bovet, the repo's own analyzer suite
# (internal/analysis): nondeterm, statecodec, hotalloc, registryinit,
# schemalock, sigcomplete, deadallow — see DESIGN.md "Static invariants".
# staticcheck and govulncheck additionally run in CI at pinned versions; run
# them locally if installed.
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/bovet ./...

bovet:
	$(GO) run ./cmd/bovet ./...

# schema-lock regenerates internal/analysis/schemalock/schema.lock from the
# current tree after a reviewed layout change. The generator refuses to run
# when a governed layout changed without its version constant
# (engine.SnapshotVersion, distrib.ProtocolVersion, or the result-cache
# version) being bumped first — bump, regenerate, commit both.
schema-lock:
	$(GO) run ./cmd/bovet -write-schema-lock ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
