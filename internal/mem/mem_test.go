package mem

import (
	"testing"
	"testing/quick"
)

func TestLineConversionRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		l := LineOf(addr)
		back := ByteOf(l)
		// The line base must be <= addr and within one line of it.
		return uint64(back) <= a && a-uint64(back) < LineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageSizeBits(t *testing.T) {
	if got := Page4K.Bits(); got != 12 {
		t.Errorf("Page4K.Bits() = %d, want 12", got)
	}
	if got := Page4M.Bits(); got != 22 {
		t.Errorf("Page4M.Bits() = %d, want 22", got)
	}
}

func TestLinesPerPage(t *testing.T) {
	if got := Page4K.LinesPerPage(); got != 64 {
		t.Errorf("4KB page has %d lines, want 64", got)
	}
	if got := Page4M.LinesPerPage(); got != 65536 {
		t.Errorf("4MB page has %d lines, want 65536", got)
	}
}

func TestSamePage(t *testing.T) {
	// Lines 0..63 share the first 4KB page; line 64 does not.
	if !Page4K.SamePage(0, 63) {
		t.Error("lines 0 and 63 should share a 4KB page")
	}
	if Page4K.SamePage(0, 64) {
		t.Error("lines 0 and 64 must not share a 4KB page")
	}
	// With 4MB pages, lines 0 and 64 do share a page.
	if !Page4M.SamePage(0, 64) {
		t.Error("lines 0 and 64 should share a 4MB page")
	}
}

func TestLineIndexInPage(t *testing.T) {
	for _, tc := range []struct {
		line LineAddr
		want uint64
	}{
		{0, 0}, {1, 1}, {63, 63}, {64, 0}, {65, 1}, {130, 2},
	} {
		if got := Page4K.LineIndexInPage(tc.line); got != tc.want {
			t.Errorf("LineIndexInPage(%d) = %d, want %d", tc.line, got, tc.want)
		}
	}
}

func TestPageSizeString(t *testing.T) {
	if Page4K.String() != "4KB" || Page4M.String() != "4MB" {
		t.Errorf("unexpected page size strings: %s %s", Page4K, Page4M)
	}
	if got := PageSize(8192).String(); got != "8192B" {
		t.Errorf("PageSize(8192).String() = %q, want 8192B", got)
	}
}

func TestTranslatorPreservesPageOffset(t *testing.T) {
	tr := NewTranslator(Page4K, 12345)
	f := func(a uint64) bool {
		va := Addr(a)
		pa := tr.Translate(va)
		return uint64(pa)&(uint64(Page4K)-1) == uint64(va)&(uint64(Page4K)-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTranslatorDeterministic(t *testing.T) {
	a := NewTranslator(Page4K, 7)
	b := NewTranslator(Page4K, 7)
	for va := Addr(0); va < 1<<20; va += 4096 {
		if a.Translate(va) != b.Translate(va) {
			t.Fatalf("translators with identical seeds disagree at %#x", va)
		}
	}
}

func TestTranslatorSamePageStaysTogether(t *testing.T) {
	tr := NewTranslator(Page4K, 99)
	base := Addr(0x1234000)
	pa0 := tr.Translate(base)
	for off := Addr(1); off < 4096; off += 64 {
		pa := tr.Translate(base + off)
		if pa != pa0+off {
			t.Fatalf("offset %d broke page contiguity: %#x vs %#x", off, pa, pa0+off)
		}
	}
}

func TestTranslatorSeedsDiffer(t *testing.T) {
	a := NewTranslator(Page4K, 1)
	b := NewTranslator(Page4K, 2)
	same := 0
	for va := Addr(0); va < 1<<22; va += 4096 {
		if a.Translate(va) == b.Translate(va) {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds mapped %d pages identically", same)
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	for bitIdx := uint(0); bitIdx < 64; bitIdx += 7 {
		x := uint64(0xdeadbeefcafef00d)
		diff := Mix64(x) ^ Mix64(x^(1<<bitIdx))
		ones := 0
		for d := diff; d != 0; d &= d - 1 {
			ones++
		}
		if ones < 16 || ones > 48 {
			t.Errorf("bit %d: only %d output bits flipped", bitIdx, ones)
		}
	}
}
