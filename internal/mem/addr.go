// Package mem provides address arithmetic shared by every component of the
// simulator: byte/line/page address conversions, page-boundary checks, and
// the virtual-to-physical randomizing translation used by the paper
// (Michaud, HPCA 2016, section 5.1).
//
// Throughout the simulator, addresses are 64-bit and cache lines are 64
// bytes. A "line address" is a byte address shifted right by LineBits.
package mem

// Line and page geometry. Lines are fixed at 64 bytes as in the paper
// (Table 1). Page size is a run-time parameter (4KB or 4MB).
const (
	// LineBits is log2 of the cache line size in bytes.
	LineBits = 6
	// LineSize is the cache line size in bytes.
	LineSize = 1 << LineBits
)

// Addr is a byte address (virtual or physical depending on context).
type Addr uint64

// LineAddr is a cache-line address: a byte address divided by LineSize.
type LineAddr uint64

// LineOf returns the line address containing byte address a.
func LineOf(a Addr) LineAddr { return LineAddr(a >> LineBits) }

// ByteOf returns the first byte address of line l.
func ByteOf(l LineAddr) Addr { return Addr(l) << LineBits }

// PageSize describes a memory page size in bytes. Only 4KB and 4MB are used
// in the paper's evaluation, but any power of two ≥ LineSize works.
type PageSize uint64

// Predefined page sizes used in the paper's six baseline configurations.
const (
	Page4K PageSize = 4 << 10
	Page4M PageSize = 4 << 20
)

// Bits returns log2 of the page size.
func (p PageSize) Bits() uint {
	b := uint(0)
	for s := uint64(p); s > 1; s >>= 1 {
		b++
	}
	return b
}

// LinesPerPage returns the number of cache lines per page.
func (p PageSize) LinesPerPage() uint64 { return uint64(p) >> LineBits }

// PageOf returns the page number of byte address a.
func (p PageSize) PageOf(a Addr) uint64 { return uint64(a) >> p.Bits() }

// PageOfLine returns the page number containing line l.
func (p PageSize) PageOfLine(l LineAddr) uint64 {
	return uint64(l) >> (p.Bits() - LineBits)
}

// SamePage reports whether two line addresses lie in the same page. Offset
// prefetchers never prefetch across a page boundary (paper section 4).
func (p PageSize) SamePage(a, b LineAddr) bool {
	return p.PageOfLine(a) == p.PageOfLine(b)
}

// LineIndexInPage returns the position of line l inside its page
// (0 .. LinesPerPage-1).
func (p PageSize) LineIndexInPage(l LineAddr) uint64 {
	return uint64(l) & (p.LinesPerPage() - 1)
}

// String implements fmt.Stringer for readable experiment labels.
func (p PageSize) String() string {
	switch p {
	case Page4K:
		return "4KB"
	case Page4M:
		return "4MB"
	}
	// Fall back to an exact byte count for unusual sizes.
	return itoa(uint64(p)) + "B"
}

// itoa is a tiny allocation-free uint formatter so that hot paths can build
// labels without importing fmt.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
