// Checkpoint/restore for engine.Simulation.
//
// A checkpoint is taken at the warmup barrier, where the machine is drained
// dry: no in-flight requests, no futures, no ROB entries — only persistent
// state (cache contents and replacement state, TLB residency, DRAM bank
// registers, generator cursors, random streams, and — under WarmupPF —
// each prefetcher's learned state via prefetch.StateCodec). That is what
// makes the format tractable and the restore provably exact: Restore
// rebuilds the machine from the same options and overwrites precisely the
// state the barrier defines.
//
// Snapshot layout:
//
//	magic    [8]byte  "BOCKPT01"
//	version  uint32   big endian, SnapshotVersion
//	payload  gob      one snapshot struct
//
// Snapshots are addressed by the SHA-256 of their full bytes (the same
// identity scheme as trace files; see trace.ContentSHA), and every snapshot
// embeds its warmup signature — the canonical encoding of every option that
// influenced the warmup leg — which Restore checks against the target
// options, so a snapshot can never be restored into a run it did not warm.
package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"bopsim/internal/cpu"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// SnapshotVersion is bumped whenever the snapshot payload schema or any
// serialized component's state layout changes incompatibly. Restore refuses
// other versions: a version skew means the two binaries disagree about what
// the bytes mean.
//
// v2: the warmup signature identifies workloads by per-core spec (file
// replays by content hash) instead of the Workload/TracePath pair, and
// generator cursors may carry mix sub-states.
//
// v3: the bo and multi prefetcher states carry their retunable parameters
// (offsets/degree/badscore, offsets/minscore) so prefetch.Retunable
// round-trips, and meta-prefetcher states (duel, adapt) frame nested child
// state.
const SnapshotVersion = 3

// snapshotMagic begins every snapshot.
const snapshotMagic = "BOCKPT01"

// maxSnapshotBytes bounds what Restore will even look at. A real snapshot
// is a few MB (the L3's line metadata dominates); anything beyond this is
// malformed or hostile.
const maxSnapshotBytes = 1 << 28

// snapshot is the gob payload.
//
//bovet:schemalock
type snapshot struct {
	// Sig is the producing run's warmup signature (WarmupSignature).
	Sig string
	// Cycles is the absolute cycle count at the barrier.
	Cycles uint64
	// Cores holds each core's drained state, index-aligned with the
	// machine's cores.
	Cores []cpu.State
	// Uncore is the drained hierarchy state.
	Uncore uncore.State
	// L2PF/L1PF hold each core's prefetcher state (prefetch.StateCodec
	// bytes), populated only for WarmupPF snapshots. A nil entry means
	// "construct fresh at the barrier" — the shared-warmup case.
	L2PF [][]byte
	L1PF [][]byte
}

// warmupSig is the canonical identity of a warmup leg: every normalized
// option that influences machine state up to the barrier. Instructions and
// MaxCycles are post-barrier knobs and deliberately absent; the prefetcher
// specs participate only under WarmupPF (otherwise the warmup runs without
// prefetching and is shared across specs). Trace replays are identified by
// content, not path, so a worker's local copy signs identically.
//
//bovet:schemalock
type warmupSig struct {
	Version int
	// Workloads holds one hash-form spec string per core: canonical specs
	// with file replays identified by content SHA-256, never by path, so a
	// worker's local copy signs identically.
	Workloads   []string
	Cores       int
	Page        mem.PageSize
	L3Policy    string
	LatePromote bool
	Seed        uint64
	CPU         cpu.Config
	Warmup      uint64
	WarmupPF    bool
	L2PF        string `json:",omitempty"`
	L1PF        string `json:",omitempty"`
}

// WarmupSignature returns the canonical string identifying this run's
// warmup leg. Two runs with equal signatures warm identical machines, so
// they can share one checkpoint; the experiment scheduler groups sweep
// variants by exactly this value. It reports an error when the options name
// a trace file that cannot be read.
func (o Options) WarmupSignature() (string, error) {
	o = o.Normalized()
	sig := warmupSig{
		Version:     SnapshotVersion,
		Cores:       o.Cores,
		Page:        o.Page,
		L3Policy:    o.L3Policy,
		LatePromote: o.LatePromote,
		Seed:        o.Seed,
		CPU:         o.CPU,
		Warmup:      o.Warmup,
		WarmupPF:    o.WarmupPF,
	}
	for _, w := range o.Workloads {
		hs, err := trace.WireSpec(w)
		if err != nil {
			return "", fmt.Errorf("engine: cannot compute warmup signature: %v", err)
		}
		sig.Workloads = append(sig.Workloads, hs.String())
	}
	if o.WarmupPF {
		sig.L2PF = o.L2PF.String()
		sig.L1PF = o.L1PF.String()
	}
	b, err := json.Marshal(sig)
	if err != nil {
		return "", fmt.Errorf("engine: encoding warmup signature: %v", err)
	}
	return string(b), nil
}

// Checkpoint serializes the simulation's state at the warmup barrier. It is
// only valid when AtBarrier reports true (after RunWarmup, before any
// measured cycle); any other point has in-flight state the format cannot
// carry, and Checkpoint reports an error rather than guessing.
func (s *Simulation) Checkpoint() ([]byte, error) {
	if !s.AtBarrier() {
		return nil, fmt.Errorf("engine: Checkpoint is only valid at the warmup barrier (call RunWarmup first)")
	}
	sig, err := s.opts.WarmupSignature()
	if err != nil {
		return nil, err
	}
	snap := snapshot{Sig: sig, Cycles: s.now}
	for _, c := range s.cores {
		cs, err := c.SaveState()
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		snap.Cores = append(snap.Cores, cs)
	}
	if snap.Uncore, err = s.hier.SaveState(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if s.opts.WarmupPF {
		// The prefetchers ran through the warmup: their learned state must
		// cross the checkpoint, so each must speak prefetch.StateCodec.
		for c := 0; c < s.opts.Cores; c++ {
			l2 := s.hier.L2Prefetcher(c)
			codec, ok := l2.(prefetch.StateCodec)
			if !ok {
				return nil, fmt.Errorf("engine: L2 prefetcher %q does not implement prefetch.StateCodec, cannot checkpoint WarmupPF state", l2.Name())
			}
			b, err := codec.SaveState()
			if err != nil {
				return nil, fmt.Errorf("engine: saving L2 prefetcher state: %w", err)
			}
			snap.L2PF = append(snap.L2PF, b)
			var l1b []byte
			if l1 := s.hier.L1Prefetcher(c); l1 != nil {
				codec, ok := l1.(prefetch.StateCodec)
				if !ok {
					return nil, fmt.Errorf("engine: L1 prefetcher %q does not implement prefetch.StateCodec, cannot checkpoint WarmupPF state", l1.Name())
				}
				if l1b, err = codec.SaveState(); err != nil {
					return nil, fmt.Errorf("engine: saving L1 prefetcher state: %w", err)
				}
			}
			snap.L1PF = append(snap.L1PF, l1b)
		}
	}

	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	if err := binary.Write(&buf, binary.BigEndian, uint32(SnapshotVersion)); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("engine: encoding snapshot: %v", err)
	}
	return buf.Bytes(), nil
}

// decodeSnapshot validates the container and decodes the payload. It never
// panics: structural damage gob might trip over is converted to an error,
// which is what lets corrupted or truncated snapshots fail safely (see
// FuzzRestore).
func decodeSnapshot(data []byte) (snap snapshot, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: malformed snapshot: %v", r)
		}
	}()
	if len(data) > maxSnapshotBytes {
		return snapshot{}, fmt.Errorf("engine: snapshot of %d bytes exceeds the %d-byte limit", len(data), maxSnapshotBytes)
	}
	if len(data) < len(snapshotMagic)+4 {
		return snapshot{}, fmt.Errorf("engine: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return snapshot{}, fmt.Errorf("engine: not a snapshot (bad magic %q)", data[:len(snapshotMagic)])
	}
	version := binary.BigEndian.Uint32(data[len(snapshotMagic):])
	if version != SnapshotVersion {
		return snapshot{}, fmt.Errorf("engine: snapshot version %d, this binary speaks %d", version, SnapshotVersion)
	}
	dec := gob.NewDecoder(bytes.NewReader(data[len(snapshotMagic)+4:]))
	if err := dec.Decode(&snap); err != nil {
		return snapshot{}, fmt.Errorf("engine: decoding snapshot: %v", err)
	}
	return snap, nil
}

// Restore builds a Simulation for o positioned exactly at the warmup
// barrier recorded in the snapshot, so running it to completion produces
// byte-identical results to running o from scratch (warmup included). The
// snapshot must carry the same warmup signature as o — same workload/trace
// content, core count, page size, seed, warmup length and (under WarmupPF)
// prefetcher specs. Corrupted, truncated or version-skewed snapshots are
// rejected with an error; partial state is never installed.
func Restore(data []byte, o Options) (*Simulation, error) {
	snap, err := decodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	sig, err := o.WarmupSignature()
	if err != nil {
		return nil, err
	}
	if sig != snap.Sig {
		return nil, fmt.Errorf("engine: snapshot warms a different run (signature %s, options need %s)", snap.Sig, sig)
	}
	s, err := build(o, true)
	if err != nil {
		return nil, err
	}
	if len(snap.Cores) != len(s.cores) {
		return nil, fmt.Errorf("engine: snapshot covers %d cores, options need %d", len(snap.Cores), len(s.cores))
	}
	for i, c := range s.cores {
		if err := c.RestoreState(snap.Cores[i]); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	if err := s.hier.RestoreState(snap.Uncore); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if s.opts.WarmupPF {
		if len(snap.L2PF) != len(s.cores) || len(snap.L1PF) != len(s.cores) {
			return nil, fmt.Errorf("engine: snapshot carries prefetcher state for %d/%d cores, options need %d",
				len(snap.L2PF), len(snap.L1PF), len(s.cores))
		}
		for c := 0; c < len(s.cores); c++ {
			if err := restorePFState(s.hier.L2Prefetcher(c), snap.L2PF[c]); err != nil {
				return nil, fmt.Errorf("engine: core %d L2 prefetcher: %w", c, err)
			}
			l1 := s.hier.L1Prefetcher(c)
			if l1 == nil {
				if len(snap.L1PF[c]) != 0 {
					return nil, fmt.Errorf("engine: core %d has no L1 prefetcher but the snapshot carries state for one", c)
				}
				continue
			}
			if err := restorePFState(l1, snap.L1PF[c]); err != nil {
				return nil, fmt.Errorf("engine: core %d L1 prefetcher: %w", c, err)
			}
		}
	}
	s.now = snap.Cycles
	s.startCycles = s.now
	s.startRetired = s.cores[0].Retired
	s.atBarrier = true
	return s, nil
}

// restorePFState feeds saved codec bytes into a freshly constructed
// prefetcher.
func restorePFState(pf any, state []byte) error {
	codec, ok := pf.(prefetch.StateCodec)
	if !ok {
		return fmt.Errorf("does not implement prefetch.StateCodec")
	}
	return codec.RestoreState(state)
}

// WriteSnapshot stores snapshot bytes at path atomically (temp file +
// rename in the destination directory), so a concurrent reader — parallel
// sweeps sharing a checkpoint directory, parallel bosim invocations
// sharing one snapshot file — never observes a torn write.
func WriteSnapshot(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
