// Package engine is the simulation engine proper: it owns the run options,
// the assembled machine (cores executing workload generators against the
// shared uncore) and the cycle loop, exposed as a constructed, steppable
// Simulation object rather than a single monolithic run function. Callers
// that just want the final measurements use internal/sim's thin wrappers;
// callers that need incremental control — schedulers running thousands of
// simulations on a worker pool, tools sampling mid-run state, anything that
// must honour cancellation — construct a Simulation and drive it.
//
// Prefetchers are configured through prefetch.Spec and the prefetcher
// registry: the engine never names a concrete prefetcher, so the prefetcher
// zoo grows by registration (see internal/prefetch/all), not by engine
// edits.
//
// The layering (see DESIGN.md) is:
//
//	engine.Simulation   one run: New -> Step/Run(ctx) -> Snapshot
//	sim.Run             compatibility wrapper, context.Background()
//	experiments.Runner  scheduler: dedup, worker pool, disk cache
package engine

import (
	"context"
	"fmt"

	"bopsim/internal/core"
	"bopsim/internal/cpu"
	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	_ "bopsim/internal/prefetch/all" // link every registered prefetcher
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// Options describes one simulation run. The zero values of most fields mean
// "use the baseline default"; Normalized resolves them, and anything keying
// a result cache must hash the normalized form so equivalent spellings of
// the same run share an entry.
type Options struct {
	Workload string
	// TracePath, when non-empty, replays a recorded trace file on core 0
	// instead of the named synthetic workload (see internal/trace's file
	// format and cmd/tracegen).
	TracePath string
	Cores     int // active cores: 1, 2 or 4
	Page      mem.PageSize
	// L2PF selects and parameterizes the per-core L2 prefetcher by
	// registry spec (e.g. "bo", "offset:d=4", "bo:badscore=5"). The zero
	// spec means the baseline next-line prefetcher.
	L2PF prefetch.Spec
	// L1PF selects the DL1 prefetcher the same way. The zero spec means
	// the baseline stride prefetcher; "none" disables DL1 prefetching
	// (Figure 4's ablation).
	L1PF         prefetch.Spec
	L3Policy     string // "5P" (default), "LRU", "DRRIP"
	LatePromote  bool
	Instructions uint64 // retired instructions on core 0
	Seed         uint64
	CPU          cpu.Config
	// MaxCycles aborts a wedged simulation; 0 means a generous default.
	MaxCycles uint64
}

// DefaultOptions returns a 1-core, 4KB-page run of the named workload with
// the baseline prefetchers (next-line at L2, stride at DL1).
func DefaultOptions(workload string) Options {
	return Options{
		Workload:     workload,
		Cores:        1,
		Page:         mem.Page4K,
		L2PF:         prefetch.Spec{Name: "nextline"},
		L1PF:         prefetch.Spec{Name: "stride"},
		L3Policy:     "5P",
		LatePromote:  true,
		Instructions: 500_000,
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
	}
}

// Normalized returns o with every defaulted zero value resolved to the
// concrete baseline setting and both prefetcher specs in registry-canonical
// form (default-valued parameters dropped), so two spellings of the same
// run compare (and hash) equal. Specs that fail registry validation pass
// through syntactically canonicalized; New reports the error.
func (o Options) Normalized() Options {
	if o.Instructions == 0 {
		o.Instructions = 500_000
	}
	if o.CPU.ROBSize == 0 {
		o.CPU = cpu.DefaultConfig()
	}
	if o.L2PF.IsZero() {
		o.L2PF = prefetch.Spec{Name: "nextline"}
	}
	if o.L1PF.IsZero() {
		o.L1PF = prefetch.Spec{Name: "stride"}
	}
	if sp, err := prefetch.NormalizeL2(o.L2PF); err == nil {
		o.L2PF = sp
	} else {
		o.L2PF = o.L2PF.Canonical()
	}
	if sp, err := prefetch.NormalizeL1(o.L1PF); err == nil {
		o.L1PF = sp
	} else {
		o.L1PF = o.L1PF.Canonical()
	}
	if o.L3Policy == "" {
		o.L3Policy = "5P"
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = o.Instructions * 400 // IPC floor of 1/400 before declaring a wedge
	}
	return o
}

// Result carries the measurements of one run.
type Result struct {
	Workload     string
	IPC          float64
	Cycles       uint64
	Instructions uint64
	Hier         uncore.Stats
	DRAM         dram.Stats
	// DRAMAccessesPerKI is DRAM reads+writes per 1000 core-0 instructions
	// (Figure 13's metric).
	DRAMAccessesPerKI float64
	// BO holds Best-Offset learning statistics when the L2 prefetcher is
	// "bo".
	BO *core.Stats
	// FinalBOOffset is the offset BO ended the run with (0 otherwise).
	FinalBOOffset int
}

// Simulation is one constructed run: the assembled cores and uncore plus
// the clock. It is not safe for concurrent use; run many Simulations in
// parallel instead (they share no state).
type Simulation struct {
	opts  Options
	hier  *uncore.Hierarchy
	cores []*cpu.Core
	now   uint64
	err   error // sticky wedge error
}

// New validates the options and assembles the machine. The returned
// Simulation has executed zero cycles.
func New(o Options) (*Simulation, error) {
	if o.Cores < 1 || o.Cores > 4 {
		return nil, fmt.Errorf("engine: %d active cores unsupported (want 1, 2 or 4)", o.Cores)
	}
	o = o.Normalized()
	// Build one prefetcher per level up front so spec errors surface here;
	// construction is deterministic, so the per-core factories below
	// cannot fail after this succeeds.
	if _, err := prefetch.NewL2(o.L2PF, o.Page); err != nil {
		return nil, fmt.Errorf("engine: %v", err)
	}
	if _, err := prefetch.NewL1(o.L1PF, o.Page); err != nil {
		return nil, fmt.Errorf("engine: %v", err)
	}

	ucfg := uncore.DefaultConfig(o.Cores, o.Page)
	ucfg.L3Policy = o.L3Policy
	ucfg.LatePromotion = o.LatePromote
	ucfg.Seed = o.Seed

	hier := uncore.New(ucfg,
		func(int) prefetch.L2Prefetcher {
			p, _ := prefetch.NewL2(o.L2PF, o.Page)
			return p
		},
		func(int) prefetch.L1Prefetcher {
			p, _ := prefetch.NewL1(o.L1PF, o.Page)
			return p
		},
		nil)

	var gen trace.Generator
	var err error
	if o.TracePath != "" {
		gen, err = trace.OpenTraceFile(o.TracePath)
	} else {
		gen, err = trace.NewWorkload(o.Workload, o.Seed)
	}
	if err != nil {
		return nil, err
	}
	cores := []*cpu.Core{cpu.New(0, o.CPU, hier, gen)}
	for i := 1; i < o.Cores; i++ {
		cores = append(cores, cpu.New(i, o.CPU, hier, trace.NewThrasher(o.Seed+uint64(i)*7919)))
	}
	return &Simulation{opts: o, hier: hier, cores: cores}, nil
}

// Options returns the normalized options the simulation was built from.
func (s *Simulation) Options() Options { return s.opts }

// Done reports whether core 0 has retired the requested instruction count.
func (s *Simulation) Done() bool { return s.cores[0].Retired >= s.opts.Instructions }

// Cycles returns the number of cycles executed so far.
func (s *Simulation) Cycles() uint64 { return s.now }

// Retired returns the instructions retired on core 0 so far.
func (s *Simulation) Retired() uint64 { return s.cores[0].Retired }

// Step advances the simulation by up to n cycles, stopping early when the
// run completes. It returns whether the run is done. A wedged simulation
// (MaxCycles exceeded without completing) returns an error, and the error
// is sticky: every later Step and Run reports it again.
func (s *Simulation) Step(n uint64) (done bool, err error) {
	if s.err != nil {
		return false, s.err
	}
	for i := uint64(0); i < n; i++ {
		if s.Done() {
			return true, nil
		}
		for _, c := range s.cores {
			c.Cycle(s.now)
		}
		s.hier.Tick(s.now)
		s.now++
		if s.now >= s.opts.MaxCycles && !s.Done() {
			s.err = fmt.Errorf("engine: %s wedged after %d cycles (%d/%d instructions)",
				s.opts.Workload, s.now, s.cores[0].Retired, s.opts.Instructions)
			return false, s.err
		}
	}
	return s.Done(), nil
}

// runQuantum is how many cycles Run executes between context checks: small
// enough that cancellation is prompt (well under a millisecond of work),
// large enough that the check cost is invisible.
const runQuantum = 4096

// Run drives the simulation to completion, checking ctx between quanta, and
// returns the final measurements. On cancellation it returns ctx's error;
// the Simulation remains valid and Snapshot still reports the partial run.
func (s *Simulation) Run(ctx context.Context) (Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		done, err := s.Step(runQuantum)
		if err != nil {
			return Result{}, err
		}
		if done {
			return s.Snapshot(), nil
		}
	}
}

// Snapshot computes the measurements at the current cycle. It is valid at
// any point of the run, including before the first Step and after a
// cancelled Run.
func (s *Simulation) Snapshot() Result {
	res := Result{
		Workload:     s.opts.Workload,
		Cycles:       s.now,
		Instructions: s.cores[0].Retired,
		Hier:         s.hier.Stats(),
		DRAM:         s.hier.Memory().TotalStats(),
	}
	if s.now > 0 {
		res.IPC = float64(s.cores[0].Retired) / float64(s.now)
	}
	if s.cores[0].Retired > 0 {
		res.DRAMAccessesPerKI = float64(s.hier.Memory().Accesses()) / float64(s.cores[0].Retired) * 1000
	}
	if bo, ok := s.hier.L2Prefetcher(0).(*core.Prefetcher); ok {
		st := bo.Stats()
		res.BO = &st
		res.FinalBOOffset = bo.Offset()
	}
	return res
}
