// Package engine is the simulation engine proper: it owns the run options,
// the assembled machine (cores executing workload generators against the
// shared uncore) and the cycle loop, exposed as a constructed, steppable
// Simulation object rather than a single monolithic run function. Callers
// that just want the final measurements use internal/sim's thin wrappers;
// callers that need incremental control — schedulers running thousands of
// simulations on a worker pool, tools sampling mid-run state, anything that
// must honour cancellation — construct a Simulation and drive it.
//
// Prefetchers are configured through prefetch.Spec and the prefetcher
// registry: the engine never names a concrete prefetcher, so the prefetcher
// zoo grows by registration (see internal/prefetch/all), not by engine
// edits.
//
// The layering (see DESIGN.md) is:
//
//	engine.Simulation   one run: New -> Step/Run(ctx) -> Snapshot
//	sim.Run             compatibility wrapper, context.Background()
//	experiments.Runner  scheduler: dedup, worker pool, disk cache
package engine

import (
	"context"
	"fmt"

	"bopsim/internal/core"
	"bopsim/internal/cpu"
	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	_ "bopsim/internal/prefetch/all" // link every registered prefetcher
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// Options describes one simulation run. The zero values of most fields mean
// "use the baseline default"; Normalized resolves them, and anything keying
// a result cache must hash the normalized form so equivalent spellings of
// the same run share an entry.
//
//bovet:schemalock
type Options struct {
	// Workloads holds one generator spec per core, resolved through the
	// workload registry (see internal/trace's Spec and Register): entry i
	// drives core i, so heterogeneous multi-program runs are expressible
	// directly ("gups:footprint=64mb" on core 0, "stream:stride=128" on
	// core 1). Missing tail entries default to the "microthrash" satellite
	// workload of section 5.1 (Normalized makes that explicit); a recorded
	// trace replay is the registered "file" generator ("file:path=x.trace",
	// keyed by content SHA-256 in caches and on the wire).
	Workloads []trace.Spec
	// Cores is the active core count, 1..4. The paper's baseline
	// configurations use 1, 2 and 4 (what the experiment tables sweep),
	// but the machine model is generic: a 3-program heterogeneous run is
	// just as valid.
	Cores int
	Page  mem.PageSize
	// L2PF selects and parameterizes the per-core L2 prefetcher by
	// registry spec (e.g. "bo", "offset:d=4", "bo:badscore=5"). The zero
	// spec means the baseline next-line prefetcher.
	L2PF prefetch.Spec
	// L1PF selects the DL1 prefetcher the same way. The zero spec means
	// the baseline stride prefetcher; "none" disables DL1 prefetching
	// (Figure 4's ablation).
	L1PF        prefetch.Spec
	L3Policy    string // "5P" (default), "LRU", "DRRIP"
	LatePromote bool
	//bovet:allow sigcomplete post-barrier knob: the measured-region length cannot shape state warmed before the barrier
	Instructions uint64 // retired instructions on core 0
	Seed         uint64
	CPU          cpu.Config
	// MaxCycles aborts a wedged simulation; 0 means a generous default.
	//
	//bovet:allow sigcomplete post-barrier knob: the abort ceiling only ends a run, it cannot shape pre-barrier state
	MaxCycles uint64

	// Warmup, when non-zero, prepends a warmup region to the run: core 0
	// retires this many instructions first, then every core's dispatch is
	// frozen until the whole machine drains dry, all statistics are reset,
	// and the measured region (Instructions more retirements) begins at
	// that barrier. The barrier is where Checkpoint/Restore operate: the
	// drained machine has no in-flight requests, so its state is exactly
	// the warmed caches, TLBs, DRAM rows and generator cursors.
	//
	// Unless WarmupPF is set, the warmup region runs with both prefetchers
	// disabled and the configured ones are installed — cold — at the
	// barrier. That makes the warmup leg independent of the prefetcher
	// specs, which is what lets a sweep share one warmup checkpoint across
	// all its prefetcher variants (see experiments.Runner.Checkpoint).
	//
	// The JSON tags keep zero values out of the encoding so cache keys of
	// warmupless runs are unchanged from before this field existed.
	Warmup uint64 `json:",omitempty"`
	// WarmupPF keeps the configured prefetchers active through the warmup
	// region. Their learned state then crosses the barrier (and is carried
	// in checkpoints via prefetch.StateCodec), at the cost of making the
	// warmup leg specific to the exact prefetcher specs.
	WarmupPF bool `json:",omitempty"`
}

// DefaultOptions returns a 1-core, 4KB-page run of the named workload with
// the baseline prefetchers (next-line at L2, stride at DL1). The argument
// is parsed as a workload spec, so both bare registered names ("429.mcf")
// and parameterized forms ("gups:footprint=64mb") work; "" leaves Workloads
// empty for the caller to fill.
func DefaultOptions(workload string) Options {
	var ws []trace.Spec
	if workload != "" {
		sp, err := trace.ParseSpec(workload)
		if err != nil {
			// Surface the bad name through New's validation, not a panic.
			sp = trace.Spec{Name: workload}
		}
		ws = []trace.Spec{sp}
	}
	return Options{
		Workloads:    ws,
		Cores:        1,
		Page:         mem.Page4K,
		L2PF:         prefetch.Spec{Name: "nextline"},
		L1PF:         prefetch.Spec{Name: "stride"},
		L3Policy:     "5P",
		LatePromote:  true,
		Instructions: 500_000,
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
	}
}

// Normalized returns o with every defaulted zero value resolved to the
// concrete baseline setting and both prefetcher specs in registry-canonical
// form (default-valued parameters dropped), so two spellings of the same
// run compare (and hash) equal. Specs that fail registry validation pass
// through syntactically canonicalized; New reports the error.
func (o Options) Normalized() Options {
	// Workload specs: registry-canonical form per entry (default-valued
	// parameters dropped; specs that fail registry validation pass through
	// syntactically canonicalized — New reports the error), with the tail
	// filled out to one spec per core so the satellite default is explicit
	// in everything hashed or shipped from the normalized form. The slice
	// is always reallocated: Options is a value type and callers must be
	// able to mutate the original without aliasing the normalized copy.
	ws := make([]trace.Spec, 0, max(len(o.Workloads), o.Cores))
	for _, w := range o.Workloads {
		if sp, err := trace.Normalize(w); err == nil {
			ws = append(ws, sp)
		} else {
			ws = append(ws, w.Canonical())
		}
	}
	// Only satellite slots are filled: an empty list stays empty (so
	// workload-less options never hash, sign or cache-key like an explicit
	// microthrash run — New reports the error instead), while a core-0
	// spec's missing tail gets the satellite default.
	for len(ws) > 0 && len(ws) < o.Cores {
		ws = append(ws, trace.Spec{Name: "microthrash"})
	}
	o.Workloads = ws
	if o.Instructions == 0 {
		o.Instructions = 500_000
	}
	if o.CPU.ROBSize == 0 {
		o.CPU = cpu.DefaultConfig()
	}
	if o.L2PF.IsZero() {
		o.L2PF = prefetch.Spec{Name: "nextline"}
	}
	if o.L1PF.IsZero() {
		o.L1PF = prefetch.Spec{Name: "stride"}
	}
	if sp, err := prefetch.NormalizeL2(o.L2PF); err == nil {
		o.L2PF = sp
	} else {
		o.L2PF = o.L2PF.Canonical()
	}
	if sp, err := prefetch.NormalizeL1(o.L1PF); err == nil {
		o.L1PF = sp
	} else {
		o.L1PF = o.L1PF.Canonical()
	}
	if o.L3Policy == "" {
		o.L3Policy = "5P"
	}
	if o.MaxCycles == 0 {
		// IPC floor of 1/400 before declaring a wedge, covering the warmup
		// region too.
		o.MaxCycles = (o.Instructions + o.Warmup) * 400
	}
	if o.Warmup == 0 {
		// Without a warmup region WarmupPF is inert; clearing it keeps the
		// two spellings of the same run on one cache key.
		o.WarmupPF = false
	}
	return o
}

// Result carries the measurements of one run.
//
//bovet:schemalock
type Result struct {
	Workload     string
	IPC          float64
	Cycles       uint64
	Instructions uint64
	Hier         uncore.Stats
	DRAM         dram.Stats
	// DRAMAccessesPerKI is DRAM reads+writes per 1000 core-0 instructions
	// (Figure 13's metric).
	DRAMAccessesPerKI float64
	// BO holds Best-Offset learning statistics when the L2 prefetcher is
	// "bo".
	BO *core.Stats
	// FinalBOOffset is the offset BO ended the run with (0 otherwise).
	FinalBOOffset int
}

// phase is where the run currently is in its warmup/measure lifecycle.
type phase int

const (
	// phaseWarmup: retiring the warmup region (Warmup instructions).
	phaseWarmup phase = iota
	// phaseDrain: dispatch frozen, in-flight work running dry.
	phaseDrain
	// phaseMeasure: the measured region (Instructions retirements past the
	// barrier marks).
	phaseMeasure
)

// Simulation is one constructed run: the assembled cores and uncore plus
// the clock. It is not safe for concurrent use; run many Simulations in
// parallel instead (they share no state).
type Simulation struct {
	opts  Options
	hier  *uncore.Hierarchy
	cores []*cpu.Core
	now   uint64
	err   error // sticky wedge error
	// wlLabel/wsLabel are the core-0 result label and the per-core log
	// label, computed once in build — options are immutable afterwards, and
	// deriving them per Snapshot/Step would re-run registry normalization.
	wlLabel string
	wsLabel string

	phase phase
	// startCycles/startRetired mark where the measured region began (the
	// warmup barrier; zero for warmupless runs). Snapshot reports deltas
	// from these marks.
	startCycles  uint64
	startRetired uint64
	// atBarrier is true exactly at the warmup barrier: the machine is
	// drained and no measured cycle has executed yet. Checkpoint is only
	// valid then.
	atBarrier bool
	// noSkip disables event-driven skip-ahead (SetSkipAhead), forcing the
	// engine to tick every cycle. Results are byte-identical either way —
	// the equivalence suite asserts it — so this is a verification and
	// debugging switch, deliberately not an Options field: it must not
	// change cache keys, warmup signatures or result hashes.
	noSkip bool
}

// New validates the options and assembles the machine. The returned
// Simulation has executed zero cycles. With Options.Warmup set, the run
// starts in the warmup phase; see RunWarmup and Checkpoint.
func New(o Options) (*Simulation, error) {
	return build(o, false)
}

// build assembles the machine. restored builds directly in the measured
// phase with the configured prefetchers installed (Restore overwrites the
// clock and barrier marks afterwards); otherwise a warmup run starts in
// phaseWarmup, with prefetching disabled unless WarmupPF.
func build(o Options, restored bool) (*Simulation, error) {
	if o.Cores < 1 || o.Cores > 4 {
		return nil, fmt.Errorf("engine: %d active cores unsupported (want 1..4)", o.Cores)
	}
	// Checked before Normalized, which fills missing entries with the
	// satellite default: a caller who never set a workload must get an
	// error, not a silent microthrash measurement on core 0.
	if len(o.Workloads) == 0 {
		return nil, fmt.Errorf("engine: no workload specs (set Options.Workloads)")
	}
	if len(o.Workloads) > o.Cores {
		return nil, fmt.Errorf("engine: %d workload specs for %d cores", len(o.Workloads), o.Cores)
	}
	o = o.Normalized()
	// Build one prefetcher per level up front so spec errors surface here;
	// construction is deterministic, so the per-core factories below
	// cannot fail after this succeeds.
	if _, err := prefetch.NewL2(o.L2PF, o.Page); err != nil {
		return nil, fmt.Errorf("engine: %v", err)
	}
	if _, err := prefetch.NewL1(o.L1PF, o.Page); err != nil {
		return nil, fmt.Errorf("engine: %v", err)
	}

	ucfg := uncore.DefaultConfig(o.Cores, o.Page)
	ucfg.L3Policy = o.L3Policy
	ucfg.LatePromotion = o.LatePromote
	ucfg.Seed = o.Seed

	l2f, l1f := prefetcherFactories(o)
	if o.Warmup > 0 && !o.WarmupPF && !restored {
		// The warmup region runs without prefetching; the barrier installs
		// the configured prefetchers via SetPrefetchers.
		l2f, l1f = nil, nil
	}
	hier := uncore.New(ucfg, l2f, l1f, nil)

	// One generator per core, seeded with the historical per-core derived
	// seed (core 0 gets Options.Seed itself, satellites the staggered
	// seeds the thrasher always used), so legacy single-spec runs are
	// bit-identical to the pre-spec engine.
	var cores []*cpu.Core
	for i := 0; i < o.Cores; i++ {
		gen, err := trace.NewGenerator(o.Workloads[i], o.Seed+uint64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("engine: core %d workload %s: %w", i, o.Workloads[i], err)
		}
		cores = append(cores, cpu.New(i, o.CPU, hier, gen))
	}
	s := &Simulation{opts: o, hier: hier, cores: cores,
		wlLabel: o.WorkloadLabel(), wsLabel: trace.SpecsLabel(o.Workloads)}
	if o.Warmup > 0 && !restored {
		s.phase = phaseWarmup
	} else {
		s.phase = phaseMeasure
		s.atBarrier = true
	}
	return s, nil
}

// prefetcherFactories returns the per-core constructors for the configured
// (measured-region) prefetchers. Spec validation happened in build, so the
// constructions cannot fail.
func prefetcherFactories(o Options) (func(int) prefetch.L2Prefetcher, func(int) prefetch.L1Prefetcher) {
	return func(int) prefetch.L2Prefetcher {
			p, _ := prefetch.NewL2(o.L2PF, o.Page)
			return p
		},
		func(int) prefetch.L1Prefetcher {
			p, _ := prefetch.NewL1(o.L1PF, o.Page)
			return p
		}
}

// Options returns the normalized options the simulation was built from.
func (s *Simulation) Options() Options { return s.opts }

// WorkloadLabel returns the display name of the measured (core-0)
// workload: the canonical spec string, which for a bare benchmark name is
// the name itself ("429.mcf"). File replays label in hash form
// ("file:sha=…"), never by path: the label lands in Result.Workload, and
// result bytes must not depend on which machine's local path resolved the
// trace (a distrib worker and the coordinator must produce byte-identical
// results, and cache verification re-executes entries locally).
func (o Options) WorkloadLabel() string {
	if len(o.Workloads) == 0 {
		return ""
	}
	sp := o.Workloads[0]
	if n, err := trace.Normalize(sp); err == nil {
		sp = n
	} else {
		sp = sp.Canonical()
	}
	return trace.HashSpec(sp).String()
}

// WorkloadsLabel renders the whole per-core assignment for logs and status
// lines (trace.SpecsLabel over the normalized specs: canonical strings
// joined by ';', trailing default-thrasher entries trimmed). Callers that
// already hold normalized options can call trace.SpecsLabel directly and
// skip the re-normalization.
func (o Options) WorkloadsLabel() string {
	return trace.SpecsLabel(o.Normalized().Workloads)
}

// Done reports whether core 0 has retired the requested instruction count
// in the measured region (i.e. past the warmup barrier, if any).
func (s *Simulation) Done() bool {
	return s.phase == phaseMeasure && s.cores[0].Retired >= s.startRetired+s.opts.Instructions
}

// Cycles returns the number of cycles executed so far.
func (s *Simulation) Cycles() uint64 { return s.now }

// Retired returns the instructions retired on core 0 so far.
func (s *Simulation) Retired() uint64 { return s.cores[0].Retired }

// SetSkipAhead enables (true, the default) or disables event-driven
// skip-ahead stepping. The simulated machine's behaviour is identical
// either way — skipped cycles are provably no-ops (see DESIGN.md's timing
// model section) and the per-cycle sampled statistics are accounted for
// skipped spans — so disabling it only costs wall-clock time. The switch
// exists for the equivalence test suite and for debugging.
func (s *Simulation) SetSkipAhead(enabled bool) { s.noSkip = !enabled }

// nextEventCycle returns the earliest cycle >= now at which any component
// can make progress (^uint64(0) when none has an event scheduled).
func (s *Simulation) nextEventCycle() uint64 {
	next := ^uint64(0)
	for _, c := range s.cores {
		if t := c.NextEvent(s.now); t < next {
			next = t
			if next <= s.now {
				return s.now
			}
		}
	}
	if t := s.hier.NextEvent(s.now); t < next {
		next = t
	}
	if next < s.now {
		return s.now
	}
	return next
}

// Step advances the simulation by a budget of n cycles, stopping early when
// the run completes or the warmup barrier is reached (so callers can
// intervene there — see Checkpoint). It returns whether the run is done. A
// wedged simulation (MaxCycles exceeded without completing) returns an
// error, and the error is sticky: every later Step and Run reports it
// again.
//
// Stepping is event-driven: when no core, uncore queue or DRAM channel can
// do work this cycle, the clock jumps straight to the earliest upcoming
// event, charging the skipped span to the per-cycle sampled statistics
// (uncore.Hierarchy.AccountIdle). The skipped cycles would have been no-ops
// under per-cycle ticking, so results are byte-identical (SetSkipAhead and
// the skip equivalence suite pin this down); a skip consumes its span from
// the n-cycle budget just as ticked cycles do.
func (s *Simulation) Step(n uint64) (done bool, err error) {
	if s.err != nil {
		return false, s.err
	}
	target := s.now + n
	if target < s.now { // overflow: run to the wedge guard
		target = ^uint64(0)
	}
	for s.now < target {
		if s.Done() {
			return true, nil
		}
		if !s.noSkip {
			if ne := s.nextEventCycle(); ne > s.now && ne != ^uint64(0) {
				// No component can do work before cycle ne: jump there.
				// Cycles in [now, ne) are no-ops except for sampled stats.
				// The jump is clamped to the budget and to MaxCycles so the
				// wedge check fires at exactly the cycle the per-cycle
				// engine would report.
				jump := ne
				if target < jump {
					jump = target
				}
				if s.opts.MaxCycles < jump {
					jump = s.opts.MaxCycles
				}
				s.hier.AccountIdle(jump - s.now)
				s.now = jump
				s.atBarrier = false
				if s.now >= s.opts.MaxCycles && !s.Done() {
					s.err = fmt.Errorf("engine: %s wedged after %d cycles (%d/%d instructions)",
						s.wsLabel, s.now, s.cores[0].Retired, s.startRetired+s.opts.Instructions)
					return false, s.err
				}
				continue
			}
		}
		for _, c := range s.cores {
			c.Cycle(s.now)
		}
		s.hier.Tick(s.now)
		s.now++
		s.atBarrier = false
		if s.now >= s.opts.MaxCycles && !s.Done() {
			s.err = fmt.Errorf("engine: %s wedged after %d cycles (%d/%d instructions)",
				s.wsLabel, s.now, s.cores[0].Retired, s.startRetired+s.opts.Instructions)
			return false, s.err
		}
		switch s.phase {
		case phaseWarmup:
			if s.cores[0].Retired >= s.opts.Warmup {
				// Warmup retired: freeze dispatch everywhere and let the
				// machine run dry.
				s.phase = phaseDrain
				for _, c := range s.cores {
					c.SetPaused(true)
				}
			}
		case phaseDrain:
			if s.quiesced() {
				s.barrier()
				// Stop at the barrier: the caller may checkpoint here, and
				// Run simply calls Step again.
				return s.Done(), nil
			}
		}
	}
	return s.Done(), nil
}

// quiesced reports whether every core's pipeline and the whole uncore are
// empty of in-flight work.
func (s *Simulation) quiesced() bool {
	for _, c := range s.cores {
		if !c.Quiesced() {
			return false
		}
	}
	return s.hier.Drained()
}

// barrier transitions the drained machine into the measured region: the
// dependence anchors are cleared (every load has retired), the configured
// prefetchers are installed unless they ran through the warmup (WarmupPF),
// all statistics reset, and the barrier marks are recorded. Both the
// straight path and Restore produce exactly this state, which is what makes
// checkpointed runs byte-identical to uncheckpointed ones.
func (s *Simulation) barrier() {
	for _, c := range s.cores {
		c.ClearDepChain()
		c.SetPaused(false)
	}
	if !s.opts.WarmupPF {
		l2f, l1f := prefetcherFactories(s.opts)
		s.hier.SetPrefetchers(l2f, l1f)
	}
	s.hier.ResetStats()
	s.phase = phaseMeasure
	s.startCycles = s.now
	s.startRetired = s.cores[0].Retired
	s.atBarrier = true
}

// AtBarrier reports whether the simulation sits exactly at the warmup
// barrier: drained, statistics reset, and no measured cycle executed yet.
// This is the only point Checkpoint accepts.
func (s *Simulation) AtBarrier() bool { return s.atBarrier && s.err == nil }

// RunWarmup drives the simulation to the warmup barrier, checking ctx
// between quanta. It returns immediately for a run without warmup (a fresh
// machine is trivially at its barrier). After it returns, Checkpoint may be
// called, and Run (or Step) continues into the measured region.
func (s *Simulation) RunWarmup(ctx context.Context) error {
	for s.phase != phaseMeasure {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := s.Step(runQuantum); err != nil {
			return err
		}
	}
	return nil
}

// runQuantum is how many cycles Run executes between context checks: small
// enough that cancellation is prompt (well under a millisecond of work),
// large enough that the check cost is invisible.
const runQuantum = 4096

// Run drives the simulation to completion, checking ctx between quanta, and
// returns the final measurements. On cancellation it returns ctx's error;
// the Simulation remains valid and Snapshot still reports the partial run.
func (s *Simulation) Run(ctx context.Context) (Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		done, err := s.Step(runQuantum)
		if err != nil {
			return Result{}, err
		}
		if done {
			return s.Snapshot(), nil
		}
	}
}

// Snapshot computes the measurements at the current cycle. It is valid at
// any point of the run, including before the first Step and after a
// cancelled Run. With a warmup region, cycles and instructions are deltas
// from the barrier (statistics were reset there), so a warmed run reports
// the measured region only.
func (s *Simulation) Snapshot() Result {
	cycles := s.now - s.startCycles
	retired := s.cores[0].Retired - s.startRetired
	res := Result{
		Workload:     s.wlLabel,
		Cycles:       cycles,
		Instructions: retired,
		Hier:         s.hier.Stats(),
		DRAM:         s.hier.Memory().TotalStats(),
	}
	if cycles > 0 {
		res.IPC = float64(retired) / float64(cycles)
	}
	if retired > 0 {
		res.DRAMAccessesPerKI = float64(s.hier.Memory().Accesses()) / float64(retired) * 1000
	}
	if bo, ok := s.hier.L2Prefetcher(0).(*core.Prefetcher); ok {
		st := bo.Stats()
		res.BO = &st
		res.FinalBOOffset = bo.Offset()
	}
	return res
}
