package engine_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"bopsim/internal/engine"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

func quick(workload string) engine.Options {
	o := engine.DefaultOptions(workload)
	o.Instructions = 60_000
	return o
}

// TestStepMatchesRun drives a simulation in uneven Step chunks and checks
// the final snapshot is identical to the one-shot sim.Run wrapper — the
// stepping API must not change the simulated machine.
func TestStepMatchesRun(t *testing.T) {
	o := quick("433.milc")
	o.Page = mem.Page4M
	o.L2PF = prefetch.MustSpec("bo")

	want, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}

	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	chunk := uint64(1)
	for {
		done, err := s.Step(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		chunk = chunk*2 + 1 // deliberately uneven chunk sizes
	}
	got := s.Snapshot()
	if got.Cycles != want.Cycles || got.IPC != want.IPC {
		t.Errorf("stepped run: %d cycles IPC %.6f, sim.Run: %d cycles IPC %.6f",
			got.Cycles, got.IPC, want.Cycles, want.IPC)
	}
	if got.FinalBOOffset != want.FinalBOOffset {
		t.Errorf("stepped BO offset %d, sim.Run %d", got.FinalBOOffset, want.FinalBOOffset)
	}
	if got.Hier != want.Hier {
		t.Errorf("hierarchy stats diverge:\nstepped %+v\nrun     %+v", got.Hier, want.Hier)
	}
}

// TestRunCancellation checks Run(ctx) returns promptly — not at the end of
// the run — when the context is cancelled mid-simulation.
func TestRunCancellation(t *testing.T) {
	o := engine.DefaultOptions("433.milc")
	o.Instructions = 200_000_000 // far more than can finish during the test
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Run(ctx)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("Run took %v to observe cancellation", elapsed)
	}
	// The partial run is still observable.
	snap := s.Snapshot()
	if snap.Cycles == 0 || snap.Instructions == 0 {
		t.Errorf("post-cancel snapshot empty: %d cycles, %d instructions", snap.Cycles, snap.Instructions)
	}
}

// TestWedgeDetection checks an unfinishable cycle budget reports a wedge,
// and that the error is sticky.
func TestWedgeDetection(t *testing.T) {
	o := quick("416.gamess")
	o.MaxCycles = 100
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err == nil {
		t.Fatal("wedged run returned no error")
	}
	if _, err := s.Step(1); err == nil {
		t.Error("wedge error not sticky across Step")
	}
}

// TestSnapshotMidRun checks a snapshot is valid before completion.
func TestSnapshotMidRun(t *testing.T) {
	s, err := engine.New(quick("462.libquantum"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Fatal("fresh simulation already done")
	}
	if snap := s.Snapshot(); snap.Cycles != 0 || snap.IPC != 0 {
		t.Errorf("pre-run snapshot not empty: %+v", snap)
	}
	if _, err := s.Step(10_000); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Cycles != 10_000 {
		t.Errorf("after Step(10000): %d cycles", snap.Cycles)
	}
	if snap.IPC <= 0 || snap.Instructions == 0 {
		t.Errorf("mid-run snapshot has no progress: %+v", snap)
	}
}

// TestNormalized checks zero values resolve to the concrete baseline
// defaults, so option spellings that mean the same run compare equal.
func TestNormalized(t *testing.T) {
	n := engine.Options{Workloads: []trace.Spec{{Name: "429.mcf"}}, Cores: 1}.Normalized()
	if n.Instructions != 500_000 {
		t.Errorf("Instructions = %d", n.Instructions)
	}
	if n.L2PF.String() != "nextline" || n.L1PF.String() != "stride" || n.L3Policy != "5P" {
		t.Errorf("prefetcher/policy defaults: %q %q %q", n.L2PF, n.L1PF, n.L3Policy)
	}
	if n.CPU.ROBSize == 0 || n.MaxCycles == 0 {
		t.Errorf("CPU/MaxCycles defaults missing: %+v", n)
	}
	// Normalization is idempotent and preserves explicit settings.
	if n2 := n.Normalized(); !reflect.DeepEqual(n2, n) {
		t.Errorf("Normalized not idempotent:\n%+v\n%+v", n2, n)
	}
	// Specs spelling out registered defaults normalize to the bare name.
	sp := engine.Options{Workloads: []trace.Spec{{Name: "429.mcf"}}, Cores: 1,
		L2PF: prefetch.MustSpec("bo:scoremax=31,badscore=5")}.Normalized()
	if sp.L2PF.String() != "bo:badscore=5" {
		t.Errorf("normalized spec = %q, want bo:badscore=5", sp.L2PF)
	}
}

// TestInvalidOptionsRejected mirrors the historical sim.Run validation and
// extends it to registry errors.
func TestInvalidOptionsRejected(t *testing.T) {
	o := quick("416.gamess")
	o.Cores = 5
	if _, err := engine.New(o); err == nil {
		t.Error("5 cores accepted")
	}
	o = quick("416.gamess")
	o.L2PF = prefetch.Spec{Name: "garbage"}
	if _, err := engine.New(o); err == nil {
		t.Error("unknown prefetcher accepted")
	}
	o = quick("416.gamess")
	o.Workloads = nil
	if _, err := engine.New(o); err == nil {
		t.Error("empty workload list accepted (would silently measure the satellite default)")
	}
	o = quick("416.gamess")
	o.Workloads = []trace.Spec{{Name: "416.gamess"}, {Name: "stream"}}
	if _, err := engine.New(o); err == nil {
		t.Error("more workload specs than cores accepted")
	}
	o = quick("416.gamess")
	o.L2PF = prefetch.MustSpec("bo:nosuchparam=1")
	if _, err := engine.New(o); err == nil {
		t.Error("unknown prefetcher parameter accepted")
	}
	o = quick("416.gamess")
	o.L2PF = prefetch.MustSpec("offset:d=zero")
	if _, err := engine.New(o); err == nil {
		t.Error("malformed parameter value accepted")
	}
	o = quick("416.gamess")
	o.L1PF = prefetch.Spec{Name: "bo"} // an L2-only name in the L1 slot
	if _, err := engine.New(o); err == nil {
		t.Error("L2-only prefetcher accepted in the L1 slot")
	}
}
