package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"bopsim/internal/engine"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/trace"
)

// warmed returns small options with a warmup region.
func warmed(workload string) engine.Options {
	o := engine.DefaultOptions(workload)
	o.Instructions = 20_000
	o.Warmup = 20_000
	return o
}

// resultJSON renders a result for byte comparison.
func resultJSON(t *testing.T, r engine.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runStraight runs o start to finish without checkpointing.
func runStraight(t *testing.T, o engine.Options) engine.Result {
	t.Helper()
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// runCheckpointed runs o's warmup, checkpoints, restores into a fresh
// machine and completes the measured region there.
func runCheckpointed(t *testing.T, o engine.Options) (engine.Result, []byte) {
	t.Helper()
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWarmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !s.AtBarrier() {
		t.Fatal("RunWarmup did not leave the simulation at the barrier")
	}
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := engine.Restore(snap, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := restored.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return r, snap
}

// TestGoldenDeterminismPerPrefetcher is the trust anchor of the checkpoint
// feature: for every registered L2 prefetcher, running warmup -> Checkpoint
// -> Restore -> run produces byte-identical results to an uncheckpointed
// straight run. WarmupPF keeps the prefetcher live through the warmup, so
// the test exercises each prefetcher's StateCodec round trip, the DL1
// stride prefetcher's included.
func TestGoldenDeterminismPerPrefetcher(t *testing.T) {
	for _, name := range prefetch.L2Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			o := warmed("433.milc")
			o.L2PF = prefetch.Spec{Name: name}
			o.WarmupPF = true
			straight := resultJSON(t, runStraight(t, o))
			ckpt, _ := runCheckpointed(t, o)
			if got := resultJSON(t, ckpt); !bytes.Equal(got, straight) {
				t.Errorf("checkpointed run diverged from straight run\nstraight: %s\nrestored: %s", straight, got)
			}
		})
	}
}

// TestHeterogeneousWorkloadsCheckpointRoundTrip checks per-core workload
// specs survive checkpoint/restore byte-exactly: a two-core run with
// different generators on each core (gups driving core 0, a parameterized
// stream on core 1, then a mix combinator) produces identical measurements
// straight and checkpointed — every generator kind's cursor codec round
// trips through the snapshot.
func TestHeterogeneousWorkloadsCheckpointRoundTrip(t *testing.T) {
	for _, ws := range [][]trace.Spec{
		{trace.MustSpec("gups:footprint=4mb"), trace.MustSpec("stream:stride=128")},
		{trace.MustSpec("mix:gens=stream+pchase,weights=2+1"), trace.MustSpec("pchase:footprint=1mb")},
	} {
		o := warmed("")
		o.Workloads = ws
		o.Cores = 2
		o.Instructions = 10_000
		o.Warmup = 10_000
		o.L2PF = prefetch.Spec{Name: "bo"}
		o.WarmupPF = true
		straight := resultJSON(t, runStraight(t, o))
		ckpt, _ := runCheckpointed(t, o)
		if got := resultJSON(t, ckpt); !bytes.Equal(got, straight) {
			t.Errorf("heterogeneous %v checkpointed run diverged\nstraight: %s\nrestored: %s", ws, straight, got)
		}
	}
}

// TestSharedWarmupDeterminism checks the default (shareable) warmup mode:
// prefetchers disabled during warmup, installed cold at the barrier. One
// snapshot taken from a warmup leg with L2PF=none must restore every
// variant to the same state the variant's own straight run reaches.
func TestSharedWarmupDeterminism(t *testing.T) {
	legOpts := warmed("459.GemsFDTD")
	legOpts.L2PF = prefetch.Spec{Name: "none"}
	leg, err := engine.New(legOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := leg.RunWarmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := leg.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []string{
		"bo", "sbp", "multi", "offset:d=4",
		// Parameterized meta-prefetchers: nested quoted sub-specs must share
		// the none-warmed snapshot like any other variant.
		"duel:a=bo,b=offset.d~4,period=512",
		"adapt:base=multi.offsets~1+2+4+8,window=1024",
	} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			o := warmed("459.GemsFDTD")
			o.L2PF = prefetch.MustSpec(spec)
			straight := resultJSON(t, runStraight(t, o))
			restored, err := engine.Restore(snap, o)
			if err != nil {
				t.Fatal(err)
			}
			r, err := restored.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if got := resultJSON(t, r); !bytes.Equal(got, straight) {
				t.Errorf("variant restored from shared warmup diverged\nstraight: %s\nrestored: %s", straight, got)
			}
		})
	}
}

// TestMulticoreCheckpointDeterminism covers the 2-core configuration (core
// 1 runs the thrasher) and the 4MB page size.
func TestMulticoreCheckpointDeterminism(t *testing.T) {
	o := warmed("462.libquantum")
	o.Cores = 2
	o.Page = mem.Page4M
	o.L2PF = prefetch.Spec{Name: "bo"}
	straight := resultJSON(t, runStraight(t, o))
	ckpt, _ := runCheckpointed(t, o)
	if got := resultJSON(t, ckpt); !bytes.Equal(got, straight) {
		t.Errorf("2-core checkpointed run diverged\nstraight: %s\nrestored: %s", straight, got)
	}
}

// TestCheckpointByteStable checks the snapshot encoding is deterministic:
// checkpointing the same barrier twice yields identical bytes, and a
// restored simulation re-checkpoints to those same bytes (encode -> decode
// -> encode stability, the property content addressing relies on).
func TestCheckpointByteStable(t *testing.T) {
	o := warmed("470.lbm")
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWarmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	a, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("checkpointing the same barrier twice produced different bytes")
	}
	restored, err := engine.Restore(a, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := restored.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("restore -> checkpoint is not byte-stable")
	}
}

// TestCheckpointOnlyAtBarrier checks a mid-run machine refuses to
// checkpoint instead of serializing in-flight state.
func TestCheckpointOnlyAtBarrier(t *testing.T) {
	o := warmed("416.gamess")
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Error("checkpoint before the barrier succeeded")
	}
	if err := s.RunWarmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Error("checkpoint after measured cycles succeeded")
	}
}

// TestRestoreRejectsMismatchedOptions checks the warmup-signature guard:
// a snapshot cannot restore into options whose warmup leg differs.
func TestRestoreRejectsMismatchedOptions(t *testing.T) {
	o := warmed("416.gamess")
	s, err := engine.New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunWarmup(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*engine.Options){
		"workload": func(o *engine.Options) { o.Workloads = []trace.Spec{{Name: "470.lbm"}} },
		"seed":     func(o *engine.Options) { o.Seed = 99 },
		"warmup":   func(o *engine.Options) { o.Warmup = 10_000 },
		"cores":    func(o *engine.Options) { o.Cores = 2 },
		"page":     func(o *engine.Options) { o.Page = mem.Page4M },
		"l3":       func(o *engine.Options) { o.L3Policy = "LRU" },
		"warmuppf": func(o *engine.Options) { o.WarmupPF = true },
	}
	for name, mutate := range cases {
		bad := o
		mutate(&bad)
		if _, err := engine.Restore(snap, bad); err == nil {
			t.Errorf("restore into options with different %s succeeded", name)
		}
	}
	// Options differing only in measured-region knobs restore fine.
	ok := o
	ok.Instructions = 5_000
	ok.L2PF = prefetch.Spec{Name: "sbp"}
	if _, err := engine.Restore(snap, ok); err != nil {
		t.Errorf("restore into measured-region variant failed: %v", err)
	}
}

// FuzzRestore feeds arbitrary bytes to Restore: corrupted, truncated or
// version-skewed snapshots must return an error — never panic, and never
// hand back a simulation built from partial state.
func FuzzRestore(f *testing.F) {
	o := engine.DefaultOptions("416.gamess")
	o.Instructions = 2_000
	o.Warmup = 2_000
	s, err := engine.New(o)
	if err != nil {
		f.Fatal(err)
	}
	if err := s.RunWarmup(context.Background()); err != nil {
		f.Fatal(err)
	}
	snap, err := s.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add([]byte{})
	f.Add([]byte(snapshotMagicForFuzz))
	f.Add(snap[:len(snap)/2])
	// Version skew: flip the version field.
	skew := append([]byte(nil), snap...)
	skew[8]++
	f.Add(skew)
	f.Fuzz(func(t *testing.T, data []byte) {
		restored, err := engine.Restore(data, o)
		if err != nil && restored != nil {
			t.Fatal("Restore returned both a simulation and an error")
		}
		if err != nil {
			return
		}
		// A successful restore must be a fully valid barrier-state machine:
		// a few measured steps must not panic either.
		if _, err := restored.Step(64); err != nil {
			t.Fatalf("restored simulation errored immediately: %v", err)
		}
	})
}

const snapshotMagicForFuzz = "BOCKPT01"
