package engine_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"bopsim/internal/engine"
	"bopsim/internal/prefetch"
	"bopsim/internal/trace"
)

// TestSkipAheadEquivalence is the event-driven engine's correctness
// harness: for every registered L2 prefetcher, a 2-core heterogeneous run
// must produce byte-identical results whether the engine skips over
// no-event spans (the default) or ticks every cycle (SetSkipAhead(false)).
// Skip-ahead is a pure scheduling optimization — any divergence here means
// a component's NextEvent underreports a cycle with side effects.
func TestSkipAheadEquivalence(t *testing.T) {
	names := prefetch.L2Names()
	if len(names) == 0 {
		t.Fatal("no registered L2 prefetchers")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			o := engine.DefaultOptions("")
			o.Workloads = []trace.Spec{
				trace.MustSpec("gups:footprint=8mb"),
				trace.MustSpec("stream:stride=128"),
			}
			o.Cores = 2
			o.Instructions = 40_000
			o.L2PF = prefetch.MustSpec(name)

			run := func(skip bool) []byte {
				s, err := engine.New(o)
				if err != nil {
					t.Fatal(err)
				}
				s.SetSkipAhead(skip)
				r, err := s.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(r)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}

			skipOn := run(true)
			skipOff := run(false)
			if !bytes.Equal(skipOn, skipOff) {
				t.Errorf("skip-ahead changed the result\nwith skip:    %s\nwithout skip: %s", skipOn, skipOff)
			}
		})
	}
}
