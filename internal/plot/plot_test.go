package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{Title: "demo", Width: 20}
	c.Add("a", 1.0)
	c.Add("bb", 2.0)
	out := c.String()
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want 3", len(lines))
	}
	// The larger value must have more '#' characters.
	if strings.Count(lines[1], "#") >= strings.Count(lines[2], "#") {
		t.Error("bar lengths not ordered by value")
	}
}

func TestReferenceMarkerDrawn(t *testing.T) {
	c := &Chart{Width: 30, Reference: 1.0}
	c.Add("x", 0.5)
	c.Add("y", 1.5)
	out := c.String()
	if !strings.Contains(out, ".") && !strings.Contains(out, "|") {
		t.Error("reference marker missing")
	}
}

func TestEqualValuesDoNotPanic(t *testing.T) {
	c := &Chart{Width: 10}
	c.Add("x", 1.0)
	c.Add("y", 1.0)
	if out := c.String(); out == "" {
		t.Error("empty render")
	}
}

func TestLabelsAligned(t *testing.T) {
	c := &Chart{Width: 10}
	c.Add("short", 1)
	c.Add("a-much-longer-label", 2)
	lines := strings.Split(strings.TrimRight(c.String(), "\n"), "\n")
	// Values must start at the same column.
	i0 := strings.Index(lines[0], "1.000")
	i1 := strings.Index(lines[1], "2.000")
	if i0 != i1 {
		t.Errorf("value columns misaligned: %d vs %d", i0, i1)
	}
}

func TestBarsStayInWidth(t *testing.T) {
	c := &Chart{Width: 15}
	for i := 0; i < 10; i++ {
		c.Add("v", float64(i))
	}
	for _, line := range strings.Split(c.String(), "\n") {
		if strings.Count(line, "#") > 15 {
			t.Errorf("bar exceeds width: %q", line)
		}
	}
}
