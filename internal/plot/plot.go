// Package plot renders the experiment tables as ASCII bar charts, so
// cmd/experiments can show the paper's figures as figures rather than only
// as numbers. Charts are deliberately simple: one labelled bar per value,
// scaled to a fixed width, with an optional reference line (e.g. speedup
// 1.0).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bar is one labelled value.
type Bar struct {
	Label string
	Value float64
}

// Chart is a horizontal ASCII bar chart.
type Chart struct {
	Title string
	Bars  []Bar
	// Reference, when non-zero, draws a vertical marker at that value
	// (useful for speedup charts where 1.0 is the baseline).
	Reference float64
	// Width is the maximum bar width in characters (default 50).
	Width int
	// Min pins the left edge; zero means auto (min of values/reference).
	Min float64
}

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.Bars = append(c.Bars, Bar{Label: label, Value: value})
}

// bounds computes the plotting range.
func (c *Chart) bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, b := range c.Bars {
		lo = math.Min(lo, b.Value)
		hi = math.Max(hi, b.Value)
	}
	if c.Reference != 0 {
		lo = math.Min(lo, c.Reference)
		hi = math.Max(hi, c.Reference)
	}
	if c.Min != 0 || lo > c.Min && c.Min != 0 {
		lo = c.Min
	}
	if lo == hi {
		hi = lo + 1
	}
	// A little headroom so the largest bar is distinguishable.
	span := hi - lo
	lo -= span * 0.02
	hi += span * 0.05
	return lo, hi
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	labelWidth := 0
	for _, b := range c.Bars {
		if len(b.Label) > labelWidth {
			labelWidth = len(b.Label)
		}
	}
	lo, hi := c.bounds()
	scale := func(v float64) int {
		pos := int(math.Round((v - lo) / (hi - lo) * float64(width)))
		if pos < 0 {
			pos = 0
		}
		if pos > width {
			pos = width
		}
		return pos
	}
	refPos := -1
	if c.Reference != 0 {
		refPos = scale(c.Reference)
	}
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	for _, b := range c.Bars {
		n := scale(b.Value)
		row := []byte(strings.Repeat("#", n) + strings.Repeat(" ", width-n))
		if refPos >= 0 && refPos < len(row) {
			if row[refPos] == '#' {
				row[refPos] = '|'
			} else {
				row[refPos] = '.'
			}
		}
		fmt.Fprintf(w, "%-*s %8.3f %s\n", labelWidth, b.Label, b.Value, string(row))
	}
}

// String renders the chart to a string.
func (c *Chart) String() string {
	var sb strings.Builder
	c.Render(&sb)
	return sb.String()
}
