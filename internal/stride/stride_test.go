package stride

import (
	"testing"

	"bopsim/internal/mem"
)

// train feeds n accesses at pc with the given byte stride starting at base,
// calling Update only (as if every access hit the DL1).
func train(p *Prefetcher, pc uint64, base mem.Addr, stride int64, n int) mem.Addr {
	a := base
	for i := 0; i < n; i++ {
		p.Update(pc, a)
		a = mem.Addr(int64(a) + stride)
	}
	return a
}

func TestConfidenceBuildsBeforePrefetch(t *testing.T) {
	p := New()
	a := train(p, 0x400, 0x10000, 64, 5)
	if _, ok := p.Query(0x400, a); ok {
		t.Error("prefetch issued with insufficient confidence")
	}
}

func TestPrefetchAfterFullConfidence(t *testing.T) {
	p := New()
	a := train(p, 0x400, 0x10000, 96, ConfidenceMax+2)
	pref, ok := p.Query(0x400, a)
	if !ok {
		t.Fatal("no prefetch from a fully confident entry")
	}
	want := mem.Addr(int64(a) + DistanceFactor*96)
	if pref != want {
		t.Errorf("prefetch address %#x, want %#x (current + 16*stride)", pref, want)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := New()
	a := train(p, 0x400, 0x10000, 64, ConfidenceMax+2)
	p.Update(0x400, a+1000) // break the stride
	if _, ok := p.Query(0x400, a+1000+64); ok {
		t.Error("prefetch issued right after a stride break")
	}
}

func TestZeroStrideNeverPrefetches(t *testing.T) {
	p := New()
	for i := 0; i < ConfidenceMax+5; i++ {
		p.Update(0x400, 0x2000) // same address repeatedly
	}
	if _, ok := p.Query(0x400, 0x2000); ok {
		t.Error("prefetch issued for a zero stride")
	}
}

func TestNegativeStride(t *testing.T) {
	p := New()
	a := train(p, 0x400, 0x100000, -64, ConfidenceMax+2)
	pref, ok := p.Query(0x400, a)
	if !ok {
		t.Fatal("no prefetch on a negative stride")
	}
	if pref >= a {
		t.Errorf("negative-stride prefetch went forward: %#x >= %#x", pref, a)
	}
}

func TestFilterSuppressesRepeats(t *testing.T) {
	p := New()
	a := train(p, 0x400, 0x10000, 8, ConfidenceMax+2)
	// Stride 8 < line size: consecutive prefetch targets often share a
	// line; the 16-entry filter must suppress the duplicates.
	if _, ok := p.Query(0x400, a); !ok {
		t.Fatal("first prefetch missing")
	}
	p.Update(0x400, a)
	if _, ok := p.Query(0x400, a+8); ok {
		t.Error("duplicate same-line prefetch not filtered")
	}
	if p.Stats().Filtered == 0 {
		t.Error("filter counter did not advance")
	}
}

func TestTableLRUEviction(t *testing.T) {
	p := New()
	// Fill the table with TableEntries PCs, then add one more: the first
	// (least recently updated) must be gone.
	for pc := uint64(0); pc < TableEntries; pc++ {
		p.Update(0x1000+pc*4, mem.Addr(pc*0x100))
	}
	p.Update(0x9999, 0x500000)
	if e := p.lookup(0x1000); e != nil {
		t.Error("LRU entry survived eviction")
	}
	if e := p.lookup(0x9999); e == nil {
		t.Error("new entry missing")
	}
}

func TestDistinctPCsTrackIndependently(t *testing.T) {
	p := New()
	a1 := train(p, 0x400, 0x10000, 64, ConfidenceMax+2)
	var a2 mem.Addr = 0x800000
	for i := 0; i < ConfidenceMax+2; i++ {
		p.Update(0x800, a2)
		a2 += 128
	}
	if _, ok := p.Query(0x400, a1); !ok {
		t.Error("pc 0x400 lost confidence")
	}
	pref, ok := p.Query(0x800, a2)
	if !ok {
		t.Fatal("pc 0x800 not confident")
	}
	if want := a2 + DistanceFactor*128; pref != want {
		t.Errorf("pc 0x800 prefetch %#x, want %#x", pref, want)
	}
}

func TestQueryUnknownPC(t *testing.T) {
	p := New()
	if _, ok := p.Query(0xdead, 0x1000); ok {
		t.Error("prefetch from unknown PC")
	}
	if p.Stats().TableMiss != 1 {
		t.Error("table miss not counted")
	}
}

func TestQueryDoesNotUnderflow(t *testing.T) {
	p := New()
	// Large negative stride near address zero must not wrap.
	a := train(p, 0x400, 1<<20, -65536, ConfidenceMax+2)
	_, _ = p.Query(0x400, a) // may or may not prefetch; must not produce a huge address
	a = train(p, 0x404, 1<<10, -256, ConfidenceMax+4)
	if pref, ok := p.Query(0x404, a); ok && int64(pref) < 0 {
		t.Errorf("prefetch address underflowed: %#x", pref)
	}
}
