package stride

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// entryState mirrors entry with exported fields.
type entryState struct {
	PC       uint64
	LastAddr uint64
	Stride   int64
	Conf     int
	LRU      uint64
	Valid    bool
}

// strideState mirrors the prefetcher's table, filter and counters.
type strideState struct {
	Entries   []entryState
	Clock     uint64
	Filter    []uint64
	FilterAge []uint64
	FilterLen int
	Stats     Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	st := strideState{
		Clock:     p.clock,
		Filter:    make([]uint64, FilterEntries),
		FilterAge: append([]uint64(nil), p.filterAge[:]...),
		FilterLen: p.filterLen,
		Stats:     p.stats,
	}
	for i := range p.entries {
		e := &p.entries[i]
		st.Entries = append(st.Entries, entryState{
			PC: e.pc, LastAddr: uint64(e.lastAddr), Stride: e.stride,
			Conf: e.conf, LRU: e.lru, Valid: e.valid,
		})
	}
	for i, l := range p.filter {
		st.Filter[i] = uint64(l)
	}
	return prefetch.MarshalState(st)
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st strideState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if len(st.Entries) != TableEntries {
		return fmt.Errorf("stride: state has %d table entries, want %d", len(st.Entries), TableEntries)
	}
	if len(st.Filter) != FilterEntries || len(st.FilterAge) != FilterEntries {
		return fmt.Errorf("stride: state filter covers %d/%d entries, want %d", len(st.Filter), len(st.FilterAge), FilterEntries)
	}
	if st.FilterLen < 0 || st.FilterLen > FilterEntries {
		return fmt.Errorf("stride: filter length %d out of range 0..%d", st.FilterLen, FilterEntries)
	}
	for i, es := range st.Entries {
		if es.Conf < 0 || es.Conf > ConfidenceMax {
			return fmt.Errorf("stride: entry %d confidence %d out of range 0..%d", i, es.Conf, ConfidenceMax)
		}
		p.entries[i] = entry{
			pc: es.PC, lastAddr: mem.Addr(es.LastAddr), stride: es.Stride,
			conf: es.Conf, lru: es.LRU, valid: es.Valid,
		}
	}
	for i, l := range st.Filter {
		p.filter[i] = mem.LineAddr(l)
	}
	copy(p.filterAge[:], st.FilterAge)
	p.filterLen = st.FilterLen
	p.clock = st.Clock
	p.stats = st.Stats
	return nil
}
