package stride

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

var _ prefetch.L1Prefetcher = (*Prefetcher)(nil)

// Spec registration: "stride" is the baseline DL1 prefetcher of section
// 5.5. The prefetch distance factor is the one exposed tunable
// ("stride:dist=8"); the table geometry is architectural and fixed.
func init() {
	prefetch.RegisterL1("stride", prefetch.Definition[prefetch.L1Prefetcher]{
		Help:     "DL1 stride prefetcher, PC-indexed, TLB2-gated (section 5.5)",
		Build:    buildSpec,
		Validate: func(v prefetch.Values) error { _, err := buildSpec(mem.Page4K, v); return err },
		Defaults: map[string]string{
			"dist": fmt.Sprint(DistanceFactor),
		},
	})
}

// buildSpec parses and validates stride's spec parameters and constructs
// the prefetcher; the registered Validate hook delegates here (construction
// is cheap), so a spec Normalize accepts is always constructible.
func buildSpec(_ mem.PageSize, v prefetch.Values) (prefetch.L1Prefetcher, error) {
	var err error
	dist := v.Int("dist", DistanceFactor, &err)
	if err != nil {
		return nil, err
	}
	if dist < 1 {
		return nil, fmt.Errorf("dist=%d must be >= 1", dist)
	}
	return NewWithDistance(dist), nil
}
