package stride

import (
	"testing"

	"bopsim/internal/mem"
)

// TestSteadyStateZeroAlloc pins the L1 stride prefetcher's hot-path cost:
// once the PC table exists, Update and Query allocate nothing. Guards the
// //bovet:hotpath roots with a runtime witness.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := New()
	pc, a := uint64(0x400), mem.Addr(0x10000)
	step := func() {
		p.Update(pc, a)
		p.Query(pc, a+64)
		a += 64
		pc = (pc + 4) % 0x800
	}
	for i := 0; i < 10_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg != 0 {
		t.Errorf("steady-state Update+Query allocates %.3f objects/op, want 0", avg)
	}
}
