// Package stride implements the baseline DL1 stride prefetcher of the paper
// (section 5.5): a 64-entry prefetch table indexed by the PC of load/store
// micro-ops, each entry holding the last virtual address, the last stride,
// and a 4-bit confidence counter. When a load/store misses the DL1 (or hits
// a prefetched line) and its entry has full confidence and a non-zero
// stride, the prefetcher issues a prefetch at currentaddr + 16*stride (the
// paper determined the distance factor 16 empirically). A 16-entry filter
// suppresses repeated prefetches to the same line; the caller additionally
// drops prefetches whose page misses in the TLB2.
package stride

import "bopsim/internal/mem"

// Table geometry and behaviour constants from section 5.5.
const (
	TableEntries   = 64
	ConfidenceMax  = 15
	DistanceFactor = 16
	FilterEntries  = 16
)

type entry struct {
	pc       uint64
	lastAddr mem.Addr
	stride   int64
	conf     int
	lru      uint64
	valid    bool
}

// Stats counts the prefetcher's decisions.
type Stats struct {
	Issued    uint64 // prefetch addresses returned to the caller
	Filtered  uint64 // suppressed by the 16-entry line filter
	TableHits uint64
	TableMiss uint64
	Confident uint64 // queries that found a confident, non-zero stride
}

// Prefetcher is the DL1 stride prefetcher.
type Prefetcher struct {
	entries  [TableEntries]entry
	clock    uint64
	distance int64

	filter    [FilterEntries]mem.LineAddr
	filterAge [FilterEntries]uint64
	filterLen int

	stats Stats
}

// New returns an empty stride prefetcher with the paper's distance factor.
func New() *Prefetcher { return NewWithDistance(DistanceFactor) }

// NewWithDistance returns an empty stride prefetcher with the given
// prefetch distance factor (the paper's empirically determined value is
// DistanceFactor = 16).
func NewWithDistance(distance int) *Prefetcher {
	return &Prefetcher{distance: int64(distance)}
}

// Name identifies the prefetcher in reports.
func (p *Prefetcher) Name() string { return "stride" }

// Stats returns a copy of the statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// lookup finds pc's entry, or nil.
func (p *Prefetcher) lookup(pc uint64) *entry {
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].pc == pc {
			return &p.entries[i]
		}
	}
	return nil
}

// victim returns the LRU slot.
func (p *Prefetcher) victim() *entry {
	best := 0
	for i := range p.entries {
		if !p.entries[i].valid {
			return &p.entries[i]
		}
		if p.entries[i].lru < p.entries[best].lru {
			best = i
		}
	}
	return &p.entries[best]
}

// Query computes a prefetch virtual address for a load/store at pc
// accessing va, using the table state *before* this access updates it (the
// table is updated at retirement, after the DL1 access, section 5.5). It
// returns ok=false when the entry is absent, unconfident, has a zero
// stride, or the target was recently prefetched.
//
// The caller must only invoke Query for DL1 misses and prefetched hits, and
// must drop the returned address if its page misses in the TLB2.
//
//bovet:hotpath
func (p *Prefetcher) Query(pc uint64, va mem.Addr) (prefVA mem.Addr, ok bool) {
	e := p.lookup(pc)
	if e == nil {
		p.stats.TableMiss++
		return 0, false
	}
	p.stats.TableHits++
	if e.conf < ConfidenceMax || e.stride == 0 {
		return 0, false
	}
	p.stats.Confident++
	target := mem.Addr(int64(va) + p.distance*e.stride)
	if int64(target) < 0 {
		return 0, false
	}
	if p.recentlyPrefetched(mem.LineOf(target)) {
		p.stats.Filtered++
		return 0, false
	}
	p.notePrefetched(mem.LineOf(target))
	p.stats.Issued++
	return target, true
}

// Update records the retirement of a load/store at pc with address va:
// confidence is incremented when the stride repeats, reset otherwise, and
// the stride/lastAddr are always updated (section 5.5).
//
//bovet:hotpath
func (p *Prefetcher) Update(pc uint64, va mem.Addr) {
	p.clock++
	e := p.lookup(pc)
	if e == nil {
		e = p.victim()
		*e = entry{pc: pc, lastAddr: va, valid: true, lru: p.clock}
		return
	}
	e.lru = p.clock
	if mem.Addr(int64(e.lastAddr)+e.stride) == va && e.stride != 0 {
		if e.conf < ConfidenceMax {
			e.conf++
		}
	} else {
		e.conf = 0
	}
	e.stride = int64(va) - int64(e.lastAddr)
	e.lastAddr = va
}

// recentlyPrefetched checks the 16-entry filter for line.
func (p *Prefetcher) recentlyPrefetched(line mem.LineAddr) bool {
	for i := 0; i < p.filterLen; i++ {
		if p.filter[i] == line {
			return true
		}
	}
	return false
}

// notePrefetched inserts line into the filter, evicting the oldest entry.
func (p *Prefetcher) notePrefetched(line mem.LineAddr) {
	p.clock++
	if p.filterLen < FilterEntries {
		p.filter[p.filterLen] = line
		p.filterAge[p.filterLen] = p.clock
		p.filterLen++
		return
	}
	oldest := 0
	for i := 1; i < FilterEntries; i++ {
		if p.filterAge[i] < p.filterAge[oldest] {
			oldest = i
		}
	}
	p.filter[oldest] = line
	p.filterAge[oldest] = p.clock
}
