package distrib

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bopsim/internal/experiments"
	"bopsim/internal/mem"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// tinyRunner mirrors the experiments package's test helper: two
// benchmarks, one config, short runs.
func tinyRunner() *experiments.Runner {
	r := experiments.NewRunner(40_000, []experiments.CoreConfig{{Cores: 1, Page: mem.Page4K}})
	r.Benchmarks = []trace.Spec{{Name: "416.gamess"}, {Name: "456.hmmer"}}
	return r
}

// countingHandler wraps a worker handler and counts executed /v1/run
// requests, so tests can prove where simulations actually ran.
type countingHandler struct {
	runs atomic.Int64
	h    http.Handler
}

func (c *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/run" {
		c.runs.Add(1)
	}
	c.h.ServeHTTP(w, r)
}

// startWorker runs one in-process worker daemon for tests.
func startWorker(t *testing.T, capacity int, traceDirs ...string) (*httptest.Server, *countingHandler) {
	t.Helper()
	ch := &countingHandler{h: (&Server{Capacity: capacity, TraceDirs: traceDirs}).Handler()}
	srv := httptest.NewServer(ch)
	t.Cleanup(srv.Close)
	return srv, ch
}

// TestRemoteMatchesLocal is the tentpole guarantee: a sweep fanned out
// over two workers renders byte-identical tables to a local run, every
// simulation actually executes remotely, and the results land in the
// coordinator's disk cache in the normal entry format.
func TestRemoteMatchesLocal(t *testing.T) {
	local := tinyRunner()
	wantFig2, wantFig6 := local.Fig2().String(), local.Fig6().String()

	w1, c1 := startWorker(t, 2)
	w2, c2 := startWorker(t, 2)
	pool, err := Dial([]string{w1.URL, w2.URL}, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Slots() != 4 {
		t.Fatalf("pool has %d slots, want 4 (2 workers x capacity 2)", pool.Slots())
	}
	// Slots interleave across workers, so a 2-job set uses both.
	l0, l1 := pool.SlotLabel(0), pool.SlotLabel(1)
	if strings.Split(l0, "#")[0] == strings.Split(l1, "#")[0] {
		t.Errorf("slots 0 and 1 home on the same worker (%s, %s), want interleaved", l0, l1)
	}

	cacheDir := t.TempDir()
	remote := tinyRunner()
	remote.Backend = pool
	remote.CacheDir = cacheDir
	gotFig2, gotFig6 := remote.Fig2().String(), remote.Fig6().String()
	if gotFig2 != wantFig2 {
		t.Errorf("remote Fig2 differs from local:\n%s\n---\n%s", gotFig2, wantFig2)
	}
	if gotFig6 != wantFig6 {
		t.Errorf("remote Fig6 differs from local:\n%s\n---\n%s", gotFig6, wantFig6)
	}

	runs := c1.runs.Load() + c2.runs.Load()
	if runs != int64(remote.Executed()) || runs == 0 {
		t.Errorf("workers saw %d runs, coordinator executed %d", runs, remote.Executed())
	}
	// Remote results persisted through the coordinator's disk cache.
	files, err := filepath.Glob(filepath.Join(cacheDir, "*.json"))
	if err != nil || len(files) != int(remote.Executed()) {
		t.Errorf("%d disk-cache entries for %d remote executions (err %v)", len(files), remote.Executed(), err)
	}
	// And that cache verifies clean against local re-execution — the
	// trust anchor for remotely computed results.
	rep, err := experiments.VerifyCache(cacheDir, 0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatched != 0 || rep.Checked == 0 {
		t.Errorf("remote-filled cache failed verification: %+v", rep)
	}
}

// killableHandler serves a worker until kill is set, then hard-closes
// every /v1/run connection — what a killed daemon looks like to the
// coordinator.
type killableHandler struct {
	kill atomic.Bool
	runs atomic.Int64
	h    http.Handler
}

func (k *killableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/run" {
		if k.kill.Load() {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		k.runs.Add(1)
	}
	k.h.ServeHTTP(w, r)
}

// TestWorkerKillMidSweepRetries kills one of two workers after its first
// completed job: the sweep must still finish, via bounded retry onto the
// survivor, with output identical to a local run.
func TestWorkerKillMidSweepRetries(t *testing.T) {
	local := tinyRunner()
	want := local.Fig6().String()

	healthy, _ := startWorker(t, 1)
	flaky := &killableHandler{h: (&Server{Capacity: 1}).Handler()}
	flakySrv := httptest.NewServer(flaky)
	t.Cleanup(flakySrv.Close)

	pool, err := Dial([]string{healthy.URL, flakySrv.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	remote := tinyRunner()
	remote.Backend = pool
	// Kill the flaky worker as soon as it has completed one job, so the
	// death lands mid-sweep whichever way the 4 jobs interleave. If the
	// healthy worker happens to take every job first, the kill simply
	// never fires — also a pass, so flip the switch up front for
	// determinism of the interesting case.
	flaky.kill.Store(true)

	got := remote.Fig6().String()
	if got != want {
		t.Errorf("table after worker loss differs from local:\n%s\n---\n%s", got, want)
	}
	if _, alive := pool.Workers(); alive != 1 {
		t.Errorf("%d workers alive after kill, want 1", alive)
	}
}

// TestAllWorkersLost checks the failure mode when the whole fleet dies:
// RunJobs reports errors for the affected jobs instead of hanging or
// panicking the process.
func TestAllWorkersLost(t *testing.T) {
	flaky := &killableHandler{h: (&Server{Capacity: 2}).Handler()}
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)
	pool, err := Dial([]string{srv.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	flaky.kill.Store(true)

	r := tinyRunner()
	r.Backend = pool
	o := sim.DefaultOptions("416.gamess")
	o.Instructions = 40_000
	runErr := r.RunJobs([]sim.Options{o})
	if runErr == nil {
		t.Fatal("RunJobs succeeded with every worker dead")
	}
	if !strings.Contains(runErr.Error(), "worker") {
		t.Errorf("error does not mention worker loss: %v", runErr)
	}
}

// TestServerRejectsBadPayloads covers the worker's input validation:
// malformed JSON, oversized bodies, schema skew and key mismatches are
// all refused with the right status and error code.
func TestServerRejectsBadPayloads(t *testing.T) {
	srv, _ := startWorker(t, 1)

	post := func(body []byte) (int, ErrorBody) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var eb ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return resp.StatusCode, eb
	}

	if code, eb := post([]byte("{not json")); code != http.StatusBadRequest || eb.Code != CodeMalformed {
		t.Errorf("malformed body: %d/%s, want 400/%s", code, eb.Code, CodeMalformed)
	}

	big := bytes.Repeat([]byte("x"), MaxJobBytes+1)
	if code, eb := post(big); code != http.StatusRequestEntityTooLarge || eb.Code != CodeMalformed {
		t.Errorf("oversized body: %d/%s, want 413/%s", code, eb.Code, CodeMalformed)
	}

	o := sim.DefaultOptions("416.gamess")
	o.Instructions = 1000
	good, err := NewPool(RetryPolicy{}).makeJob(o)
	if err != nil {
		t.Fatal(err)
	}

	skewed := good
	skewed.Schema = good.Schema + 1
	b, _ := json.Marshal(skewed)
	if code, eb := post(b); code != http.StatusConflict || eb.Code != CodeSchemaMismatch {
		t.Errorf("schema skew: %d/%s, want 409/%s", code, eb.Code, CodeSchemaMismatch)
	}

	wrongKey := good
	wrongKey.Key = strings.Repeat("ab", 32)
	b, _ = json.Marshal(wrongKey)
	if code, eb := post(b); code != http.StatusConflict || eb.Code != CodeKeyMismatch {
		t.Errorf("key mismatch: %d/%s, want 409/%s", code, eb.Code, CodeKeyMismatch)
	}

	// An unknown field from a same-version coordinator means the two
	// binaries disagree about the Job schema itself: refused, not
	// silently dropped.
	b, _ = json.Marshal(map[string]any{
		"protocol": ProtocolVersion, "schema": experiments.SchemaVersion(), "surprise": true})
	if code, eb := post(b); code != http.StatusBadRequest || eb.Code != CodeMalformed {
		t.Errorf("unknown field: %d/%s, want 400/%s", code, eb.Code, CodeMalformed)
	}

	// A protocol-v2 era payload — old version numbers AND since-removed
	// Options fields — gets the purpose-built version-skew diagnostic, not
	// a generic unknown-field 400: the version check reads a lenient
	// pre-decode precisely so field removals can't mask it.
	b, _ = json.Marshal(map[string]any{
		"protocol": 2, "schema": 2, "key": "abc",
		"options": map[string]any{"Workload": "456.hmmer", "TracePath": "", "Cores": 1},
	})
	if code, eb := post(b); code != http.StatusConflict || eb.Code != CodeSchemaMismatch {
		t.Errorf("v2-era payload: %d/%s, want 409/%s", code, eb.Code, CodeSchemaMismatch)
	}

	// A bad simulation (unknown benchmark) is a deterministic job error.
	bad, err := NewPool(RetryPolicy{}).makeJob(sim.Options{Workloads: []trace.Spec{{Name: "no-such-benchmark"}}, Cores: 1, Page: mem.Page4K, Instructions: 1000})
	if err != nil {
		t.Fatal(err)
	}
	b, _ = json.Marshal(bad)
	if code, eb := post(b); code != http.StatusUnprocessableEntity || eb.Code != CodeSimFailed {
		t.Errorf("sim failure: %d/%s, want 422/%s", code, eb.Code, CodeSimFailed)
	}
}

// TestHeterogeneousWorkloadsRemoteMatchesLocal checks per-core workload
// specs travel the wire intact: a two-core run with different generators
// on each core returns byte-identical results remotely and locally, and
// the worker's key recomputation accepts the spec-based payload.
func TestHeterogeneousWorkloadsRemoteMatchesLocal(t *testing.T) {
	o := sim.DefaultOptions("")
	o.Workloads = []trace.Spec{
		trace.MustSpec("gups:footprint=4mb"),
		trace.MustSpec("stream:stride=128"),
	}
	o.Cores = 2
	o.Instructions = 20_000

	local, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	w, counter := startWorker(t, 1)
	pool, err := Dial([]string{w.URL}, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := pool.Run(0, o)
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := json.Marshal(local)
	rb, _ := json.Marshal(remote)
	if !bytes.Equal(lb, rb) {
		t.Errorf("remote heterogeneous run diverged\nlocal:  %s\nremote: %s", lb, rb)
	}
	if counter.runs.Load() != 1 {
		t.Errorf("worker executed %d jobs, want 1", counter.runs.Load())
	}
}

// TestWorkerRejectsPathFileSpec checks the wire hygiene rule: a job whose
// file workload spec still carries a coordinator-local path (instead of
// the sha-only wire form) is refused as malformed, never opened.
func TestWorkerRejectsPathFileSpec(t *testing.T) {
	w, _ := startWorker(t, 1)
	o := sim.DefaultOptions("").Normalized()
	o.Workloads = []trace.Spec{trace.FileSpec("/etc/hostname")}
	o.Cores = 1
	job := Job{Protocol: ProtocolVersion, Schema: experiments.SchemaVersion(), Options: o}
	b, _ := json.Marshal(job)
	resp, err := http.Post(w.URL+"/v1/run", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb ErrorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	if resp.StatusCode != http.StatusBadRequest || eb.Code != CodeMalformed {
		t.Errorf("path-bearing file spec: %d/%s, want 400/%s", resp.StatusCode, eb.Code, CodeMalformed)
	}
}

// TestTraceJobsResolveByContentHash checks the trace path end to end: the
// coordinator ships a content hash, a worker holding a byte-identical
// copy (under any filename) executes the job, and a worker without it
// refuses with the retry-elsewhere status so the pool routes around it.
func TestTraceJobsResolveByContentHash(t *testing.T) {
	srcDir := t.TempDir()
	tracePath := filepath.Join(srcDir, "workload.trace")
	gen, err := trace.NewWorkload("456.hmmer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(tracePath, gen, 3000); err != nil {
		t.Fatal(err)
	}

	// The worker's copy lives under a different name in its own dir.
	workerDir := t.TempDir()
	b, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(workerDir, "renamed.bin"), b, 0o644); err != nil {
		t.Fatal(err)
	}

	bare, _ := startWorker(t, 1) // no trace dirs
	holder, _ := startWorker(t, 1, workerDir)
	pool, err := Dial([]string{bare.URL, holder.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	o := sim.DefaultOptions("456.hmmer")
	o.Workloads = []trace.Spec{trace.FileSpec(tracePath)}
	o.Instructions = 2000

	// Slot 0 homes on the bare worker: the job must bounce off it (412)
	// and complete on the holder.
	res, err := pool.Run(0, o)
	if err != nil {
		t.Fatalf("trace job failed: %v", err)
	}
	// Trace probes must not consume the worker-loss retry budget: with
	// more traceless workers than MaxAttempts ahead of the holder, the
	// job still has to find it.
	var fleet []string
	for i := 0; i < 5; i++ {
		bare, _ := startWorker(t, 1)
		fleet = append(fleet, bare.URL)
	}
	fleet = append(fleet, holder.URL)
	wide, err := Dial(fleet, RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wide.Run(0, o); err != nil {
		t.Errorf("trace job failed on a wide fleet where one worker holds the trace: %v", err)
	}
	want, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// The whole result must be byte-identical — Workload label included,
	// even though the worker resolved the trace at a *different* local
	// path than the coordinator's: file replays label by content hash, so
	// result bytes never depend on which machine's path served the trace.
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(res)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("remote trace replay result diverged from local\nlocal:  %s\nremote: %s", wantJSON, gotJSON)
	}
	if !strings.HasPrefix(res.Workload, "file:sha=") {
		t.Errorf("trace-replay result labeled %q, want content-hash form", res.Workload)
	}

	// With only the bare worker, the job must fail with a trace error.
	alone, err := Dial([]string{bare.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alone.Run(0, o); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("job on traceless fleet: %v, want trace_unavailable error", err)
	}
}

// TestLookupTraceDropsStaleMapping checks a trace overwritten in place
// within the rescan-throttle window reads as a miss (412, retry on
// another worker), not as the stale path — which would make the worker's
// key recomputation fail the job permanently with 409.
func TestLookupTraceDropsStaleMapping(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "t.trace")
	if err := os.WriteFile(f, []byte("content-one"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := &Server{TraceDirs: []string{dir}}
	sha := experiments.TraceContentSHA(f)
	if p, ok := s.lookupTrace(sha); !ok || p != f {
		t.Fatalf("lookupTrace(%0.12s) = %q, %v; want hit on %s", sha, p, ok, f)
	}
	// Overwrite in place (different length, so the size+mtime hash memo
	// can never serve the stale hash) and probe again inside the window.
	if err := os.WriteFile(f, []byte("content-two-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if p, ok := s.lookupTrace(sha); ok {
		t.Errorf("lookupTrace returned stale mapping %q for overwritten trace", p)
	}
}

// TestDialRejectsBadFleet checks Dial fails fast on unreachable and
// misconfigured workers instead of silently shrinking the fleet.
func TestDialRejectsBadFleet(t *testing.T) {
	if _, err := Dial(nil, RetryPolicy{}); err == nil {
		t.Error("Dial with no addresses succeeded")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, RetryPolicy{}); err == nil {
		t.Error("Dial to a closed port succeeded")
	}
	// A server speaking a different schema is refused at dial time.
	skew := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Info{Protocol: ProtocolVersion, Schema: experiments.SchemaVersion() + 1, Capacity: 1})
	}))
	defer skew.Close()
	if _, err := Dial([]string{skew.URL}, RetryPolicy{}); err == nil {
		t.Error("Dial to a schema-skewed worker succeeded")
	}
}

// TestCheckpointedRemoteSweep checks warmup sharing end to end over the
// wire: the coordinator runs the warmup legs locally, ships each job with
// its snapshot's content hash, and a worker holding the snapshot forks
// from it — rendering byte-identical tables to a serial, uncheckpointed
// sweep. A second fleet *without* the snapshots must also match: a worker
// that cannot resolve a CheckpointSHA runs the warmup itself.
func TestCheckpointedRemoteSweep(t *testing.T) {
	serial := tinyRunner()
	serial.Instructions = 20_000
	serial.Warmup = 15_000
	want := serial.Fig6().String()

	ckptDir := t.TempDir()
	runRemote := func(worker *httptest.Server) string {
		r := tinyRunner()
		r.Instructions = 20_000
		r.Warmup = 15_000
		r.Checkpoint = true
		r.CheckpointDir = ckptDir
		pool, err := Dial([]string{worker.Listener.Addr().String()}, RetryPolicy{Backoff: -1})
		if err != nil {
			t.Fatal(err)
		}
		r.Backend = pool
		return r.Fig6().String()
	}

	// Worker with the snapshot directory mounted: resolves CheckpointSHA.
	withSnaps, c1 := startWorker(t, 2, ckptDir)
	if got := runRemote(withSnaps); got != want {
		t.Errorf("checkpointed remote sweep diverged from serial\nserial:\n%s\nremote:\n%s", want, got)
	}
	if c1.runs.Load() == 0 {
		t.Error("no jobs executed on the snapshot-holding worker")
	}

	// Worker with no access to the snapshots: CheckpointSHA is advisory,
	// so it replays warmups itself and must still match byte for byte.
	bare, c2 := startWorker(t, 2)
	r2 := tinyRunner()
	r2.Instructions = 20_000
	r2.Warmup = 15_000
	r2.Seed = 3 // fresh cache keys so jobs really re-execute
	serial2 := tinyRunner()
	serial2.Instructions = 20_000
	serial2.Warmup = 15_000
	serial2.Seed = 3
	want2 := serial2.Fig6().String()
	r2.Checkpoint = true
	r2.CheckpointDir = t.TempDir() // legs created here; worker can't see it
	pool, err := Dial([]string{bare.Listener.Addr().String()}, RetryPolicy{Backoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	r2.Backend = pool
	if got := r2.Fig6().String(); got != want2 {
		t.Errorf("remote sweep with unresolvable snapshots diverged\nserial:\n%s\nremote:\n%s", want2, got)
	}
	if c2.runs.Load() == 0 {
		t.Error("no jobs executed on the snapshot-less worker")
	}
}
