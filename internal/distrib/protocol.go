// Package distrib is the distributed execution backend for the experiment
// scheduler: a coordinator-side Pool that satisfies experiments.ExecBackend
// by fanning jobs out over HTTP, and the worker-side Server that
// cmd/boworkerd wraps around the simulation engine.
//
// The wire protocol leans on two properties the scheduler already
// guarantees. First, jobs are self-contained value objects: a normalized
// sim.Options names a synthetic workload and registry prefetcher specs by
// canonical strings, so serializing one is just JSON — no code or state
// moves. Second, results are content-addressed: the coordinator's
// OptionsHash keys a job, the worker recomputes the same hash from the
// payload as an integrity check, and the response reuses the disk cache's
// entry format (experiments.CacheEntry) so the coordinator can write it
// straight into the shared cache.
//
// Trace replays are the one job kind with a file dependency. The
// coordinator never ships trace bytes; it sends the trace's content
// SHA-256 (the same identity the cache keys by) and the worker resolves
// it against its own trace directories, refusing the job — with a
// distinct, retry-on-another-worker status — when it has no copy.
//
// See DESIGN.md ("Distributed execution") for the endpoint table and
// retry semantics.
package distrib

import (
	"bopsim/internal/sim"
)

// ProtocolVersion is bumped on incompatible changes to the endpoints or
// payload schemas below. A worker refuses jobs from a different protocol.
//
// v2: Job gained CheckpointSHA (warmup snapshots shipped by content hash,
// like traces) and Options gained the Warmup/WarmupPF fields.
//
// v3: Options carries per-core workload specs (Options.Workloads) instead
// of the Workload/TracePath pair; trace replays travel as "file" specs in
// hash form ("file:sha=HEX", resolved against the worker's trace
// directories), so the Job-level TraceSHA field is gone.
//
// v4: workers accept artifact uploads (PUT /v1/artifacts/{sha}), so a
// coordinator holding a trace or checkpoint can seed a worker that 412s
// instead of excluding it; the 412 ErrorBody names the missing hash in
// the structured SHA field; /healthz and /v1/run answer 503 with the
// "draining" code while the worker drains for a graceful shutdown.
const ProtocolVersion = 4

// MaxJobBytes bounds a /v1/run request body. A legitimate job is a few
// hundred bytes of JSON (options are value types; traces travel by hash),
// so anything near the megabyte is malformed or hostile and is rejected with
// 413 before being parsed.
const MaxJobBytes = 1 << 20

// MaxArtifactBytes bounds a PUT /v1/artifacts/{sha} body: recorded traces
// and warmup snapshots are tens of MB at most, so a 1 GiB cap leaves
// generous headroom while keeping a hostile upload from filling the
// worker's disk.
const MaxArtifactBytes = 1 << 30

// Job is the /v1/run request payload: one simulation for the worker to
// execute.
//
//bovet:schemalock
type Job struct {
	// Protocol and Schema pin the wire protocol and the result-cache
	// schema (experiments.SchemaVersion) the coordinator was built
	// against. The worker refuses mismatches: a schema skew means the two
	// binaries' simulators can disagree, which would poison the shared
	// cache.
	Protocol int `json:"protocol"`
	Schema   int `json:"schema"`
	// Key is the coordinator's OptionsHash for this job. The worker
	// recomputes it from Options (after resolving TraceSHA to a local
	// path) and refuses the job on mismatch — the cheap end-to-end check
	// that both sides normalize and hash identically.
	Key string `json:"key"`
	// Options is the run itself, normalized, with every "file" workload
	// spec in wire form: identified by content SHA-256 ("file:sha=HEX"),
	// never by coordinator-local path. The worker resolves each sha in its
	// own trace directories and refuses the job — with the retryable
	// trace_unavailable status — when it has no copy.
	Options sim.Options `json:"options"`
	// CheckpointSHA, when non-empty, identifies a warmup snapshot
	// (engine.Checkpoint bytes) by content hash. The worker resolves it in
	// its trace/checkpoint directories and forks the measured region from
	// it. Unlike TraceSHA this is advisory: a worker without the snapshot
	// (or with an unusable one) runs the warmup itself — the engine's
	// determinism guarantee makes the result byte-identical — so a missing
	// checkpoint degrades throughput, never correctness.
	CheckpointSHA string `json:"checkpoint_sha,omitempty"`
}

// Info is the /v1/info response: the worker's advertisement.
//
//bovet:schemalock
type Info struct {
	Protocol int `json:"protocol"`
	Schema   int `json:"schema"`
	// Capacity is how many simulations the worker executes concurrently;
	// the coordinator contributes this many slots to the pool.
	Capacity int `json:"capacity"`
}

// Error codes carried in ErrorBody.Code. The HTTP status picks the
// client's broad reaction (retry elsewhere vs give up); the code says
// why.
const (
	// CodeMalformed: the body was not a parseable Job (HTTP 400).
	CodeMalformed = "malformed"
	// CodeSchemaMismatch: protocol or cache-schema skew (HTTP 409).
	CodeSchemaMismatch = "schema_mismatch"
	// CodeKeyMismatch: the worker's OptionsHash of the payload differs
	// from Job.Key (HTTP 409).
	CodeKeyMismatch = "key_mismatch"
	// CodeTraceUnavailable: the worker has no trace with the requested
	// content hash (HTTP 412); the coordinator should try a worker that
	// does.
	CodeTraceUnavailable = "trace_unavailable"
	// CodeSimFailed: the simulation itself returned an error (HTTP 422);
	// deterministic, so never retried.
	CodeSimFailed = "sim_failed"
	// CodeDraining: the worker is draining for a graceful shutdown and
	// accepts no new jobs (HTTP 503); the coordinator treats it like a
	// lost worker (requeue elsewhere) and revival re-probing brings the
	// restarted daemon back.
	CodeDraining = "draining"
	// CodeArtifactMismatch: an uploaded artifact's bytes do not hash to
	// the sha named in the PUT /v1/artifacts/{sha} path (HTTP 422).
	CodeArtifactMismatch = "artifact_mismatch"
	// CodeNoArtifactDir: the worker has no writable artifact directory to
	// accept uploads into (HTTP 403) — it was started without -trace-dir
	// or -checkpoint-dir and seeding is not possible.
	CodeNoArtifactDir = "no_artifact_dir"
)

// ErrorBody is every non-200 response's JSON payload.
//
//bovet:schemalock
type ErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	// SHA, set on trace_unavailable (412) responses, is the content hash
	// the worker could not resolve — the structured field the
	// coordinator's artifact seeding reads (the hash also appears in
	// Error, but prose is not an interface).
	SHA string `json:"sha,omitempty"`
}
