package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"bopsim/internal/experiments"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// RetryPolicy bounds how the coordinator reacts to lost workers: a job
// whose request dies mid-flight (connection refused, reset, truncated
// response, 5xx) is requeued on another live worker, sleeping Backoff
// first. Job-level failures (the simulation itself errors, schema skew)
// are deterministic and never retried.
type RetryPolicy struct {
	// MaxAttempts bounds execution attempts per job: each worker loss
	// consumes one, and the job fails once MaxAttempts attempts have
	// been cut short (so MaxAttempts of 1 means no failover at all).
	// <= 0 means 3, i.e. a job tolerates two worker losses.
	MaxAttempts int
	// Backoff after a worker loss; < 0 means none, 0 means 100ms.
	Backoff time.Duration
	// ProbeInterval, when > 0, enables dead-worker revival: a background
	// prober re-checks every dead worker's /healthz (and re-validates
	// protocol/schema via /v1/info) this often and returns recovered
	// workers to the rotation, so a restarted daemon rejoins the sweep
	// instead of being written off forever. 0 keeps the historical
	// behaviour: markDead is permanent for the Pool's lifetime.
	ProbeInterval time.Duration
}

// maxWorkerCapacity bounds what one worker may advertise: each capacity
// unit becomes a coordinator slot (a goroutine plus bookkeeping), so an
// absurd value from a misconfigured worker must not balloon the
// coordinator. 1024 is far above any real machine's useful simulation
// parallelism.
const maxWorkerCapacity = 1024

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return 3
}

func (p RetryPolicy) backoff() time.Duration {
	if p.Backoff < 0 {
		return 0
	}
	if p.Backoff == 0 {
		return 100 * time.Millisecond
	}
	return p.Backoff
}

// worker is the coordinator's view of one boworkerd daemon.
type worker struct {
	addr     string // "host:port", display form
	base     string // "http://host:port"
	capacity int
	dead     bool
}

// Pool implements experiments.ExecBackend (checked below) without the
// experiments package knowing this package exists; cmd/experiments wires
// the two together.
var (
	_ experiments.ExecBackend       = (*Pool)(nil)
	_ experiments.CheckpointBackend = (*Pool)(nil)
)

// Pool fans the scheduler's jobs out to a fleet of workers. It satisfies
// experiments.ExecBackend: every capacity unit a worker advertises
// becomes one scheduler slot, homed on that worker; when a worker is
// lost, its slots fail over to the survivors (whose /v1/run queues
// excess jobs), so the sweep finishes as long as one worker lives.
//
// Workers can join after construction (AddWorker — the fleet service's
// registration path), and with RetryPolicy.ProbeInterval set, dead
// workers are re-probed and revived instead of being lost forever.
type Pool struct {
	retry  RetryPolicy
	client *http.Client

	// ArtifactSource, when non-nil, resolves a content hash to a local
	// file path so the pool can seed a worker that 412s on a missing
	// trace or checkpoint (PUT /v1/artifacts/{sha}). The pool also
	// remembers every path↔sha pair it ships itself (recordArtifact), so
	// plain `-workers` sweeps seed without any configuration; this hook
	// lets a fleet coordinator answer from its own artifact directories
	// too. Must be safe for concurrent use.
	ArtifactSource func(sha string) (path string, ok bool)

	mu      sync.Mutex
	workers []*worker
	home    []int // slot -> index into workers
	ordinal []int // slot -> slot ordinal within its home worker
	next    int   // round-robin cursor for failover picks

	artMu     sync.Mutex
	artifacts map[string]string // content sha -> coordinator-local path

	stopProbe chan struct{}
	closeOnce sync.Once
}

// NewPool returns an empty Pool: no workers, no slots. Workers join via
// AddWorker — the fleet coordinator's registration path — and a pool with
// zero slots simply cannot execute jobs yet. The revival prober starts
// immediately when retry.ProbeInterval > 0; call Close to stop it.
func NewPool(retry RetryPolicy) *Pool {
	// The default transport keeps only 2 idle connections per host — far
	// under a worker's concurrent slot count — which would redial TCP for
	// most jobs despite drainAndClose. Size the idle pool to cover the
	// capacity cap instead.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = maxWorkerCapacity
	transport.MaxIdleConns = 0 // no global cap beyond the per-host one
	p := &Pool{retry: retry, client: &http.Client{Transport: transport}}
	if retry.ProbeInterval > 0 {
		p.stopProbe = make(chan struct{})
		go p.probeLoop(retry.ProbeInterval)
	}
	return p
}

// Close stops the revival prober, if one is running. Jobs in flight are
// unaffected; the pool remains usable (dead workers just stay dead).
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		if p.stopProbe != nil {
			close(p.stopProbe)
		}
	})
}

// Dial contacts every worker's /v1/info, verifies protocol and schema
// agreement, and builds a Pool with one slot per advertised capacity
// unit. Any unreachable or incompatible worker fails the whole call: the
// operator listed it, so silently running without it would be a
// misconfiguration masked as a slow sweep.
func Dial(addrs []string, retry RetryPolicy) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, errors.New("distrib: no worker addresses")
	}
	p := NewPool(retry)
	// Build the roster locally and install it under the lock at the end:
	// NewPool may have already started the revival prober, which walks
	// p.workers concurrently.
	var workers []*worker
	for _, addr := range addrs {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		w, err := dialWorker(p.client, addr)
		if err != nil {
			p.Close()
			return nil, err
		}
		workers = append(workers, w)
	}
	// Interleave slots across workers (A#0, B#0, A#1, B#1, ...) so a job
	// set smaller than the total capacity still spreads over the whole
	// fleet — RunJobs clamps its slot count to the job count, and
	// contiguous homing would leave later-listed workers idle.
	var home, ordinal []int
	for k := 0; ; k++ {
		added := false
		for idx, w := range workers {
			if k < w.capacity {
				home = append(home, idx)
				ordinal = append(ordinal, k)
				added = true
			}
		}
		if !added {
			break
		}
	}
	if len(home) == 0 {
		p.Close()
		return nil, errors.New("distrib: workers advertise zero total capacity")
	}
	p.mu.Lock()
	p.workers, p.home, p.ordinal = workers, home, ordinal
	p.mu.Unlock()
	return p, nil
}

// AddWorker dials addr, validates protocol/schema agreement, and adds the
// worker to the pool with one slot per advertised capacity unit. When the
// address is already pooled, the call is a revival instead: the worker is
// returned to the rotation (its slot count unchanged) and added reports
// false. This is the fleet coordinator's registration path — a worker
// re-announcing after a restart heals itself immediately rather than
// waiting for the next probe tick.
func (p *Pool) AddWorker(addr string) (added bool, err error) {
	w, err := dialWorker(p.client, strings.TrimSpace(addr))
	if err != nil {
		return false, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, existing := range p.workers {
		if existing.addr == w.addr {
			existing.dead = false
			return false, nil
		}
	}
	idx := len(p.workers)
	p.workers = append(p.workers, w)
	for k := 0; k < w.capacity; k++ {
		p.home = append(p.home, idx)
		p.ordinal = append(p.ordinal, k)
	}
	return true, nil
}

func dialWorker(client *http.Client, addr string) (*worker, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/info", nil)
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %s: %v", addr, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("distrib: worker %s unreachable: %v", addr, err)
	}
	defer drainAndClose(resp)
	var info Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("distrib: worker %s: bad /v1/info response: %v", addr, err)
	}
	if info.Protocol != ProtocolVersion || info.Schema != experiments.SchemaVersion() {
		return nil, fmt.Errorf("distrib: worker %s speaks protocol %d / schema %d, coordinator wants %d / %d",
			addr, info.Protocol, info.Schema, ProtocolVersion, experiments.SchemaVersion())
	}
	if info.Capacity < 1 || info.Capacity > maxWorkerCapacity {
		return nil, fmt.Errorf("distrib: worker %s advertises capacity %d (want 1..%d)",
			addr, info.Capacity, maxWorkerCapacity)
	}
	return &worker{addr: strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://"),
		base: base, capacity: info.Capacity}, nil
}

// probeLoop is the revival prober: every ProbeInterval it re-checks the
// dead workers and returns the recovered ones to the rotation.
func (p *Pool) probeLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stopProbe:
			return
		case <-t.C:
			p.probeDead()
		}
	}
}

// probeDead re-probes every dead worker once: /healthz first (a draining
// worker answers 503 there and must not be revived), then /v1/info via
// dialWorker so a restarted daemon with a skewed protocol or cache schema
// stays out of the rotation — reviving it would fail every job it gets.
func (p *Pool) probeDead() {
	p.mu.Lock()
	var dead []*worker
	for _, w := range p.workers {
		if w.dead {
			dead = append(dead, w)
		}
	}
	p.mu.Unlock()
	for _, w := range dead {
		if !p.healthy(w) {
			continue
		}
		if _, err := dialWorker(p.client, w.addr); err != nil {
			continue
		}
		p.mu.Lock()
		w.dead = false
		p.mu.Unlock()
	}
}

// healthy reports whether w's /healthz answers 200 right now.
func (p *Pool) healthy(w *worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer drainAndClose(resp)
	return resp.StatusCode == http.StatusOK
}

// Slots implements experiments.ExecBackend: the fleet's total capacity.
func (p *Pool) Slots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.home)
}

// SlotLabel implements experiments.ExecBackend ("host:port#2").
func (p *Pool) SlotLabel(slot int) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.workers[p.home[slot]]
	return fmt.Sprintf("%s#%d", w.addr, p.ordinal[slot])
}

// Workers reports the fleet size and how many workers are still alive.
func (p *Pool) Workers() (total, alive int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if !w.dead {
			alive++
		}
	}
	return len(p.workers), alive
}

// WorkerState is one worker's coordinator-side view, for fleet status
// displays.
type WorkerState struct {
	Addr     string `json:"addr"`
	Capacity int    `json:"capacity"`
	Alive    bool   `json:"alive"`
}

// WorkerStates snapshots every pooled worker's state.
func (p *Pool) WorkerStates() []WorkerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerState, len(p.workers))
	for i, w := range p.workers {
		out[i] = WorkerState{Addr: w.addr, Capacity: w.capacity, Alive: !w.dead}
	}
	return out
}

// Run implements experiments.ExecBackend: execute one simulation on the
// fleet, preferring the slot's home worker and failing over per
// RetryPolicy when workers are lost.
//
// Only worker losses consume the bounded retry budget. Trace probes
// (412) first trigger one artifact-seeding attempt (the coordinator
// streams its own copy to the worker and retries there), then grow the
// per-job exclusion set, which the fleet size bounds — so a trace held by
// the coordinator or any worker is found no matter how many workers
// lack it.
func (p *Pool) Run(slot int, o sim.Options) (sim.Result, error) {
	job, err := p.makeJob(o)
	if err != nil {
		return sim.Result{}, err
	}
	return p.runJob(slot, job)
}

// RunFrom implements experiments.CheckpointBackend: the job ships the
// warmup snapshot's content hash (never its bytes — the same transfer
// model as traces) and each worker resolves it against its own indexed
// directories, falling back to running the warmup itself when it has no
// copy. Either way the result bytes are those of Run.
func (p *Pool) RunFrom(slot int, o sim.Options, checkpointPath, checkpointSHA string) (sim.Result, error) {
	job, err := p.makeJob(o)
	if err != nil {
		return sim.Result{}, err
	}
	job.CheckpointSHA = checkpointSHA
	if checkpointPath != "" && checkpointSHA != "" {
		// Snapshots never 412 (they are advisory), but remembering the
		// coordinator's copy lets ArtifactSource-less callers pre-seed via
		// SeedWorker, and keeps the artifact map the one place paths live.
		p.recordArtifact(checkpointSHA, checkpointPath)
	}
	return p.runJob(slot, job)
}

func (p *Pool) runJob(slot int, job Job) (sim.Result, error) {
	lost := 0
	noTrace := make(map[*worker]bool)
	seeded := make(map[*worker]bool)
	var lastErr error
	for {
		w := p.pick(slot, noTrace)
		if w == nil {
			if lastErr == nil {
				lastErr = errors.New("all workers lost")
			}
			return sim.Result{}, fmt.Errorf("distrib: no usable worker for job: %w", lastErr)
		}
		res, verdict, eb, err := p.post(w, job)
		switch verdict {
		case verdictOK:
			return res, nil
		case verdictPermanent:
			return sim.Result{}, err
		case verdictNoTrace:
			lastErr = err
			// Before writing the worker off for this job, try to seed it
			// with the coordinator's own copy of the missing artifact —
			// once per worker per job, so a worker that discards the
			// upload cannot loop.
			if !seeded[w] && p.seedArtifact(w, eb.SHA) {
				seeded[w] = true
				continue
			}
			noTrace[w] = true
		case verdictWorkerLost:
			p.markDead(w)
			lastErr = err
			if lost++; lost >= p.retry.attempts() {
				return sim.Result{}, fmt.Errorf("distrib: job failed after losing %d workers: %w", lost, lastErr)
			}
			time.Sleep(p.retry.backoff())
		}
	}
}

// makeJob serializes one run for the wire: normalized options with every
// "file" workload spec rewritten to its content hash (never a
// coordinator-local path), plus the coordinator's cache key — which hashes
// the same wire form, so the worker's recomputation must agree. The
// path↔hash pairs the rewrite discovers are remembered for artifact
// seeding.
func (p *Pool) makeJob(o sim.Options) (Job, error) {
	n := o.Normalized()
	for i, w := range n.Workloads {
		wire, err := trace.WireSpec(w)
		if err != nil {
			return Job{}, fmt.Errorf("distrib: %v", err)
		}
		if path, ok := w.Get("path"); ok && wire.Name == "file" {
			if sha, ok := wire.Get("sha"); ok {
				p.recordArtifact(sha, path)
			}
		}
		n.Workloads[i] = wire
	}
	return Job{
		Protocol: ProtocolVersion,
		Schema:   experiments.SchemaVersion(),
		Key:      experiments.OptionsHash(n),
		Options:  n,
	}, nil
}

// recordArtifact remembers where the coordinator's copy of a
// content-addressed artifact lives, for seeding workers that lack it.
func (p *Pool) recordArtifact(sha, path string) {
	p.artMu.Lock()
	defer p.artMu.Unlock()
	if p.artifacts == nil {
		p.artifacts = make(map[string]string)
	}
	p.artifacts[sha] = path
}

// artifactPath resolves sha to a coordinator-local file: the recorded
// ship-time mapping first (re-hashed, so a file edited since then is
// never pushed under a stale identity), then the ArtifactSource hook.
func (p *Pool) artifactPath(sha string) string {
	p.artMu.Lock()
	path, ok := p.artifacts[sha]
	p.artMu.Unlock()
	if ok && trace.ContentSHA(path) == sha {
		return path
	}
	if p.ArtifactSource != nil {
		if path, ok := p.ArtifactSource(sha); ok {
			return path
		}
	}
	return ""
}

// seedArtifact streams the coordinator's copy of sha to w's artifact
// endpoint. False means the worker cannot be seeded for this hash — no
// local copy, an old worker without the endpoint, or a refused upload —
// and the caller should fall back to excluding the worker.
func (p *Pool) seedArtifact(w *worker, sha string) bool {
	if sha == "" {
		return false
	}
	path := p.artifactPath(sha)
	if path == "" {
		return false
	}
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	req, err := http.NewRequest(http.MethodPut, w.base+"/v1/artifacts/"+sha, f)
	if err != nil {
		return false
	}
	if st, err := f.Stat(); err == nil {
		req.ContentLength = st.Size()
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	defer drainAndClose(resp)
	return resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK
}

// SeedWorker pushes the artifact with the given content hash to the named
// worker ahead of any job needing it — the fleet coordinator uses this to
// pre-place traces on newly registered workers. The worker is looked up
// by its display address ("host:port").
func (p *Pool) SeedWorker(addr, sha string) error {
	p.mu.Lock()
	var target *worker
	for _, w := range p.workers {
		if w.addr == addr {
			target = w
			break
		}
	}
	p.mu.Unlock()
	if target == nil {
		return fmt.Errorf("distrib: no pooled worker %s", addr)
	}
	if !p.seedArtifact(target, sha) {
		return fmt.Errorf("distrib: seeding %s with %.12s… failed", addr, sha)
	}
	return nil
}

// pick chooses the worker for one attempt: the slot's home worker when
// it is still usable, otherwise the next usable worker round-robin —
// spreading orphaned slots over the survivors instead of piling them on
// one.
func (p *Pool) pick(slot int, exclude map[*worker]bool) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w := p.workers[p.home[slot]]; !w.dead && !exclude[w] {
		return w
	}
	for i := 0; i < len(p.workers); i++ {
		w := p.workers[(p.next+i)%len(p.workers)]
		if !w.dead && !exclude[w] {
			p.next = (p.next + i + 1) % len(p.workers)
			return w
		}
	}
	return nil
}

func (p *Pool) markDead(w *worker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.dead = true
}

// drainAndClose reads the body to EOF before closing so the transport
// can return the connection to its keep-alive pool — json.Decode stops
// at the end of the value and never observes EOF, and a per-job TCP
// handshake would pile up TIME_WAIT sockets over a large sweep.
func drainAndClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

type verdict int

const (
	verdictOK verdict = iota
	// verdictPermanent: the job itself is bad (sim error, schema or key
	// skew); retrying elsewhere would fail identically.
	verdictPermanent
	// verdictNoTrace: this worker lacks the job's trace; another may
	// have it (or this one can be seeded).
	verdictNoTrace
	// verdictWorkerLost: transport-level failure, 5xx or a draining
	// worker; the worker is written off (until revived) and the job
	// requeued.
	verdictWorkerLost
)

// post runs one attempt against one worker. There is deliberately no
// request timeout: a simulation can legitimately run for minutes, and a
// killed worker surfaces promptly as a connection error anyway. The
// ErrorBody is returned alongside the verdict so callers can read
// structured fields (the 412 response's missing-artifact SHA).
func (p *Pool) post(w *worker, job Job) (sim.Result, verdict, ErrorBody, error) {
	b, err := json.Marshal(job)
	if err != nil {
		return sim.Result{}, verdictPermanent, ErrorBody{}, fmt.Errorf("distrib: encoding job: %v", err)
	}
	resp, err := p.client.Post(w.base+"/v1/run", "application/json", bytes.NewReader(b))
	if err != nil {
		return sim.Result{}, verdictWorkerLost, ErrorBody{}, fmt.Errorf("worker %s: %v", w.addr, err)
	}
	defer drainAndClose(resp)
	if resp.StatusCode == http.StatusOK {
		var entry experiments.CacheEntry
		if err := json.NewDecoder(resp.Body).Decode(&entry); err != nil {
			// A truncated 200 means the worker died mid-response.
			return sim.Result{}, verdictWorkerLost, ErrorBody{}, fmt.Errorf("worker %s: truncated response: %v", w.addr, err)
		}
		if entry.Version != experiments.SchemaVersion() {
			return sim.Result{}, verdictPermanent, ErrorBody{},
				fmt.Errorf("worker %s returned cache schema v%d, want v%d", w.addr, entry.Version, experiments.SchemaVersion())
		}
		// End-to-end integrity: the returned options must describe the job
		// we sent. The worker answers in wire form (file specs by sha, the
		// resolved local path never echoed), which hashes identically to
		// the coordinator's key, so trace jobs are checked like any other.
		if got := experiments.OptionsHash(entry.Options); got != job.Key {
			return sim.Result{}, verdictPermanent, ErrorBody{},
				fmt.Errorf("worker %s returned result for key %.12s, job was %.12s", w.addr, got, job.Key)
		}
		return entry.Result, verdictOK, ErrorBody{}, nil
	}
	var eb ErrorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	errDetail := eb.Error
	if errDetail == "" {
		errDetail = resp.Status
	}
	err = fmt.Errorf("worker %s: %s (%s)", w.addr, errDetail, eb.Code)
	switch {
	case resp.StatusCode == http.StatusPreconditionFailed:
		return sim.Result{}, verdictNoTrace, eb, err
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return sim.Result{}, verdictPermanent, eb, err
	default:
		return sim.Result{}, verdictWorkerLost, eb, err
	}
}
