package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"bopsim/internal/engine"
	"bopsim/internal/experiments"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// Server is the worker side of the protocol: cmd/boworkerd mounts its
// Handler and the coordinator's Pool talks to it. It executes jobs with
// the same engine the coordinator would use locally (internal/sim links
// prefetch/all), bounded to Capacity concurrent simulations; excess
// requests queue rather than fail, so a coordinator rebalancing a dead
// worker's jobs onto this one degrades throughput, not correctness.
type Server struct {
	// Capacity bounds concurrent simulations; <= 0 means
	// runtime.GOMAXPROCS(0). Advertised via /v1/info.
	Capacity int
	// TraceDirs is where trace replays are resolved: jobs name traces by
	// content SHA-256 and the server indexes these directories to find a
	// matching file.
	TraceDirs []string
	// CheckpointDirs are additional directories indexed the same way for
	// warmup snapshots (jobs name them by CheckpointSHA). Snapshots
	// dropped into TraceDirs are found too — the index is shared — so a
	// fleet with one mounted artifact directory needs no extra flag.
	CheckpointDirs []string
	// Log, when non-nil, receives one line per job.
	Log io.Writer

	semOnce sync.Once
	sem     chan struct{}
	logMu   sync.Mutex

	traceMu       sync.Mutex
	traceIndex    map[string]string // content sha -> path
	lastTraceScan time.Time
}

func (s *Server) capacity() int {
	if s.Capacity > 0 {
		return s.Capacity
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Server) acquire() func() {
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.capacity()) })
	s.sem <- struct{}{}
	return func() { <-s.sem }
}

// Handler returns the worker's HTTP API:
//
//	GET  /healthz  liveness probe, "ok"
//	GET  /v1/info  capacity + protocol/schema advertisement (Info)
//	POST /v1/run   execute one Job, respond with experiments.CacheEntry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Info{
			Protocol: ProtocolVersion,
			Schema:   experiments.SchemaVersion(),
			Capacity: s.capacity(),
		})
	})
	mux.HandleFunc("/v1/run", s.handleRun)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMalformed, "POST only")
		return
	}
	body := http.MaxBytesReader(w, r.Body, MaxJobBytes)
	b, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeMalformed,
				fmt.Sprintf("job payload exceeds %d bytes", MaxJobBytes))
			return
		}
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}
	// Check protocol/schema agreement from a lenient pre-decode before the
	// strict one: protocol bumps may remove Options fields (v3 dropped
	// Workload/TracePath), and DisallowUnknownFields would turn every
	// old-coordinator job into a generic 400 instead of the purpose-built
	// version-skew diagnostic.
	var versions struct {
		Protocol int `json:"protocol"`
		Schema   int `json:"schema"`
	}
	if err := json.Unmarshal(b, &versions); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, fmt.Sprintf("decoding job: %v", err))
		return
	}
	if versions.Protocol != ProtocolVersion || versions.Schema != experiments.SchemaVersion() {
		writeError(w, http.StatusConflict, CodeSchemaMismatch,
			fmt.Sprintf("worker speaks protocol %d / schema %d, job is protocol %d / schema %d",
				ProtocolVersion, experiments.SchemaVersion(), versions.Protocol, versions.Schema))
		return
	}
	var job Job
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, fmt.Sprintf("decoding job: %v", err))
		return
	}
	// Resolve wire-form file specs against the local trace index. The
	// workload slice is deep-copied first: the 200 response echoes
	// job.Options verbatim (wire form, no worker-local paths), so the
	// resolution must not write through the shared slice.
	o := job.Options
	o.Workloads = append([]trace.Spec(nil), job.Options.Workloads...)
	for i, ws := range o.Workloads {
		if ws.Name != "file" {
			continue
		}
		if _, hasPath := ws.Get("path"); hasPath {
			// A coordinator-local path must never be trusted on the worker.
			writeError(w, http.StatusBadRequest, CodeMalformed,
				"file workload spec carries a path parameter; the wire form is sha-only")
			return
		}
		sha, ok := ws.Get("sha")
		if !ok {
			writeError(w, http.StatusBadRequest, CodeMalformed, "file workload spec has neither path nor sha")
			return
		}
		path, found := s.lookupTrace(sha)
		if !found {
			writeError(w, http.StatusPreconditionFailed, CodeTraceUnavailable,
				fmt.Sprintf("no trace with content sha256 %s in %v", sha, s.TraceDirs))
			return
		}
		o.Workloads[i] = trace.FileSpec(path)
	}
	// Recompute the cache key from the payload: OptionsHash keys trace
	// replays by content (so the worker-local path hashes identically) and
	// normalizes specs, so a mismatch means the two binaries would cache
	// this run under different identities — refusing is what keeps a
	// mixed-version fleet from poisoning the shared cache.
	if job.Key != "" {
		if got := experiments.OptionsHash(o); got != job.Key {
			writeError(w, http.StatusConflict, CodeKeyMismatch,
				fmt.Sprintf("job key %s, worker computes %s (version skew?)", job.Key, got))
			return
		}
	}
	var ckptPath string
	if job.CheckpointSHA != "" {
		// Advisory: a missing or unusable snapshot means this worker runs
		// the warmup itself, byte-identically.
		ckptPath, _ = s.lookupTrace(job.CheckpointSHA)
	}
	release := s.acquire()
	defer release()
	// One label for all of this request's log lines: WorkloadsLabel
	// re-normalizes (building validation generators) on every call.
	label := o.WorkloadsLabel()
	s.logf("run %s key=%.12s\n", label, job.Key)
	// Drive the engine under the request context: when the coordinator
	// goes away (killed sweep, retry-after-truncated-response), the
	// orphaned job aborts instead of burning a capacity slot on a result
	// nobody will read.
	res, err := runJob(r.Context(), o, ckptPath)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.logf("abandoned %s (coordinator gone)\n", label)
			return // the connection is dead; nothing to respond to
		}
		s.logf("fail %s: %v\n", label, err)
		writeError(w, http.StatusUnprocessableEntity, CodeSimFailed, err.Error())
		return
	}
	s.logf("done %s IPC=%.3f\n", label, res.IPC)
	writeJSON(w, http.StatusOK, experiments.CacheEntry{
		Version: experiments.SchemaVersion(),
		Options: job.Options.Normalized(), // coordinator-side spelling: file specs stay in wire (sha) form
		Result:  res,
	})
}

// runJob executes one simulation, honouring ctx cancellation via the
// steppable engine. With a resolvable warmup checkpoint it forks the
// measured region from the snapshot; any failure on that path falls back
// to the full run, which the engine's determinism guarantee makes
// byte-identical.
func runJob(ctx context.Context, o sim.Options, ckptPath string) (sim.Result, error) {
	if ckptPath != "" {
		if data, err := os.ReadFile(ckptPath); err == nil {
			if eng, err := engine.Restore(data, o); err == nil {
				return eng.Run(ctx)
			}
		}
	}
	eng, err := engine.New(o)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(ctx)
}

// traceRescanInterval bounds how often a lookup miss may rebuild the
// trace index: a burst of probes for traces this worker lacks answers
// from the existing index instead of serializing full directory scans,
// while traces dropped in after startup are still found within seconds.
const traceRescanInterval = 5 * time.Second

// lookupTrace resolves a trace content hash to a local file path. Hits
// re-validate the file's current content (a trace edited in place stops
// matching and falls through to a rescan); misses rebuild the index from
// TraceDirs — at most once per traceRescanInterval — so traces dropped
// in after startup are found and stale mappings vanish. Hashing goes
// through experiments.TraceContentSHA — the exact function the cache
// keys by, memoized by size+mtime — so rescans re-read only changed
// files and the worker can never disagree with the coordinator about a
// trace's identity.
func (s *Server) lookupTrace(sha string) (string, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if p, ok := s.traceIndex[sha]; ok {
		if experiments.TraceContentSHA(p) == sha {
			return p, true
		}
		// Edited in place: drop the stale mapping so the throttled branch
		// below reports a miss (412, retry elsewhere) rather than handing
		// back a file that no longer matches the requested content.
		delete(s.traceIndex, sha)
	}
	if s.traceIndex != nil && time.Since(s.lastTraceScan) < traceRescanInterval {
		p, ok := s.traceIndex[sha]
		return p, ok
	}
	s.rescanTracesLocked()
	p, ok := s.traceIndex[sha]
	return p, ok
}

// WarmTraceIndex hashes the trace corpus up front and returns how many
// traces were indexed, so a daemon with a large -trace-dir pays for the
// initial scan at startup instead of inside the first trace job's
// request (which would stall every concurrent trace lookup on traceMu).
func (s *Server) WarmTraceIndex() int {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.rescanTracesLocked()
	return len(s.traceIndex)
}

// rescanTracesLocked rebuilds the content-hash index from TraceDirs.
// Callers hold traceMu.
func (s *Server) rescanTracesLocked() {
	s.lastTraceScan = time.Now()
	s.traceIndex = make(map[string]string)
	for _, dir := range append(append([]string(nil), s.TraceDirs...), s.CheckpointDirs...) {
		files, err := filepath.Glob(filepath.Join(dir, "*"))
		if err != nil {
			continue
		}
		for _, f := range files {
			st, err := os.Stat(f)
			if err != nil || st.IsDir() {
				continue
			}
			if h := experiments.TraceContentSHA(f); h != "" {
				s.traceIndex[h] = f
			}
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.Log, "boworkerd: "+format, args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Code: code, Error: msg})
}
