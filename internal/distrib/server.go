package distrib

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bopsim/internal/engine"
	"bopsim/internal/experiments"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// Server is the worker side of the protocol: cmd/boworkerd mounts its
// Handler and the coordinator's Pool talks to it. It executes jobs with
// the same engine the coordinator would use locally (internal/sim links
// prefetch/all), bounded to Capacity concurrent simulations; excess
// requests queue rather than fail, so a coordinator rebalancing a dead
// worker's jobs onto this one degrades throughput, not correctness.
type Server struct {
	// Capacity bounds concurrent simulations; <= 0 means
	// runtime.GOMAXPROCS(0). Advertised via /v1/info.
	Capacity int
	// TraceDirs is where trace replays are resolved: jobs name traces by
	// content SHA-256 and the server indexes these directories to find a
	// matching file.
	TraceDirs []string
	// CheckpointDirs are additional directories indexed the same way for
	// warmup snapshots (jobs name them by CheckpointSHA). Snapshots
	// dropped into TraceDirs are found too — the index is shared — so a
	// fleet with one mounted artifact directory needs no extra flag.
	CheckpointDirs []string
	// SeedDir, when non-empty, is where artifacts pushed by a coordinator
	// (PUT /v1/artifacts/{sha}) are stored. Empty defaults to the first
	// TraceDir, then the first CheckpointDir; with no directory at all the
	// endpoint refuses uploads (403 no_artifact_dir).
	SeedDir string
	// Log, when non-nil, receives one line per job.
	Log io.Writer

	semOnce sync.Once
	sem     chan struct{}
	logMu   sync.Mutex
	// draining is flipped by StartDraining: /healthz and /v1/run answer
	// 503 so the coordinator routes around this worker while in-flight
	// jobs finish (cmd/boworkerd's graceful SIGTERM path).
	draining atomic.Bool
	// inflight counts /v1/run requests accepted but not yet answered
	// (queued on the capacity semaphore included); the drain loop waits
	// for it to reach zero.
	inflight atomic.Int64

	traceMu       sync.Mutex
	traceIndex    map[string]string // content sha -> path
	lastTraceScan time.Time
}

func (s *Server) capacity() int {
	if s.Capacity > 0 {
		return s.Capacity
	}
	return runtime.GOMAXPROCS(0)
}

func (s *Server) acquire() func() {
	s.semOnce.Do(func() { s.sem = make(chan struct{}, s.capacity()) })
	s.sem <- struct{}{}
	return func() { <-s.sem }
}

// StartDraining puts the server into drain mode: /healthz and /v1/run
// answer 503 (code "draining") from now on, while jobs already executing
// run to completion. cmd/boworkerd flips this on SIGTERM before waiting
// for the HTTP server to drain, so a rolling restart never loses work —
// the coordinator requeues refused jobs elsewhere and its revival prober
// picks the worker back up once it restarts.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// InFlight reports how many accepted jobs have not finished yet. After
// StartDraining no new jobs are accepted, so a zero here means the worker
// is safe to exit without losing work.
func (s *Server) InFlight() int { return int(s.inflight.Load()) }

// Handler returns the worker's HTTP API:
//
//	GET  /healthz             liveness probe: "ok", or 503 while draining
//	GET  /v1/info             capacity + protocol/schema advertisement (Info)
//	POST /v1/run              execute one Job, respond with experiments.CacheEntry
//	PUT  /v1/artifacts/{sha}  accept a trace/checkpoint upload (coordinator seeding)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/info", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Info{
			Protocol: ProtocolVersion,
			Schema:   experiments.SchemaVersion(),
			Capacity: s.capacity(),
		})
	})
	mux.HandleFunc("/v1/run", s.handleRun)
	mux.HandleFunc("PUT /v1/artifacts/{sha}", s.handlePutArtifact)
	return mux
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, CodeMalformed, "POST only")
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "worker is draining for shutdown")
		return
	}
	// Count the job as in-flight from acceptance (the draining check
	// above) to response: the drain loop must wait for jobs queued on the
	// capacity semaphore too, not just the ones already executing.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	body := http.MaxBytesReader(w, r.Body, MaxJobBytes)
	b, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeMalformed,
				fmt.Sprintf("job payload exceeds %d bytes", MaxJobBytes))
			return
		}
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}
	// Check protocol/schema agreement from a lenient pre-decode before the
	// strict one: protocol bumps may remove Options fields (v3 dropped
	// Workload/TracePath), and DisallowUnknownFields would turn every
	// old-coordinator job into a generic 400 instead of the purpose-built
	// version-skew diagnostic.
	var versions struct {
		Protocol int `json:"protocol"`
		Schema   int `json:"schema"`
	}
	if err := json.Unmarshal(b, &versions); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, fmt.Sprintf("decoding job: %v", err))
		return
	}
	if versions.Protocol != ProtocolVersion || versions.Schema != experiments.SchemaVersion() {
		writeError(w, http.StatusConflict, CodeSchemaMismatch,
			fmt.Sprintf("worker speaks protocol %d / schema %d, job is protocol %d / schema %d",
				ProtocolVersion, experiments.SchemaVersion(), versions.Protocol, versions.Schema))
		return
	}
	var job Job
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, fmt.Sprintf("decoding job: %v", err))
		return
	}
	// Resolve wire-form file specs against the local trace index. The
	// workload slice is deep-copied first: the 200 response echoes
	// job.Options verbatim (wire form, no worker-local paths), so the
	// resolution must not write through the shared slice.
	o := job.Options
	o.Workloads = append([]trace.Spec(nil), job.Options.Workloads...)
	for i, ws := range o.Workloads {
		if ws.Name != "file" {
			continue
		}
		if _, hasPath := ws.Get("path"); hasPath {
			// A coordinator-local path must never be trusted on the worker.
			writeError(w, http.StatusBadRequest, CodeMalformed,
				"file workload spec carries a path parameter; the wire form is sha-only")
			return
		}
		sha, ok := ws.Get("sha")
		if !ok {
			writeError(w, http.StatusBadRequest, CodeMalformed, "file workload spec has neither path nor sha")
			return
		}
		path, found := s.lookupTrace(sha)
		if !found {
			// The structured SHA field is what a seeding coordinator reads
			// to know which artifact to push before retrying here.
			writeJSON(w, http.StatusPreconditionFailed, ErrorBody{
				Code:  CodeTraceUnavailable,
				Error: fmt.Sprintf("no trace with content sha256 %s in %v", sha, s.TraceDirs),
				SHA:   sha,
			})
			return
		}
		o.Workloads[i] = trace.FileSpec(path)
	}
	// Recompute the cache key from the payload: OptionsHash keys trace
	// replays by content (so the worker-local path hashes identically) and
	// normalizes specs, so a mismatch means the two binaries would cache
	// this run under different identities — refusing is what keeps a
	// mixed-version fleet from poisoning the shared cache.
	if job.Key != "" {
		if got := experiments.OptionsHash(o); got != job.Key {
			writeError(w, http.StatusConflict, CodeKeyMismatch,
				fmt.Sprintf("job key %s, worker computes %s (version skew?)", job.Key, got))
			return
		}
	}
	var ckptPath string
	if job.CheckpointSHA != "" {
		// Advisory: a missing or unusable snapshot means this worker runs
		// the warmup itself, byte-identically.
		ckptPath, _ = s.lookupTrace(job.CheckpointSHA)
	}
	release := s.acquire()
	defer release()
	// One label for all of this request's log lines: WorkloadsLabel
	// re-normalizes (building validation generators) on every call.
	label := o.WorkloadsLabel()
	s.logf("run %s key=%.12s\n", label, job.Key)
	// Drive the engine under the request context: when the coordinator
	// goes away (killed sweep, retry-after-truncated-response), the
	// orphaned job aborts instead of burning a capacity slot on a result
	// nobody will read.
	res, err := runJob(r.Context(), o, ckptPath)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			s.logf("abandoned %s (coordinator gone)\n", label)
			return // the connection is dead; nothing to respond to
		}
		s.logf("fail %s: %v\n", label, err)
		writeError(w, http.StatusUnprocessableEntity, CodeSimFailed, err.Error())
		return
	}
	s.logf("done %s IPC=%.3f\n", label, res.IPC)
	writeJSON(w, http.StatusOK, experiments.CacheEntry{
		Version: experiments.SchemaVersion(),
		Options: job.Options.Normalized(), // coordinator-side spelling: file specs stay in wire (sha) form
		Result:  res,
	})
}

// runJob executes one simulation, honouring ctx cancellation via the
// steppable engine. With a resolvable warmup checkpoint it forks the
// measured region from the snapshot; any failure on that path falls back
// to the full run, which the engine's determinism guarantee makes
// byte-identical.
func runJob(ctx context.Context, o sim.Options, ckptPath string) (sim.Result, error) {
	if ckptPath != "" {
		if data, err := os.ReadFile(ckptPath); err == nil {
			if eng, err := engine.Restore(data, o); err == nil {
				return eng.Run(ctx)
			}
		}
	}
	eng, err := engine.New(o)
	if err != nil {
		return sim.Result{}, err
	}
	return eng.Run(ctx)
}

// traceRescanInterval bounds how often a lookup miss may rebuild the
// trace index: a burst of probes for traces this worker lacks answers
// from the existing index instead of serializing full directory scans,
// while traces dropped in after startup are still found within seconds.
const traceRescanInterval = 5 * time.Second

// lookupTrace resolves a trace content hash to a local file path. Hits
// re-validate the file's current content (a trace edited in place stops
// matching and falls through to a rescan); misses rebuild the index from
// TraceDirs — at most once per traceRescanInterval — so traces dropped
// in after startup are found and stale mappings vanish. Hashing goes
// through experiments.TraceContentSHA — the exact function the cache
// keys by, memoized by size+mtime — so rescans re-read only changed
// files and the worker can never disagree with the coordinator about a
// trace's identity.
func (s *Server) lookupTrace(sha string) (string, bool) {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	if p, ok := s.traceIndex[sha]; ok {
		if experiments.TraceContentSHA(p) == sha {
			return p, true
		}
		// Edited in place: drop the stale mapping so the throttled branch
		// below reports a miss (412, retry elsewhere) rather than handing
		// back a file that no longer matches the requested content.
		delete(s.traceIndex, sha)
	}
	if s.traceIndex != nil && time.Since(s.lastTraceScan) < traceRescanInterval {
		p, ok := s.traceIndex[sha]
		return p, ok
	}
	s.rescanTracesLocked()
	p, ok := s.traceIndex[sha]
	return p, ok
}

// WarmTraceIndex hashes the trace corpus up front and returns how many
// traces were indexed, so a daemon with a large -trace-dir pays for the
// initial scan at startup instead of inside the first trace job's
// request (which would stall every concurrent trace lookup on traceMu).
func (s *Server) WarmTraceIndex() int {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	s.rescanTracesLocked()
	return len(s.traceIndex)
}

// rescanTracesLocked rebuilds the content-hash index from TraceDirs.
// Callers hold traceMu.
func (s *Server) rescanTracesLocked() {
	s.lastTraceScan = time.Now()
	s.traceIndex = make(map[string]string)
	for _, dir := range append(append([]string(nil), s.TraceDirs...), s.CheckpointDirs...) {
		files, err := filepath.Glob(filepath.Join(dir, "*"))
		if err != nil {
			continue
		}
		for _, f := range files {
			st, err := os.Stat(f)
			if err != nil || st.IsDir() {
				continue
			}
			if h := experiments.TraceContentSHA(f); h != "" {
				s.traceIndex[h] = f
			}
		}
	}
}

// seedDir resolves where pushed artifacts land: SeedDir, else the first
// trace directory, else the first checkpoint directory.
func (s *Server) seedDir() string {
	if s.SeedDir != "" {
		return s.SeedDir
	}
	if len(s.TraceDirs) > 0 {
		return s.TraceDirs[0]
	}
	if len(s.CheckpointDirs) > 0 {
		return s.CheckpointDirs[0]
	}
	return ""
}

// handlePutArtifact accepts a trace or checkpoint upload from the
// coordinator: the body is streamed to the seed directory while being
// hashed, kept only when its SHA-256 matches the {sha} path element, and
// then inserted into the shared content index so the retried job resolves
// it without waiting for a rescan. Idempotent: re-uploading a known hash
// succeeds without rewriting the file.
func (s *Server) handlePutArtifact(w http.ResponseWriter, r *http.Request) {
	sha := r.PathValue("sha")
	if len(sha) != 64 || strings.ToLower(sha) != sha {
		writeError(w, http.StatusBadRequest, CodeMalformed, "artifact name must be a lowercase hex sha256")
		return
	}
	if _, err := hex.DecodeString(sha); err != nil {
		writeError(w, http.StatusBadRequest, CodeMalformed, "artifact name must be a lowercase hex sha256")
		return
	}
	if p, ok := s.lookupTrace(sha); ok {
		s.logf("artifact %.12s already present at %s\n", sha, p)
		w.WriteHeader(http.StatusOK)
		return
	}
	dir := s.seedDir()
	if dir == "" {
		writeError(w, http.StatusForbidden, CodeNoArtifactDir,
			"worker has no artifact directory (start it with -trace-dir or -checkpoint-dir)")
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		writeError(w, http.StatusInternalServerError, CodeMalformed, err.Error())
		return
	}
	// Stream to a temp file while hashing, then rename into place: a
	// concurrent lookup never sees a partial artifact, and a mismatched
	// upload never lands at all.
	tmp, err := os.CreateTemp(dir, ".seed-*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeMalformed, err.Error())
		return
	}
	defer os.Remove(tmp.Name())
	h := sha256.New()
	_, err = io.Copy(io.MultiWriter(tmp, h), http.MaxBytesReader(w, r.Body, MaxArtifactBytes))
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, CodeMalformed,
				fmt.Sprintf("artifact exceeds %d bytes", int64(MaxArtifactBytes)))
			return
		}
		writeError(w, http.StatusBadRequest, CodeMalformed, err.Error())
		return
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != sha {
		writeError(w, http.StatusUnprocessableEntity, CodeArtifactMismatch,
			fmt.Sprintf("uploaded bytes hash to %.12s…, path names %.12s…", got, sha))
		return
	}
	final := filepath.Join(dir, sha)
	if err := os.Rename(tmp.Name(), final); err != nil {
		writeError(w, http.StatusInternalServerError, CodeMalformed, err.Error())
		return
	}
	s.traceMu.Lock()
	if s.traceIndex == nil {
		s.traceIndex = make(map[string]string)
	}
	s.traceIndex[sha] = final
	s.traceMu.Unlock()
	s.logf("artifact %.12s seeded into %s\n", sha, dir)
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) logf(format string, args ...any) {
	if s.Log == nil {
		return
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.Log, "boworkerd: "+format, args...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorBody{Code: code, Error: msg})
}
