package distrib

// Tests for the fleet-service distrib features: dead-worker revival
// (RetryPolicy.ProbeInterval), dynamic registration (NewPool/AddWorker),
// artifact seeding on 412, and the graceful-drain protocol.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// downableHandler simulates a daemon that can die and come back: while
// down, every connection is hard-closed (healthz and info included),
// which is what a SIGKILLed process looks like to the coordinator.
type downableHandler struct {
	down atomic.Bool
	runs atomic.Int64
	h    http.Handler
}

func (d *downableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.down.Load() {
		if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
			conn.Close()
		}
		return
	}
	if r.URL.Path == "/v1/run" {
		d.runs.Add(1)
	}
	d.h.ServeHTTP(w, r)
}

func waitAlive(t *testing.T, pool *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, alive := pool.Workers(); alive == want {
			return
		}
		if time.Now().After(deadline) {
			_, alive := pool.Workers()
			t.Fatalf("%d workers alive, want %d", alive, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDeadWorkerRevival is the revival satellite end to end: a worker
// dies (job fails over), the prober notices it is back, and the same
// worker — same pool, no redial by the caller — executes jobs again,
// with results byte-identical to a local run throughout.
func TestDeadWorkerRevival(t *testing.T) {
	flaky := &downableHandler{h: (&Server{Capacity: 1}).Handler()}
	flakySrv := httptest.NewServer(flaky)
	t.Cleanup(flakySrv.Close)
	healthy, healthyCount := startWorker(t, 1)

	pool, err := Dial([]string{flakySrv.URL, healthy.URL},
		RetryPolicy{Backoff: time.Millisecond, ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	o := sim.DefaultOptions("416.gamess")
	o.Instructions = 20_000
	want, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: the flaky worker dies; slot 0 (homed on it) fails over.
	flaky.down.Store(true)
	res, err := pool.Run(0, o)
	if err != nil {
		t.Fatalf("run during outage: %v", err)
	}
	assertSameResult(t, want, res, "during outage")
	if _, alive := pool.Workers(); alive != 1 {
		t.Fatalf("%d workers alive during outage, want 1", alive)
	}

	// Phase 2: the worker comes back; the prober must revive it without
	// any coordinator-side action.
	flaky.down.Store(false)
	waitAlive(t, pool, 2)

	// Phase 3: the revived worker executes again — run a job homed on its
	// slot and check the run counter moved.
	before := flaky.runs.Load()
	o2 := o
	o2.Seed = 7 // distinct job, so the warm cache can't satisfy it
	want2, err := sim.Run(o2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := pool.Run(0, o2)
	if err != nil {
		t.Fatalf("run after revival: %v", err)
	}
	assertSameResult(t, want2, res2, "after revival")
	if flaky.runs.Load() == before {
		t.Errorf("revived worker executed no jobs (healthy worker ran %d)", healthyCount.runs.Load())
	}
}

// TestNoRevivalWithoutProbeInterval pins the historical semantics:
// ProbeInterval zero means markDead is forever.
func TestNoRevivalWithoutProbeInterval(t *testing.T) {
	flaky := &downableHandler{h: (&Server{Capacity: 1}).Handler()}
	srv := httptest.NewServer(flaky)
	t.Cleanup(srv.Close)
	healthy, _ := startWorker(t, 1)
	pool, err := Dial([]string{srv.URL, healthy.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	o := sim.DefaultOptions("416.gamess")
	o.Instructions = 20_000
	flaky.down.Store(true)
	if _, err := pool.Run(0, o); err != nil {
		t.Fatal(err)
	}
	flaky.down.Store(false)
	time.Sleep(50 * time.Millisecond)
	if _, alive := pool.Workers(); alive != 1 {
		t.Errorf("%d workers alive, want 1 (no revival without ProbeInterval)", alive)
	}
}

// TestAddWorkerDynamic covers the fleet registration path: an empty pool
// gains slots as workers register, re-registration is a no-op, and a
// re-announce of a dead worker revives it immediately.
func TestAddWorkerDynamic(t *testing.T) {
	pool := NewPool(RetryPolicy{Backoff: time.Millisecond})
	defer pool.Close()
	if pool.Slots() != 0 {
		t.Fatalf("empty pool has %d slots", pool.Slots())
	}
	w1, _ := startWorker(t, 2)
	added, err := pool.AddWorker(w1.URL)
	if err != nil || !added {
		t.Fatalf("AddWorker: added=%v err=%v", added, err)
	}
	if pool.Slots() != 2 {
		t.Fatalf("pool has %d slots after registration, want 2", pool.Slots())
	}
	if added, err := pool.AddWorker(w1.URL); err != nil || added {
		t.Fatalf("re-registration: added=%v err=%v, want no-op", added, err)
	}
	if _, err := pool.AddWorker("127.0.0.1:1"); err == nil {
		t.Error("AddWorker of an unreachable address succeeded")
	}

	o := sim.DefaultOptions("416.gamess")
	o.Instructions = 20_000
	want, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Run(0, o)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, res, "on registered worker")

	// Mark the worker dead by hand, then re-announce: revival without
	// waiting for a probe tick.
	pool.mu.Lock()
	pool.workers[0].dead = true
	pool.mu.Unlock()
	if added, err := pool.AddWorker(w1.URL); err != nil || added {
		t.Fatalf("revival re-announce: added=%v err=%v", added, err)
	}
	if _, alive := pool.Workers(); alive != 1 {
		t.Errorf("worker not revived by re-registration")
	}
}

// TestArtifactSeeding is the push-pull satellite: a worker with an EMPTY
// trace directory 412s on a trace job, the coordinator seeds it from its
// own copy, and the SAME worker then completes the job — no other worker
// exists to fall back to. The seeded file must land content-addressed.
func TestArtifactSeeding(t *testing.T) {
	srcDir := t.TempDir()
	tracePath := filepath.Join(srcDir, "workload.trace")
	gen, err := trace.NewWorkload("456.hmmer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(tracePath, gen, 3000); err != nil {
		t.Fatal(err)
	}

	emptyDir := t.TempDir()
	worker, counter := startWorker(t, 1, emptyDir)
	pool, err := Dial([]string{worker.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	o := sim.DefaultOptions("456.hmmer")
	o.Workloads = []trace.Spec{trace.FileSpec(tracePath)}
	o.Instructions = 2000

	res, err := pool.Run(0, o)
	if err != nil {
		t.Fatalf("trace job with seedable worker failed: %v", err)
	}
	want, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, res, "after seeding")
	if counter.runs.Load() != 2 {
		t.Errorf("worker saw %d run attempts, want 2 (412 then seeded success)", counter.runs.Load())
	}
	// The artifact landed under its content hash.
	sha := trace.ContentSHA(tracePath)
	if _, err := os.Stat(filepath.Join(emptyDir, sha)); err != nil {
		t.Errorf("seeded artifact not at %s/%s: %v", emptyDir, sha, err)
	}

	// A second pool resolving via ArtifactSource (no ship-time record for
	// a fresh trace) also seeds: the fleet coordinator's path.
	trace2 := filepath.Join(srcDir, "second.trace")
	gen2, err := trace.NewWorkload("416.gamess", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(trace2, gen2, 3000); err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.Workloads = []trace.Spec{trace.FileSpec(trace2)}
	pool2, err := Dial([]string{worker.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	// Forget the ship-time record to force the hook path.
	pool2.ArtifactSource = func(sha string) (string, bool) {
		if trace.ContentSHA(trace2) == sha {
			return trace2, true
		}
		return "", false
	}
	if _, err := pool2.Run(0, o2); err != nil {
		t.Fatalf("trace job via ArtifactSource failed: %v", err)
	}
}

// TestSeedingRefusedFallsBack: a worker without any artifact directory
// cannot be seeded (403) and the job falls back to exclusion — the
// pre-seeding behaviour, now with one extra PUT attempt.
func TestSeedingRefusedFallsBack(t *testing.T) {
	srcDir := t.TempDir()
	tracePath := filepath.Join(srcDir, "w.trace")
	gen, err := trace.NewWorkload("456.hmmer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(tracePath, gen, 3000); err != nil {
		t.Fatal(err)
	}
	bare, _ := startWorker(t, 1) // no dirs at all: unseedable
	pool, err := Dial([]string{bare.URL}, RetryPolicy{Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	o := sim.DefaultOptions("456.hmmer")
	o.Workloads = []trace.Spec{trace.FileSpec(tracePath)}
	o.Instructions = 2000
	if _, err := pool.Run(0, o); err == nil || !strings.Contains(err.Error(), "trace") {
		t.Errorf("unseedable traceless fleet: err=%v, want trace_unavailable", err)
	}
}

// TestDrainingWorker covers the graceful-shutdown protocol: a draining
// worker 503s /healthz (no revival) and /v1/run (jobs requeue
// elsewhere), and the pool finishes the sweep on the survivor.
func TestDrainingWorker(t *testing.T) {
	drainingSrv := &Server{Capacity: 1}
	draining := httptest.NewServer(drainingSrv.Handler())
	t.Cleanup(draining.Close)
	healthy, healthyCount := startWorker(t, 1)

	pool, err := Dial([]string{draining.URL, healthy.URL},
		RetryPolicy{Backoff: time.Millisecond, ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	drainingSrv.StartDraining()
	if !drainingSrv.Draining() {
		t.Fatal("Draining() false after StartDraining")
	}
	resp, err := http.Get(draining.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /healthz answered %d, want 503", resp.StatusCode)
	}

	o := sim.DefaultOptions("416.gamess")
	o.Instructions = 20_000
	want, err := sim.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Run(0, o) // slot 0 homes on the draining worker
	if err != nil {
		t.Fatalf("run against draining worker: %v", err)
	}
	assertSameResult(t, want, res, "with draining worker")
	if healthyCount.runs.Load() != 1 {
		t.Errorf("healthy worker ran %d jobs, want 1", healthyCount.runs.Load())
	}
	// The prober must NOT revive a draining worker.
	time.Sleep(30 * time.Millisecond)
	if _, alive := pool.Workers(); alive != 1 {
		t.Errorf("%d workers alive, want 1 (draining worker must stay out)", alive)
	}
	if n := drainingSrv.InFlight(); n != 0 {
		t.Errorf("InFlight()=%d with nothing running", n)
	}
}

func assertSameResult(t *testing.T, want, got sim.Result, context string) {
	t.Helper()
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Errorf("result %s diverged from local\nlocal:  %s\nremote: %s", context, wb, gb)
	}
}
