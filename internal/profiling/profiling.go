// Package profiling wires the standard runtime/pprof CPU and heap profiles
// into command-line tools. Commands register -cpuprofile/-memprofile flags,
// call Start after flag parsing, and defer the returned stop function;
// profiles are written when the run completes normally (error exits skip
// them — a failed run's profile is rarely the one you want).
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath and arranges a heap profile to be
// written to memPath when the returned stop function runs. Either path may
// be empty to disable that profile. The stop function is safe to call more
// than once.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
				return
			}
			runtime.GC() // materialize the final live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiling: %v\n", err)
			}
			f.Close()
		}
	}, nil
}
