package uncore

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// TestHierarchyTickZeroAlloc pins the steady-state cost of the uncore hot
// loop in isolation: with warm queues, pools and the future arena, a cycle
// of demand traffic (Demand + Tick) must not allocate — across the DL1-hit,
// MSHR, L2, L3 and DRAM paths, including a real L2 prefetcher feeding the
// prefetch queue.
func TestHierarchyTickZeroAlloc(t *testing.T) {
	cfg := DefaultConfig(1, mem.Page4K)
	h := New(cfg,
		func(int) prefetch.L2Prefetcher { return prefetch.NewNextLine(mem.Page4K) },
		nil, nil)

	// A strided demand stream: misses at every new line exercise the full
	// miss path; repeat visits exercise the hit path.
	var va mem.Addr
	next := func(now uint64) {
		if h.CanAccept(0) {
			h.Demand(0, 0x400, va, va%128 == 0, now)
			va += 64
			if va >= 1<<22 {
				va = 0
			}
		}
		h.Tick(now)
	}
	now := uint64(0)
	for ; now < 200_000; now++ {
		next(now)
	}
	avg := testing.AllocsPerRun(2000, func() {
		next(now)
		now++
	})
	if avg != 0 {
		t.Errorf("steady-state Demand+Tick allocates %.3f objects/cycle, want 0", avg)
	}
}
