// Package uncore assembles the simulated memory hierarchy of Table 1: per
// core a 32KB DL1 and a 512KB private L2, a shared 8MB L3, fill queues with
// associative search and late-prefetch promotion instead of L2/L3 MSHRs
// (paper section 5.4), an 8-entry L2 prefetch queue with oldest-cancel, and
// the DRAM of internal/dram underneath. The DL1 stride prefetcher and the
// configurable L2 prefetcher hang off the access path exactly where the
// paper puts them (sections 5.5, 5.6).
package uncore

import (
	"bopsim/internal/cache"
	"bopsim/internal/mem"
)

// Config sets the hierarchy geometry and latencies (Table 1 defaults).
type Config struct {
	NumCores int
	Page     mem.PageSize

	DL1Size, DL1Ways int
	L2Size, L2Ways   int
	L3Size, L3Ways   int

	DL1Latency uint64 // cycles
	L2Latency  uint64
	L3Latency  uint64

	L2FillQueueLen   int // 16 in Table 1
	L3FillQueueLen   int // 32 in Table 1
	PrefetchQueueLen int // 8 (section 5.4)
	MSHRs            int // 32 DL1 block requests

	// L3Policy selects the shared-cache replacement policy: "5P" (default),
	// "LRU" or "DRRIP" (Figure 3).
	L3Policy string

	// LatePromotion enables demand misses hitting fill-queue prefetch
	// entries to be promoted (section 5.4). Disabling it is an ablation.
	LatePromotion bool

	// Seed makes policy randomization deterministic per run.
	Seed uint64
}

// DefaultConfig returns Table 1's hierarchy for the given core count and
// page size.
func DefaultConfig(numCores int, page mem.PageSize) Config {
	return Config{
		NumCores:         numCores,
		Page:             page,
		DL1Size:          32 << 10,
		DL1Ways:          8,
		L2Size:           512 << 10,
		L2Ways:           8,
		L3Size:           8 << 20,
		L3Ways:           16,
		DL1Latency:       3,
		L2Latency:        11,
		L3Latency:        21,
		L2FillQueueLen:   16,
		L3FillQueueLen:   32,
		PrefetchQueueLen: 8,
		MSHRs:            32,
		L3Policy:         "5P",
		LatePromotion:    true,
		Seed:             1,
	}
}

// newL3Policy builds the configured L3 replacement policy.
func (c Config) newL3Policy() cache.Policy {
	sets := c.L3Size / mem.LineSize / c.L3Ways
	switch c.L3Policy {
	case "", "5P":
		return cache.NewFiveP(sets, c.L3Ways, c.NumCores, c.Seed)
	case "LRU":
		return cache.NewLRU(sets, c.L3Ways)
	case "DRRIP":
		return cache.NewDRRIP(sets, c.L3Ways, c.Seed)
	}
	panic("uncore: unknown L3 policy " + c.L3Policy)
}
