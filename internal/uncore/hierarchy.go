package uncore

import (
	"bopsim/internal/cache"
	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/tlb"
)

// coreReq is a core-side request (demand load/store miss or DL1 stride
// prefetch) waiting to access a private L2.
type coreReq struct {
	line    mem.LineAddr
	readyAt uint64
	fut     *dram.Future // completion future (also set for L1 prefetches)
	isWrite bool
	l1pf    bool // DL1 stride prefetch rather than a demand request
	pc      uint64
}

// reqQueue is a FIFO of coreReq values: pushes append, pops advance a head
// index, and the backing array is reused once the queue runs dry, so the
// steady-state demand path allocates nothing.
type reqQueue struct {
	reqs []coreReq
	head int
}

func (q *reqQueue) len() int        { return len(q.reqs) - q.head }
func (q *reqQueue) front() *coreReq { return &q.reqs[q.head] }

func (q *reqQueue) push(r coreReq) { q.reqs = append(q.reqs, r) }

func (q *reqQueue) pop() {
	q.reqs[q.head] = coreReq{} // drop the future reference
	q.head++
	if q.head == len(q.reqs) {
		q.reqs = q.reqs[:0]
		q.head = 0
	}
}

// outstandingInfo tracks one in-flight DL1 miss for MSHR-style merging.
type outstandingInfo struct {
	fut       *dram.Future
	markWrite bool
}

// dl1Fill is a block scheduled for insertion into a DL1.
type dl1Fill struct {
	line  mem.LineAddr
	at    uint64
	dirty bool
	pf    bool // set the DL1 prefetch bit (DL1 stride prefetch fills)
}

// Stats aggregates hierarchy-wide event counts.
type Stats struct {
	DL1Hits, DL1Misses   uint64
	L2DemandAccesses     uint64
	L2Hits, L2Misses     uint64
	L2PrefetchedHits     uint64
	L3Hits, L3Misses     uint64
	PrefIssued           uint64 // L2 prefetches entering the prefetch queue
	PrefDroppedDup       uint64 // suppressed by associative searches
	PrefDroppedTagCheck  uint64 // dropped by the mandatory fill-time tag check
	PrefLatePromotions   uint64 // fill-queue entries promoted to demand
	PrefCancelled        uint64 // evicted from the full prefetch queue
	StridePrefIssued     uint64
	StridePrefDroppedTLB uint64
	TLBWalks             uint64

	// Occupancy telemetry (sampled each Tick, core 0 only) for diagnosing
	// where requests queue up.
	TickSamples       uint64
	L2FQOccupancySum  uint64
	L3FQOccupancySum  uint64
	MSHROccupancySum  uint64
	PrefQOccupancySum uint64
}

// Hierarchy is the full uncore shared by all cores of one simulation.
type Hierarchy struct {
	cfg Config

	dl1   []*cache.Cache
	l2    []*cache.Cache
	l3    *cache.Cache
	fivep *cache.FiveP // non-nil when L3Policy is 5P
	tlbs  []*tlb.Hierarchy
	// Prefetcher state is serialized separately through prefetch.StateCodec
	// (only under WarmupPF); SetPrefetchers installs them on restore.
	//bovet:allow statecodec prefetchers checkpoint via prefetch.StateCodec, not the hierarchy snapshot
	l1pf []prefetch.L1Prefetcher // nil entries: no DL1 prefetching
	//bovet:allow statecodec prefetchers checkpoint via prefetch.StateCodec, not the hierarchy snapshot
	l2pf []prefetch.L2Prefetcher
	// preIssueTagCheck enables the extra L2 tag lookup before issuing a
	// prefetch, which the paper adds for SBP-style degree-N requests
	// (section 6.3); prefetchers opt in via prefetch.PreIssueTagChecker.
	//bovet:allow statecodec derived wiring: SetPrefetchers recomputes it from the installed prefetchers
	preIssueTagCheck []bool

	mem *dram.Memory

	demandQ     []reqQueue
	l2fq        []*fillQueue
	l3fq        *fillQueue
	pq          []*prefetchQueue
	outstanding []map[mem.LineAddr]outstandingInfo
	dl1Fills    [][]dl1Fill
	pendingWB   []wbReq
	pool        entryPool
	futs        dram.Arena

	// futEpoch counts DRAM bus-cycle ticks: the only moments at which the
	// controller can resolve futures. Fill queues use it to rescan their
	// entries at most once per bus tick (see fillQueue.sync).
	//bovet:allow statecodec rescan memo, not architectural state: SaveState requires Drained (no futures in flight)
	futEpoch uint64
	busRatio uint64

	translators []*mem.Translator

	stats Stats
}

type wbReq struct {
	line mem.LineAddr
	core int
}

// New builds a hierarchy. newL2PF and newL1PF are called once per core to
// construct that core's private L2 and DL1 prefetchers (a nil factory, or a
// factory returning nil, means no prefetching at that level). memory may be
// nil, in which case the default DRAM for cfg.NumCores is built.
func New(cfg Config, newL2PF func(core int) prefetch.L2Prefetcher, newL1PF func(core int) prefetch.L1Prefetcher, memory *dram.Memory) *Hierarchy {
	if memory == nil {
		memory = dram.New(dram.DefaultParams(cfg.NumCores))
	}
	h := &Hierarchy{
		cfg:  cfg,
		l3:   cache.New("L3", cfg.L3Size, cfg.L3Ways, cfg.newL3Policy()),
		mem:  memory,
		l3fq: newFillQueue(cfg.L3FillQueueLen),
	}
	h.busRatio = uint64(memory.Params().BusRatio)
	if fp, ok := h.l3.Policy().(*cache.FiveP); ok {
		h.fivep = fp
	}
	for c := 0; c < cfg.NumCores; c++ {
		dl1Sets := cfg.DL1Size / mem.LineSize / cfg.DL1Ways
		l2Sets := cfg.L2Size / mem.LineSize / cfg.L2Ways
		h.dl1 = append(h.dl1, cache.New("DL1", cfg.DL1Size, cfg.DL1Ways, cache.NewLRU(dl1Sets, cfg.DL1Ways)))
		h.l2 = append(h.l2, cache.New("L2", cfg.L2Size, cfg.L2Ways, cache.NewLRU(l2Sets, cfg.L2Ways)))
		h.tlbs = append(h.tlbs, tlb.New(cfg.Page))
		var l1 prefetch.L1Prefetcher
		if newL1PF != nil {
			l1 = newL1PF(c)
		}
		h.l1pf = append(h.l1pf, l1)
		var pf prefetch.L2Prefetcher = prefetch.None{}
		if newL2PF != nil {
			if p := newL2PF(c); p != nil {
				pf = p
			}
		}
		h.l2pf = append(h.l2pf, pf)
		tagCheck := false
		if tc, ok := pf.(prefetch.PreIssueTagChecker); ok {
			tagCheck = tc.PreIssueTagCheck()
		}
		h.preIssueTagCheck = append(h.preIssueTagCheck, tagCheck)
		h.demandQ = append(h.demandQ, reqQueue{})
		h.l2fq = append(h.l2fq, newFillQueue(cfg.L2FillQueueLen))
		h.pq = append(h.pq, newPrefetchQueue(cfg.PrefetchQueueLen))
		h.outstanding = append(h.outstanding, make(map[mem.LineAddr]outstandingInfo))
		h.dl1Fills = append(h.dl1Fills, nil)
		h.translators = append(h.translators, mem.NewTranslator(cfg.Page, cfg.Seed+uint64(c)*0x1234567))
	}
	return h
}

// Stats returns a snapshot of the hierarchy statistics.
func (h *Hierarchy) Stats() Stats {
	s := h.stats
	for c := range h.pq {
		s.PrefCancelled += h.pq[c].Cancelled
	}
	for _, t := range h.tlbs {
		s.TLBWalks += t.Walks
	}
	return s
}

// Memory returns the DRAM model (for traffic statistics).
func (h *Hierarchy) Memory() *dram.Memory { return h.mem }

// L2Prefetcher returns core's L2 prefetcher, for inspection.
func (h *Hierarchy) L2Prefetcher(core int) prefetch.L2Prefetcher { return h.l2pf[core] }

// L1Prefetcher returns core's DL1 prefetcher (nil when disabled), for
// inspection.
func (h *Hierarchy) L1Prefetcher(core int) prefetch.L1Prefetcher { return h.l1pf[core] }

// CanAccept reports whether core can start a new DL1 miss (MSHR space).
func (h *Hierarchy) CanAccept(core int) bool {
	return len(h.outstanding[core]) < h.cfg.MSHRs
}

// Access performs a demand load or store for core at cycle now. It returns
// the completion future, or nil when the request cannot be accepted yet
// (MSHRs full) and the core must retry. It is the allocation-convenient
// wrapper over Demand (a DL1 hit costs a resolved Future); the core's hot
// path calls Demand directly.
func (h *Hierarchy) Access(core int, pc uint64, va mem.Addr, isWrite bool, now uint64) *dram.Future {
	done, fut, ok := h.Demand(core, pc, va, isWrite, now)
	switch {
	case !ok:
		return nil
	case fut != nil:
		return fut
	default:
		return dram.ResolvedAt(done)
	}
}

// Demand performs a demand load or store for core at cycle now without
// allocating on the hit path. It returns, in order of precedence:
//
//	ok == false: the request cannot be accepted yet (MSHRs full); retry.
//	fut != nil:  the request is in flight; fut carries the completion.
//	fut == nil:  a DL1 hit; done is the completion cycle.
func (h *Hierarchy) Demand(core int, pc uint64, va mem.Addr, isWrite bool, now uint64) (done uint64, fut *dram.Future, ok bool) {
	tlbLat := h.tlbs[core].Access(va)
	line := h.translators[core].TranslateLine(mem.LineOf(va))
	t0 := now + tlbLat

	if ln := h.dl1[core].Lookup(line); ln != nil {
		h.stats.DL1Hits++
		pfHit := ln.Prefetch
		ln.Prefetch = false
		if isWrite {
			ln.Dirty = true
		}
		if pfHit {
			h.strideQuery(core, pc, va, t0)
		}
		return t0 + h.cfg.DL1Latency, nil, true
	}
	h.stats.DL1Misses++
	h.strideQuery(core, pc, va, t0)

	if info, found := h.outstanding[core][line]; found {
		// MSHR merge: a request for this line is already in flight.
		if isWrite && !info.markWrite {
			info.markWrite = true
			h.outstanding[core][line] = info
		}
		return 0, info.fut, true
	}
	if !h.CanAccept(core) {
		return 0, nil, false
	}
	fut = h.futs.Pending()
	h.outstanding[core][line] = outstandingInfo{fut: fut, markWrite: isWrite}
	h.demandQ[core].push(coreReq{
		line: line, readyAt: t0 + h.cfg.DL1Latency, fut: fut, isWrite: isWrite, pc: pc,
	})
	return 0, fut, true
}

// RetireMemOp updates the DL1 prefetcher table at retirement of a
// load/store (section 5.5: the table is updated at retirement to see
// accesses in program order).
func (h *Hierarchy) RetireMemOp(core int, pc uint64, va mem.Addr) {
	if h.l1pf[core] != nil {
		h.l1pf[core].Update(pc, va)
	}
}

// strideQuery asks the DL1 prefetcher for a prefetch on a DL1 miss or
// prefetched hit, applying the TLB2 gate of section 5.5.
func (h *Hierarchy) strideQuery(core int, pc uint64, va mem.Addr, t0 uint64) {
	if h.l1pf[core] == nil {
		return
	}
	target, ok := h.l1pf[core].Query(pc, va)
	if !ok {
		return
	}
	if !h.tlbs[core].ProbeTLB2(target) {
		h.stats.StridePrefDroppedTLB++
		return
	}
	line := h.translators[core].TranslateLine(mem.LineOf(target))
	if h.dl1[core].Peek(line) != nil {
		return
	}
	if _, inFlight := h.outstanding[core][line]; inFlight {
		return
	}
	if !h.CanAccept(core) {
		return
	}
	fut := h.futs.Pending()
	h.outstanding[core][line] = outstandingInfo{fut: fut}
	h.demandQ[core].push(coreReq{
		line: line, readyAt: t0 + h.cfg.DL1Latency, fut: fut, l1pf: true, pc: pc,
	})
	h.stats.StridePrefIssued++
}

// Tick advances the uncore by one cycle: drain ready fills top-down, then
// process core requests at the L2s, then let queued L2 prefetches access
// the L3 (lowest priority), then retry blocked writebacks, then tick DRAM.
//
//bovet:hotpath
func (h *Hierarchy) Tick(now uint64) {
	h.stats.TickSamples++
	h.stats.L2FQOccupancySum += uint64(h.l2fq[0].len())
	h.stats.L3FQOccupancySum += uint64(h.l3fq.len())
	h.stats.MSHROccupancySum += uint64(len(h.outstanding[0]))
	h.stats.PrefQOccupancySum += uint64(h.pq[0].n)
	h.drainL3Fills(now)
	for c := range h.l2fq {
		h.drainL2Fills(c, now)
		h.drainDL1Fills(c, now)
	}
	for c := range h.demandQ {
		h.processDemand(c, now)
	}
	for c := range h.pq {
		h.issueQueuedPrefetch(c, now)
	}
	h.retryWritebacks(now)
	h.mem.Tick(now)
	if now%h.busRatio == 0 {
		h.futEpoch++ // the controllers may have resolved futures just now
	}
}

// AccountIdle charges span skipped cycles to the per-cycle sampled
// statistics. The engine calls it when event-driven stepping jumps the
// clock over cycles in which no component can do work: the occupancies a
// per-cycle Tick would have sampled are constant across such a span (a
// change would itself be an event), so span identical samples are added in
// one step and Snapshot bytes match the per-cycle engine exactly.
func (h *Hierarchy) AccountIdle(span uint64) {
	h.stats.TickSamples += span
	h.stats.L2FQOccupancySum += span * uint64(h.l2fq[0].len())
	h.stats.L3FQOccupancySum += span * uint64(h.l3fq.len())
	h.stats.MSHROccupancySum += span * uint64(len(h.outstanding[0]))
	h.stats.PrefQOccupancySum += span * uint64(h.pq[0].n)
}

// NextEvent returns the earliest cycle at or after now at which the uncore
// can do real work, or ^uint64(0) when nothing is in flight anywhere. It
// returns now whenever this cycle's Tick would have side effects beyond
// statistics sampling: a due demand-queue head (retries mutate L2 stats and
// prefetcher state every cycle they run), an issuable prefetch, a blocked
// writeback retry, or a non-idle DRAM at a bus-cycle boundary.
func (h *Hierarchy) NextEvent(now uint64) uint64 {
	if len(h.pendingWB) > 0 {
		return now
	}
	next := h.mem.NextEvent(now)
	if next <= now {
		return now
	}
	if t := h.l3fq.nextReady(h.futEpoch); t < next {
		next = t
	}
	for c := range h.l2fq {
		if !h.pq[c].empty() && !h.l2fq[c].full() {
			return now // a queued prefetch will issue this cycle
		}
		if t := h.l2fq[c].nextReady(h.futEpoch); t < next {
			next = t
		}
		if h.demandQ[c].len() > 0 {
			if t := h.demandQ[c].front().readyAt; t < next {
				next = t
			}
		}
		for _, f := range h.dl1Fills[c] {
			if f.at < next {
				next = f.at
			}
		}
	}
	if next < now {
		return now
	}
	return next
}

// drainL3Fills inserts memory data into the L3.
func (h *Hierarchy) drainL3Fills(now uint64) {
	if h.l3fq.len() == 0 {
		return
	}
	for _, e := range h.l3fq.popReady(now, h.futEpoch) {
		if h.l3.Peek(e.line) == nil {
			isPf := e.isPrefetch && !e.promoted
			ev := h.l3.Insert(e.line, cache.InsertInfo{Core: e.core, IsPrefetch: isPf})
			if h.fivep != nil {
				h.fivep.NoteFill(e.core)
			}
			if ev.Valid && ev.Dirty {
				h.writebackToDRAM(ev.Addr, ev.Core)
			}
		}
		h.pool.put(e)
	}
}

// drainL2Fills inserts arrived blocks into core's L2, applying the
// mandatory tag check and forwarding demand data to the DL1 (section 5.4).
func (h *Hierarchy) drainL2Fills(core int, now uint64) {
	if h.l2fq[core].len() == 0 {
		return
	}
	for _, e := range h.l2fq[core].popReady(now, h.futEpoch) {
		// The prefetch *bit* is only set when the block was not promoted to
		// a demand miss in the meantime, but the prefetcher's fill hook
		// sees every block its requests brought in — the BO prefetcher's
		// RR insertion happens at prefetch completion whether the prefetch
		// turned out late or not; lateness is what the learning measures.
		stillPrefetch := e.isPrefetch && !e.promoted
		if h.l2[core].Peek(e.line) != nil {
			// The block arrived but is already cached: mandatory tag check
			// drops the fill (blocks must not be duplicated).
			if stillPrefetch {
				h.stats.PrefDroppedTagCheck++
			}
		} else {
			ev := h.l2[core].Insert(e.line, cache.InsertInfo{Core: core, IsPrefetch: stillPrefetch})
			h.l2pf[core].OnFill(e.line, e.isPrefetch)
			if ev.Valid && ev.Dirty {
				h.writebackToL3(ev.Addr, core)
			}
		}
		if e.fillL1 {
			dirty := e.isWrite
			if info, found := h.outstanding[core][e.line]; found {
				dirty = dirty || info.markWrite
			}
			h.insertDL1(core, e.line, dirty, e.l1pf)
		}
		for _, w := range e.waiters {
			w.Resolve(now)
		}
		delete(h.outstanding[core], e.line)
		h.pool.put(e)
	}
}

// drainDL1Fills inserts due blocks into core's DL1 (L2-hit data paths).
func (h *Hierarchy) drainDL1Fills(core int, now uint64) {
	fills := h.dl1Fills[core]
	if len(fills) == 0 {
		return
	}
	kept := fills[:0]
	for _, f := range fills {
		if f.at > now {
			kept = append(kept, f)
			continue
		}
		h.insertDL1(core, f.line, f.dirty, f.pf)
	}
	h.dl1Fills[core] = kept
}

// insertDL1 places line into core's DL1, handling dirty writeback of the
// victim into the L2 (write-back hierarchy).
func (h *Hierarchy) insertDL1(core int, line mem.LineAddr, dirty, pfBit bool) {
	delete(h.outstanding[core], line)
	if ln := h.dl1[core].Peek(line); ln != nil {
		ln.Dirty = ln.Dirty || dirty
		return
	}
	ev := h.dl1[core].Insert(line, cache.InsertInfo{Core: core, IsPrefetch: pfBit})
	if ln := h.dl1[core].Peek(line); ln != nil && dirty {
		ln.Dirty = true
	}
	if ev.Valid && ev.Dirty {
		if l2ln := h.l2[core].Peek(ev.Addr); l2ln != nil {
			l2ln.Dirty = true
		} else {
			l2ev := h.l2[core].Insert(ev.Addr, cache.InsertInfo{Core: core})
			if l2ln := h.l2[core].Peek(ev.Addr); l2ln != nil {
				l2ln.Dirty = true
			}
			if l2ev.Valid && l2ev.Dirty {
				h.writebackToL3(l2ev.Addr, core)
			}
		}
	}
}

// writebackToL3 sends a dirty L2 victim down to the L3 (non-inclusive:
// allocate if absent).
func (h *Hierarchy) writebackToL3(line mem.LineAddr, core int) {
	if ln := h.l3.Peek(line); ln != nil {
		ln.Dirty = true
		return
	}
	ev := h.l3.Insert(line, cache.InsertInfo{Core: core})
	if ln := h.l3.Peek(line); ln != nil {
		ln.Dirty = true
	}
	if h.fivep != nil {
		h.fivep.NoteFill(core)
	}
	if ev.Valid && ev.Dirty {
		h.writebackToDRAM(ev.Addr, ev.Core)
	}
}

// writebackToDRAM queues a dirty L3 victim for memory, buffering when the
// write queue is full.
func (h *Hierarchy) writebackToDRAM(line mem.LineAddr, core int) {
	if !h.mem.EnqueueWrite(line, core) {
		h.pendingWB = append(h.pendingWB, wbReq{line: line, core: core})
	}
}

func (h *Hierarchy) retryWritebacks(uint64) {
	if len(h.pendingWB) == 0 {
		return
	}
	kept := h.pendingWB[:0]
	for _, wb := range h.pendingWB {
		if !h.mem.EnqueueWrite(wb.line, wb.core) {
			kept = append(kept, wb)
		}
	}
	h.pendingWB = kept
}

// processDemand lets up to two due core requests access core's L2 this
// cycle (the L2 is dual-ported for the core side in our model).
func (h *Hierarchy) processDemand(core int, now uint64) {
	for ports := 0; ports < 2; ports++ {
		q := &h.demandQ[core]
		if q.len() == 0 || q.front().readyAt > now {
			return
		}
		if !h.processL2Request(core, q.front(), now) {
			return // blocked on a full queue downstream; retry next cycle
		}
		q.pop()
	}
}

// processL2Request performs the L2 access for a core request. It returns
// false when the request must be retried (fill queue or read queue full).
func (h *Hierarchy) processL2Request(core int, req *coreReq, now uint64) bool {
	l2 := h.l2[core]
	h.stats.L2DemandAccesses++
	if ln := l2.Lookup(req.line); ln != nil {
		h.stats.L2Hits++
		pfHit := ln.Prefetch
		if pfHit {
			h.stats.L2PrefetchedHits++
		}
		ln.Prefetch = false // requested by the L1: reset the prefetch bit
		done := now + h.cfg.L2Latency
		req.fut.Resolve(done)
		h.dl1Fills[core] = append(h.dl1Fills[core], dl1Fill{
			line: req.line, at: done, dirty: req.isWrite, pf: req.l1pf,
		})
		h.triggerL2Prefetcher(core, prefetch.AccessInfo{Line: req.line, Hit: true, PrefetchedHit: pfHit})
		return true
	}
	h.stats.L2Misses++

	// CAM search of the fill queue: merge onto an in-flight fill.
	if e := h.l2fq[core].find(req.line); e != nil {
		if e.isPrefetch && !e.promoted {
			if !h.cfg.LatePromotion {
				// Ablation: no promotion path; the request replays until
				// the prefetch fills the L2.
				return false
			}
			e.promoted = true
			h.stats.PrefLatePromotions++
		}
		if !req.l1pf {
			e.fillL1 = true
			e.isWrite = e.isWrite || req.isWrite
			e.l1pf = false // a demand now depends on this block
		}
		e.waiters = append(e.waiters, req.fut)
		h.triggerL2Prefetcher(core, prefetch.AccessInfo{Line: req.line, Hit: false})
		return true
	}

	if h.l2fq[core].full() {
		return false
	}
	e := h.pool.get()
	e.line, e.core = req.line, core
	e.fillL1, e.isWrite, e.l1pf = true, req.isWrite, req.l1pf
	e.waiters = append(e.waiters, req.fut)
	if !h.accessL3(e, now, false) {
		h.pool.put(e)
		return false
	}
	h.l2fq[core].push(e)
	h.triggerL2Prefetcher(core, prefetch.AccessInfo{Line: req.line, Hit: false})
	return true
}

// accessL3 resolves where entry e's data comes from: L3 hit, an in-flight
// L3 fill, or a new DRAM read. It returns false if a required queue is full
// (nothing is modified in that case).
func (h *Hierarchy) accessL3(e *fillEntry, now uint64, isPrefetch bool) bool {
	if h.l3.Peek(e.line) != nil {
		h.l3.Lookup(e.line) // real access: stats + replacement update
		h.stats.L3Hits++
		e.fut, e.readyAt = nil, now+h.cfg.L3Latency
		return true
	}
	if l3e := h.l3fq.find(e.line); l3e != nil {
		if !isPrefetch && l3e.isPrefetch {
			l3e.promoted = true
		}
		e.fut = l3e.fut
		return true
	}
	if h.l3fq.full() {
		return false
	}
	fut := h.mem.EnqueueRead(e.line, e.core, h.futs.Pending())
	if fut == nil {
		return false
	}
	h.l3.Lookup(e.line) // counts the miss
	h.stats.L3Misses++
	l3e := h.pool.get()
	l3e.line, l3e.core, l3e.isPrefetch, l3e.fut = e.line, e.core, isPrefetch, fut
	h.l3fq.push(l3e)
	e.fut = fut
	return true
}

// triggerL2Prefetcher runs core's L2 prefetcher on an access and queues the
// requested prefetches.
func (h *Hierarchy) triggerL2Prefetcher(core int, a prefetch.AccessInfo) {
	for _, target := range h.l2pf[core].OnAccess(a) {
		if h.pq[core].contains(target) || h.l2fq[core].find(target) != nil {
			h.stats.PrefDroppedDup++
			continue
		}
		if h.preIssueTagCheck[core] && h.l2[core].Peek(target) != nil {
			h.stats.PrefDroppedDup++
			continue
		}
		h.pq[core].push(target)
		h.stats.PrefIssued++
	}
}

// issueQueuedPrefetch moves at most one prefetch per cycle from core's
// prefetch queue into the fill path (prefetches have the lowest priority
// for accessing the L3, section 5.4). The queue head is only removed once
// the downstream accepts it, so a blocked prefetch keeps its age.
func (h *Hierarchy) issueQueuedPrefetch(core int, now uint64) {
	if h.pq[core].empty() || h.l2fq[core].full() {
		return
	}
	line, _ := h.pq[core].front()
	e := h.pool.get()
	e.line, e.core, e.isPrefetch = line, core, true
	if !h.accessL3(e, now, true) {
		h.pool.put(e) // downstream full: leave the request queued
		return
	}
	h.pq[core].pop()
	h.l2fq[core].push(e)
}

// Drained reports whether every queue in the hierarchy is empty (used by
// tests to run the system dry).
func (h *Hierarchy) Drained() bool {
	if h.l3fq.len() > 0 || len(h.pendingWB) > 0 || !h.mem.Idle() {
		return false
	}
	for c := range h.l2fq {
		if h.l2fq[c].len() > 0 || h.demandQ[c].len() > 0 || !h.pq[c].empty() || len(h.dl1Fills[c]) > 0 {
			return false
		}
		if len(h.outstanding[c]) > 0 {
			return false
		}
	}
	return true
}
