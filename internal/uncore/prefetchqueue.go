package uncore

import "bopsim/internal/mem"

// prefetchQueue is the 8-entry queue where L2 prefetch requests wait for
// access to the L3 (section 5.4). Prefetches have the lowest priority;
// when the queue is full the *oldest* request is cancelled — stale
// prefetches are the least likely to still be timely. The storage is a
// fixed ring so pushes, pops and cancellations never allocate.
type prefetchQueue struct {
	lines     []mem.LineAddr // ring of cap slots
	head      int
	n         int
	Cancelled uint64
}

func newPrefetchQueue(capacity int) *prefetchQueue {
	return &prefetchQueue{lines: make([]mem.LineAddr, capacity)}
}

func (q *prefetchQueue) slot(i int) int {
	s := q.head + i
	if s >= len(q.lines) {
		s -= len(q.lines)
	}
	return s
}

// push inserts a prefetch target, cancelling the oldest if full.
func (q *prefetchQueue) push(line mem.LineAddr) {
	if q.n >= len(q.lines) {
		q.head = q.slot(1)
		q.n--
		q.Cancelled++
	}
	q.lines[q.slot(q.n)] = line
	q.n++
}

// contains reports whether line is already queued (associative search used
// to drop redundant prefetch requests, footnote 13).
func (q *prefetchQueue) contains(line mem.LineAddr) bool {
	for i := 0; i < q.n; i++ {
		if q.lines[q.slot(i)] == line {
			return true
		}
	}
	return false
}

// front returns the oldest request without removing it.
func (q *prefetchQueue) front() (mem.LineAddr, bool) {
	if q.n == 0 {
		return 0, false
	}
	return q.lines[q.head], true
}

// pop removes and returns the oldest request.
func (q *prefetchQueue) pop() (mem.LineAddr, bool) {
	if q.n == 0 {
		return 0, false
	}
	l := q.lines[q.head]
	q.head = q.slot(1)
	q.n--
	return l, true
}

func (q *prefetchQueue) empty() bool { return q.n == 0 }
