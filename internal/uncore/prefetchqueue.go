package uncore

import "bopsim/internal/mem"

// prefetchQueue is the 8-entry queue where L2 prefetch requests wait for
// access to the L3 (section 5.4). Prefetches have the lowest priority;
// when the queue is full the *oldest* request is cancelled — stale
// prefetches are the least likely to still be timely.
type prefetchQueue struct {
	lines     []mem.LineAddr
	cap       int
	Cancelled uint64
}

func newPrefetchQueue(capacity int) *prefetchQueue {
	return &prefetchQueue{cap: capacity}
}

// push inserts a prefetch target, cancelling the oldest if full.
func (q *prefetchQueue) push(line mem.LineAddr) {
	if len(q.lines) >= q.cap {
		q.lines = q.lines[1:]
		q.Cancelled++
	}
	q.lines = append(q.lines, line)
}

// contains reports whether line is already queued (associative search used
// to drop redundant prefetch requests, footnote 13).
func (q *prefetchQueue) contains(line mem.LineAddr) bool {
	for _, l := range q.lines {
		if l == line {
			return true
		}
	}
	return false
}

// pop removes and returns the oldest request.
func (q *prefetchQueue) pop() (mem.LineAddr, bool) {
	if len(q.lines) == 0 {
		return 0, false
	}
	l := q.lines[0]
	q.lines = q.lines[1:]
	return l, true
}

func (q *prefetchQueue) empty() bool { return len(q.lines) == 0 }
