package uncore

import (
	"testing"

	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sbp"
)

func TestSBPGetsPreIssueTagCheck(t *testing.T) {
	cfg := DefaultConfig(1, mem.Page4K)
	h := New(cfg, func(int) prefetch.L2Prefetcher {
		return sbp.New(cfg.Page, sbp.DefaultParams())
	}, nil, nil)
	if !h.preIssueTagCheck[0] {
		t.Error("SBP did not get the extra pre-issue L2 tag check (section 6.3)")
	}
	h2 := New(cfg, func(int) prefetch.L2Prefetcher {
		return prefetch.NewNextLine(cfg.Page)
	}, nil, nil)
	if h2.preIssueTagCheck[0] {
		t.Error("next-line wrongly got the SBP-only tag check")
	}
}

func TestNilPrefetcherFactoryMeansNone(t *testing.T) {
	h := New(DefaultConfig(1, mem.Page4K), nil, nil, nil)
	if h.L2Prefetcher(0).Name() != "none" {
		t.Errorf("prefetcher = %s, want none", h.L2Prefetcher(0).Name())
	}
	if h.L1Prefetcher(0) != nil {
		t.Error("nil L1 factory did not disable DL1 prefetching")
	}
	h2 := New(DefaultConfig(1, mem.Page4K), func(int) prefetch.L2Prefetcher { return nil }, nil, nil)
	if h2.L2Prefetcher(0).Name() != "none" {
		t.Error("nil from factory not mapped to None")
	}
}

func TestOccupancyTelemetryAdvances(t *testing.T) {
	h := New(DefaultConfig(1, mem.Page4K), nil, nil, nil)
	for now := uint64(0); now < 100; now++ {
		h.Access(0, 0x400, mem.Addr(0x100000+now*4096), false, now)
		h.Tick(now)
	}
	s := h.Stats()
	if s.TickSamples != 100 {
		t.Errorf("TickSamples = %d, want 100", s.TickSamples)
	}
	if s.MSHROccupancySum == 0 {
		t.Error("MSHR occupancy never sampled above zero under a miss flood")
	}
	if s.L2FQOccupancySum == 0 {
		t.Error("L2 fill queue occupancy never above zero under a miss flood")
	}
}

func TestWritebackRetryWhenDRAMWriteQueueFull(t *testing.T) {
	// Force the pendingWB path: shrink the DRAM write queue and push many
	// dirty evictions at once.
	p := dram.DefaultParams(1)
	p.WriteQueueLen = 1
	memory := dram.New(p)
	cfg := DefaultConfig(1, mem.Page4K)
	h := New(cfg, nil, nil, memory)

	// Queue several writebacks directly; with a 1-entry write queue most
	// must buffer in pendingWB and drain over subsequent ticks.
	for i := 0; i < 8; i++ {
		h.writebackToDRAM(mem.LineAddr(1000+i*977), 0)
	}
	if len(h.pendingWB) == 0 {
		t.Fatal("no writebacks buffered despite a full write queue")
	}
	var now uint64
	for ; now < 200000 && !h.Drained(); now++ {
		h.Tick(now)
	}
	if !h.Drained() {
		t.Fatal("buffered writebacks never drained")
	}
	if got := memory.TotalStats().Writes; got != 8 {
		t.Errorf("DRAM writes = %d, want 8", got)
	}
}

func TestConfigLatenciesRespected(t *testing.T) {
	// An L2 hit must complete in DL1+L2 latency, not a DRAM round trip.
	h := New(DefaultConfig(1, mem.Page4K), nil, nil, nil)
	// Warm the line into DL1+L2, then evict it from DL1 only by filling
	// the DL1 set; simplest: access once, drain, invalidate the DL1 copy.
	fut := h.Access(0, 0x400, 0x10000, false, 0)
	var now uint64
	for ; !fut.DoneBy(now); now++ {
		h.Tick(now)
	}
	for ; !h.Drained(); now++ {
		h.Tick(now)
	}
	line := h.translators[0].TranslateLine(mem.LineOf(0x10000))
	h.dl1[0].Invalidate(line)
	start := now + 10
	fut2 := h.Access(0, 0x404, 0x10000, false, start)
	for ; !fut2.Resolved(); now++ {
		h.Tick(now)
	}
	lat := fut2.Cycle() - start
	want := h.cfg.DL1Latency + h.cfg.L2Latency
	if lat > want+2 {
		t.Errorf("L2-hit latency = %d cycles, want about %d", lat, want)
	}
}
