package uncore

import (
	"fmt"

	"bopsim/internal/cache"
	"bopsim/internal/dram"
	"bopsim/internal/prefetch"
	"bopsim/internal/tlb"
)

// State is the serialized state of a drained hierarchy: cache contents and
// replacement state, TLB residency, DRAM bank/scheduler registers and every
// statistic. Transient queue state (fill queues, demand queues, MSHRs,
// prefetch queues, pending writebacks) is deliberately absent — SaveState
// refuses a hierarchy that is not Drained, so there is never anything in
// them to serialize. Prefetcher state is owned by the engine snapshot (via
// prefetch.StateCodec), not here.
type State struct {
	Stats       Stats
	DL1         []cache.State
	L2          []cache.State
	L3          cache.State
	TLBs        []tlb.State
	PQCancelled []uint64
	DRAM        dram.State
}

// SaveState serializes the hierarchy. It reports an error when any queue
// still holds in-flight work; the engine drains the machine first.
func (h *Hierarchy) SaveState() (State, error) {
	if !h.Drained() {
		return State{}, fmt.Errorf("uncore: cannot checkpoint with requests in flight")
	}
	dramState, err := h.mem.SaveState()
	if err != nil {
		return State{}, err
	}
	st := State{Stats: h.stats, L3: h.l3.SaveState(), DRAM: dramState}
	for c := range h.dl1 {
		st.DL1 = append(st.DL1, h.dl1[c].SaveState())
		st.L2 = append(st.L2, h.l2[c].SaveState())
		st.TLBs = append(st.TLBs, h.tlbs[c].SaveState())
		st.PQCancelled = append(st.PQCancelled, h.pq[c].Cancelled)
	}
	return st, nil
}

// RestoreState replaces a freshly constructed hierarchy's state with a
// previously saved one. The hierarchy must have been built from the same
// configuration (core count, cache geometry, L3 policy, page size).
func (h *Hierarchy) RestoreState(st State) error {
	if !h.Drained() {
		return fmt.Errorf("uncore: cannot restore with requests in flight")
	}
	if len(st.DL1) != len(h.dl1) || len(st.L2) != len(h.l2) ||
		len(st.TLBs) != len(h.tlbs) || len(st.PQCancelled) != len(h.pq) {
		return fmt.Errorf("uncore: state covers %d cores, hierarchy has %d", len(st.DL1), len(h.dl1))
	}
	// Line.Core is used as an index downstream (write-back routing, the
	// DRAM per-core queues, 5P's per-core counters), so a decodable but
	// corrupt snapshot must be rejected here rather than panic mid-run.
	for _, cs := range append(append([]cache.State{st.L3}, st.DL1...), st.L2...) {
		for _, ln := range cs.Lines {
			if ln.Valid && (ln.Core < 0 || ln.Core >= h.cfg.NumCores) {
				return fmt.Errorf("uncore: cached line owned by core %d, hierarchy has %d cores", ln.Core, h.cfg.NumCores)
			}
		}
	}
	if err := h.l3.RestoreState(st.L3); err != nil {
		return err
	}
	for c := range h.dl1 {
		if err := h.dl1[c].RestoreState(st.DL1[c]); err != nil {
			return fmt.Errorf("core %d: %w", c, err)
		}
		if err := h.l2[c].RestoreState(st.L2[c]); err != nil {
			return fmt.Errorf("core %d: %w", c, err)
		}
		if err := h.tlbs[c].RestoreState(st.TLBs[c]); err != nil {
			return fmt.Errorf("core %d TLB: %w", c, err)
		}
		h.pq[c].Cancelled = st.PQCancelled[c]
	}
	if err := h.mem.RestoreState(st.DRAM); err != nil {
		return err
	}
	h.stats = st.Stats
	return nil
}

// ResetStats zeroes every event counter in the hierarchy — the hierarchy's
// own, the caches', the TLBs', the prefetch queues' and DRAM's — without
// touching any warmed state. The warmup barrier calls it so the measured
// region's statistics start from zero in checkpointed and straight runs
// alike.
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	h.l3.ResetStats()
	for c := range h.dl1 {
		h.dl1[c].ResetStats()
		h.l2[c].ResetStats()
		h.tlbs[c].ResetStats()
		h.pq[c].Cancelled = 0
	}
	h.mem.ResetStats()
}

// SetPrefetchers replaces every core's L2 and DL1 prefetchers using the
// same factory contract as New. The warmup barrier uses it: a warmup region
// that ran with prefetching disabled installs the configured prefetchers —
// cold — exactly at the boundary of the measured region.
func (h *Hierarchy) SetPrefetchers(newL2PF func(core int) prefetch.L2Prefetcher, newL1PF func(core int) prefetch.L1Prefetcher) {
	for c := range h.l2pf {
		var l1 prefetch.L1Prefetcher
		if newL1PF != nil {
			l1 = newL1PF(c)
		}
		h.l1pf[c] = l1
		var pf prefetch.L2Prefetcher = prefetch.None{}
		if newL2PF != nil {
			if p := newL2PF(c); p != nil {
				pf = p
			}
		}
		h.l2pf[c] = pf
		tagCheck := false
		if tc, ok := pf.(prefetch.PreIssueTagChecker); ok {
			tagCheck = tc.PreIssueTagCheck()
		}
		h.preIssueTagCheck[c] = tagCheck
	}
}
