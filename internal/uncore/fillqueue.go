package uncore

import (
	"bopsim/internal/dram"
	"bopsim/internal/mem"
)

// fillEntry is one slot of a fill queue: a block on its way into a cache.
// The tag and request type are associatively searchable (the paper stores
// them in a separate CAM) so that a later demand miss can be merged onto
// the in-flight request, promoting it from prefetch to demand (section 5.4).
//
// Entries are pooled by the owning Hierarchy (see entryPool): a queue holds
// the only live reference to its entries, so an entry returns to the free
// list the moment it is drained or its insertion is abandoned.
type fillEntry struct {
	line mem.LineAddr
	core int
	// The block's data is available at this level when fut resolves, or —
	// for sources whose timing is known up front (an L3 hit) — at the fixed
	// cycle readyAt, with no Future allocated at all. fut != nil wins.
	fut     *dram.Future
	readyAt uint64
	// isPrefetch records the original request type; promoted flips the
	// effective type to demand without losing the information that the
	// block started as a prefetch (a promoted prefetch is a late prefetch).
	isPrefetch bool
	promoted   bool
	// fillL1 forwards the block to the DL1 when it fills the L2 (demand
	// data requests and promoted prefetches).
	fillL1 bool
	// isWrite marks the originating demand as a store (the DL1 copy is
	// dirtied on fill).
	isWrite bool
	// l1pf marks a DL1 stride-prefetch request: the DL1 copy gets its
	// prefetch bit set on fill.
	l1pf bool
	// waiters are the core-visible completion futures resolved when this
	// entry fills its cache.
	waiters []*dram.Future
}

// readyBy reports whether the block's data has arrived by now.
func (e *fillEntry) readyBy(now uint64) bool {
	if e.fut != nil {
		return e.fut.DoneBy(now)
	}
	return e.readyAt <= now
}

// readyTime returns the cycle the data arrives when it is already known
// (^uint64(0) while the future is unresolved — a DRAM event will set it).
func (e *fillEntry) readyTime() uint64 {
	if e.fut != nil {
		if !e.fut.Resolved() {
			return ^uint64(0)
		}
		return e.fut.Cycle()
	}
	return e.readyAt
}

// entryPool is a free list of fillEntry objects, reused so the steady-state
// fill path allocates nothing (waiters keep their backing arrays across
// reuses).
type entryPool struct {
	free []*fillEntry
}

func (p *entryPool) get() *fillEntry {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		return e
	}
	//bovet:allow hotalloc pool miss is the warmup path; steady state reuses entries from the free list
	return &fillEntry{}
}

func (p *entryPool) put(e *fillEntry) {
	w := e.waiters[:0]
	*e = fillEntry{waiters: w}
	p.free = append(p.free, e)
}

// fillQueue is a bounded FIFO of fillEntry with CAM search by line address.
//
// To keep the per-cycle drain cheap, the queue maintains two summaries of
// its entries: minKnown, the earliest arrival cycle among entries whose
// timing is known, and unresolved, the count of entries still waiting on an
// unresolved DRAM future. An entry's timing changes exactly once — when the
// DRAM controller resolves its future — and that can only happen during a
// bus-cycle tick, so the owning Hierarchy bumps a resolution epoch after
// each such tick and the queue rescans its entries at most once per epoch
// (and only while it actually holds unresolved futures). Between epochs,
// `now < minKnown` proves no entry can be ready without touching any entry.
type fillQueue struct {
	entries []*fillEntry
	cap     int
	ready   []*fillEntry // scratch returned by popReady, reused across calls

	minKnown   uint64 // earliest known arrival cycle (^uint64(0) if none)
	unresolved int    // entries waiting on an unresolved future
	epoch      uint64 // resolution epoch the summaries were computed at
}

func newFillQueue(capacity int) *fillQueue {
	return &fillQueue{cap: capacity, minKnown: ^uint64(0)}
}

// sync refreshes the summaries after futures may have resolved. Cheap when
// nothing could have changed: same epoch, or no unresolved futures held.
func (q *fillQueue) sync(epoch uint64) {
	if q.epoch == epoch {
		return
	}
	q.epoch = epoch
	if q.unresolved == 0 {
		return
	}
	q.recompute()
}

func (q *fillQueue) recompute() {
	q.minKnown = ^uint64(0)
	q.unresolved = 0
	for _, e := range q.entries {
		if t := e.readyTime(); t == ^uint64(0) {
			q.unresolved++
		} else if t < q.minKnown {
			q.minKnown = t
		}
	}
}

func (q *fillQueue) full() bool { return len(q.entries) >= q.cap }
func (q *fillQueue) len() int   { return len(q.entries) }

// push appends e; the caller must have checked full().
func (q *fillQueue) push(e *fillEntry) {
	if q.full() {
		panic("uncore: fill queue overflow")
	}
	q.entries = append(q.entries, e)
	if t := e.readyTime(); t == ^uint64(0) {
		q.unresolved++
	} else if t < q.minKnown {
		q.minKnown = t
	}
}

// find returns the entry for line, or nil (the CAM search).
func (q *fillQueue) find(line mem.LineAddr) *fillEntry {
	for _, e := range q.entries {
		if e.line == line {
			return e
		}
	}
	return nil
}

// popReady removes and returns entries whose data has arrived by now, in
// FIFO order. Fill queues are FIFOs for ordering, but fills become ready
// out of order (L3 hits overtake DRAM misses), so we sweep all ready
// entries. The returned slice is scratch owned by the queue, valid until
// the next popReady call; callers must release each entry to the pool when
// done with it.
func (q *fillQueue) popReady(now, epoch uint64) []*fillEntry {
	q.sync(epoch)
	if now < q.minKnown {
		return q.ready[:0] // nothing can be ready; skip the scan
	}
	ready := q.ready[:0]
	kept := q.entries[:0]
	q.minKnown = ^uint64(0)
	q.unresolved = 0
	for _, e := range q.entries {
		if e.readyBy(now) {
			ready = append(ready, e)
		} else {
			kept = append(kept, e)
			if t := e.readyTime(); t == ^uint64(0) {
				q.unresolved++
			} else if t < q.minKnown {
				q.minKnown = t
			}
		}
	}
	// Clear the tail so dropped entries do not linger past their release.
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	q.ready = ready
	return ready
}

// nextReady returns the earliest known arrival cycle over all entries
// (^uint64(0) when the queue is empty or every entry waits on DRAM — in the
// latter case a pending DRAM read guarantees a memory event covers it).
func (q *fillQueue) nextReady(epoch uint64) uint64 {
	q.sync(epoch)
	return q.minKnown
}
