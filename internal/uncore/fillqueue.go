package uncore

import (
	"bopsim/internal/dram"
	"bopsim/internal/mem"
)

// fillEntry is one slot of a fill queue: a block on its way into a cache.
// The tag and request type are associatively searchable (the paper stores
// them in a separate CAM) so that a later demand miss can be merged onto
// the in-flight request, promoting it from prefetch to demand (section 5.4).
type fillEntry struct {
	line mem.LineAddr
	core int
	// fut resolves when the block's data is available at this level.
	fut *dram.Future
	// isPrefetch records the original request type; promoted flips the
	// effective type to demand without losing the information that the
	// block started as a prefetch (a promoted prefetch is a late prefetch).
	isPrefetch bool
	promoted   bool
	// fillL1 forwards the block to the DL1 when it fills the L2 (demand
	// data requests and promoted prefetches).
	fillL1 bool
	// isWrite marks the originating demand as a store (the DL1 copy is
	// dirtied on fill).
	isWrite bool
	// l1pf marks a DL1 stride-prefetch request: the DL1 copy gets its
	// prefetch bit set on fill.
	l1pf bool
	// waiters are the core-visible completion futures resolved when this
	// entry fills its cache.
	waiters []*dram.Future
	// needsDRAM marks an L3 fill entry whose memory read could not be
	// enqueued yet (read queue full); retried every cycle.
	needsDRAM bool
}

// fillQueue is a bounded FIFO of fillEntry with CAM search by line address.
type fillQueue struct {
	entries []*fillEntry
	cap     int
}

func newFillQueue(capacity int) *fillQueue {
	return &fillQueue{cap: capacity}
}

func (q *fillQueue) full() bool { return len(q.entries) >= q.cap }
func (q *fillQueue) len() int   { return len(q.entries) }

// push appends e; the caller must have checked full().
func (q *fillQueue) push(e *fillEntry) {
	if q.full() {
		panic("uncore: fill queue overflow")
	}
	q.entries = append(q.entries, e)
}

// find returns the entry for line, or nil (the CAM search).
func (q *fillQueue) find(line mem.LineAddr) *fillEntry {
	for _, e := range q.entries {
		if e.line == line {
			return e
		}
	}
	return nil
}

// popReady removes and returns entries whose data has arrived by now, in
// FIFO order, stopping at the first entry whose future has not resolved
// only if strictFIFO; fill queues are FIFOs for ordering, but fills become
// ready out of order (L3 hits overtake DRAM misses), so we sweep all ready
// entries.
func (q *fillQueue) popReady(now uint64) []*fillEntry {
	var ready []*fillEntry
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.fut.DoneBy(now) && !e.needsDRAM {
			ready = append(ready, e)
		} else {
			kept = append(kept, e)
		}
	}
	q.entries = kept
	return ready
}
