package uncore

import (
	"testing"

	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/stride"
)

// testHier builds a 1-core hierarchy with the given L2 prefetcher and the
// baseline DL1 stride prefetcher.
func testHier(pf prefetch.L2Prefetcher) *Hierarchy {
	cfg := DefaultConfig(1, mem.Page4K)
	return New(cfg,
		func(int) prefetch.L2Prefetcher { return pf },
		func(int) prefetch.L1Prefetcher { return stride.New() },
		nil)
}

// runUntil ticks the hierarchy until fut resolves, returning the cycle.
func runUntil(t *testing.T, h *Hierarchy, fut *dram.Future, from, budget uint64) uint64 {
	t.Helper()
	for now := from; now < from+budget; now++ {
		h.Tick(now)
		if fut.Resolved() && fut.Cycle() <= now {
			return fut.Cycle()
		}
	}
	t.Fatalf("request unresolved after %d cycles", budget)
	return 0
}

func TestDemandMissGoesToDRAMAndFills(t *testing.T) {
	h := testHier(prefetch.None{})
	fut := h.Access(0, 0x400, 0x10000, false, 0)
	if fut == nil {
		t.Fatal("access rejected")
	}
	done := runUntil(t, h, fut, 0, 100000)
	if done < 100 {
		t.Errorf("cold miss completed in %d cycles; too fast for DRAM", done)
	}
	// Drain remaining work, then the same address must hit the DL1.
	for now := done; !h.Drained(); now++ {
		h.Tick(now)
	}
	fut2 := h.Access(0, 0x400, 0x10000, false, done+1000)
	if !fut2.Resolved() || fut2.Cycle() > done+1000+h.cfg.DL1Latency {
		t.Error("second access did not hit the DL1")
	}
	if h.Stats().DL1Hits != 1 {
		t.Errorf("DL1Hits = %d, want 1", h.Stats().DL1Hits)
	}
}

func TestMSHRMerging(t *testing.T) {
	h := testHier(prefetch.None{})
	f1 := h.Access(0, 0x400, 0x10000, false, 0)
	f2 := h.Access(0, 0x404, 0x10008, false, 0) // same line
	if f1 != f2 {
		t.Error("two misses to one line did not merge onto one future")
	}
}

func TestMSHRCapacity(t *testing.T) {
	h := testHier(prefetch.None{})
	for i := 0; i < h.cfg.MSHRs; i++ {
		if h.Access(0, 0x400, mem.Addr(0x100000+i*4096), false, 0) == nil {
			t.Fatalf("access %d rejected below MSHR capacity", i)
		}
	}
	if h.Access(0, 0x400, 0x900000, false, 0) != nil {
		t.Error("access accepted beyond MSHR capacity")
	}
	if h.CanAccept(0) {
		t.Error("CanAccept true with full MSHRs")
	}
}

func TestLatePrefetchPromotion(t *testing.T) {
	// Issue a BO-style prefetch via a fake prefetcher, then a demand to the
	// same line while it is in flight: the demand must complete with the
	// prefetch (promotion), not issue a second memory read.
	pf := &scriptedPF{}
	h := testHier(pf)

	// Trigger: a demand miss to line A, prefetcher asks for line B.
	pf.targets = []mem.LineAddr{h.translators[0].TranslateLine(mem.LineOf(0x20000))}
	futA := h.Access(0, 0x400, 0x10000, false, 0)
	// Let the prefetch enter the fill path.
	for now := uint64(0); now < 50; now++ {
		h.Tick(now)
	}
	// Demand for the prefetched line while in flight.
	futB := h.Access(0, 0x404, 0x20000, false, 50)
	runUntil(t, h, futA, 50, 100000)
	runUntil(t, h, futB, 50, 100000)
	if h.Stats().PrefLatePromotions != 1 {
		t.Fatalf("PrefLatePromotions = %d, want 1", h.Stats().PrefLatePromotions)
	}
	if got := h.Memory().TotalStats().Reads; got != 2 {
		t.Errorf("DRAM reads = %d, want 2 (one per line, no duplicate)", got)
	}
}

func TestPromotionDisabledAblation(t *testing.T) {
	cfg := DefaultConfig(1, mem.Page4K)
	cfg.LatePromotion = false
	pf := &scriptedPF{}
	h := New(cfg, func(int) prefetch.L2Prefetcher { return pf }, nil, nil)
	pf.targets = []mem.LineAddr{h.translators[0].TranslateLine(mem.LineOf(0x20000))}
	h.Access(0, 0x400, 0x10000, false, 0)
	for now := uint64(0); now < 50; now++ {
		h.Tick(now)
	}
	futB := h.Access(0, 0x404, 0x20000, false, 50)
	done := runUntil(t, h, futB, 50, 200000)
	if h.Stats().PrefLatePromotions != 0 {
		t.Error("promotion happened despite ablation")
	}
	_ = done // the request completes via replay after the prefetch fills
}

func TestPrefetchFillSetsPrefetchBitAndDemandClearsIt(t *testing.T) {
	pf := &scriptedPF{}
	h := testHier(pf)
	target := h.translators[0].TranslateLine(mem.LineOf(0x20000))
	pf.targets = []mem.LineAddr{target}
	futA := h.Access(0, 0x400, 0x10000, false, 0)
	runUntil(t, h, futA, 0, 100000)
	var now uint64 = futA.Cycle()
	for ; !h.Drained(); now++ {
		h.Tick(now)
	}
	ln := h.l2[0].Peek(target)
	if ln == nil || !ln.Prefetch {
		t.Fatal("prefetched line missing from L2 or prefetch bit clear")
	}
	// Demand access: must be counted as a prefetched hit and clear the bit.
	futB := h.Access(0, 0x404, 0x20000, false, now)
	runUntil(t, h, futB, now, 100000)
	if h.Stats().L2PrefetchedHits != 1 {
		t.Errorf("L2PrefetchedHits = %d, want 1", h.Stats().L2PrefetchedHits)
	}
	if ln := h.l2[0].Peek(target); ln == nil || ln.Prefetch {
		t.Error("prefetch bit not cleared by demand use")
	}
}

func TestPrefetcherSeesEligibleAccessesOnly(t *testing.T) {
	pf := &scriptedPF{}
	h := testHier(pf)
	futA := h.Access(0, 0x400, 0x10000, false, 0)
	runUntil(t, h, futA, 0, 100000)
	var now uint64 = futA.Cycle()
	for ; !h.Drained(); now++ {
		h.Tick(now)
	}
	missAccesses := pf.accesses
	if missAccesses == 0 {
		t.Fatal("prefetcher saw no accesses for a demand miss")
	}
	// A DL1 hit must not reach the L2 prefetcher.
	h.Access(0, 0x404, 0x10000, false, now)
	if pf.accesses != missAccesses {
		t.Error("DL1 hit reached the L2 prefetcher")
	}
}

func TestWritebackPath(t *testing.T) {
	// Fill many distinct lines mapping to one DL1 set with stores; evicted
	// dirty victims must propagate writebacks without losing requests.
	h := testHier(prefetch.None{})
	var now uint64
	for i := 0; i < 40; i++ {
		va := mem.Addr(0x100000 + i*h.dl1[0].Sets()*mem.LineSize)
		var fut *dram.Future
		for fut == nil {
			fut = h.Access(0, 0x500, va, true, now)
			h.Tick(now)
			now++
		}
		for !fut.DoneBy(now) {
			h.Tick(now)
			now++
		}
	}
	for !h.Drained() {
		h.Tick(now)
		now++
	}
	// All 40 lines were stored to; several must have been evicted dirty
	// from the tiny DL1 set into the L2.
	dirtyL2 := 0
	for i := 0; i < 40; i++ {
		va := mem.Addr(0x100000 + i*h.dl1[0].Sets()*mem.LineSize)
		line := h.translators[0].TranslateLine(mem.LineOf(va))
		if ln := h.l2[0].Peek(line); ln != nil && ln.Dirty {
			dirtyL2++
		}
	}
	if dirtyL2 == 0 {
		t.Error("no dirty lines reached the L2 after DL1 evictions")
	}
}

func TestStridePrefetcherIssuesIntoHierarchy(t *testing.T) {
	h := testHier(prefetch.None{})
	var now uint64
	// Train PC 0x600 with a 64-byte stride: each access misses the DL1 on
	// a fresh line, and the prefetch target (current + 16*64B) stays close
	// enough that its page is usually TLB2-resident.
	va := mem.Addr(0x400000)
	for i := 0; i < 80; i++ {
		fut := h.Access(0, 0x600, va, false, now)
		h.RetireMemOp(0, 0x600, va)
		if fut != nil {
			for !fut.DoneBy(now) {
				h.Tick(now)
				now++
			}
		}
		va += 64
		now += 10
	}
	if h.Stats().StridePrefIssued == 0 {
		t.Error("stride prefetcher never issued despite a constant stride")
	}
}

func TestStridePrefetchTLB2Gate(t *testing.T) {
	h := testHier(prefetch.None{})
	var now uint64
	// Stride of one page: the target page is never TLB2-resident.
	va := mem.Addr(0x400000)
	for i := 0; i < 40; i++ {
		fut := h.Access(0, 0x600, va, false, now)
		h.RetireMemOp(0, 0x600, va)
		if fut != nil {
			for !fut.DoneBy(now) {
				h.Tick(now)
				now++
			}
		}
		va += mem.Addr(mem.Page4K) * 3
		now += 10
	}
	if h.Stats().StridePrefDroppedTLB == 0 {
		t.Error("TLB2 gate never dropped a far-stride prefetch")
	}
}

func TestFillQueueCapacityRespected(t *testing.T) {
	h := testHier(prefetch.None{})
	// Saturate with independent misses; the L2 fill queue must never
	// exceed its capacity.
	var now uint64
	va := mem.Addr(0x1000000)
	for now = 0; now < 5000; now++ {
		h.Access(0, 0x700, va, false, now)
		va += 4096
		if h.l2fq[0].len() > h.cfg.L2FillQueueLen {
			t.Fatalf("L2 fill queue overflow: %d > %d", h.l2fq[0].len(), h.cfg.L2FillQueueLen)
		}
		if h.l3fq.len() > h.cfg.L3FillQueueLen {
			t.Fatalf("L3 fill queue overflow")
		}
		h.Tick(now)
	}
}

func TestSystemDrains(t *testing.T) {
	// Fire a burst of mixed traffic and verify the hierarchy reaches a
	// quiescent state (no stuck entries, no leaked futures).
	pf := prefetch.NewNextLine(mem.Page4K)
	h := testHier(pf)
	var now uint64
	var futs []*dram.Future
	va := mem.Addr(0x2000000)
	for i := 0; i < 300; i++ {
		if fut := h.Access(0, 0x800+uint64(i%8)*4, va, i%3 == 0, now); fut != nil {
			futs = append(futs, fut)
		}
		va += 64
		h.Tick(now)
		now++
	}
	for budget := 0; budget < 300000 && !h.Drained(); budget++ {
		h.Tick(now)
		now++
	}
	if !h.Drained() {
		t.Fatal("hierarchy did not drain")
	}
	for i, f := range futs {
		if !f.Resolved() {
			t.Fatalf("future %d never resolved", i)
		}
	}
}

func TestPrefetchQueueOldestCancelled(t *testing.T) {
	q := newPrefetchQueue(3)
	q.push(1)
	q.push(2)
	q.push(3)
	q.push(4) // cancels 1
	if q.Cancelled != 1 {
		t.Errorf("Cancelled = %d, want 1", q.Cancelled)
	}
	if q.contains(1) {
		t.Error("cancelled entry still present")
	}
	l, ok := q.pop()
	if !ok || l != 2 {
		t.Errorf("pop = %d,%v want 2,true", l, ok)
	}
}

func TestFillQueueCAM(t *testing.T) {
	q := newFillQueue(4)
	e := &fillEntry{line: 42, fut: dram.Pending()}
	q.push(e)
	if q.find(42) != e {
		t.Error("CAM search missed entry")
	}
	if q.find(43) != nil {
		t.Error("CAM search false positive")
	}
	e.fut.Resolve(10)
	// A resolution implies a new DRAM bus-tick epoch; pass the bumped epoch
	// as the hierarchy would.
	ready := q.popReady(10, 1)
	if len(ready) != 1 || ready[0] != e {
		t.Errorf("popReady returned %d entries", len(ready))
	}
	if q.len() != 0 {
		t.Error("entry not removed by popReady")
	}
}

func TestL3PolicySelection(t *testing.T) {
	for _, pol := range []string{"5P", "LRU", "DRRIP"} {
		cfg := DefaultConfig(1, mem.Page4K)
		cfg.L3Policy = pol
		h := New(cfg, nil, nil, nil)
		if got := h.l3.Policy().Name(); got != pol {
			t.Errorf("L3 policy = %s, want %s", got, pol)
		}
	}
}

func TestUnknownL3PolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown L3 policy did not panic")
		}
	}()
	cfg := DefaultConfig(1, mem.Page4K)
	cfg.L3Policy = "FIFO"
	New(cfg, nil, nil, nil)
}

// scriptedPF returns a fixed target list on the first eligible access.
type scriptedPF struct {
	targets  []mem.LineAddr
	accesses int
}

func (s *scriptedPF) Name() string { return "scripted" }
func (s *scriptedPF) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	s.accesses++
	t := s.targets
	s.targets = nil
	return t
}
func (s *scriptedPF) OnFill(mem.LineAddr, bool) {}
