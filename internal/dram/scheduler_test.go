package dram

import (
	"testing"

	"bopsim/internal/mem"
)

// linesOnChannel returns n distinct lines mapping to channel 0, stepping by
// step to vary banks/rows.
func linesOnChannel(n int, step mem.LineAddr) []mem.LineAddr {
	var out []mem.LineAddr
	for l := mem.LineAddr(0); len(out) < n; l += step {
		if MapAddress(l).Channel == 0 {
			out = append(out, l)
		}
	}
	return out
}

func TestWriteBurstTriggeredByFullQueue(t *testing.T) {
	p := DefaultParams(1)
	p.WriteQueueLen = 8
	p.WriteBatch = 4
	m := New(p)
	// Fill one channel's write queue to capacity while a read stream keeps
	// the controller busy.
	writes := linesOnChannel(8, 977)
	for _, l := range writes {
		if !m.EnqueueWrite(l, 0) {
			t.Fatal("write rejected below capacity")
		}
	}
	reads := linesOnChannel(16, 131)
	for _, l := range reads {
		m.EnqueueRead(l, 0, Pending())
	}
	var now uint64
	for ; !m.Idle() && now < 100000; now++ {
		m.Tick(now)
	}
	s := m.TotalStats()
	if s.Writes != 8 {
		t.Errorf("Writes = %d, want 8", s.Writes)
	}
	if s.WriteBursts == 0 {
		t.Error("no write bursts recorded")
	}
}

func TestWritesDrainWhenNoReads(t *testing.T) {
	m := New(DefaultParams(1))
	for _, l := range linesOnChannel(5, 313) {
		m.EnqueueWrite(l, 0)
	}
	var now uint64
	for ; !m.Idle() && now < 100000; now++ {
		m.Tick(now)
	}
	if !m.Idle() {
		t.Fatal("writes never drained without read pressure")
	}
}

func TestRowHitsPreferredWithinServedCore(t *testing.T) {
	// Queue a row-conflict request first, then a row hit to the open row;
	// FR-FCFS must complete the row hit earlier despite arrival order.
	p := DefaultParams(1)
	m := New(p)
	// Open a row.
	warm := Pending()
	m.EnqueueRead(0, 0, warm)
	var now uint64
	for ; !warm.DoneBy(now); now++ {
		m.Tick(now)
	}
	base := MapAddress(0)
	// Find a conflicting line (same channel+bank, different row) and a
	// row-hit line (adjacent to line 0).
	var conflict mem.LineAddr
	for l := mem.LineAddr(1); ; l++ {
		loc := MapAddress(l)
		if loc.Channel == base.Channel && loc.Bank == base.Bank && loc.Row != base.Row {
			conflict = l
			break
		}
	}
	fConf := Pending()
	fHit := Pending()
	m.EnqueueRead(conflict, 0, fConf)
	m.EnqueueRead(1, 0, fHit) // same row as line 0
	for ; !(fConf.Resolved() && fHit.Resolved()); now++ {
		m.Tick(now)
	}
	if fHit.Cycle() >= fConf.Cycle() {
		t.Errorf("row hit finished at %d, conflict at %d: FR-FCFS not honoured",
			fHit.Cycle(), fConf.Cycle())
	}
}

func TestPerCoreReadAccounting(t *testing.T) {
	m := New(DefaultParams(2))
	m.EnqueueRead(0, 0, Pending())
	m.EnqueueRead(64, 1, Pending())
	m.EnqueueRead(128, 1, Pending())
	var now uint64
	for ; !m.Idle() && now < 100000; now++ {
		m.Tick(now)
	}
	s := m.TotalStats()
	if s.PerCoreReads[0] != 1 || s.PerCoreReads[1] != 2 {
		t.Errorf("PerCoreReads = %v, want [1 2]", s.PerCoreReads)
	}
}

func TestExtraLatencyAppliedToReads(t *testing.T) {
	fast := DefaultParams(1)
	fast.ExtraLatency = 0
	slow := DefaultParams(1)
	slow.ExtraLatency = 500

	measure := func(p Params) uint64 {
		m := New(p)
		fut := Pending()
		m.EnqueueRead(0, 0, fut)
		for now := uint64(0); ; now++ {
			m.Tick(now)
			if fut.Resolved() {
				return fut.Cycle()
			}
		}
	}
	if d := measure(slow) - measure(fast); d != 500 {
		t.Errorf("ExtraLatency delta = %d, want 500", d)
	}
}
