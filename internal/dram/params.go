// Package dram models the main memory of the baseline microarchitecture
// (paper section 5.3 and Table 1): two independent channels, each a 64-bit
// bus clocked at 1/4 the core frequency driving one rank of 8 chips with 8
// banks and an 8KB per-rank row buffer, DDR3-like timing, per-core read and
// write queues, an FR-FCFS read scheduler with steady/urgent modes and
// proportional-counter fairness, and out-of-order write bursts of 16.
//
// The scheduler does not distinguish demand from prefetch requests — they
// are treated equally, exactly as in the paper.
package dram

// Params collects the DDR3-like timing and geometry parameters from
// Table 1. All timing values are in bus cycles; BusRatio converts to core
// cycles (bus cycle = 4 core cycles in the baseline).
type Params struct {
	Channels int // independent channels, one controller each
	Banks    int // banks per rank (one rank per channel)

	BusRatio int // core cycles per bus cycle

	TCL    int // CAS latency
	TRCD   int // RAS-to-CAS delay
	TRP    int // row precharge
	TRAS   int // row active time
	TCWL   int // CAS write latency
	TRTP   int // read-to-precharge
	TWR    int // write recovery
	TWTR   int // write-to-read turnaround
	TBURST int // data burst duration (8 beats on a 64-bit bus = 4 bus cycles)

	ReadQueueLen  int // per-core read queue entries per controller
	WriteQueueLen int // per-core write queue entries per controller
	WriteBatch    int // writes drained per write burst

	// ExtraLatency is the fixed round-trip overhead in core cycles added to
	// every read completion: controller pipeline, on-chip interconnect and
	// off-chip link delays that the bank timing alone does not cover.
	ExtraLatency uint64

	NumCores int

	// UrgentThreshold is the proportional-counter gap between the served
	// core and the lagging core beyond which urgent mode preempts steady
	// mode (section 5.3 uses 31).
	UrgentThreshold uint32
}

// DefaultParams returns the baseline memory system of Table 1.
func DefaultParams(numCores int) Params {
	return Params{
		Channels:        2,
		Banks:           8,
		BusRatio:        4,
		TCL:             11,
		TRCD:            11,
		TRP:             11,
		TRAS:            33,
		TCWL:            8,
		TRTP:            6,
		TWR:             12,
		TWTR:            6,
		TBURST:          4,
		ReadQueueLen:    32,
		WriteQueueLen:   32,
		WriteBatch:      16,
		ExtraLatency:    60,
		NumCores:        numCores,
		UrgentThreshold: 31,
	}
}
