package dram

import "fmt"

// Checkpoint state. A memory system can only be checkpointed when it is
// Idle(): the warmup barrier drains every queue first, so the serialized
// state is just the banks' row/timing registers, the scheduler's mode
// registers and the statistics — no in-flight requests, and therefore no
// futures to serialize.

// BankState mirrors bankState with exported fields.
type BankState struct {
	OpenRow    int64
	RowOpenAt  uint64
	PreReadyAt uint64
}

// ControllerState is one channel's serialized state.
type ControllerState struct {
	Banks         []BankState
	Fair          []uint32
	Served        int
	BusFreeAt     uint64
	WritesInBatch int
	Seq           uint64
	Stats         Stats
}

// State is the serialized state of the whole memory system.
type State struct {
	Channels []ControllerState
}

// SaveState serializes the memory system. It reports an error when requests
// are still pending — callers must drain first (see uncore's barrier).
func (m *Memory) SaveState() (State, error) {
	if !m.Idle() {
		return State{}, fmt.Errorf("dram: cannot checkpoint with requests pending")
	}
	st := State{Channels: make([]ControllerState, len(m.channels))}
	for i, c := range m.channels {
		cs := ControllerState{
			Banks:         make([]BankState, len(c.banks)),
			Fair:          c.fair.SaveState(),
			Served:        c.served,
			BusFreeAt:     c.busFreeAt,
			WritesInBatch: c.writesInBatch,
			Seq:           c.seq,
			Stats:         c.stats,
		}
		cs.Stats.PerCoreReads = append([]uint64(nil), c.stats.PerCoreReads...)
		for b, bank := range c.banks {
			cs.Banks[b] = BankState{OpenRow: bank.openRow, RowOpenAt: bank.rowOpenAt, PreReadyAt: bank.preReadyAt}
		}
		st.Channels[i] = cs
	}
	return st, nil
}

// RestoreState replaces the memory system's state with a previously saved
// one. The state must come from a system of identical geometry, and this
// system must be idle (freshly constructed).
func (m *Memory) RestoreState(st State) error {
	if !m.Idle() {
		return fmt.Errorf("dram: cannot restore with requests pending")
	}
	if len(st.Channels) != len(m.channels) {
		return fmt.Errorf("dram: state has %d channels, memory has %d", len(st.Channels), len(m.channels))
	}
	for i, cs := range st.Channels {
		c := m.channels[i]
		if len(cs.Banks) != len(c.banks) {
			return fmt.Errorf("dram: channel %d state has %d banks, controller has %d", i, len(cs.Banks), len(c.banks))
		}
		if len(cs.Stats.PerCoreReads) != len(c.stats.PerCoreReads) {
			return fmt.Errorf("dram: channel %d state covers %d cores, controller serves %d",
				i, len(cs.Stats.PerCoreReads), len(c.stats.PerCoreReads))
		}
		if cs.Served < -1 || cs.Served >= len(c.readQ) {
			return fmt.Errorf("dram: channel %d served core %d out of range", i, cs.Served)
		}
		if err := c.fair.RestoreState(cs.Fair); err != nil {
			return fmt.Errorf("dram: channel %d: %w", i, err)
		}
		for b, bs := range cs.Banks {
			c.banks[b] = bankState{openRow: bs.OpenRow, rowOpenAt: bs.RowOpenAt, preReadyAt: bs.PreReadyAt}
		}
		c.served = cs.Served
		c.busFreeAt = cs.BusFreeAt
		c.writesInBatch = cs.WritesInBatch
		c.seq = cs.Seq
		per := c.stats.PerCoreReads
		c.stats = cs.Stats
		c.stats.PerCoreReads = per
		copy(c.stats.PerCoreReads, cs.Stats.PerCoreReads)
	}
	return nil
}

// ResetStats clears every event counter, keeping the banks' open rows and
// timing state (warmup barrier semantics: the measured region starts with
// warmed rows but zeroed counters).
func (m *Memory) ResetStats() {
	for _, c := range m.channels {
		per := c.stats.PerCoreReads
		for i := range per {
			per[i] = 0
		}
		c.stats = Stats{PerCoreReads: per}
	}
}
