package dram

import (
	"testing"
	"testing/quick"

	"bopsim/internal/mem"
)

// run advances memory until fut resolves or the cycle budget is exhausted,
// returning the resolution cycle.
func run(t *testing.T, m *Memory, fut *Future, budget uint64) uint64 {
	t.Helper()
	for now := uint64(0); now < budget; now++ {
		m.Tick(now)
		if fut.Resolved() {
			return fut.Cycle()
		}
	}
	t.Fatalf("future unresolved after %d cycles", budget)
	return 0
}

func TestMapAddressInRange(t *testing.T) {
	f := func(a uint64) bool {
		loc := MapAddress(mem.LineAddr(a % (1 << 34)))
		return loc.Channel >= 0 && loc.Channel < 2 && loc.Bank >= 0 && loc.Bank < 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapAddressSpreadsChannels(t *testing.T) {
	// A long sequential stream must use both channels and several banks.
	chans := map[int]int{}
	banks := map[int]bool{}
	for l := mem.LineAddr(0); l < 4096; l++ {
		loc := MapAddress(l)
		chans[loc.Channel]++
		banks[loc.Bank] = true
	}
	if len(chans) != 2 {
		t.Fatalf("sequential stream used %d channels, want 2", len(chans))
	}
	if ratio := float64(chans[0]) / float64(chans[1]); ratio < 0.5 || ratio > 2 {
		t.Errorf("channel imbalance: %v", chans)
	}
	if len(banks) < 4 {
		t.Errorf("sequential stream used only %d banks", len(banks))
	}
}

func TestSameRowConsecutiveLines(t *testing.T) {
	// Lines differing only in the row-offset bits must map to the same row.
	a := MapAddress(0)
	b := MapAddress(1) // differs in a6
	if a.Row != b.Row {
		t.Errorf("adjacent lines in different rows: %d vs %d", a.Row, b.Row)
	}
}

func TestSingleReadLatency(t *testing.T) {
	p := DefaultParams(1)
	m := New(p)
	fut := Pending()
	if got := m.EnqueueRead(0, 0, fut); got != fut {
		t.Fatal("enqueue did not accept request")
	}
	done := run(t, m, fut, 10000)
	// Closed bank: tRCD + tCL + tBURST bus cycles in core cycles, plus the
	// fixed round-trip overhead.
	min := uint64((p.TRCD+p.TCL+p.TBURST)*p.BusRatio) + p.ExtraLatency
	if done < min {
		t.Errorf("read completed at %d, faster than DRAM timing allows (%d)", done, min)
	}
	if done > min+uint64(2*p.BusRatio) {
		t.Errorf("idle-system read took %d cycles, want about %d", done, min)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	p := DefaultParams(1)

	// Same row twice.
	m1 := New(p)
	f1 := Pending()
	m1.EnqueueRead(0, 0, f1)
	run(t, m1, f1, 10000)
	f2 := Pending()
	start := f1.Cycle()
	m1.EnqueueRead(1, 0, f2) // same row (adjacent line)
	var hitLat uint64
	for now := start; ; now++ {
		m1.Tick(now)
		if f2.Resolved() {
			hitLat = f2.Cycle() - start
			break
		}
	}

	// Same bank, different row -> conflict.
	m2 := New(p)
	g1 := Pending()
	m2.EnqueueRead(0, 0, g1)
	run(t, m2, g1, 10000)
	start = g1.Cycle()
	// Find a line in the same bank+channel but another row.
	base := MapAddress(0)
	var conflictLine mem.LineAddr
	for l := mem.LineAddr(1); ; l++ {
		loc := MapAddress(l)
		if loc.Channel == base.Channel && loc.Bank == base.Bank && loc.Row != base.Row {
			conflictLine = l
			break
		}
	}
	g2 := Pending()
	m2.EnqueueRead(conflictLine, 0, g2)
	var confLat uint64
	for now := start; ; now++ {
		m2.Tick(now)
		if g2.Resolved() {
			confLat = g2.Cycle() - start
			break
		}
	}
	if hitLat >= confLat {
		t.Errorf("row hit (%d cycles) not faster than row conflict (%d)", hitLat, confLat)
	}
}

func TestReadMergingSameLine(t *testing.T) {
	m := New(DefaultParams(1))
	f1 := Pending()
	f2 := Pending()
	got1 := m.EnqueueRead(42, 0, f1)
	got2 := m.EnqueueRead(42, 0, f2)
	if got1 != f1 {
		t.Fatal("first enqueue did not keep its future")
	}
	if got2 != f1 {
		t.Error("duplicate read was not merged onto the pending future")
	}
	if s := m.TotalStats(); s.MergedReads != 1 {
		t.Errorf("MergedReads = %d, want 1", s.MergedReads)
	}
}

func TestReadQueueFull(t *testing.T) {
	p := DefaultParams(1)
	p.ReadQueueLen = 2
	m := New(p)
	// Fill channel 0's queue with distinct lines on the same channel.
	ch0 := []mem.LineAddr{}
	for l := mem.LineAddr(0); len(ch0) < 3; l++ {
		if MapAddress(l).Channel == 0 {
			ch0 = append(ch0, l)
		}
	}
	if m.EnqueueRead(ch0[0], 0, Pending()) == nil {
		t.Fatal("queue rejected first request")
	}
	if m.EnqueueRead(ch0[1], 0, Pending()) == nil {
		t.Fatal("queue rejected second request")
	}
	if m.EnqueueRead(ch0[2], 0, Pending()) != nil {
		t.Error("queue accepted request beyond capacity")
	}
}

func TestWritesAreCounted(t *testing.T) {
	m := New(DefaultParams(1))
	if !m.EnqueueWrite(7, 0) {
		t.Fatal("write rejected")
	}
	for now := uint64(0); now < 100000 && !m.Idle(); now++ {
		m.Tick(now)
	}
	s := m.TotalStats()
	if s.Writes != 1 {
		t.Errorf("Writes = %d, want 1", s.Writes)
	}
	if m.Accesses() != 1 {
		t.Errorf("Accesses = %d, want 1", m.Accesses())
	}
}

func TestFairnessUnderAsymmetricLoad(t *testing.T) {
	// Core 1 floods the memory system; core 0 issues occasional reads. The
	// urgent mode plus proportional counters must keep core 0's reads from
	// starving: its latency should stay within a small multiple of the
	// unloaded latency.
	p := DefaultParams(2)
	m := New(p)
	var core0Done []uint64
	var issued uint64
	next := mem.LineAddr(1 << 20)
	var pending []*Future

	var core0Fut *Future
	var core0Start uint64
	for now := uint64(0); now < 200000; now++ {
		// Core 1: keep ~16 requests in flight.
		live := 0
		for _, f := range pending {
			if !f.DoneBy(now) {
				live++
			}
		}
		for live < 16 {
			f := Pending()
			if m.EnqueueRead(next, 1, f) != nil {
				pending = append(pending, f)
				next += 97 // scatter across rows
				live++
			} else {
				break
			}
		}
		// Core 0: one read every 2000 cycles.
		if core0Fut == nil && now%2000 == 0 {
			f := Pending()
			if m.EnqueueRead(mem.LineAddr(issued*1024), 0, f) != nil {
				core0Fut = f
				core0Start = now
				issued++
			}
		}
		if core0Fut != nil && core0Fut.DoneBy(now) {
			core0Done = append(core0Done, now-core0Start)
			core0Fut = nil
		}
		m.Tick(now)
	}
	if len(core0Done) < 10 {
		t.Fatalf("core 0 completed only %d reads", len(core0Done))
	}
	var sum uint64
	for _, d := range core0Done {
		sum += d
	}
	avg := sum / uint64(len(core0Done))
	if avg > 2500 {
		t.Errorf("core 0 average latency %d cycles under load: starving", avg)
	}
}

func TestUrgentModeFires(t *testing.T) {
	p := DefaultParams(2)
	m := New(p)
	// Give core 1 a huge served history, then have both cores request.
	next := mem.LineAddr(0)
	for now := uint64(0); now < 100000; now++ {
		f := Pending()
		m.EnqueueRead(next, 1, f)
		next += 131
		if now%10 == 0 {
			m.EnqueueRead(mem.LineAddr(1<<25)+next, 0, Pending())
		}
		m.Tick(now)
	}
	if s := m.TotalStats(); s.UrgentReads == 0 {
		t.Error("urgent mode never fired under heavy asymmetry")
	}
}

func TestStreamBandwidthBounded(t *testing.T) {
	// A saturating sequential stream cannot exceed one line per tBURST per
	// channel.
	p := DefaultParams(1)
	m := New(p)
	const n = 512
	futures := make([]*Future, 0, n)
	next := mem.LineAddr(0)
	now := uint64(0)
	for len(futures) < n {
		f := Pending()
		if m.EnqueueRead(next, 0, f) != nil {
			futures = append(futures, f)
			next++
		}
		m.Tick(now)
		now++
	}
	for !m.Idle() {
		m.Tick(now)
		now++
	}
	var last uint64
	for _, f := range futures {
		if !f.Resolved() {
			t.Fatal("unresolved stream read")
		}
		if f.Cycle() > last {
			last = f.Cycle()
		}
	}
	minCycles := uint64(n) * uint64(p.TBURST*p.BusRatio) / uint64(p.Channels)
	if last < minCycles {
		t.Errorf("stream of %d lines finished in %d cycles; bus bound is %d", n, last, minCycles)
	}
}

func TestFutureResolveKeepsEarliest(t *testing.T) {
	f := Pending()
	f.Resolve(100)
	f.Resolve(200)
	if f.Cycle() != 100 {
		t.Errorf("Cycle = %d, want earliest 100", f.Cycle())
	}
	f.Resolve(50)
	if f.Cycle() != 50 {
		t.Errorf("Cycle = %d, want 50 after earlier resolve", f.Cycle())
	}
	if !f.DoneBy(50) || f.DoneBy(49) {
		t.Error("DoneBy boundary wrong")
	}
}
