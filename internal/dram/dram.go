package dram

import "bopsim/internal/mem"

// Memory is the full main-memory system: one controller per channel, with
// requests routed by the address mapping of section 5.3.
type Memory struct {
	p        Params
	channels []*controller
}

// New builds a memory system with the given parameters.
func New(p Params) *Memory {
	m := &Memory{p: p, channels: make([]*controller, p.Channels)}
	for i := range m.channels {
		m.channels[i] = newController(p)
	}
	return m
}

// Params returns the memory parameters.
func (m *Memory) Params() Params { return m.p }

// EnqueueRead queues a read of line for core. It returns the future that
// will carry the completion cycle — the caller's own fut, or an earlier
// request's future when the read was merged — and nil when the core's read
// queue on the target channel is full (caller retries later).
func (m *Memory) EnqueueRead(line mem.LineAddr, core int, fut *Future) *Future {
	return m.channels[MapAddress(line).Channel].enqueueRead(line, core, fut)
}

// EnqueueWrite queues a write-back of line for core; false when full.
func (m *Memory) EnqueueWrite(line mem.LineAddr, core int) bool {
	return m.channels[MapAddress(line).Channel].enqueueWrite(line, core)
}

// Tick advances the memory system to core cycle now. Controllers make one
// scheduling decision per bus cycle.
func (m *Memory) Tick(now uint64) {
	if now%uint64(m.p.BusRatio) != 0 {
		return
	}
	for _, c := range m.channels {
		c.schedule(now)
	}
}

// NextEvent returns the earliest cycle at or after now at which the memory
// system can do work: the next bus-cycle boundary while any request is
// queued, or ^uint64(0) when every controller is idle. Issued requests need
// no events — their completion cycles were computed at issue time and live
// in resolved futures; only queued requests await scheduling decisions.
func (m *Memory) NextEvent(now uint64) uint64 {
	if m.Idle() {
		return ^uint64(0)
	}
	br := uint64(m.p.BusRatio)
	if rem := now % br; rem != 0 {
		return now + (br - rem)
	}
	return now
}

// Idle reports whether no requests are pending anywhere.
func (m *Memory) Idle() bool {
	for _, c := range m.channels {
		if !c.idle() {
			return false
		}
	}
	return true
}

// TotalStats sums the per-channel statistics.
func (m *Memory) TotalStats() Stats {
	var s Stats
	s.PerCoreReads = make([]uint64, m.p.NumCores)
	for _, c := range m.channels {
		s.Reads += c.stats.Reads
		s.Writes += c.stats.Writes
		s.RowHits += c.stats.RowHits
		s.RowClosed += c.stats.RowClosed
		s.RowConflicts += c.stats.RowConflicts
		s.UrgentReads += c.stats.UrgentReads
		s.WriteBursts += c.stats.WriteBursts
		s.MergedReads += c.stats.MergedReads
		for i, v := range c.stats.PerCoreReads {
			s.PerCoreReads[i] += v
		}
	}
	return s
}

// Accesses returns the total number of DRAM accesses (reads + writes), the
// quantity Figure 13 reports per kilo-instruction.
func (m *Memory) Accesses() uint64 {
	s := m.TotalStats()
	return s.Reads + s.Writes
}
