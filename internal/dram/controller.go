package dram

import (
	"bopsim/internal/cache"
	"bopsim/internal/mem"
)

// request is one read or write in a controller queue.
type request struct {
	line   mem.LineAddr
	core   int
	loc    Location
	seq    uint64 // arrival order, for FCFS tie-breaking
	future *Future
	write  bool
}

// bankState tracks one DRAM bank's open row and command timing. Row-buffer
// hits to an open row pipeline at the data-bus rate (CAS-to-CAS is bounded
// by tBURST via the shared bus); row changes pay precharge + activate and
// respect tRAS/tRTP/tWR before the precharge may start.
type bankState struct {
	openRow    int64  // -1 = closed (precharged)
	rowOpenAt  uint64 // cycle the open row's data becomes CAS-able (ACT+tRCD)
	preReadyAt uint64 // earliest cycle a precharge may start (tRAS/tRTP/tWR)
}

// Stats are the per-controller event counts used by Figure 13 and the
// fairness experiments.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowClosed    uint64
	RowConflicts uint64
	UrgentReads  uint64
	WriteBursts  uint64
	MergedReads  uint64
	PerCoreReads []uint64
}

// controller is one memory channel: per-core read/write queues, bank and
// bus availability, and the steady/urgent FR-FCFS scheduler of section 5.3.
type controller struct {
	p      Params
	banks  []bankState
	readQ  [][]*request // [core][...]
	writeQ [][]*request
	// fair holds one 7-bit proportional counter per core, incremented when
	// a read from that core is selected for issue.
	fair          *cache.PropCounters
	served        int
	busFreeAt     uint64
	writesInBatch int
	seq           uint64
	pendingReads  int
	pendingWrites int
	stats         Stats
	// freeReqs is a free list of request objects; a request returns to it
	// when it is issued, so steady-state traffic allocates none.
	freeReqs []*request
}

func (c *controller) newRequest() *request {
	if n := len(c.freeReqs); n > 0 {
		r := c.freeReqs[n-1]
		c.freeReqs = c.freeReqs[:n-1]
		return r
	}
	//bovet:allow hotalloc free-list miss only while the queues grow toward steady state; every issued request is recycled
	return &request{}
}

func (c *controller) release(r *request) {
	*r = request{}
	c.freeReqs = append(c.freeReqs, r)
}

func newController(p Params) *controller {
	c := &controller{
		p:      p,
		banks:  make([]bankState, p.Banks),
		readQ:  make([][]*request, p.NumCores),
		writeQ: make([][]*request, p.NumCores),
		fair:   cache.NewPropCounters(p.NumCores, 7),
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	c.stats.PerCoreReads = make([]uint64, p.NumCores)
	return c
}

// enqueueRead adds a read for line on behalf of core. If the same line is
// already pending in any read queue of this channel, the new request is
// merged onto the existing future (the paper's associative search before
// insertion, footnote 13) and the existing Future is returned. It returns
// nil when core's read queue is full; the caller must retry later.
func (c *controller) enqueueRead(line mem.LineAddr, core int, fut *Future) *Future {
	for _, q := range c.readQ {
		for _, r := range q {
			if r.line == line {
				c.stats.MergedReads++
				return r.future
			}
		}
	}
	if len(c.readQ[core]) >= c.p.ReadQueueLen {
		return nil
	}
	c.seq++
	r := c.newRequest()
	r.line, r.core, r.loc, r.seq, r.future = line, core, MapAddress(line), c.seq, fut
	c.readQ[core] = append(c.readQ[core], r)
	c.pendingReads++
	return fut
}

// enqueueWrite adds a write-back; it reports false when the queue is full.
func (c *controller) enqueueWrite(line mem.LineAddr, core int) bool {
	if len(c.writeQ[core]) >= c.p.WriteQueueLen {
		return false
	}
	c.seq++
	r := c.newRequest()
	r.line, r.core, r.loc, r.seq, r.write = line, core, MapAddress(line), c.seq, true
	c.writeQ[core] = append(c.writeQ[core], r)
	c.pendingWrites++
	return true
}

func (c *controller) idle() bool { return c.pendingReads == 0 && c.pendingWrites == 0 }

// rowHit reports whether r targets the currently open row of its bank.
func (c *controller) rowHit(r *request) bool {
	return c.banks[r.loc.Bank].openRow == int64(r.loc.Row)
}

// pickRead returns the index of the request to issue from q under FR-FCFS:
// the oldest row-hit request if any, else the oldest request.
func (c *controller) pickRead(q []*request) int {
	best, bestHit := -1, false
	for i, r := range q {
		hit := c.rowHit(r)
		switch {
		case best < 0:
			best, bestHit = i, hit
		case hit && !bestHit:
			best, bestHit = i, true
		case hit == bestHit && r.seq < q[best].seq:
			best = i
		}
	}
	return best
}

// pickWrite selects a write from any core's write queue, preferring row
// hits (out-of-order write draining for row locality, section 5.3).
func (c *controller) pickWrite() (core, idx int) {
	core, idx = -1, -1
	bestHit := false
	var bestSeq uint64
	for cr, q := range c.writeQ {
		for i, r := range q {
			hit := c.rowHit(r)
			switch {
			case core < 0, hit && !bestHit, hit == bestHit && r.seq < bestSeq:
				core, idx, bestHit, bestSeq = cr, i, hit, r.seq
			}
		}
	}
	return core, idx
}

func remove(q []*request, i int) []*request { return append(q[:i], q[i+1:]...) }

// anyWriteQueueFull reports whether some core's write queue is full, which
// both triggers a write burst and permits changing the served core.
func (c *controller) anyWriteQueueFull() bool {
	for _, q := range c.writeQ {
		if len(q) >= c.p.WriteQueueLen {
			return true
		}
	}
	return false
}

// laggingCore returns the core with the smallest fairness counter among
// cores with a non-empty read queue, or -1 if no reads are pending.
func (c *controller) laggingCore() int {
	best := -1
	for core := range c.readQ {
		if len(c.readQ[core]) == 0 {
			continue
		}
		if best < 0 || c.fair.Value(core) < c.fair.Value(best) {
			best = core
		}
	}
	return best
}

// schedule is called once per bus cycle and selects at most one request.
func (c *controller) schedule(now uint64) {
	if c.idle() {
		return
	}
	// Continue an in-progress write burst first.
	if c.writesInBatch > 0 && c.pendingWrites > 0 {
		c.issueWrite(now)
		return
	}
	c.writesInBatch = 0

	// Urgent mode preempts steady mode: serve the lagging core when it has
	// fallen too far behind the served core (section 5.3; the paper also
	// gates on L3 fill-queue space, which we approximate as always true).
	// served can be -1 right after a write burst forced re-election.
	if lag := c.laggingCore(); c.served >= 0 && lag >= 0 && lag != c.served {
		if c.fair.Value(c.served) > c.fair.Value(lag) &&
			c.fair.Value(c.served)-c.fair.Value(lag) > c.p.UrgentThreshold {
			c.stats.UrgentReads++
			c.issueRead(lag, now)
			return
		}
	}

	// A full write queue forces a write burst and permits re-electing the
	// served core afterwards.
	if c.anyWriteQueueFull() {
		c.writesInBatch = c.p.WriteBatch
		c.served = -1 // force re-election on the next read
		c.issueWrite(now)
		return
	}

	// Steady mode: keep serving the served core while it has a pending read
	// hitting an open row; otherwise elect the core with the smallest
	// fairness counter among those with pending reads.
	if c.pendingReads > 0 {
		if c.served >= 0 && len(c.readQ[c.served]) > 0 {
			if i := c.pickRead(c.readQ[c.served]); i >= 0 && c.rowHit(c.readQ[c.served][i]) {
				c.issueReadIdx(c.served, i, now)
				return
			}
		}
		next := c.laggingCore()
		c.served = next
		c.issueRead(next, now)
		return
	}

	// No reads pending: drain writes in a batch.
	if c.pendingWrites > 0 {
		c.writesInBatch = c.p.WriteBatch
		c.issueWrite(now)
	}
}

func (c *controller) issueRead(core int, now uint64) {
	i := c.pickRead(c.readQ[core])
	if i < 0 {
		return
	}
	c.issueReadIdx(core, i, now)
}

func (c *controller) issueReadIdx(core, i int, now uint64) {
	r := c.readQ[core][i]
	c.readQ[core] = remove(c.readQ[core], i)
	c.pendingReads--
	c.fair.Inc(core)
	c.stats.Reads++
	c.stats.PerCoreReads[core]++
	done := c.access(r, now)
	r.future.Resolve(done + c.p.ExtraLatency)
	c.release(r)
}

func (c *controller) issueWrite(now uint64) {
	core, i := c.pickWrite()
	if core < 0 {
		c.writesInBatch = 0
		return
	}
	r := c.writeQ[core][i]
	c.writeQ[core] = remove(c.writeQ[core], i)
	c.pendingWrites--
	c.stats.Writes++
	if c.writesInBatch > 0 {
		c.writesInBatch--
	}
	c.stats.WriteBursts++
	c.access(r, now)
	c.release(r)
}

// access performs the bank/bus timing for request r starting no earlier
// than now and returns the cycle at which the data transfer completes.
func (c *controller) access(r *request, now uint64) uint64 {
	br := uint64(c.p.BusRatio)
	bank := &c.banks[r.loc.Bank]

	switch {
	case bank.openRow == int64(r.loc.Row):
		c.stats.RowHits++
	case bank.openRow < 0:
		// Closed bank: activate immediately.
		c.stats.RowClosed++
		act := now
		bank.rowOpenAt = act + uint64(c.p.TRCD)*br
		bank.preReadyAt = act + uint64(c.p.TRAS)*br
	default:
		// Conflict: precharge (once allowed), then activate.
		c.stats.RowConflicts++
		pre := max64(now, bank.preReadyAt)
		act := pre + uint64(c.p.TRP)*br
		bank.rowOpenAt = act + uint64(c.p.TRCD)*br
		bank.preReadyAt = act + uint64(c.p.TRAS)*br
	}
	bank.openRow = int64(r.loc.Row)

	cas := uint64(c.p.TCL) * br
	if r.write {
		cas = uint64(c.p.TCWL) * br
	}
	cmd := max64(now, bank.rowOpenAt)
	// CAS-to-CAS pipelining: consecutive column accesses to open rows are
	// rate-limited only by the shared data bus (tBURST per transfer).
	dataStart := max64(cmd+cas, c.busFreeAt)
	dataEnd := dataStart + uint64(c.p.TBURST)*br
	c.busFreeAt = dataEnd
	if r.write {
		// Write recovery delays any subsequent precharge of this bank.
		bank.preReadyAt = max64(bank.preReadyAt, dataEnd+uint64(c.p.TWR)*br)
	} else {
		// Read-to-precharge spacing.
		bank.preReadyAt = max64(bank.preReadyAt, cmd+uint64(c.p.TRTP)*br)
	}
	return dataEnd
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
