package dram

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"bopsim/internal/mem"
)

// warmMemory drives mixed read/write traffic through a memory system and
// ticks it until idle, leaving warmed bank rows and scheduler state.
func warmMemory(t *testing.T) *Memory {
	t.Helper()
	m := New(DefaultParams(2))
	for i := 0; i < 64; i++ {
		line := mem.LineAddr(i * 37)
		if m.EnqueueRead(line, i%2, Pending()) == nil {
			t.Fatalf("read %d rejected", i)
		}
		m.EnqueueWrite(line+5000, i%2)
	}
	for now := uint64(0); !m.Idle(); now++ {
		m.Tick(now)
		if now > 1_000_000 {
			t.Fatal("memory never went idle")
		}
	}
	return m
}

// TestMemoryStateRoundTrip saves a warmed (idle) memory system, checks the
// encoding is byte-stable, restores into a fresh system and verifies both
// behave identically from there on.
func TestMemoryStateRoundTrip(t *testing.T) {
	m := warmMemory(t)
	st, err := m.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	var a bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(bytes.NewReader(a.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("DRAM state encode -> decode -> encode is not byte-stable")
	}

	fresh := New(DefaultParams(2))
	if err := fresh.RestoreState(decoded); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("restored DRAM state differs from saved state")
	}

	// Identical traffic from the restored point must resolve at identical
	// cycles (open rows, bus state and fairness counters all participate).
	const start = 2_000_000
	futA, futB := Pending(), Pending()
	m.EnqueueRead(12345, 0, futA)
	fresh.EnqueueRead(12345, 0, futB)
	for now := uint64(start); !(futA.Resolved() && futB.Resolved()); now++ {
		m.Tick(now)
		fresh.Tick(now)
		if now > start+1_000_000 {
			t.Fatal("reads never resolved")
		}
	}
	if futA.Cycle() != futB.Cycle() {
		t.Fatalf("post-restore read resolved at %d on original, %d on restored", futA.Cycle(), futB.Cycle())
	}
	if !reflect.DeepEqual(m.TotalStats(), fresh.TotalStats()) {
		t.Fatal("stats diverged under identical traffic after restore")
	}
}

// TestMemorySaveStateRefusesPending checks an un-drained memory system
// cannot be checkpointed.
func TestMemorySaveStateRefusesPending(t *testing.T) {
	m := New(DefaultParams(1))
	if m.EnqueueRead(1, 0, Pending()) == nil {
		t.Fatal("enqueue rejected")
	}
	if _, err := m.SaveState(); err == nil {
		t.Error("SaveState with a pending read succeeded")
	}
}

// TestMemoryRestoreRejectsMismatch checks geometry mismatches are refused.
func TestMemoryRestoreRejectsMismatch(t *testing.T) {
	m := warmMemory(t)
	st, err := m.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if err := New(DefaultParams(4)).RestoreState(st); err == nil {
		t.Error("restore into a system serving a different core count succeeded")
	}
	bad := st
	bad.Channels = bad.Channels[:1]
	if err := New(DefaultParams(2)).RestoreState(bad); err == nil {
		t.Error("restore with a missing channel succeeded")
	}
}

// TestMemoryResetStats checks counters clear while bank state persists.
func TestMemoryResetStats(t *testing.T) {
	m := warmMemory(t)
	if m.Accesses() == 0 {
		t.Fatal("warmup produced no accesses")
	}
	st, err := m.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	m.ResetStats()
	if m.Accesses() != 0 {
		t.Fatal("ResetStats left access counters non-zero")
	}
	st2, err := m.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Channels[0].Banks, st2.Channels[0].Banks) {
		t.Fatal("ResetStats disturbed bank state")
	}
}
