package dram

// Future is the completion handle of an in-flight memory request. A request
// whose service time is not yet known (queued behind other DRAM traffic)
// carries a pending Future; the controller resolves it with the cycle at
// which the data transfer completes. Cache hits resolve futures immediately.
type Future struct {
	cycle    uint64
	resolved bool
}

// ResolvedAt returns a future already resolved at cycle.
func ResolvedAt(cycle uint64) *Future {
	return &Future{cycle: cycle, resolved: true}
}

// Pending returns an unresolved future.
func Pending() *Future { return &Future{} }

// Resolve marks the future complete at cycle. Resolving twice keeps the
// earliest completion (a request can be satisfied by a fill-queue match
// racing with its own DRAM access).
func (f *Future) Resolve(cycle uint64) {
	if f.resolved && f.cycle <= cycle {
		return
	}
	f.cycle = cycle
	f.resolved = true
}

// Resolved reports whether the completion time is known.
func (f *Future) Resolved() bool { return f.resolved }

// Cycle returns the completion cycle; only meaningful once Resolved.
func (f *Future) Cycle() uint64 { return f.cycle }

// DoneBy reports whether the request has completed at or before now.
func (f *Future) DoneBy(now uint64) bool { return f.resolved && f.cycle <= now }

// arenaSlab is the number of futures carved per heap allocation.
const arenaSlab = 4096

// Arena hands out Futures carved from slab allocations, so the steady-state
// miss path costs one heap allocation per slab instead of one per request.
// Individual futures are never recycled — MSHR merges and read-queue merges
// alias them freely, so no single release point exists — but a slab is
// collected as a unit once every future carved from it has been dropped.
type Arena struct {
	slab []Future
}

// Pending returns an unresolved future carved from the arena.
func (a *Arena) Pending() *Future {
	if len(a.slab) == 0 {
		//bovet:allow hotalloc one slab allocation is amortized over arenaSlab requests; that is the arena's whole point
		a.slab = make([]Future, arenaSlab)
	}
	f := &a.slab[0]
	a.slab = a.slab[1:]
	return f
}
