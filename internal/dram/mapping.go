package dram

import "bopsim/internal/mem"

// Location is the physical DRAM coordinates of a cache line.
type Location struct {
	Channel int
	Bank    int
	Row     uint64
}

// bit extracts bit i of a byte address.
func bit(a uint64, i uint) uint64 { return (a >> i) & 1 }

// MapAddress implements the paper's physical-address-to-DRAM mapping
// (section 5.3). With byte-address bits a32..a6 being the line address
// (a5..a0 the line offset):
//
//	channel (1 bit):  a11 ^ a10 ^ a9 ^ a8
//	bank (3 bits):    (a16^a13, a15^a12, a14^a11)
//	row offset (7b):  (a13,a12,a11,a10,a9,a7,a6)   [position in row buffer]
//	row:              (a32, ..., a17)
//
// The XOR folds make consecutive lines spread over both channels and all
// banks, which is what gives streaming workloads bank- and
// channel-parallelism.
func MapAddress(line mem.LineAddr) Location {
	a := uint64(mem.ByteOf(line))
	ch := bit(a, 11) ^ bit(a, 10) ^ bit(a, 9) ^ bit(a, 8)
	bank := (bit(a, 16)^bit(a, 13))<<2 |
		(bit(a, 15)^bit(a, 12))<<1 |
		(bit(a, 14) ^ bit(a, 11))
	row := a >> 17 // a32..a17 (and above, harmless for a model)
	return Location{Channel: int(ch), Bank: int(bank), Row: row}
}
