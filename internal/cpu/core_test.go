package cpu

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/stride"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// listGen replays a fixed instruction slice, then pads with ALU ops.
type listGen struct {
	insts []trace.Inst
	idx   int
}

func (g *listGen) Name() string { return "list" }
func (g *listGen) Next() trace.Inst {
	if g.idx < len(g.insts) {
		i := g.insts[g.idx]
		g.idx++
		return i
	}
	return trace.Inst{Op: trace.OpALU, PC: 0x10}
}

func newTestSystem(insts []trace.Inst) (*Core, *uncore.Hierarchy) {
	cfg := uncore.DefaultConfig(1, mem.Page4K)
	h := uncore.New(cfg,
		func(int) prefetch.L2Prefetcher { return prefetch.None{} },
		func(int) prefetch.L1Prefetcher { return stride.New() },
		nil)
	c := New(0, DefaultConfig(), h, &listGen{insts: insts})
	return c, h
}

// runCycles advances core+hierarchy together.
func runCycles(c *Core, h *uncore.Hierarchy, n uint64) {
	for now := uint64(0); now < n; now++ {
		c.Cycle(now)
		h.Tick(now)
	}
}

func TestALURetirementRate(t *testing.T) {
	c, h := newTestSystem(nil)
	runCycles(c, h, 1000)
	// Pure ALU stream: IPC should approach the pipeline width.
	ipc := float64(c.Retired) / 1000
	if ipc < 3.5 {
		t.Errorf("ALU-only IPC = %.2f, want close to width 4", ipc)
	}
}

func TestLoadMissStallsRetirement(t *testing.T) {
	insts := []trace.Inst{{Op: trace.OpLoad, PC: 0x20, VA: 0x100000}}
	c, h := newTestSystem(insts)
	runCycles(c, h, 80)
	// The load misses everything; within 80 cycles it cannot retire, and
	// the ROB must have filled behind it (4-wide dispatch fills 256 slots
	// in 64 cycles).
	if c.Retired != 0 {
		t.Errorf("retired %d instructions while the head load was outstanding", c.Retired)
	}
	if c.ROBOccupancy() != DefaultConfig().ROBSize {
		t.Errorf("ROB occupancy = %d, want full %d", c.ROBOccupancy(), DefaultConfig().ROBSize)
	}
	runCycles(c, h, 100000)
	if c.Retired == 0 {
		t.Error("nothing ever retired")
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Two widely separated lines, independent: total time should be near
	// one miss latency, not two.
	single := []trace.Inst{{Op: trace.OpLoad, PC: 0x20, VA: 0x100000}}
	c1, h1 := newTestSystem(single)
	var t1 uint64
	for now := uint64(0); ; now++ {
		c1.Cycle(now)
		h1.Tick(now)
		if c1.Retired >= 1 {
			t1 = now
			break
		}
	}

	double := []trace.Inst{
		{Op: trace.OpLoad, PC: 0x20, VA: 0x100000},
		{Op: trace.OpLoad, PC: 0x24, VA: 0x900000},
	}
	c2, h2 := newTestSystem(double)
	var t2 uint64
	for now := uint64(0); ; now++ {
		c2.Cycle(now)
		h2.Tick(now)
		if c2.Retired >= 2 {
			t2 = now
			break
		}
	}
	if t2 > t1+t1/2 {
		t.Errorf("two independent misses took %d cycles vs %d for one: no overlap", t2, t1)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	indep := []trace.Inst{
		{Op: trace.OpLoad, PC: 0x20, VA: 0x100000},
		{Op: trace.OpLoad, PC: 0x24, VA: 0x900000},
	}
	dep := []trace.Inst{
		{Op: trace.OpLoad, PC: 0x20, VA: 0x100000},
		{Op: trace.OpLoad, PC: 0x24, VA: 0x900000, DepPrevLoad: true},
	}
	finish := func(insts []trace.Inst) uint64 {
		c, h := newTestSystem(insts)
		for now := uint64(0); ; now++ {
			c.Cycle(now)
			h.Tick(now)
			if c.Retired >= 2 {
				return now
			}
		}
	}
	ti, td := finish(indep), finish(dep)
	if td < ti+ti/2 {
		t.Errorf("dependent loads (%d cycles) not meaningfully slower than independent (%d)", td, ti)
	}
}

func TestStoreDoesNotBlockRetirement(t *testing.T) {
	insts := []trace.Inst{{Op: trace.OpStore, PC: 0x20, VA: 0x100000}}
	c, h := newTestSystem(insts)
	runCycles(c, h, 50)
	if c.Retired == 0 {
		t.Error("store blocked retirement despite the store buffer")
	}
}

func TestRetireUpdatesStridePrefetcher(t *testing.T) {
	// Retiring loads must reach the hierarchy's RetireMemOp: a constant
	// 64B stride should eventually make the stride prefetcher issue.
	var insts []trace.Inst
	for i := 0; i < 80; i++ {
		insts = append(insts, trace.Inst{Op: trace.OpLoad, PC: 0x40, VA: mem.Addr(0x200000 + i*64)})
		for j := 0; j < 10; j++ {
			insts = append(insts, trace.Inst{Op: trace.OpALU, PC: 0x44})
		}
	}
	c, h := newTestSystem(insts)
	runCycles(c, h, 300000)
	if h.Stats().StridePrefIssued == 0 {
		t.Error("stride prefetcher never triggered through the retire path")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		c, h := newTestSystem(nil)
		g := trace.MustWorkload("403.gcc", 7)
		c.gen = g
		runCycles(c, h, 20000)
		return c.Retired
	}
	if run() != run() {
		t.Error("identical runs retired different instruction counts")
	}
}
