package cpu

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/stride"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// TestCoreCycleZeroAlloc pins the steady-state cost of the core's hot loop:
// once the ROB ring, request queues, fill-entry pool, DRAM request pool and
// future arena have warmed up, a simulated cycle — Core.Cycle plus the
// Hierarchy.Tick it drives — must not allocate. A regression here silently
// multiplies across hundreds of millions of simulated cycles, so it fails
// the build instead of the profiler.
func TestCoreCycleZeroAlloc(t *testing.T) {
	for _, wl := range []string{"stream", "microthrash", "gups"} {
		t.Run(wl, func(t *testing.T) {
			cfg := uncore.DefaultConfig(1, mem.Page4K)
			h := uncore.New(cfg,
				func(int) prefetch.L2Prefetcher { return prefetch.None{} },
				func(int) prefetch.L1Prefetcher { return stride.New() },
				nil)
			c := New(0, DefaultConfig(), h, trace.MustWorkload(wl, 1))

			now := uint64(0)
			for ; now < 200_000; now++ { // reach steady state: all pools warm
				c.Cycle(now)
				h.Tick(now)
			}
			avg := testing.AllocsPerRun(2000, func() {
				c.Cycle(now)
				h.Tick(now)
				now++
			})
			if avg != 0 {
				t.Errorf("%s: steady-state cycle allocates %.3f objects/cycle, want 0", wl, avg)
			}
		})
	}
}
