package cpu

import (
	"testing"
	"testing/quick"

	"bopsim/internal/mem"
	"bopsim/internal/trace"
)

// recordingGen tags each instruction with a sequence number in its PC so a
// retirement order check is possible.
type recordingGen struct {
	seq  uint64
	rand uint64
}

func (g *recordingGen) Name() string { return "recording" }
func (g *recordingGen) Next() trace.Inst {
	g.seq++
	g.rand = mem.Mix64(g.rand + g.seq)
	switch g.rand % 5 {
	case 0:
		return trace.Inst{Op: trace.OpLoad, PC: g.seq, VA: mem.Addr(g.rand % (1 << 28))}
	case 1:
		return trace.Inst{Op: trace.OpStore, PC: g.seq, VA: mem.Addr(g.rand % (1 << 28))}
	default:
		return trace.Inst{Op: trace.OpALU, PC: g.seq}
	}
}

// TestRetirementDisciplineProperty: whatever the interleaving of hits,
// misses and stores, the retired-instruction count must be monotonic and
// never grow by more than RetireWidth per cycle, and the ROB head (oldest
// entry) must always retire before younger entries (in-order retirement is
// structural: entries leave only from the front of the ROB slice).
func TestRetirementDisciplineProperty(t *testing.T) {
	f := func(seed uint16) bool {
		c, h := newTestSystem(nil)
		c.gen = &recordingGen{rand: uint64(seed)}
		for now := uint64(0); now < 3000; now++ {
			before := c.Retired
			c.Cycle(now)
			h.Tick(now)
			if c.Retired < before || c.Retired-before > uint64(c.cfg.RetireWidth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestROBNeverExceedsCapacity(t *testing.T) {
	c, h := newTestSystem(nil)
	c.gen = &recordingGen{}
	for now := uint64(0); now < 5000; now++ {
		c.Cycle(now)
		h.Tick(now)
		if c.ROBOccupancy() > c.cfg.ROBSize {
			t.Fatalf("ROB occupancy %d exceeds %d at cycle %d",
				c.ROBOccupancy(), c.cfg.ROBSize, now)
		}
	}
}

func TestMSHRStallCounterAdvances(t *testing.T) {
	// A flood of independent misses must eventually stall dispatch on
	// MSHRs.
	c, h := newTestSystem(nil)
	g := &floodGen{}
	c.gen = g
	for now := uint64(0); now < 5000; now++ {
		c.Cycle(now)
		h.Tick(now)
	}
	if c.DispatchStallMSHR == 0 {
		t.Error("no MSHR stalls under a miss flood")
	}
}

type floodGen struct{ n uint64 }

func (g *floodGen) Name() string { return "flood" }
func (g *floodGen) Next() trace.Inst {
	g.n++
	return trace.Inst{Op: trace.OpLoad, PC: 0x30, VA: mem.Addr(g.n * 4096)}
}
