// Package cpu provides the out-of-order core timing model driving the
// memory hierarchy. It is deliberately simple — a reorder buffer with
// bounded dispatch and retire widths and dependence-aware load issue — but
// it captures what matters for prefetching studies: memory-level
// parallelism is bounded by the ROB, independent misses overlap, dependent
// (pointer-chase) loads serialize, and a late prefetch stalls retirement
// for exactly the remaining latency. The paper's own simulator is likewise
// trace-driven without wrong-path effects (section 5).
package cpu

import (
	"fmt"

	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// Config sets the core's pipeline shape. The defaults follow Table 1 in
// spirit; widths are "effective" (post-dependence) rather than peak decode
// widths since the model does not track ALU dependences.
type Config struct {
	DispatchWidth int
	RetireWidth   int
	ROBSize       int
	ALULatency    uint64
}

// DefaultConfig returns the baseline core model.
func DefaultConfig() Config {
	return Config{DispatchWidth: 4, RetireWidth: 4, ROBSize: 256, ALULatency: 1}
}

// robEntry is one in-flight instruction.
type robEntry struct {
	isMem   bool
	isLoad  bool
	pc      uint64
	va      mem.Addr
	doneAt  uint64       // ALU/store completion
	fut     *dram.Future // load completion (nil until issued)
	issued  bool
	dep     *robEntry // load this entry's address depends on (nil if none)
	isWrite bool
}

// Core is one simulated core executing a trace.Generator.
type Core struct {
	ID   int
	cfg  Config
	hier *uncore.Hierarchy
	gen  trace.Generator

	rob     []*robEntry
	waiting []*robEntry // dispatched loads not yet issued (dep or MSHR full)
	paused  bool        // dispatch frozen (warmup-barrier drain)

	lastLoad *robEntry // most recent load, for DepPrevLoad chaining
	pending  *trace.Inst

	// Retired counts retired instructions; Cycles is advanced by the
	// simulation driver via Cycle calls.
	Retired uint64

	// DispatchStallMSHR counts dispatch stalls due to full MSHRs.
	DispatchStallMSHR uint64
}

// New builds a core bound to a hierarchy and an instruction stream.
func New(id int, cfg Config, hier *uncore.Hierarchy, gen trace.Generator) *Core {
	return &Core{ID: id, cfg: cfg, hier: hier, gen: gen}
}

// Cycle advances the core by one clock: retire, issue waiting loads, then
// dispatch new instructions.
func (c *Core) Cycle(now uint64) {
	c.retire(now)
	c.issueWaiting(now)
	c.dispatch(now)
}

func (e *robEntry) done(now uint64) bool {
	if e.isLoad {
		return e.issued && e.fut.DoneBy(now)
	}
	return e.doneAt <= now
}

func (c *Core) retire(now uint64) {
	for n := 0; n < c.cfg.RetireWidth && len(c.rob) > 0; n++ {
		head := c.rob[0]
		if !head.done(now) {
			return
		}
		if head.isMem {
			c.hier.RetireMemOp(c.ID, head.pc, head.va)
		}
		c.rob = c.rob[1:]
		c.Retired++
	}
}

// issueWaiting sends dependence- or MSHR-stalled loads to the hierarchy
// once they are ready.
func (c *Core) issueWaiting(now uint64) {
	if len(c.waiting) == 0 {
		return
	}
	kept := c.waiting[:0]
	for _, e := range c.waiting {
		if e.dep != nil && !e.dep.done(now) {
			kept = append(kept, e)
			continue
		}
		fut := c.hier.Access(c.ID, e.pc, e.va, e.isWrite, now)
		if fut == nil {
			kept = append(kept, e) // MSHRs full; retry next cycle
			continue
		}
		e.fut = fut
		e.issued = true
	}
	c.waiting = kept
}

func (c *Core) dispatch(now uint64) {
	if c.paused {
		return
	}
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if len(c.rob) >= c.cfg.ROBSize {
			return
		}
		var inst trace.Inst
		if c.pending != nil {
			inst = *c.pending
			c.pending = nil
		} else {
			inst = c.gen.Next()
		}
		switch inst.Op {
		case trace.OpALU:
			c.rob = append(c.rob, &robEntry{doneAt: now + c.cfg.ALULatency, pc: inst.PC})
		case trace.OpLoad:
			e := &robEntry{isMem: true, isLoad: true, pc: inst.PC, va: inst.VA}
			if inst.DepPrevLoad && c.lastLoad != nil && !c.lastLoad.done(now) {
				e.dep = c.lastLoad
				c.waiting = append(c.waiting, e)
			} else {
				fut := c.hier.Access(c.ID, inst.PC, inst.VA, false, now)
				if fut == nil {
					c.DispatchStallMSHR++
					c.pending = &inst
					return
				}
				e.fut = fut
				e.issued = true
			}
			c.rob = append(c.rob, e)
			c.lastLoad = e
		case trace.OpStore:
			// Stores retire through the store buffer without waiting for
			// the fill, but still generate the write-allocate traffic.
			fut := c.hier.Access(c.ID, inst.PC, inst.VA, true, now)
			if fut == nil {
				c.DispatchStallMSHR++
				c.pending = &inst
				return
			}
			c.rob = append(c.rob, &robEntry{
				isMem: true, pc: inst.PC, va: inst.VA,
				doneAt: now + c.cfg.ALULatency, isWrite: true,
			})
		}
	}
}

// ROBOccupancy returns the current reorder-buffer fill, for tests.
func (c *Core) ROBOccupancy() int { return len(c.rob) }

// SetPaused freezes (true) or resumes (false) instruction dispatch. A
// paused core still retires and issues already-dispatched work, so running
// a paused machine drains its in-flight state — the warmup barrier pauses
// every core, waits for the pipeline and the uncore to run dry, and only
// then considers the machine checkpointable.
func (c *Core) SetPaused(p bool) { c.paused = p }

// Quiesced reports whether the core has no in-flight instructions: the ROB
// and the issue-waiting list are empty. A fetched-but-undispatched
// instruction (Pending in the state below) does not count — it is pure
// cursor state.
func (c *Core) Quiesced() bool { return len(c.rob) == 0 && len(c.waiting) == 0 }

// ClearDepChain drops the pointer-chase dependence anchor. The barrier
// calls it after the drain: every in-flight load has retired, so the anchor
// can only be a completed load — behaviourally identical to nil — and
// clearing it makes the drained state literally equal to a restored one.
func (c *Core) ClearDepChain() { c.lastLoad = nil }

// State is the serialized state of a quiesced core: its counters, the
// fetched-but-undispatched instruction (if any) and the generator cursor.
type State struct {
	Retired           uint64
	DispatchStallMSHR uint64
	Pending           *trace.Inst
	Gen               trace.GenState
}

// SaveState serializes the core. It reports an error when the core still
// has in-flight instructions (callers must drain first) or when its
// generator cannot be checkpointed.
func (c *Core) SaveState() (State, error) {
	if !c.Quiesced() {
		return State{}, fmt.Errorf("cpu: core %d has in-flight instructions, cannot checkpoint", c.ID)
	}
	sg, ok := c.gen.(trace.StatefulGenerator)
	if !ok {
		return State{}, fmt.Errorf("cpu: core %d generator %s does not support checkpointing", c.ID, c.gen.Name())
	}
	st := State{Retired: c.Retired, DispatchStallMSHR: c.DispatchStallMSHR, Gen: sg.SaveGenState()}
	if c.pending != nil {
		p := *c.pending
		st.Pending = &p
	}
	return st, nil
}

// RestoreState replaces a freshly constructed core's state with a
// previously saved one.
func (c *Core) RestoreState(st State) error {
	if !c.Quiesced() {
		return fmt.Errorf("cpu: core %d has in-flight instructions, cannot restore", c.ID)
	}
	sg, ok := c.gen.(trace.StatefulGenerator)
	if !ok {
		return fmt.Errorf("cpu: core %d generator %s does not support checkpointing", c.ID, c.gen.Name())
	}
	if err := sg.RestoreGenState(st.Gen); err != nil {
		return fmt.Errorf("cpu: core %d: %w", c.ID, err)
	}
	c.Retired = st.Retired
	c.DispatchStallMSHR = st.DispatchStallMSHR
	c.pending = nil
	if st.Pending != nil {
		p := *st.Pending
		c.pending = &p
	}
	c.lastLoad = nil
	return nil
}
