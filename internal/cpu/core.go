// Package cpu provides the out-of-order core timing model driving the
// memory hierarchy. It is deliberately simple — a reorder buffer with
// bounded dispatch and retire widths and dependence-aware load issue — but
// it captures what matters for prefetching studies: memory-level
// parallelism is bounded by the ROB, independent misses overlap, dependent
// (pointer-chase) loads serialize, and a late prefetch stalls retirement
// for exactly the remaining latency. The paper's own simulator is likewise
// trace-driven without wrong-path effects (section 5).
package cpu

import (
	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// Config sets the core's pipeline shape. The defaults follow Table 1 in
// spirit; widths are "effective" (post-dependence) rather than peak decode
// widths since the model does not track ALU dependences.
type Config struct {
	DispatchWidth int
	RetireWidth   int
	ROBSize       int
	ALULatency    uint64
}

// DefaultConfig returns the baseline core model.
func DefaultConfig() Config {
	return Config{DispatchWidth: 4, RetireWidth: 4, ROBSize: 256, ALULatency: 1}
}

// robEntry is one in-flight instruction.
type robEntry struct {
	isMem   bool
	isLoad  bool
	pc      uint64
	va      mem.Addr
	doneAt  uint64       // ALU/store completion
	fut     *dram.Future // load completion (nil until issued)
	issued  bool
	dep     *robEntry // load this entry's address depends on (nil if none)
	isWrite bool
}

// Core is one simulated core executing a trace.Generator.
type Core struct {
	ID   int
	cfg  Config
	hier *uncore.Hierarchy
	gen  trace.Generator

	rob     []*robEntry
	waiting []*robEntry // dispatched loads not yet issued (dep or MSHR full)

	lastLoad *robEntry // most recent load, for DepPrevLoad chaining
	pending  *trace.Inst

	// Retired counts retired instructions; Cycles is advanced by the
	// simulation driver via Cycle calls.
	Retired uint64

	// DispatchStallMSHR counts dispatch stalls due to full MSHRs.
	DispatchStallMSHR uint64
}

// New builds a core bound to a hierarchy and an instruction stream.
func New(id int, cfg Config, hier *uncore.Hierarchy, gen trace.Generator) *Core {
	return &Core{ID: id, cfg: cfg, hier: hier, gen: gen}
}

// Cycle advances the core by one clock: retire, issue waiting loads, then
// dispatch new instructions.
func (c *Core) Cycle(now uint64) {
	c.retire(now)
	c.issueWaiting(now)
	c.dispatch(now)
}

func (e *robEntry) done(now uint64) bool {
	if e.isLoad {
		return e.issued && e.fut.DoneBy(now)
	}
	return e.doneAt <= now
}

func (c *Core) retire(now uint64) {
	for n := 0; n < c.cfg.RetireWidth && len(c.rob) > 0; n++ {
		head := c.rob[0]
		if !head.done(now) {
			return
		}
		if head.isMem {
			c.hier.RetireMemOp(c.ID, head.pc, head.va)
		}
		c.rob = c.rob[1:]
		c.Retired++
	}
}

// issueWaiting sends dependence- or MSHR-stalled loads to the hierarchy
// once they are ready.
func (c *Core) issueWaiting(now uint64) {
	if len(c.waiting) == 0 {
		return
	}
	kept := c.waiting[:0]
	for _, e := range c.waiting {
		if e.dep != nil && !e.dep.done(now) {
			kept = append(kept, e)
			continue
		}
		fut := c.hier.Access(c.ID, e.pc, e.va, e.isWrite, now)
		if fut == nil {
			kept = append(kept, e) // MSHRs full; retry next cycle
			continue
		}
		e.fut = fut
		e.issued = true
	}
	c.waiting = kept
}

func (c *Core) dispatch(now uint64) {
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if len(c.rob) >= c.cfg.ROBSize {
			return
		}
		var inst trace.Inst
		if c.pending != nil {
			inst = *c.pending
			c.pending = nil
		} else {
			inst = c.gen.Next()
		}
		switch inst.Op {
		case trace.OpALU:
			c.rob = append(c.rob, &robEntry{doneAt: now + c.cfg.ALULatency, pc: inst.PC})
		case trace.OpLoad:
			e := &robEntry{isMem: true, isLoad: true, pc: inst.PC, va: inst.VA}
			if inst.DepPrevLoad && c.lastLoad != nil && !c.lastLoad.done(now) {
				e.dep = c.lastLoad
				c.waiting = append(c.waiting, e)
			} else {
				fut := c.hier.Access(c.ID, inst.PC, inst.VA, false, now)
				if fut == nil {
					c.DispatchStallMSHR++
					c.pending = &inst
					return
				}
				e.fut = fut
				e.issued = true
			}
			c.rob = append(c.rob, e)
			c.lastLoad = e
		case trace.OpStore:
			// Stores retire through the store buffer without waiting for
			// the fill, but still generate the write-allocate traffic.
			fut := c.hier.Access(c.ID, inst.PC, inst.VA, true, now)
			if fut == nil {
				c.DispatchStallMSHR++
				c.pending = &inst
				return
			}
			c.rob = append(c.rob, &robEntry{
				isMem: true, pc: inst.PC, va: inst.VA,
				doneAt: now + c.cfg.ALULatency, isWrite: true,
			})
		}
	}
}

// ROBOccupancy returns the current reorder-buffer fill, for tests.
func (c *Core) ROBOccupancy() int { return len(c.rob) }
