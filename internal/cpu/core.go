// Package cpu provides the out-of-order core timing model driving the
// memory hierarchy. It is deliberately simple — a reorder buffer with
// bounded dispatch and retire widths and dependence-aware load issue — but
// it captures what matters for prefetching studies: memory-level
// parallelism is bounded by the ROB, independent misses overlap, dependent
// (pointer-chase) loads serialize, and a late prefetch stalls retirement
// for exactly the remaining latency. The paper's own simulator is likewise
// trace-driven without wrong-path effects (section 5).
package cpu

import (
	"fmt"

	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// Config sets the core's pipeline shape. The defaults follow Table 1 in
// spirit; widths are "effective" (post-dependence) rather than peak decode
// widths since the model does not track ALU dependences.
//
//bovet:schemalock
type Config struct {
	DispatchWidth int
	RetireWidth   int
	ROBSize       int
	ALULatency    uint64
}

// DefaultConfig returns the baseline core model.
func DefaultConfig() Config {
	return Config{DispatchWidth: 4, RetireWidth: 4, ROBSize: 256, ALULatency: 1}
}

// robEntry is one in-flight instruction. Entries live in a fixed ring
// buffer, so "pointers" between them are (slot, seq) pairs: seq is a
// per-entry generation tag bumped at dispatch, and a reference whose seq no
// longer matches the slot's current entry points at an instruction that has
// retired — which, for the load dependences tracked here, means it is done.
type robEntry struct {
	isMem   bool
	isLoad  bool
	issued  bool
	isWrite bool
	pc      uint64
	va      mem.Addr
	seq     uint64
	doneAt  uint64       // completion cycle when fut is nil (ALU, stores, cache-hit loads)
	fut     *dram.Future // in-flight load completion (nil once known)
	depSlot int32        // ring slot of the load this entry's address depends on (-1: none)
	depSeq  uint64
}

// Core is one simulated core executing a trace.Generator.
type Core struct {
	ID   int
	cfg  Config
	hier *uncore.Hierarchy
	gen  trace.Generator

	// In-flight machinery below is deliberately absent from the checkpoint
	// codec: SaveState refuses unless Quiesced() (ROB empty, nothing
	// pending), so at every legal checkpoint these hold no information.
	//bovet:allow statecodec ROB is empty at every legal checkpoint (SaveState requires Quiesced)
	rob []robEntry // ring buffer of cfg.ROBSize entries
	//bovet:allow statecodec ROB is empty at every legal checkpoint (SaveState requires Quiesced)
	robHead int
	robLen  int
	//bovet:allow statecodec generation tags only order in-flight entries, of which a quiesced core has none
	seq     uint64  // next generation tag
	waiting []int32 // slots of dispatched loads not yet issued (dep or MSHR full)
	//bovet:allow statecodec barrier bookkeeping; engine.Restore rebuilds the barrier from Options
	paused bool // dispatch frozen (warmup-barrier drain)

	lastLoadSlot int32 // most recent load, for DepPrevLoad chaining (-1: none)
	//bovet:allow statecodec chains dependencies onto in-flight loads, of which a quiesced core has none
	lastLoadSeq uint64

	pending    trace.Inst // fetched instruction that could not dispatch (MSHRs full)
	hasPending bool

	// Retired counts retired instructions; Cycles is advanced by the
	// simulation driver via Cycle calls.
	Retired uint64

	// DispatchStallMSHR counts dispatch stalls due to full MSHRs.
	DispatchStallMSHR uint64
}

// New builds a core bound to a hierarchy and an instruction stream.
func New(id int, cfg Config, hier *uncore.Hierarchy, gen trace.Generator) *Core {
	return &Core{
		ID: id, cfg: cfg, hier: hier, gen: gen,
		rob:          make([]robEntry, cfg.ROBSize),
		lastLoadSlot: -1,
	}
}

// Cycle advances the core by one clock: retire, issue waiting loads, then
// dispatch new instructions.
//
//bovet:hotpath
func (c *Core) Cycle(now uint64) {
	c.retire(now)
	c.issueWaiting(now)
	c.dispatch(now)
}

func (e *robEntry) done(now uint64) bool {
	if e.isLoad {
		if !e.issued {
			return false
		}
		if e.fut != nil {
			return e.fut.DoneBy(now)
		}
	}
	return e.doneAt <= now
}

// readyTime returns the cycle the entry completes, when that is already
// known. It is unknown for loads not yet issued and loads whose future has
// not resolved; those complete via a hierarchy or DRAM event.
func (e *robEntry) readyTime() (uint64, bool) {
	if e.isLoad {
		if !e.issued {
			return 0, false
		}
		if e.fut != nil {
			if !e.fut.Resolved() {
				return 0, false
			}
			return e.fut.Cycle(), true
		}
	}
	return e.doneAt, true
}

// depEntry returns the entry e's address depends on, or nil when the
// dependence is absent or already retired (a retired load is done).
func (c *Core) depEntry(e *robEntry) *robEntry {
	if e.depSlot < 0 {
		return nil
	}
	d := &c.rob[e.depSlot]
	if d.seq != e.depSeq {
		return nil // slot recycled: the dep retired long ago
	}
	return d
}

func (c *Core) retire(now uint64) {
	for n := 0; n < c.cfg.RetireWidth && c.robLen > 0; n++ {
		head := &c.rob[c.robHead]
		if !head.done(now) {
			return
		}
		if head.isMem {
			c.hier.RetireMemOp(c.ID, head.pc, head.va)
		}
		head.fut = nil // release the future; the seq tag stays for dep checks
		c.robHead++
		if c.robHead == c.cfg.ROBSize {
			c.robHead = 0
		}
		c.robLen--
		c.Retired++
	}
}

// issueWaiting sends dependence- or MSHR-stalled loads to the hierarchy
// once they are ready.
func (c *Core) issueWaiting(now uint64) {
	if len(c.waiting) == 0 {
		return
	}
	kept := c.waiting[:0]
	for _, slot := range c.waiting {
		e := &c.rob[slot]
		if d := c.depEntry(e); d != nil && !d.done(now) {
			kept = append(kept, slot)
			continue
		}
		done, fut, ok := c.hier.Demand(c.ID, e.pc, e.va, e.isWrite, now)
		if !ok {
			kept = append(kept, slot) // MSHRs full; retry next cycle
			continue
		}
		e.doneAt, e.fut = done, fut
		e.issued = true
	}
	c.waiting = kept
}

// push appends a new entry at the ring tail and returns its slot.
func (c *Core) push(e robEntry) int32 {
	slot := c.robHead + c.robLen
	if slot >= c.cfg.ROBSize {
		slot -= c.cfg.ROBSize
	}
	c.seq++
	e.seq = c.seq
	c.rob[slot] = e
	c.robLen++
	return int32(slot)
}

// lastLoad returns the most recent load's entry while it is still in
// flight, or nil when there is none or it has retired.
func (c *Core) lastLoad() *robEntry {
	if c.lastLoadSlot < 0 {
		return nil
	}
	d := &c.rob[c.lastLoadSlot]
	if d.seq != c.lastLoadSeq {
		return nil
	}
	return d
}

func (c *Core) dispatch(now uint64) {
	if c.paused {
		return
	}
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if c.robLen >= c.cfg.ROBSize {
			return
		}
		var inst trace.Inst
		if c.hasPending {
			inst = c.pending
			c.hasPending = false
		} else {
			inst = c.gen.Next()
		}
		switch inst.Op {
		case trace.OpALU:
			c.push(robEntry{doneAt: now + c.cfg.ALULatency, pc: inst.PC})
		case trace.OpLoad:
			e := robEntry{isMem: true, isLoad: true, pc: inst.PC, va: inst.VA, depSlot: -1}
			if d := c.lastLoad(); inst.DepPrevLoad && d != nil && !d.done(now) {
				e.depSlot, e.depSeq = c.lastLoadSlot, c.lastLoadSeq
				slot := c.push(e)
				c.waiting = append(c.waiting, slot)
				c.lastLoadSlot, c.lastLoadSeq = slot, c.rob[slot].seq
			} else {
				done, fut, ok := c.hier.Demand(c.ID, inst.PC, inst.VA, false, now)
				if !ok {
					c.DispatchStallMSHR++
					c.pending = inst
					c.hasPending = true
					return
				}
				e.doneAt, e.fut = done, fut
				e.issued = true
				slot := c.push(e)
				c.lastLoadSlot, c.lastLoadSeq = slot, c.rob[slot].seq
			}
		case trace.OpStore:
			// Stores retire through the store buffer without waiting for
			// the fill, but still generate the write-allocate traffic.
			_, _, ok := c.hier.Demand(c.ID, inst.PC, inst.VA, true, now)
			if !ok {
				c.DispatchStallMSHR++
				c.pending = inst
				c.hasPending = true
				return
			}
			c.push(robEntry{
				isMem: true, pc: inst.PC, va: inst.VA, depSlot: -1,
				doneAt: now + c.cfg.ALULatency, isWrite: true,
			})
		}
	}
}

// NextEvent returns the earliest cycle at or after now at which the core
// can make progress, or ^uint64(0) when no event is scheduled (progress, if
// any, will come from a hierarchy or DRAM completion). It returns now
// whenever the core would do real work this cycle — dispatching, attempting
// an issue, or retiring — because those paths have side effects (generator
// consumption, cache/TLB/prefetcher state updates) on every cycle they run.
func (c *Core) NextEvent(now uint64) uint64 {
	if !c.paused && c.robLen < c.cfg.ROBSize {
		return now // dispatch will run this cycle
	}
	next := ^uint64(0)
	if c.robLen > 0 {
		if t, known := c.rob[c.robHead].readyTime(); known {
			if t <= now {
				return now // head retires this cycle
			}
			next = t
		}
	}
	for _, slot := range c.waiting {
		e := &c.rob[slot]
		d := c.depEntry(e)
		if d == nil || d.done(now) {
			return now // will attempt issue (side-effectful) this cycle
		}
		if t, known := d.readyTime(); known && t < next {
			next = t
		}
	}
	return next
}

// ROBOccupancy returns the current reorder-buffer fill, for tests.
func (c *Core) ROBOccupancy() int { return c.robLen }

// SetPaused freezes (true) or resumes (false) instruction dispatch. A
// paused core still retires and issues already-dispatched work, so running
// a paused machine drains its in-flight state — the warmup barrier pauses
// every core, waits for the pipeline and the uncore to run dry, and only
// then considers the machine checkpointable.
func (c *Core) SetPaused(p bool) { c.paused = p }

// Quiesced reports whether the core has no in-flight instructions: the ROB
// and the issue-waiting list are empty. A fetched-but-undispatched
// instruction (Pending in the state below) does not count — it is pure
// cursor state.
func (c *Core) Quiesced() bool { return c.robLen == 0 && len(c.waiting) == 0 }

// ClearDepChain drops the pointer-chase dependence anchor. The barrier
// calls it after the drain: every in-flight load has retired, so the anchor
// can only be a completed load — behaviourally identical to nil — and
// clearing it makes the drained state literally equal to a restored one.
func (c *Core) ClearDepChain() { c.lastLoadSlot = -1 }

// State is the serialized state of a quiesced core: its counters, the
// fetched-but-undispatched instruction (if any) and the generator cursor.
type State struct {
	Retired           uint64
	DispatchStallMSHR uint64
	Pending           *trace.Inst
	Gen               trace.GenState
}

// SaveState serializes the core. It reports an error when the core still
// has in-flight instructions (callers must drain first) or when its
// generator cannot be checkpointed.
func (c *Core) SaveState() (State, error) {
	if !c.Quiesced() {
		return State{}, fmt.Errorf("cpu: core %d has in-flight instructions, cannot checkpoint", c.ID)
	}
	sg, ok := c.gen.(trace.StatefulGenerator)
	if !ok {
		return State{}, fmt.Errorf("cpu: core %d generator %s does not support checkpointing", c.ID, c.gen.Name())
	}
	st := State{Retired: c.Retired, DispatchStallMSHR: c.DispatchStallMSHR, Gen: sg.SaveGenState()}
	if c.hasPending {
		p := c.pending
		st.Pending = &p
	}
	return st, nil
}

// RestoreState replaces a freshly constructed core's state with a
// previously saved one.
func (c *Core) RestoreState(st State) error {
	if !c.Quiesced() {
		return fmt.Errorf("cpu: core %d has in-flight instructions, cannot restore", c.ID)
	}
	sg, ok := c.gen.(trace.StatefulGenerator)
	if !ok {
		return fmt.Errorf("cpu: core %d generator %s does not support checkpointing", c.ID, c.gen.Name())
	}
	if err := sg.RestoreGenState(st.Gen); err != nil {
		return fmt.Errorf("cpu: core %d: %w", c.ID, err)
	}
	c.Retired = st.Retired
	c.DispatchStallMSHR = st.DispatchStallMSHR
	c.hasPending = false
	if st.Pending != nil {
		c.pending = *st.Pending
		c.hasPending = true
	}
	c.lastLoadSlot = -1
	return nil
}
