package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountersAddGet(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("a", 4)
	c.Add("b", 2)
	if got := c.Get("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := c.Get("b"); got != 2 {
		t.Errorf("b = %d, want 2", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
}

func TestCountersMerge(t *testing.T) {
	a, b := NewCounters(), NewCounters()
	a.Add("x", 3)
	b.Add("x", 4)
	b.Add("y", 1)
	a.Merge(b)
	if a.Get("x") != 7 || a.Get("y") != 1 {
		t.Errorf("merge produced x=%d y=%d", a.Get("x"), a.Get("y"))
	}
}

func TestCountersNamesOrder(t *testing.T) {
	c := NewCounters()
	c.Inc("z")
	c.Inc("a")
	c.Inc("z")
	names := c.Names()
	if len(names) != 2 || names[0] != "z" || names[1] != "a" {
		t.Errorf("Names() = %v, want [z a] in first-touch order", names)
	}
}

func TestGeoMeanKnownValues(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g, want 4", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Errorf("GeoMean(1,1,1) = %g, want 1", got)
	}
	if got := GeoMean(nil); got != 1 {
		t.Errorf("GeoMean(nil) = %g, want 1", got)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	// GeoMean(k*xs) == k*GeoMean(xs) for positive k.
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a)/16 + 0.1, float64(b)/16 + 0.1, float64(c)/16 + 0.1}
		k := 3.5
		scaled := []float64{k * xs[0], k * xs[1], k * xs[2]}
		return math.Abs(GeoMean(scaled)-k*GeoMean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of zero did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2, 3); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Speedup(2,3) = %g, want 1.5", got)
	}
}

func TestTableRenderAndValues(t *testing.T) {
	tb := NewTable("demo", "1-core", "2-core")
	tb.AddRow("400", 1.0, 2.0)
	tb.AddRow("401", 4.0, 8.0)
	tb.AddGeoMeanRow()
	gm0, ok := tb.Value("GM", 0)
	if !ok || math.Abs(gm0-2.0) > 1e-12 {
		t.Errorf("GM col 0 = %g (ok=%v), want 2", gm0, ok)
	}
	gm1, _ := tb.Value("GM", 1)
	if math.Abs(gm1-4.0) > 1e-12 {
		t.Errorf("GM col 1 = %g, want 4", gm1)
	}
	out := tb.String()
	for _, want := range []string{"demo", "1-core", "400", "GM"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	if _, ok := tb.Value("nope", 0); ok {
		t.Error("Value on missing row reported ok")
	}
	if _, ok := tb.Value("GM", 9); ok {
		t.Error("Value on out-of-range column reported ok")
	}
}

func TestTableRowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AddRow with wrong arity did not panic")
		}
	}()
	NewTable("x", "a", "b").AddRow("r", 1.0)
}
