package stats

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("Figure X", "1-core/4KB", "1-core/4MB")
	tb.AddRow("433.milc", 1.25, 1.5)
	tb.AddRow("470.lbm", 0.9, 1.1)
	tb.AddGeoMeanRow()

	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title":"Figure X"`, `"433.milc"`, `"GM"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON missing %s: %s", want, b)
		}
	}

	var back Table
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tb.String() {
		t.Errorf("round trip changed rendering:\n%s\n---\n%s", tb.String(), back.String())
	}
}

func TestTableJSONEmptyRows(t *testing.T) {
	tb := NewTable("empty", "a")
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"rows":[]`) {
		t.Errorf("empty table must encode rows as [], got %s", b)
	}
}
