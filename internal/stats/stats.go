// Package stats provides the counters and summary math used by the
// experiment harness: per-component event counters, IPC and speedup
// computation, and geometric means, matching how the paper reports results
// (speedups relative to a baseline, geometric mean over 29 benchmarks).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters is a named bag of monotonically increasing event counts. Every
// simulator component exposes one; the harness merges them into reports.
type Counters struct {
	names  []string
	values map[string]uint64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters {
	return &Counters{values: make(map[string]uint64)}
}

// Add increments counter name by delta, creating it at zero first if needed.
func (c *Counters) Add(name string, delta uint64) {
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += delta
}

// Inc increments counter name by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of counter name (zero if never touched).
func (c *Counters) Get(name string) uint64 { return c.values[name] }

// Names returns the counter names in first-touch order.
func (c *Counters) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// Merge adds every counter of other into c.
func (c *Counters) Merge(other *Counters) {
	for _, n := range other.names {
		c.Add(n, other.values[n])
	}
}

// String renders the counters sorted by name, one per line.
func (c *Counters) String() string {
	names := c.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%-32s %12d\n", n, c.values[n])
	}
	return b.String()
}

// GeoMean returns the geometric mean of xs. It returns 1 for an empty slice
// so that ratios of empty sets are neutral, and panics on non-positive
// inputs because speedups are strictly positive by construction.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Speedup returns newIPC/baseIPC, the paper's figure-of-merit.
func Speedup(baseIPC, newIPC float64) float64 {
	if baseIPC <= 0 {
		panic("stats: Speedup with non-positive baseline IPC")
	}
	return newIPC / baseIPC
}
