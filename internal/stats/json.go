package stats

import "encoding/json"

// tableJSON is the machine-readable form of a Table, written by
// cmd/experiments -json alongside the text rendering so downstream tooling
// (plotting scripts, regression checks) need not parse fixed-width text.
type tableJSON struct {
	Title   string         `json:"title"`
	Columns []string       `json:"columns"`
	Rows    []tableRowJSON `json:"rows"`
}

type tableRowJSON struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// MarshalJSON encodes the table with its rows in insertion order.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, Columns: t.Columns, Rows: []tableRowJSON{}}
	for _, r := range t.rows {
		out.Rows = append(out.Rows, tableRowJSON{Label: r.label, Values: r.values})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a table encoded by MarshalJSON.
func (t *Table) UnmarshalJSON(b []byte) error {
	var in tableJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	t.Title = in.Title
	t.Columns = in.Columns
	t.rows = nil
	for _, r := range in.Rows {
		t.rows = append(t.rows, tableRow{label: r.Label, values: r.Values})
	}
	return nil
}
