package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of labelled numeric series and renders them in the
// fixed-width layout used by cmd/experiments to regenerate the paper's
// figures as text: one row per benchmark, one column per configuration.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
}

type tableRow struct {
	label  string
	values []float64
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a labelled row. len(values) must equal len(t.Columns).
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("stats: row %q has %d values, want %d", label, len(values), len(t.Columns)))
	}
	row := tableRow{label: label, values: make([]float64, len(values))}
	copy(row.values, values)
	t.rows = append(t.rows, row)
}

// AddGeoMeanRow appends a "GM" row with the per-column geometric mean of all
// rows added so far, mirroring the rightmost cluster of the paper's graphs.
func (t *Table) AddGeoMeanRow() {
	values := make([]float64, len(t.Columns))
	for col := range t.Columns {
		xs := make([]float64, 0, len(t.rows))
		for _, r := range t.rows {
			xs = append(xs, r.values[col])
		}
		values[col] = GeoMean(xs)
	}
	t.AddRow("GM", values...)
}

// Rows returns the row labels in insertion order.
func (t *Table) Rows() []string {
	out := make([]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = r.label
	}
	return out
}

// Value returns the cell at (rowLabel, colIndex) and whether it exists.
func (t *Table) Value(rowLabel string, col int) (float64, bool) {
	for _, r := range t.rows {
		if r.label == rowLabel {
			if col < 0 || col >= len(r.values) {
				return 0, false
			}
			return r.values[col], true
		}
	}
	return 0, false
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	labelWidth := len("benchmark")
	for _, r := range t.rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	colWidths := make([]int, len(t.Columns))
	total := labelWidth + 2
	for i, c := range t.Columns {
		colWidths[i] = 12
		if len(c)+2 > colWidths[i] {
			colWidths[i] = len(c) + 2
		}
		total += colWidths[i]
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	fmt.Fprintf(w, "%-*s", labelWidth+2, "benchmark")
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%*s", colWidths[i], c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		fmt.Fprintf(w, "%-*s", labelWidth+2, r.label)
		for i, v := range r.values {
			fmt.Fprintf(w, "%*.3f", colWidths[i], v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}
