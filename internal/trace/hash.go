package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"sync"
)

// contentHashEntry memoizes one file's content hash, invalidated when size
// or mtime changes — a sweep hashes each trace (or checkpoint) once, not
// once per scheduled job.
type contentHashEntry struct {
	size  int64
	mtime int64
	hash  string
}

var contentHashes sync.Map // path -> contentHashEntry

// ContentSHA returns the hex SHA-256 of the file's content, or "" when the
// file cannot be read. The result is memoized by (size, mtime), so repeated
// calls re-read only changed files. It is the identity trace replays and
// warmup checkpoints are addressed by: the experiment scheduler keys caches
// with it and the distrib coordinator ships it instead of a path.
func ContentSHA(path string) string {
	st, err := os.Stat(path)
	if err != nil {
		return ""
	}
	if e, ok := contentHashes.Load(path); ok {
		ent := e.(contentHashEntry)
		if ent.size == st.Size() && ent.mtime == st.ModTime().UnixNano() {
			return ent.hash
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return ""
	}
	sum := hex.EncodeToString(h.Sum(nil))
	contentHashes.Store(path, contentHashEntry{size: st.Size(), mtime: st.ModTime().UnixNano(), hash: sum})
	return sum
}
