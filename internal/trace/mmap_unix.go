//go:build linux || darwin

package trace

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. The mapping is shared and
// page-cache backed: concurrent workers replaying the same trace touch one
// physical copy.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) {
	_ = syscall.Munmap(data)
}
