package trace

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/rng"
)

// Workload mixes weighted pattern components with ALU filler instructions.
type Workload struct {
	name       string
	memPer1000 int // memory instructions per 1000 instructions
	comps      []weightedComp
	weightSum  int
	rand       *rng.Stream
	aluPC      uint64
}

type weightedComp struct {
	weight int
	comp   component
}

// Name implements Generator.
func (w *Workload) Name() string { return w.name }

// Next implements Generator.
func (w *Workload) Next() Inst {
	if w.rand.Intn(1000) < w.memPer1000 {
		pick := w.rand.Intn(w.weightSum)
		for _, wc := range w.comps {
			pick -= wc.weight
			if pick < 0 {
				return wc.comp.next(w.rand)
			}
		}
	}
	w.aluPC++
	return Inst{Op: OpALU, PC: 0x1000 + (w.aluPC%64)*4}
}

// spec is the declarative description of one benchmark stand-in.
type spec struct {
	memPer1000 int
	build      func(seed uint64) []weightedComp
}

const (
	kb = mem.Addr(1) << 10
	mb = mem.Addr(1) << 20
)

// regionBase spreads component address spaces far apart so that distinct
// components never share pages.
func regionBase(i int) mem.Addr { return mem.Addr(1)<<36 + mem.Addr(i)<<30 }

// specs maps benchmark names to their generators. The memory intensities
// are calibrated so DRAM accesses per kilo-instruction land near the
// paper's Figure 13, and the pattern choices follow the behaviours the
// paper reports: 433-like speedup peaks at offset multiples of 32 (16-word
// chunks with 2KB jumps), 459-like peaks near 29.3 lines, 470-like peaks at
// multiples of 5 with 5k+3 secondaries, 462-like long sequential streams
// where only large offsets are timely, 429-like pointer chasing over a huge
// working set, and cache-resident compute for the benchmarks Figures 5-6
// show as insensitive to L2 prefetching.
var specs = map[string]spec{
	"400.perlbench": {320, func(seed uint64) []weightedComp {
		return []weightedComp{
			{3, newRandom(0x4000, 16, regionBase(0), 512*kb, 25, false)},
			{1, newStream(0x4100, regionBase(1), 8, 1*mb, 20)},
		}
	}},
	"401.bzip2": {330, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, 2*mb, 30)},
			{1, newRandom(0x4100, 8, regionBase(1), 1*mb, 20, false)},
		}
	}},
	"403.gcc": {340, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, 6*mb, 25)},
			{1, newStream(0x4100, regionBase(1), 8, 4*mb, 10)},
			{1, newRandom(0x4200, 16, regionBase(2), 8*mb, 20, false)},
		}
	}},
	"410.bwaves": {350, func(seed uint64) []weightedComp {
		var cs []weightedComp
		for i := 0; i < 5; i++ {
			cs = append(cs, weightedComp{1, newStream(0x4000+uint64(i)*0x100, regionBase(i), 4, 48*mb, 15)})
		}
		return cs
	}},
	"416.gamess": {250, func(seed uint64) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 8, regionBase(0), 128*kb, 25, false)}}
	}},
	"429.mcf": {220, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newRandom(0x4000, 1, regionBase(0), 384*mb, 0, true)},
			{2, newRandom(0x4100, 8, regionBase(1), 1*mb, 20, false)},
			{3, newStream(0x4200, regionBase(2), 8, 16*mb, 10)},
		}
	}},
	"433.milc": {260, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newStripes(0x4000, regionBase(0), 32, 8, 64*mb, 256, 20)},
		}
	}},
	"434.zeusmp": {200, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 128, 12*mb, 20)},
			{1, newChunk(0x4100, regionBase(1), 8, 128, 12*mb, 20)},
		}
	}},
	"435.gromacs": {300, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newStream(0x4000, regionBase(0), 8, 512*kb, 20)},
			{1, newRandom(0x4100, 8, regionBase(1), 256*kb, 20, false)},
		}
	}},
	"436.cactusADM": {200, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 192, 12*mb, 25)},
			{1, newChunk(0x4100, regionBase(1), 8, 192, 12*mb, 25)},
		}
	}},
	"437.leslie3d": {350, func(seed uint64) []weightedComp {
		var cs []weightedComp
		for i := 0; i < 4; i++ {
			cs = append(cs, weightedComp{1, newStream(0x4000+uint64(i)*0x100, regionBase(i), 8, 24*mb, 20)})
		}
		return cs
	}},
	"444.namd": {260, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newRandom(0x4000, 8, regionBase(0), 512*kb, 20, false)},
			{1, newStream(0x4100, regionBase(1), 8, 1*mb, 15)},
		}
	}},
	"445.gobmk": {300, func(seed uint64) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 16, regionBase(0), 1*mb, 25, false)}}
	}},
	"447.dealII": {340, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, 4*mb, 20)},
			{1, newRandom(0x4100, 8, regionBase(1), 2*mb, 20, false)},
		}
	}},
	"450.soplex": {280, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, 32*mb, 20)},
			{2, newStream(0x4100, regionBase(1), 8, 32*mb, 20)},
			{1, newRandom(0x4200, 8, regionBase(2), 16*mb, 15, false)},
		}
	}},
	"453.povray": {250, func(seed uint64) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 16, regionBase(0), 256*kb, 20, false)}}
	}},
	"454.calculix": {300, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newStream(0x4000, regionBase(0), 8, 2*mb, 20)},
			{1, newRandom(0x4100, 8, regionBase(1), 512*kb, 20, false)},
		}
	}},
	"456.hmmer": {400, func(seed uint64) []weightedComp {
		return []weightedComp{{1, newStream(0x4000, regionBase(0), 4, 1*mb, 25)}}
	}},
	"458.sjeng": {280, func(seed uint64) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 16, regionBase(0), 2*mb, 25, false)}}
	}},
	"459.GemsFDTD": {200, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newStripesPattern(0x4000, regionBase(0), 24, []int64{29, 30, 29}, 8, 48*mb, 256, 15)},
		}
	}},
	"462.libquantum": {300, func(seed uint64) []weightedComp {
		return []weightedComp{{1, newStream(0x4000, regionBase(0), 4, 64*mb, 30)}}
	}},
	"464.h264ref": {300, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, 512*kb, 25)},
			{1, newRandom(0x4100, 16, regionBase(1), 1*mb, 20, false)},
		}
	}},
	"465.tonto": {280, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 512, 8*mb, 15)},
			{1, newChunk(0x4100, regionBase(1), 8, 512, 8*mb, 15)},
			{1, newRandom(0x4200, 8, regionBase(2), 512*kb, 20, false)},
		}
	}},
	"470.lbm": {260, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newStripes(0x4000, regionBase(0), 5, 8, 48*mb, 64, 45)},
		}
	}},
	"471.omnetpp": {320, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newRandom(0x4000, 16, regionBase(0), 16*mb, 25, false)},
			{1, newStream(0x4100, regionBase(1), 8, 8*mb, 20)},
		}
	}},
	"473.astar": {300, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newRandom(0x4000, 1, regionBase(0), 8*mb, 10, true)},
			{1, newRandom(0x4100, 8, regionBase(1), 4*mb, 20, false)},
		}
	}},
	"481.wrf": {200, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 128, 16*mb, 20)},
			{1, newChunk(0x4100, regionBase(1), 8, 128, 16*mb, 20)},
		}
	}},
	"482.sphinx3": {330, func(seed uint64) []weightedComp {
		return []weightedComp{
			{1, newStream(0x4000, regionBase(0), 4, 8*mb, 10)},
			{1, newStream(0x4100, regionBase(1), 4, 8*mb, 10)},
			{1, newStream(0x4200, regionBase(2), 4, 8*mb, 10)},
		}
	}},
	"483.xalancbmk": {320, func(seed uint64) []weightedComp {
		return []weightedComp{
			{2, newRandom(0x4000, 16, regionBase(0), 4*mb, 20, false)},
			{1, newRandom(0x4100, 1, regionBase(1), 2*mb, 10, true)},
		}
	}},
}

// Benchmarks returns the 29 SPEC CPU2006 stand-in names in the paper's
// order.
func Benchmarks() []string {
	return []string{
		"400.perlbench", "401.bzip2", "403.gcc", "410.bwaves", "416.gamess",
		"429.mcf", "433.milc", "434.zeusmp", "435.gromacs", "436.cactusADM",
		"437.leslie3d", "444.namd", "445.gobmk", "447.dealII", "450.soplex",
		"453.povray", "454.calculix", "456.hmmer", "458.sjeng",
		"459.GemsFDTD", "462.libquantum", "464.h264ref", "465.tonto",
		"470.lbm", "471.omnetpp", "473.astar", "481.wrf", "482.sphinx3",
		"483.xalancbmk",
	}
}

// NewWorkload builds the named benchmark stand-in with the given seed.
func NewWorkload(name string, seed uint64) (*Workload, error) {
	s, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("trace: unknown workload %q", name)
	}
	comps := s.build(seed)
	sum := 0
	for _, c := range comps {
		sum += c.weight
	}
	return &Workload{
		name:       name,
		memPer1000: s.memPer1000,
		comps:      comps,
		weightSum:  sum,
		rand:       rng.New(seed),
	}, nil
}

// MustWorkload is NewWorkload that panics on unknown names, for tests and
// examples.
func MustWorkload(name string, seed uint64) *Workload {
	w, err := NewWorkload(name, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// NewThrasher returns the cache-thrashing micro-benchmark of section 5.1:
// it writes a huge array, going through it quickly and sequentially,
// consuming L3 capacity and memory bandwidth on cores 1-3.
func NewThrasher(seed uint64) *Workload {
	return &Workload{
		name:       "microthrash",
		memPer1000: 500,
		comps: []weightedComp{
			{1, newStream(0x8000, regionBase(16), 64, 256*mb, 100)},
		},
		weightSum: 1,
		rand:      rng.New(seed),
	}
}
