package trace

import (
	"fmt"
	"math/bits"
	"strconv"

	"bopsim/internal/mem"
	"bopsim/internal/rng"
)

// Workload mixes weighted pattern components with ALU filler instructions.
type Workload struct {
	name       string
	memPer1000 int // memory instructions per 1000 instructions
	comps      []weightedComp
	weightSum  int
	rand       *rng.Stream
	aluPC      uint64
}

type weightedComp struct {
	weight int
	comp   component
}

// Name implements Generator.
func (w *Workload) Name() string { return w.name }

// Next implements Generator.
//
//bovet:hotpath
func (w *Workload) Next() Inst {
	if w.rand.Intn(1000) < w.memPer1000 {
		pick := w.rand.Intn(w.weightSum)
		for _, wc := range w.comps {
			pick -= wc.weight
			if pick < 0 {
				return wc.comp.next(w.rand)
			}
		}
	}
	w.aluPC++
	return Inst{Op: OpALU, PC: 0x1000 + (w.aluPC%64)*4}
}

// newMixer assembles a Workload from components, computing the weight sum.
func newMixer(name string, memPer1000 int, comps []weightedComp, seed uint64) *Workload {
	sum := 0
	for _, c := range comps {
		sum += c.weight
	}
	return &Workload{
		name:       name,
		memPer1000: memPer1000,
		comps:      comps,
		weightSum:  sum,
		rand:       rng.New(seed),
	}
}

// scaler rescales a component's region so one footprint parameter can grow
// or shrink a whole benchmark's working set while preserving the ratios
// between its components. The identity scaler reproduces the published
// defaults bit for bit (see the golden determinism suite).
type scaler func(mem.Addr) mem.Addr

func identityScale(a mem.Addr) mem.Addr { return a }

// footprintScale scales regions by want/base, keeping 4KB alignment (every
// default region is 4KB-aligned, so the identity case is exact). The
// multiply runs in 128-bit precision: a huge but syntactically valid
// footprint must scale exactly, not wrap mod 2^64 into a silently wrong
// working set. Every component region satisfies a <= base (base is the
// largest region), so the quotient a*want/base fits uint64 and Div64
// cannot panic.
func footprintScale(want, base mem.Addr) scaler {
	if want == base {
		return identityScale
	}
	return func(a mem.Addr) mem.Addr {
		hi, lo := bits.Mul64(uint64(a), uint64(want))
		n, _ := bits.Div64(hi, lo, uint64(base))
		n &^= 4095
		if n < 4096 {
			n = 4096
		}
		return mem.Addr(n)
	}
}

// benchSpec is the declarative description of one benchmark stand-in.
type benchSpec struct {
	memPer1000 int
	// footprint is the largest component region: the knob the "footprint"
	// parameter rescales (all regions scale proportionally).
	footprint mem.Addr
	build     func(s scaler) []weightedComp
}

const (
	kb = mem.Addr(1) << 10
	mb = mem.Addr(1) << 20
)

// regionBase spreads component address spaces far apart so that distinct
// components never share pages.
func regionBase(i int) mem.Addr { return mem.Addr(1)<<36 + mem.Addr(i)<<30 }

// benchSpecs maps benchmark names to their generators. The memory
// intensities are calibrated so DRAM accesses per kilo-instruction land
// near the paper's Figure 13, and the pattern choices follow the behaviours
// the paper reports: 433-like speedup peaks at offset multiples of 32
// (16-word chunks with 2KB jumps), 459-like peaks near 29.3 lines, 470-like
// peaks at multiples of 5 with 5k+3 secondaries, 462-like long sequential
// streams where only large offsets are timely, 429-like pointer chasing
// over a huge working set, and cache-resident compute for the benchmarks
// Figures 5-6 show as insensitive to L2 prefetching.
var benchSpecs = map[string]benchSpec{
	"400.perlbench": {320, 1 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{3, newRandom(0x4000, 16, regionBase(0), s(512*kb), 25, false)},
			{1, newStream(0x4100, regionBase(1), 8, s(1*mb), 20)},
		}
	}},
	"401.bzip2": {330, 2 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, s(2*mb), 30)},
			{1, newRandom(0x4100, 8, regionBase(1), s(1*mb), 20, false)},
		}
	}},
	"403.gcc": {340, 8 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, s(6*mb), 25)},
			{1, newStream(0x4100, regionBase(1), 8, s(4*mb), 10)},
			{1, newRandom(0x4200, 16, regionBase(2), s(8*mb), 20, false)},
		}
	}},
	"410.bwaves": {350, 48 * mb, func(s scaler) []weightedComp {
		var cs []weightedComp
		for i := 0; i < 5; i++ {
			cs = append(cs, weightedComp{1, newStream(0x4000+uint64(i)*0x100, regionBase(i), 4, s(48*mb), 15)})
		}
		return cs
	}},
	"416.gamess": {250, 128 * kb, func(s scaler) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 8, regionBase(0), s(128*kb), 25, false)}}
	}},
	"429.mcf": {220, 384 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newRandom(0x4000, 1, regionBase(0), s(384*mb), 0, true)},
			{2, newRandom(0x4100, 8, regionBase(1), s(1*mb), 20, false)},
			{3, newStream(0x4200, regionBase(2), 8, s(16*mb), 10)},
		}
	}},
	"433.milc": {260, 64 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newStripes(0x4000, regionBase(0), 32, 8, s(64*mb), 256, 20)},
		}
	}},
	"434.zeusmp": {200, 12 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 128, s(12*mb), 20)},
			{1, newChunk(0x4100, regionBase(1), 8, 128, s(12*mb), 20)},
		}
	}},
	"435.gromacs": {300, 512 * kb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newStream(0x4000, regionBase(0), 8, s(512*kb), 20)},
			{1, newRandom(0x4100, 8, regionBase(1), s(256*kb), 20, false)},
		}
	}},
	"436.cactusADM": {200, 12 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 192, s(12*mb), 25)},
			{1, newChunk(0x4100, regionBase(1), 8, 192, s(12*mb), 25)},
		}
	}},
	"437.leslie3d": {350, 24 * mb, func(s scaler) []weightedComp {
		var cs []weightedComp
		for i := 0; i < 4; i++ {
			cs = append(cs, weightedComp{1, newStream(0x4000+uint64(i)*0x100, regionBase(i), 8, s(24*mb), 20)})
		}
		return cs
	}},
	"444.namd": {260, 1 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newRandom(0x4000, 8, regionBase(0), s(512*kb), 20, false)},
			{1, newStream(0x4100, regionBase(1), 8, s(1*mb), 15)},
		}
	}},
	"445.gobmk": {300, 1 * mb, func(s scaler) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 16, regionBase(0), s(1*mb), 25, false)}}
	}},
	"447.dealII": {340, 4 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, s(4*mb), 20)},
			{1, newRandom(0x4100, 8, regionBase(1), s(2*mb), 20, false)},
		}
	}},
	"450.soplex": {280, 32 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, s(32*mb), 20)},
			{2, newStream(0x4100, regionBase(1), 8, s(32*mb), 20)},
			{1, newRandom(0x4200, 8, regionBase(2), s(16*mb), 15, false)},
		}
	}},
	"453.povray": {250, 256 * kb, func(s scaler) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 16, regionBase(0), s(256*kb), 20, false)}}
	}},
	"454.calculix": {300, 2 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newStream(0x4000, regionBase(0), 8, s(2*mb), 20)},
			{1, newRandom(0x4100, 8, regionBase(1), s(512*kb), 20, false)},
		}
	}},
	"456.hmmer": {400, 1 * mb, func(s scaler) []weightedComp {
		return []weightedComp{{1, newStream(0x4000, regionBase(0), 4, s(1*mb), 25)}}
	}},
	"458.sjeng": {280, 2 * mb, func(s scaler) []weightedComp {
		return []weightedComp{{1, newRandom(0x4000, 16, regionBase(0), s(2*mb), 25, false)}}
	}},
	"459.GemsFDTD": {200, 48 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newStripesPattern(0x4000, regionBase(0), 24, []int64{29, 30, 29}, 8, s(48*mb), 256, 15)},
		}
	}},
	"462.libquantum": {300, 64 * mb, func(s scaler) []weightedComp {
		return []weightedComp{{1, newStream(0x4000, regionBase(0), 4, s(64*mb), 30)}}
	}},
	"464.h264ref": {300, 1 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newStream(0x4000, regionBase(0), 8, s(512*kb), 25)},
			{1, newRandom(0x4100, 16, regionBase(1), s(1*mb), 20, false)},
		}
	}},
	"465.tonto": {280, 8 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 512, s(8*mb), 15)},
			{1, newChunk(0x4100, regionBase(1), 8, 512, s(8*mb), 15)},
			{1, newRandom(0x4200, 8, regionBase(2), s(512*kb), 20, false)},
		}
	}},
	"470.lbm": {260, 48 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newStripes(0x4000, regionBase(0), 5, 8, s(48*mb), 64, 45)},
		}
	}},
	"471.omnetpp": {320, 16 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newRandom(0x4000, 16, regionBase(0), s(16*mb), 25, false)},
			{1, newStream(0x4100, regionBase(1), 8, s(8*mb), 20)},
		}
	}},
	"473.astar": {300, 8 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newRandom(0x4000, 1, regionBase(0), s(8*mb), 10, true)},
			{1, newRandom(0x4100, 8, regionBase(1), s(4*mb), 20, false)},
		}
	}},
	"481.wrf": {200, 16 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newChunk(0x4000, regionBase(0), 8, 128, s(16*mb), 20)},
			{1, newChunk(0x4100, regionBase(1), 8, 128, s(16*mb), 20)},
		}
	}},
	"482.sphinx3": {330, 8 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{1, newStream(0x4000, regionBase(0), 4, s(8*mb), 10)},
			{1, newStream(0x4100, regionBase(1), 4, s(8*mb), 10)},
			{1, newStream(0x4200, regionBase(2), 4, s(8*mb), 10)},
		}
	}},
	"483.xalancbmk": {320, 4 * mb, func(s scaler) []weightedComp {
		return []weightedComp{
			{2, newRandom(0x4000, 16, regionBase(0), s(4*mb), 20, false)},
			{1, newRandom(0x4100, 1, regionBase(1), s(2*mb), 10, true)},
		}
	}},
}

// init registers every benchmark stand-in through the generator registry,
// so they are ordinary registered generators — parameterized, listable and
// sweepable — rather than a closed table.
func init() {
	for name, bs := range benchSpecs {
		registerBench(name, bs)
	}
}

// registerBench registers one benchmark stand-in with its knobs exposed as
// spec parameters. The defaults reproduce the historical NewWorkload
// streams bit for bit (pinned by the golden determinism suite).
func registerBench(name string, bs benchSpec) {
	// The default weight list comes from the components themselves, so the
	// schema is honest about each benchmark's mix.
	defWeights := make([]int, 0, 4)
	for _, wc := range bs.build(identityScale) {
		defWeights = append(defWeights, wc.weight)
	}
	// parse composes the shared mixer parameter step (mixerPrep, the same
	// parse-and-check the micro-patterns run, so validation rules cannot
	// drift between them) with the benchmarks' extra weights parameter.
	prep := mixerPrep{mp: bs.memPer1000, stride: 8, store: 0, fp: bs.footprint}
	type benchCfg struct {
		mixerCfg
		weights []int
	}
	parse := func(seed uint64, v Values) (benchCfg, error) {
		base, err := prep.parse(seed, v)
		if err != nil {
			return benchCfg{}, err
		}
		var werr error
		weights := v.Ints("weights", defWeights, &werr)
		if werr != nil {
			return benchCfg{}, werr
		}
		if e := checkWeights(weights, len(defWeights), name); e != nil {
			return benchCfg{}, e
		}
		return benchCfg{mixerCfg: base, weights: weights}, nil
	}
	Register(name, Definition{
		Defaults: map[string]string{
			"seed":       "0",
			"memper1000": strconv.Itoa(bs.memPer1000),
			"weights":    formatInts(defWeights),
			"footprint":  FormatSize(bs.footprint),
		},
		SizeKeys: []string{"footprint"},
		IntKeys:  []string{"seed", "memper1000", "weights"},
		Validate: func(v Values) error {
			_, err := parse(1, v)
			return err
		},
		Build: func(seed uint64, v Values) (Generator, error) {
			c, err := parse(seed, v)
			if err != nil {
				return nil, err
			}
			comps := bs.build(footprintScale(c.fp, bs.footprint))
			for i, w := range c.weights {
				comps[i].weight = w
			}
			return newMixer(name, c.mp, comps, c.seed), nil
		},
		Help: fmt.Sprintf("SPEC CPU2006 stand-in (%d mem/KI, %s footprint)", bs.memPer1000, FormatSize(bs.footprint)),
	})
}

func formatInts(list []int) string {
	out := ""
	for i, n := range list {
		if i > 0 {
			out += "+"
		}
		out += strconv.Itoa(n)
	}
	return out
}

// Benchmarks returns the 29 SPEC CPU2006 stand-in names in the paper's
// order.
func Benchmarks() []string {
	return []string{
		"400.perlbench", "401.bzip2", "403.gcc", "410.bwaves", "416.gamess",
		"429.mcf", "433.milc", "434.zeusmp", "435.gromacs", "436.cactusADM",
		"437.leslie3d", "444.namd", "445.gobmk", "447.dealII", "450.soplex",
		"453.povray", "454.calculix", "456.hmmer", "458.sjeng",
		"459.GemsFDTD", "462.libquantum", "464.h264ref", "465.tonto",
		"470.lbm", "471.omnetpp", "473.astar", "481.wrf", "482.sphinx3",
		"483.xalancbmk",
	}
}

// BenchmarkSpecs returns the 29 stand-ins as bare specs, in the paper's
// order — the default row set of the experiment Runner.
func BenchmarkSpecs() []Spec {
	names := Benchmarks()
	out := make([]Spec, len(names))
	for i, n := range names {
		out[i] = Spec{Name: n}
	}
	return out
}

// NewWorkload builds the named workload generator with the given seed. It
// is the historical entry point, now a thin wrapper over the registry: any
// registered spec name works, not just the benchmark table.
func NewWorkload(name string, seed uint64) (Generator, error) {
	sp, err := ParseSpec(name)
	if err != nil {
		return nil, err
	}
	return NewGenerator(sp, seed)
}

// MustWorkload is NewWorkload that panics on unknown names, for tests and
// examples. Library code paths (the engine, the scheduler) use
// NewGenerator and surface errors instead.
func MustWorkload(name string, seed uint64) StatefulGenerator {
	w, err := NewWorkload(name, seed)
	if err != nil {
		panic(err)
	}
	return w.(StatefulGenerator)
}

// NewThrasher returns the cache-thrashing micro-benchmark of section 5.1
// (registered as "microthrash"): it writes a huge array, going through it
// quickly and sequentially, consuming L3 capacity and memory bandwidth on
// the satellite cores.
func NewThrasher(seed uint64) StatefulGenerator {
	return MustWorkload("microthrash", seed)
}
