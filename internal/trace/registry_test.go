package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryCoversBenchmarksAndMicroPatterns(t *testing.T) {
	names := make(map[string]bool)
	for _, n := range Names() {
		names[n] = true
	}
	for _, b := range Benchmarks() {
		if !names[b] {
			t.Errorf("benchmark %s not registered", b)
		}
	}
	for _, n := range []string{"microthrash", "stream", "pchase", "gups", "mix", "file"} {
		if !names[n] {
			t.Errorf("generator %s not registered", n)
		}
	}
}

func TestNormalizeDropsDefaults(t *testing.T) {
	n, err := Normalize(MustSpec("stream:stride=64,storepct=0,footprint=8mb"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "stream" {
		t.Errorf("normalized = %q, want bare name", n)
	}
	n, err = Normalize(MustSpec("429.mcf:memper1000=220"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "429.mcf" {
		t.Errorf("normalized = %q, want bare name", n)
	}
	n, err = Normalize(MustSpec("stream:stride=128"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "stream:stride=128" {
		t.Errorf("normalized = %q, non-default dropped", n)
	}
	// Size spellings of a default compare numerically, not as strings:
	// "64MB", "67108864" and the canonical "64mb" are one value and one
	// cache key.
	for _, spelling := range []string{"gups:footprint=64MB", "gups:footprint=67108864"} {
		n, err = Normalize(MustSpec(spelling))
		if err != nil {
			t.Fatal(err)
		}
		if n.String() != "gups" {
			t.Errorf("Normalize(%q) = %q, want bare name", spelling, n)
		}
	}
	// Non-default sizes canonicalize too: every spelling of one footprint
	// is one canonical form, one cache key, one warmup signature.
	for _, spelling := range []string{"gups:footprint=134217728", "gups:footprint=128MB"} {
		n, err = Normalize(MustSpec(spelling))
		if err != nil {
			t.Fatal(err)
		}
		if n.String() != "gups:footprint=128mb" {
			t.Errorf("Normalize(%q) = %q, want gups:footprint=128mb", spelling, n)
		}
	}
	// Integer-typed values — scalars and '+'-lists — canonicalize too: a
	// zero-padded spelling of a default (or of any value) is not a
	// distinct cache key.
	for _, c := range [][2]string{
		{"stream:stride=064", "stream"},
		{"gups:seed=00", "gups"},
		{"stream:stride=0128", "stream:stride=128"},
		{"400.perlbench:weights=03+1", "400.perlbench"},
		{"400.perlbench:weights=4+01", "400.perlbench:weights=4+1"},
		{"mix:gens=stream+gups,weights=01+1", "mix"},
	} {
		n, err = Normalize(MustSpec(c[0]))
		if err != nil {
			t.Fatal(err)
		}
		if n.String() != c[1] {
			t.Errorf("Normalize(%q) = %q, want %q", c[0], n, c[1])
		}
	}
	// Non-size keys keep their raw spelling: a seed must never be
	// re-rendered as a byte size.
	n, err = Normalize(MustSpec("gups:seed=4096"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "gups:seed=4096" {
		t.Errorf("Normalize(seed=4096) = %q, seed value was size-rendered", n)
	}
	// An all-ones weights list is the implicit default for any gens value
	// and must share the bare spelling's canonical form (and cache key);
	// non-uniform weights stay.
	n, err = Normalize(MustSpec("mix:weights=1+1"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "mix" {
		t.Errorf("Normalize(mix:weights=1+1) = %q, want mix", n)
	}
	n, err = Normalize(MustSpec("mix:gens=stream+pchase+gups,weights=1+1+1"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "mix:gens=stream+pchase+gups" {
		t.Errorf("Normalize(all-ones weights) = %q, weights kept", n)
	}
	n, err = Normalize(MustSpec("mix:weights=2+1"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "mix:weights=2+1" {
		t.Errorf("Normalize(mix:weights=2+1) = %q, non-default weights dropped", n)
	}
}

func TestRegistryRejectsUnknowns(t *testing.T) {
	if _, err := NewGenerator(Spec{Name: "no-such-gen"}, 1); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown name error = %v", err)
	}
	if _, err := NewGenerator(MustSpec("stream:bogus=1"), 1); err == nil || !strings.Contains(err.Error(), "no parameter") {
		t.Errorf("unknown parameter error = %v", err)
	}
	if _, err := NewGenerator(MustSpec("stream:stride=xyz"), 1); err == nil {
		t.Error("bad value accepted")
	}
	if _, err := NewGenerator(MustSpec("stream:memper1000=2000"), 1); err == nil {
		t.Error("out-of-range memper1000 accepted")
	}
	if _, err := NewGenerator(MustSpec("429.mcf:weights=1+2"), 1); err == nil {
		t.Error("weights/component count mismatch accepted")
	}
	// Degenerate mixer parameters are rejected, not silently measured.
	if _, err := NewGenerator(MustSpec("stream:stride=-64"), 1); err == nil {
		t.Error("negative stride accepted (degenerates to one hot line)")
	}
	if _, err := NewGenerator(MustSpec("stream:footprint=64"), 1); err == nil {
		t.Error("sub-64kb footprint accepted")
	}
	if _, err := NewGenerator(MustSpec("gups:footprint=1kb"), 1); err == nil {
		t.Error("sub-64kb gups footprint accepted")
	}
	// Below the footprint floor the striped patterns' geometry would
	// degenerate (posPerStr 0 once divided among stripes — historically a
	// divide-by-zero panic mid-simulation): the spec layer must reject it.
	if _, err := NewGenerator(MustSpec("459.GemsFDTD:footprint=4kb"), 1); err == nil {
		t.Error("footprint below the stripes-geometry floor accepted")
	}
	// Normalize validates without constructing (Definition.Validate), and
	// must reject exactly what Build rejects.
	if _, err := Normalize(MustSpec("459.GemsFDTD:footprint=4kb")); err == nil {
		t.Error("Normalize accepted a spec Build rejects")
	}
	if _, err := Normalize(MustSpec("mix:gens=stream+no-such-gen")); err == nil {
		t.Error("Normalize accepted a mix of an unregistered generator")
	}
	// A registered name that cannot build with default parameters ("file"
	// needs a path) is rejected at mix validation, not mid-build.
	if _, err := Normalize(MustSpec("mix:gens=file+stream")); err == nil {
		t.Error("Normalize accepted a mix of a parameterless-unbuildable generator")
	}
	// A stride at or past the footprint is the same single-hot-line
	// degeneration as stride 0 and is rejected the same way.
	if _, err := NewGenerator(MustSpec("stream:stride=1000000000"), 1); err == nil {
		t.Error("stride past the footprint accepted")
	}
	if _, err := NewGenerator(MustSpec("gups:footprint=2gb"), 1); err == nil {
		t.Error("footprint above the 1gb region spacing accepted")
	}
	// A weights list that would overflow the mixer's accumulator (and
	// panic rng.Intn at simulation time) must die at spec validation.
	huge := "mix:gens=stream+gups,weights=9223372036854775807+9223372036854775807"
	if _, err := NewGenerator(MustSpec(huge), 1); err == nil {
		t.Error("weight-sum overflow accepted")
	}
	if _, err := NewGenerator(MustSpec("429.mcf:weights=2000000+1+1"), 1); err == nil {
		t.Error("oversized benchmark weight accepted")
	}
}

// TestFootprintScaleLargeValuesExact checks region scaling is exact for
// huge footprints: the 128-bit multiply must not wrap mod 2^64 into a
// silently wrong working set.
func TestFootprintScaleLargeValuesExact(t *testing.T) {
	// 416.gamess: one random component, base footprint 128kb. Scaled to
	// the 1gb maximum, accesses must reach beyond 512mb (scaling happened,
	// no wrap to a tiny region) and stay under 1gb (quotient exact).
	g := mustGen(t, "416.gamess:footprint=1gb", 1)
	var maxOff uint64
	for i := 0; i < 200000; i++ {
		inst := g.Next()
		if inst.Op == OpALU {
			continue
		}
		off := uint64(inst.VA - regionBase(0))
		if off >= 1<<30 {
			t.Fatalf("access at offset %d outside the 1gb scaled footprint", off)
		}
		if off > maxOff {
			maxOff = off
		}
	}
	if maxOff < 512<<20 {
		t.Errorf("max offset %d never exceeded 512mb; scaling collapsed", maxOff)
	}
}

func TestParamsChangeStreams(t *testing.T) {
	base := streamHash(mustGen(t, "stream", 1), 5000)
	for _, variant := range []string{
		"stream:stride=128",
		"stream:footprint=1mb",
		"stream:storepct=50",
		"stream:memper1000=500",
	} {
		if streamHash(mustGen(t, variant, 1), 5000) == base {
			t.Errorf("%s produced the default stream", variant)
		}
	}
	// Seed plumbing is observable on a random generator (a pure stream
	// consumes no randomness, so its stream is seed-independent).
	if streamHash(mustGen(t, "gups", 1), 5000) == streamHash(mustGen(t, "gups", 2), 5000) {
		t.Error("run seed does not reach the generator")
	}
	// seed=0 is the registered default: the run seed stays in charge.
	if streamHash(mustGen(t, "gups:seed=0", 7), 5000) != streamHash(mustGen(t, "gups", 7), 5000) {
		t.Error("seed=0 does not defer to the run seed")
	}
	// An explicit seed overrides the run-derived one.
	if streamHash(mustGen(t, "gups:seed=9", 1), 5000) != streamHash(mustGen(t, "gups:seed=9", 2), 5000) {
		t.Error("explicit seed did not pin the stream")
	}
}

func TestBenchmarkFootprintScales(t *testing.T) {
	// Scaling mcf's footprint down must confine its pointer-chase region:
	// every address lands inside regionBase(i) + scaled region.
	g := mustGen(t, "429.mcf:footprint=16mb", 1)
	for i := 0; i < 20000; i++ {
		inst := g.Next()
		if inst.Op == OpALU {
			continue
		}
		off := inst.VA - regionBase(int((inst.VA>>30)&0x3f))
		if off >= 16*mb {
			t.Fatalf("access at offset %d outside the 16mb scaled footprint", off)
		}
	}
	// Identity scaling is exact (also guaranteed by the golden suite).
	a := streamHash(mustGen(t, "429.mcf:footprint=384mb", 1), 5000)
	b := streamHash(mustGen(t, "429.mcf", 1), 5000)
	if a != b {
		t.Error("default-valued footprint changed the stream")
	}
}

func TestMixDeterminismAndState(t *testing.T) {
	a := mustGen(t, "mix:gens=stream+pchase,weights=2+1", 3)
	b := mustGen(t, "mix:gens=stream+pchase,weights=2+1", 3)
	for i := 0; i < 5000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("mix is not deterministic in its seed")
		}
	}
	// Cursor round trip: save mid-stream, restore into a fresh instance,
	// and the continuations must agree.
	sg := a.(StatefulGenerator)
	st := sg.SaveGenState()
	if st.Kind != "mix" || len(st.Subs) != 2 {
		t.Fatalf("mix state = %+v", st)
	}
	fresh := mustGen(t, "mix:gens=stream+pchase,weights=2+1", 3).(StatefulGenerator)
	if err := fresh.RestoreGenState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if a.Next() != fresh.Next() {
			t.Fatal("restored mix diverged")
		}
	}
	// Mismatched shapes are rejected, not half-applied.
	other := mustGen(t, "mix:gens=stream+pchase+gups", 3).(StatefulGenerator)
	if err := other.RestoreGenState(st); err == nil {
		t.Error("mix state restored into a differently shaped mix")
	}
	if err := fresh.RestoreGenState(GenState{Kind: "workload"}); err == nil {
		t.Error("workload state restored into a mix")
	}
	if _, err := NewGenerator(MustSpec("mix:gens=mix+stream"), 1); err == nil {
		t.Error("nested mix accepted")
	}
}

func TestMixRegionOffsets(t *testing.T) {
	// region= is a pure VA translation: against an unshifted twin, every
	// memory access moves by exactly region*regionSpan and nothing else —
	// not ALU instructions, not PCs, not sub-generator scheduling.
	base := mustGen(t, "mix:gens=stream+pchase", 3)
	shifted := mustGen(t, "mix:gens=stream+pchase,region=2+2", 3)
	for i := 0; i < 5000; i++ {
		a, b := base.Next(), shifted.Next()
		if a.Op != OpALU {
			if b.VA != a.VA+2*regionSpan {
				t.Fatalf("inst %d: VA %#x, want %#x", i, b.VA, a.VA+2*regionSpan)
			}
			a.VA = b.VA
		}
		if a != b {
			t.Fatalf("inst %d: region shift changed more than the VA: %+v vs %+v", i, a, b)
		}
	}

	// region=0+1 separates the two programs into disjoint 1TB windows.
	mixed := mustGen(t, "mix:gens=stream+gups,region=0+1", 3)
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		inst := mixed.Next()
		if inst.Op == OpALU {
			continue
		}
		w := int(inst.VA / regionSpan)
		if w > 1 {
			t.Fatalf("access %#x outside regions 0..1", inst.VA)
		}
		seen[w] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("regions touched = %v, want both 0 and 1", seen)
	}

	// The all-zero region list is the default and canonicalizes away, so
	// pre-region cache keys are untouched; a real offset survives.
	n, err := Normalize(MustSpec("mix:gens=stream+gups,region=0+0"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "mix" {
		t.Errorf("all-zero region not canonicalized away: %q", n)
	}
	n, err = Normalize(MustSpec("mix:gens=stream+gups,region=0+1"))
	if err != nil {
		t.Fatal(err)
	}
	if n.String() != "mix:region=0+1" {
		t.Errorf("non-default region dropped: %q", n)
	}
	for _, bad := range []string{
		"mix:gens=stream+gups,region=1",      // length mismatch
		"mix:gens=stream+gups,region=0+256",  // beyond maxRegion
		"mix:gens=stream+gups,region=0+-1",   // negative
		"mix:gens=stream+gups,region=0+huge", // not an integer
	} {
		if _, err := Normalize(MustSpec(bad)); err == nil {
			t.Errorf("Normalize(%q) accepted", bad)
		}
	}

	// Checkpoint round trip: the offset is spec-derived config, so state
	// saved from a shifted mix restores into a shifted twin and continues
	// identically (shifted VAs included).
	sg := mustGen(t, "mix:gens=stream+pchase,region=1+3", 7).(StatefulGenerator)
	for i := 0; i < 2500; i++ {
		sg.Next()
	}
	st := sg.SaveGenState()
	fresh := mustGen(t, "mix:gens=stream+pchase,region=1+3", 7).(StatefulGenerator)
	if err := fresh.RestoreGenState(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2500; i++ {
		if sg.Next() != fresh.Next() {
			t.Fatal("restored region mix diverged")
		}
	}
}

func TestFileSpecHashForms(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.trace")
	if err := WriteTraceFile(path, MustWorkload("456.hmmer", 1), 500); err != nil {
		t.Fatal(err)
	}
	sha := ContentSHA(path)
	hs := HashSpec(FileSpec(path))
	if got, _ := hs.Get("sha"); got != sha {
		t.Errorf("HashSpec sha = %q, want %q", got, sha)
	}
	if _, hasPath := hs.Get("path"); hasPath {
		t.Error("HashSpec kept the path")
	}
	// A byte-identical copy under another name hashes identically.
	b, _ := os.ReadFile(path)
	copyPath := filepath.Join(dir, "renamed.bin")
	if err := os.WriteFile(copyPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if !HashSpec(FileSpec(copyPath)).Equal(hs) {
		t.Error("identical content at a different path hashed differently")
	}
	// Non-file specs pass through untouched; unreadable traces keep the
	// path form (and WireSpec refuses them).
	if !HashSpec(MustSpec("stream")).Equal(MustSpec("stream")) {
		t.Error("HashSpec touched a non-file spec")
	}
	missing := FileSpec(filepath.Join(dir, "nope.trace"))
	if !HashSpec(missing).Equal(missing) {
		t.Error("HashSpec invented a hash for an unreadable trace")
	}
	if _, err := WireSpec(missing); err == nil {
		t.Error("WireSpec shipped an unreadable trace")
	}
	// Building from a sha-only spec fails with a resolution error (the
	// worker-side index rewrites it to a path first), never a panic.
	if _, err := NewGenerator(MustSpec("file:sha=ab12"), 1); err == nil {
		t.Error("sha-only file spec built without local resolution")
	}
	// Normalization of both forms is valid and cheap (no file IO).
	if _, err := Normalize(MustSpec("file:sha=ab12")); err != nil {
		t.Errorf("sha form does not normalize: %v", err)
	}
	if _, err := Normalize(FileSpec(path)); err != nil {
		t.Errorf("path form does not normalize: %v", err)
	}
	if _, err := Normalize(Spec{Name: "file"}); err == nil {
		t.Error("file spec with neither path nor sha normalized")
	}
	// path and sha together are rejected: a claimed sha beside a path
	// would be silently ignored, letting an edited trace run under a
	// stale pin.
	if _, err := Normalize(FileSpec(path).With("sha", sha)); err == nil {
		t.Error("file spec with both path and sha normalized")
	}
}

func TestParamDefaultsSchema(t *testing.T) {
	defs, ok := ParamDefaults("gups")
	if !ok {
		t.Fatal("gups not registered")
	}
	for _, key := range []string{"seed", "memper1000", "storepct", "footprint"} {
		if _, ok := defs[key]; !ok {
			t.Errorf("gups schema missing %q", key)
		}
	}
	if _, ok := ParamDefaults("no-such-gen"); ok {
		t.Error("schema reported for unregistered name")
	}
	// The returned map is a copy: mutating it must not poison the registry.
	defs["footprint"] = "tampered"
	again, _ := ParamDefaults("gups")
	if again["footprint"] == "tampered" {
		t.Error("ParamDefaults leaks registry state")
	}
}

func TestSizeParsing(t *testing.T) {
	for raw, want := range map[string]uint64{
		"64mb": 64 << 20, "512kb": 512 << 10, "1gb": 1 << 30, "4096": 4096, "2MB": 2 << 20,
	} {
		got, err := ParseSize(raw)
		if err != nil || uint64(got) != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", raw, got, err, want)
		}
	}
	for _, raw := range []string{"", "mb", "12tb", "-1", "1.5mb"} {
		if _, err := ParseSize(raw); err == nil {
			t.Errorf("ParseSize(%q) accepted", raw)
		}
	}
	for _, v := range []uint64{64 << 20, 512 << 10, 1 << 30, 4097} {
		s := FormatSize(addrFromState(v))
		back, err := ParseSize(s)
		if err != nil || uint64(back) != v {
			t.Errorf("FormatSize/ParseSize round trip %d -> %q -> %d (%v)", v, s, back, err)
		}
	}
}

func mustGen(t *testing.T, spec string, seed uint64) Generator {
	t.Helper()
	g, err := NewGenerator(MustSpec(spec), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
