package trace

import (
	"fmt"

	"bopsim/internal/mem"
)

// Checkpoint state for generators. A Generator is an infinite deterministic
// stream, so its whole state is a cursor: the random stream plus each
// pattern component's position. StatefulGenerator is implemented by every
// in-tree generator (Workload, including the thrasher, and FileTrace); the
// engine refuses to checkpoint a simulation driven by a generator that does
// not implement it.

// GenState is the serialized cursor of one generator. Kind selects which
// fields are meaningful: "workload" uses Rand/AluPC/Comps, "file" uses
// Idx/Wraps, "mix" uses Rand/Subs (one entry per sub-generator). Kinds are
// the workload counterpart of prefetch.StateCodec: every registered
// generator implements StatefulGenerator, whose save/restore pair is the
// codec for its kind, and restore validates the kind tag so a cursor can
// never be fed into a generator of a different shape.
//
//bovet:schemalock
type GenState struct {
	Kind  string
	Rand  uint64
	AluPC uint64
	Comps []ComponentState
	Idx   int
	Wraps uint64
	Subs  []GenState
}

// ComponentState is the cursor of one workload pattern component. It is the
// union of every component type's fields; each type reads the ones it owns.
type ComponentState struct {
	Pos       uint64
	WordIdx   int
	Idx       int
	PCNext    uint64
	Positions []int64
	Starts    []int64
	Cur       int
	Staggered bool
}

// StatefulGenerator is a Generator whose cursor can be saved and restored,
// for checkpoint/restore of a running simulation.
type StatefulGenerator interface {
	Generator
	SaveGenState() GenState
	RestoreGenState(GenState) error
}

var (
	_ StatefulGenerator = (*Workload)(nil)
	_ StatefulGenerator = (*FileTrace)(nil)
	_ StatefulGenerator = (*mixGen)(nil)
)

// SaveGenState implements StatefulGenerator.
func (w *Workload) SaveGenState() GenState {
	st := GenState{Kind: "workload", Rand: w.rand.State(), AluPC: w.aluPC}
	for _, wc := range w.comps {
		st.Comps = append(st.Comps, wc.comp.saveState())
	}
	return st
}

// RestoreGenState implements StatefulGenerator.
func (w *Workload) RestoreGenState(st GenState) error {
	if st.Kind != "workload" {
		return fmt.Errorf("trace: generator state kind %q, want \"workload\"", st.Kind)
	}
	if len(st.Comps) != len(w.comps) {
		return fmt.Errorf("trace: state has %d components, workload %s has %d", len(st.Comps), w.name, len(w.comps))
	}
	for i, wc := range w.comps {
		if err := wc.comp.restoreState(st.Comps[i]); err != nil {
			return fmt.Errorf("trace: workload %s component %d: %w", w.name, i, err)
		}
	}
	w.rand.SetState(st.Rand)
	w.aluPC = st.AluPC
	return nil
}

// SaveGenState implements StatefulGenerator.
func (t *FileTrace) SaveGenState() GenState {
	return GenState{Kind: "file", Idx: t.idx, Wraps: t.Wraps}
}

// RestoreGenState implements StatefulGenerator.
func (t *FileTrace) RestoreGenState(st GenState) error {
	if st.Kind != "file" {
		return fmt.Errorf("trace: generator state kind %q, want \"file\"", st.Kind)
	}
	if st.Idx < 0 || st.Idx >= t.count {
		return fmt.Errorf("trace: cursor %d out of range for %d-instruction trace", st.Idx, t.count)
	}
	t.idx = st.Idx
	t.Wraps = st.Wraps
	return nil
}

func addrFromState(v uint64) mem.Addr { return mem.Addr(v) }

func (s *streamComp) saveState() ComponentState {
	return ComponentState{Pos: uint64(s.pos)}
}

func (s *streamComp) restoreState(st ComponentState) error {
	s.pos = addrFromState(st.Pos)
	return nil
}

func (c *chunkComp) saveState() ComponentState {
	return ComponentState{Pos: uint64(c.pos), WordIdx: c.wordIdx}
}

func (c *chunkComp) restoreState(st ComponentState) error {
	if st.WordIdx < 0 || st.WordIdx >= c.chunkWords {
		return fmt.Errorf("chunk word index %d out of range 0..%d", st.WordIdx, c.chunkWords-1)
	}
	c.pos = addrFromState(st.Pos)
	c.wordIdx = st.WordIdx
	return nil
}

func (p *patternComp) saveState() ComponentState {
	return ComponentState{Pos: uint64(p.pos), Idx: p.idx, WordIdx: p.wordIdx}
}

func (p *patternComp) restoreState(st ComponentState) error {
	if st.Idx < 0 || st.Idx >= len(p.strides) {
		return fmt.Errorf("pattern stride index %d out of range 0..%d", st.Idx, len(p.strides)-1)
	}
	if st.WordIdx < 0 || st.WordIdx >= p.chunkWords {
		return fmt.Errorf("pattern word index %d out of range 0..%d", st.WordIdx, p.chunkWords-1)
	}
	p.pos = addrFromState(st.Pos)
	p.idx = st.Idx
	p.wordIdx = st.WordIdx
	return nil
}

func (s *stripesComp) saveState() ComponentState {
	return ComponentState{
		Positions: append([]int64(nil), s.positions...),
		Starts:    append([]int64(nil), s.starts...),
		Cur:       s.cur,
		WordIdx:   s.wordIdx,
		Staggered: s.staggered,
	}
}

func (s *stripesComp) restoreState(st ComponentState) error {
	if len(st.Positions) != s.stripes || len(st.Starts) != s.stripes {
		return fmt.Errorf("stripes state covers %d/%d stripes, component has %d",
			len(st.Positions), len(st.Starts), s.stripes)
	}
	if st.Cur < 0 || st.Cur >= s.stripes {
		return fmt.Errorf("stripe cursor %d out of range 0..%d", st.Cur, s.stripes-1)
	}
	if st.WordIdx < 0 || st.WordIdx >= s.chunkWords {
		return fmt.Errorf("stripes word index %d out of range 0..%d", st.WordIdx, s.chunkWords-1)
	}
	copy(s.positions, st.Positions)
	copy(s.starts, st.Starts)
	s.cur = st.Cur
	s.wordIdx = st.WordIdx
	s.staggered = st.Staggered
	return nil
}

func (c *randomComp) saveState() ComponentState {
	return ComponentState{PCNext: c.pcNext}
}

func (c *randomComp) restoreState(st ComponentState) error {
	c.pcNext = st.PCNext
	return nil
}
