package trace

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []string{
		"429.mcf",
		"459.GemsFDTD",
		"stream",
		"stream:stride=128",
		"gups:footprint=64mb,storepct=25",
		"mix:gens=stream+pchase,weights=2+1",
		"file:path=/tmp/x.trace",
		"429.mcf:footprint=128mb,memper1000=300",
	}
	for _, c := range cases {
		sp, err := ParseSpec(c)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c, err)
			continue
		}
		if got := sp.String(); got != c {
			t.Errorf("ParseSpec(%q).String() = %q", c, got)
		}
		again, err := ParseSpec(sp.String())
		if err != nil || !again.Equal(sp) {
			t.Errorf("re-parse of %q not identical (err %v)", sp, err)
		}
	}
}

func TestParseSpecNormalizesSyntax(t *testing.T) {
	sp, err := ParseSpec("  stream : STRIDE=128 , storepct=5 ")
	if err != nil {
		t.Fatal(err)
	}
	if sp.String() != "stream:storepct=5,stride=128" {
		t.Errorf("canonical form = %q", sp)
	}
	// Names stay case-sensitive: the SPEC stand-ins keep their published
	// spellings, and a lowercased one is simply a different (unknown) name.
	sp = MustSpec("459.GemsFDTD")
	if sp.Name != "459.GemsFDTD" {
		t.Errorf("name case not preserved: %q", sp.Name)
	}
}

func TestParseSpecRejectsBadInput(t *testing.T) {
	for _, c := range []string{
		"",
		":d=1",
		"stream:",
		"stream:stride",
		"stream:stride=",
		"stream:=4",
		"stream:stride=1,stride=2",
		"str eam",
		"stream:st ride=4",
		"stream:stride=a;b",
		"stream:stride=a:b",
		"a,b",
	} {
		if sp, err := ParseSpec(c); err == nil {
			t.Errorf("ParseSpec(%q) accepted as %q", c, sp)
		}
	}
}

func TestParseSpecList(t *testing.T) {
	specs, err := ParseSpecList("gups:footprint=64mb;stream:stride=128")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].String() != "gups:footprint=64mb" || specs[1].String() != "stream:stride=128" {
		t.Errorf("parsed %v", specs)
	}
	if _, err := ParseSpecList(";;"); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseSpecList("stream;str eam"); err == nil {
		t.Error("bad member accepted")
	}
	// Position is per-core: an interior empty entry must error, not
	// silently shift later specs onto earlier cores. A trailing ';' is
	// harmless and tolerated.
	if _, err := ParseSpecList("gups;;stream"); err == nil {
		t.Error("interior empty entry accepted")
	}
	if specs, err := ParseSpecList("gups;stream;"); err != nil || len(specs) != 2 {
		t.Errorf("trailing separator: %v, %v", specs, err)
	}
}

func TestSpecWithWithout(t *testing.T) {
	base := MustSpec("stream")
	with := base.With("stride", "128")
	if base.Params != nil {
		t.Error("With modified the receiver")
	}
	if with.String() != "stream:stride=128" {
		t.Errorf("With = %q", with)
	}
	if got := with.Without("stride"); got.String() != "stream" {
		t.Errorf("Without = %q", got)
	}
}

// FuzzParseWorkloadSpec is the workload-axis twin of prefetch's
// FuzzParseSpec, run with a fixed budget in CI: ParseSpec must never panic,
// and any accepted input must round-trip through String.
func FuzzParseWorkloadSpec(f *testing.F) {
	for _, seed := range []string{
		"429.mcf", "459.GemsFDTD", "stream:stride=128",
		"gups:footprint=64mb,storepct=25", "mix:gens=stream+pchase,weights=2+1",
		"file:path=/tmp/x.trace", "file:sha=ab12", "a:b=c", ";", "x:y=z;q",
		"429.mcf:footprint=128mb", strings.Repeat("a", 300),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			return
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", sp.String(), s, err)
		}
		if !again.Equal(sp) {
			t.Fatalf("round trip changed spec: %q -> %q -> %q", s, sp, again)
		}
		// Normalize must never panic either, whatever the name resolves to.
		if n, err := Normalize(sp); err == nil {
			if _, err := ParseSpec(n.String()); err != nil {
				t.Fatalf("normalized form %q does not re-parse: %v", n, err)
			}
		}
	})
}
