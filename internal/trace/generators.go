package trace

import (
	"fmt"
	"strconv"
	"strings"

	"bopsim/internal/mem"
	"bopsim/internal/rng"
)

// This file registers the parameterized micro-pattern generators the
// registry makes cheap to grow: the cache thrasher of section 5.1, a pure
// constant-stride stream, a pointer chase, a GUPS-style random-update
// kernel, the recorded-trace replayer, and a "mix" combinator interleaving
// other registered generators. None of them is known to the engine or the
// scheduler by name — they are constructed from Specs like everything else.

func init() {
	registerMicrothrash()
	registerStream()
	registerPChase()
	registerGUPS()
	registerMix()
	registerFile()
}

// registerMixerPattern registers one single-component mixer generator:
// the Defaults map, key typing, Validate and Build skeleton are all
// derived from one mixerPrep, so the four micro-patterns cannot drift
// apart as parameters or validation rules evolve.
type mixerPattern struct {
	name, help string
	prep       mixerPrep
	// hasStride/hasStore expose the stride / storepct keys in the schema;
	// patterns without them still validate against prep's fixed values.
	hasStride, hasStore bool
	comps               func(c mixerCfg) []weightedComp
}

func registerMixerPattern(d mixerPattern) {
	defaults := map[string]string{
		"seed":       "0",
		"memper1000": strconv.Itoa(d.prep.mp),
		"footprint":  FormatSize(d.prep.fp),
	}
	intKeys := []string{"seed", "memper1000"}
	if d.hasStride {
		defaults["stride"] = strconv.Itoa(d.prep.stride)
		intKeys = append(intKeys, "stride")
	}
	if d.hasStore {
		defaults["storepct"] = strconv.Itoa(d.prep.store)
		intKeys = append(intKeys, "storepct")
	}
	Register(d.name, Definition{
		Defaults: defaults,
		SizeKeys: []string{"footprint"},
		IntKeys:  intKeys,
		Validate: d.prep.validate,
		Build: func(seed uint64, v Values) (Generator, error) {
			c, err := d.prep.parse(seed, v)
			if err != nil {
				return nil, err
			}
			return newMixer(d.name, c.mp, d.comps(c), c.seed), nil
		},
		Help: d.help,
	})
}

// registerMicrothrash registers the cache-thrashing micro-benchmark the
// engine schedules on satellite cores by default. Its defaults reproduce
// the historical NewThrasher stream bit for bit.
func registerMicrothrash() {
	registerMixerPattern(mixerPattern{
		name:      "microthrash",
		help:      "cache-thrashing writer of section 5.1 (satellite-core default)",
		prep:      mixerPrep{mp: 500, stride: 64, store: 100, fp: 256 * mb},
		hasStride: true, hasStore: true,
		comps: func(c mixerCfg) []weightedComp {
			return []weightedComp{{1, newStream(0x8000, regionBase(16), int64(c.stride), c.fp, c.store)}}
		},
	})
}

func registerStream() {
	registerMixerPattern(mixerPattern{
		name:      "stream",
		help:      "pure constant-stride stream (stride in bytes, wraps in footprint)",
		prep:      mixerPrep{mp: 1000, stride: 64, store: 0, fp: 8 * mb},
		hasStride: true, hasStore: true,
		comps: func(c mixerCfg) []weightedComp {
			return []weightedComp{{1, newStream(0x4000, regionBase(0), int64(c.stride), c.fp, c.store)}}
		},
	})
}

func registerPChase() {
	registerMixerPattern(mixerPattern{
		name: "pchase",
		help: "serialized pointer chase over a uniform-random working set",
		prep: mixerPrep{mp: 250, stride: 8, store: 0, fp: 64 * mb},
		comps: func(c mixerCfg) []weightedComp {
			return []weightedComp{{1, newRandom(0x4000, 1, regionBase(0), c.fp, 0, true)}}
		},
	})
}

func registerGUPS() {
	registerMixerPattern(mixerPattern{
		name:     "gups",
		help:     "GUPS-style random update (independent reads + writes)",
		prep:     mixerPrep{mp: 500, stride: 8, store: 50, fp: 64 * mb},
		hasStore: true,
		comps: func(c mixerCfg) []weightedComp {
			return []weightedComp{{1, newRandom(0x4000, 8, regionBase(0), c.fp, c.store, false)}}
		},
	})
}

// mixerPrep carries one mixer registration's parameter defaults and
// provides the shared parse-and-check step both Build and Validate run —
// so Normalize never has to construct a generator just to validate a spec,
// and the two paths cannot drift.
type mixerPrep struct {
	mp, stride, store int
	fp                mem.Addr
}

// mixerCfg is one parsed, validated parameter set.
type mixerCfg struct {
	seed              uint64
	mp, stride, store int
	fp                mem.Addr
}

func (d mixerPrep) parse(seed uint64, v Values) (mixerCfg, error) {
	var err error
	c := mixerCfg{
		seed:   v.Seed(seed, &err),
		mp:     v.Int("memper1000", d.mp, &err),
		stride: v.Int("stride", d.stride, &err),
		store:  v.Int("storepct", d.store, &err),
		fp:     v.Size("footprint", d.fp, &err),
	}
	if err != nil {
		return mixerCfg{}, err
	}
	if err := checkMixerParams(c.mp, c.store, c.stride, c.fp); err != nil {
		return mixerCfg{}, err
	}
	return c, nil
}

func (d mixerPrep) validate(v Values) error {
	_, err := d.parse(1, v)
	return err
}

// checkMixerParams is the shared validation for every mixer-built
// generator (the benchmark stand-ins included): tighten a rule here and
// all registrations inherit it. Generators without a stride or storepct
// parameter pass a neutral in-range value.
func checkMixerParams(memPer1000, storePct, stride int, fp mem.Addr) error {
	if memPer1000 < 0 || memPer1000 > 1000 {
		return fmt.Errorf("memper1000=%d out of range 0..1000", memPer1000)
	}
	if storePct < 0 || storePct > 100 {
		return fmt.Errorf("storepct=%d out of range 0..100", storePct)
	}
	if stride < 1 {
		// A non-positive stride degenerates to a single hot line under the
		// components' wrap logic — reject rather than measure garbage.
		return fmt.Errorf("stride=%d must be >= 1", stride)
	}
	if mem.Addr(stride) >= fp {
		// A stride at or past the footprint wraps to position zero on every
		// step: the same single-hot-line degeneration, just spelled larger.
		return fmt.Errorf("stride=%d not below footprint %s", stride, FormatSize(fp))
	}
	if fp < 64*kb {
		// 64kb keeps every component's geometry meaningful after footprint
		// scaling: the striped patterns (433.milc's 32 stripes,
		// 459.GemsFDTD's 24-stripe stride sequence) need dozens of lines
		// per stripe, and below this floor they would degenerate to a
		// handful of hot lines.
		return fmt.Errorf("footprint %s below the 64kb minimum", FormatSize(fp))
	}
	if fp > mb<<10 {
		// Component address regions are spaced 1GB apart (regionBase), so a
		// larger footprint would silently overlap a benchmark's neighbouring
		// components. 1GB also dwarfs every cache level being studied.
		return fmt.Errorf("footprint %s above the 1gb region-spacing maximum", FormatSize(fp))
	}
	return nil
}

// maxWeight bounds one weight so any realistic weights list sums without
// overflowing the mixer's int accumulator (rng.Intn panics on a
// non-positive bound, which must never be reachable from a spec string).
const maxWeight = 1_000_000

// checkWeights is the shared validation for weights lists (the benchmark
// stand-ins' component weights and mix's interleave ratios): one entry per
// slot, every weight in 1..maxWeight.
func checkWeights(weights []int, slots int, what string) error {
	if len(weights) != slots {
		return fmt.Errorf("weights lists %d values, %s has %d", len(weights), what, slots)
	}
	for i, w := range weights {
		if w < 1 || w > maxWeight {
			return fmt.Errorf("weights[%d]=%d out of range 1..%d", i, w, maxWeight)
		}
	}
	return nil
}

// mixGen interleaves whole sub-generator streams by weight: each Next picks
// a sub-generator with probability weight/sum and forwards its instruction.
// Sub-generators keep their own ALU/memory mixes and address regions. The
// micro-pattern generators all place components at fixed bases
// (regionBase(0)), so by default mixed sub-generators — same-name or not —
// generally share a region: mix models contention on one working set. The
// region= parameter opts out per slot: a sub-generator with a non-zero
// region index is shifted into its own disjoint address range (see
// regionGen), turning the same mix into a model of co-running programs —
// the interference-matrix building block (DESIGN.md section 5).
type mixGen struct {
	rand      *rng.Stream
	subs      []StatefulGenerator
	weights   []int
	weightSum int
}

// Name implements Generator.
func (m *mixGen) Name() string { return "mix" }

// Next implements Generator.
//
//bovet:hotpath
func (m *mixGen) Next() Inst {
	pick := m.rand.Intn(m.weightSum)
	for i, w := range m.weights {
		pick -= w
		if pick < 0 {
			return m.subs[i].Next()
		}
	}
	return m.subs[len(m.subs)-1].Next()
}

// SaveGenState implements StatefulGenerator.
func (m *mixGen) SaveGenState() GenState {
	st := GenState{Kind: "mix", Rand: m.rand.State()}
	for _, sub := range m.subs {
		st.Subs = append(st.Subs, sub.SaveGenState())
	}
	return st
}

// RestoreGenState implements StatefulGenerator.
func (m *mixGen) RestoreGenState(st GenState) error {
	if st.Kind != "mix" {
		return fmt.Errorf("trace: generator state kind %q, want \"mix\"", st.Kind)
	}
	if len(st.Subs) != len(m.subs) {
		return fmt.Errorf("trace: state has %d sub-generators, mix has %d", len(st.Subs), len(m.subs))
	}
	for i, sub := range m.subs {
		if err := sub.RestoreGenState(st.Subs[i]); err != nil {
			return fmt.Errorf("trace: mix sub-generator %d: %w", i, err)
		}
	}
	m.rand.SetState(st.Rand)
	return nil
}

// regionSpan is the address-space stride of mix's region= parameter: 1TB,
// far above any component span the generators can produce (regionBase
// places components 1GB apart starting at 1<<36, and footprints are capped
// at 1GB), so distinct region indices can never collide.
const regionSpan = mem.Addr(1) << 40

// maxRegion bounds region indices. 255 regions of 1TB stay far inside the
// 64-bit address space while allowing any plausible co-run matrix.
const maxRegion = 255

// regionGen shifts every memory access of a sub-generator by a fixed
// region offset — the building block behind mix's region= parameter. The
// offset is spec-derived configuration, not state: checkpoint save and
// restore pass straight through to the wrapped generator, and a restored
// mix rebuilds the same offsets from its spec.
type regionGen struct {
	sub    StatefulGenerator
	offset mem.Addr
}

// Name implements Generator.
func (g *regionGen) Name() string { return g.sub.Name() }

// Next implements Generator.
//
//bovet:hotpath
func (g *regionGen) Next() Inst {
	inst := g.sub.Next()
	if inst.Op != OpALU {
		inst.VA += g.offset
	}
	return inst
}

// SaveGenState implements StatefulGenerator.
func (g *regionGen) SaveGenState() GenState { return g.sub.SaveGenState() }

// RestoreGenState implements StatefulGenerator.
func (g *regionGen) RestoreGenState(st GenState) error { return g.sub.RestoreGenState(st) }

// defMixGens is mix's default interleave, shared between the registered
// Defaults map and Build's fallback: if the two drifted, Normalize would
// drop one spelling as "the default" while Build constructed the other.
const defMixGens = "stream+gups"

func registerMix() {
	Register("mix", Definition{
		Defaults: map[string]string{
			"seed": "0",
			// gens is a '+'-separated list of registered generator names,
			// each built with its default parameters and a per-slot derived
			// seed; weights (default all 1) sets the interleave ratio;
			// region (default all 0) gives each slot an address-region
			// index — slots sharing an index share a working set, distinct
			// indices are disjoint 1TB-spaced regions (co-running programs).
			"gens":    defMixGens,
			"weights": "",
			"region":  "",
		},
		IntKeys: []string{"seed", "weights", "region"},
		CanonicalizeParams: func(params map[string]string) {
			// An all-ones weights list is the implicit default for any gens
			// (validation already pinned its length): drop it so
			// "mix:weights=1+1" and "mix" share one canonical form and one
			// cache key. An all-zero region list is the same kind of
			// implicit default.
			allEqual := func(key, def string) {
				raw, ok := params[key]
				if !ok {
					return
				}
				for _, part := range strings.Split(raw, "+") {
					if part != def {
						return
					}
				}
				delete(params, key)
			}
			allEqual("weights", "1")
			allEqual("region", "0")
		},
		Validate: func(v Values) error {
			_, _, _, err := parseMix(v)
			return err
		},
		Build: func(seed uint64, v Values) (Generator, error) {
			var err error
			seed = v.Seed(seed, &err)
			if err != nil {
				return nil, err
			}
			names, weights, regions, err := parseMix(v)
			if err != nil {
				return nil, err
			}
			m := &mixGen{rand: rng.New(seed), weights: weights}
			for i, name := range names {
				// Sub-generators get deterministic distinct seeds derived
				// from the mix's own, so two mixed instances of the same
				// generator do not walk in lockstep.
				sub, err := NewGenerator(Spec{Name: name}, seed+uint64(i+1)*1000003)
				if err != nil {
					return nil, fmt.Errorf("gens[%d]: %v", i, err)
				}
				sg, ok := sub.(StatefulGenerator)
				if !ok {
					return nil, fmt.Errorf("gens[%d] %q cannot be checkpointed", i, name)
				}
				if regions[i] > 0 {
					sg = &regionGen{sub: sg, offset: mem.Addr(regions[i]) * regionSpan}
				}
				m.subs = append(m.subs, sg)
			}
			for _, w := range weights {
				m.weightSum += w
			}
			return m, nil
		},
		Help: "weighted interleave of other registered generators (gens=a+b, region=0+1 for disjoint address regions)",
	})
}

// parseMix is the shared parameter step of mix's Build and Validate: the
// gens list resolved and checked against the registry (names must be
// registered, non-mix generators), weights defaulted to all ones and
// bounds-checked, region indices defaulted to all zeros (shared region)
// and bounds-checked. Sub-generator construction itself stays in Build.
func parseMix(v Values) (names []string, weights, regions []int, err error) {
	weights = v.Ints("weights", nil, &err)
	regions = v.Ints("region", nil, &err)
	if err != nil {
		return nil, nil, nil, err
	}
	raw, ok := v["gens"]
	if !ok {
		raw = defMixGens
	}
	names = strings.Split(raw, "+")
	for i, name := range names {
		if name == "mix" {
			return nil, nil, nil, fmt.Errorf("mix cannot nest another mix")
		}
		// Sub-generators run with their default parameters, so each name
		// must normalize as a bare spec — which also rejects registered
		// names that cannot build without parameters ("file" needs a path).
		if _, e := Normalize(Spec{Name: name}); e != nil {
			return nil, nil, nil, fmt.Errorf("gens[%d]: %v", i, e)
		}
	}
	if weights == nil {
		weights = make([]int, len(names))
		for i := range weights {
			weights[i] = 1
		}
	}
	if e := checkWeights(weights, len(names), "gens"); e != nil {
		return nil, nil, nil, e
	}
	if regions == nil {
		regions = make([]int, len(names))
	}
	if len(regions) != len(names) {
		return nil, nil, nil, fmt.Errorf("region lists %d values, gens has %d", len(regions), len(names))
	}
	for i, r := range regions {
		if r < 0 || r > maxRegion {
			return nil, nil, nil, fmt.Errorf("region[%d]=%d out of range 0..%d", i, r, maxRegion)
		}
	}
	return names, weights, regions, nil
}

// registerFile registers the recorded-trace replayer: the spec-form
// spelling of the historical Options.TracePath escape hatch. Locally a
// trace is named by path; on the wire and in cache keys it is named by
// content SHA-256 (see HashSpec), which a worker resolves against its own
// trace directories.
func registerFile() {
	Register("file", Definition{
		Defaults: map[string]string{"path": "", "sha": ""},
		Validate: func(v Values) error {
			path, sha := v["path"], v["sha"]
			if path == "" && sha == "" {
				return fmt.Errorf("need path=FILE (local) or sha=HEX (content-addressed)")
			}
			if path != "" && sha != "" {
				// A claimed sha next to a path would be silently ignored
				// (hashing recomputes from content), so an edited trace
				// could run under a stale pin with no diagnostic. One
				// spelling only: path locally, sha on the wire.
				return fmt.Errorf("path and sha are mutually exclusive (path names local content; sha is the wire/cache identity)")
			}
			return nil
		},
		Build: func(_ uint64, v Values) (Generator, error) {
			path := v["path"]
			if path == "" {
				if sha := v["sha"]; sha != "" {
					return nil, fmt.Errorf("trace %.12s… not available locally (no path parameter; resolve the sha against a local trace directory)", sha)
				}
				return nil, fmt.Errorf("need path=FILE or sha=HEX")
			}
			return OpenTraceFile(path)
		},
		Help: "recorded trace replay (path=FILE locally, sha=HEX on the wire)",
	})
}
