package trace

import (
	"bytes"
	"encoding/gob"
	"path/filepath"
	"reflect"
	"testing"
)

// genRoundTrip advances gen, saves its cursor, byte-checks the encoding,
// restores into fresh and verifies both produce the same continuation.
func genRoundTrip(t *testing.T, gen, fresh StatefulGenerator, advance int) {
	t.Helper()
	for i := 0; i < advance; i++ {
		gen.Next()
	}
	st := gen.SaveGenState()

	var a bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded GenState
	if err := gob.NewDecoder(bytes.NewReader(a.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("generator state encode -> decode -> encode is not byte-stable")
	}

	if err := fresh.RestoreGenState(decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.SaveGenState(), st) {
		t.Fatal("restored cursor differs from saved cursor")
	}
	for i := 0; i < 5000; i++ {
		want, got := gen.Next(), fresh.Next()
		if want != got {
			t.Fatalf("instruction %d after restore: got %+v, want %+v", i, got, want)
		}
	}
}

// TestWorkloadCursorRoundTrip covers every workload (every component type:
// stream, chunk, pattern, stripes, random) plus the thrasher.
func TestWorkloadCursorRoundTrip(t *testing.T) {
	names := append(Benchmarks(), "microthrash")
	mk := func(name string) StatefulGenerator {
		if name == "microthrash" {
			return NewThrasher(3)
		}
		return MustWorkload(name, 3)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			genRoundTrip(t, mk(name), mk(name), 12_345)
		})
	}
}

// TestFileTraceCursorRoundTrip covers the recorded-trace generator,
// including a wrap of the recording.
func TestFileTraceCursorRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := WriteTraceFile(path, MustWorkload("456.hmmer", 1), 1000); err != nil {
		t.Fatal(err)
	}
	open := func() *FileTrace {
		ft, err := OpenTraceFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return ft
	}
	genRoundTrip(t, open(), open(), 1500) // past one wrap
}

// TestGenStateRejectsMismatch checks cursor states cannot restore into the
// wrong generator shape.
func TestGenStateRejectsMismatch(t *testing.T) {
	w := MustWorkload("433.milc", 1)
	ft := &FileTrace{name: "x", recs: make([]byte, 10*recordSize), count: 10}

	if err := w.RestoreGenState(ft.SaveGenState()); err == nil {
		t.Error("file cursor restored into a workload")
	}
	if err := ft.RestoreGenState(w.SaveGenState()); err == nil {
		t.Error("workload cursor restored into a file trace")
	}
	st := ft.SaveGenState()
	st.Idx = 99
	if err := ft.RestoreGenState(st); err == nil {
		t.Error("out-of-range file cursor accepted")
	}
	other := MustWorkload("400.perlbench", 1).SaveGenState()
	if err := w.RestoreGenState(other); err == nil {
		t.Error("cursor from a workload with different components accepted")
	}
}
