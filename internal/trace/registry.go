package trace

import (
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bopsim/internal/mem"
)

// This file is the workload-generator registry, the workload-axis mirror of
// the prefetcher registry (internal/prefetch/registry.go). Each generator
// package — the SPEC stand-ins, the parameterized micro-patterns, the trace
// replayer — registers a Definition for its name in an init function, and
// everything above the registry (the engine, the experiment scheduler, the
// CLIs) constructs generators from Specs only, so opening a new workload
// never touches those layers.

// Definition describes one registered workload generator.
type Definition struct {
	// Defaults enumerates every accepted parameter key with the canonical
	// rendering of its default value (the empty string marks a parameter
	// with no default, like file's path). A spec naming a key outside this
	// set is rejected, and Normalize drops parameters spelled with their
	// default value, so equivalent specs share one canonical form (and one
	// cache key).
	Defaults map[string]string
	// Build constructs the generator. seed is the run-derived seed for the
	// core the generator will drive (Options.Seed + core*7919); a spec's
	// explicit seed parameter overrides it (see Values.Seed). Keys have
	// been validated against Defaults already; Build parses the values and
	// may reject semantically invalid combinations.
	Build func(seed uint64, v Values) (Generator, error)
	// Validate, when non-nil, replaces the Build-based parameter check in
	// Normalize. Generators whose construction has side effects or real
	// cost (file opens and parses a whole trace) use it so normalization
	// stays cheap and pure.
	Validate func(v Values) error
	// SizeKeys lists the parameter keys whose values are byte sizes.
	// Normalize re-renders them canonically (FormatSize of ParseSize), so
	// "128MB", "134217728" and "128mb" are one canonical form — and one
	// cache key, one warmup signature. Keys not listed keep their raw
	// spelling (a seed of 4096 must not become "4kb").
	SizeKeys []string
	// IntKeys lists the parameter keys whose values are plain integers or
	// '+'-separated integer lists (weights); Normalize re-renders them
	// canonically too, so "064" and "64" are one spelling of one stride
	// and "03+1" one spelling of weights "3+1". String-typed keys (gens,
	// path, sha) must not appear in either list — a digits-only name or
	// hash would be corrupted by numeric re-rendering.
	IntKeys []string
	// CanonicalizeParams, when non-nil, runs on the validated parameter
	// map during Normalize, after default-valued keys have been dropped.
	// It handles cross-parameter defaults the per-key string comparison
	// cannot see — mix deletes an explicitly-spelled all-ones weights
	// list, which is the implicit default for any gens value.
	CanonicalizeParams func(params map[string]string)
	// Help is a one-line description for -list-workloads output.
	Help string
}

var genRegistry = struct {
	mu   sync.RWMutex
	defs map[string]Definition
}{defs: make(map[string]Definition)}

// Register registers a workload generator definition under name. It panics
// on a duplicate or syntactically invalid name — registration is an
// init-time programming action, not a runtime input.
func Register(name string, def Definition) {
	if err := checkSpecName(name); err != nil {
		panic(fmt.Sprintf("trace: invalid registration name %q: %v", name, err))
	}
	if def.Build == nil {
		panic(fmt.Sprintf("trace: registration %q has no Build", name))
	}
	genRegistry.mu.Lock()
	defer genRegistry.mu.Unlock()
	if _, dup := genRegistry.defs[name]; dup {
		panic(fmt.Sprintf("trace: workload generator %q registered twice", name))
	}
	genRegistry.defs[name] = def
}

// NewGenerator builds the workload generator described by spec, seeding it
// with seed unless the spec carries an explicit seed parameter. Unknown
// names and parameters, and invalid parameter values, are errors.
func NewGenerator(spec Spec, seed uint64) (Generator, error) {
	def, spec, err := lookupGen(spec)
	if err != nil {
		return nil, err
	}
	g, err := def.Build(seed, Values(spec.Params))
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %v", spec.Name, err)
	}
	return g, nil
}

// Normalize validates spec against the registry and returns its canonical
// form: parameters restricted to the registered key set and parameters
// spelled with their default value dropped — so "stream:stride=64" and
// "stream" normalize (and therefore hash) identically.
func Normalize(spec Spec) (Spec, error) {
	def, spec, err := lookupGen(spec)
	if err != nil {
		return Spec{}, err
	}
	if def.Validate != nil {
		if err := def.Validate(Values(spec.Params)); err != nil {
			return Spec{}, fmt.Errorf("trace: %s: %v", spec.Name, err)
		}
	} else if _, err := def.Build(1, Values(spec.Params)); err != nil {
		// Building validates the parameter values; generator construction
		// is cheap by design for everything that opts out via Validate.
		return Spec{}, fmt.Errorf("trace: %s: %v", spec.Name, err)
	}
	out := Spec{Name: spec.Name}
	for key, value := range spec.Params {
		// Size- and integer-typed values re-render canonically first, so
		// every spelling of one value shares one canonical form (and
		// default-valued ones string-match the registered default below).
		switch {
		case slices.Contains(def.SizeKeys, key):
			if n, err := ParseSize(value); err == nil {
				value = FormatSize(n)
			}
		case slices.Contains(def.IntKeys, key):
			if canon, ok := canonIntList(value); ok {
				value = canon
			}
		}
		if def.Defaults[key] == value {
			continue // spelled-out default: drop for a stable canonical form
		}
		if out.Params == nil {
			out.Params = make(map[string]string)
		}
		out.Params[key] = value
	}
	if def.CanonicalizeParams != nil && out.Params != nil {
		def.CanonicalizeParams(out.Params)
		if len(out.Params) == 0 {
			out.Params = nil
		}
	}
	return out, nil
}

// canonIntList re-renders a decimal integer or '+'-separated integer list
// in canonical form; inputs with any non-integer element pass through
// untouched (Build reports the real error). Unsigned parsing comes first
// so the full uint64 seed range canonicalizes, not just int64's.
func canonIntList(value string) (string, bool) {
	parts := strings.Split(value, "+")
	for i, p := range parts {
		if n, err := strconv.ParseUint(p, 10, 64); err == nil {
			parts[i] = strconv.FormatUint(n, 10)
			continue
		}
		n, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return "", false
		}
		parts[i] = strconv.FormatInt(n, 10)
	}
	return strings.Join(parts, "+"), true
}

// Names returns the sorted names of every registered workload generator.
func Names() []string {
	genRegistry.mu.RLock()
	defer genRegistry.mu.RUnlock()
	out := make([]string, 0, len(genRegistry.defs))
	for k := range genRegistry.defs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Help returns the registered help line for name ("" when unknown).
func Help(name string) string {
	genRegistry.mu.RLock()
	defer genRegistry.mu.RUnlock()
	return genRegistry.defs[name].Help
}

// ParamDefaults returns a copy of the registered parameter schema for name:
// every accepted key with its canonical default rendering. The second
// result reports whether the name is registered.
func ParamDefaults(name string) (map[string]string, bool) {
	genRegistry.mu.RLock()
	defer genRegistry.mu.RUnlock()
	def, ok := genRegistry.defs[name]
	if !ok {
		return nil, false
	}
	out := make(map[string]string, len(def.Defaults))
	for k, v := range def.Defaults {
		out[k] = v
	}
	return out, true
}

func lookupGen(spec Spec) (Definition, Spec, error) {
	spec = spec.Canonical()
	genRegistry.mu.RLock()
	def, ok := genRegistry.defs[spec.Name]
	genRegistry.mu.RUnlock()
	if !ok {
		if err := checkSpecName(spec.Name); err != nil {
			// A syntactically invalid name usually means an unparsed spec
			// string landed in Spec.Name; point at the real problem rather
			// than "unknown workload".
			return Definition{}, Spec{}, fmt.Errorf("trace: invalid workload spec name %q: %v (parameterized specs are name:key=value,...)",
				spec.Name, err)
		}
		return Definition{}, Spec{}, fmt.Errorf("trace: unknown workload %q (registered: %s)",
			spec.Name, strings.Join(Names(), "|"))
	}
	// Sorted iteration so the same bad spec always reports the same first
	// unknown key, whatever the map's order.
	paramKeys := make([]string, 0, len(spec.Params))
	for k := range spec.Params {
		paramKeys = append(paramKeys, k)
	}
	sort.Strings(paramKeys)
	for _, key := range paramKeys {
		if _, known := def.Defaults[key]; !known {
			keys := make([]string, 0, len(def.Defaults))
			for k := range def.Defaults {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return Definition{}, Spec{}, fmt.Errorf("trace: %s has no parameter %q (accepted: %s)",
				spec.Name, key, strings.Join(keys, "|"))
		}
	}
	return def, spec, nil
}

// FileSpec returns the spec replaying the recorded trace at path — the
// spec-form spelling of the historical Options.TracePath escape hatch.
func FileSpec(path string) Spec {
	return Spec{Name: "file", Params: map[string]string{"path": path}}
}

// HashSpec returns the spec in hash form: the spelling everything
// content-addressed (cache keys, warmup signatures, the distrib wire) uses.
// File specs are keyed by their trace's content SHA-256, never by path —
// editing a trace invalidates its cached results, and a worker's local copy
// hashes identically — so a resolvable path parameter is replaced by the
// content hash. Every other spec is returned unchanged. An unreadable
// trace falls back to the path spelling (the simulation will fail with the
// real error anyway).
func HashSpec(s Spec) Spec {
	if s.Name != "file" {
		return s
	}
	path, ok := s.Get("path")
	if !ok {
		return s
	}
	sha := ContentSHA(path)
	if sha == "" {
		return s
	}
	// Parameters other than path survive: a future file knob must keep
	// participating in cache keys and warmup signatures.
	return s.Without("path").With("sha", sha)
}

// WireSpec is HashSpec with an error for unreadable traces: the distrib
// coordinator must not ship a file job it cannot identify by content.
func WireSpec(s Spec) (Spec, error) {
	hs := HashSpec(s)
	if hs.Name == "file" {
		if _, ok := hs.Get("sha"); !ok {
			path, _ := s.Get("path")
			return Spec{}, fmt.Errorf("trace: %s unreadable, cannot ship by content hash", path)
		}
	}
	return hs, nil
}

// Values is the parameter map a Build function parses. The typed accessors
// take the default and an error accumulator: the first failed parse wins,
// so a factory reads every parameter unconditionally and checks err once.
type Values map[string]string

// Int parses an integer parameter.
func (v Values) Int(key string, def int, err *error) int {
	raw, ok := v[key]
	if !ok {
		return def
	}
	n, e := strconv.Atoi(raw)
	if e != nil {
		setGenErr(err, fmt.Errorf("parameter %s=%q: not an integer", key, raw))
		return def
	}
	return n
}

// Seed resolves the generator seed: an explicit non-zero seed parameter
// wins, otherwise the run-derived seed passed to Build ("seed=0", the
// registered default, means "use the run seed").
func (v Values) Seed(derived uint64, err *error) uint64 {
	raw, ok := v["seed"]
	if !ok {
		return derived
	}
	n, e := strconv.ParseUint(raw, 10, 64)
	if e != nil {
		setGenErr(err, fmt.Errorf("parameter seed=%q: not an unsigned integer", raw))
		return derived
	}
	if n == 0 {
		return derived
	}
	return n
}

// Ints parses a '+'-separated integer list parameter (e.g. "2+1").
func (v Values) Ints(key string, def []int, err *error) []int {
	raw, ok := v[key]
	if !ok {
		return def
	}
	parts := strings.Split(raw, "+")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, e := strconv.Atoi(p)
		if e != nil {
			setGenErr(err, fmt.Errorf("parameter %s=%q: %q is not an integer", key, raw, p))
			return def
		}
		out = append(out, n)
	}
	return out
}

// Size parses a byte-size parameter: a decimal byte count or a kb/mb/gb
// suffixed value ("64mb", "512kb").
func (v Values) Size(key string, def mem.Addr, err *error) mem.Addr {
	raw, ok := v[key]
	if !ok {
		return def
	}
	n, e := ParseSize(raw)
	if e != nil {
		setGenErr(err, fmt.Errorf("parameter %s=%q: %v", key, raw, e))
		return def
	}
	return n
}

func setGenErr(err *error, e error) {
	if *err == nil {
		*err = e
	}
}

// ParseSize parses a byte size: plain decimal bytes or kb/mb/gb suffixed
// (case-insensitive).
func ParseSize(raw string) (mem.Addr, error) {
	s := strings.ToLower(strings.TrimSpace(raw))
	mult := mem.Addr(1)
	switch {
	case strings.HasSuffix(s, "kb"):
		mult, s = kb, s[:len(s)-2]
	case strings.HasSuffix(s, "mb"):
		mult, s = mb, s[:len(s)-2]
	case strings.HasSuffix(s, "gb"):
		mult, s = mb<<10, s[:len(s)-2]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("not a size (want bytes or kb/mb/gb suffix)")
	}
	out := mem.Addr(n) * mult
	if n != 0 && out/mult != mem.Addr(n) {
		return 0, fmt.Errorf("size overflows")
	}
	return out, nil
}

// FormatSize renders a byte size in the canonical form ParseSize parses:
// the largest exact kb/mb/gb suffix, plain bytes otherwise.
func FormatSize(a mem.Addr) string {
	gb := mb << 10
	switch {
	case a >= gb && a%gb == 0:
		return strconv.FormatUint(uint64(a/gb), 10) + "gb"
	case a >= mb && a%mb == 0:
		return strconv.FormatUint(uint64(a/mb), 10) + "mb"
	case a >= kb && a%kb == 0:
		return strconv.FormatUint(uint64(a/kb), 10) + "kb"
	default:
		return strconv.FormatUint(uint64(a), 10)
	}
}
