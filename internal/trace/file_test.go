package trace

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	gen := MustWorkload("433.milc", 5)
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	ft, err := ReadTrace("milc", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != n {
		t.Fatalf("Len = %d, want %d", ft.Len(), n)
	}
	// Replaying must match a fresh generator with the same seed.
	ref := MustWorkload("433.milc", 5)
	for i := 0; i < n; i++ {
		if got, want := ft.Next(), ref.Next(); got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
}

func TestTraceWraps(t *testing.T) {
	gen := MustWorkload("416.gamess", 1)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, gen, 10); err != nil {
		t.Fatal(err)
	}
	ft, err := ReadTrace("g", &buf)
	if err != nil {
		t.Fatal(err)
	}
	first := ft.Next()
	for i := 0; i < 9; i++ {
		ft.Next()
	}
	if ft.Wraps != 1 {
		t.Errorf("Wraps = %d, want 1", ft.Wraps)
	}
	if got := ft.Next(); got != first {
		t.Errorf("wrap did not restart from the first record")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	if err := WriteTraceFile(path, MustWorkload("470.lbm", 3), 1000); err != nil {
		t.Fatal(err)
	}
	ft, err := OpenTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Len() != 1000 {
		t.Errorf("Len = %d", ft.Len())
	}
}

func TestTraceBadInputs(t *testing.T) {
	if _, err := ReadTrace("x", bytes.NewReader([]byte("NOTATRACE___"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated file: magic + count but no records.
	var buf bytes.Buffer
	buf.WriteString(traceMagic)
	buf.Write([]byte{5, 0, 0, 0, 0, 0, 0, 0})
	if _, err := ReadTrace("x", &buf); err == nil {
		t.Error("truncated trace accepted")
	}
	// Empty trace.
	buf.Reset()
	buf.WriteString(traceMagic)
	buf.Write(make([]byte, 8))
	if _, err := ReadTrace("x", &buf); err == nil {
		t.Error("empty trace accepted")
	}
	// Invalid opcode.
	buf.Reset()
	buf.WriteString(traceMagic)
	buf.Write([]byte{1, 0, 0, 0, 0, 0, 0, 0})
	rec := make([]byte, 18)
	rec[0] = 99
	buf.Write(rec)
	if _, err := ReadTrace("x", &buf); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := OpenTraceFile("/does/not/exist"); err == nil {
		t.Error("missing file accepted")
	}
}
