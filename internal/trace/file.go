package trace

// File-based traces: the paper's simulator is trace driven (section 5), so
// the library supports recording any Generator's instruction stream to a
// compact binary file and replaying it later. Replay wraps around at the
// end of the file, preserving the "infinite stream" Generator contract
// (the paper similarly stitches samples into a looped trace).
//
// Format (little endian):
//
//	magic   [8]byte  "BOTRACE1"
//	count   uint64   number of records
//	records count x {op uint8, flags uint8, pc uint64, va uint64}

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"bopsim/internal/mem"
)

const traceMagic = "BOTRACE1"

const flagDepPrevLoad = 1 << 0

// WriteTrace records n instructions from gen to w.
func WriteTrace(w io.Writer, gen Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return fmt.Errorf("trace: writing count: %w", err)
	}
	var rec [18]byte
	for i := uint64(0); i < n; i++ {
		inst := gen.Next()
		rec[0] = byte(inst.Op)
		rec[1] = 0
		if inst.DepPrevLoad {
			rec[1] |= flagDepPrevLoad
		}
		binary.LittleEndian.PutUint64(rec[2:], inst.PC)
		binary.LittleEndian.PutUint64(rec[10:], uint64(inst.VA))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteTraceFile records n instructions from gen into the named file.
func WriteTraceFile(path string, gen Generator, n uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteTrace(f, gen, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FileTrace replays a recorded trace, wrapping at the end. It implements
// Generator. The whole trace is held in memory (18 bytes per instruction),
// which keeps replay allocation-free and deterministic.
type FileTrace struct {
	name  string
	insts []Inst
	idx   int
	// Wraps counts how many times the trace restarted from the beginning.
	Wraps uint64
}

// ReadTrace parses a recorded trace from r.
func ReadTrace(name string, r io.Reader) (*FileTrace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	const maxCount = 1 << 30 // 18 GiB of records; refuse anything sillier
	if count > maxCount {
		return nil, fmt.Errorf("trace: implausible record count %d", count)
	}
	ft := &FileTrace{name: name, insts: make([]Inst, count)}
	var rec [18]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated at record %d: %w", i, err)
		}
		op := Op(rec[0])
		if op > OpStore {
			return nil, fmt.Errorf("trace: record %d has invalid op %d", i, op)
		}
		ft.insts[i] = Inst{
			Op:          op,
			DepPrevLoad: rec[1]&flagDepPrevLoad != 0,
			PC:          binary.LittleEndian.Uint64(rec[2:]),
			VA:          mem.Addr(binary.LittleEndian.Uint64(rec[10:])),
		}
	}
	return ft, nil
}

// OpenTraceFile loads a recorded trace from the named file.
func OpenTraceFile(path string) (*FileTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return ReadTrace(path, f)
}

// Name implements Generator.
func (t *FileTrace) Name() string { return t.name }

// Len returns the number of recorded instructions.
func (t *FileTrace) Len() int { return len(t.insts) }

// Next implements Generator, wrapping at the end of the recording.
func (t *FileTrace) Next() Inst {
	inst := t.insts[t.idx]
	t.idx++
	if t.idx == len(t.insts) {
		t.idx = 0
		t.Wraps++
	}
	return inst
}
