package trace

// File-based traces: the paper's simulator is trace driven (section 5), so
// the library supports recording any Generator's instruction stream to a
// compact binary file and replaying it later. Replay wraps around at the
// end of the file, preserving the "infinite stream" Generator contract
// (the paper similarly stitches samples into a looped trace).
//
// Format (little endian):
//
//	magic   [8]byte  "BOTRACE1"
//	count   uint64   number of records
//	records count x {op uint8, flags uint8, pc uint64, va uint64}

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"bopsim/internal/mem"
)

const traceMagic = "BOTRACE1"

const flagDepPrevLoad = 1 << 0

// recordSize is the on-disk size of one instruction record.
const recordSize = 18

// traceHeaderSize is the magic plus the record count.
const traceHeaderSize = len(traceMagic) + 8

// WriteTrace records n instructions from gen to w.
func WriteTrace(w io.Writer, gen Generator, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(traceMagic); err != nil {
		return fmt.Errorf("trace: writing magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, n); err != nil {
		return fmt.Errorf("trace: writing count: %w", err)
	}
	var rec [18]byte
	for i := uint64(0); i < n; i++ {
		inst := gen.Next()
		rec[0] = byte(inst.Op)
		rec[1] = 0
		if inst.DepPrevLoad {
			rec[1] |= flagDepPrevLoad
		}
		binary.LittleEndian.PutUint64(rec[2:], inst.PC)
		binary.LittleEndian.PutUint64(rec[10:], uint64(inst.VA))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteTraceFile records n instructions from gen into the named file.
func WriteTraceFile(path string, gen Generator, n uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := WriteTrace(f, gen, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FileTrace replays a recorded trace, wrapping at the end. It implements
// Generator. The trace is kept as raw 18-byte records — memory-mapped when
// the file came from OpenTraceFile on a platform with mmap support, a plain
// heap buffer otherwise — and records are decoded on Next. Replay therefore
// costs no per-instruction allocation and no up-front decode pass, and
// every simulation replaying the same file in this process shares a single
// read-only copy of its bytes.
type FileTrace struct {
	name  string
	recs  []byte // count x recordSize raw records
	count int
	idx   int
	// Wraps counts how many times the trace restarted from the beginning.
	Wraps uint64
}

// validateRecords checks the header bytes in hdr and the op byte of every
// record in recs, returning the record count.
func validateRecords(hdr, recs []byte) (int, error) {
	if string(hdr[:len(traceMagic)]) != traceMagic {
		return 0, fmt.Errorf("trace: bad magic %q", hdr[:len(traceMagic)])
	}
	count := binary.LittleEndian.Uint64(hdr[len(traceMagic):])
	if count == 0 {
		return 0, fmt.Errorf("trace: empty trace")
	}
	const maxCount = 1 << 30 // 18 GiB of records; refuse anything sillier
	if count > maxCount {
		return 0, fmt.Errorf("trace: implausible record count %d", count)
	}
	if uint64(len(recs)) < count*recordSize {
		return 0, fmt.Errorf("trace: truncated at record %d", len(recs)/recordSize)
	}
	for i := uint64(0); i < count; i++ {
		if op := Op(recs[i*recordSize]); op > OpStore {
			return 0, fmt.Errorf("trace: record %d has invalid op %d", i, op)
		}
	}
	return int(count), nil
}

// ReadTrace parses a recorded trace from r into a heap buffer.
func ReadTrace(name string, r io.Reader) (*FileTrace, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, traceHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	recs, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading records: %w", err)
	}
	count, err := validateRecords(hdr, recs)
	if err != nil {
		return nil, err
	}
	return &FileTrace{name: name, recs: recs, count: count}, nil
}

// cachedTrace is one shared, immutable trace body.
type cachedTrace struct {
	recs  []byte
	count int
}

// traceKey identifies a trace file's content for the process-wide cache: a
// re-recorded file (new size or mtime) gets a fresh entry.
type traceKey struct {
	path  string
	size  int64
	mtime int64
}

var (
	traceCacheMu sync.Mutex
	traceCache   = map[traceKey]*cachedTrace{}
)

// OpenTraceFile loads a recorded trace from the named file. The raw bytes
// are memory-mapped where the platform supports it (falling back to a heap
// read), and cached process-wide by path, size and mtime, so concurrent
// workers replaying the same recording share one read-only copy. Mappings
// live for the life of the process.
func OpenTraceFile(path string) (*FileTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	key := traceKey{path: path, size: st.Size(), mtime: st.ModTime().UnixNano()}
	traceCacheMu.Lock()
	defer traceCacheMu.Unlock()
	if ct, ok := traceCache[key]; ok {
		return &FileTrace{name: path, recs: ct.recs, count: ct.count}, nil
	}
	if st.Size() < int64(traceHeaderSize) {
		return nil, fmt.Errorf("trace: %s: file too short for header", path)
	}
	data, err := mmapFile(f, st.Size())
	if err != nil {
		// No mmap on this platform (or it failed): fall back to a heap read.
		ft, err := ReadTrace(path, f)
		if err != nil {
			return nil, err
		}
		traceCache[key] = &cachedTrace{recs: ft.recs, count: ft.count}
		return ft, nil
	}
	recs := data[traceHeaderSize:]
	count, err := validateRecords(data[:traceHeaderSize], recs)
	if err != nil {
		munmapFile(data)
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	traceCache[key] = &cachedTrace{recs: recs, count: count}
	return &FileTrace{name: path, recs: recs, count: count}, nil
}

// Name implements Generator.
func (t *FileTrace) Name() string { return t.name }

// Len returns the number of recorded instructions.
func (t *FileTrace) Len() int { return t.count }

// Next implements Generator, decoding the record at the cursor and wrapping
// at the end of the recording.
//
//bovet:hotpath
func (t *FileTrace) Next() Inst {
	rec := t.recs[t.idx*recordSize : t.idx*recordSize+recordSize]
	inst := Inst{
		Op:          Op(rec[0]),
		DepPrevLoad: rec[1]&flagDepPrevLoad != 0,
		PC:          binary.LittleEndian.Uint64(rec[2:]),
		VA:          mem.Addr(binary.LittleEndian.Uint64(rec[10:])),
	}
	t.idx++
	if t.idx == t.count {
		t.idx = 0
		t.Wraps++
	}
	return inst
}
