//go:build !linux && !darwin

package trace

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("trace: mmap not supported on this platform")

// mmapFile always fails here; OpenTraceFile falls back to a heap read.
func mmapFile(*os.File, int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile([]byte) {}
