package trace

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/rng"
)

func TestAllBenchmarksConstruct(t *testing.T) {
	if len(Benchmarks()) != 29 {
		t.Fatalf("%d benchmarks, want 29", len(Benchmarks()))
	}
	for _, name := range Benchmarks() {
		w, err := NewWorkload(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("Name() = %s, want %s", w.Name(), name)
		}
		for i := 0; i < 1000; i++ {
			inst := w.Next()
			if inst.Op != OpALU && inst.VA == 0 {
				t.Fatalf("%s: memory op with zero address", name)
			}
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := NewWorkload("999.nope", 1); err == nil {
		t.Error("unknown workload did not error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorkload did not panic")
		}
	}()
	MustWorkload("999.nope", 1)
}

func TestWorkloadDeterminism(t *testing.T) {
	a := MustWorkload("433.milc", 42)
	b := MustWorkload("433.milc", 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("divergence at instruction %d", i)
		}
	}
}

func TestWorkloadSeedsDiffer(t *testing.T) {
	a := MustWorkload("429.mcf", 1)
	b := MustWorkload("429.mcf", 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Error("different seeds produced identical streams")
	}
}

func TestMemoryFraction(t *testing.T) {
	w := MustWorkload("462.libquantum", 3)
	memOps := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if w.Next().Op != OpALU {
			memOps++
		}
	}
	frac := float64(memOps) / n * 1000
	if frac < 250 || frac > 350 {
		t.Errorf("libquantum memory ops per 1000 = %.0f, want about 300", frac)
	}
}

func TestStripesCoverAllLines(t *testing.T) {
	// A stripes component must eventually touch every line of its region
	// prefix (full next-line coverage, as the paper reports for 433/470).
	s := newStripes(0x4000, 0, 5, 1, 5*64*100, 8, 0)
	r := rng.New(1)
	seen := make(map[int64]bool)
	for i := 0; i < 5*100*4; i++ {
		inst := s.next(r)
		seen[int64(inst.VA)/64] = true
	}
	for line := int64(64); line < 5*64; line++ {
		if !seen[line] {
			t.Fatalf("line %d never touched by stripes", line)
		}
	}
}

func TestStripesPeriodicWithinStripe(t *testing.T) {
	// Within one stripe, consecutive positions are exactly S lines apart.
	s := newStripes(0x4000, 0, 32, 1, mem.Addr(32*64*1000), 4, 0)
	r := rng.New(2)
	var stripe0 []int64
	for i := 0; i < 32*50; i++ {
		inst := s.next(r)
		line := int64(inst.VA) / 64
		if line%32 == 0 { // stripe 0 lines
			stripe0 = append(stripe0, line)
		}
	}
	for i := 1; i < len(stripe0); i++ {
		if stripe0[i]-stripe0[i-1] != 32 {
			t.Fatalf("stripe-0 step %d: %d -> %d (want +32)",
				i, stripe0[i-1], stripe0[i])
		}
	}
}

func TestStripesPatternStrides(t *testing.T) {
	// With the [29,30,29] pattern, within-stripe steps follow the sequence.
	s := newStripesPattern(0x4000, 0, 1, []int64{29, 30, 29}, 1, mem.Addr(64*100000), 0, 0)
	r := rng.New(3)
	var lines []int64
	for i := 0; i < 9; i++ {
		lines = append(lines, int64(s.next(r).VA)/64)
	}
	want := []int64{29, 30, 29, 29, 30, 29, 29, 30}
	for i := 0; i < 8; i++ {
		if lines[i+1]-lines[i] != want[i] {
			t.Fatalf("step %d = %d, want %d", i, lines[i+1]-lines[i], want[i])
		}
	}
}

func TestChunkCompPerPCStride(t *testing.T) {
	// Each PC of a chunk component must see a constant stride equal to the
	// jump (so the DL1 stride prefetcher can lock on, as for 465.tonto).
	c := newChunk(0x4000, 0, 8, 512, mem.Addr(1<<20), 0)
	r := rng.New(4)
	lastVA := map[uint64]mem.Addr{}
	for i := 0; i < 200; i++ {
		inst := c.next(r)
		if prev, ok := lastVA[inst.PC]; ok {
			if int64(inst.VA)-int64(prev) != 512 {
				t.Fatalf("PC %#x stride = %d, want 512", inst.PC, int64(inst.VA)-int64(prev))
			}
		}
		lastVA[inst.PC] = inst.VA
	}
}

func TestRandomCompDependencyFlag(t *testing.T) {
	c := newRandom(0x4000, 1, 0, mem.Addr(1<<20), 0, true)
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		inst := c.next(r)
		if inst.Op == OpLoad && !inst.DepPrevLoad {
			t.Fatal("pointer-chase load without dependency flag")
		}
	}
}

func TestThrasherIsStoreHeavySequential(t *testing.T) {
	th := NewThrasher(9)
	if th.Name() != "microthrash" {
		t.Errorf("name = %s", th.Name())
	}
	stores, loads := 0, 0
	var lastVA mem.Addr
	increasing := 0
	memOps := 0
	for i := 0; i < 10000; i++ {
		inst := th.Next()
		switch inst.Op {
		case OpStore:
			stores++
		case OpLoad:
			loads++
		default:
			continue
		}
		memOps++
		if inst.VA > lastVA {
			increasing++
		}
		lastVA = inst.VA
	}
	if loads != 0 {
		t.Errorf("thrasher issued %d loads; should be write-only", loads)
	}
	if stores == 0 {
		t.Fatal("thrasher issued no stores")
	}
	if float64(increasing)/float64(memOps) < 0.99 {
		t.Error("thrasher is not sequential")
	}
}

func TestRegionsDisjoint(t *testing.T) {
	if regionBase(1)-regionBase(0) < 256*mb {
		t.Error("component regions can overlap")
	}
}
