package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// The golden determinism suite: every registered workload generator's
// default instruction stream is pinned by the SHA-256 of its first 10k
// instructions, so a generator refactor (or an innocent-looking parameter
// plumbing change) can never silently shift the streams behind published
// figures. The 29 SPEC stand-ins' hashes were captured from the
// pre-registry NewWorkload implementation, proving the registry migration
// byte-exact; if a hash change is intentional, it is a simulator behaviour
// change and must come with a resultCacheVersion bump (see
// internal/experiments/cache.go) and a re-pin here.

// goldenStreamHashes pins name -> SHA-256 of the first 10k instructions at
// seed 1 with default parameters.
var goldenStreamHashes = map[string]string{
	"400.perlbench":  "88ac71fb5e2da02174d3b69af180d74ad5496d3f83be577233ee1f5b6c74d6a4",
	"401.bzip2":      "45db2042073728d82474364bae6a83fb8ee18da82d5d35b63287e0044c834267",
	"403.gcc":        "3aa63ff590e4adf082f9e2a378f4ab7c9f04e5a344d1e22d55ebb5c8b6aed1f2",
	"410.bwaves":     "3dc7a59abef35678e33b05b7aa861f93c55e8d8cc67947702e020d3a390cb2b6",
	"416.gamess":     "6c0453e9be53fdb87017f84d745dc6961a4faaac5dbdfaa1bffaef26f15d3835",
	"429.mcf":        "81ba326387d2b1bc924f41d325988abcaa2a486b850fb284c7f29ea6b9a7c97b",
	"433.milc":       "13d4b12758fa01411e340623a9f7802d34a9c5c8b78f92291a1214f18a7889e7",
	"434.zeusmp":     "4f9884b4611ee480403bd82fd805727188897a8f11ef56e0e5882b591a66e816",
	"435.gromacs":    "86fa6af7be6f5007f09aa75f449c400ddcf84d558db1218d934347ff7a9dc8cd",
	"436.cactusADM":  "db3e53de2dbeb59103248e9179c816a368745363af75a21a5fe4b1b23aea4c17",
	"437.leslie3d":   "a8de1f1d08554476bf46a4d46d763a6b82ed01efc346dda393763737dbaf6d1d",
	"444.namd":       "fcc419313c20b260e24bcccc638d81753a549b52b75f25ff648428bb84f38482",
	"445.gobmk":      "c358b48eb1376b508df83945d2c844690cd64df36a5b55f6ae1d438ede1cbdac",
	"447.dealII":     "7a2e1a7860281930cec2f87fc80f69a89b8ca1dbf4a5736cf1748215a25247e8",
	"450.soplex":     "d8c1742e05a3f22f2624aca4e82bc6123365dbf4d23a61d137f5da607c02ed26",
	"453.povray":     "5782163d9b9b765dcd539e33071164700d8f50d6fb2925492c6025cddd12aacb",
	"454.calculix":   "b1b7f1cd6bbd64363c03ee4cf9be8ca61bbf9ea98877b8441344f503a433c28c",
	"456.hmmer":      "f71572760db255f62d97372c40c0d087f044772df4d390fb273b2fe548ed9646",
	"458.sjeng":      "badbd27024a2e6b0f3e75ec668a5cf82efe2fa6a101a5b6a354492ed24253b27",
	"459.GemsFDTD":   "6bf59a102c253ccef3f89ff7d9dd901749cc186357d5ad6ec78bc0342c48f42a",
	"462.libquantum": "26dc84bb8b82ad39f1b20ddfc0f40941570716cae5809c6e91efc2cd5184a05c",
	"464.h264ref":    "04670ce623fb6752acae65f76689980f1ce5c9ee0383fcca970f09ed9f9dc729",
	"465.tonto":      "ad0bb4b63a2591ffd9f890f7f3cecd076a7b41a1468537ea17fa4d7f938e4ba1",
	"470.lbm":        "b9596c8b5a3974cebab0c86e593ff6137e5795b2a811d4ca124e888f08cdfb8a",
	"471.omnetpp":    "b80480b34edc2454fb8cc91d5a62de90e319ecfbe7679383c183b096e052bc0d",
	"473.astar":      "33686e3a54eaf86cb148d79237fac165dd548e719a9e8bd760a52b9b19a36b40",
	"481.wrf":        "e5cc5f840956ff22b9488da229514064f89c1c394de896c8e2882b576f17e966",
	"482.sphinx3":    "c088f8ff2aebb4303007f6ff969c834f77ebfb344bbbadea7ccd7c03c9dc152b",
	"483.xalancbmk":  "9a80880c259ff141de8a6f4a0b0655fcb243b0063b305a1d5e0240b015c8a3a8",
	"gups":           "157b99afd57b8d085d85ba33fd2b139cbbc2ae1399cf52634be152281e4fee7d",
	"microthrash":    "e4fa54278e515423b2cd08578ef39d1a44b0200424e00eb5a66b76280b479dfa",
	"mix":            "5652e3e70292e40c4643fbb60993b6d7c33edd636a1a0fb2f570d99f146f27d7",
	"pchase":         "9d17909e3e22e95a6767ed7e308ec987156eb53737cef5dfc7c15434046750d8",
	"stream":         "957c0707f729792407d0cd0217c14eb322ca123bcc71ace369182082aec362e6",
}

// streamHash packs each instruction's fields (op, dep flag, PC, VA) into a
// fixed record and hashes the first n of them.
func streamHash(g Generator, n int) string {
	h := sha256.New()
	var rec [18]byte
	for i := 0; i < n; i++ {
		inst := g.Next()
		rec[0] = byte(inst.Op)
		rec[1] = 0
		if inst.DepPrevLoad {
			rec[1] = 1
		}
		binary.LittleEndian.PutUint64(rec[2:], inst.PC)
		binary.LittleEndian.PutUint64(rec[10:], uint64(inst.VA))
		h.Write(rec[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestGoldenStreams(t *testing.T) {
	for _, name := range Names() {
		spec := Spec{Name: name}
		if _, err := Normalize(spec); err != nil {
			// Not buildable with defaults ("file" needs a path): no default
			// stream to pin, but it must not be silently skippable either.
			if name != "file" {
				t.Errorf("%s: not buildable with defaults and not an expected exception: %v", name, err)
			}
			continue
		}
		want, pinned := goldenStreamHashes[name]
		if !pinned {
			g, err := NewGenerator(spec, 1)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				continue
			}
			t.Errorf("%s: registered generator has no golden hash; pin %q", name, streamHash(g, 10000))
			continue
		}
		g, err := NewGenerator(spec, 1)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if got := streamHash(g, 10000); got != want {
			t.Errorf("%s: default stream drifted:\n got %s\nwant %s\n(an intentional change needs a cache schema bump and a re-pin)", name, got, want)
		}
	}
	// Stale pins rot the map: every pinned name must still be registered.
	registered := make(map[string]bool)
	for _, name := range Names() {
		registered[name] = true
	}
	for name := range goldenStreamHashes {
		if !registered[name] {
			t.Errorf("golden hash pinned for unregistered generator %q", name)
		}
	}
}

// TestGoldenSatelliteSeedDerivation pins the satellite-core thrasher stream
// (seed 1 + 7919, the core-1 derived seed): the per-core seeding rule is
// part of what keeps legacy multi-core runs byte-identical.
func TestGoldenSatelliteSeedDerivation(t *testing.T) {
	const want = "5c1b3a52f4b7c63fa3ae3f71cad7f621d1b738480b4ad802d0305d15ecec0313"
	g, err := NewGenerator(Spec{Name: "microthrash"}, 1+7919)
	if err != nil {
		t.Fatal(err)
	}
	if got := streamHash(g, 10000); got != want {
		t.Errorf("core-1 thrasher stream drifted:\n got %s\nwant %s", got, want)
	}
}
