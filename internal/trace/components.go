package trace

import (
	"bopsim/internal/mem"
	"bopsim/internal/rng"
)

// component is one memory-access pattern inside a workload. Components
// produce only the memory operations; the workload mixer interleaves them
// with ALU work.
type component interface {
	next(r *rng.Stream) Inst
	// saveState/restoreState serialize the component's cursor for
	// checkpoint/restore (see state.go).
	saveState() ComponentState
	restoreState(ComponentState) error
}

// streamComp is a constant-byte-stride stream wrapping inside a region: the
// building block for sequential (stride <= 64B) and strided workloads.
type streamComp struct {
	pc       uint64
	base     mem.Addr
	pos      mem.Addr
	stride   int64
	region   mem.Addr
	storePct int // percentage of accesses that are stores
}

func newStream(pc uint64, base mem.Addr, stride int64, region mem.Addr, storePct int) *streamComp {
	s := &streamComp{pc: pc, base: base, stride: stride, region: region, storePct: storePct}
	// Stagger the starting position (derived from the PC, so still fully
	// deterministic). Without this, parallel streams advance in lockstep at
	// identical intra-page offsets and, with large pages, resonate on the
	// same DRAM bank — an artifact real programs' allocators avoid.
	if stride > 0 && region > mem.Addr(stride) {
		steps := int64(region) / stride
		s.pos = mem.Addr((int64(mem.Mix64(pc)%uint64(steps)) * stride))
	}
	return s
}

func (s *streamComp) next(r *rng.Stream) Inst {
	op := OpLoad
	if s.storePct > 0 && r.Intn(100) < s.storePct {
		op = OpStore
	}
	inst := Inst{Op: op, PC: s.pc, VA: s.base + s.pos}
	s.pos = mem.Addr(int64(s.pos) + s.stride)
	if s.pos >= s.region || int64(s.pos) < 0 {
		s.pos = 0
	}
	return inst
}

// chunkComp models array-of-structs traversal: chunkWords consecutive
// 8-byte accesses at each position (one per static PC, so the DL1 stride
// prefetcher sees a constant per-PC stride), then a jump of jumpBytes to
// the next element. A 16-word chunk with a 2KB jump reproduces the
// 433.milc-like behaviour whose speedup peaks at offset multiples of 32
// lines (Figure 8).
type chunkComp struct {
	pcBase     uint64
	base       mem.Addr
	pos        mem.Addr
	chunkWords int
	wordIdx    int
	jumpBytes  int64
	region     mem.Addr
	storePct   int
}

func newChunk(pcBase uint64, base mem.Addr, chunkWords int, jumpBytes int64, region mem.Addr, storePct int) *chunkComp {
	if chunkWords < 1 {
		chunkWords = 1
	}
	c := &chunkComp{pcBase: pcBase, base: base, chunkWords: chunkWords,
		jumpBytes: jumpBytes, region: region, storePct: storePct}
	// Deterministic per-component stagger; see newStream.
	if jumpBytes > 0 && region > mem.Addr(jumpBytes) {
		steps := int64(region) / jumpBytes
		c.pos = mem.Addr(int64(mem.Mix64(pcBase)%uint64(steps)) * jumpBytes)
	}
	return c
}

func (c *chunkComp) next(r *rng.Stream) Inst {
	op := OpLoad
	if c.storePct > 0 && r.Intn(100) < c.storePct {
		op = OpStore
	}
	va := c.base + c.pos + mem.Addr(c.wordIdx*8)
	pc := c.pcBase + uint64(c.wordIdx)*4
	c.wordIdx++
	if c.wordIdx >= c.chunkWords {
		c.wordIdx = 0
		c.pos = mem.Addr(int64(c.pos) + c.jumpBytes)
		if c.pos >= c.region || int64(c.pos) < 0 {
			c.pos = 0
		}
	}
	return Inst{Op: op, PC: pc, VA: va}
}

// patternComp advances by a repeating sequence of line strides, touching
// one full line (chunkWords accesses) at each position — e.g. [29,30,29]
// reproduces the 459.GemsFDTD-like peaks at offsets ~29.3 lines, and [5]
// with a phase-shifted twin reproduces the 470.lbm peaks at multiples of 5
// with secondary peaks at 5k+3 (Figure 8).
type patternComp struct {
	pcBase     uint64
	base       mem.Addr
	pos        mem.Addr
	strides    []int64 // in lines
	idx        int
	chunkWords int
	wordIdx    int
	region     mem.Addr
	storePct   int
}

func newPattern(pcBase uint64, base mem.Addr, lineStrides []int64, chunkWords int, region mem.Addr, storePct int) *patternComp {
	if chunkWords < 1 {
		chunkWords = 1
	}
	return &patternComp{pcBase: pcBase, base: base, strides: lineStrides,
		chunkWords: chunkWords, region: region, storePct: storePct}
}

func (p *patternComp) next(r *rng.Stream) Inst {
	op := OpLoad
	if p.storePct > 0 && r.Intn(100) < p.storePct {
		op = OpStore
	}
	va := p.base + p.pos + mem.Addr(p.wordIdx*8)
	pc := p.pcBase + uint64(p.wordIdx)*4
	p.wordIdx++
	if p.wordIdx >= p.chunkWords {
		p.wordIdx = 0
		p.pos += mem.Addr(p.strides[p.idx] * mem.LineSize)
		p.idx = (p.idx + 1) % len(p.strides)
		if p.pos >= p.region {
			p.pos = 0
			p.idx = 0
		}
	}
	return Inst{Op: op, PC: pc, VA: va}
}

// stripesComp models S interleaved streams ("stripes") sharing one region:
// stripe j touches lines {S*k + j}, one chunk (chunkWords 8-byte accesses)
// per position, round-robin across stripes. Stripe start positions are
// randomly staggered (re-randomized on each region wrap), so every line is
// eventually touched — a next-line prefetcher gets coverage, as the paper
// reports for 433/459/470 — but cross-stripe offsets have unpredictable
// timing while offsets that are multiples of S stay within a stripe and
// are reliably timely. This is what produces Figure 8's speedup peaks at
// multiples of 32 (433.milc-like), ~29 (459.GemsFDTD-like) and 5
// (470.lbm-like).
type stripesComp struct {
	pcBase     uint64
	base       mem.Addr
	stripes    int
	positions  []int64 // current position index per stripe
	starts     []int64
	cur        int // stripe being accessed this round
	chunkWords int
	wordIdx    int
	posPerStr  int64 // positions per stripe before wrap
	maxLag     int64
	storePct   int
	staggered  bool // lazily randomize the initial stagger
	// strides, when non-nil, replaces the uniform spacing: stripe j's k-th
	// position is at line j + prefix-sum of the cyclic stride sequence.
	// [29,30,29] gives the 459.GemsFDTD-like structure where offset 30
	// aligns on a third of the positions (and 29 — not in the offset list —
	// on all of them).
	strides []int64
	prefix  []int64 // prefix sums over one stride period
	period  int64   // sum of strides over one period
}

func newStripes(pcBase uint64, base mem.Addr, stripes, chunkWords int, region mem.Addr, maxLag int64, storePct int) *stripesComp {
	if stripes < 1 {
		stripes = 1
	}
	if chunkWords < 1 {
		chunkWords = 1
	}
	s := &stripesComp{
		pcBase:     pcBase,
		base:       base,
		stripes:    stripes,
		positions:  make([]int64, stripes),
		starts:     make([]int64, stripes),
		chunkWords: chunkWords,
		posPerStr:  int64(region) / mem.LineSize / int64(stripes),
		maxLag:     maxLag,
		storePct:   storePct,
	}
	if s.posPerStr < 1 {
		// A region too small for the stripe count would divide by zero in
		// next (pos % posPerStr). The spec layer's footprint floor keeps
		// every registered configuration well clear of this; the clamp is a
		// hard guard so no parameter combination can panic mid-simulation.
		s.posPerStr = 1
	}
	return s
}

// newStripesPattern is newStripes with a non-uniform within-stripe stride
// sequence (in lines).
func newStripesPattern(pcBase uint64, base mem.Addr, stripes int, strideSeq []int64, chunkWords int, region mem.Addr, maxLag int64, storePct int) *stripesComp {
	s := newStripes(pcBase, base, stripes, chunkWords, region, maxLag, storePct)
	s.strides = strideSeq
	s.prefix = make([]int64, len(strideSeq)+1)
	for i, st := range strideSeq {
		s.prefix[i+1] = s.prefix[i] + st
	}
	s.period = s.prefix[len(strideSeq)]
	// With explicit strides, positions count pattern steps; the stripe
	// wraps when its line offset would leave the region.
	s.posPerStr = (int64(region)/mem.LineSize - int64(stripes)) / s.period * int64(len(strideSeq))
	if s.posPerStr < 1 {
		s.posPerStr = 1 // see newStripes: never divide by zero in next
	}
	return s
}

// lineOf returns the line index (within the region) of stripe j at position
// pos.
func (s *stripesComp) lineOf(j int, pos int64) int64 {
	if s.strides == nil {
		return pos*int64(s.stripes) + int64(j)
	}
	n := int64(len(s.strides))
	return int64(j) + (pos/n)*s.period + s.prefix[pos%n]
}

func (s *stripesComp) next(r *rng.Stream) Inst {
	if !s.staggered {
		s.staggered = true
		if s.maxLag > 0 {
			for j := range s.starts {
				s.starts[j] = int64(r.Uint64() % uint64(s.maxLag))
			}
		}
	}
	op := OpLoad
	if s.storePct > 0 && r.Intn(100) < s.storePct {
		op = OpStore
	}
	j := s.cur
	pos := (s.starts[j] + s.positions[j]) % s.posPerStr
	line := s.lineOf(j, pos)
	va := s.base + mem.Addr(line*mem.LineSize) + mem.Addr(s.wordIdx*8)
	// All stripes share one set of PCs (the same static loop body touches
	// every stripe), so the per-PC stride alternates between stripes and
	// the DL1 stride prefetcher cannot lock on — matching the paper's
	// observation that the L1 prefetcher is ineffective on 433.milc-like
	// code (footnote 11).
	pc := s.pcBase + uint64(s.wordIdx)*4
	s.wordIdx++
	if s.wordIdx >= s.chunkWords {
		s.wordIdx = 0
		s.positions[j]++
		if s.positions[j] >= s.posPerStr {
			// Region wrap for this stripe: restart with a fresh stagger.
			s.positions[j] = 0
			if s.maxLag > 0 {
				s.starts[j] = int64(r.Uint64() % uint64(s.maxLag))
			}
		}
		s.cur = (s.cur + 1) % s.stripes
	}
	return Inst{Op: op, PC: pc, VA: va}
}

// randomComp issues uniformly distributed accesses inside a region; with
// dep set, each access is a pointer-chase step serialized on the previous
// load.
type randomComp struct {
	pcBase   uint64
	pcCount  uint64
	pcNext   uint64
	base     mem.Addr
	region   mem.Addr
	storePct int
	dep      bool
}

func newRandom(pcBase uint64, pcCount uint64, base, region mem.Addr, storePct int, dep bool) *randomComp {
	if pcCount == 0 {
		pcCount = 1
	}
	return &randomComp{pcBase: pcBase, pcCount: pcCount, base: base, region: region, storePct: storePct, dep: dep}
}

func (c *randomComp) next(r *rng.Stream) Inst {
	op := OpLoad
	if c.storePct > 0 && r.Intn(100) < c.storePct {
		op = OpStore
	}
	off := mem.Addr(r.Uint64()) % c.region
	off &^= 7 // 8-byte aligned
	pc := c.pcBase + (c.pcNext%c.pcCount)*4
	c.pcNext++
	return Inst{Op: op, PC: pc, VA: c.base + off, DepPrevLoad: c.dep && op == OpLoad}
}
