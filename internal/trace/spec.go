package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is a self-describing workload configuration: a registered generator
// name plus free-form string parameters that the generator's factory parses
// and validates. It mirrors prefetch.Spec on the workload axis, replacing
// the historical closed benchmark table (and the TracePath escape hatch:
// "file" is just another registered generator).
//
// The canonical string form is
//
//	name[:key=value[,key=value]...]
//
// e.g. "429.mcf", "stream:stride=128", "gups:footprint=64mb",
// "file:path=milc.trace". Names are case-sensitive [A-Za-z0-9._-] — the
// SPEC stand-ins keep their published spellings ("459.GemsFDTD") — while
// keys are lowercase [a-z0-9_-]; values may not contain ',', '=', ':', ';'
// or whitespace (lists use '+' as separator, e.g. "weights=2+1"; ';'
// separates per-core specs at the CLI). String renders keys sorted, so the
// canonical form — and anything hashed from it — is deterministic.
//
//bovet:schemalock
type Spec struct {
	Name   string            `json:"name"`
	Params map[string]string `json:"params,omitempty"`
}

// ParseSpec parses the canonical string form. The result is syntactically
// canonical (lowercased keys, no empty map); whether the name is registered
// and the parameters valid is checked by NewGenerator (or Normalize).
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if err := checkSpecName(name); err != nil {
		return Spec{}, fmt.Errorf("trace: bad workload spec name %q: %v", name, err)
	}
	sp := Spec{Name: name}
	if !hasParams {
		return sp, nil
	}
	sp.Params = make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return Spec{}, fmt.Errorf("trace: bad spec parameter %q in %q (want key=value)", kv, s)
		}
		if err := checkSpecKey(key); err != nil {
			return Spec{}, fmt.Errorf("trace: bad parameter key %q: %v", key, err)
		}
		if err := checkSpecValue(value); err != nil {
			return Spec{}, fmt.Errorf("trace: bad value %q for %q: %v", value, key, err)
		}
		if _, dup := sp.Params[key]; dup {
			return Spec{}, fmt.Errorf("trace: duplicate parameter %q in %q", key, s)
		}
		sp.Params[key] = value
	}
	if len(sp.Params) == 0 {
		return Spec{}, fmt.Errorf("trace: empty parameter list in %q", s)
	}
	return sp, nil
}

// ParseSpecList parses a ';'-separated list of workload specs — the CLI
// form of a per-core assignment ("gups:footprint=64mb;stream:stride=128").
// Position is load-bearing (entry i drives core i), so an interior empty
// segment is an error rather than a silent compaction that would shift
// later specs onto the wrong cores; only a trailing ';' is tolerated.
func ParseSpecList(s string) ([]Spec, error) {
	parts := strings.Split(s, ";")
	for len(parts) > 0 && strings.TrimSpace(parts[len(parts)-1]) == "" {
		parts = parts[:len(parts)-1]
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: empty workload spec list %q", s)
	}
	out := make([]Spec, 0, len(parts))
	for i, part := range parts {
		if strings.TrimSpace(part) == "" {
			return nil, fmt.Errorf("trace: empty workload spec at position %d of %q (each ';'-separated entry drives one core)", i, s)
		}
		sp, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		out = append(out, sp)
	}
	return out, nil
}

// SpecsLabel renders a per-core spec assignment for logs and status lines:
// canonical strings joined by ';', with trailing default-thrasher entries
// trimmed so legacy single-workload runs read as before. Callers pass
// already-canonical specs (this does not consult the registry).
func SpecsLabel(ws []Spec) string {
	for len(ws) > 1 && ws[len(ws)-1].String() == "microthrash" {
		ws = ws[:len(ws)-1]
	}
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = w.String()
	}
	return strings.Join(parts, ";")
}

// MustSpec is ParseSpec that panics on error, for tests and examples.
func MustSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// String renders the canonical form: parameters sorted by key.
// ParseSpec(s.String()) reproduces s exactly for any canonical s.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	for i, key := range s.sortedKeys() {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(s.Params[key])
	}
	return b.String()
}

// IsZero reports whether the spec is unset (no name).
func (s Spec) IsZero() bool { return s.Name == "" }

// Equal reports whether two specs are canonically identical.
func (s Spec) Equal(o Spec) bool { return s.String() == o.String() }

// Get returns the raw value of one parameter.
func (s Spec) Get(key string) (string, bool) {
	v, ok := s.Params[key]
	return v, ok
}

// With returns a copy of the spec with one parameter set; the receiver is
// not modified. It is the programmatic way to build sweep variants:
// spec.With("footprint", "128mb").
func (s Spec) With(key, value string) Spec {
	out := Spec{Name: s.Name, Params: make(map[string]string, len(s.Params)+1)}
	for k, v := range s.Params {
		out.Params[k] = v
	}
	out.Params[strings.ToLower(key)] = value
	return out
}

// Without returns a copy of the spec with one parameter removed.
func (s Spec) Without(key string) Spec {
	out := Spec{Name: s.Name}
	for k, v := range s.Params {
		if k == key {
			continue
		}
		if out.Params == nil {
			out.Params = make(map[string]string, len(s.Params))
		}
		out.Params[k] = v
	}
	return out
}

// Canonical returns the spec in syntactic canonical form: lowercased keys,
// nil map when empty, copied map otherwise (so the result shares no state
// with the receiver). It does not consult the registry; Normalize
// additionally validates the name and drops default-valued parameters.
func (s Spec) Canonical() Spec {
	out := Spec{Name: s.Name}
	if len(s.Params) == 0 {
		return out
	}
	out.Params = make(map[string]string, len(s.Params))
	for k, v := range s.Params {
		out.Params[strings.ToLower(k)] = v
	}
	return out
}

func (s Spec) sortedKeys() []string {
	if len(s.Params) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// checkSpecName validates a generator name: non-empty, case-sensitive
// [A-Za-z0-9._-] (the SPEC benchmark stand-ins keep their published
// spellings, dots included).
func checkSpecName(t string) error {
	if t == "" {
		return fmt.Errorf("empty")
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("character %q not allowed", r)
		}
	}
	return nil
}

// checkSpecKey validates a parameter key: non-empty lowercase [a-z0-9_-].
func checkSpecKey(t string) error {
	if t == "" {
		return fmt.Errorf("empty")
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("character %q not allowed", r)
		}
	}
	return nil
}

// checkSpecValue validates a parameter value: non-empty, printable, and
// free of the spec syntax characters (including ';', the per-core list
// separator) so String() always re-parses.
func checkSpecValue(v string) error {
	if v == "" {
		return fmt.Errorf("empty")
	}
	for _, r := range v {
		switch {
		case r == ',' || r == '=' || r == ':' || r == ';':
			return fmt.Errorf("character %q not allowed", r)
		case r <= ' ' || r == 0x7f:
			return fmt.Errorf("whitespace/control characters not allowed")
		}
	}
	return nil
}
