// Package trace defines the instruction stream format consumed by the core
// model and the synthetic workload generators standing in for the paper's
// SPEC CPU2006 traces (see DESIGN.md for the substitution rationale). Each
// generator is an infinite, deterministic instruction stream whose memory
// behaviour models the published access-pattern characteristics of one
// benchmark: long sequential streams, constant-stride streams with the
// periods reported in Figure 8, interleaved streams, pointer chasing, or
// cache-resident compute.
package trace

import "bopsim/internal/mem"

// Op is an instruction class.
type Op uint8

// Instruction classes. The timing model only distinguishes ALU work from
// loads and stores.
const (
	OpALU Op = iota
	OpLoad
	OpStore
)

// Inst is one dynamic instruction.
type Inst struct {
	Op Op
	// PC identifies the static instruction; the DL1 stride prefetcher
	// indexes its table with it.
	PC uint64
	// VA is the virtual byte address accessed (loads/stores only).
	VA mem.Addr
	// DepPrevLoad marks a load whose address depends on the data of the
	// most recent preceding load (pointer chasing): the core cannot issue
	// it before that load completes.
	DepPrevLoad bool
}

// Generator produces an infinite instruction stream. Generators are not
// safe for concurrent use; every simulated core owns its own.
type Generator interface {
	// Name identifies the workload (e.g. "429.mcf").
	Name() string
	// Next returns the next dynamic instruction.
	Next() Inst
}
