// Package trace defines the instruction stream format consumed by the core
// model and the workload generators that produce it. Generators are
// configured through Spec and a registry (see spec.go and registry.go, the
// workload-axis mirror of internal/prefetch): the SPEC CPU2006 stand-ins
// (see DESIGN.md for the substitution rationale), parameterized
// micro-patterns (stream, pchase, gups, the mix combinator, the
// microthrash satellite workload) and recorded-trace replay ("file") are
// all registered generators, so opening a new workload is a registration,
// not an engine edit. Each generator is an infinite, deterministic
// instruction stream whose memory behaviour models one access-pattern
// regime: long sequential streams, constant-stride streams with the
// periods reported in Figure 8, interleaved streams, pointer chasing, or
// cache-resident compute.
package trace

import "bopsim/internal/mem"

// Op is an instruction class.
type Op uint8

// Instruction classes. The timing model only distinguishes ALU work from
// loads and stores.
const (
	OpALU Op = iota
	OpLoad
	OpStore
)

// Inst is one dynamic instruction.
//
//bovet:schemalock
type Inst struct {
	Op Op
	// PC identifies the static instruction; the DL1 stride prefetcher
	// indexes its table with it.
	PC uint64
	// VA is the virtual byte address accessed (loads/stores only).
	VA mem.Addr
	// DepPrevLoad marks a load whose address depends on the data of the
	// most recent preceding load (pointer chasing): the core cannot issue
	// it before that load completes.
	DepPrevLoad bool
}

// Generator produces an infinite instruction stream. Generators are not
// safe for concurrent use; every simulated core owns its own.
type Generator interface {
	// Name identifies the workload (e.g. "429.mcf").
	Name() string
	// Next returns the next dynamic instruction.
	Next() Inst
}
