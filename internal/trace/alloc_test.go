package trace

import "testing"

// TestGeneratorNextZeroAlloc pins the per-instruction cost of the synthetic
// workload generators the engine polls every dispatch slot: Next must not
// allocate in steady state.
func TestGeneratorNextZeroAlloc(t *testing.T) {
	for _, name := range []string{"microthrash", "stream", "gups", "pchase"} {
		t.Run(name, func(t *testing.T) {
			g := MustWorkload(name, 1)
			for i := 0; i < 10_000; i++ {
				g.Next()
			}
			if avg := testing.AllocsPerRun(5000, func() { g.Next() }); avg != 0 {
				t.Errorf("%s: Next allocates %.3f objects/instruction, want 0", name, avg)
			}
		})
	}
}
