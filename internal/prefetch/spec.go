package prefetch

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is a self-describing prefetcher configuration: a registered name
// plus free-form string parameters that the named prefetcher's factory
// parses and validates. It replaces the historical closed enum + per-kind
// option fields, so a new prefetcher is a new registration, not an engine
// edit.
//
// The canonical string form is
//
//	name[:key=value[,key=value]...]
//
// e.g. "nextline", "offset:d=4", "bo:badscore=5,rr=64". Names and keys are
// lowercase [a-z0-9_-]; values may not contain ',', '=', ':' or
// whitespace (lists use '+' as separator, e.g. "offsets=1+2+8"). String
// renders keys sorted, so the canonical form — and anything hashed from it
// — is deterministic.
//
//bovet:schemalock
type Spec struct {
	Name   string            `json:"name"`
	Params map[string]string `json:"params,omitempty"`
}

// ParseSpec parses the canonical string form. The result is syntactically
// canonical (lowercased name and keys, no empty map); whether the name is
// registered and the parameters valid is checked by NewL2/NewL1 (or
// NormalizeL2/NormalizeL1).
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.ToLower(strings.TrimSpace(name))
	if err := checkToken(name); err != nil {
		return Spec{}, fmt.Errorf("prefetch: bad spec name %q: %v", name, err)
	}
	sp := Spec{Name: name}
	if !hasParams {
		return sp, nil
	}
	sp.Params = make(map[string]string)
	for _, kv := range strings.Split(rest, ",") {
		key, value, ok := strings.Cut(kv, "=")
		key = strings.ToLower(strings.TrimSpace(key))
		value = strings.TrimSpace(value)
		if !ok || key == "" || value == "" {
			return Spec{}, fmt.Errorf("prefetch: bad spec parameter %q in %q (want key=value)", kv, s)
		}
		if err := checkToken(key); err != nil {
			return Spec{}, fmt.Errorf("prefetch: bad parameter key %q: %v", key, err)
		}
		if err := checkValue(value); err != nil {
			return Spec{}, fmt.Errorf("prefetch: bad value %q for %q: %v", value, key, err)
		}
		if _, dup := sp.Params[key]; dup {
			return Spec{}, fmt.Errorf("prefetch: duplicate parameter %q in %q", key, s)
		}
		sp.Params[key] = value
	}
	if len(sp.Params) == 0 {
		return Spec{}, fmt.Errorf("prefetch: empty parameter list in %q", s)
	}
	return sp, nil
}

// MustSpec is ParseSpec that panics on error, for tests and examples.
func MustSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// String renders the canonical form: lowercase name, parameters sorted by
// key. ParseSpec(s.String()) reproduces s exactly for any canonical s.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(strings.ToLower(s.Name))
	for i, key := range s.sortedKeys() {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(s.Params[key])
	}
	return b.String()
}

// IsZero reports whether the spec is unset (no name).
func (s Spec) IsZero() bool { return s.Name == "" }

// Equal reports whether two specs are canonically identical: same
// lowercased name and exactly the same parameters.
func (s Spec) Equal(o Spec) bool { return s.String() == o.String() }

// Get returns the raw value of one parameter.
func (s Spec) Get(key string) (string, bool) {
	v, ok := s.Params[key]
	return v, ok
}

// With returns a copy of the spec with one parameter set; the receiver is
// not modified. It is the programmatic way to build sweep variants:
// bo.With("badscore", "5").
func (s Spec) With(key, value string) Spec {
	out := Spec{Name: s.Name, Params: make(map[string]string, len(s.Params)+1)}
	for k, v := range s.Params {
		out.Params[k] = v
	}
	out.Params[strings.ToLower(key)] = value
	return out
}

// Canonical returns the spec in syntactic canonical form: lowercased name,
// nil map when empty, copied map otherwise (so the result shares no state
// with the receiver). It does not consult the registry; NormalizeL2/L1
// additionally validate the name and drop default-valued parameters.
func (s Spec) Canonical() Spec {
	out := Spec{Name: strings.ToLower(s.Name)}
	if len(s.Params) == 0 {
		return out
	}
	out.Params = make(map[string]string, len(s.Params))
	for k, v := range s.Params {
		out.Params[strings.ToLower(k)] = v
	}
	return out
}

func (s Spec) sortedKeys() []string {
	if len(s.Params) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// checkToken validates a name or parameter key: non-empty lowercase
// [a-z0-9_-].
func checkToken(t string) error {
	if t == "" {
		return fmt.Errorf("empty")
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("character %q not allowed", r)
		}
	}
	return nil
}

// checkValue validates a parameter value: non-empty, printable, and free of
// the spec syntax characters so String() always re-parses.
func checkValue(v string) error {
	if v == "" {
		return fmt.Errorf("empty")
	}
	for _, r := range v {
		switch {
		case r == ',' || r == '=' || r == ':':
			return fmt.Errorf("character %q not allowed", r)
		case r <= ' ' || r == 0x7f:
			return fmt.Errorf("whitespace/control characters not allowed")
		}
	}
	return nil
}
