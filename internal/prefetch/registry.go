package prefetch

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bopsim/internal/mem"
)

// This file is the prefetcher registry. Each prefetcher package registers a
// Definition for its name in an init function (core registers "bo", sbp
// "sbp", and so on; internal/prefetch/all blank-imports every
// implementation, the way image codecs and database drivers link in).
// Everything above the registry — the engine, the experiment scheduler, the
// CLIs — constructs prefetchers from Specs only, so adding a prefetcher
// never touches those layers.
//
// There are two registries for the two attachment points: L2 prefetchers
// (physical line addresses, the paper's configurable slot) and L1
// prefetchers (PC + virtual address, the DL1 stride slot).

// Definition describes one registered prefetcher.
type Definition[T any] struct {
	// Defaults enumerates every accepted parameter key with the canonical
	// rendering of its default value. A spec naming a key outside this set
	// is rejected, and Normalize drops parameters spelled with their
	// default value, so equivalent specs share one canonical form (and one
	// cache key).
	Defaults map[string]string
	// Build constructs the prefetcher. Keys have been validated against
	// Defaults already; Build parses the values (see Values) and may reject
	// semantically invalid combinations. A nil result with nil error means
	// "explicitly no prefetcher" (the "none" registrations).
	Build func(page mem.PageSize, v Values) (T, error)
	// Validate, when non-nil, replaces the Build-based parameter check in
	// Normalize (the trace registry's design, mirrored). In-tree prefetcher
	// construction is cheap, so most registrations validate by delegating to
	// their Build function; the hook exists so an expensive future
	// prefetcher can keep normalization pure, and the registryinit analyzer
	// requires every registration to declare it explicitly.
	Validate func(v Values) error
	// Canonicalize, when non-nil, rewrites a parameter value to its
	// canonical spelling before Normalize compares it against the default.
	// It runs after Validate accepted the spec, so the value is known good.
	// The meta-prefetchers use it to canonicalize quoted child specs, so
	// "duel:b=multi.maxissue~4" and "duel" share one canonical form (and
	// one sweep cache key).
	Canonicalize func(key, value string) (string, error)
	// Help is a one-line description for -list-pf style output.
	Help string
}

type registry[T any] struct {
	mu   sync.RWMutex
	defs map[string]Definition[T]
}

var (
	l2Registry = &registry[L2Prefetcher]{defs: make(map[string]Definition[L2Prefetcher])}
	l1Registry = &registry[L1Prefetcher]{defs: make(map[string]Definition[L1Prefetcher])}
)

// RegisterL2 registers an L2 prefetcher definition under name. It panics on
// a duplicate or syntactically invalid name — registration is an init-time
// programming action, not a runtime input.
func RegisterL2(name string, def Definition[L2Prefetcher]) { l2Registry.register(name, def) }

// RegisterL1 registers an L1 (DL1) prefetcher definition under name.
func RegisterL1(name string, def Definition[L1Prefetcher]) { l1Registry.register(name, def) }

// NewL2 builds the L2 prefetcher described by spec. Unknown names and
// parameters, and invalid parameter values, are errors.
func NewL2(spec Spec, page mem.PageSize) (L2Prefetcher, error) { return l2Registry.build(spec, page) }

// NewL1 builds the L1 prefetcher described by spec. A nil prefetcher with a
// nil error means the spec explicitly disables L1 prefetching ("none").
func NewL1(spec Spec, page mem.PageSize) (L1Prefetcher, error) { return l1Registry.build(spec, page) }

// NormalizeL2 validates spec against the L2 registry and returns its
// canonical form: lowercased, parameters restricted to the registered key
// set, and parameters spelled with their default value dropped — so
// "bo:scoremax=31" and "bo" normalize (and therefore hash) identically.
func NormalizeL2(spec Spec) (Spec, error) { return l2Registry.normalize(spec) }

// NormalizeL1 is NormalizeL2 for the L1 registry.
func NormalizeL1(spec Spec) (Spec, error) { return l1Registry.normalize(spec) }

// L2Names returns the sorted names of every registered L2 prefetcher.
func L2Names() []string { return l2Registry.names() }

// L1Names returns the sorted names of every registered L1 prefetcher.
func L1Names() []string { return l1Registry.names() }

// L2Help returns the registered help line for name ("" when unknown).
func L2Help(name string) string { return l2Registry.help(name) }

// L1Help returns the registered help line for name ("" when unknown).
func L1Help(name string) string { return l1Registry.help(name) }

func (r *registry[T]) register(name string, def Definition[T]) {
	if err := checkToken(name); err != nil {
		panic(fmt.Sprintf("prefetch: invalid registration name %q: %v", name, err))
	}
	if def.Build == nil {
		panic(fmt.Sprintf("prefetch: registration %q has no Build", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.defs[name]; dup {
		panic(fmt.Sprintf("prefetch: prefetcher %q registered twice", name))
	}
	r.defs[name] = def
}

func (r *registry[T]) lookup(spec Spec) (Definition[T], Spec, error) {
	spec = spec.Canonical()
	r.mu.RLock()
	def, ok := r.defs[spec.Name]
	r.mu.RUnlock()
	if !ok {
		return Definition[T]{}, Spec{}, fmt.Errorf("prefetch: unknown prefetcher %q (registered: %s)",
			spec.Name, strings.Join(r.names(), "|"))
	}
	// Sorted iteration so the same bad spec always reports the same first
	// unknown key, whatever the map's order.
	for _, key := range sortedKeys(spec.Params) {
		if _, known := def.Defaults[key]; !known {
			return Definition[T]{}, Spec{}, fmt.Errorf("prefetch: %s has no parameter %q (accepted: %s)",
				spec.Name, key, strings.Join(sortedKeys(def.Defaults), "|"))
		}
	}
	return def, spec, nil
}

func (r *registry[T]) build(spec Spec, page mem.PageSize) (T, error) {
	var zero T
	def, spec, err := r.lookup(spec)
	if err != nil {
		return zero, err
	}
	p, err := def.Build(page, Values(spec.Params))
	if err != nil {
		return zero, fmt.Errorf("prefetch: %s: %v", spec.Name, err)
	}
	return p, nil
}

func (r *registry[T]) normalize(spec Spec) (Spec, error) {
	def, spec, err := r.lookup(spec)
	if err != nil {
		return Spec{}, err
	}
	if def.Validate != nil {
		if err := def.Validate(Values(spec.Params)); err != nil {
			return Spec{}, fmt.Errorf("prefetch: %s: %v", spec.Name, err)
		}
	} else if _, err := def.Build(mem.Page4K, Values(spec.Params)); err != nil {
		// Building validates the parameter values, so a normalized spec is
		// always constructible; prefetcher construction is cheap by design.
		return Spec{}, fmt.Errorf("prefetch: %s: %v", spec.Name, err)
	}
	out := Spec{Name: spec.Name}
	keys := make([]string, 0, len(spec.Params))
	for key := range spec.Params {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		value := spec.Params[key]
		if def.Canonicalize != nil {
			value, err = def.Canonicalize(key, value)
			if err != nil {
				return Spec{}, fmt.Errorf("prefetch: %s: %s=%q: %v", spec.Name, key, spec.Params[key], err)
			}
		}
		if def.Defaults[key] == value {
			continue // spelled-out default: drop for a stable canonical form
		}
		if out.Params == nil {
			out.Params = make(map[string]string)
		}
		out.Params[key] = value
	}
	return out, nil
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return sortedKeys(r.defs)
}

func (r *registry[T]) help(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.defs[name].Help
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Values is the parameter map a Build function parses. The typed accessors
// take the default and an error accumulator: the first failed parse wins,
// so a factory reads every parameter unconditionally and checks err once.
type Values map[string]string

// Int parses an integer parameter.
func (v Values) Int(key string, def int, err *error) int {
	raw, ok := v[key]
	if !ok {
		return def
	}
	n, e := strconv.Atoi(raw)
	if e != nil {
		setErr(err, fmt.Errorf("parameter %s=%q: not an integer", key, raw))
		return def
	}
	return n
}

// Uint parses a non-negative integer parameter.
func (v Values) Uint(key string, def uint, err *error) uint {
	n := v.Int(key, int(def), err)
	if n < 0 {
		setErr(err, fmt.Errorf("parameter %s=%d: must be >= 0", key, n))
		return def
	}
	return uint(n)
}

// Bool parses a boolean parameter ("true"/"false"/"1"/"0").
func (v Values) Bool(key string, def bool, err *error) bool {
	raw, ok := v[key]
	if !ok {
		return def
	}
	b, e := strconv.ParseBool(raw)
	if e != nil {
		setErr(err, fmt.Errorf("parameter %s=%q: not a boolean", key, raw))
		return def
	}
	return b
}

// Ints parses a '+'-separated integer list parameter (e.g. "1+2+8").
func (v Values) Ints(key string, def []int, err *error) []int {
	raw, ok := v[key]
	if !ok {
		return def
	}
	parts := strings.Split(raw, "+")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, e := strconv.Atoi(p)
		if e != nil {
			setErr(err, fmt.Errorf("parameter %s=%q: %q is not an integer", key, raw, p))
			return def
		}
		out = append(out, n)
	}
	return out
}

func setErr(err *error, e error) {
	if *err == nil {
		*err = e
	}
}

// FormatInts renders an integer list in the canonical '+'-separated form
// Values.Ints parses; registrations use it to spell list defaults.
func FormatInts(list []int) string {
	parts := make([]string, len(list))
	for i, n := range list {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, "+")
}
