package prefetch_test

// External test package: unlike the in-package tests, this one can link
// internal/prefetch/all (the in-package tests cannot import it — the
// implementations import prefetch back), so it exercises the registry
// exactly as the engine sees it, with every prefetcher registered.

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	_ "bopsim/internal/prefetch/all"
)

func TestFullRegistryNames(t *testing.T) {
	l2 := map[string]bool{}
	for _, n := range prefetch.L2Names() {
		l2[n] = true
	}
	for _, want := range []string{"none", "nextline", "offset", "bo", "sbp", "multi"} {
		if !l2[want] {
			t.Errorf("L2 registry missing %q: %v", want, prefetch.L2Names())
		}
	}
	l1 := map[string]bool{}
	for _, n := range prefetch.L1Names() {
		l1[n] = true
	}
	for _, want := range []string{"none", "stride"} {
		if !l1[want] {
			t.Errorf("L1 registry missing %q: %v", want, prefetch.L1Names())
		}
	}
	for _, n := range prefetch.L2Names() {
		if prefetch.L2Help(n) == "" {
			t.Errorf("registered prefetcher %q has no help line", n)
		}
	}
}

func TestNormalizeDropsRegisteredDefaults(t *testing.T) {
	cases := []struct{ in, want string }{
		{"bo:scoremax=31", "bo"},
		{"bo:scoremax=31,badscore=5", "bo:badscore=5"},
		{"sbp:period=256", "sbp"},
		{"sbp:period=128", "sbp:period=128"},
		{"multi:maxissue=4", "multi"},
		// Dropping a spelled-out default must be semantics-preserving even
		// next to a non-default period: the cutoff defaults are static
		// (never derived from the period), so these two are one config...
		{"sbp:period=128,cutoff1=256", "sbp:period=128"},
		// ...while a genuinely non-default cutoff is kept.
		{"sbp:period=128,cutoff1=128", "sbp:cutoff1=128,period=128"},
	}
	for _, c := range cases {
		got, err := prefetch.NormalizeL2(prefetch.MustSpec(c.in))
		if err != nil {
			t.Errorf("NormalizeL2(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("NormalizeL2(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
	if got, err := prefetch.NormalizeL1(prefetch.MustSpec("stride:dist=16")); err != nil || got.String() != "stride" {
		t.Errorf("NormalizeL1(stride:dist=16) = %q, %v", got, err)
	}
	// L1 and L2 namespaces stay separate even fully linked.
	if _, err := prefetch.NormalizeL1(prefetch.Spec{Name: "bo"}); err == nil {
		t.Error("L2-only name accepted by the L1 registry")
	}
}

func TestEveryRegisteredL2BuildsWithDefaults(t *testing.T) {
	for _, name := range prefetch.L2Names() {
		p, err := prefetch.NewL2(prefetch.Spec{Name: name}, mem.Page4K)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if name != "none" && p == nil {
			t.Errorf("%s built nil", name)
		}
	}
	for _, name := range prefetch.L1Names() {
		if _, err := prefetch.NewL1(prefetch.Spec{Name: name}, mem.Page4K); err != nil {
			t.Errorf("L1 %s: %v", name, err)
		}
	}
}

func TestBOParameterValidation(t *testing.T) {
	for _, bad := range []string{
		"bo:degree=3", "bo:rr=0", "bo:offsets=1+0", "bo:scoremax=0",
		"bo:minbad=5,maxbad=2", "sbp:period=0", "stride-not-l2",
		// Geometry constraints must surface as errors, not construction
		// panics reached through the registry.
		"bo:rr=100", "bo:tagbits=20", "sbp:bits=100", "sbp:bits=-1",
	} {
		sp, err := prefetch.ParseSpec(bad)
		if err != nil {
			continue // syntactically invalid is also fine
		}
		if _, err := prefetch.NewL2(sp, mem.Page4K); err == nil {
			t.Errorf("NewL2(%q) accepted", bad)
		}
	}
	// Extension knobs build real prefetchers.
	for _, good := range []string{
		"bo:degree=2", "bo:adaptive=true", "bo:offsets=1+2+-4",
		"bo:rratissue=true,allaccess=true", "sbp:period=128,maxissue=2",
	} {
		if _, err := prefetch.NewL2(prefetch.MustSpec(good), mem.Page4K); err != nil {
			t.Errorf("NewL2(%q): %v", good, err)
		}
	}
}
