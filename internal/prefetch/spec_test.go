package prefetch

import (
	"strings"
	"testing"
)

func TestParseSpecCanonicalRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
	}{
		{"nextline", "nextline"},
		{"bo", "bo"},
		{"offset:d=4", "offset:d=4"},
		{"bo:badscore=5,rr=64", "bo:badscore=5,rr=64"},
		{"bo:rr=64,badscore=5", "bo:badscore=5,rr=64"}, // key order canonicalized
		{"BO:BadScore=5", "bo:badscore=5"},             // case folded
		{"  bo : badscore = 5 ", "bo:badscore=5"},      // whitespace trimmed
		{"multi:offsets=1+2+8", "multi:offsets=1+2+8"},
		{"offset:d=-3", "offset:d=-3"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.canonical {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", c.in, got, c.canonical)
		}
		// parse -> canonical string -> parse is the identity.
		sp2, err := ParseSpec(sp.String())
		if err != nil {
			t.Errorf("reparse of %q: %v", sp.String(), err)
			continue
		}
		if !sp.Equal(sp2) {
			t.Errorf("round trip changed spec: %q -> %q", sp.String(), sp2.String())
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, in := range []string{
		"",                // empty name
		":d=4",            // missing name
		"bo:",             // empty parameter list
		"bo:d",            // not key=value
		"bo:=4",           // empty key
		"bo:d=",           // empty value
		"bo:d=4,d=5",      // duplicate key
		"off set:d=4",     // space in name
		"bo:k!=v",         // bad key character
		"bo:d=a,b",        // second parameter not key=value
		"bo:d=1:2",        // ':' in value would not re-parse
		"bo:d=1=2",        // '=' in value
		"name with space", // bad name
	} {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted as %q, want error", in, sp.String())
		}
	}
}

func TestSpecWithDoesNotMutate(t *testing.T) {
	base := MustSpec("bo:rr=64")
	v := base.With("badscore", "5")
	if base.String() != "bo:rr=64" {
		t.Errorf("With mutated its receiver: %q", base.String())
	}
	if v.String() != "bo:badscore=5,rr=64" {
		t.Errorf("With result = %q", v.String())
	}
}

func TestNormalizeDropsDefaults(t *testing.T) {
	// Only this package's builtin registrations are linked here; the
	// cross-package names (bo, sbp, stride, multi) are covered by the
	// external registry_ext_test, which links internal/prefetch/all.
	cases := []struct{ in, want string }{
		{"offset:d=1", "offset"},
		{"offset:d=4", "offset:d=4"},
		{"nextline", "nextline"},
	}
	for _, c := range cases {
		got, err := NormalizeL2(MustSpec(c.in))
		if err != nil {
			t.Errorf("NormalizeL2(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("NormalizeL2(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestNormalizeRejectsUnknown(t *testing.T) {
	if _, err := NormalizeL2(Spec{Name: "warp-drive"}); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := NormalizeL2(MustSpec("offset:warp=9")); err == nil {
		t.Error("unknown parameter accepted")
	}
	if _, err := NormalizeL2(MustSpec("offset:d=many")); err == nil {
		t.Error("malformed value accepted")
	}
	if _, err := NormalizeL2(MustSpec("offset:d=0")); err == nil {
		t.Error("semantically invalid value accepted")
	}
	// L1 and L2 namespaces are separate.
	if _, err := NormalizeL1(Spec{Name: "offset"}); err == nil {
		t.Error("L2-only name accepted by the L1 registry")
	}
}

// FuzzParseSpec checks that whatever ParseSpec accepts survives the
// canonical round trip: parse -> String -> parse yields an equal spec, and
// the canonical form is a fixed point of itself.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"bo", "nextline", "offset:d=4", "bo:badscore=5,rr=64",
		"multi:offsets=1+2+8,period=128", "BO:BadScore=5", "  bo : rr = 64 ",
		"bo:", ":d=1", "a=b", "x:y=z,,", "offset:d=-3", "s t r",
		// Meta-prefetcher specs with quoted nested sub-specs: the stand-in
		// characters '.', '~' and ';' are ordinary value bytes to ParseSpec.
		"duel:a=bo,b=multi",
		"duel:a=bo.degree~2,b=multi.offsets~1+2+8;minscore~6,period=4096",
		"adapt:base=bo.badscore~3,window=8192",
		"adapt:base=multi,key=minscore,levels=48+24+12+6",
		"duel:a=.~;", "duel:a=bo.b~", "adapt:base=~~..;;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseSpec(in)
		if err != nil {
			return // rejected inputs are out of scope
		}
		s1 := sp.String()
		sp2, err := ParseSpec(s1)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", s1, in, err)
		}
		if s2 := sp2.String(); s2 != s1 {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", in, s1, s2)
		}
		if !sp.Equal(sp2) {
			t.Fatalf("round trip inequality for %q", in)
		}
		if strings.ToLower(sp.Name) != sp.Name {
			t.Fatalf("parsed name %q not lowercased", sp.Name)
		}
	})
}
