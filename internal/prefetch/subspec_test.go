package prefetch

import "testing"

// TestSubSpecRoundTrip checks the quoting substitution is reversible: quote
// -> parse yields the original spec, for bare names and parameterized specs.
func TestSubSpecRoundTrip(t *testing.T) {
	for _, raw := range []string{
		"bo",
		"offset:d=4",
		"bo:badscore=5,degree=2,rr=64",
		"multi:minscore=6,offsets=1+2+-8",
	} {
		sp := MustSpec(raw)
		q, err := QuoteSubSpec(sp)
		if err != nil {
			t.Errorf("QuoteSubSpec(%q): %v", raw, err)
			continue
		}
		back, err := ParseSubSpec(q)
		if err != nil {
			t.Errorf("ParseSubSpec(%q): %v", q, err)
			continue
		}
		if !back.Equal(sp) {
			t.Errorf("round trip %q -> %q -> %q", raw, q, back.String())
		}
	}
}

// TestQuoteSubSpecSpelling pins the substitution itself: ':' '.', '=' '~',
// ',' ';'.
func TestQuoteSubSpecSpelling(t *testing.T) {
	q, err := QuoteSubSpec(MustSpec("multi:minscore=6,offsets=1+2+8"))
	if err != nil {
		t.Fatal(err)
	}
	if want := "multi.minscore~6;offsets~1+2+8"; q != want {
		t.Errorf("QuoteSubSpec = %q, want %q", q, want)
	}
}

// TestParseSubSpecAcceptsBareName checks the unquoted spelling works when
// there is nothing to unquote.
func TestParseSubSpecAcceptsBareName(t *testing.T) {
	sp, err := ParseSubSpec("bo")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "bo" || len(sp.Params) != 0 {
		t.Errorf("ParseSubSpec(bo) = %+v", sp)
	}
}

// TestParseSubSpecRejections checks malformed quoted specs error instead of
// parsing into something surprising.
func TestParseSubSpecRejections(t *testing.T) {
	for _, bad := range []string{"", "bo.d~", "bo.~2", ".d~1", "bo.d~1;", "~"} {
		if _, err := ParseSubSpec(bad); err == nil {
			t.Errorf("ParseSubSpec(%q) accepted", bad)
		}
	}
}
