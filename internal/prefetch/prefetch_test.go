package prefetch

import (
	"testing"

	"bopsim/internal/mem"
)

func TestOffsetListMatchesPaper(t *testing.T) {
	want := []int{
		1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32,
		36, 40, 45, 48, 50, 54, 60, 64, 72, 75, 80, 81, 90, 96, 100, 108,
		120, 125, 128, 135, 144, 150, 160, 162, 180, 192, 200, 216, 225,
		240, 243, 250, 256,
	}
	got := DefaultOffsetList()
	if len(got) != 52 {
		t.Fatalf("offset list has %d entries, want 52", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offset[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOffsetListLCMClosure(t *testing.T) {
	// Section 4.2: if two offsets are in the list, so is their least common
	// multiple, provided it is not too large.
	list := DefaultOffsetList()
	in := make(map[int]bool, len(list))
	for _, d := range list {
		in[d] = true
	}
	gcd := func(a, b int) int {
		for b != 0 {
			a, b = b, a%b
		}
		return a
	}
	for _, a := range list {
		for _, b := range list {
			l := a / gcd(a, b) * b
			if l <= DefaultMaxOffset && !in[l] {
				t.Errorf("lcm(%d,%d)=%d missing from list", a, b, l)
			}
		}
	}
}

func TestOffsetListPrimeFactors(t *testing.T) {
	for _, d := range DefaultOffsetList() {
		if f := largestPrimeFactor(d); f > 5 {
			t.Errorf("offset %d has prime factor %d > 5", d, f)
		}
	}
	// And every excluded offset has a prime factor > 5.
	in := make(map[int]bool)
	for _, d := range DefaultOffsetList() {
		in[d] = true
	}
	for d := 1; d <= DefaultMaxOffset; d++ {
		if !in[d] && largestPrimeFactor(d) <= 5 {
			t.Errorf("offset %d wrongly excluded", d)
		}
	}
}

func TestDenseOffsetList(t *testing.T) {
	l := DenseOffsetList(8)
	if len(l) != 8 || l[0] != 1 || l[7] != 8 {
		t.Errorf("DenseOffsetList(8) = %v", l)
	}
}

func TestNextLinePrefetchesOnMiss(t *testing.T) {
	p := NewNextLine(mem.Page4K)
	got := p.OnAccess(AccessInfo{Line: 10, Hit: false})
	if len(got) != 1 || got[0] != 11 {
		t.Errorf("OnAccess(miss 10) = %v, want [11]", got)
	}
}

func TestNextLinePrefetchesOnPrefetchedHit(t *testing.T) {
	p := NewNextLine(mem.Page4K)
	got := p.OnAccess(AccessInfo{Line: 10, Hit: true, PrefetchedHit: true})
	if len(got) != 1 || got[0] != 11 {
		t.Errorf("OnAccess(prefetched hit) = %v, want [11]", got)
	}
}

func TestNextLineSilentOnPlainHit(t *testing.T) {
	p := NewNextLine(mem.Page4K)
	if got := p.OnAccess(AccessInfo{Line: 10, Hit: true}); got != nil {
		t.Errorf("OnAccess(plain hit) = %v, want nil", got)
	}
}

func TestFixedOffsetRespectsPageBoundary(t *testing.T) {
	p := NewFixedOffset(mem.Page4K, 8)
	// Line 60 of a 64-line page: 60+8 crosses the boundary.
	if got := p.OnAccess(AccessInfo{Line: 60}); got != nil {
		t.Errorf("cross-page prefetch issued: %v", got)
	}
	// Same line with 4MB pages is fine.
	p2 := NewFixedOffset(mem.Page4M, 8)
	if got := p2.OnAccess(AccessInfo{Line: 60}); len(got) != 1 || got[0] != 68 {
		t.Errorf("4MB page prefetch = %v, want [68]", got)
	}
}

func TestFixedOffsetNames(t *testing.T) {
	if NewNextLine(mem.Page4K).Name() != "next-line" {
		t.Error("offset-1 should be named next-line")
	}
	if NewFixedOffset(mem.Page4K, 5).Name() != "offset-5" {
		t.Error("wrong fixed-offset name")
	}
	if NewFixedOffset(mem.Page4K, 5).Offset() != 5 {
		t.Error("Offset() mismatch")
	}
}

func TestFixedOffsetRejectsBadOffset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("offset 0 did not panic")
		}
	}()
	NewFixedOffset(mem.Page4K, 0)
}

func TestNonePrefetcher(t *testing.T) {
	var p None
	if p.OnAccess(AccessInfo{Line: 1}) != nil {
		t.Error("None prefetched")
	}
	p.OnFill(1, true) // must not panic
	if p.Name() != "none" {
		t.Error("bad name")
	}
}

func TestEligible(t *testing.T) {
	cases := []struct {
		hit, pfHit, want bool
	}{
		{false, false, true}, // miss
		{true, false, false}, // plain hit
		{true, true, true},   // prefetched hit
	}
	for _, c := range cases {
		a := AccessInfo{Hit: c.hit, PrefetchedHit: c.pfHit}
		if a.Eligible() != c.want {
			t.Errorf("Eligible(hit=%v pfHit=%v) = %v", c.hit, c.pfHit, !c.want)
		}
	}
}
