package prefetch

import (
	"testing"

	"bopsim/internal/mem"
)

// TestFixedOffsetZeroAlloc pins the baseline next-line prefetcher's
// hot-path cost: the scratch buffer makes OnAccess allocation-free, and
// OnFill is a no-op. Guards the //bovet:hotpath roots with a runtime
// witness.
func TestFixedOffsetZeroAlloc(t *testing.T) {
	p := NewNextLine(mem.Page4M)
	line := mem.LineAddr(0)
	step := func() {
		for _, tgt := range p.OnAccess(AccessInfo{Line: line}) {
			p.OnFill(tgt, true)
		}
		line = (line + 3) % (1 << 20)
	}
	for i := 0; i < 10_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg != 0 {
		t.Errorf("steady-state OnAccess+OnFill allocates %.3f objects/op, want 0", avg)
	}
}
