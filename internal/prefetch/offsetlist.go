package prefetch

// The paper's offset list (section 4.2): all offsets between 1 and 256
// whose prime factorization contains no prime greater than 5. Sampling
// offsets this way keeps small offsets dense (they are the most useful),
// keeps the list short (52 entries instead of 256), and guarantees that if
// two offsets are in the list so is their least common multiple (when it is
// not too large), which matters for interleaved streams (section 3.3).

// DefaultMaxOffset is the largest offset the paper considers (useful with
// 4MB superpages; with 4KB pages offsets above 63 never fire).
const DefaultMaxOffset = 256

// OffsetList returns all offsets in [1, maxOffset] whose prime factors are
// all <= maxPrime, in increasing order.
func OffsetList(maxOffset, maxPrime int) []int {
	var out []int
	for d := 1; d <= maxOffset; d++ {
		if largestPrimeFactor(d) <= maxPrime {
			out = append(out, d)
		}
	}
	return out
}

// DefaultOffsetList returns the paper's 52-offset list: 1..256 with prime
// factors <= 5.
func DefaultOffsetList() []int { return OffsetList(DefaultMaxOffset, 5) }

// DenseOffsetList returns every offset in [1, maxOffset]; used by the
// ablation comparing the sampled list against a dense one.
func DenseOffsetList(maxOffset int) []int {
	out := make([]int, maxOffset)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// largestPrimeFactor returns the largest prime factor of n (1 for n=1).
func largestPrimeFactor(n int) int {
	largest := 1
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			largest = f
			n /= f
		}
	}
	if n > 1 {
		largest = n
	}
	return largest
}
