package prefetch

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// StateCodec is optionally implemented by registered prefetchers whose
// internal state can be serialized for checkpoint/restore. The engine uses
// it when a warmup region runs with the prefetchers active (WarmupPF): the
// checkpoint then carries each prefetcher's learned state, and a restored
// simulation continues learning exactly where the original left off.
//
// A prefetcher that does not implement StateCodec can still be restored
// from a checkpoint whose warmup ran with prefetching disabled (the shared
// warmup case) — it is simply constructed fresh at the barrier — but the
// engine refuses to checkpoint live state it cannot serialize.
//
// Encoded state must be deterministic: encoding the same state twice yields
// identical bytes (snapshots are content-addressed by SHA-256), and
// RestoreState must reject malformed or mismatched bytes with an error,
// never panic.
type StateCodec interface {
	// SaveState serializes the prefetcher's internal state.
	SaveState() ([]byte, error)
	// RestoreState replaces the prefetcher's state with previously saved
	// bytes. The prefetcher must have been constructed from the same spec.
	RestoreState([]byte) error
}

// MarshalState is the shared helper prefetcher codecs encode their exported
// state-mirror structs with: JSON, whose struct encoding is byte-stable
// (fixed field order, no map iteration).
func MarshalState(v any) ([]byte, error) {
	return json.Marshal(v)
}

// UnmarshalState is the strict decoding counterpart of MarshalState:
// unknown fields are rejected, so truncated or version-skewed state fails
// loudly instead of silently restoring partial state.
func UnmarshalState(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("prefetch: decoding state: %w", err)
	}
	return nil
}

// Stateless prefetchers implement StateCodec trivially so every in-tree
// registration is checkpointable under WarmupPF.

// SaveState implements StateCodec: None has no state.
func (None) SaveState() ([]byte, error) { return nil, nil }

// RestoreState implements StateCodec.
func (None) RestoreState(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("prefetch: none carries no state, got %d bytes", len(data))
	}
	return nil
}

// SaveState implements StateCodec: a fixed-offset prefetcher has no state.
func (p *FixedOffset) SaveState() ([]byte, error) { return nil, nil }

// RestoreState implements StateCodec.
func (p *FixedOffset) RestoreState(data []byte) error {
	if len(data) != 0 {
		return fmt.Errorf("prefetch: %s carries no state, got %d bytes", p.name, len(data))
	}
	return nil
}
