// Package prefetch defines the L2 prefetcher interface shared by every L2
// prefetcher in this repository (next-line, fixed-offset, Best-Offset,
// Sandbox) and implements the two simplest ones. L2 prefetchers work on
// physical line addresses only: they see neither PCs nor TLB state (paper
// section 5.6), and they never prefetch across a page boundary.
package prefetch

import "bopsim/internal/mem"

// AccessInfo describes one L2 read access from the core side (an L1 miss or
// an L1 prefetch), the input stream every L2 prefetcher observes.
type AccessInfo struct {
	Line mem.LineAddr // physical line address X
	Hit  bool         // L2 hit
	// PrefetchedHit is true for an L2 hit on a line whose prefetch bit was
	// still set. Misses and prefetched hits are the "eligible" accesses
	// that trigger offset prefetchers (paper section 4).
	PrefetchedHit bool
}

// Eligible reports whether the access triggers an offset prefetcher: an L2
// miss or a prefetched hit.
func (a AccessInfo) Eligible() bool { return !a.Hit || a.PrefetchedHit }

// L2Prefetcher is implemented by all L2 prefetchers.
type L2Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// OnAccess observes one L2 read access and returns the physical lines
	// to prefetch (possibly none). Implementations must respect page
	// boundaries themselves. The returned slice may be scratch owned by the
	// prefetcher, valid only until the next OnAccess call — callers consume
	// it immediately and must not retain it.
	OnAccess(a AccessInfo) []mem.LineAddr
	// OnFill observes a line being inserted into the L2 cache, with
	// wasPrefetch true when the fill was caused by this prefetcher (and not
	// promoted to a demand miss in the meantime). The Best-Offset
	// prefetcher uses fills to populate its recent-requests table at
	// prefetch *completion* time, which is how it learns timeliness.
	OnFill(line mem.LineAddr, wasPrefetch bool)
}

// PreIssueTagChecker is optionally implemented by L2 prefetchers whose
// requests should pass an extra L2 tag lookup before entering the prefetch
// queue. The paper adds this check for SBP's degree-N request streams
// (section 6.3); any registered prefetcher issuing several lines per access
// should opt in the same way.
type PreIssueTagChecker interface {
	PreIssueTagCheck() bool
}

// L1Prefetcher is implemented by DL1 prefetchers. Unlike L2 prefetchers
// they see the program side of an access — the requesting PC and the
// virtual address — and return virtual prefetch addresses; the hierarchy
// translates, TLB2-gates and injects them (paper section 5.5).
type L1Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// Query computes a prefetch virtual address for a load/store at pc
	// accessing va, using state from *before* this access's table update.
	// The caller invokes it only for DL1 misses and prefetched hits.
	Query(pc uint64, va mem.Addr) (prefVA mem.Addr, ok bool)
	// Update records the retirement of a load/store at pc with address va
	// (tables update at retirement, in program order).
	Update(pc uint64, va mem.Addr)
}

// None is the "no L2 prefetcher" configuration (Figure 5's ablation).
type None struct{}

// Name implements L2Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements L2Prefetcher.
//
//bovet:hotpath
func (None) OnAccess(AccessInfo) []mem.LineAddr { return nil }

// OnFill implements L2Prefetcher.
//
//bovet:hotpath
func (None) OnFill(mem.LineAddr, bool) {}

// FixedOffset prefetches X+D on every eligible access, D constant. D=1 is
// the baseline next-line prefetcher of section 5.6; other values are used
// by Figures 7 and 8.
type FixedOffset struct {
	page   mem.PageSize
	offset uint64
	name   string
	//bovet:allow statecodec OnAccess scratch is valid only until the next call; never learned state
	buf [1]mem.LineAddr // OnAccess scratch, avoids a per-access slice
}

// NewFixedOffset returns a fixed-offset prefetcher with offset d >= 1.
func NewFixedOffset(page mem.PageSize, d int) *FixedOffset {
	if d < 1 {
		panic("prefetch: fixed offset must be >= 1")
	}
	name := "next-line"
	if d != 1 {
		name = "offset-" + itoa(d)
	}
	return &FixedOffset{page: page, offset: uint64(d), name: name}
}

// NewNextLine returns the baseline L2 next-line prefetcher (offset 1).
func NewNextLine(page mem.PageSize) *FixedOffset { return NewFixedOffset(page, 1) }

// Name implements L2Prefetcher.
func (p *FixedOffset) Name() string { return p.name }

// Offset returns the constant prefetch offset.
func (p *FixedOffset) Offset() int { return int(p.offset) }

// OnAccess implements L2Prefetcher.
//
//bovet:hotpath
func (p *FixedOffset) OnAccess(a AccessInfo) []mem.LineAddr {
	if !a.Eligible() {
		return nil
	}
	target := a.Line + mem.LineAddr(p.offset)
	if !p.page.SamePage(a.Line, target) {
		return nil
	}
	p.buf[0] = target
	return p.buf[:1]
}

// OnFill implements L2Prefetcher.
//
//bovet:hotpath
func (p *FixedOffset) OnFill(mem.LineAddr, bool) {}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
