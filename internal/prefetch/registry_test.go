package prefetch

import (
	"strings"
	"testing"

	"bopsim/internal/mem"
)

func TestBuiltinL2Registrations(t *testing.T) {
	names := L2Names()
	for _, want := range []string{"none", "nextline", "offset"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q not registered (have %v)", want, names)
		}
	}
	if p, err := NewL2(Spec{Name: "nextline"}, mem.Page4K); err != nil || p.Name() != "next-line" {
		t.Errorf("nextline build: %v, %v", p, err)
	}
	p, err := NewL2(MustSpec("offset:d=7"), mem.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if fo, ok := p.(*FixedOffset); !ok || fo.Offset() != 7 {
		t.Errorf("offset:d=7 built %T with offset %v", p, p)
	}
	if _, err := NewL2(MustSpec("offset:d=0"), mem.Page4K); err == nil {
		t.Error("offset:d=0 accepted")
	}
}

func TestNewL2UnknownNameListsAlternatives(t *testing.T) {
	_, err := NewL2(Spec{Name: "nosuch"}, mem.Page4K)
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "nextline") {
		t.Errorf("error does not list registered names: %v", err)
	}
	_, err = NewL2(MustSpec("offset:q=1"), mem.Page4K)
	if err == nil {
		t.Fatal("unknown parameter accepted")
	}
	if !strings.Contains(err.Error(), "d") {
		t.Errorf("error does not list accepted parameters: %v", err)
	}
}

func TestL1NoneBuildsNil(t *testing.T) {
	p, err := NewL1(Spec{Name: "none"}, mem.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Errorf("L1 none built %T, want nil (disabled)", p)
	}
}

func TestRegisterRejectsDuplicatesAndBadNames(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	build := func(mem.PageSize, Values) (L2Prefetcher, error) { return None{}, nil }
	expectPanic("duplicate registration", func() {
		RegisterL2("nextline", Definition[L2Prefetcher]{Build: build})
	})
	expectPanic("bad name", func() {
		RegisterL2("Next Line", Definition[L2Prefetcher]{Build: build})
	})
	expectPanic("nil Build", func() {
		RegisterL2("broken", Definition[L2Prefetcher]{})
	})
}

func TestValuesAccessors(t *testing.T) {
	v := Values{"a": "3", "b": "true", "c": "1+2+-3", "bad": "x"}
	var err error
	if got := v.Int("a", 0, &err); got != 3 || err != nil {
		t.Errorf("Int = %d, %v", got, err)
	}
	if got := v.Bool("b", false, &err); !got || err != nil {
		t.Errorf("Bool = %v, %v", got, err)
	}
	if got := v.Ints("c", nil, &err); err != nil || len(got) != 3 || got[2] != -3 {
		t.Errorf("Ints = %v, %v", got, err)
	}
	if got := v.Int("missing", 42, &err); got != 42 || err != nil {
		t.Errorf("Int default = %d, %v", got, err)
	}
	v.Int("bad", 0, &err)
	if err == nil {
		t.Error("bad int accepted")
	}
	// First error sticks.
	first := err
	v.Bool("bad", false, &err)
	if err != first {
		t.Error("error accumulator overwrote the first error")
	}
}

func TestFormatIntsRoundTrips(t *testing.T) {
	list := []int{1, -2, 300}
	var err error
	got := Values{"x": FormatInts(list)}.Ints("x", nil, &err)
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 300 {
		t.Errorf("FormatInts round trip = %v, %v", got, err)
	}
}
