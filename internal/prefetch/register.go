package prefetch

import (
	"fmt"

	"bopsim/internal/mem"
)

// The two trivial L2 prefetchers implemented by this package register
// themselves here; the "none" spellings for both slots live here too.
// Richer prefetchers (bo, sbp, multi, stride) register from their own
// packages — see internal/prefetch/all for the link-time bundle.

func init() {
	RegisterL2("none", Definition[L2Prefetcher]{
		Help: "no L2 prefetching (Figure 5's ablation)",
		Build: func(mem.PageSize, Values) (L2Prefetcher, error) {
			return None{}, nil
		},
	})
	RegisterL2("nextline", Definition[L2Prefetcher]{
		Help: "baseline next-line prefetcher (offset 1, section 5.6)",
		Build: func(page mem.PageSize, _ Values) (L2Prefetcher, error) {
			return NewNextLine(page), nil
		},
	})
	RegisterL2("offset", Definition[L2Prefetcher]{
		Help:     "fixed-offset prefetcher: X -> X+d (Figures 7 and 8)",
		Defaults: map[string]string{"d": "1"},
		Build: func(page mem.PageSize, v Values) (L2Prefetcher, error) {
			var err error
			d := v.Int("d", 1, &err)
			if err != nil {
				return nil, err
			}
			if d < 1 {
				return nil, fmt.Errorf("offset d=%d must be >= 1", d)
			}
			return NewFixedOffset(page, d), nil
		},
	})
	RegisterL1("none", Definition[L1Prefetcher]{
		Help: "no DL1 prefetching (Figure 4's ablation)",
		Build: func(mem.PageSize, Values) (L1Prefetcher, error) {
			return nil, nil
		},
	})
}
