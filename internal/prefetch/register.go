package prefetch

import (
	"fmt"

	"bopsim/internal/mem"
)

// The two trivial L2 prefetchers implemented by this package register
// themselves here; the "none" spellings for both slots live here too.
// Richer prefetchers (bo, sbp, multi, stride) register from their own
// packages — see internal/prefetch/all for the link-time bundle.
//
// Every Definition spells out Defaults (the parameter schema; empty means
// "accepts no parameters") and a Validate hook — construction is cheap
// here, so Validate delegates to the same builder Normalize used to call.
// The registryinit analyzer enforces this shape on all registrations.

func init() {
	RegisterL2("none", Definition[L2Prefetcher]{
		Help:     "no L2 prefetching (Figure 5's ablation)",
		Defaults: map[string]string{},
		Build:    buildNoneL2,
		Validate: func(v Values) error { _, err := buildNoneL2(mem.Page4K, v); return err },
	})
	RegisterL2("nextline", Definition[L2Prefetcher]{
		Help:     "baseline next-line prefetcher (offset 1, section 5.6)",
		Defaults: map[string]string{},
		Build:    buildNextLine,
		Validate: func(v Values) error { _, err := buildNextLine(mem.Page4K, v); return err },
	})
	RegisterL2("offset", Definition[L2Prefetcher]{
		Help:     "fixed-offset prefetcher: X -> X+d (Figures 7 and 8)",
		Defaults: map[string]string{"d": "1"},
		Build:    buildOffset,
		Validate: func(v Values) error { _, err := buildOffset(mem.Page4K, v); return err },
	})
	RegisterL1("none", Definition[L1Prefetcher]{
		Help:     "no DL1 prefetching (Figure 4's ablation)",
		Defaults: map[string]string{},
		Build:    buildNoneL1,
		Validate: func(v Values) error { _, err := buildNoneL1(mem.Page4K, v); return err },
	})
}

func buildNoneL2(mem.PageSize, Values) (L2Prefetcher, error) {
	return None{}, nil
}

func buildNextLine(page mem.PageSize, _ Values) (L2Prefetcher, error) {
	return NewNextLine(page), nil
}

func buildOffset(page mem.PageSize, v Values) (L2Prefetcher, error) {
	var err error
	d := v.Int("d", 1, &err)
	if err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("offset d=%d must be >= 1", d)
	}
	return NewFixedOffset(page, d), nil
}

func buildNoneL1(mem.PageSize, Values) (L1Prefetcher, error) {
	return nil, nil
}
