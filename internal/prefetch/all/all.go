// Package all links every prefetcher implementation into the registry, the
// way database/sql drivers and image codecs are linked: a blank import per
// package, each of whose init functions calls prefetch.RegisterL2 or
// RegisterL1. The engine imports this package; a new prefetcher therefore
// needs exactly (a) its own package with a registration and (b) one line
// here — no engine, scheduler or CLI changes.
package all

import (
	_ "bopsim/internal/adapt" // "adapt"
	_ "bopsim/internal/core"  // "bo"
	_ "bopsim/internal/duel"  // "duel"
	_ "bopsim/internal/multi" // "multi"
	_ "bopsim/internal/sbp"   // "sbp"
	// "none", "nextline" and "offset" (L2) and "none" (L1) register from
	// internal/prefetch itself.
	_ "bopsim/internal/stride" // "stride" (L1)
)
