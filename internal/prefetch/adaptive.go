package prefetch

import (
	"fmt"
	"strings"
)

// This file holds the contracts the adaptive meta-prefetchers (internal/duel,
// internal/adapt) build on: live parameter retuning and nested sub-specs.

// Retunable is optionally implemented by L2 prefetchers whose spec parameters
// can be changed on a live instance, between accesses, without rebuilding it.
// The phase-adaptive wrapper (internal/adapt) drives this at its window
// boundaries.
//
// Retune must be deterministic: the same call sequence on the same instance
// always leaves identical state. Changing a parameter may reset derived
// learning state (scores, cursors) — implementations document what a retune
// resets — but must never touch state the parameter does not govern. A key
// outside RetunableKeys, or a value the spec parser would reject, returns an
// error and changes nothing.
type Retunable interface {
	// RetunableKeys returns the spec parameter keys Retune accepts, sorted.
	RetunableKeys() []string
	// Retune sets one parameter to the value's spec spelling (the same
	// syntax the registry parses, e.g. "2" for degree, "1+2+8" for an
	// offset list).
	Retune(key, value string) error
}

// MetaL2 marks L2 prefetchers that delegate to nested child specs. Meta
// prefetchers refuse meta children — exactly one level of nesting, the same
// rule the trace registry's mix generator enforces — which keeps sub-spec
// quoting, set partitioning and nested state framing from compounding.
type MetaL2 interface {
	// MetaL2 is a marker; it reports nothing and must be side-effect free.
	MetaL2()
}

// Sub-spec quoting. A spec value may not contain ':', '=' or ',' (see
// checkValue), so a child spec cannot be embedded verbatim in a parent
// parameter like duel's a=/b=. QuoteSubSpec substitutes each reserved
// character with a legal stand-in and ParseSubSpec reverses it:
//
//	':' <-> '.'    '=' <-> '~'    ',' <-> ';'
//
// so "multi:minscore=6,offsets=1+2+8" is spelled
// "multi.minscore~6;offsets~1+2+8" inside a parent spec, e.g.
// "duel:a=bo.degree~2,b=multi.minscore~6". The substitution is reversible
// only because QuoteSubSpec rejects child specs whose canonical form already
// uses a stand-in character; in-tree parameter values are integers, booleans
// and '+'-separated integer lists, so this never triggers.

var (
	quoteSubSpec   = strings.NewReplacer(":", ".", "=", "~", ",", ";")
	unquoteSubSpec = strings.NewReplacer(".", ":", "~", "=", ";", ",")
)

// QuoteSubSpec renders a child spec in the quoted form accepted as a parent
// spec parameter value. The spec is rendered canonically first, so equal
// specs quote identically.
func QuoteSubSpec(s Spec) (string, error) {
	str := s.String()
	if strings.ContainsAny(str, ".~;") {
		return "", fmt.Errorf("prefetch: sub-spec %q cannot be quoted: it contains a stand-in character ('.', '~' or ';')", str)
	}
	return quoteSubSpec.Replace(str), nil
}

// ParseSubSpec parses a quoted child spec from a parent parameter value. It
// accepts the unquoted form too when the child takes no parameters (a bare
// name like "bo" contains nothing to unquote).
func ParseSubSpec(v string) (Spec, error) {
	sp, err := ParseSpec(unquoteSubSpec.Replace(v))
	if err != nil {
		return Spec{}, fmt.Errorf("prefetch: sub-spec %q: %w", v, err)
	}
	return sp, nil
}

// CanonicalizeSubSpecs returns a Definition.Canonicalize hook that rewrites
// the named keys' values through ParseSubSpec -> NormalizeL2 -> QuoteSubSpec,
// leaving every other key untouched. Registered by the meta-prefetchers for
// their child-spec parameters, so equivalent spellings of a nested spec
// collapse to one canonical parent form.
func CanonicalizeSubSpecs(keys ...string) func(key, value string) (string, error) {
	return func(key, value string) (string, error) {
		isSub := false
		for _, k := range keys {
			if k == key {
				isSub = true
				break
			}
		}
		if !isSub {
			return value, nil
		}
		sp, err := ParseSubSpec(value)
		if err != nil {
			return "", err
		}
		norm, err := NormalizeL2(sp)
		if err != nil {
			return "", err
		}
		return QuoteSubSpec(norm)
	}
}
