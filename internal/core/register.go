package core

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Spec registration: the Best-Offset prefetcher owns its name, parameter
// schema and validation, so the engine builds it without knowing anything
// beyond prefetch.Spec. Every Table 2 tunable and every ablation/extension
// knob of Params is addressable, e.g. "bo:badscore=5", "bo:rr=64",
// "bo:adaptive=true", "bo:offsets=1+2+8".
func init() {
	def := DefaultParams()
	prefetch.RegisterL2("bo", prefetch.Definition[prefetch.L2Prefetcher]{
		Help:     "Best-Offset prefetcher (the paper's design, Table 2 defaults)",
		Build:    buildSpec,
		Validate: func(v prefetch.Values) error { _, err := buildSpec(mem.Page4K, v); return err },
		Defaults: map[string]string{
			"rr":        fmt.Sprint(def.RREntries),
			"tagbits":   fmt.Sprint(def.RRTagBits),
			"scoremax":  fmt.Sprint(def.ScoreMax),
			"roundmax":  fmt.Sprint(def.RoundMax),
			"badscore":  fmt.Sprint(def.BadScore),
			"offsets":   prefetch.FormatInts(def.Offsets),
			"degree":    "1",
			"rratissue": "false",
			"allaccess": "false",
			"adaptive":  "false",
			"minbad":    "0",
			"maxbad":    "4",
		},
	})
}

// buildSpec parses and validates bo's spec parameters and constructs the
// prefetcher; the registered Validate hook delegates here (construction is
// cheap), so a spec Normalize accepts is always constructible.
func buildSpec(page mem.PageSize, v prefetch.Values) (prefetch.L2Prefetcher, error) {
	p := DefaultParams()
	var err error
	p.RREntries = v.Int("rr", p.RREntries, &err)
	p.RRTagBits = v.Uint("tagbits", p.RRTagBits, &err)
	p.ScoreMax = v.Int("scoremax", p.ScoreMax, &err)
	p.RoundMax = v.Int("roundmax", p.RoundMax, &err)
	p.BadScore = v.Int("badscore", p.BadScore, &err)
	p.Offsets = v.Ints("offsets", p.Offsets, &err)
	p.Degree = v.Int("degree", 1, &err)
	p.InsertRRAtIssue = v.Bool("rratissue", false, &err)
	p.TriggerOnAllAccesses = v.Bool("allaccess", false, &err)
	p.AdaptiveThrottle = v.Bool("adaptive", false, &err)
	p.MinBadScore = v.Int("minbad", 0, &err)
	p.MaxBadScore = v.Int("maxbad", 4, &err)
	if err != nil {
		return nil, err
	}
	if p.RREntries < 1 || p.RREntries&(p.RREntries-1) != 0 {
		return nil, fmt.Errorf("rr=%d must be a positive power of two", p.RREntries)
	}
	if p.RRTagBits < 1 || p.RRTagBits > 16 {
		return nil, fmt.Errorf("tagbits=%d must be in 1..16", p.RRTagBits)
	}
	if p.ScoreMax < 1 || p.RoundMax < 1 {
		return nil, fmt.Errorf("scoremax=%d and roundmax=%d must be >= 1", p.ScoreMax, p.RoundMax)
	}
	if len(p.Offsets) == 0 {
		return nil, fmt.Errorf("offsets must not be empty")
	}
	for _, d := range p.Offsets {
		if d == 0 {
			return nil, fmt.Errorf("offset 0 is meaningless")
		}
	}
	if p.Degree < 1 || p.Degree > 2 {
		return nil, fmt.Errorf("degree=%d must be 1 or 2", p.Degree)
	}
	if p.MinBadScore > p.MaxBadScore {
		return nil, fmt.Errorf("minbad=%d above maxbad=%d", p.MinBadScore, p.MaxBadScore)
	}
	return New(page, p), nil
}
