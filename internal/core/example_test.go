package core_test

import (
	"fmt"

	"bopsim/internal/core"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Example demonstrates the Best-Offset prefetcher against a toy memory
// system: a sequential line stream whose prefetches complete 10 accesses
// after being issued. BO must learn an offset larger than 10 so that
// prefetched lines arrive before the demand stream reaches them.
func Example() {
	bo := core.New(mem.Page4M, core.DefaultParams())

	var inFlight []mem.LineAddr // prefetches waiting to "complete"
	const lag = 10

	for x := mem.LineAddr(0); x < 150_000; x++ {
		// Every line access misses the L2 in this toy setup.
		targets := bo.OnAccess(prefetch.AccessInfo{Line: x})
		inFlight = append(inFlight, targets...)
		// A prefetch completes lag accesses after it was issued: only then
		// is its base address recorded in the RR table.
		if len(inFlight) > lag {
			bo.OnFill(inFlight[0], true)
			inFlight = inFlight[1:]
		}
	}

	fmt.Println("prefetch on:", bo.Enabled())
	fmt.Println("offset covers the lag:", bo.Offset() > lag)
	// Output:
	// prefetch on: true
	// offset covers the lag: true
}

// ExampleParams shows the Table 2 defaults and an extension configuration.
func ExampleParams() {
	p := core.DefaultParams()
	fmt.Println("SCOREMAX:", p.ScoreMax)
	fmt.Println("ROUNDMAX:", p.RoundMax)
	fmt.Println("BADSCORE:", p.BadScore)
	fmt.Println("offsets:", len(p.Offsets))

	ext := core.DegreeTwoParams()
	fmt.Println("degree-2:", ext.Degree)
	// Output:
	// SCOREMAX: 31
	// ROUNDMAX: 100
	// BADSCORE: 1
	// offsets: 52
	// degree-2: 2
}
