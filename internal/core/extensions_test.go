package core

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func TestWithNegativeOffsets(t *testing.T) {
	base := []int{1, 2, 3}
	got := WithNegativeOffsets(base)
	if len(got) != 6 {
		t.Fatalf("len = %d, want 6", len(got))
	}
	want := []int{1, 2, 3, -1, -2, -3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("offset[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNegativeOffsetsAccepted(t *testing.T) {
	p := DefaultParams()
	p.Offsets = WithNegativeOffsets(p.Offsets)
	bo := New(mem.Page4M, p)
	// Exercise the full learning path with negative candidates present.
	driveStream(bo, 1<<20, 1, 60000, 4)
	if bo.Offset() == 0 {
		t.Error("learned offset 0")
	}
}

func TestNegativeOffsetLearnedOnBackwardStream(t *testing.T) {
	// A descending stream: only negative offsets are useful.
	p := DefaultParams()
	p.Offsets = WithNegativeOffsets(p.Offsets)
	bo := New(mem.Page4M, p)
	var pending []mem.LineAddr
	x := mem.LineAddr(1 << 24)
	for i := 0; i < 120000; i++ {
		targets := bo.OnAccess(miss(x))
		pending = append(pending, targets...)
		if len(pending) > 4 {
			bo.OnFill(pending[0], true)
			pending = pending[1:]
		}
		if !bo.Enabled() {
			bo.OnFill(x, false)
		}
		x--
	}
	if bo.Offset() >= 0 {
		t.Errorf("learned offset %d on a descending stream; want negative", bo.Offset())
	}
}

func TestNegativePrefetchTargetsBackward(t *testing.T) {
	p := DefaultParams()
	p.Offsets = []int{-4}
	bo := New(mem.Page4M, p)
	bo.d = -4 // as if learned
	got := bo.OnAccess(miss(100))
	if len(got) != 1 || got[0] != 96 {
		t.Errorf("targets = %v, want [96]", got)
	}
	// Near line 0, a backward prefetch must not underflow.
	if got := bo.OnAccess(miss(2)); got != nil {
		t.Errorf("underflowing backward prefetch issued: %v", got)
	}
}

func TestDegreeTwoIssuesTwoOffsets(t *testing.T) {
	p := DegreeTwoParams()
	bo := New(mem.Page4M, p)
	bo.d = 8
	bo.d2 = 16
	got := bo.OnAccess(miss(1000))
	if len(got) != 2 || got[0] != 1008 || got[1] != 1016 {
		t.Errorf("degree-2 targets = %v, want [1008 1016]", got)
	}
}

func TestDegreeTwoLearnsSecondOffset(t *testing.T) {
	// Two interleaved stripes with periods 2 and 3 (section 3.3's example):
	// degree-2 should pick two distinct useful offsets after learning.
	p := DegreeTwoParams()
	bo := New(mem.Page4M, p)
	var pending []mem.LineAddr
	x2 := mem.LineAddr(0)       // stream with stride 2
	x3 := mem.LineAddr(1 << 22) // stream with stride 3
	for i := 0; i < 120000; i++ {
		var x mem.LineAddr
		if i%2 == 0 {
			x = x2
			x2 += 2
		} else {
			x = x3
			x3 += 3
		}
		targets := bo.OnAccess(miss(x))
		pending = append(pending, targets...)
		for len(pending) > 6 {
			bo.OnFill(pending[0], true)
			pending = pending[1:]
		}
		if !bo.Enabled() {
			bo.OnFill(x, false)
		}
	}
	if bo.d2 == 0 {
		t.Error("degree-2 never installed a second offset")
	}
	if bo.d2 == bo.d {
		t.Error("second offset equals the first")
	}
}

func TestDegreeOneNeverUsesSecondOffset(t *testing.T) {
	bo := New(mem.Page4M, DefaultParams())
	driveStream(bo, 0, 1, 60000, 4)
	if bo.d2 != 0 {
		t.Errorf("degree-1 prefetcher installed d2=%d", bo.d2)
	}
}

func TestDegreeValidation(t *testing.T) {
	p := DefaultParams()
	p.Degree = 3
	defer func() {
		if recover() == nil {
			t.Error("Degree=3 accepted")
		}
	}()
	New(mem.Page4K, p)
}

func TestAdaptiveThrottleBounds(t *testing.T) {
	p := AdaptiveThrottleParams()
	bo := New(mem.Page4M, p)
	// Feed phases with very high best scores: the dynamic threshold must
	// rise but stay within MaxBadScore.
	for i := 0; i < 50; i++ {
		bo.updateAdaptiveThrottle(31)
	}
	if bo.dynBadScore > p.MaxBadScore {
		t.Errorf("dynBadScore %d exceeds max %d", bo.dynBadScore, p.MaxBadScore)
	}
	if bo.dynBadScore < 1 {
		t.Errorf("dynBadScore %d did not rise under consistently high scores", bo.dynBadScore)
	}
	// Consistently low scores must drive it back down to the minimum.
	for i := 0; i < 50; i++ {
		bo.updateAdaptiveThrottle(0)
	}
	if bo.dynBadScore != p.MinBadScore {
		t.Errorf("dynBadScore %d, want min %d after low scores", bo.dynBadScore, p.MinBadScore)
	}
}

func TestAdaptiveThrottleKeepsMarginalPrefetchOn(t *testing.T) {
	// A marginal pattern (best scores hovering around 2): with the fixed
	// BADSCORE=1 this is borderline; adaptive throttling with MinBadScore=0
	// should keep prefetch on more often than a fixed BADSCORE=5.
	run := func(p Params) uint64 {
		bo := New(mem.Page4M, p)
		seed := uint64(7)
		x := mem.LineAddr(0)
		for i := 0; i < 200000; i++ {
			seed = mem.Mix64(seed)
			// 15% regular stream, 85% noise: scores stay low but non-zero.
			if seed%100 < 15 {
				x++
			} else {
				x = mem.LineAddr(seed % (1 << 38))
			}
			for _, tgt := range bo.OnAccess(prefetch.AccessInfo{Line: x}) {
				bo.OnFill(tgt, true)
			}
			if !bo.Enabled() {
				bo.OnFill(x, false)
			}
		}
		return bo.Stats().PhasesOff
	}
	fixed := DefaultParams()
	fixed.BadScore = 5
	adaptive := AdaptiveThrottleParams()
	if offAdaptive, offFixed := run(adaptive), run(fixed); offAdaptive > offFixed {
		t.Errorf("adaptive throttling turned prefetch off more often (%d) than fixed BADSCORE=5 (%d)",
			offAdaptive, offFixed)
	}
}
