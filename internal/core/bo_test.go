package core

import (
	"testing"
	"testing/quick"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func miss(line mem.LineAddr) prefetch.AccessInfo {
	return prefetch.AccessInfo{Line: line, Hit: false}
}

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := DefaultParams()
	if p.RREntries != 256 || p.RRTagBits != 12 || p.ScoreMax != 31 ||
		p.RoundMax != 100 || p.BadScore != 1 || len(p.Offsets) != 52 {
		t.Errorf("DefaultParams = %+v does not match Table 2", p)
	}
}

func TestStartsAsNextLine(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	if p.Offset() != 1 || !p.Enabled() {
		t.Errorf("initial state D=%d on=%v, want 1/true", p.Offset(), p.Enabled())
	}
	got := p.OnAccess(miss(10))
	if len(got) != 1 || got[0] != 11 {
		t.Errorf("initial prefetch = %v, want [11]", got)
	}
}

func TestIneligibleAccessDoesNothing(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	if got := p.OnAccess(prefetch.AccessInfo{Line: 10, Hit: true}); got != nil {
		t.Errorf("plain hit triggered prefetch %v", got)
	}
	if p.Stats().Issued != 0 {
		t.Error("plain hit counted as issued")
	}
}

func TestPageBoundaryClipping(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	if got := p.OnAccess(miss(63)); got != nil {
		t.Errorf("prefetch across 4KB page boundary: %v", got)
	}
}

// driveStream feeds the prefetcher a miss stream with the given line stride
// and simulates prefetch completion after lagFills accesses: each issued
// prefetch is reported as a fill lag accesses later.
func driveStream(p *Prefetcher, start, stride mem.LineAddr, n, lag int) {
	var pendingFills []mem.LineAddr
	x := start
	for i := 0; i < n; i++ {
		targets := p.OnAccess(miss(x))
		pendingFills = append(pendingFills, targets...)
		if len(pendingFills) > lag {
			fill := pendingFills[0]
			pendingFills = pendingFills[1:]
			p.OnFill(fill, true)
		}
		x += stride
	}
}

func TestLearnsOffsetOnStridedStream(t *testing.T) {
	// A stream touching every 3rd line: good offsets are multiples of 3.
	params := DefaultParams()
	p := New(mem.Page4M, params)
	driveStream(p, 0, 3, 60000, 4)
	if p.Offset()%3 != 0 {
		t.Errorf("learned offset %d is not a multiple of 3", p.Offset())
	}
	if !p.Enabled() {
		t.Error("prefetch turned off on a perfectly regular stream")
	}
	if p.Stats().Phases == 0 {
		t.Error("no learning phase completed")
	}
}

func TestTimelinessPushesOffsetUp(t *testing.T) {
	// Sequential stream; prefetch completion lags by 16 accesses. Offsets
	// <= lag are not yet in the RR table when tested, so the learner must
	// pick an offset reflecting the lag rather than 1.
	p := New(mem.Page4M, DefaultParams())
	driveStream(p, 0, 1, 120000, 16)
	if p.Offset() < 16 {
		t.Errorf("learned offset %d; want >= lag of 16 for timeliness", p.Offset())
	}
}

func TestShortLagAllowsSmallOffsets(t *testing.T) {
	// With an immediate completion (lag 0), small offsets score well; BO
	// should settle on a small multiple of the stream period (1).
	p := New(mem.Page4M, DefaultParams())
	driveStream(p, 0, 1, 120000, 0)
	if p.Offset() > 32 {
		t.Errorf("learned offset %d on a zero-lag stream; expected small", p.Offset())
	}
}

func TestThrottlingOnRandomPattern(t *testing.T) {
	// Random accesses spread over a huge region: no offset correlates, so
	// the best score stays <= BADSCORE and prefetch must turn off.
	p := New(mem.Page4K, DefaultParams())
	seed := uint64(12345)
	for i := 0; i < 60000; i++ {
		seed = mem.Mix64(seed)
		x := mem.LineAddr(seed % (1 << 40))
		targets := p.OnAccess(miss(x))
		for _, y := range targets {
			p.OnFill(y, true)
		}
		// While off, demand fills feed the RR table (D=0 mode).
		if !p.Enabled() {
			p.OnFill(x, false)
		}
	}
	if p.Enabled() {
		t.Error("prefetch still on after a long random phase")
	}
	if p.Stats().PhasesOff == 0 {
		t.Error("no phase ended with prefetch off")
	}
}

func TestRecoversAfterRandomPhase(t *testing.T) {
	p := New(mem.Page4M, DefaultParams())
	// Random phase first (turns prefetch off) ...
	seed := uint64(99)
	for i := 0; i < 40000; i++ {
		seed = mem.Mix64(seed)
		x := mem.LineAddr(seed % (1 << 40))
		for _, y := range p.OnAccess(miss(x)) {
			p.OnFill(y, true)
		}
		if !p.Enabled() {
			p.OnFill(x, false)
		}
	}
	if p.Enabled() {
		t.Fatal("prefetch should be off after random phase")
	}
	// ... then a sequential stream: learning continues via D=0 insertions
	// and must turn prefetch back on.
	var fills []mem.LineAddr
	x := mem.LineAddr(1 << 30)
	for i := 0; i < 120000; i++ {
		targets := p.OnAccess(miss(x))
		fills = append(fills, targets...)
		if len(fills) > 4 {
			p.OnFill(fills[0], true)
			fills = fills[1:]
		}
		if !p.Enabled() {
			p.OnFill(x, false)
		}
		x++
	}
	if !p.Enabled() {
		t.Error("prefetch did not turn back on for a sequential stream")
	}
}

func TestPhaseEndsEarlyAtScoreMax(t *testing.T) {
	// A fast, perfectly predictable stream should end phases via ScoreMax
	// well before RoundMax rounds.
	p := New(mem.Page4M, DefaultParams())
	driveStream(p, 0, 1, 120000, 0)
	if p.Stats().ScoreMaxEnds == 0 {
		t.Error("no phase ended at ScoreMax on a perfect stream")
	}
}

func TestDegreeOne(t *testing.T) {
	// BO must never issue more than one prefetch per access.
	p := New(mem.Page4M, DefaultParams())
	for i := 0; i < 10000; i++ {
		if got := p.OnAccess(miss(mem.LineAddr(i))); len(got) > 1 {
			t.Fatalf("issued %d prefetches in one access", len(got))
		}
	}
}

func TestOnFillCrossPageBaseIgnored(t *testing.T) {
	// If Y and Y-D are in different pages, the base address is unknown and
	// the RR table must not be written (footnote 2).
	params := DefaultParams()
	p := New(mem.Page4K, params)
	before := p.Stats().RRInsertions
	p.OnFill(64, true) // line 64 is the first line of page 1; 64-D=63 is page 0
	if p.Stats().RRInsertions != before {
		t.Error("cross-page RR insertion happened")
	}
	p.OnFill(65, true) // 65-1=64 same page: should insert
	if p.Stats().RRInsertions != before+1 {
		t.Error("same-page RR insertion missing")
	}
}

func TestDemandFillIgnoredWhileOn(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	before := p.Stats().RRInsertions
	p.OnFill(100, false)
	if p.Stats().RRInsertions != before {
		t.Error("demand fill inserted into RR table while prefetch is on")
	}
}

func TestRRTableHitAfterInsert(t *testing.T) {
	rr := NewRRTable(256, 12)
	rr.Insert(12345)
	if !rr.Hit(12345) {
		t.Error("inserted line not found")
	}
	if rr.Hit(54321) {
		t.Error("false hit on never-inserted line (tags differ)")
	}
}

func TestRRTableDirectMappedOverwrite(t *testing.T) {
	rr := NewRRTable(256, 12)
	a := mem.LineAddr(0x100)
	// Find another line with the same index but a different tag.
	var b mem.LineAddr
	for l := mem.LineAddr(0x10000); ; l++ {
		if rr.index(l) == rr.index(a) && rr.tag(l) != rr.tag(a) {
			b = l
			break
		}
	}
	rr.Insert(a)
	rr.Insert(b)
	if rr.Hit(a) {
		t.Error("line survived a conflicting insert in a direct-mapped table")
	}
	if !rr.Hit(b) {
		t.Error("most recent insert missing")
	}
}

func TestRRTableAliasing(t *testing.T) {
	// Partial tags mean some distinct lines must alias. Verify the paper's
	// geometry: index uses 8 bits, tag 12 bits, so lines differing only
	// above bit 19 alias.
	rr := NewRRTable(256, 12)
	a := mem.LineAddr(0x12345)
	b := a + (1 << 20)
	rr.Insert(a)
	if !rr.Hit(b) {
		t.Error("lines differing only above bit 20 should alias with 12-bit tags")
	}
}

func TestRRTableProperties(t *testing.T) {
	// No false negatives: immediately after Insert(x), Hit(x) is true.
	rr := NewRRTable(64, 10)
	f := func(x uint64) bool {
		l := mem.LineAddr(x % (1 << 38))
		rr.Insert(l)
		return rr.Hit(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRRTableReset(t *testing.T) {
	rr := NewRRTable(64, 10)
	rr.Insert(5)
	rr.Reset()
	if rr.Hit(5) {
		t.Error("hit after Reset")
	}
	if rr.Len() != 64 {
		t.Errorf("Len = %d, want 64", rr.Len())
	}
}

func TestRRTableGeometryValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewRRTable(0, 12) },
		func() { NewRRTable(100, 12) },
		func() { NewRRTable(256, 0) },
		func() { NewRRTable(256, 20) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad RR geometry did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestNewValidatesOffsets(t *testing.T) {
	// Zero offsets are rejected; negative ones are allowed (section 4.2).
	defer func() {
		if recover() == nil {
			t.Error("zero offset accepted")
		}
	}()
	New(mem.Page4K, Params{RREntries: 64, RRTagBits: 10, ScoreMax: 31,
		RoundMax: 100, BadScore: 1, Offsets: []int{1, 0}})
}
