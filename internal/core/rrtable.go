package core

import "bopsim/internal/mem"

// RRTable is the Best-Offset prefetcher's recent-requests table (paper
// section 4.1): a direct-mapped table of partial tags recording the *base
// addresses* of recently completed prefetch requests. If the prefetched
// line was X+D, the base address X is inserted when the prefetch completes
// (i.e. when the line is filled into the L2). Finding X-d in the table
// therefore means: "a prefetch triggered by X-d with offset d would have
// completed by now", which is exactly the timeliness condition the sandbox
// method lacks.
//
// The default geometry follows section 4.4: 256 entries indexed by XORing
// the 8 least significant line-address bits with the next 8 bits, holding
// 12-bit tags taken from the bits above the 8 index bits.
type RRTable struct {
	tags    []uint16
	valid   []bool
	idxBits uint
	tagMask uint64
}

// NewRRTable returns a table with entries slots (a power of two) and
// tagBits-bit tags.
func NewRRTable(entries int, tagBits uint) *RRTable {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: RR table entries must be a positive power of two")
	}
	if tagBits == 0 || tagBits > 16 {
		panic("core: RR tag bits must be in 1..16")
	}
	idxBits := uint(0)
	for s := entries; s > 1; s >>= 1 {
		idxBits++
	}
	return &RRTable{
		tags:    make([]uint16, entries),
		valid:   make([]bool, entries),
		idxBits: idxBits,
		tagMask: 1<<tagBits - 1,
	}
}

// index computes the table slot: the low idxBits of the line address XORed
// with the next idxBits (section 4.4's hash, generalized to any size).
func (t *RRTable) index(line mem.LineAddr) int {
	l := uint64(line)
	return int((l ^ (l >> t.idxBits)) & (1<<t.idxBits - 1))
}

// tag extracts the partial tag: skip the idxBits least significant line
// address bits and take the next tagBits bits.
func (t *RRTable) tag(line mem.LineAddr) uint16 {
	return uint16((uint64(line) >> t.idxBits) & t.tagMask)
}

// Insert records line as a recently completed prefetch base address,
// overwriting whatever was in its slot (direct mapped).
func (t *RRTable) Insert(line mem.LineAddr) {
	i := t.index(line)
	t.tags[i] = t.tag(line)
	t.valid[i] = true
}

// Hit reports whether line's partial tag is present in its slot.
func (t *RRTable) Hit(line mem.LineAddr) bool {
	i := t.index(line)
	return t.valid[i] && t.tags[i] == t.tag(line)
}

// Reset clears the table.
func (t *RRTable) Reset() {
	for i := range t.valid {
		t.valid[i] = false
	}
}

// Len returns the number of slots.
func (t *RRTable) Len() int { return len(t.tags) }
