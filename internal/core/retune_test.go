package core

import (
	"bytes"
	"testing"

	"bopsim/internal/mem"
)

func TestRetuneDegree(t *testing.T) {
	p2 := DefaultParams()
	p2.Degree = 2
	p := New(mem.Page4K, p2)
	// Learn a second-best offset, then drop to degree 1: the second-best
	// slot must clear so it can never issue again.
	driveStream(p, 1<<10, 2, 4000, 8)
	if err := p.Retune("degree", "1"); err != nil {
		t.Fatal(err)
	}
	if p.params.Degree != 1 || p.d2 != 0 {
		t.Errorf("after degree=1 retune: Degree=%d d2=%d, want 1/0", p.params.Degree, p.d2)
	}
	if err := p.Retune("degree", "2"); err != nil {
		t.Fatal(err)
	}
	if p.params.Degree != 2 {
		t.Errorf("after degree=2 retune: Degree=%d", p.params.Degree)
	}
	for _, bad := range []string{"0", "3", "x", ""} {
		if err := p.Retune("degree", bad); err == nil {
			t.Errorf("Retune(degree, %q) accepted", bad)
		}
	}
}

func TestRetuneBadScore(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	if err := p.Retune("badscore", "4"); err != nil {
		t.Fatal(err)
	}
	if p.params.BadScore != 4 || p.dynBadScore != 4 {
		t.Errorf("after badscore retune: BadScore=%d dynBadScore=%d, want 4/4", p.params.BadScore, p.dynBadScore)
	}
	if err := p.Retune("badscore", "x"); err == nil {
		t.Error("Retune(badscore, x) accepted")
	}
}

func TestRetuneOffsetsRestartsLearning(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	driveStream(p, 1<<10, 4, 1000, 8)
	before := p.Offset()
	if err := p.Retune("offsets", "1+2+4+8"); err != nil {
		t.Fatal(err)
	}
	if len(p.params.Offsets) != 4 || len(p.scores) != 4 {
		t.Fatalf("after offsets retune: %d offsets, %d scores", len(p.params.Offsets), len(p.scores))
	}
	if p.offIdx != 0 || p.round != 0 || p.bestIdx != 0 || p.bestScore != 0 || p.d2 != 0 {
		t.Error("offsets retune did not restart the learning phase")
	}
	// The current prefetch offset keeps issuing until the fresh phase ends:
	// D is a value, not an index into the replaced list.
	if p.Offset() != before {
		t.Errorf("offsets retune changed the live offset %d -> %d", before, p.Offset())
	}
	for _, bad := range []string{"", "0", "1+0", "1+x"} {
		if err := p.Retune("offsets", bad); err == nil {
			t.Errorf("Retune(offsets, %q) accepted", bad)
		}
	}
	if err := p.Retune("nope", "1"); err == nil {
		t.Error("unknown retune key accepted")
	}
}

// TestRetunedStateRoundTrip pins the v3 codec property the adaptive wrapper
// relies on: a retuned instance's state restores into a default-built
// instance — the snapshot carries offsets/degree/badscore, so the restored
// prefetcher behaves and re-saves identically.
func TestRetunedStateRoundTrip(t *testing.T) {
	orig := New(mem.Page4K, DefaultParams())
	for _, kv := range [][2]string{{"offsets", "1+2+4+8"}, {"degree", "2"}, {"badscore", "3"}} {
		if err := orig.Retune(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	driveStream(orig, 1<<10, 2, 3000, 8)
	state, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	restored := New(mem.Page4K, DefaultParams())
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	driveStream(orig, 1<<12, 2, 2000, 8)
	driveStream(restored, 1<<12, 2, 2000, 8)
	b1, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("retuned state did not round-trip into a default-built prefetcher")
	}
}
