package core

// This file implements the extensions the paper discusses but does not
// evaluate, clearly separated from the evaluated design in bo.go:
//
//   - negative offsets (section 4.2: "Nothing prevents a BO prefetcher to
//     use negative offset values"),
//   - degree-two prefetching with the best and second-best offsets
//     (section 4.3),
//   - dynamic adjustment of the throttling threshold (section 7, future
//     work).
//
// All three are off by default; DefaultParams matches the evaluated
// configuration exactly.

// WithNegativeOffsets returns offsets extended with the negation of every
// entry (sorted: all positives in original order, then negatives). The BO
// learning machinery handles negative candidates transparently.
func WithNegativeOffsets(offsets []int) []int {
	out := make([]int, 0, 2*len(offsets))
	out = append(out, offsets...)
	for _, d := range offsets {
		out = append(out, -d)
	}
	return out
}

// DegreeTwoParams returns the evaluated defaults with degree-two
// prefetching enabled: each eligible access prefetches with the best and
// the second-best offset of the last learning phase. The paper notes this
// may buy coverage on irregular patterns at the cost of extra traffic; the
// hierarchy's associative searches and mandatory tag check absorb the
// redundant requests (footnote 5).
func DegreeTwoParams() Params {
	p := DefaultParams()
	p.Degree = 2
	return p
}

// AdaptiveThrottleParams returns the evaluated defaults with the dynamic
// throttling-threshold heuristic enabled (the paper's future-work item).
// BADSCORE then floats between MinBadScore and MaxBadScore, steered by an
// exponentially weighted average of phase best scores: applications whose
// phases consistently score high get a stricter threshold (turning prefetch
// off faster when behaviour degrades), while applications hovering near the
// threshold get a lenient one (avoiding the 429.mcf pathology of Figure 9,
// where aggressive throttling hurts).
func AdaptiveThrottleParams() Params {
	p := DefaultParams()
	p.AdaptiveThrottle = true
	p.MinBadScore = 0
	p.MaxBadScore = 4
	return p
}

// secondBestIdx returns the index of the best-scoring offset distinct from
// bestIdx (or -1 when there is none with a positive score).
func (p *Prefetcher) secondBestIdx() int {
	best := -1
	for i, s := range p.scores {
		if i == p.bestIdx || s == 0 {
			continue
		}
		if best < 0 || s > p.scores[best] {
			best = i
		}
	}
	return best
}

// updateAdaptiveThrottle adjusts the effective BADSCORE after a phase with
// the given best score.
func (p *Prefetcher) updateAdaptiveThrottle(bestScore int) {
	// EWMA with factor 1/4, in fixed point (x16).
	p.scoreEWMA += (bestScore*16 - p.scoreEWMA) / 4
	dyn := p.scoreEWMA / (16 * 8) // threshold at 1/8 of the typical best
	if dyn < p.params.MinBadScore {
		dyn = p.params.MinBadScore
	}
	if dyn > p.params.MaxBadScore {
		dyn = p.params.MaxBadScore
	}
	p.dynBadScore = dyn
}
