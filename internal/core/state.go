package core

import (
	"fmt"

	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// boState mirrors the BO prefetcher's learning state with exported fields
// for the prefetch.StateCodec encoding.
type boState struct {
	RRTags  []uint16
	RRValid []bool

	Scores    []int
	OffIdx    int
	Round     int
	BestIdx   int
	BestScore int

	D  int
	D2 int
	On bool

	ScoreEWMA   int
	DynBadScore int

	Stats Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	return prefetch.MarshalState(boState{
		RRTags:      append([]uint16(nil), p.rr.tags...),
		RRValid:     append([]bool(nil), p.rr.valid...),
		Scores:      append([]int(nil), p.scores...),
		OffIdx:      p.offIdx,
		Round:       p.round,
		BestIdx:     p.bestIdx,
		BestScore:   p.bestScore,
		D:           p.d,
		D2:          p.d2,
		On:          p.on,
		ScoreEWMA:   p.scoreEWMA,
		DynBadScore: p.dynBadScore,
		Stats:       p.stats,
	})
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st boState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if len(st.RRTags) != len(p.rr.tags) || len(st.RRValid) != len(p.rr.valid) {
		return fmt.Errorf("core: RR state covers %d/%d entries, table has %d", len(st.RRTags), len(st.RRValid), len(p.rr.tags))
	}
	if len(st.Scores) != len(p.scores) {
		return fmt.Errorf("core: state has %d scores, prefetcher tests %d offsets", len(st.Scores), len(p.scores))
	}
	if st.OffIdx < 0 || st.OffIdx >= len(p.params.Offsets) {
		return fmt.Errorf("core: offset cursor %d out of range 0..%d", st.OffIdx, len(p.params.Offsets)-1)
	}
	if st.BestIdx < 0 || st.BestIdx >= len(p.params.Offsets) {
		return fmt.Errorf("core: best-offset index %d out of range 0..%d", st.BestIdx, len(p.params.Offsets)-1)
	}
	copy(p.rr.tags, st.RRTags)
	copy(p.rr.valid, st.RRValid)
	copy(p.scores, st.Scores)
	p.offIdx = st.OffIdx
	p.round = st.Round
	p.bestIdx = st.BestIdx
	p.bestScore = st.BestScore
	p.d = st.D
	p.d2 = st.D2
	p.on = st.On
	p.scoreEWMA = st.ScoreEWMA
	p.dynBadScore = st.DynBadScore
	p.stats = st.Stats
	return nil
}
