package core

import (
	"fmt"

	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// boState mirrors the BO prefetcher's learning state with exported fields
// for the prefetch.StateCodec encoding. Offsets, Degree and BadScore are
// carried because prefetch.Retunable can move them away from the
// construction spec; a restore re-adopts them so a retuned prefetcher
// round-trips exactly.
type boState struct {
	Offsets  []int
	Degree   int
	BadScore int

	RRTags  []uint16
	RRValid []bool

	Scores    []int
	OffIdx    int
	Round     int
	BestIdx   int
	BestScore int

	D  int
	D2 int
	On bool

	ScoreEWMA   int
	DynBadScore int

	Stats Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	return prefetch.MarshalState(boState{
		Offsets:     append([]int(nil), p.params.Offsets...),
		Degree:      p.params.Degree,
		BadScore:    p.params.BadScore,
		RRTags:      append([]uint16(nil), p.rr.tags...),
		RRValid:     append([]bool(nil), p.rr.valid...),
		Scores:      append([]int(nil), p.scores...),
		OffIdx:      p.offIdx,
		Round:       p.round,
		BestIdx:     p.bestIdx,
		BestScore:   p.bestScore,
		D:           p.d,
		D2:          p.d2,
		On:          p.on,
		ScoreEWMA:   p.scoreEWMA,
		DynBadScore: p.dynBadScore,
		Stats:       p.stats,
	})
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st boState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if len(st.Offsets) == 0 {
		return fmt.Errorf("core: state has an empty offset list")
	}
	for _, d := range st.Offsets {
		if d == 0 {
			return fmt.Errorf("core: state offset 0 is meaningless")
		}
	}
	if st.Degree < 1 || st.Degree > 2 {
		return fmt.Errorf("core: state degree=%d must be 1 or 2", st.Degree)
	}
	if len(st.RRTags) != len(p.rr.tags) || len(st.RRValid) != len(p.rr.valid) {
		return fmt.Errorf("core: RR state covers %d/%d entries, table has %d", len(st.RRTags), len(st.RRValid), len(p.rr.tags))
	}
	if len(st.Scores) != len(st.Offsets) {
		return fmt.Errorf("core: state has %d scores for %d offsets", len(st.Scores), len(st.Offsets))
	}
	if st.OffIdx < 0 || st.OffIdx >= len(st.Offsets) {
		return fmt.Errorf("core: offset cursor %d out of range 0..%d", st.OffIdx, len(st.Offsets)-1)
	}
	if st.BestIdx < 0 || st.BestIdx >= len(st.Offsets) {
		return fmt.Errorf("core: best-offset index %d out of range 0..%d", st.BestIdx, len(st.Offsets)-1)
	}
	p.params.Offsets = append([]int(nil), st.Offsets...)
	p.params.Degree = st.Degree
	p.params.BadScore = st.BadScore
	if cap(p.scores) >= len(st.Offsets) {
		p.scores = p.scores[:len(st.Offsets)]
	} else {
		p.scores = make([]int, len(st.Offsets))
	}
	copy(p.rr.tags, st.RRTags)
	copy(p.rr.valid, st.RRValid)
	copy(p.scores, st.Scores)
	p.offIdx = st.OffIdx
	p.round = st.Round
	p.bestIdx = st.BestIdx
	p.bestScore = st.BestScore
	p.d = st.D
	p.d2 = st.D2
	p.on = st.On
	p.scoreEWMA = st.ScoreEWMA
	p.dynBadScore = st.DynBadScore
	p.stats = st.Stats
	return nil
}
