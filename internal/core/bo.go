// Package core implements the paper's primary contribution: the Best-Offset
// (BO) hardware prefetcher (Michaud, HPCA 2016, section 4).
//
// BO is an offset prefetcher: when the core requests line X at the L2 (miss
// or prefetched hit), it prefetches line X+D in the same page. What makes
// it "best-offset" is the learning mechanism that picks D: it scores a list
// of candidate offsets by checking, for each eligible access X, whether a
// prefetch issued with the candidate offset would have been *timely* — that
// is, whether X-d is in the recent-requests (RR) table, which records base
// addresses of prefetches that have already completed. Learning proceeds in
// phases of up to ROUNDMAX rounds; the offset with the best score becomes
// the new D, and a best score at or below BADSCORE turns prefetching off
// (learning continues with RR insertions of demand fills so prefetch can
// turn back on when behaviour changes).
package core

import (
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Params are the tunables of Table 2.
type Params struct {
	RREntries int   // recent-requests table entries (default 256)
	RRTagBits uint  // partial tag width (default 12)
	ScoreMax  int   // learning phase ends when a score reaches this (31)
	RoundMax  int   // maximum rounds per learning phase (100)
	BadScore  int   // best score <= BadScore turns prefetch off (1)
	Offsets   []int // candidate offset list (52 offsets, section 4.2)

	// InsertRRAtIssue is an ablation: write the base address into the RR
	// table when the prefetch is *issued* instead of when it completes.
	// This discards the timeliness information — the RR table degenerates
	// into a sandbox-like recency filter (see DESIGN.md, ablations).
	InsertRRAtIssue bool

	// TriggerOnAllAccesses is an ablation: run the prefetcher on every L2
	// access instead of only misses and prefetched hits (i.e., ignore the
	// prefetch-bit gating of section 5.6).
	TriggerOnAllAccesses bool

	// Degree selects how many offsets prefetch per access: 1 (the paper's
	// evaluated design, the default) or 2 (best + second-best offsets, the
	// extension discussed in section 4.3). Zero means 1.
	Degree int

	// AdaptiveThrottle enables the dynamic BADSCORE heuristic (the paper's
	// future-work item, see extensions.go); MinBadScore/MaxBadScore bound
	// the floating threshold.
	AdaptiveThrottle bool
	MinBadScore      int
	MaxBadScore      int
}

// DefaultParams returns the configuration of Table 2.
func DefaultParams() Params {
	return Params{
		RREntries: 256,
		RRTagBits: 12,
		ScoreMax:  31,
		RoundMax:  100,
		BadScore:  1,
		Offsets:   prefetch.DefaultOffsetList(),
	}
}

// Stats exposes the prefetcher's learning behaviour for the experiments.
type Stats struct {
	Phases       uint64 // completed learning phases
	PhasesOff    uint64 // phases that ended with prefetch turned off
	Issued       uint64 // prefetches returned to the cache hierarchy
	RRInsertions uint64
	ScoreMaxEnds uint64 // phases ended by a score reaching ScoreMax
}

// Prefetcher is the Best-Offset L2 prefetcher. It implements
// prefetch.L2Prefetcher.
type Prefetcher struct {
	params Params
	page   mem.PageSize
	rr     *RRTable

	scores    []int
	offIdx    int // next offset (index into params.Offsets) to test
	round     int
	bestIdx   int // incrementally maintained best offset index
	bestScore int

	d  int  // current prefetch offset D
	d2 int  // second-best offset for degree-2 mode (0 = none)
	on bool // prefetch on/off (throttling, section 4.3)

	// Adaptive-throttling state (extensions.go).
	scoreEWMA   int // EWMA of phase best scores, fixed point x16
	dynBadScore int

	buf [2]mem.LineAddr // OnAccess scratch, avoids a per-access slice

	stats Stats
}

var _ prefetch.L2Prefetcher = (*Prefetcher)(nil)

// New returns a BO prefetcher for the given page size.
func New(page mem.PageSize, p Params) *Prefetcher {
	if len(p.Offsets) == 0 {
		panic("core: empty offset list")
	}
	for _, d := range p.Offsets {
		if d == 0 {
			panic("core: offset 0 is meaningless (negative offsets are allowed, section 4.2)")
		}
	}
	if p.Degree == 0 {
		p.Degree = 1
	}
	if p.Degree < 1 || p.Degree > 2 {
		panic("core: Degree must be 1 or 2")
	}
	return &Prefetcher{
		params:      p,
		page:        page,
		rr:          NewRRTable(p.RREntries, p.RRTagBits),
		scores:      make([]int, len(p.Offsets)),
		d:           1, // start as a next-line prefetcher until the first phase ends
		on:          true,
		dynBadScore: p.BadScore,
	}
}

// Name implements prefetch.L2Prefetcher.
func (p *Prefetcher) Name() string { return "BO" }

// Offset returns the current prefetch offset D.
func (p *Prefetcher) Offset() int { return p.d }

// Enabled reports whether prefetching is currently on.
func (p *Prefetcher) Enabled() bool { return p.on }

// Stats returns a copy of the learning statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// OnAccess implements prefetch.L2Prefetcher: learning step plus at most one
// prefetch (BO is a degree-one prefetcher, section 4.3).
//
//bovet:hotpath
func (p *Prefetcher) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	if !a.Eligible() && !p.params.TriggerOnAllAccesses {
		return nil
	}
	p.learn(a.Line)
	if !p.on {
		return nil
	}
	targets := p.buf[:0]
	offsets := [2]int{p.d, 0}
	n := 1
	if p.params.Degree == 2 && p.d2 != 0 && p.d2 != p.d {
		offsets[1] = p.d2
		n = 2
	}
	for i := 0; i < n; i++ {
		t := int64(a.Line) + int64(offsets[i])
		if t < 0 {
			continue
		}
		target := mem.LineAddr(t)
		if !p.page.SamePage(a.Line, target) {
			continue
		}
		targets = append(targets, target)
	}
	if len(targets) == 0 {
		return nil
	}
	if p.params.InsertRRAtIssue {
		p.rr.Insert(a.Line)
		p.stats.RRInsertions++
	}
	p.stats.Issued += uint64(len(targets))
	return targets
}

// learn performs one learning step: test the next offset in the round-robin
// order against the RR table and handle phase boundaries.
func (p *Prefetcher) learn(x mem.LineAddr) {
	prev := int64(x) - int64(p.params.Offsets[p.offIdx])
	if prev >= 0 && p.rr.Hit(mem.LineAddr(prev)) {
		p.scores[p.offIdx]++
		if p.scores[p.offIdx] > p.bestScore {
			p.bestScore = p.scores[p.offIdx]
			p.bestIdx = p.offIdx
		}
	}
	p.offIdx++
	if p.offIdx < len(p.params.Offsets) {
		return
	}
	// End of a round.
	p.offIdx = 0
	p.round++
	if p.bestScore >= p.params.ScoreMax {
		p.stats.ScoreMaxEnds++
		p.endPhase()
	} else if p.round >= p.params.RoundMax {
		p.endPhase()
	}
}

// endPhase installs the best offset as the new D, applies throttling, and
// starts a fresh phase.
func (p *Prefetcher) endPhase() {
	p.stats.Phases++
	p.d = p.params.Offsets[p.bestIdx]
	p.d2 = 0
	if p.params.Degree == 2 {
		if i := p.secondBestIdx(); i >= 0 {
			p.d2 = p.params.Offsets[i]
		}
	}
	bad := p.params.BadScore
	if p.params.AdaptiveThrottle {
		p.updateAdaptiveThrottle(p.bestScore)
		bad = p.dynBadScore
	}
	p.on = p.bestScore > bad
	if !p.on {
		p.stats.PhasesOff++
	}
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.round = 0
	p.bestScore = 0
	p.bestIdx = 0
}

// OnFill implements prefetch.L2Prefetcher. When prefetch is on, every
// *prefetched* line Y filled into the L2 writes its base address Y-D into
// the RR table (if Y and Y-D share a page; otherwise the base address is
// unknown, footnote 2). When prefetch is off, every fetched line Y writes Y
// itself (D=0 insertion), so learning keeps running.
//
//bovet:hotpath
func (p *Prefetcher) OnFill(y mem.LineAddr, wasPrefetch bool) {
	if p.params.InsertRRAtIssue && p.on {
		return // ablation: insertions already happened at issue time
	}
	if p.on {
		if !wasPrefetch {
			return
		}
		base := int64(y) - int64(p.d)
		if base < 0 || !p.page.SamePage(y, mem.LineAddr(base)) {
			return
		}
		p.rr.Insert(mem.LineAddr(base))
		p.stats.RRInsertions++
		return
	}
	p.rr.Insert(y)
	p.stats.RRInsertions++
}
