package core

import (
	"fmt"
	"strconv"

	"bopsim/internal/prefetch"
)

var _ prefetch.Retunable = (*Prefetcher)(nil)

// RetunableKeys implements prefetch.Retunable.
func (p *Prefetcher) RetunableKeys() []string { return []string{"badscore", "degree", "offsets"} }

// Retune implements prefetch.Retunable.
//
// "degree" (1 or 2) takes effect on the next access; dropping to degree 1
// clears the second-best offset so it cannot issue again. "badscore" moves
// the throttling threshold for the next phase end and re-anchors the
// adaptive-throttle floor the way construction does. "offsets" replaces the
// candidate list and restarts the learning phase from scratch — scores,
// round and cursors cleared — while the current prefetch offset D keeps
// issuing until that phase ends (D is a value, not an index, so it need not
// appear in the new list).
func (p *Prefetcher) Retune(key, value string) error {
	switch key {
	case "degree":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("core: retune degree=%q: not an integer", value)
		}
		if n < 1 || n > 2 {
			return fmt.Errorf("core: retune degree=%d must be 1 or 2", n)
		}
		p.params.Degree = n
		if n == 1 {
			p.d2 = 0
		}
		return nil
	case "badscore":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("core: retune badscore=%q: not an integer", value)
		}
		p.params.BadScore = n
		p.dynBadScore = n
		return nil
	case "offsets":
		var err error
		list := prefetch.Values{"offsets": value}.Ints("offsets", nil, &err)
		if err != nil {
			return fmt.Errorf("core: retune %v", err)
		}
		if len(list) == 0 {
			return fmt.Errorf("core: retune offsets=%q: empty list", value)
		}
		for _, d := range list {
			if d == 0 {
				return fmt.Errorf("core: retune offsets=%q: offset 0 is meaningless", value)
			}
		}
		p.params.Offsets = list
		if cap(p.scores) >= len(list) {
			p.scores = p.scores[:len(list)]
		} else {
			p.scores = make([]int, len(list))
		}
		for i := range p.scores {
			p.scores[i] = 0
		}
		p.offIdx = 0
		p.round = 0
		p.bestIdx = 0
		p.bestScore = 0
		p.d2 = 0
		return nil
	}
	return fmt.Errorf("core: parameter %q is not retunable (retunable: badscore|degree|offsets)", key)
}
