package core

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// TestSteadyStateZeroAlloc pins the BO prefetcher's hot-path cost: once the
// RR table and score board exist, accesses, fills and learning-phase ends
// allocate nothing. Guards the //bovet:hotpath roots on OnAccess/OnFill
// with a runtime witness.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := New(mem.Page4M, DefaultParams())
	line := mem.LineAddr(0)
	step := func() {
		targets := p.OnAccess(prefetch.AccessInfo{Line: line})
		for _, tgt := range targets {
			p.OnFill(tgt, true)
		}
		line = (line + 5) % (1 << 20)
	}
	for i := 0; i < 10_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg != 0 {
		t.Errorf("steady-state OnAccess+OnFill allocates %.3f objects/op, want 0", avg)
	}
}
