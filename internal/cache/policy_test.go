package cache

import (
	"testing"

	"bopsim/internal/mem"
)

// fillSet inserts ways distinct lines mapping to set 0 of c.
func fillSet(c *Cache, start int) []mem.LineAddr {
	var lines []mem.LineAddr
	for i := 0; i < c.Ways(); i++ {
		l := mem.LineAddr((start + i) * c.Sets())
		c.Insert(l, InsertInfo{})
		lines = append(lines, l)
	}
	return lines
}

func TestBIPMostInsertionsAtLRU(t *testing.T) {
	// With BIP, a stream of new blocks should mostly evict each other (LRU
	// insertion means the newest block is the next victim), protecting the
	// established working set.
	sets, ways := 16, 4
	c := New("bip", sets*ways*mem.LineSize, ways, NewBIP(sets, ways, 42))
	working := fillSet(c, 0)
	for _, l := range working {
		c.Lookup(l) // establish recency
	}
	// Stream 1000 one-use blocks through set 0 while the working set keeps
	// being re-referenced (BIP protects an active working set from a scan;
	// a dead working set is legitimately evicted via occasional MRU
	// insertions).
	for i := 10; i < 1010; i++ {
		l := mem.LineAddr(i * sets)
		if c.Peek(l) == nil {
			c.Insert(l, InsertInfo{})
		}
		for _, w := range working {
			if c.Peek(w) != nil {
				c.Lookup(w)
			}
		}
	}
	// Most of the original working set should survive the scan.
	survivors := 0
	for _, l := range working {
		if c.Peek(l) != nil {
			survivors++
		}
	}
	if survivors < ways-2 {
		t.Errorf("only %d/%d working-set blocks survived a scan under BIP", survivors, ways)
	}
}

func TestDRRIPHitPromotion(t *testing.T) {
	sets, ways := 64, 4
	d := NewDRRIP(sets, ways, 1)
	c := New("drrip", sets*ways*mem.LineSize, ways, d)
	lines := fillSet(c, 0)
	// Touch line 0 so its RRPV drops to 0; then stream new lines: line 0
	// should outlive its set-mates.
	c.Lookup(lines[0])
	for i := 100; i < 140; i++ {
		l := mem.LineAddr(i * sets)
		if c.Peek(l) == nil {
			c.Insert(l, InsertInfo{})
		}
		if c.Peek(lines[0]) != nil {
			c.Lookup(lines[0])
		}
	}
	if c.Peek(lines[0]) == nil {
		t.Error("frequently hit line was evicted under DRRIP")
	}
}

func TestDRRIPVictimAlwaysValid(t *testing.T) {
	sets, ways := 8, 4
	d := NewDRRIP(sets, ways, 3)
	for s := 0; s < sets; s++ {
		for i := 0; i < ways; i++ {
			d.OnInsert(s, i, InsertInfo{})
		}
		v := d.Victim(s)
		if v < 0 || v >= ways {
			t.Fatalf("set %d: victim %d out of range", s, v)
		}
	}
}

func TestFivePLeaderAssignment(t *testing.T) {
	sets, ways := 1024, 16
	p := NewFiveP(sets, ways, 4, 7)
	counts := make([]int, NumInsertionPolicies)
	followers := 0
	for _, l := range p.leader {
		if l < 0 {
			followers++
		} else {
			counts[l]++
		}
	}
	for i, n := range counts {
		if n != sets/p.constituency {
			t.Errorf("policy IP%d has %d leader sets, want %d", i+1, n, sets/p.constituency)
		}
	}
	if followers != sets-NumInsertionPolicies*(sets/p.constituency) {
		t.Errorf("follower count %d unexpected", followers)
	}
}

func TestFivePPrefetchLRUInsertionUnderIP3(t *testing.T) {
	// Force IP3 by making it the minimum counter: charge the other leaders.
	sets, ways := 256, 4
	p := NewFiveP(sets, ways, 1, 7)
	for ip := 0; ip < NumInsertionPolicies; ip++ {
		if ip == 2 {
			continue
		}
		for k := 0; k < 10; k++ {
			p.policySel.Inc(ip)
		}
	}
	if got := p.policySel.MinIndex(); got != 2 {
		t.Fatalf("min policy = IP%d, want IP3", got+1)
	}
	c := New("5p", sets*ways*mem.LineSize, ways, p)
	// Pick a follower set index (leader sets are at multiples of
	// constituency/5 within each 128-set group; index 3 is a follower).
	followerSet := 3
	if p.leader[followerSet] >= 0 {
		t.Fatal("test set is unexpectedly a leader")
	}
	// Fill the follower set with demand blocks, then insert one prefetch:
	// the prefetch must be the next victim (LRU insertion).
	var lines []mem.LineAddr
	for i := 0; i < ways; i++ {
		l := mem.LineAddr(i*sets + followerSet)
		c.Insert(l, InsertInfo{})
		lines = append(lines, l)
	}
	for _, l := range lines {
		c.Lookup(l)
	}
	pf := mem.LineAddr(100*sets + followerSet)
	ev := c.Insert(pf, InsertInfo{IsPrefetch: true})
	if !ev.Valid {
		t.Fatal("no eviction from full set")
	}
	next := mem.LineAddr(101*sets + followerSet)
	ev = c.Insert(next, InsertInfo{})
	if ev.Addr != pf {
		t.Errorf("IP3 did not insert prefetch at LRU: evicted %d, want %d", ev.Addr, pf)
	}
}

func TestFivePCoreAwareLowMissRate(t *testing.T) {
	p := NewFiveP(256, 4, 4, 9)
	// Core 1 inserts heavily (cache thrasher); core 0 rarely.
	for i := 0; i < 1000; i++ {
		p.NoteFill(1)
	}
	p.NoteFill(0)
	if !p.lowMissRate(0) {
		t.Error("core 0 should have a low miss rate")
	}
	if p.lowMissRate(1) {
		t.Error("core 1 (thrasher) should not have a low miss rate")
	}
}

func TestFivePDemandLeaderChargesCounter(t *testing.T) {
	sets, ways := 256, 4
	p := NewFiveP(sets, ways, 1, 7)
	// Find the IP1 leader set in the first constituency.
	leaderSet := -1
	for s, l := range p.leader {
		if l == 0 {
			leaderSet = s
			break
		}
	}
	before := p.policySel.Value(0)
	p.OnInsert(leaderSet, 0, InsertInfo{})
	if p.policySel.Value(0) != before+1 {
		t.Error("demand insert into IP1 leader set did not charge counter")
	}
	before = p.policySel.Value(0)
	p.OnInsert(leaderSet, 1, InsertInfo{IsPrefetch: true})
	if p.policySel.Value(0) != before {
		t.Error("prefetch insert into leader set wrongly charged counter")
	}
}

func TestPropCountersHalving(t *testing.T) {
	p := NewPropCounters(3, 4) // max 15
	for i := 0; i < 10; i++ {
		p.Inc(0)
	}
	p.Inc(1)
	for i := 0; i < 10; i++ {
		p.Inc(0) // crosses 15 -> all halve
	}
	if p.Value(0) >= 15 {
		t.Errorf("counter 0 = %d, expected halving below max", p.Value(0))
	}
	if p.Value(1) > 1 {
		t.Errorf("counter 1 = %d, expected halved", p.Value(1))
	}
	if p.Value(0) <= p.Value(1) {
		t.Error("halving destroyed counter ordering")
	}
}

func TestPropCountersMinIndex(t *testing.T) {
	p := NewPropCounters(4, 12)
	p.Inc(0)
	p.Inc(1)
	p.Inc(3)
	if got := p.MinIndex(); got != 2 {
		t.Errorf("MinIndex = %d, want 2", got)
	}
}

func TestLRUStateTouchLRUAtZero(t *testing.T) {
	s := newLRUState(1, 2)
	// All stamps zero: touchLRU must not underflow.
	s.touchLRU(0, 1)
	if s.stamps[1] != 0 {
		t.Errorf("stamp = %d, want 0", s.stamps[1])
	}
}
