// Package cache implements the set-associative write-back caches of the
// simulated memory hierarchy, together with the replacement policies the
// paper evaluates at the L3: LRU, DRRIP, and the paper's own 5P policy
// (section 5.2). Every line carries a prefetch bit — the L2 prefetchers are
// gated on it (section 5.6) — and a dirty bit for write-back traffic.
package cache

import (
	"fmt"

	"bopsim/internal/mem"
)

// Line is the metadata of one cache line (the simulator stores no data).
type Line struct {
	Addr     mem.LineAddr // full line address (used as the tag)
	Valid    bool
	Dirty    bool
	Prefetch bool // set when inserted by a prefetch, cleared on demand use
	Core     int  // core that caused the insertion (for core-aware policies)
}

// InsertInfo describes the block being inserted, for policy decisions.
type InsertInfo struct {
	Core       int
	IsPrefetch bool // block was fetched by a prefetch request
}

// Policy decides victim selection and insertion/promotion ordering for one
// cache. Implementations own all per-set replacement state.
type Policy interface {
	// Name identifies the policy in reports ("LRU", "DRRIP", "5P", ...).
	Name() string
	// OnHit is called when way in set hits on a demand or prefetch access.
	OnHit(set, way int)
	// OnInsert is called after the cache writes a new line into way.
	OnInsert(set, way int, info InsertInfo)
	// Victim returns the way to evict in set; all ways are valid when it is
	// called (the cache fills invalid ways itself).
	Victim(set int) int
	// SaveState serializes the policy's replacement state for a checkpoint
	// (see state.go). RestoreState replaces it with a previously saved one,
	// rejecting state whose shape does not match this policy instance.
	SaveState() PolicyState
	RestoreState(PolicyState) error
}

// Cache is a set-associative cache. It is not safe for concurrent use; the
// simulator is single-threaded by design (one global clock).
type Cache struct {
	name     string
	sets     int
	ways     int
	setMask  uint64
	lines    []Line // sets*ways, row-major
	policy   Policy
	Hits     uint64
	Misses   uint64
	Evicts   uint64
	PrefHits uint64 // hits on lines whose prefetch bit was still set
}

// New creates a cache of sizeBytes with the given associativity and policy.
// sizeBytes must be a multiple of ways*mem.LineSize and the resulting set
// count must be a power of two.
func New(name string, sizeBytes, ways int, policy Policy) *Cache {
	if sizeBytes <= 0 || ways <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeBytes / mem.LineSize
	if lines%ways != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by %d ways", name, lines, ways))
	}
	sets := lines / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d is not a power of two", name, sets))
	}
	return &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		lines:   make([]Line, sets*ways),
		policy:  policy,
	}
}

// Name returns the cache's display name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Policy returns the replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// SetOf returns the set index for a line address.
func (c *Cache) SetOf(l mem.LineAddr) int { return int(uint64(l) & c.setMask) }

func (c *Cache) line(set, way int) *Line { return &c.lines[set*c.ways+way] }

// Lookup probes the cache. On a hit it applies the policy's hit update and
// returns a pointer to the line metadata; on a miss it returns nil. The
// returned pointer is only valid until the next Insert on the same set.
func (c *Cache) Lookup(l mem.LineAddr) *Line {
	set := c.SetOf(l)
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.Valid && ln.Addr == l {
			c.Hits++
			if ln.Prefetch {
				c.PrefHits++
			}
			c.policy.OnHit(set, w)
			return ln
		}
	}
	c.Misses++
	return nil
}

// Peek probes the cache without updating hit/miss statistics or replacement
// state. Used for the mandatory tag check before filling a prefetched block
// (paper section 5.4) and by tests.
func (c *Cache) Peek(l mem.LineAddr) *Line {
	set := c.SetOf(l)
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.Valid && ln.Addr == l {
			return ln
		}
	}
	return nil
}

// Insert writes line l into the cache, evicting a victim if the set is
// full. It returns the evicted line (Valid=false if an invalid way was
// used). The caller must ensure l is not already present (see Peek); double
// insertion would duplicate the block, which the paper calls out as a
// correctness requirement.
func (c *Cache) Insert(l mem.LineAddr, info InsertInfo) (evicted Line) {
	set := c.SetOf(l)
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.line(set, w).Valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.policy.Victim(set)
		if way < 0 || way >= c.ways {
			//bovet:allow hotalloc panic path for a broken replacement policy; never taken in a correct run
			panic(fmt.Sprintf("cache %s: policy %s returned bad victim %d", c.name, c.policy.Name(), way))
		}
		evicted = *c.line(set, way)
		c.Evicts++
	}
	*c.line(set, way) = Line{
		Addr:     l,
		Valid:    true,
		Prefetch: info.IsPrefetch,
		Core:     info.Core,
	}
	c.policy.OnInsert(set, way, info)
	return evicted
}

// Invalidate removes line l if present and returns its prior metadata.
func (c *Cache) Invalidate(l mem.LineAddr) (old Line, ok bool) {
	set := c.SetOf(l)
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.Valid && ln.Addr == l {
			old = *ln
			ln.Valid = false
			return old, true
		}
	}
	return Line{}, false
}

// Reset clears all lines and statistics (policy state is left as-is; use a
// fresh cache for independent runs).
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
	c.Hits, c.Misses, c.Evicts, c.PrefHits = 0, 0, 0, 0
}
