package cache

import "bopsim/internal/rng"

// DRRIP implements Dynamic Re-Reference Interval Prediction (Jaleel et al.,
// ISCA 2010), the second L3 alternative of Figure 3. Each line has a 2-bit
// re-reference prediction value (RRPV). SRRIP inserts at RRPV=2 ("long");
// BRRIP inserts at RRPV=3 ("distant") except 1/32 of the time. Set dueling
// between a few leader sets picks the winner for the follower sets via a
// PSEL counter.
type DRRIP struct {
	rrpv    []uint8
	sets    int
	ways    int
	maxRRPV uint8
	psel    int
	pselMax int
	// leaderMask: 0 = follower, 1 = SRRIP leader, 2 = BRRIP leader.
	leader []uint8
	rand   *rng.Stream
}

// NewDRRIP returns a DRRIP policy with 32 leader sets per flavour (or fewer
// for small caches), 2-bit RRPVs and a 10-bit PSEL counter.
func NewDRRIP(sets, ways int, seed uint64) *DRRIP {
	d := &DRRIP{
		rrpv:    make([]uint8, sets*ways),
		sets:    sets,
		ways:    ways,
		maxRRPV: 3,
		pselMax: 1023,
		psel:    512,
		leader:  make([]uint8, sets),
		rand:    rng.New(seed),
	}
	for i := range d.rrpv {
		d.rrpv[i] = d.maxRRPV
	}
	// Spread leader sets through the cache: every sets/64-th set alternates
	// between the two flavours (constituency-style assignment).
	stride := sets / 64
	if stride == 0 {
		stride = 1
	}
	flavour := uint8(1)
	for s := 0; s < sets; s += stride {
		d.leader[s] = flavour
		flavour = 3 - flavour // alternate 1,2,1,2...
	}
	return d
}

// Name implements Policy.
func (d *DRRIP) Name() string { return "DRRIP" }

// OnHit implements Policy: hit promotion to RRPV=0.
func (d *DRRIP) OnHit(set, way int) { d.rrpv[set*d.ways+way] = 0 }

func (d *DRRIP) useBRRIP(set int) bool {
	switch d.leader[set] {
	case 1: // SRRIP leader
		return false
	case 2: // BRRIP leader
		return true
	default: // follower: PSEL >= midpoint means SRRIP is losing
		return d.psel >= (d.pselMax+1)/2
	}
}

// OnInsert implements Policy.
func (d *DRRIP) OnInsert(set, way int, _ InsertInfo) {
	// Leader-set misses steer PSEL: a miss in an SRRIP leader increments
	// (evidence against SRRIP); a miss in a BRRIP leader decrements.
	switch d.leader[set] {
	case 1:
		if d.psel < d.pselMax {
			d.psel++
		}
	case 2:
		if d.psel > 0 {
			d.psel--
		}
	}
	if d.useBRRIP(set) {
		if d.rand.OneIn(32) {
			d.rrpv[set*d.ways+way] = d.maxRRPV - 1
		} else {
			d.rrpv[set*d.ways+way] = d.maxRRPV
		}
	} else {
		d.rrpv[set*d.ways+way] = d.maxRRPV - 1
	}
}

// Victim implements Policy: evict the first way at max RRPV, aging the set
// until one exists.
func (d *DRRIP) Victim(set int) int {
	base := set * d.ways
	for {
		for w := 0; w < d.ways; w++ {
			if d.rrpv[base+w] == d.maxRRPV {
				return w
			}
		}
		for w := 0; w < d.ways; w++ {
			d.rrpv[base+w]++
		}
	}
}
