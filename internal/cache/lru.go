package cache

import "bopsim/internal/rng"

// lruState holds age stamps for one cache: larger stamp = more recently
// used. Stamps are monotonically increasing, so the minimum stamp in a set
// is the LRU way. "LRU insertion" places a block at the LRU position by
// giving it a stamp smaller than every current stamp in the set.
type lruState struct {
	stamps []uint64 // sets*ways
	ways   int
	clock  uint64
}

func newLRUState(sets, ways int) *lruState {
	return &lruState{stamps: make([]uint64, sets*ways), ways: ways, clock: 1}
}

func (s *lruState) touchMRU(set, way int) {
	s.clock++
	s.stamps[set*s.ways+way] = s.clock
}

func (s *lruState) touchLRU(set, way int) {
	min := s.minStamp(set)
	base := set * s.ways
	if min == 0 {
		s.stamps[base+way] = 0
		return
	}
	s.stamps[base+way] = min - 1
}

func (s *lruState) minStamp(set int) uint64 {
	base := set * s.ways
	min := s.stamps[base]
	for w := 1; w < s.ways; w++ {
		if s.stamps[base+w] < min {
			min = s.stamps[base+w]
		}
	}
	return min
}

func (s *lruState) victim(set int) int {
	base := set * s.ways
	best := 0
	for w := 1; w < s.ways; w++ {
		if s.stamps[base+w] < s.stamps[base+best] {
			best = w
		}
	}
	return best
}

// LRU is classical least-recently-used replacement with MRU insertion. It
// is the policy of the DL1 and private L2 caches (Table 1) and one of the
// L3 alternatives evaluated in Figure 3.
type LRU struct {
	state *lruState
}

// NewLRU returns an LRU policy for a cache with the given geometry.
func NewLRU(sets, ways int) *LRU {
	return &LRU{state: newLRUState(sets, ways)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// OnHit implements Policy: move to MRU.
func (p *LRU) OnHit(set, way int) { p.state.touchMRU(set, way) }

// OnInsert implements Policy: MRU insertion.
func (p *LRU) OnInsert(set, way int, _ InsertInfo) { p.state.touchMRU(set, way) }

// Victim implements Policy.
func (p *LRU) Victim(set int) int { return p.state.victim(set) }

// BIP is bimodal insertion (Qureshi et al.): blocks are inserted at the LRU
// position except with probability 1/32, when they are inserted at MRU.
// It is insertion policy IP2 of the paper's 5P policy.
type BIP struct {
	state *lruState
	rand  *rng.Stream
	// Epsilon is the inverse probability of an MRU insertion (default 32).
	epsilon int
}

// NewBIP returns a BIP policy seeded deterministically.
func NewBIP(sets, ways int, seed uint64) *BIP {
	return &BIP{state: newLRUState(sets, ways), rand: rng.New(seed), epsilon: 32}
}

// Name implements Policy.
func (p *BIP) Name() string { return "BIP" }

// OnHit implements Policy.
func (p *BIP) OnHit(set, way int) { p.state.touchMRU(set, way) }

// OnInsert implements Policy.
func (p *BIP) OnInsert(set, way int, _ InsertInfo) {
	if p.rand.OneIn(p.epsilon) {
		p.state.touchMRU(set, way)
	} else {
		p.state.touchLRU(set, way)
	}
}

// Victim implements Policy.
func (p *BIP) Victim(set int) int { return p.state.victim(set) }
