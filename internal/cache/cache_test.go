package cache

import (
	"testing"
	"testing/quick"

	"bopsim/internal/mem"
)

func newSmallLRU(t *testing.T, sizeBytes, ways int) *Cache {
	t.Helper()
	sets := sizeBytes / mem.LineSize / ways
	return New("test", sizeBytes, ways, NewLRU(sets, ways))
}

func TestCacheHitAfterInsert(t *testing.T) {
	c := newSmallLRU(t, 4096, 4)
	c.Insert(100, InsertInfo{})
	if c.Lookup(100) == nil {
		t.Fatal("line 100 missing after insert")
	}
	if c.Hits != 1 || c.Misses != 0 {
		t.Errorf("hits=%d misses=%d, want 1/0", c.Hits, c.Misses)
	}
}

func TestCacheMissRecorded(t *testing.T) {
	c := newSmallLRU(t, 4096, 4)
	if c.Lookup(5) != nil {
		t.Fatal("hit in empty cache")
	}
	if c.Misses != 1 {
		t.Errorf("misses=%d, want 1", c.Misses)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	// 2-way cache: fill one set with A and B, touch A, insert C -> B evicted.
	ways := 2
	sets := 4
	c := New("t", sets*ways*mem.LineSize, ways, NewLRU(sets, ways))
	a := mem.LineAddr(0)        // set 0
	b := mem.LineAddr(sets)     // set 0
	d := mem.LineAddr(2 * sets) // set 0
	c.Insert(a, InsertInfo{})
	c.Insert(b, InsertInfo{})
	c.Lookup(a) // make A MRU
	ev := c.Insert(d, InsertInfo{})
	if !ev.Valid || ev.Addr != b {
		t.Errorf("evicted %+v, want line %d", ev, b)
	}
	if c.Peek(a) == nil || c.Peek(d) == nil {
		t.Error("A or D missing after eviction of B")
	}
}

func TestPrefetchBitLifecycle(t *testing.T) {
	c := newSmallLRU(t, 4096, 4)
	c.Insert(7, InsertInfo{IsPrefetch: true})
	ln := c.Lookup(7)
	if ln == nil || !ln.Prefetch {
		t.Fatal("prefetch bit not set on prefetched insert")
	}
	if c.PrefHits != 1 {
		t.Errorf("PrefHits=%d, want 1", c.PrefHits)
	}
	// The L2 access path clears the bit on demand use.
	ln.Prefetch = false
	if ln2 := c.Lookup(7); ln2.Prefetch {
		t.Error("prefetch bit set after demand clear")
	}
	if c.PrefHits != 1 {
		t.Errorf("PrefHits=%d after clear, want still 1", c.PrefHits)
	}
}

func TestInvalidate(t *testing.T) {
	c := newSmallLRU(t, 4096, 4)
	c.Insert(9, InsertInfo{})
	old, ok := c.Invalidate(9)
	if !ok || old.Addr != 9 {
		t.Fatalf("Invalidate returned %v %v", old, ok)
	}
	if c.Peek(9) != nil {
		t.Error("line still present after invalidate")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Error("double invalidate reported ok")
	}
}

func TestInsertUsesInvalidWaysFirst(t *testing.T) {
	ways := 4
	sets := 2
	c := New("t", sets*ways*mem.LineSize, ways, NewLRU(sets, ways))
	for i := 0; i < ways; i++ {
		ev := c.Insert(mem.LineAddr(i*sets), InsertInfo{})
		if ev.Valid {
			t.Fatalf("eviction while invalid ways remain (insert %d)", i)
		}
	}
	if ev := c.Insert(mem.LineAddr(ways*sets), InsertInfo{}); !ev.Valid {
		t.Error("no eviction from a full set")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two set count did not panic")
		}
	}()
	New("bad", 3*mem.LineSize, 1, NewLRU(3, 1))
}

// Property: a cache never holds the same line twice, and never exceeds its
// capacity, under random insert/lookup/invalidate traffic.
func TestCacheNoDuplicatesProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		ways, sets := 4, 8
		c := New("p", sets*ways*mem.LineSize, ways, NewLRU(sets, ways))
		live := make(map[mem.LineAddr]bool)
		for _, op := range ops {
			l := mem.LineAddr(op % 256)
			switch op % 3 {
			case 0:
				if c.Peek(l) == nil {
					ev := c.Insert(l, InsertInfo{})
					if ev.Valid {
						delete(live, ev.Addr)
					}
					live[l] = true
				}
			case 1:
				c.Lookup(l)
			case 2:
				if _, ok := c.Invalidate(l); ok {
					delete(live, l)
				}
			}
			// Count occurrences of l across the whole cache.
			count := 0
			for s := 0; s < sets; s++ {
				for w := 0; w < ways; w++ {
					if ln := c.line(s, w); ln.Valid && ln.Addr == l {
						count++
					}
				}
			}
			if count > 1 {
				return false
			}
		}
		return len(live) <= sets*ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	c := newSmallLRU(t, 4096, 4)
	c.Insert(1, InsertInfo{})
	c.Lookup(1)
	c.Lookup(2)
	c.Reset()
	if c.Peek(1) != nil {
		t.Error("line survived Reset")
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Error("stats survived Reset")
	}
}
