package cache

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"bopsim/internal/mem"
)

// gobRoundTrip encodes v, decodes into out, re-encodes the decoded value
// and checks the two encodings are byte-identical (the property snapshot
// content-addressing relies on).
func gobRoundTrip(t *testing.T, v any, out any) {
	t.Helper()
	var a bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(v); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewDecoder(bytes.NewReader(a.Bytes())).Decode(out); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(reflect.ValueOf(out).Elem().Interface()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encode -> decode -> encode is not byte-stable")
	}
}

// TestCacheStateRoundTrip drives a cache under each policy, saves its
// state, round-trips the encoding, restores into a fresh cache and checks
// the restored state (and future behaviour) matches the original.
func TestCacheStateRoundTrip(t *testing.T) {
	const sets, ways = 16, 4
	mkPolicy := map[string]func() Policy{
		"LRU":   func() Policy { return NewLRU(sets, ways) },
		"BIP":   func() Policy { return NewBIP(sets, ways, 7) },
		"DRRIP": func() Policy { return NewDRRIP(sets, ways, 7) },
		"5P":    func() Policy { return NewFiveP(sets, ways, 2, 7) },
	}
	for name, mk := range mkPolicy {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			c := New("t", sets*ways*mem.LineSize, ways, mk())
			for i := 0; i < 500; i++ {
				l := mem.LineAddr(i * 3)
				if c.Lookup(l) == nil {
					c.Insert(l, InsertInfo{Core: i % 2, IsPrefetch: i%5 == 0})
				}
			}
			st := c.SaveState()
			var decoded State
			gobRoundTrip(t, st, &decoded)

			fresh := New("t", sets*ways*mem.LineSize, ways, mk())
			if err := fresh.RestoreState(decoded); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fresh.SaveState(), st) {
				t.Fatal("restored cache state differs from saved state")
			}
			// Behavioural equality: the same access sequence must produce
			// the same victims and counters on both caches.
			for i := 500; i < 800; i++ {
				l := mem.LineAddr(i * 3)
				a, b := c.Lookup(l), fresh.Lookup(l)
				if (a == nil) != (b == nil) {
					t.Fatalf("lookup %d diverged after restore", i)
				}
				if a == nil {
					c.Insert(l, InsertInfo{Core: i % 2})
					fresh.Insert(l, InsertInfo{Core: i % 2})
				}
			}
			if !reflect.DeepEqual(fresh.SaveState(), c.SaveState()) {
				t.Fatal("restored cache diverged from original under identical traffic")
			}
		})
	}
}

// TestCacheRestoreRejectsMismatch checks geometry and policy mismatches
// fail instead of silently corrupting state.
func TestCacheRestoreRejectsMismatch(t *testing.T) {
	c := New("t", 16*4*mem.LineSize, 4, NewLRU(16, 4))
	st := c.SaveState()

	smaller := New("t", 8*4*mem.LineSize, 4, NewLRU(8, 4))
	if err := smaller.RestoreState(st); err == nil {
		t.Error("restore into smaller cache succeeded")
	}
	otherPolicy := New("t", 16*4*mem.LineSize, 4, NewDRRIP(16, 4, 1))
	if err := otherPolicy.RestoreState(st); err == nil {
		t.Error("restore of LRU state into DRRIP policy succeeded")
	}
	bad := st
	bad.Policy.Stamps = bad.Policy.Stamps[:1]
	if err := New("t", 16*4*mem.LineSize, 4, NewLRU(16, 4)).RestoreState(bad); err == nil {
		t.Error("restore with truncated stamps succeeded")
	}
}

// TestPropCountersRoundTrip checks the counter bank's save/restore and its
// bounds checking.
func TestPropCountersRoundTrip(t *testing.T) {
	p := NewPropCounters(4, 7)
	for i := 0; i < 300; i++ {
		p.Inc(i % 3)
	}
	st := p.SaveState()
	fresh := NewPropCounters(4, 7)
	if err := fresh.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.SaveState(), st) {
		t.Fatal("restored counters differ")
	}
	if err := fresh.RestoreState([]uint32{1}); err == nil {
		t.Error("restore with wrong counter count succeeded")
	}
	if err := fresh.RestoreState([]uint32{1 << 20, 0, 0, 0}); err == nil {
		t.Error("restore with out-of-range counter succeeded")
	}
}
