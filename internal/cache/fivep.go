package cache

import "bopsim/internal/rng"

// FiveP implements the paper's baseline L3 replacement policy "5P"
// (section 5.2): LRU ordering with five candidate insertion policies chosen
// by set sampling, DIP-style, generalized to more than two policies with
// proportional counters:
//
//	IP1: MRU insertion (classical LRU replacement)
//	IP2: bimodal LRU/MRU insertion (BIP)
//	IP3: MRU insertion if demand miss, otherwise (prefetch) LRU insertion
//	IP4: MRU insertion if fetched from a core with low miss rate, else LRU
//	IP5: MRU insertion if demand miss from a low-miss-rate core, else LRU
//
// Each constituency of 128 consecutive sets dedicates one leader set to each
// policy; a per-policy 12-bit proportional counter counts demand-miss
// insertions into its leader sets, and follower sets use the policy with the
// lowest counter. Per-core 12-bit proportional counters estimate miss rates:
// a core's rate is "low" when its counter is below 1/4 of the maximum
// counter value (IP4/IP5, after Michaud's 3P/4P policies).
type FiveP struct {
	state        *lruState
	policySel    *PropCounters // one counter per insertion policy
	coreMiss     *PropCounters // one counter per core
	leader       []int8        // per set: 0..4 = leader for IPi+1, -1 = follower
	rand         *rng.Stream
	bipEpsilon   int
	constituency int
}

// NumInsertionPolicies is the number of candidate insertion policies in 5P.
const NumInsertionPolicies = 5

// NewFiveP returns a 5P policy for a cache with the given geometry serving
// numCores cores.
func NewFiveP(sets, ways, numCores int, seed uint64) *FiveP {
	if numCores <= 0 {
		panic("cache: FiveP needs at least one core")
	}
	p := &FiveP{
		state:        newLRUState(sets, ways),
		policySel:    NewPropCounters(NumInsertionPolicies, 12),
		coreMiss:     NewPropCounters(numCores, 12),
		leader:       make([]int8, sets),
		rand:         rng.New(seed),
		bipEpsilon:   32,
		constituency: 128,
	}
	if p.constituency > sets {
		p.constituency = sets
	}
	for s := range p.leader {
		p.leader[s] = -1
	}
	// Within each constituency, spread the five leader sets so they sample
	// different address regions: set (i*constituency/5) of each group leads
	// policy IPi+1.
	for base := 0; base < sets; base += p.constituency {
		for i := 0; i < NumInsertionPolicies; i++ {
			idx := base + i*p.constituency/NumInsertionPolicies
			if idx < sets {
				p.leader[idx] = int8(i)
			}
		}
	}
	return p
}

// Name implements Policy.
func (p *FiveP) Name() string { return "5P" }

// OnHit implements Policy: the hitting block always moves to MRU.
func (p *FiveP) OnHit(set, way int) { p.state.touchMRU(set, way) }

// NoteFill records that a block fetched on behalf of core was inserted into
// the L3, updating the per-core miss-rate estimate. The cache hierarchy
// calls this for every L3 insertion (demand or prefetch).
func (p *FiveP) NoteFill(core int) {
	if core >= 0 && core < p.coreMiss.Len() {
		p.coreMiss.Inc(core)
	}
}

// lowMissRate reports whether core currently has a low miss rate: its
// counter is below 1/4 of the maximum per-core counter value.
func (p *FiveP) lowMissRate(core int) bool {
	if core < 0 || core >= p.coreMiss.Len() {
		return false
	}
	return p.coreMiss.Value(core) < p.coreMiss.MaxValue()/4
}

// policyFor returns which insertion policy (0-based) governs set.
func (p *FiveP) policyFor(set int) int {
	if l := p.leader[set]; l >= 0 {
		return int(l)
	}
	return p.policySel.MinIndex()
}

// mruInsert decides, for insertion policy ip, whether the incoming block is
// inserted at the MRU position (true) or the LRU position (false).
func (p *FiveP) mruInsert(ip int, info InsertInfo) bool {
	demand := !info.IsPrefetch
	switch ip {
	case 0: // IP1: always MRU
		return true
	case 1: // IP2: BIP
		return p.rand.OneIn(p.bipEpsilon)
	case 2: // IP3: MRU iff demand miss
		return demand
	case 3: // IP4: MRU iff low-miss-rate core
		return p.lowMissRate(info.Core)
	case 4: // IP5: MRU iff demand miss from low-miss-rate core
		return demand && p.lowMissRate(info.Core)
	}
	panic("cache: unknown 5P insertion policy")
}

// OnInsert implements Policy.
func (p *FiveP) OnInsert(set, way int, info InsertInfo) {
	if l := p.leader[set]; l >= 0 && !info.IsPrefetch {
		// Demand-miss insertion into a leader set: charge that policy.
		p.policySel.Inc(int(l))
	}
	if p.mruInsert(p.policyFor(set), info) {
		p.state.touchMRU(set, way)
	} else {
		p.state.touchLRU(set, way)
	}
}

// Victim implements Policy.
func (p *FiveP) Victim(set int) int { return p.state.victim(set) }
