package cache

// PropCounters implements the paper's "proportional counters" (section 5.2):
// a fixed set of saturating counters that are all halved at the same time
// whenever any one of them reaches its maximum. Halving gives more weight to
// recent events while preserving the counters' relative ordering. The L3 5P
// replacement policy, the per-core miss-rate estimator, and the DRAM
// scheduler's fairness mechanism all use them.
type PropCounters struct {
	counters []uint32
	max      uint32
}

// NewPropCounters returns n counters with the given bit width (e.g. 12 for
// the L3 policy, 7 for the memory scheduler).
func NewPropCounters(n int, bits uint) *PropCounters {
	if n <= 0 || bits == 0 || bits > 31 {
		panic("cache: invalid PropCounters shape")
	}
	return &PropCounters{counters: make([]uint32, n), max: 1<<bits - 1}
}

// Inc increments counter i; if it reaches the maximum, all counters are
// halved simultaneously.
func (p *PropCounters) Inc(i int) {
	p.counters[i]++
	if p.counters[i] >= p.max {
		for j := range p.counters {
			p.counters[j] >>= 1
		}
	}
}

// Value returns the current value of counter i.
func (p *PropCounters) Value(i int) uint32 { return p.counters[i] }

// Len returns the number of counters.
func (p *PropCounters) Len() int { return len(p.counters) }

// MinIndex returns the index of the smallest counter (lowest index wins
// ties), used to select the follower insertion policy and the DRAM lagging
// core.
func (p *PropCounters) MinIndex() int {
	best := 0
	for i := 1; i < len(p.counters); i++ {
		if p.counters[i] < p.counters[best] {
			best = i
		}
	}
	return best
}

// MaxValue returns the largest counter value.
func (p *PropCounters) MaxValue() uint32 {
	best := uint32(0)
	for _, v := range p.counters {
		if v > best {
			best = v
		}
	}
	return best
}
