package cache

import "fmt"

// Checkpoint state for caches and replacement policies. Every struct here
// holds only exported, fixed-order fields (no maps), so a deterministic
// encoder (gob, JSON) produces byte-stable output: encode -> decode ->
// encode yields identical bytes, which is what lets snapshots be
// content-addressed by SHA-256.

// State is the full serialized state of one Cache: the line metadata, the
// hit/miss counters and the replacement policy's state.
type State struct {
	Lines    []Line
	Hits     uint64
	Misses   uint64
	Evicts   uint64
	PrefHits uint64
	Policy   PolicyState
}

// PolicyState is the union of every in-tree policy's replacement state; the
// Name field says which policy wrote it and which fields are meaningful.
// LRU/BIP/5P use the stamp fields, DRRIP uses RRPV/PSel, BIP/DRRIP/5P carry
// their random stream, and 5P adds the two proportional-counter banks.
type PolicyState struct {
	Name      string
	Stamps    []uint64
	Clock     uint64
	Rand      uint64
	RRPV      []uint8
	PSel      int
	PolicySel []uint32
	CoreMiss  []uint32
}

// SaveState serializes the cache's lines, counters and policy state.
func (c *Cache) SaveState() State {
	return State{
		Lines:    append([]Line(nil), c.lines...),
		Hits:     c.Hits,
		Misses:   c.Misses,
		Evicts:   c.Evicts,
		PrefHits: c.PrefHits,
		Policy:   c.policy.SaveState(),
	}
}

// RestoreState replaces the cache's contents with a previously saved state.
// The state must come from a cache of identical geometry and policy.
func (c *Cache) RestoreState(s State) error {
	if len(s.Lines) != len(c.lines) {
		return fmt.Errorf("cache %s: state has %d lines, cache holds %d", c.name, len(s.Lines), len(c.lines))
	}
	if err := c.policy.RestoreState(s.Policy); err != nil {
		return fmt.Errorf("cache %s: %w", c.name, err)
	}
	copy(c.lines, s.Lines)
	c.Hits, c.Misses, c.Evicts, c.PrefHits = s.Hits, s.Misses, s.Evicts, s.PrefHits
	return nil
}

// ResetStats clears the hit/miss counters without touching the cached lines
// or the replacement state (the warmup barrier uses it: the warmed contents
// stay, the measured region's counters start at zero).
func (c *Cache) ResetStats() {
	c.Hits, c.Misses, c.Evicts, c.PrefHits = 0, 0, 0, 0
}

// save/restore serialize the stamp machinery shared by LRU, BIP and 5P.
func (s *lruState) save(name string) PolicyState {
	return PolicyState{Name: name, Stamps: append([]uint64(nil), s.stamps...), Clock: s.clock}
}

func (s *lruState) restore(st PolicyState) error {
	if len(st.Stamps) != len(s.stamps) {
		return fmt.Errorf("policy %s: state has %d stamps, policy holds %d", st.Name, len(st.Stamps), len(s.stamps))
	}
	copy(s.stamps, st.Stamps)
	s.clock = st.Clock
	return nil
}

func checkPolicyName(st PolicyState, want string) error {
	if st.Name != want {
		return fmt.Errorf("policy state is %q, want %q", st.Name, want)
	}
	return nil
}

// SaveState implements Policy.
func (p *LRU) SaveState() PolicyState { return p.state.save("LRU") }

// RestoreState implements Policy.
func (p *LRU) RestoreState(st PolicyState) error {
	if err := checkPolicyName(st, "LRU"); err != nil {
		return err
	}
	return p.state.restore(st)
}

// SaveState implements Policy.
func (p *BIP) SaveState() PolicyState {
	st := p.state.save("BIP")
	st.Rand = p.rand.State()
	return st
}

// RestoreState implements Policy.
func (p *BIP) RestoreState(st PolicyState) error {
	if err := checkPolicyName(st, "BIP"); err != nil {
		return err
	}
	if err := p.state.restore(st); err != nil {
		return err
	}
	p.rand.SetState(st.Rand)
	return nil
}

// SaveState implements Policy.
func (d *DRRIP) SaveState() PolicyState {
	return PolicyState{
		Name: "DRRIP",
		RRPV: append([]uint8(nil), d.rrpv...),
		PSel: d.psel,
		Rand: d.rand.State(),
	}
}

// RestoreState implements Policy.
func (d *DRRIP) RestoreState(st PolicyState) error {
	if err := checkPolicyName(st, "DRRIP"); err != nil {
		return err
	}
	if len(st.RRPV) != len(d.rrpv) {
		return fmt.Errorf("DRRIP: state has %d RRPVs, policy holds %d", len(st.RRPV), len(d.rrpv))
	}
	if st.PSel < 0 || st.PSel > d.pselMax {
		return fmt.Errorf("DRRIP: PSEL %d out of range 0..%d", st.PSel, d.pselMax)
	}
	copy(d.rrpv, st.RRPV)
	d.psel = st.PSel
	d.rand.SetState(st.Rand)
	return nil
}

// SaveState implements Policy.
func (p *FiveP) SaveState() PolicyState {
	st := p.state.save("5P")
	st.Rand = p.rand.State()
	st.PolicySel = p.policySel.SaveState()
	st.CoreMiss = p.coreMiss.SaveState()
	return st
}

// RestoreState implements Policy.
func (p *FiveP) RestoreState(st PolicyState) error {
	if err := checkPolicyName(st, "5P"); err != nil {
		return err
	}
	if err := p.state.restore(st); err != nil {
		return err
	}
	if err := p.policySel.RestoreState(st.PolicySel); err != nil {
		return fmt.Errorf("5P policy counters: %w", err)
	}
	if err := p.coreMiss.RestoreState(st.CoreMiss); err != nil {
		return fmt.Errorf("5P core-miss counters: %w", err)
	}
	p.rand.SetState(st.Rand)
	return nil
}

// SaveState serializes the counter bank.
func (p *PropCounters) SaveState() []uint32 {
	return append([]uint32(nil), p.counters...)
}

// RestoreState replaces the counters with a previously saved bank of the
// same shape.
func (p *PropCounters) RestoreState(counters []uint32) error {
	if len(counters) != len(p.counters) {
		return fmt.Errorf("prop counters: state has %d counters, bank holds %d", len(counters), len(p.counters))
	}
	for _, v := range counters {
		if v > p.max {
			return fmt.Errorf("prop counters: value %d exceeds maximum %d", v, p.max)
		}
	}
	copy(p.counters, counters)
	return nil
}
