// Package multi implements a multi-offset L2 prefetcher: every eligible
// access X prefetches X+d for a configurable *set* of offsets at once,
// covering multi-strided access patterns (several interleaved streams with
// different strides) that a single-offset prefetcher like BO must choose
// between. To keep the extra traffic honest, each offset is continuously
// audited: during an evaluation window, offset d scores a point whenever
// the current access X would have been covered by a d-prefetch (X-d was
// recently accessed), and offsets that score below the threshold are
// disabled for the next window.
//
// The design is deliberately simpler than BO — no timeliness measurement,
// no phase machinery — so it doubles as the registry's proof of
// extensibility: it was added entirely from this package plus a one-line
// blank import, without touching the engine or the scheduler.
package multi

import (
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Params are the multi-offset prefetcher tunables.
type Params struct {
	Offsets  []int // the prefetch offset set (non-zero; negatives allowed)
	Period   int   // eligible accesses per evaluation window
	MinScore int   // window hits needed to keep an offset enabled
	MaxIssue int   // cap on prefetch lines per access
	Recent   int   // recent-access table entries (rounded up to a power of 2)
}

// DefaultParams covers power-of-two strides up to 32 with a conservative
// per-access issue cap. The offset set and score bar come from the bakeoff
// committed in DESIGN.md §11.4 (run after the cross-page audit fix): the
// denser set with a low bar clearly beats the original {1,2,8,32}/24 —
// minscore 24 was mostly compensating for scores the cross-page leak
// inflated, and over-gates once the audit only credits issuable covers.
func DefaultParams() Params {
	return Params{
		Offsets:  []int{1, 2, 4, 8, 16, 32},
		Period:   256,
		MinScore: 6,
		MaxIssue: 4,
		Recent:   128,
	}
}

// Stats counts the prefetcher's decisions for experiments and tests.
type Stats struct {
	Issued  uint64 // prefetch lines returned to the hierarchy
	Windows uint64 // completed evaluation windows
}

// Prefetcher is the multi-offset prefetcher. It implements
// prefetch.L2Prefetcher.
type Prefetcher struct {
	params Params
	page   mem.PageSize

	recent  []mem.LineAddr // direct-mapped recent-access table (+1 so 0 means empty)
	mask    uint64
	scores  []int
	enabled []bool
	count   int // eligible accesses in the current window

	//bovet:allow statecodec OnAccess scratch is valid only until the next call; never learned state
	buf []mem.LineAddr // OnAccess scratch, reused across calls

	stats Stats
}

var _ prefetch.L2Prefetcher = (*Prefetcher)(nil)
var _ prefetch.PreIssueTagChecker = (*Prefetcher)(nil)

// New returns a multi-offset prefetcher for the given page size. All
// offsets start enabled; the first window's scores take it from there.
func New(page mem.PageSize, p Params) *Prefetcher {
	if len(p.Offsets) == 0 {
		panic("multi: empty offset list")
	}
	for _, d := range p.Offsets {
		if d == 0 {
			panic("multi: offset 0 is meaningless")
		}
	}
	size := 1
	for size < p.Recent {
		size <<= 1
	}
	pf := &Prefetcher{
		params:  p,
		page:    page,
		recent:  make([]mem.LineAddr, size),
		mask:    uint64(size - 1),
		scores:  make([]int, len(p.Offsets)),
		enabled: make([]bool, len(p.Offsets)),
	}
	for i := range pf.enabled {
		pf.enabled[i] = true
	}
	return pf
}

// Name implements prefetch.L2Prefetcher.
func (p *Prefetcher) Name() string { return "multi" }

// PreIssueTagCheck implements prefetch.PreIssueTagChecker: like SBP, a
// degree-N prefetcher should not spend fill-queue slots on lines the L2
// already holds.
func (p *Prefetcher) PreIssueTagCheck() bool { return true }

// Stats returns a copy of the statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// EnabledOffsets returns the offsets currently issuing prefetches, in
// configuration order. It allocates; hot-path callers polling a live
// prefetcher use AppendEnabledOffsets instead.
func (p *Prefetcher) EnabledOffsets() []int {
	return p.AppendEnabledOffsets(nil)
}

// AppendEnabledOffsets appends the offsets currently issuing prefetches to
// dst, in configuration order, and returns the extended slice. With a caller
// buffer of cap >= len(Offsets) it does not allocate.
func (p *Prefetcher) AppendEnabledOffsets(dst []int) []int {
	for i, on := range p.enabled {
		if on {
			dst = append(dst, p.params.Offsets[i])
		}
	}
	return dst
}

// OnAccess implements prefetch.L2Prefetcher: score every offset against the
// recent-access table, record the access, and issue for the enabled set.
//
//bovet:hotpath
func (p *Prefetcher) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	if !a.Eligible() {
		return nil
	}
	for i, d := range p.params.Offsets {
		prev := int64(a.Line) - int64(d)
		// Score only what the issue path below would actually prefetch: a
		// cross-page X-d may well be a recent access, but a d-prefetch from
		// it could never have issued, so crediting it would keep d enabled
		// on covers it never provides.
		if prev >= 0 && p.page.SamePage(a.Line, mem.LineAddr(prev)) && p.recentHit(mem.LineAddr(prev)) {
			p.scores[i]++
		}
	}
	p.recentInsert(a.Line)
	p.count++
	if p.count >= p.params.Period {
		p.endWindow()
	}

	out := p.buf[:0]
	for i, d := range p.params.Offsets {
		if !p.enabled[i] {
			continue
		}
		t := int64(a.Line) + int64(d)
		if t < 0 {
			continue
		}
		target := mem.LineAddr(t)
		if !p.page.SamePage(a.Line, target) {
			continue
		}
		out = append(out, target)
		if len(out) >= p.params.MaxIssue {
			break
		}
	}
	p.stats.Issued += uint64(len(out))
	p.buf = out
	return out
}

// endWindow converts the window's scores into the next enabled set.
func (p *Prefetcher) endWindow() {
	for i, s := range p.scores {
		p.enabled[i] = s >= p.params.MinScore
		p.scores[i] = 0
	}
	p.count = 0
	p.stats.Windows++
}

// OnFill implements prefetch.L2Prefetcher; the audit works on the access
// stream alone.
//
//bovet:hotpath
func (p *Prefetcher) OnFill(mem.LineAddr, bool) {}

// recentHit checks the direct-mapped recent-access table for line.
func (p *Prefetcher) recentHit(line mem.LineAddr) bool {
	return p.recent[uint64(line)&p.mask] == line+1
}

// recentInsert records line (stored +1 so the zero value means empty).
func (p *Prefetcher) recentInsert(line mem.LineAddr) {
	p.recent[uint64(line)&p.mask] = line + 1
}
