package multi

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// multiState mirrors the prefetcher's audit state.
type multiState struct {
	Recent  []uint64
	Scores  []int
	Enabled []bool
	Count   int
	Stats   Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	st := multiState{
		Recent:  make([]uint64, len(p.recent)),
		Scores:  append([]int(nil), p.scores...),
		Enabled: append([]bool(nil), p.enabled...),
		Count:   p.count,
		Stats:   p.stats,
	}
	for i, l := range p.recent {
		st.Recent[i] = uint64(l)
	}
	return prefetch.MarshalState(st)
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st multiState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if len(st.Recent) != len(p.recent) {
		return fmt.Errorf("multi: state recent table has %d slots, prefetcher has %d", len(st.Recent), len(p.recent))
	}
	if len(st.Scores) != len(p.scores) || len(st.Enabled) != len(p.enabled) {
		return fmt.Errorf("multi: state covers %d/%d offsets, prefetcher has %d",
			len(st.Scores), len(st.Enabled), len(p.scores))
	}
	if st.Count < 0 || st.Count >= p.params.Period {
		return fmt.Errorf("multi: window count %d out of range 0..%d", st.Count, p.params.Period-1)
	}
	for i, l := range st.Recent {
		p.recent[i] = mem.LineAddr(l)
	}
	copy(p.scores, st.Scores)
	copy(p.enabled, st.Enabled)
	p.count = st.Count
	p.stats = st.Stats
	return nil
}
