package multi

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// multiState mirrors the prefetcher's audit state. Offsets and MinScore are
// carried because prefetch.Retunable can move them away from the
// construction spec; a restore re-adopts them so a retuned prefetcher
// round-trips exactly.
type multiState struct {
	Offsets  []int
	MinScore int

	Recent  []uint64
	Scores  []int
	Enabled []bool
	Count   int
	Stats   Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	st := multiState{
		Offsets:  append([]int(nil), p.params.Offsets...),
		MinScore: p.params.MinScore,
		Recent:   make([]uint64, len(p.recent)),
		Scores:   append([]int(nil), p.scores...),
		Enabled:  append([]bool(nil), p.enabled...),
		Count:    p.count,
		Stats:    p.stats,
	}
	for i, l := range p.recent {
		st.Recent[i] = uint64(l)
	}
	return prefetch.MarshalState(st)
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st multiState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if len(st.Offsets) == 0 {
		return fmt.Errorf("multi: state has an empty offset list")
	}
	for _, d := range st.Offsets {
		if d == 0 {
			return fmt.Errorf("multi: state offset 0 is meaningless")
		}
	}
	if st.MinScore < 0 {
		return fmt.Errorf("multi: state minscore=%d must be >= 0", st.MinScore)
	}
	if len(st.Recent) != len(p.recent) {
		return fmt.Errorf("multi: state recent table has %d slots, prefetcher has %d", len(st.Recent), len(p.recent))
	}
	if len(st.Scores) != len(st.Offsets) || len(st.Enabled) != len(st.Offsets) {
		return fmt.Errorf("multi: state covers %d/%d audit slots for %d offsets",
			len(st.Scores), len(st.Enabled), len(st.Offsets))
	}
	if st.Count < 0 || st.Count >= p.params.Period {
		return fmt.Errorf("multi: window count %d out of range 0..%d", st.Count, p.params.Period-1)
	}
	p.params.Offsets = append([]int(nil), st.Offsets...)
	p.params.MinScore = st.MinScore
	p.scores = resizeInts(p.scores, len(st.Offsets))
	p.enabled = resizeBools(p.enabled, len(st.Offsets))
	for i, l := range st.Recent {
		p.recent[i] = mem.LineAddr(l)
	}
	copy(p.scores, st.Scores)
	copy(p.enabled, st.Enabled)
	p.count = st.Count
	p.stats = st.Stats
	return nil
}
