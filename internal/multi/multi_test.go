package multi

import (
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func eligible(line mem.LineAddr) prefetch.AccessInfo {
	return prefetch.AccessInfo{Line: line} // a miss: Hit=false
}

func TestIssuesAllEnabledOffsets(t *testing.T) {
	p := New(mem.Page4M, Params{Offsets: []int{1, 4, 16}, Period: 1 << 20, MinScore: 1, MaxIssue: 8, Recent: 64})
	got := p.OnAccess(eligible(1000))
	want := []mem.LineAddr{1001, 1004, 1016}
	if len(got) != len(want) {
		t.Fatalf("issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRespectsPageBoundaryAndIssueCap(t *testing.T) {
	p := New(mem.Page4K, Params{Offsets: []int{1, 2, 4, 8, 16, 32}, Period: 1 << 20, MinScore: 1, MaxIssue: 3, Recent: 64})
	// 64 lines per 4KB page; from line 62 only +1 stays in the page.
	got := p.OnAccess(eligible(62))
	if len(got) != 1 || got[0] != 63 {
		t.Errorf("near page end issued %v, want [63]", got)
	}
	// In the page interior the cap limits the fan-out.
	got = p.OnAccess(eligible(4096))
	if len(got) != 3 {
		t.Errorf("cap: issued %d targets, want 3", len(got))
	}
}

func TestIneligibleAccessesIgnored(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	if got := p.OnAccess(prefetch.AccessInfo{Line: 100, Hit: true}); got != nil {
		t.Errorf("plain hit triggered prefetches: %v", got)
	}
	if got := p.OnAccess(prefetch.AccessInfo{Line: 100, Hit: true, PrefetchedHit: true}); got == nil {
		t.Error("prefetched hit did not trigger")
	}
}

func TestWindowDisablesUselessOffsets(t *testing.T) {
	// A pure stride-4 stream: offset 4 is covered on every access, while 1
	// and 30 (not multiples of the stride) never land on an accessed line.
	// After one window only offset 4 survives.
	p := New(mem.Page4M, Params{Offsets: []int{1, 4, 30}, Period: 64, MinScore: 32, MaxIssue: 8, Recent: 128})
	line := mem.LineAddr(1 << 20)
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 4
	}
	if p.Stats().Windows != 1 {
		t.Fatalf("windows = %d, want 1", p.Stats().Windows)
	}
	en := p.EnabledOffsets()
	if len(en) != 1 || en[0] != 4 {
		t.Errorf("enabled offsets after a stride-4 window: %v, want [4]", en)
	}
	// A later access issues only the surviving offset.
	got := p.OnAccess(eligible(line))
	if len(got) != 1 || got[0] != line+4 {
		t.Errorf("post-window issue = %v, want [%d]", got, line+4)
	}
}

func TestOffsetsReenableWhenPatternReturns(t *testing.T) {
	p := New(mem.Page4M, Params{Offsets: []int{1, 4}, Period: 64, MinScore: 32, MaxIssue: 8, Recent: 128})
	// Window 1: random-ish far apart accesses disable everything.
	line := mem.LineAddr(1 << 24)
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 9973
	}
	if en := p.EnabledOffsets(); len(en) != 0 {
		t.Fatalf("enabled after noise window: %v, want none", en)
	}
	// Window 2: a stride-4 stream re-earns offset 4 (scoring continues
	// while disabled).
	line = 1 << 25
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 4
	}
	en := p.EnabledOffsets()
	if len(en) != 1 || en[0] != 4 {
		t.Errorf("enabled after stride-4 window: %v, want [4]", en)
	}
}

func TestRegisteredSpec(t *testing.T) {
	p, err := prefetch.NewL2(prefetch.MustSpec("multi:offsets=2+6,period=32,minscore=4"), mem.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	mp, ok := p.(*Prefetcher)
	if !ok {
		t.Fatalf("built %T", p)
	}
	if en := mp.EnabledOffsets(); len(en) != 2 || en[0] != 2 || en[1] != 6 {
		t.Errorf("configured offsets = %v", en)
	}
	if !mp.PreIssueTagCheck() {
		t.Error("multi should request the pre-issue tag check")
	}
	if _, err := prefetch.NewL2(prefetch.MustSpec("multi:offsets=0"), mem.Page4K); err == nil {
		t.Error("offset 0 accepted")
	}
}
