package multi

import (
	"bytes"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func eligible(line mem.LineAddr) prefetch.AccessInfo {
	return prefetch.AccessInfo{Line: line} // a miss: Hit=false
}

func TestIssuesAllEnabledOffsets(t *testing.T) {
	p := New(mem.Page4M, Params{Offsets: []int{1, 4, 16}, Period: 1 << 20, MinScore: 1, MaxIssue: 8, Recent: 64})
	got := p.OnAccess(eligible(1000))
	want := []mem.LineAddr{1001, 1004, 1016}
	if len(got) != len(want) {
		t.Fatalf("issued %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("target[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRespectsPageBoundaryAndIssueCap(t *testing.T) {
	p := New(mem.Page4K, Params{Offsets: []int{1, 2, 4, 8, 16, 32}, Period: 1 << 20, MinScore: 1, MaxIssue: 3, Recent: 64})
	// 64 lines per 4KB page; from line 62 only +1 stays in the page.
	got := p.OnAccess(eligible(62))
	if len(got) != 1 || got[0] != 63 {
		t.Errorf("near page end issued %v, want [63]", got)
	}
	// In the page interior the cap limits the fan-out.
	got = p.OnAccess(eligible(4096))
	if len(got) != 3 {
		t.Errorf("cap: issued %d targets, want 3", len(got))
	}
}

func TestIneligibleAccessesIgnored(t *testing.T) {
	p := New(mem.Page4K, DefaultParams())
	if got := p.OnAccess(prefetch.AccessInfo{Line: 100, Hit: true}); got != nil {
		t.Errorf("plain hit triggered prefetches: %v", got)
	}
	if got := p.OnAccess(prefetch.AccessInfo{Line: 100, Hit: true, PrefetchedHit: true}); got == nil {
		t.Error("prefetched hit did not trigger")
	}
}

func TestWindowDisablesUselessOffsets(t *testing.T) {
	// A pure stride-4 stream: offset 4 is covered on every access, while 1
	// and 30 (not multiples of the stride) never land on an accessed line.
	// After one window only offset 4 survives.
	p := New(mem.Page4M, Params{Offsets: []int{1, 4, 30}, Period: 64, MinScore: 32, MaxIssue: 8, Recent: 128})
	line := mem.LineAddr(1 << 20)
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 4
	}
	if p.Stats().Windows != 1 {
		t.Fatalf("windows = %d, want 1", p.Stats().Windows)
	}
	en := p.EnabledOffsets()
	if len(en) != 1 || en[0] != 4 {
		t.Errorf("enabled offsets after a stride-4 window: %v, want [4]", en)
	}
	// A later access issues only the surviving offset.
	got := p.OnAccess(eligible(line))
	if len(got) != 1 || got[0] != line+4 {
		t.Errorf("post-window issue = %v, want [%d]", got, line+4)
	}
}

func TestOffsetsReenableWhenPatternReturns(t *testing.T) {
	p := New(mem.Page4M, Params{Offsets: []int{1, 4}, Period: 64, MinScore: 32, MaxIssue: 8, Recent: 128})
	// Window 1: random-ish far apart accesses disable everything.
	line := mem.LineAddr(1 << 24)
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 9973
	}
	if en := p.EnabledOffsets(); len(en) != 0 {
		t.Fatalf("enabled after noise window: %v, want none", en)
	}
	// Window 2: a stride-4 stream re-earns offset 4 (scoring continues
	// while disabled).
	line = 1 << 25
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 4
	}
	en := p.EnabledOffsets()
	if len(en) != 1 || en[0] != 4 {
		t.Errorf("enabled after stride-4 window: %v, want [4]", en)
	}
}

func TestRegisteredSpec(t *testing.T) {
	p, err := prefetch.NewL2(prefetch.MustSpec("multi:offsets=2+6,period=32,minscore=4"), mem.Page4K)
	if err != nil {
		t.Fatal(err)
	}
	mp, ok := p.(*Prefetcher)
	if !ok {
		t.Fatalf("built %T", p)
	}
	if en := mp.EnabledOffsets(); len(en) != 2 || en[0] != 2 || en[1] != 6 {
		t.Errorf("configured offsets = %v", en)
	}
	if !mp.PreIssueTagCheck() {
		t.Error("multi should request the pre-issue tag check")
	}
	if _, err := prefetch.NewL2(prefetch.MustSpec("multi:offsets=0"), mem.Page4K); err == nil {
		t.Error("offset 0 accepted")
	}
}

func TestScoringDropsCrossPageCovers(t *testing.T) {
	// Alternate between the last line of one 4KB page and the first line of
	// the next: the numeric distance is 1, but a +1 prefetch from line 63
	// could never issue (page boundary), so offset 1 must not score — the
	// audit may only credit covers the issue path could have provided.
	p := New(mem.Page4K, Params{Offsets: []int{1}, Period: 64, MinScore: 1, MaxIssue: 8, Recent: 128})
	for i := 0; i < 32; i++ {
		p.OnAccess(eligible(63))
		p.OnAccess(eligible(64))
	}
	if en := p.EnabledOffsets(); len(en) != 0 {
		t.Errorf("cross-page +1 pattern kept offset 1 enabled (scores credited covers the page boundary drops)")
	}
	// The same distance inside one page does score.
	p2 := New(mem.Page4K, Params{Offsets: []int{1}, Period: 64, MinScore: 1, MaxIssue: 8, Recent: 128})
	for i := 0; i < 32; i++ {
		p2.OnAccess(eligible(10))
		p2.OnAccess(eligible(11))
	}
	if en := p2.EnabledOffsets(); len(en) != 1 {
		t.Errorf("in-page +1 pattern did not keep offset 1 enabled")
	}
}

func TestAppendEnabledOffsetsDoesNotAllocate(t *testing.T) {
	p := New(mem.Page4M, DefaultParams())
	buf := make([]int, 0, len(DefaultParams().Offsets))
	if avg := testing.AllocsPerRun(1000, func() {
		buf = p.AppendEnabledOffsets(buf[:0])
	}); avg != 0 {
		t.Errorf("AppendEnabledOffsets into a sized buffer allocates %.3f objects/op, want 0", avg)
	}
	if len(buf) != len(DefaultParams().Offsets) {
		t.Errorf("AppendEnabledOffsets returned %v", buf)
	}
}

func TestRetuneMinScore(t *testing.T) {
	p := New(mem.Page4M, Params{Offsets: []int{4}, Period: 64, MinScore: 1, MaxIssue: 8, Recent: 128})
	// A stride-4 stream scores offset 4 on every access after the first.
	line := mem.LineAddr(1 << 20)
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 4
	}
	if en := p.EnabledOffsets(); len(en) != 1 {
		t.Fatalf("stride-4 window with minscore 1 disabled offset 4: %v", en)
	}
	// Raising the bar above the achievable score disables it at the next
	// window boundary; the current window is judged against the new value.
	if err := p.Retune("minscore", "1000"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 4
	}
	if en := p.EnabledOffsets(); len(en) != 0 {
		t.Errorf("minscore 1000 kept offset 4 enabled: %v", en)
	}
	for _, bad := range [][2]string{{"minscore", "x"}, {"minscore", "-1"}, {"nope", "1"}} {
		if err := p.Retune(bad[0], bad[1]); err == nil {
			t.Errorf("Retune(%q, %q) accepted", bad[0], bad[1])
		}
	}
}

func TestRetuneOffsetsRestartsAudit(t *testing.T) {
	p := New(mem.Page4M, Params{Offsets: []int{1, 4}, Period: 64, MinScore: 32, MaxIssue: 8, Recent: 128})
	// Disable everything with a noise window.
	line := mem.LineAddr(1 << 24)
	for i := 0; i < 64; i++ {
		p.OnAccess(eligible(line))
		line += 9973
	}
	if en := p.EnabledOffsets(); len(en) != 0 {
		t.Fatalf("enabled after noise window: %v", en)
	}
	// Replacing the offset set restarts the audit: the new set starts fully
	// enabled with a fresh window, like a freshly constructed prefetcher.
	if err := p.Retune("offsets", "2+16"); err != nil {
		t.Fatal(err)
	}
	en := p.EnabledOffsets()
	if len(en) != 2 || en[0] != 2 || en[1] != 16 {
		t.Fatalf("offsets after retune: %v, want [2 16]", en)
	}
	got := p.OnAccess(eligible(1 << 20))
	if len(got) != 2 || got[0] != (1<<20)+2 || got[1] != (1<<20)+16 {
		t.Errorf("post-retune issue = %v", got)
	}
	for _, bad := range []string{"", "0", "1+0", "1+x"} {
		if err := p.Retune("offsets", bad); err == nil {
			t.Errorf("Retune(offsets, %q) accepted", bad)
		}
	}
}

// TestRetunedStateRoundTrip pins the v3 codec property the adaptive wrapper
// relies on: a retuned instance's state restores into a default-built
// instance — the snapshot carries offsets/minscore, so the restored
// prefetcher behaves and re-saves identically.
func TestRetunedStateRoundTrip(t *testing.T) {
	orig := New(mem.Page4M, DefaultParams())
	for _, kv := range [][2]string{{"offsets", "1+2+4+8+16"}, {"minscore", "6"}} {
		if err := orig.Retune(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	line := mem.LineAddr(1 << 20)
	for i := 0; i < 700; i++ { // mid-window at the default period 256
		orig.OnAccess(eligible(line))
		line += 4
	}
	state, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	restored := New(mem.Page4M, DefaultParams())
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		a, b := orig.OnAccess(eligible(line)), restored.OnAccess(eligible(line))
		if len(a) != len(b) {
			t.Fatalf("access %d: original issued %v, restored %v", i, a, b)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("access %d: original issued %v, restored %v", i, a, b)
			}
		}
		line += 4
	}
	b1, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("retuned state did not round-trip into a default-built prefetcher")
	}
}
