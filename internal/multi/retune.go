package multi

import (
	"fmt"
	"strconv"

	"bopsim/internal/prefetch"
)

var _ prefetch.Retunable = (*Prefetcher)(nil)

// RetunableKeys implements prefetch.Retunable.
func (p *Prefetcher) RetunableKeys() []string { return []string{"minscore", "offsets"} }

// Retune implements prefetch.Retunable.
//
// "minscore" takes effect at the next window boundary (the current window's
// scores are still judged against it) and resets nothing. "offsets" replaces
// the audited offset set and restarts the audit: scores cleared, every
// offset enabled, window count zeroed — the new set starts exactly as a
// freshly constructed prefetcher would.
func (p *Prefetcher) Retune(key, value string) error {
	switch key {
	case "minscore":
		n, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("multi: retune minscore=%q: not an integer", value)
		}
		if n < 0 {
			return fmt.Errorf("multi: retune minscore=%d must be >= 0", n)
		}
		p.params.MinScore = n
		return nil
	case "offsets":
		var err error
		list := prefetch.Values{"offsets": value}.Ints("offsets", nil, &err)
		if err != nil {
			return fmt.Errorf("multi: retune %v", err)
		}
		if len(list) == 0 {
			return fmt.Errorf("multi: retune offsets=%q: empty list", value)
		}
		for _, d := range list {
			if d == 0 {
				return fmt.Errorf("multi: retune offsets=%q: offset 0 is meaningless", value)
			}
		}
		p.params.Offsets = list
		p.scores = resizeInts(p.scores, len(list))
		p.enabled = resizeBools(p.enabled, len(list))
		for i := range p.scores {
			p.scores[i] = 0
			p.enabled[i] = true
		}
		p.count = 0
		return nil
	}
	return fmt.Errorf("multi: parameter %q is not retunable (retunable: minscore|offsets)", key)
}

func resizeInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

func resizeBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}
