package multi

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Spec registration: "multi" joined the prefetcher zoo through the registry
// alone — see the package comment.
func init() {
	def := DefaultParams()
	prefetch.RegisterL2("multi", prefetch.Definition[prefetch.L2Prefetcher]{
		Help:     "multi-offset prefetcher with per-window accuracy gating",
		Build:    buildSpec,
		Validate: func(v prefetch.Values) error { _, err := buildSpec(mem.Page4K, v); return err },
		Defaults: map[string]string{
			"offsets":  prefetch.FormatInts(def.Offsets),
			"period":   fmt.Sprint(def.Period),
			"minscore": fmt.Sprint(def.MinScore),
			"maxissue": fmt.Sprint(def.MaxIssue),
			"recent":   fmt.Sprint(def.Recent),
		},
	})
}

// buildSpec parses and validates multi's spec parameters and constructs the
// prefetcher; the registered Validate hook delegates here (construction is
// cheap), so a spec Normalize accepts is always constructible.
func buildSpec(page mem.PageSize, v prefetch.Values) (prefetch.L2Prefetcher, error) {
	p := DefaultParams()
	var err error
	p.Offsets = v.Ints("offsets", p.Offsets, &err)
	p.Period = v.Int("period", p.Period, &err)
	p.MinScore = v.Int("minscore", p.MinScore, &err)
	p.MaxIssue = v.Int("maxissue", p.MaxIssue, &err)
	p.Recent = v.Int("recent", p.Recent, &err)
	if err != nil {
		return nil, err
	}
	if len(p.Offsets) == 0 {
		return nil, fmt.Errorf("offsets must not be empty")
	}
	for _, d := range p.Offsets {
		if d == 0 {
			return nil, fmt.Errorf("offset 0 is meaningless")
		}
	}
	if p.Period < 1 || p.MaxIssue < 1 || p.Recent < 1 {
		return nil, fmt.Errorf("period, maxissue and recent must be >= 1")
	}
	if p.MinScore < 0 {
		return nil, fmt.Errorf("minscore=%d must be >= 0", p.MinScore)
	}
	return New(page, p), nil
}
