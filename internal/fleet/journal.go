package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The journal is the service's only durable state: one JSON record per
// line, append-only, fsynced per record (submissions and completions are
// rare events, so durability costs nothing measurable). Replay
// reconstructs the queue exactly:
//
//	{"op":"sweep","id":N,"req":{...}}        sweep N accepted
//	{"op":"done","id":N,"state":"done",...}  sweep N finished (output inline)
//	{"op":"worker","addr":"host:port"}       worker registered
//
// A sweep with no "done" record is pending — including one that was
// executing when the coordinator died, which is exactly the requeue
// semantics crash recovery needs. Unparseable trailing bytes (a torn
// final write) are tolerated; unparseable interior lines are not, since
// silently dropping an accepted sweep would be data loss.

const journalName = "journal.jsonl"

// Journal ops.
const (
	opSweep  = "sweep"
	opDone   = "done"
	opWorker = "worker"
)

// record is one journal line.
type record struct {
	Op  string        `json:"op"`
	ID  int           `json:"id,omitempty"`
	Req *SweepRequest `json:"req,omitempty"`
	// Completion fields (op=done).
	State  string `json:"state,omitempty"`
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
	// Registration fields (op=worker).
	Addr string `json:"addr,omitempty"`
}

// openJournal replays an existing journal into the Service's maps and
// opens it for appending. Called once from Open, before the loop starts,
// so no locking is needed.
func (s *Service) openJournal() error {
	path := filepath.Join(s.cfg.Dir, journalName)
	if f, err := os.Open(path); err == nil {
		err := s.replay(f)
		f.Close()
		if err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("fleet: %v", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("fleet: %v", err)
	}
	s.journal = f
	return nil
}

func (s *Service) replay(f *os.File) error {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20) // done records carry full table output
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn final line (crash mid-append) loses at most the record
			// being written, which its caller never saw acknowledged. Torn
			// interior lines mean real corruption: refuse to guess.
			if sc.Scan() {
				return fmt.Errorf("fleet: journal %s line %d corrupt: %v", f.Name(), line, err)
			}
			s.logf("journal: dropping torn final line %d\n", line)
			break
		}
		switch rec.Op {
		case opSweep:
			if rec.Req == nil || rec.ID <= 0 {
				return fmt.Errorf("fleet: journal %s line %d: sweep record without id/req", f.Name(), line)
			}
			req := *rec.Req
			if err := req.validate(); err != nil {
				return fmt.Errorf("fleet: journal %s line %d: %v", f.Name(), line, err)
			}
			s.sweeps[rec.ID] = &sweep{id: rec.ID, req: req, state: StatePending}
			s.order = append(s.order, rec.ID)
			if rec.ID >= s.nextID {
				s.nextID = rec.ID + 1
			}
		case opDone:
			sw, ok := s.sweeps[rec.ID]
			if !ok {
				return fmt.Errorf("fleet: journal %s line %d: completion for unknown sweep %d", f.Name(), line, rec.ID)
			}
			sw.state = rec.State
			sw.output = rec.Output
			sw.errMsg = rec.Error
		case opWorker:
			if addr := normalizeAddr(rec.Addr); addr != "" {
				s.announced[addr] = true
			}
		default:
			return fmt.Errorf("fleet: journal %s line %d: unknown op %q", f.Name(), line, rec.Op)
		}
	}
	return sc.Err()
}

// appendLocked journals one record durably (write + fsync). Callers hold
// s.mu; an error means the record is NOT durable and the caller must not
// act as if it were.
func (s *Service) appendLocked(rec record) error {
	if s.journal == nil {
		return fmt.Errorf("fleet: journal closed")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: %v", err)
	}
	if _, err := s.journal.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("fleet: journal write: %v", err)
	}
	if err := s.journal.Sync(); err != nil {
		return fmt.Errorf("fleet: journal sync: %v", err)
	}
	return nil
}
