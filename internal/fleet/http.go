package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"bopsim/internal/distrib"
	"bopsim/internal/experiments"
)

// maxRequestBytes bounds every request body the service parses. A sweep
// request is a few hundred bytes; a megabyte leaves room for a very long
// workload list while keeping hostile payloads cheap to refuse.
const maxRequestBytes = 1 << 20

// SweepStatus is the GET /v1/sweeps/{id} response (and the queue entries
// of GET /v1/status).
type SweepStatus struct {
	ID    int          `json:"id"`
	Req   SweepRequest `json:"request"`
	State string       `json:"state"`
	// Position is the sweep's 1-based place in the pending queue (the
	// order claimNext would grant with no further submissions), 0 unless
	// pending.
	Position int `json:"position,omitempty"`
	// Progress is the live scheduler snapshot while running.
	Progress *experiments.ProgressStatus `json:"progress,omitempty"`
	// Output is the rendered table text once done — byte-identical to the
	// same target run locally by cmd/experiments.
	Output string `json:"output,omitempty"`
	Error  string `json:"error,omitempty"`
}

// FleetStatus is the GET /v1/status response: the fleet-wide live view.
type FleetStatus struct {
	Workers []distrib.WorkerState `json:"workers"`
	// Slots is the pool's current execution slot count.
	Slots int `json:"slots"`
	// Running is the executing sweep's status (nil when idle), with the
	// Runner's live progress embedded.
	Running *SweepStatus `json:"running,omitempty"`
	// Queue lists pending sweeps in grant order.
	Queue []SweepStatus `json:"queue"`
	// Counts by state over the journal's whole history.
	Pending int `json:"pending"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// Handler returns the coordinator's HTTP API:
//
//	GET  /healthz         liveness probe
//	POST /v1/sweeps       submit a SweepRequest, respond {"id": N}
//	GET  /v1/sweeps/{id}  one sweep's status/output (SweepStatus)
//	GET  /v1/status       fleet-wide live view (FleetStatus)
//	POST /v1/workers      register a worker: {"addr": "host:port"}
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweep)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/workers", s.handleWorker)
	return mux
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Submit(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]int{"id": id})
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad sweep id %q", r.PathValue("id")))
		return
	}
	st, ok := s.sweepStatus(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no sweep %d", id))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Service) handleWorker(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Addr string `json:"addr"`
	}
	if err := decodeJSON(w, r, &body); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	pooled, err := s.RegisterWorker(body.Addr)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"pooled": pooled})
}

// sweepStatus snapshots one sweep, attaching live progress when it is
// the one running.
func (s *Service) sweepStatus(id int) (SweepStatus, bool) {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	if !ok {
		s.mu.Unlock()
		return SweepStatus{}, false
	}
	st := SweepStatus{ID: sw.id, Req: sw.req, State: sw.state, Output: sw.output, Error: sw.errMsg}
	if sw.state == StatePending {
		st.Position = s.positionLocked(id)
	}
	runner := s.runner
	runningThis := s.running == id && runner != nil
	s.mu.Unlock()
	if runningThis {
		p := runner.Status()
		st.Progress = &p
	}
	return st, true
}

// positionLocked computes a pending sweep's 1-based grant position by
// simulating the fair-share policy over the current queue. Callers hold
// s.mu.
func (s *Service) positionLocked(id int) int {
	granted := make(map[int]bool)
	rrLast := s.rrLast
	for pos := 1; ; pos++ {
		next := s.peekNextLocked(granted, &rrLast)
		if next == 0 {
			return 0 // unreachable while id is pending
		}
		if next == id {
			return pos
		}
		granted[next] = true
	}
}

// peekNextLocked is claimNext's selection rule without the state
// mutation: pending sweeps minus `granted`, strict priority, fair-share
// round-robin via *rrLast (advanced), submission order within submitter.
func (s *Service) peekNextLocked(granted map[int]bool, rrLast *string) int {
	best := 0
	first := true
	for _, sid := range s.order {
		sw := s.sweeps[sid]
		if sw.state != StatePending || granted[sid] {
			continue
		}
		if first || sw.req.Priority > best {
			best = sw.req.Priority
			first = false
		}
	}
	if first {
		return 0
	}
	bySub := make(map[string]int)
	var subs []string
	for _, sid := range s.order {
		sw := s.sweeps[sid]
		if sw.state != StatePending || granted[sid] || sw.req.Priority != best {
			continue
		}
		if _, ok := bySub[sw.req.Submitter]; !ok {
			bySub[sw.req.Submitter] = sid
			subs = append(subs, sw.req.Submitter)
		}
	}
	sort.Strings(subs)
	grant := subs[0]
	for _, sub := range subs {
		if sub > *rrLast {
			grant = sub
			break
		}
	}
	*rrLast = grant
	return bySub[grant]
}

// Status builds the fleet-wide view.
func (s *Service) Status() FleetStatus {
	st := FleetStatus{
		Workers: s.pool.WorkerStates(),
		Slots:   s.pool.Slots(),
	}
	s.mu.Lock()
	runningID := s.running
	type pendingEntry struct{ id, pos int }
	var pending []pendingEntry
	for _, id := range s.order {
		switch s.sweeps[id].state {
		case StatePending:
			st.Pending++
			pending = append(pending, pendingEntry{id, s.positionLocked(id)})
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		}
	}
	s.mu.Unlock()
	if runningID != 0 {
		if sw, ok := s.sweepStatus(runningID); ok {
			st.Running = &sw
		}
	}
	// Queue in grant order, output omitted (pending sweeps have none).
	for i := 1; i <= len(pending); i++ {
		for _, p := range pending {
			if p.pos == i {
				if sw, ok := s.sweepStatus(p.id); ok {
					st.Queue = append(st.Queue, sw)
				}
			}
		}
	}
	return st
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return fmt.Errorf("request body exceeds %d bytes", maxRequestBytes)
		}
		return fmt.Errorf("decoding request: %v", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
