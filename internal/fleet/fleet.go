// Package fleet is the long-lived coordinator service behind
// cmd/bofleetd: a persistent sweep queue (journaled to disk, replayed on
// restart) executed one sweep at a time on a distrib.Pool whose workers
// register themselves and are revived after crashes, behind a small HTTP
// API (POST /v1/sweeps, GET /v1/sweeps/{id}, GET /v1/status,
// POST /v1/workers).
//
// The service leans on the invariants the lower layers already provide.
// Sweeps are rendered through experiments.RenderTarget — the exact
// dispatch cmd/experiments uses — against a Runner wired to the shared
// result cache, so a sweep's output bytes are those of a local serial
// run no matter how many workers executed it, died during it, or were
// revived mid-way. That same determinism is what makes crash recovery
// trivial: a sweep interrupted by a coordinator crash has no completion
// record in the journal, is requeued on restart, and re-runs against the
// warm cache — recomputing only what was genuinely lost.
//
// See DESIGN.md §10 ("Fleet service") for the journal format, the
// registration/probe/seed protocol and the fair-share policy.
package fleet

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"bopsim/internal/distrib"
	"bopsim/internal/experiments"
	"bopsim/internal/trace"
)

// Config wires a Service.
type Config struct {
	// Dir is the service's state directory: the sweep journal
	// (journal.jsonl) lives here, and it anchors the default CacheDir.
	Dir string
	// CacheDir is the persistent result cache every sweep's Runner reads
	// and writes (the same format `experiments -cache` uses, so a cache
	// can be shared with local runs). Empty means "<Dir>/cache".
	CacheDir string
	// ArtifactDirs hold the coordinator's trace/checkpoint files, resolved
	// by content hash when a worker 412s and needs seeding. Workload specs
	// that name files by path ("file:path=...") are seedable without this:
	// the pool remembers the path↔hash mapping from job serialization.
	ArtifactDirs []string
	// Retry is the pool's failover policy. ProbeInterval <= 0 is
	// overridden to 2s: a fleet service without revival would contradict
	// its reason to exist.
	Retry distrib.RetryPolicy
	// Log, when non-nil, receives one line per state change.
	Log io.Writer
}

// Sweep states.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// SweepRequest is the POST /v1/sweeps payload: one renderable target plus
// the Runner knobs that shape its job set. The zero value of every
// optional field matches the cmd/experiments default, so a sweep
// submitted with just {"target":"fig6"} renders the same bytes as a bare
// `experiments -fig6`.
type SweepRequest struct {
	// Target names what to render: "table1", "table2", "fig2".."fig13",
	// "zoo" or "wzoo" (experiments.TargetNames).
	Target string `json:"target"`
	// Quick selects the representative config subset (and fig8's sparser
	// offset sample), exactly like `experiments -quick`.
	Quick bool `json:"quick,omitempty"`
	// Instructions per simulation; 0 means the CLI default (300000).
	Instructions uint64 `json:"instructions,omitempty"`
	// Seed for synthetic workloads; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Workloads optionally overrides the row set: one core-0 workload
	// spec per table row. Empty means the 29 paper benchmarks (trimmed to
	// the quick subset when Quick is set, like the CLI).
	Workloads []string `json:"workloads,omitempty"`
	// Warmup instructions before the measured region (stats reset at the
	// barrier), like `experiments -warmup`.
	Warmup uint64 `json:"warmup,omitempty"`
	// Submitter is the fair-share identity; empty means "anon". The queue
	// round-robins across submitters so one tenant's backlog cannot
	// starve another's.
	Submitter string `json:"submitter,omitempty"`
	// Priority orders the queue: higher runs first, fair-share applies
	// among equal priorities. 0 is the default tier.
	Priority int `json:"priority,omitempty"`
}

// defaultInstructions mirrors cmd/experiments' -n default.
const defaultInstructions = 300_000

func (req *SweepRequest) validate() error {
	if !experiments.ValidTarget(req.Target) {
		return fmt.Errorf("unknown target %q (want one of %v)", req.Target, experiments.TargetNames())
	}
	for _, w := range req.Workloads {
		sp, err := trace.ParseSpec(w)
		if err == nil {
			// Normalize checks the generator registry and parameter values,
			// so an unknown generator is refused at submit time, not
			// discovered when the sweep finally runs.
			_, err = trace.Normalize(sp)
		}
		if err != nil {
			return fmt.Errorf("workload %q: %v", w, err)
		}
	}
	if req.Instructions == 0 {
		req.Instructions = defaultInstructions
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	if req.Submitter == "" {
		req.Submitter = "anon"
	}
	return nil
}

// sweep is one queued/completed sweep. All fields are guarded by
// Service.mu once the sweep is registered.
type sweep struct {
	id     int
	req    SweepRequest
	state  string
	output string // rendered table bytes, once done
	errMsg string // failure reason, once failed
}

// Service is the coordinator: a journal-backed sweep queue, a worker
// pool, and one executor goroutine draining the queue.
type Service struct {
	cfg  Config
	pool *distrib.Pool

	mu        sync.Mutex
	journal   *os.File
	sweeps    map[int]*sweep
	order     []int // submission order (= journal order), for queue views
	nextID    int
	rrLast    string          // fair-share cursor: last submitter granted a run
	announced map[string]bool // worker addrs ever registered (journal-backed)
	running   int             // sweep id currently executing, 0 when idle
	runner    *experiments.Runner

	kick chan struct{} // poked on submit/registration to wake the loop
	quit chan struct{}
	done chan struct{} // loop exited
}

// Open replays the journal under cfg.Dir (creating the directory on first
// use) and returns a Service ready to Start. Sweeps with no completion
// record — including one that was mid-run when the previous coordinator
// died — come back pending; completed sweeps come back with their output.
func Open(cfg Config) (*Service, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("fleet: Config.Dir is required")
	}
	if cfg.CacheDir == "" {
		cfg.CacheDir = filepath.Join(cfg.Dir, "cache")
	}
	if cfg.Retry.ProbeInterval <= 0 {
		cfg.Retry.ProbeInterval = 2 * time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: %v", err)
	}
	s := &Service{
		cfg:       cfg,
		pool:      distrib.NewPool(cfg.Retry),
		sweeps:    make(map[int]*sweep),
		nextID:    1,
		announced: make(map[string]bool),
		kick:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	s.pool.ArtifactSource = artifactSource(cfg.ArtifactDirs)
	if err := s.openJournal(); err != nil {
		s.pool.Close()
		return nil, err
	}
	pending := 0
	for _, sw := range s.sweeps {
		if sw.state == StatePending {
			pending++
		}
	}
	s.logf("journal replayed: %d sweeps (%d pending), %d known workers\n",
		len(s.sweeps), pending, len(s.announced))
	return s, nil
}

// Start launches the executor loop. Call once.
func (s *Service) Start() { go s.loop() }

// Close stops the executor loop and the pool's prober. A sweep executing
// right now is NOT waited for: its goroutine dies with the process, and —
// having no completion record — the sweep is requeued on the next Open,
// where the result cache makes the re-run cheap. That is the same
// recovery path a crash takes, so shutdown needs no second one.
func (s *Service) Close() {
	close(s.quit)
	s.pool.Close()
	select {
	case <-s.done:
	case <-time.After(time.Second):
		// Loop is inside a sweep; abandon it (see above).
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
}

// Pool exposes the worker pool (status views, tests).
func (s *Service) Pool() *distrib.Pool { return s.pool }

// Submit validates, journals and enqueues one sweep, returning its id.
func (s *Service) Submit(req SweepRequest) (int, error) {
	if err := req.validate(); err != nil {
		return 0, err
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	sw := &sweep{id: id, req: req, state: StatePending}
	if err := s.appendLocked(record{Op: opSweep, ID: id, Req: &req}); err != nil {
		s.nextID-- // journal write failed: the sweep was never accepted
		s.mu.Unlock()
		return 0, err
	}
	s.sweeps[id] = sw
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.logf("sweep %d submitted: %s by %s (priority %d)\n", id, req.Target, req.Submitter, req.Priority)
	s.poke()
	return id, nil
}

// RegisterWorker records a worker address (journaled, so registration
// survives coordinator restarts) and tries to pool it immediately.
// pooled reports whether the worker is in the rotation right now; a
// false with nil error means the dial failed and the connect loop will
// keep retrying.
func (s *Service) RegisterWorker(addr string) (pooled bool, err error) {
	addr = normalizeAddr(addr)
	if addr == "" {
		return false, fmt.Errorf("empty worker address")
	}
	s.mu.Lock()
	if !s.announced[addr] {
		if err := s.appendLocked(record{Op: opWorker, Addr: addr}); err != nil {
			s.mu.Unlock()
			return false, err
		}
		s.announced[addr] = true
	}
	s.mu.Unlock()
	added, dialErr := s.pool.AddWorker(addr)
	if dialErr != nil {
		s.logf("worker %s registered but not reachable yet: %v\n", addr, dialErr)
		return false, nil
	}
	if added {
		s.logf("worker %s joined the pool\n", addr)
	}
	s.poke()
	return true, nil
}

func normalizeAddr(addr string) string {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimPrefix(addr, "http://")
	addr = strings.TrimPrefix(addr, "https://")
	return strings.TrimSuffix(addr, "/")
}

func (s *Service) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// loop is the executor: connect registered workers, run the next sweep,
// sleep until poked (or a short tick, which doubles as the connect retry
// timer for workers that were registered while unreachable).
func (s *Service) loop() {
	defer close(s.done)
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	for {
		s.connectWorkers()
		if sw := s.claimNext(); sw != nil {
			s.runSweep(sw)
			continue
		}
		select {
		case <-s.quit:
			return
		case <-s.kick:
		case <-tick.C:
		}
	}
}

// connectWorkers re-dials every registered address the pool does not hold
// yet. Addresses already pooled are the pool prober's job (dead ones get
// revived there); this loop only covers workers that registered before
// they were reachable, or that were replayed from the journal while down.
func (s *Service) connectWorkers() {
	pooled := make(map[string]bool)
	for _, ws := range s.pool.WorkerStates() {
		pooled[ws.Addr] = true
	}
	s.mu.Lock()
	var missing []string
	for addr := range s.announced {
		if !pooled[addr] {
			missing = append(missing, addr)
		}
	}
	s.mu.Unlock()
	sort.Strings(missing)
	for _, addr := range missing {
		if added, err := s.pool.AddWorker(addr); err == nil && added {
			s.logf("worker %s joined the pool\n", addr)
		}
	}
}

// claimNext picks the next sweep to run: strict priority first, then
// fair-share round-robin across submitters within the top priority tier
// (cursor rrLast), then submission order within a submitter — so two
// tenants flooding the queue get alternating grants, and neither starves.
func (s *Service) claimNext() *sweep {
	s.mu.Lock()
	defer s.mu.Unlock()
	best := 0
	first := true
	for _, id := range s.order {
		sw := s.sweeps[id]
		if sw.state != StatePending {
			continue
		}
		if first || sw.req.Priority > best {
			best = sw.req.Priority
			first = false
		}
	}
	if first {
		return nil
	}
	// Submitters with pending work in the top tier, sorted for a stable
	// round-robin order.
	bySub := make(map[string]*sweep)
	for _, id := range s.order {
		sw := s.sweeps[id]
		if sw.state != StatePending || sw.req.Priority != best {
			continue
		}
		if _, ok := bySub[sw.req.Submitter]; !ok {
			bySub[sw.req.Submitter] = sw // oldest pending per submitter
		}
	}
	subs := make([]string, 0, len(bySub))
	for sub := range bySub {
		subs = append(subs, sub)
	}
	sort.Strings(subs)
	grant := subs[0]
	for _, sub := range subs {
		if sub > s.rrLast {
			grant = sub
			break
		}
	}
	s.rrLast = grant
	sw := bySub[grant]
	sw.state = StateRunning
	s.running = sw.id
	return sw
}

// runSweep executes one sweep and journals its completion. A panic from
// the figure builders (RunJobs failures surface that way) fails the
// sweep instead of the daemon.
func (s *Service) runSweep(sw *sweep) {
	r := s.runnerFor(sw.req)
	s.mu.Lock()
	s.runner = r
	s.mu.Unlock()
	s.logf("sweep %d running: %s (%d slots)\n", sw.id, sw.req.Target, s.pool.Slots())
	var buf bytes.Buffer
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("%v", p)
			}
		}()
		return experiments.RenderTarget(r, sw.req.Target, sw.req.Quick, &buf)
	}()
	s.mu.Lock()
	s.runner = nil
	s.running = 0
	if err != nil {
		sw.state = StateFailed
		sw.errMsg = err.Error()
	} else {
		sw.state = StateDone
		sw.output = buf.String()
	}
	jerr := s.appendLocked(record{Op: opDone, ID: sw.id, State: sw.state, Output: sw.output, Error: sw.errMsg})
	s.mu.Unlock()
	if jerr != nil {
		s.logf("sweep %d: journaling completion failed: %v\n", sw.id, jerr)
	}
	s.logf("sweep %d %s\n", sw.id, sw.state)
}

// runnerFor builds the sweep's Runner exactly as cmd/experiments would
// for the same flags — that equivalence is the byte-identity argument.
func (s *Service) runnerFor(req SweepRequest) *experiments.Runner {
	configs := experiments.AllConfigs()
	if req.Quick {
		configs = experiments.QuickConfigs()
	}
	r := experiments.NewRunner(req.Instructions, configs)
	r.Seed = req.Seed
	r.CacheDir = s.cfg.CacheDir
	r.Warmup = req.Warmup
	r.Log = s.cfg.Log
	if len(req.Workloads) > 0 {
		r.Benchmarks = nil
		for _, w := range req.Workloads {
			r.Benchmarks = append(r.Benchmarks, trace.MustSpec(w))
		}
	} else if req.Quick {
		r.Benchmarks = experiments.QuickBenchmarks()
	}
	if s.pool.Slots() > 0 {
		r.Backend = s.pool
	}
	return r
}

// artifactSource resolves a content hash against the coordinator's
// artifact directories: the pool consults it when a worker 412s and the
// pool's own ship-time records don't cover the hash. TraceContentSHA is
// memoized by size+mtime, so repeated scans re-hash only changed files.
func artifactSource(dirs []string) func(string) (string, bool) {
	return func(sha string) (string, bool) {
		for _, dir := range dirs {
			files, err := filepath.Glob(filepath.Join(dir, "*"))
			if err != nil {
				continue
			}
			for _, f := range files {
				if st, err := os.Stat(f); err != nil || st.IsDir() {
					continue
				}
				if experiments.TraceContentSHA(f) == sha {
					return f, true
				}
			}
		}
		return "", false
	}
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Log == nil {
		return
	}
	fmt.Fprintf(s.cfg.Log, "bofleetd: "+format, args...)
}
