package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bopsim/internal/distrib"
	"bopsim/internal/experiments"
	"bopsim/internal/trace"
)

// tinyReq is a sweep small enough to execute inside a unit test: one
// quick fig2 over two synthetic benchmarks at 20k instructions.
func tinyReq(submitter string) SweepRequest {
	return SweepRequest{
		Target:       "fig2",
		Quick:        true,
		Instructions: 20_000,
		Workloads:    []string{"416.gamess", "456.hmmer"},
		Submitter:    submitter,
	}
}

func openService(t *testing.T, dir string) *Service {
	t.Helper()
	svc, err := Open(Config{Dir: dir, Retry: distrib.RetryPolicy{Backoff: time.Millisecond, ProbeInterval: 10 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func sweepState(svc *Service, id int) (state, output, errMsg string) {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	sw := svc.sweeps[id]
	if sw == nil {
		return "", "", ""
	}
	return sw.state, sw.output, sw.errMsg
}

func waitDone(t *testing.T, svc *Service, id int) string {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		state, output, errMsg := sweepState(svc, id)
		switch state {
		case StateDone:
			return output
		case StateFailed:
			t.Fatalf("sweep %d failed: %s", id, errMsg)
		}
		time.Sleep(10 * time.Millisecond)
	}
	state, _, _ := sweepState(svc, id)
	t.Fatalf("sweep %d still %s after 60s", id, state)
	return ""
}

// localRender reproduces what runnerFor builds, minus the pool — the
// serial baseline every fleet execution must match byte for byte.
func localRender(t *testing.T, req SweepRequest, cacheDir string) string {
	t.Helper()
	if err := req.validate(); err != nil {
		t.Fatal(err)
	}
	configs := experiments.AllConfigs()
	if req.Quick {
		configs = experiments.QuickConfigs()
	}
	r := experiments.NewRunner(req.Instructions, configs)
	r.Seed = req.Seed
	r.CacheDir = cacheDir
	r.Warmup = req.Warmup
	if len(req.Workloads) > 0 {
		r.Benchmarks = nil
		for _, w := range req.Workloads {
			r.Benchmarks = append(r.Benchmarks, trace.MustSpec(w))
		}
	}
	var buf bytes.Buffer
	if err := experiments.RenderTarget(r, req.Target, req.Quick, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSubmitValidation(t *testing.T) {
	svc := openService(t, t.TempDir())
	defer svc.Close()
	if _, err := svc.Submit(SweepRequest{Target: "fig99"}); err == nil {
		t.Error("unknown target accepted")
	}
	if _, err := svc.Submit(SweepRequest{Target: "fig6", Workloads: []string{"no-such-gen:x=1"}}); err == nil {
		t.Error("invalid workload spec accepted")
	}
}

// TestSweepOutputMatchesLocal: a sweep executed by the service renders
// the same bytes as a serial local run with the same parameters.
func TestSweepOutputMatchesLocal(t *testing.T) {
	svc := openService(t, t.TempDir())
	defer svc.Close()
	svc.Start()
	id, err := svc.Submit(tinyReq("alice"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc, id)
	want := localRender(t, tinyReq("alice"), t.TempDir())
	if got != want {
		t.Errorf("fleet output diverged from local run\nlocal:\n%s\nfleet:\n%s", want, got)
	}
}

// TestJournalReplay: accepted-but-unfinished sweeps come back pending
// after a restart (the crash/shutdown recovery path), finished sweeps
// come back with their output, and IDs keep counting from where they
// stopped.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	svc := openService(t, dir)
	svc.Start()
	id1, err := svc.Submit(tinyReq("alice"))
	if err != nil {
		t.Fatal(err)
	}
	output := waitDone(t, svc, id1)
	svc.Close()

	// Second generation: submit two sweeps but never Start the executor —
	// the "coordinator died mid-queue" state.
	svc = openService(t, dir)
	id2, err := svc.Submit(tinyReq("alice"))
	if err != nil {
		t.Fatal(err)
	}
	id3, err := svc.Submit(SweepRequest{Target: "fig6", Submitter: "bob", Priority: 3})
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()

	// Third generation: replay must restore everything.
	svc = openService(t, dir)
	defer svc.Close()
	if state, out, _ := sweepState(svc, id1); state != StateDone || out != output {
		t.Errorf("sweep %d after replay: state=%s, output preserved=%v", id1, state, out == output)
	}
	for _, id := range []int{id2, id3} {
		if state, _, _ := sweepState(svc, id); state != StatePending {
			t.Errorf("unfinished sweep %d after replay: state=%s, want pending", id, state)
		}
	}
	svc.mu.Lock()
	sw3 := svc.sweeps[id3]
	if sw3.req.Priority != 3 || sw3.req.Submitter != "bob" {
		t.Errorf("sweep %d request not preserved: %+v", id3, sw3.req)
	}
	svc.mu.Unlock()
	id4, err := svc.Submit(tinyReq("carol"))
	if err != nil {
		t.Fatal(err)
	}
	if id4 != id3+1 {
		t.Errorf("post-replay id = %d, want %d", id4, id3+1)
	}
}

// TestFairShare drives claimNext by hand: two submitters flooding the
// queue get alternating grants (no starvation), and a higher-priority
// sweep preempts the whole tier.
func TestFairShare(t *testing.T) {
	svc := openService(t, t.TempDir())
	defer svc.Close()
	// alice: 3 sweeps, bob: 2 — all priority 0, submitted alice-first.
	var ids []int
	for i, sub := range []string{"alice", "alice", "alice", "bob", "bob"} {
		req := tinyReq(sub)
		req.Seed = uint64(i + 1) // distinct requests, irrelevant to scheduling
		id, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	finish := func(sw *sweep) {
		svc.mu.Lock()
		sw.state = StateDone
		svc.running = 0
		svc.mu.Unlock()
	}
	grant := func() *sweep {
		sw := svc.claimNext()
		if sw == nil {
			t.Fatal("claimNext returned nil with pending sweeps")
		}
		return sw
	}
	// Expected: alice's backlog does not run back to back — grants
	// alternate a,b,a,b,a by submission order within each submitter.
	wantOrder := []int{ids[0], ids[3], ids[1], ids[4], ids[2]}
	for i, want := range wantOrder[:3] {
		sw := grant()
		if sw.id != want {
			t.Fatalf("grant %d = sweep %d (%s), want %d", i, sw.id, sw.req.Submitter, want)
		}
		finish(sw)
	}
	// carol arrives late with priority 5: she preempts the rest of the
	// tier-0 queue.
	hi := tinyReq("carol")
	hi.Priority = 5
	hiID, err := svc.Submit(hi)
	if err != nil {
		t.Fatal(err)
	}
	sw := grant()
	if sw.id != hiID {
		t.Fatalf("priority sweep not granted first: got %d, want %d", sw.id, hiID)
	}
	finish(sw)
	// The cursor now reads "carol"; both remaining submitters sort before
	// it, so the round-robin wraps to alice, then bob.
	wantOrder[3], wantOrder[4] = ids[2], ids[4]
	for i, want := range wantOrder[3:] {
		sw := grant()
		if sw.id != want {
			t.Fatalf("post-priority grant %d = sweep %d, want %d", i, sw.id, want)
		}
		finish(sw)
	}
	if sw := svc.claimNext(); sw != nil {
		t.Fatalf("claimNext on empty queue returned sweep %d", sw.id)
	}
}

// TestWorkerExecutionMatchesLocal: a sweep executed on registered
// workers — including one that must be artifact-seeded before it can
// run its trace job — renders the serial local bytes.
func TestWorkerExecutionMatchesLocal(t *testing.T) {
	// A real trace file the coordinator holds and the worker lacks.
	srcDir := t.TempDir()
	tracePath := filepath.Join(srcDir, "row.trace")
	gen, err := trace.NewWorkload("429.mcf", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(tracePath, gen, 30_000); err != nil {
		t.Fatal(err)
	}

	emptyDir := t.TempDir() // the worker's empty, seedable trace dir
	w1 := httptest.NewServer((&distrib.Server{Capacity: 2, TraceDirs: []string{emptyDir}}).Handler())
	t.Cleanup(w1.Close)
	w2 := httptest.NewServer((&distrib.Server{Capacity: 2}).Handler())
	t.Cleanup(w2.Close)

	svc, err := Open(Config{
		Dir:          t.TempDir(),
		ArtifactDirs: []string{srcDir},
		Retry:        distrib.RetryPolicy{Backoff: time.Millisecond, ProbeInterval: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	for _, w := range []*httptest.Server{w1, w2} {
		if pooled, err := svc.RegisterWorker(w.URL); err != nil || !pooled {
			t.Fatalf("RegisterWorker(%s): pooled=%v err=%v", w.URL, pooled, err)
		}
	}
	if svc.Pool().Slots() != 4 {
		t.Fatalf("pool has %d slots, want 4", svc.Pool().Slots())
	}
	svc.Start()

	req := tinyReq("alice")
	req.Workloads = []string{"416.gamess", "file:path=" + tracePath}
	id, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc, id)
	want := localRender(t, req, t.TempDir())
	if got != want {
		t.Errorf("fleet-on-workers output diverged from local run\nlocal:\n%s\nfleet:\n%s", want, got)
	}
	// Seeding really happened: the trace landed in the worker's dir under
	// its content hash.
	sha := trace.ContentSHA(tracePath)
	if _, err := os.Stat(filepath.Join(emptyDir, sha)); err != nil {
		t.Errorf("trace not seeded to worker: %v", err)
	}
}

// TestHTTPAPI exercises the wire surface end to end: submit, poll,
// status, worker registration.
func TestHTTPAPI(t *testing.T) {
	svc := openService(t, t.TempDir())
	defer svc.Close()
	api := httptest.NewServer(svc.Handler())
	t.Cleanup(api.Close)

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(api.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := post("/v1/sweeps", `{"target":"fig6","submitter":"alice"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var created struct{ ID int }
	if err := json.Unmarshal(body, &created); err != nil || created.ID != 1 {
		t.Fatalf("submit response %q (err %v)", body, err)
	}
	if resp, body := post("/v1/sweeps", `{"target":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad target: %d %s", resp.StatusCode, body)
	}
	// Second sweep from bob: queue positions must reflect fair-share, not
	// raw submission order (both are position 1-of-their-tenant here).
	if resp, _ := post("/v1/sweeps", `{"target":"fig6","submitter":"bob"}`); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}

	get := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(api.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}
	var st SweepStatus
	if code := get("/v1/sweeps/1", &st); code != http.StatusOK {
		t.Fatalf("GET sweep: %d", code)
	}
	if st.State != StatePending || st.Req.Submitter != "alice" || st.Position != 1 {
		t.Errorf("sweep 1 status: %+v", st)
	}
	if code := get("/v1/sweeps/99", nil); code != http.StatusNotFound {
		t.Errorf("unknown sweep: %d", code)
	}
	var fs FleetStatus
	if code := get("/v1/status", &fs); code != http.StatusOK {
		t.Fatalf("GET status: %d", code)
	}
	if fs.Pending != 2 || len(fs.Queue) != 2 || fs.Slots != 0 {
		t.Errorf("fleet status: pending=%d queue=%d slots=%d", fs.Pending, len(fs.Queue), fs.Slots)
	}

	// Worker registration over the wire: a live worker pools immediately, a
	// dead address registers but reports pooled=false.
	w := httptest.NewServer((&distrib.Server{Capacity: 1}).Handler())
	t.Cleanup(w.Close)
	var reg struct{ Pooled bool }
	if resp, body := post("/v1/workers", fmt.Sprintf(`{"addr":%q}`, w.URL)); resp.StatusCode != http.StatusOK {
		t.Fatalf("register worker: %d %s", resp.StatusCode, body)
	} else if json.Unmarshal(body, &reg); !reg.Pooled {
		t.Errorf("live worker not pooled: %s", body)
	}
	if resp, body := post("/v1/workers", `{"addr":"127.0.0.1:1"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("register dead worker: %d %s", resp.StatusCode, body)
	} else if reg.Pooled = true; func() bool { json.Unmarshal(body, &reg); return reg.Pooled }() {
		t.Errorf("dead worker reported pooled: %s", body)
	}
	if code := get("/v1/status", &fs); code != http.StatusOK || fs.Slots != 1 {
		t.Errorf("status after registration: code=%d slots=%d", code, fs.Slots)
	}
}

// TestDeadWorkerRevivalThroughService: a registered worker that goes
// down is revived by the pool prober, and the next sweep uses it.
func TestDeadWorkerRevivalThroughService(t *testing.T) {
	handler := (&distrib.Server{Capacity: 2}).Handler()
	w := httptest.NewServer(handler)
	t.Cleanup(w.Close)
	svc := openService(t, t.TempDir())
	defer svc.Close()
	if pooled, err := svc.RegisterWorker(w.URL); err != nil || !pooled {
		t.Fatalf("register: pooled=%v err=%v", pooled, err)
	}
	// Simulate the crash by marking dead directly (the distrib tests cover
	// the transport side); the prober must bring it back.
	pool := svc.Pool()
	states := pool.WorkerStates()
	if len(states) != 1 || !states[0].Alive {
		t.Fatalf("worker states: %+v", states)
	}
	svc.Start()
	id, err := svc.Submit(tinyReq("alice"))
	if err != nil {
		t.Fatal(err)
	}
	got := waitDone(t, svc, id)
	want := localRender(t, tinyReq("alice"), t.TempDir())
	if got != want {
		t.Errorf("sweep on registered worker diverged from local")
	}
}
