package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"bopsim/internal/prefetch"
	"bopsim/internal/sim"
	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

// renderTable returns a table's exact output bytes.
func renderTable(t *testing.T, tb *stats.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	tb.Render(&buf)
	return buf.Bytes()
}

// TestCheckpointedSweepMatchesSerial is the scheduler-level determinism
// gate: a sweep executed with warmup sharing (grouped warmup legs +
// checkpoint forking) must render byte-identical tables to the same sweep
// executed straight.
func TestCheckpointedSweepMatchesSerial(t *testing.T) {
	serial := tinyRunner()
	serial.Instructions = 20_000
	serial.Warmup = 15_000
	want := renderTable(t, serial.Fig6())

	ckpt := tinyRunner()
	ckpt.Instructions = 20_000
	ckpt.Warmup = 15_000
	ckpt.Checkpoint = true
	ckpt.CheckpointDir = t.TempDir()
	got := renderTable(t, ckpt.Fig6())

	if !bytes.Equal(got, want) {
		t.Errorf("checkpointed sweep rendered different bytes\nserial:\n%s\ncheckpointed:\n%s", want, got)
	}
	// The sharing actually happened: one snapshot per (benchmark, config)
	// group on disk.
	entries, err := os.ReadDir(ckpt.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("%d snapshots on disk, want 2 (one per benchmark)", len(entries))
	}
}

// TestCheckpointReuseAcrossRunners checks a second sweep over the same
// directory reuses the cached snapshots instead of re-running warmup legs.
func TestCheckpointReuseAcrossRunners(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Runner {
		r := tinyRunner()
		r.Benchmarks = []trace.Spec{{Name: "416.gamess"}}
		r.Instructions = 10_000
		r.Warmup = 10_000
		r.Checkpoint = true
		r.CheckpointDir = dir
		return r
	}
	mk().Fig6()
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no snapshots written (%v)", err)
	}
	info, err := entries[0].Info()
	if err != nil {
		t.Fatal(err)
	}
	before := info.ModTime()

	mk().Fig6()
	entries2, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	info2, err := entries2[0].Info()
	if err != nil {
		t.Fatal(err)
	}
	if !info2.ModTime().Equal(before) {
		t.Error("second sweep rewrote a cached snapshot instead of reusing it")
	}
}

// TestWarmupKeyExcludesSweptSpecs checks the grouping key: prefetcher
// variants share one warmup leg; anything shaping the warmed machine does
// not.
func TestWarmupKeyExcludesSweptSpecs(t *testing.T) {
	base := sim.DefaultOptions("433.milc")
	base.Warmup = 10_000
	baseKey, err := WarmupKey(base)
	if err != nil {
		t.Fatal(err)
	}

	shared := map[string]func(*sim.Options){
		"L2PF":         func(o *sim.Options) { o.L2PF = sim.PFBO },
		"L1PF":         func(o *sim.Options) { o.L1PF = prefetch.Spec{Name: "none"} },
		"Instructions": func(o *sim.Options) { o.Instructions = 77 },
		"MaxCycles":    func(o *sim.Options) { o.MaxCycles = 123_456_789 },
	}
	for field, mutate := range shared {
		o := base
		mutate(&o)
		if k, err := WarmupKey(o); err != nil || k != baseKey {
			t.Errorf("changing %s splits the warmup group (key %.12s vs %.12s, err %v)", field, k, baseKey, err)
		}
	}
	splitting := map[string]func(*sim.Options){
		"Workload": func(o *sim.Options) { o.Workloads = []trace.Spec{{Name: "470.lbm"}} },
		"Seed":     func(o *sim.Options) { o.Seed = 9 },
		"Cores":    func(o *sim.Options) { o.Cores = 2 },
		"Warmup":   func(o *sim.Options) { o.Warmup = 5_000 },
		"WarmupPF": func(o *sim.Options) { o.WarmupPF = true },
		"L3Policy": func(o *sim.Options) { o.L3Policy = "LRU" },
	}
	for field, mutate := range splitting {
		o := base
		mutate(&o)
		if k, err := WarmupKey(o); err != nil || k == baseKey {
			t.Errorf("changing %s does not split the warmup group (err %v)", field, err)
		}
	}
	// Under WarmupPF the prefetcher state crosses the barrier, so the
	// specs become part of the group identity.
	a, b := base, base
	a.WarmupPF, b.WarmupPF = true, true
	b.L2PF = sim.PFBO
	ka, errA := WarmupKey(a)
	kb, errB := WarmupKey(b)
	if errA != nil || errB != nil || ka == kb {
		t.Errorf("WarmupPF variants with different specs share a key (%v %v)", errA, errB)
	}
	// No warmup region: nothing to share.
	cold := sim.DefaultOptions("433.milc")
	if _, err := WarmupKey(cold); err == nil {
		t.Error("WarmupKey accepted a run without a warmup region")
	}
}

// TestWedgeSurfacesThroughRunJobs drives deliberately stalled simulations
// through the scheduler: the engine's wedge detection must surface as a
// RunJobs error, and multiple wedges must all appear in the errors.Join
// aggregation.
func TestWedgeSurfacesThroughRunJobs(t *testing.T) {
	r := tinyRunner()
	wedgeOpts := func(wl string) sim.Options {
		o := sim.DefaultOptions(wl)
		o.Instructions = 1_000_000
		// Far too few cycles to retire a million instructions: the engine
		// declares a wedge when MaxCycles pass without completion.
		o.MaxCycles = 500
		return o
	}
	err := r.RunJobs([]sim.Options{wedgeOpts("416.gamess"), wedgeOpts("456.hmmer")})
	if err == nil {
		t.Fatal("RunJobs with wedged simulations returned no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "wedged") {
		t.Errorf("error does not mention the wedge: %v", err)
	}
	for _, wl := range []string{"416.gamess", "456.hmmer"} {
		if !strings.Contains(msg, wl) {
			t.Errorf("aggregated error is missing the %s wedge: %v", wl, err)
		}
	}
	// A wedge during the warmup region surfaces identically.
	warm := wedgeOpts("416.gamess")
	warm.Warmup = 1_000_000
	warm.Seed = 2 // distinct cache key from the run above
	if err := r.RunJobs([]sim.Options{warm}); err == nil || !strings.Contains(err.Error(), "wedged") {
		t.Errorf("warmup wedge did not surface through RunJobs: %v", err)
	}
}
