package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/sbp"
	"bopsim/internal/sim"
)

// TestParallelMatchesSerial is the scheduler's core guarantee: the rendered
// tables are byte-identical whether the job set runs on one worker or many.
func TestParallelMatchesSerial(t *testing.T) {
	render := func(workers int) (string, string) {
		r := tinyRunner()
		r.Workers = workers
		return r.Fig2().String(), r.Fig6().String()
	}
	fig2Serial, fig6Serial := render(1)
	fig2Par, fig6Par := render(8)
	if fig2Serial != fig2Par {
		t.Errorf("Fig2 differs between -j 1 and -j 8:\n%s\n---\n%s", fig2Serial, fig2Par)
	}
	if fig6Serial != fig6Par {
		t.Errorf("Fig6 differs between -j 1 and -j 8:\n%s\n---\n%s", fig6Serial, fig6Par)
	}
}

// TestProgressReporting checks the callback sees every scheduled job and a
// consistent total.
func TestProgressReporting(t *testing.T) {
	r := tinyRunner()
	r.Workers = 4
	var mu sync.Mutex
	calls := 0
	lastTotal := 0
	r.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		lastTotal = total
		if done < 1 || done > total {
			t.Errorf("progress (%d, %d) out of range", done, total)
		}
	}
	r.Fig6() // 2 benchmarks x 1 config x {baseline, BO} = 4 sims
	if calls != 4 || lastTotal != 4 {
		t.Errorf("progress called %d times with total %d, want 4/4", calls, lastTotal)
	}
	// A fully cached figure schedules nothing.
	calls = 0
	r.Fig6()
	if calls != 0 {
		t.Errorf("progress called %d times on a cached figure", calls)
	}
}

// TestRunJobsDedup checks duplicate option sets collapse to one execution.
func TestRunJobsDedup(t *testing.T) {
	r := tinyRunner()
	o := r.options("416.gamess", CoreConfig{Cores: 1, Page: mem.Page4K})
	// Same run spelled three ways: verbatim, duplicated, and with zero
	// values instead of explicit defaults.
	zeroSpelling := o
	zeroSpelling.L3Policy = ""
	if err := r.RunJobs([]sim.Options{o, o, zeroSpelling}); err != nil {
		t.Fatal(err)
	}
	if got := r.Executed(); got != 1 {
		t.Errorf("executed %d simulations, want 1", got)
	}
}

// TestRunJobsAbortsAfterFailure checks a failing job stops the dispatch of
// the jobs queued behind it (in-flight ones still finish).
func TestRunJobsAbortsAfterFailure(t *testing.T) {
	r := tinyRunner()
	r.Workers = 1
	bad := r.options("no-such-benchmark", CoreConfig{Cores: 1, Page: mem.Page4K})
	jobs := []sim.Options{bad}
	for seed := uint64(1); seed <= 20; seed++ {
		o := r.options("416.gamess", CoreConfig{Cores: 1, Page: mem.Page4K})
		o.Seed = seed
		jobs = append(jobs, o)
	}
	if err := r.RunJobs(jobs); err == nil {
		t.Fatal("RunJobs returned no error for an unknown benchmark")
	}
	// With one worker the failure lands before most dispatches; allow the
	// handful that can race the flag.
	if got := r.Executed(); got > 2 {
		t.Errorf("executed %d queued jobs after the failure, want <= 2", got)
	}
}

// TestDiskCachePersists checks a second Runner pointed at the same cache
// directory replays every result from disk, executing nothing, and renders
// identical bytes.
func TestDiskCachePersists(t *testing.T) {
	dir := t.TempDir()

	r1 := tinyRunner()
	r1.CacheDir = dir
	first := r1.Fig6().String()
	if r1.Executed() == 0 {
		t.Fatal("first runner executed nothing")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != int(r1.Executed()) {
		t.Fatalf("%d cache files for %d executions (err %v)", len(files), r1.Executed(), err)
	}

	r2 := tinyRunner()
	r2.CacheDir = dir
	second := r2.Fig6().String()
	if got := r2.Executed(); got != 0 {
		t.Errorf("second runner executed %d simulations, want 0 (disk cache)", got)
	}
	if first != second {
		t.Errorf("disk-cached table differs:\n%s\n---\n%s", first, second)
	}
}

// TestDiskCacheIgnoresCorruptEntries checks a truncated cache file is
// re-executed rather than trusted.
func TestDiskCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	r1 := tinyRunner()
	r1.CacheDir = dir
	r1.Fig2()
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) == 0 {
		t.Fatal("no cache files written")
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := tinyRunner()
	r2.CacheDir = dir
	r2.Fig2()
	if got := r2.Executed(); got != 1 {
		t.Errorf("executed %d simulations after corrupting one entry, want 1", got)
	}
}

// TestOptionsKeyComplete checks every outcome-affecting option participates
// in the cache key — the historical key omitted Seed, TracePath, SBPParams
// and MaxCycles, aliasing distinct runs to one cached result.
func TestOptionsKeyComplete(t *testing.T) {
	base := sim.DefaultOptions("433.milc")
	mutations := map[string]func(*sim.Options){
		"Seed":         func(o *sim.Options) { o.Seed = 99 },
		"TracePath":    func(o *sim.Options) { o.TracePath = "some.trace" },
		"MaxCycles":    func(o *sim.Options) { o.MaxCycles = 123_456 },
		"SBPParams":    func(o *sim.Options) { p := sbp.DefaultParams(); p.Period = 128; o.SBPParams = &p },
		"Instructions": func(o *sim.Options) { o.Instructions = 1 },
		"Workload":     func(o *sim.Options) { o.Workload = "470.lbm" },
		"CPU":          func(o *sim.Options) { o.CPU.ROBSize = 128 },
		"FixedOffset":  func(o *sim.Options) { o.FixedOffset = 3 },
	}
	baseKey := optionsKey(base)
	for field, mutate := range mutations {
		o := base
		mutate(&o)
		if optionsKey(o) == baseKey {
			t.Errorf("changing %s does not change the cache key", field)
		}
	}
	// Equivalent spellings alias deliberately: zero values hash like their
	// resolved defaults.
	implicit := base
	implicit.L3Policy = ""
	implicit.MaxCycles = 0
	if optionsKey(implicit) != baseKey {
		t.Error("normalized-equal options hash differently")
	}
}
