package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// TestParallelMatchesSerial is the scheduler's core guarantee: the rendered
// tables are byte-identical whether the job set runs on one worker or many.
func TestParallelMatchesSerial(t *testing.T) {
	render := func(workers int) (string, string) {
		r := tinyRunner()
		r.Workers = workers
		return r.Fig2().String(), r.Fig6().String()
	}
	fig2Serial, fig6Serial := render(1)
	fig2Par, fig6Par := render(8)
	if fig2Serial != fig2Par {
		t.Errorf("Fig2 differs between -j 1 and -j 8:\n%s\n---\n%s", fig2Serial, fig2Par)
	}
	if fig6Serial != fig6Par {
		t.Errorf("Fig6 differs between -j 1 and -j 8:\n%s\n---\n%s", fig6Serial, fig6Par)
	}
}

// TestProgressReporting checks the callback sees every scheduled job and a
// consistent total.
func TestProgressReporting(t *testing.T) {
	r := tinyRunner()
	r.Workers = 4
	var mu sync.Mutex
	calls := 0
	lastTotal := 0
	r.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		lastTotal = total
		if done < 1 || done > total {
			t.Errorf("progress (%d, %d) out of range", done, total)
		}
	}
	r.Fig6() // 2 benchmarks x 1 config x {baseline, BO} = 4 sims
	if calls != 4 || lastTotal != 4 {
		t.Errorf("progress called %d times with total %d, want 4/4", calls, lastTotal)
	}
	// A fully cached figure schedules nothing.
	calls = 0
	r.Fig6()
	if calls != 0 {
		t.Errorf("progress called %d times on a cached figure", calls)
	}
}

// TestRunJobsDedup checks duplicate option sets collapse to one execution.
func TestRunJobsDedup(t *testing.T) {
	r := tinyRunner()
	o := r.options(trace.MustSpec("416.gamess"), CoreConfig{Cores: 1, Page: mem.Page4K})
	// Same run spelled three ways: verbatim, duplicated, and with zero
	// values instead of explicit defaults.
	zeroSpelling := o
	zeroSpelling.L3Policy = ""
	if err := r.RunJobs([]sim.Options{o, o, zeroSpelling}); err != nil {
		t.Fatal(err)
	}
	if got := r.Executed(); got != 1 {
		t.Errorf("executed %d simulations, want 1", got)
	}
}

// TestRunJobsAbortsAfterFailure checks that once the failure budget
// (MaxErrors) is spent, dispatch of the jobs queued behind it stops
// (in-flight ones still finish).
func TestRunJobsAbortsAfterFailure(t *testing.T) {
	r := tinyRunner()
	r.Workers = 1
	r.MaxErrors = 1
	bad := r.options(trace.MustSpec("no-such-benchmark"), CoreConfig{Cores: 1, Page: mem.Page4K})
	jobs := []sim.Options{bad}
	for seed := uint64(1); seed <= 20; seed++ {
		o := r.options(trace.MustSpec("416.gamess"), CoreConfig{Cores: 1, Page: mem.Page4K})
		o.Seed = seed
		jobs = append(jobs, o)
	}
	if err := r.RunJobs(jobs); err == nil {
		t.Fatal("RunJobs returned no error for an unknown benchmark")
	}
	// With one worker the failure lands before most dispatches; allow the
	// handful that can race the flag.
	if got := r.Executed(); got > 2 {
		t.Errorf("executed %d queued jobs after the failure, want <= 2", got)
	}
}

// TestRunJobsAggregatesFailures checks a partially-failed sweep reports
// every bad job in one pass: the returned error joins all failures, each
// prefixed with the run it belongs to, instead of surfacing only the
// first.
func TestRunJobsAggregatesFailures(t *testing.T) {
	r := tinyRunner()
	r.Workers = 2
	jobs := []sim.Options{
		r.options(trace.MustSpec("no-such-benchmark-a"), CoreConfig{Cores: 1, Page: mem.Page4K}),
		r.options(trace.MustSpec("416.gamess"), CoreConfig{Cores: 1, Page: mem.Page4K}),
		r.options(trace.MustSpec("no-such-benchmark-b"), CoreConfig{Cores: 1, Page: mem.Page4K}),
	}
	err := r.RunJobs(jobs)
	if err == nil {
		t.Fatal("RunJobs returned no error for two unknown benchmarks")
	}
	for _, want := range []string{"no-such-benchmark-a", "no-such-benchmark-b"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing failure for %s:\n%v", want, err)
		}
	}
	// The good job between the bad ones still executed.
	if got := r.Executed(); got != 1 {
		t.Errorf("executed %d simulations, want 1 (the valid job)", got)
	}
}

// TestDiskCachePersists checks a second Runner pointed at the same cache
// directory replays every result from disk, executing nothing, and renders
// identical bytes.
func TestDiskCachePersists(t *testing.T) {
	dir := t.TempDir()

	r1 := tinyRunner()
	r1.CacheDir = dir
	first := r1.Fig6().String()
	if r1.Executed() == 0 {
		t.Fatal("first runner executed nothing")
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != int(r1.Executed()) {
		t.Fatalf("%d cache files for %d executions (err %v)", len(files), r1.Executed(), err)
	}

	r2 := tinyRunner()
	r2.CacheDir = dir
	second := r2.Fig6().String()
	if got := r2.Executed(); got != 0 {
		t.Errorf("second runner executed %d simulations, want 0 (disk cache)", got)
	}
	if first != second {
		t.Errorf("disk-cached table differs:\n%s\n---\n%s", first, second)
	}
}

// TestDiskCacheIgnoresCorruptEntries checks a truncated cache file is
// re-executed rather than trusted.
func TestDiskCacheIgnoresCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	r1 := tinyRunner()
	r1.CacheDir = dir
	r1.Fig2()
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) == 0 {
		t.Fatal("no cache files written")
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2 := tinyRunner()
	r2.CacheDir = dir
	r2.Fig2()
	if got := r2.Executed(); got != 1 {
		t.Errorf("executed %d simulations after corrupting one entry, want 1", got)
	}
}

// TestOptionsKeyComplete checks every outcome-affecting option participates
// in the cache key — the historical key omitted Seed, TracePath, SBP
// parameters and MaxCycles, aliasing distinct runs to one cached result.
func TestOptionsKeyComplete(t *testing.T) {
	base := sim.DefaultOptions("433.milc")
	mutations := map[string]func(*sim.Options){
		"Seed":         func(o *sim.Options) { o.Seed = 99 },
		"MaxCycles":    func(o *sim.Options) { o.MaxCycles = 123_456 },
		"L2PF name":    func(o *sim.Options) { o.L2PF = sim.PFSBP },
		"L2PF params":  func(o *sim.Options) { o.L2PF = sim.PFSBP.With("period", "128") },
		"L1PF":         func(o *sim.Options) { o.L1PF = prefetch.Spec{Name: "none"} },
		"L1PF params":  func(o *sim.Options) { o.L1PF = prefetch.MustSpec("stride:dist=8") },
		"Instructions": func(o *sim.Options) { o.Instructions = 1 },
		"Workload":     func(o *sim.Options) { o.Workloads = []trace.Spec{{Name: "470.lbm"}} },
		"Workload params": func(o *sim.Options) {
			o.Workloads = []trace.Spec{trace.MustSpec("433.milc:footprint=16mb")}
		},
		"CPU":      func(o *sim.Options) { o.CPU.ROBSize = 128 },
		"Offset d": func(o *sim.Options) { o.L2PF = sim.PFOffsetD(3) },
		"Warmup":   func(o *sim.Options) { o.Warmup = 10_000 },
		"WarmupPF": func(o *sim.Options) { o.Warmup = 10_000; o.WarmupPF = true },
	}
	baseKey := optionsKey(base)
	for field, mutate := range mutations {
		o := base
		mutate(&o)
		if optionsKey(o) == baseKey {
			t.Errorf("changing %s does not change the cache key", field)
		}
	}
	// Equivalent spellings alias deliberately: zero values hash like their
	// resolved defaults, and specs spelling out a registered default
	// parameter hash like the bare name.
	implicit := base
	implicit.L3Policy = ""
	implicit.MaxCycles = 0
	implicit.L2PF = prefetch.Spec{}
	if optionsKey(implicit) != baseKey {
		t.Error("normalized-equal options hash differently")
	}
	spelled := base
	spelled.L2PF = prefetch.MustSpec("nextline")
	spelled.L1PF = prefetch.MustSpec("stride:dist=16")
	if optionsKey(spelled) != baseKey {
		t.Error("spec with spelled-out default parameter hashes differently")
	}
	bo1 := base
	bo1.L2PF = prefetch.MustSpec("bo:scoremax=31,badscore=5")
	bo2 := base
	bo2.L2PF = sim.PFBO.With("badscore", "5")
	if optionsKey(bo1) != optionsKey(bo2) {
		t.Error("equivalent bo specs hash differently")
	}
	// Per-core workload specs participate: changing a satellite core's
	// workload changes the key, while spelling out the microthrash default
	// aliases with leaving it implicit.
	multi := base
	multi.Cores = 2
	multiKey := optionsKey(multi)
	if multiKey == baseKey {
		t.Error("core count does not change the cache key")
	}
	het := multi
	het.Workloads = []trace.Spec{{Name: "433.milc"}, {Name: "gups"}}
	if optionsKey(het) == multiKey {
		t.Error("satellite-core workload does not change the cache key")
	}
	spelledSat := multi
	spelledSat.Workloads = []trace.Spec{{Name: "433.milc"}, {Name: "microthrash"}}
	if optionsKey(spelledSat) != multiKey {
		t.Error("explicit microthrash satellite hashes differently from the implicit default")
	}
	spelledWL := base
	spelledWL.Workloads = []trace.Spec{trace.MustSpec("433.milc:memper1000=260")}
	if optionsKey(spelledWL) != baseKey {
		t.Error("workload spec with spelled-out default parameter hashes differently")
	}
	// Workload-less options must NOT alias an explicit microthrash run:
	// normalization fills satellite slots only, so a caller who forgot to
	// set a workload can never be served a cached microthrash result.
	empty := base
	empty.Workloads = nil
	thrash := base
	thrash.Workloads = []trace.Spec{{Name: "microthrash"}}
	if optionsKey(empty) == optionsKey(thrash) {
		t.Error("empty workload list hashes like an explicit microthrash run")
	}
}

// TestRunJobsSurfacesBadWorkloadSpecs checks the satellite fix for unknown
// workloads: a sweep containing a bad generator name or a bad parameter
// reports each as a per-job error through RunJobs' errors.Join path —
// valid jobs still execute — instead of any panic escaping the scheduler.
func TestRunJobsSurfacesBadWorkloadSpecs(t *testing.T) {
	r := tinyRunner()
	r.Workers = 2
	r.MaxErrors = 8
	cc := CoreConfig{Cores: 1, Page: mem.Page4K}
	jobs := []sim.Options{
		r.options(trace.Spec{Name: "no-such-workload"}, cc),
		r.options(trace.MustSpec("stream:stride=bogus"), cc),
		r.options(trace.Spec{Name: "416.gamess"}, cc),
	}
	err := r.RunJobs(jobs)
	if err == nil {
		t.Fatal("RunJobs returned no error for two bad workload specs")
	}
	for _, want := range []string{"no-such-workload", "stride"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q:\n%v", want, err)
		}
	}
	if got := r.Executed(); got != 1 {
		t.Errorf("executed %d simulations, want 1 (the valid job)", got)
	}
}

// TestTraceContentKeysCache checks trace replays are keyed by file content:
// rewriting the trace changes the key, and a byte-identical copy at a
// different path shares it.
func TestTraceContentKeysCache(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.trace")
	gen, err := trace.NewWorkload("456.hmmer", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(pathA, gen, 2000); err != nil {
		t.Fatal(err)
	}
	o := sim.DefaultOptions("456.hmmer")
	o.Workloads = []trace.Spec{trace.FileSpec(pathA)}
	keyA := optionsKey(o)

	// A byte-identical copy under another name is the same run.
	pathB := filepath.Join(dir, "b.trace")
	b, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pathB, b, 0o644); err != nil {
		t.Fatal(err)
	}
	oB := o
	oB.Workloads = []trace.Spec{trace.FileSpec(pathB)}
	if optionsKey(oB) != keyA {
		t.Error("identical trace content at a different path changed the key")
	}

	// Rewriting the trace with different content must change the key. (A
	// different length also changes the file size, so the mtime-based hash
	// memo can never serve the stale hash even on coarse-mtime filesystems.)
	gen2, err := trace.NewWorkload("456.hmmer", 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceFile(pathA, gen2, 2500); err != nil {
		t.Fatal(err)
	}
	if optionsKey(o) == keyA {
		t.Error("editing the trace file did not change the cache key")
	}
}
