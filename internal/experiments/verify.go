package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bopsim/internal/sim"
)

// This file is the cache's trust anchor: VerifyCache re-executes a sample
// of stored entries and diffs the fresh result against the stored one.
// Simulations are deterministic, so any divergence means the cache is
// stale relative to the current simulator (a behavioural change shipped
// without a resultCacheVersion bump) — or, for entries that arrived over
// the distrib wire, that a worker computed something this binary would
// not. `bosim -verify` is the CLI face.

// VerifyReport summarizes one VerifyCache pass.
type VerifyReport struct {
	// Entries is how many schema-compatible entries the directory holds.
	Entries int
	// Checked is how many sampled entries were re-executed.
	Checked int
	// Mismatched counts checked entries whose fresh result differs from
	// the stored one (a re-execution error counts as a mismatch: the
	// stored entry claims a result the simulator can no longer produce).
	Mismatched int
	// Skipped counts files that were corrupt or on a different schema
	// version (a loader would re-execute these anyway, so they are not
	// trust failures).
	Skipped int
	// Orphaned counts entries whose filename no longer matches the hash
	// of their stored options — e.g. a trace edited in place moved its
	// runs to a new key, leaving the old entry unreachable. No lookup
	// can ever return them, so they are dead weight for EvictCache, not
	// trust failures.
	Orphaned int
}

// VerifyCache re-executes up to sample entries of the disk cache at dir
// and diffs each fresh result against the stored one, logging one line
// per check (and a detailed line per mismatch) to log. sample <= 0 checks
// every entry. Sampling is deterministic in seed, so a cron job verifying
// a shared cache covers different entries run to run only by changing the
// seed. The cache is not modified; deleting stale entries is the
// operator's call.
func VerifyCache(dir string, sample int, seed uint64, log io.Writer) (VerifyReport, error) {
	if log == nil {
		log = io.Discard
	}
	var rep VerifyReport
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return rep, err
	}
	sort.Strings(files)
	type loaded struct {
		path  string
		entry CacheEntry
	}
	var entries []loaded
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			rep.Skipped++
			continue
		}
		var e CacheEntry
		if err := json.Unmarshal(b, &e); err != nil || e.Version != resultCacheVersion {
			rep.Skipped++
			continue
		}
		// An entry only vouches for the key it is filed under. If the
		// stored options no longer hash to the filename (trace edited in
		// place, unreadable trace on this machine), no lookup can reach
		// it — re-executing would compare against a run nobody asked for.
		name := strings.TrimSuffix(filepath.Base(f), ".json")
		if OptionsHash(e.Options) != name {
			rep.Orphaned++
			fmt.Fprintf(log, "orphaned %s: stored options hash elsewhere (trace changed or missing?)\n", filepath.Base(f))
			continue
		}
		entries = append(entries, loaded{path: f, entry: e})
	}
	rep.Entries = len(entries)
	if sample > 0 && sample < len(entries) {
		rng := rand.New(rand.NewSource(int64(seed)))
		rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
		entries = entries[:sample]
		// Keep the report order stable regardless of the shuffle.
		sort.Slice(entries, func(i, j int) bool { return entries[i].path < entries[j].path })
	}
	for _, l := range entries {
		rep.Checked++
		name := filepath.Base(l.path)
		fresh, err := sim.Run(l.entry.Options)
		if err != nil {
			rep.Mismatched++
			fmt.Fprintf(log, "MISMATCH %s: stored result exists but re-execution failed: %v\n", name, err)
			continue
		}
		if diff := resultDiff(l.entry.Result, fresh); diff != "" {
			rep.Mismatched++
			fmt.Fprintf(log, "MISMATCH %s (%s): %s\n", name, describeOptions(l.entry.Options), diff)
			continue
		}
		fmt.Fprintf(log, "ok       %s (%s) IPC=%.3f\n", name, describeOptions(l.entry.Options), fresh.IPC)
	}
	return rep, nil
}

// resultDiff compares two results via their canonical JSON encodings
// (covering every nested counter, not just headline metrics) and renders
// a short human-readable summary of the first divergence, or "" when
// identical.
func resultDiff(stored, fresh sim.Result) string {
	sb, err1 := json.Marshal(stored)
	fb, err2 := json.Marshal(fresh)
	if err1 != nil || err2 != nil {
		return fmt.Sprintf("results not comparable (%v, %v)", err1, err2)
	}
	if string(sb) == string(fb) {
		return ""
	}
	if stored.IPC != fresh.IPC {
		return fmt.Sprintf("IPC stored=%.6f fresh=%.6f", stored.IPC, fresh.IPC)
	}
	if stored.Cycles != fresh.Cycles {
		return fmt.Sprintf("cycles stored=%d fresh=%d", stored.Cycles, fresh.Cycles)
	}
	return fmt.Sprintf("results differ (stored %d bytes, fresh %d bytes of JSON)", len(sb), len(fb))
}
