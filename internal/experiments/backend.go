package experiments

import (
	"context"
	"os"
	"runtime"
	"strconv"

	"bopsim/internal/engine"
	"bopsim/internal/sim"
)

// ExecBackend is where the scheduler's jobs actually execute. RunJobs owns
// the dispatch loop — dedup, caching, retry accounting, progress — and
// drives one feeder goroutine per backend slot; the backend only has to
// turn one sim.Options into one sim.Result.
//
// The default backend is the in-process pool below. internal/distrib
// provides a remote one (an HTTP fan-out over a fleet of boworkerd
// daemons) that satisfies this interface without this package importing
// it; cmd/experiments wires the two together.
//
// Implementations must be safe for concurrent Run calls on distinct
// slots. Slot numbers are stable for the lifetime of the backend, so an
// implementation may use them for affinity (the remote pool homes each
// slot on the worker that contributed it).
type ExecBackend interface {
	// Slots returns how many simulations the backend can execute
	// concurrently. RunJobs never issues more than this many Run calls
	// at once.
	Slots() int
	// SlotLabel names one slot for status displays ("local/3",
	// "10.0.0.7:9123#1"). Labels are informational only.
	SlotLabel(slot int) string
	// Run executes one simulation to completion on the given slot.
	Run(slot int, o sim.Options) (sim.Result, error)
}

// CheckpointBackend is optionally implemented by backends that can fork a
// run from a warmup checkpoint instead of replaying the warmup. The
// checkpoint is identified both by a local path (the coordinator's copy)
// and by its content SHA-256 (what a remote worker resolves against its
// own directories). Implementations fall back to a full run whenever the
// snapshot cannot be used — a checkpoint is an optimization, never a
// correctness dependency — so RunFrom must return exactly what Run would.
type CheckpointBackend interface {
	RunFrom(slot int, o sim.Options, checkpointPath, checkpointSHA string) (sim.Result, error)
}

// localBackend is the historical in-process worker pool: every slot is a
// goroutine in this process calling sim.Run directly.
type localBackend struct{ workers int }

var _ CheckpointBackend = localBackend{}

func (b localBackend) Slots() int {
	if b.workers > 0 {
		return b.workers
	}
	return runtime.GOMAXPROCS(0)
}

func (b localBackend) SlotLabel(slot int) string { return "local/" + strconv.Itoa(slot) }

func (b localBackend) Run(_ int, o sim.Options) (sim.Result, error) { return sim.Run(o) }

// RunFrom implements CheckpointBackend: restore the snapshot and run the
// measured region. Any problem with the snapshot — unreadable, corrupt,
// version-skewed, signed for a different warmup — falls back to the full
// run, which the engine's determinism guarantee makes byte-identical.
func (b localBackend) RunFrom(_ int, o sim.Options, checkpointPath, _ string) (sim.Result, error) {
	data, err := os.ReadFile(checkpointPath)
	if err != nil {
		return sim.Run(o)
	}
	s, err := engine.Restore(data, o)
	if err != nil {
		return sim.Run(o)
	}
	return s.Run(context.Background())
}

// backend resolves the Runner's execution backend: the configured one, or
// the in-process pool bounded by Workers.
func (r *Runner) backend() ExecBackend {
	if r.Backend != nil {
		return r.Backend
	}
	return localBackend{workers: r.Workers}
}
