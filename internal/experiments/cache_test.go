package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bopsim/internal/core"
	"bopsim/internal/mem"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// writeV1Entry stores a version-1 (enum-era) cache entry under dir with a
// made-up key, returning the stored result.
func writeV1Entry(t *testing.T, dir, key string, opts map[string]any, ipc float64) sim.Result {
	t.Helper()
	res := sim.Result{Workload: opts["Workload"].(string), IPC: ipc, Cycles: 1000, Instructions: 500}
	entry := map[string]any{"version": 1, "options": opts, "result": res}
	b, err := json.MarshalIndent(entry, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	return res
}

// v1Options renders the enum-era options JSON for one run.
func v1Options(workload, l2pf string, extra map[string]any) map[string]any {
	o := map[string]any{
		"Workload": workload, "TracePath": "", "Cores": 1,
		"Page": int64(mem.Page4K), "L2PF": l2pf, "FixedOffset": 0,
		"L3Policy": "5P", "StridePF": true, "LatePromote": true,
		"Instructions": 40_000, "Seed": 1, "MaxCycles": 0,
	}
	for k, v := range extra {
		o[k] = v
	}
	return o
}

func TestMigrateCacheRekeysV1Entries(t *testing.T) {
	dir := t.TempDir()
	wantBO := writeV1Entry(t, dir, "000bo", v1Options("433.milc", "bo", nil), 1.5)
	p := core.DefaultParams()
	p.BadScore = 5
	wantSweep := writeV1Entry(t, dir, "000bosweep", v1Options("433.milc", "bo", map[string]any{"BOParams": p}), 1.25)
	wantOff := writeV1Entry(t, dir, "000off", v1Options("470.lbm", "offset", map[string]any{"FixedOffset": 4, "StridePF": false}), 0.75)

	migrated, dropped, err := MigrateCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 3 || dropped != 0 {
		t.Fatalf("migrated %d, dropped %d; want 3, 0", migrated, dropped)
	}

	// The rewritten entries answer under the *new* spec-based keys.
	check := func(mutate func(*sim.Options), want sim.Result) {
		t.Helper()
		o := sim.DefaultOptions("433.milc")
		o.Instructions = 40_000
		mutate(&o)
		res, ok := diskCache{dir}.load(OptionsHash(o))
		if !ok {
			t.Errorf("no migrated entry for %s", describeOptions(o))
			return
		}
		if res.IPC != want.IPC {
			t.Errorf("migrated IPC = %v, want %v", res.IPC, want.IPC)
		}
	}
	check(func(o *sim.Options) { o.L2PF = sim.PFBO }, wantBO)
	check(func(o *sim.Options) { o.L2PF = sim.PFBO.With("badscore", "5") }, wantSweep)
	check(func(o *sim.Options) {
		o.Workloads = []trace.Spec{{Name: "470.lbm"}}
		o.L2PF = sim.PFOffsetD(4)
		o.L1PF = sim.PFNone // v1 StridePF=false
	}, wantOff)

	// Old-key files are gone; nothing is left at version 1.
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 3 {
		t.Errorf("%d files after migration, want 3", len(files))
	}
	again, _, err := MigrateCache(dir)
	if err != nil || again != 0 {
		t.Errorf("second migration touched %d entries (err %v), want 0", again, err)
	}
}

// writeV2Entry stores a version-2 (Workload/TracePath-era) cache entry
// under dir with a made-up key, returning the stored result.
func writeV2Entry(t *testing.T, dir, key string, opts map[string]any, ipc float64) sim.Result {
	t.Helper()
	res := sim.Result{Workload: opts["Workload"].(string), IPC: ipc, Cycles: 2000, Instructions: 900}
	entry := map[string]any{"version": 2, "options": opts, "result": res}
	b, err := json.MarshalIndent(entry, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, key+".json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	return res
}

// v2Options renders the spec-prefetcher/string-workload options JSON of the
// v2 schema for one run.
func v2Options(workload, tracePath string, extra map[string]any) map[string]any {
	o := map[string]any{
		"Workload": workload, "TracePath": tracePath, "Cores": 1,
		"Page":     int64(mem.Page4K),
		"L2PF":     map[string]any{"name": "nextline"},
		"L1PF":     map[string]any{"name": "stride"},
		"L3Policy": "5P", "LatePromote": true,
		"Instructions": 40_000, "Seed": 1, "MaxCycles": 0,
	}
	for k, v := range extra {
		o[k] = v
	}
	return o
}

func TestMigrateCacheRekeysV2Entries(t *testing.T) {
	dir := t.TempDir()
	wantPlain := writeV2Entry(t, dir, "000plain", v2Options("433.milc", "", nil), 1.5)
	wantBO := writeV2Entry(t, dir, "000bo", v2Options("470.lbm", "",
		map[string]any{"L2PF": map[string]any{"name": "bo", "params": map[string]string{"badscore": "5"}}}), 1.25)
	wantWarm := writeV2Entry(t, dir, "000warm", v2Options("456.hmmer", "",
		map[string]any{"Warmup": 10_000}), 0.9)

	// A v2 trace-replay entry rekeys by content hash, exactly like the new
	// file: spec would.
	tracePath := filepath.Join(t.TempDir(), "w.trace")
	if err := trace.WriteTraceFile(tracePath, trace.MustWorkload("456.hmmer", 1), 1500); err != nil {
		t.Fatal(err)
	}
	wantTrace := writeV2Entry(t, dir, "000trace", v2Options("456.hmmer", tracePath, nil), 0.75)

	migrated, dropped, err := MigrateCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 4 || dropped != 0 {
		t.Fatalf("migrated %d, dropped %d; want 4, 0", migrated, dropped)
	}

	check := func(mutate func(*sim.Options), want sim.Result) {
		t.Helper()
		o := sim.DefaultOptions("433.milc")
		o.Instructions = 40_000
		mutate(&o)
		res, ok := diskCache{dir}.load(OptionsHash(o))
		if !ok {
			t.Errorf("no migrated entry for %s", describeOptions(o))
			return
		}
		if res.IPC != want.IPC {
			t.Errorf("migrated IPC = %v, want %v", res.IPC, want.IPC)
		}
	}
	check(func(o *sim.Options) {}, wantPlain)
	check(func(o *sim.Options) {
		o.Workloads = []trace.Spec{{Name: "470.lbm"}}
		o.L2PF = sim.PFBO.With("badscore", "5")
	}, wantBO)
	check(func(o *sim.Options) {
		o.Workloads = []trace.Spec{{Name: "456.hmmer"}}
		o.Warmup = 10_000
	}, wantWarm)
	check(func(o *sim.Options) {
		o.Workloads = []trace.Spec{trace.FileSpec(tracePath)}
	}, wantTrace)

	// The migrated trace entry must stay locally executable (bosim -verify
	// re-runs stored options on this machine), so the stored spec keeps
	// its path spelling; only the *key* uses the content hash.
	oTrace := sim.DefaultOptions("456.hmmer")
	oTrace.Instructions = 40_000
	oTrace.Workloads = []trace.Spec{trace.FileSpec(tracePath)}
	b, err := os.ReadFile(filepath.Join(dir, OptionsHash(oTrace)+".json"))
	if err != nil {
		t.Fatalf("migrated trace entry unreadable: %v", err)
	}
	var stored CacheEntry
	if err := json.Unmarshal(b, &stored); err != nil {
		t.Fatal(err)
	}
	if got, _ := stored.Options.Workloads[0].Get("path"); got != tracePath {
		t.Errorf("migrated trace entry stores workload %s, want path spelling (locally re-executable)",
			stored.Options.Workloads[0])
	}

	if again, _, err := MigrateCache(dir); err != nil || again != 0 {
		t.Errorf("second migration touched %d entries (err %v), want 0", again, err)
	}
}

func TestMigrateCacheDropsV2EntryWithUnreadableTrace(t *testing.T) {
	dir := t.TempDir()
	writeV2Entry(t, dir, "000gone", v2Options("456.hmmer", "/no/such/trace.bin", nil), 1.0)
	migrated, dropped, err := MigrateCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 0 || dropped != 1 {
		t.Errorf("migrated %d, dropped %d; want 0, 1 (cannot rekey without the trace's content)", migrated, dropped)
	}
}

func TestMigrateCacheDropsUnmappableEntries(t *testing.T) {
	dir := t.TempDir()
	writeV1Entry(t, dir, "000weird", v1Options("433.milc", "quantum-oracle", nil), 2.0)
	migrated, dropped, err := MigrateCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if migrated != 0 || dropped != 1 {
		t.Errorf("migrated %d, dropped %d; want 0, 1", migrated, dropped)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 0 {
		t.Errorf("unmappable entry left on disk: %v", files)
	}
}

func TestEvictCacheRemovesOldestPastBudget(t *testing.T) {
	dir := t.TempDir()
	// Three entries of ~1KB each, with distinct mtimes, oldest first.
	payload := make([]byte, 1024)
	for i, name := range []string{"old", "mid", "new"} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
		mtime := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(path, mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	removed, freed, err := EvictCache(dir, 2*1024+512)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != 1024 {
		t.Errorf("removed %d entries / %d bytes, want 1 / 1024", removed, freed)
	}
	if _, err := os.Stat(filepath.Join(dir, "old.json")); !os.IsNotExist(err) {
		t.Error("oldest entry survived eviction")
	}
	for _, name := range []string{"mid", "new"} {
		if _, err := os.Stat(filepath.Join(dir, name+".json")); err != nil {
			t.Errorf("%s entry evicted, should have been kept", name)
		}
	}
	// Zero budget disables eviction entirely.
	if removed, _, err := EvictCache(dir, 0); err != nil || removed != 0 {
		t.Errorf("disabled eviction removed %d (err %v)", removed, err)
	}
}
