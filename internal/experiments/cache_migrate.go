package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"bopsim/internal/core"
	"bopsim/internal/cpu"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sbp"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// This file migrates old result-cache entries to the current schema.
// Version-1 entries were written when Options still carried the closed
// PrefetcherKind enum and its per-kind escape hatches (FixedOffset,
// BOParams, SBPParams, StridePF); version-2 entries carried prefetcher
// specs but still named workloads through the closed Workload/TracePath
// pair. Simulator behaviour did not change between the schemas, only the
// configuration encoding, so the stored measurements stay valid; the
// entries just need their options translated and their files rekeyed under
// the new OptionsHash.

// legacyOptionsV1 mirrors the v1 sim.Options JSON encoding.
type legacyOptionsV1 struct {
	Workload     string
	TracePath    string
	Cores        int
	Page         mem.PageSize
	L2PF         string
	FixedOffset  int
	L3Policy     string
	StridePF     bool
	LatePromote  bool
	Instructions uint64
	Seed         uint64
	BOParams     *core.Params
	SBPParams    *sbp.Params
	CPU          cpu.Config
	MaxCycles    uint64
}

// legacyOptionsV2 mirrors the v2 sim.Options JSON encoding: spec-based
// prefetchers, but the workload axis still the Workload/TracePath pair.
type legacyOptionsV2 struct {
	Workload     string
	TracePath    string
	Cores        int
	Page         mem.PageSize
	L2PF         prefetch.Spec
	L1PF         prefetch.Spec
	L3Policy     string
	LatePromote  bool
	Instructions uint64
	Seed         uint64
	CPU          cpu.Config
	MaxCycles    uint64
	Warmup       uint64
	WarmupPF     bool
}

// MigrateCache rewrites every version-1 and version-2 entry under dir to
// the current schema and key, removing the old file — a schema bump costs
// a rekey, not a re-simulation. Entries already at the current version are
// untouched; unreadable or unmappable entries are dropped (the affected
// runs simply re-execute). It returns how many entries were migrated and
// how many dropped.
func MigrateCache(dir string) (migrated, dropped int, err error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, 0, err
	}
	dc := diskCache{dir}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		var probe struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(b, &probe); err != nil || probe.Version == resultCacheVersion {
			continue
		}
		if probe.Version != 1 && probe.Version != 2 {
			continue // unknown schema: leave it alone
		}
		drop := func() {
			os.Remove(f)
			dropped++
		}
		var opts sim.Options
		var result sim.Result
		switch probe.Version {
		case 1:
			var legacy struct {
				Options legacyOptionsV1 `json:"options"`
				Result  sim.Result      `json:"result"`
			}
			if err := json.Unmarshal(b, &legacy); err != nil {
				drop()
				continue
			}
			if opts, err = migrateOptionsV1(legacy.Options); err != nil {
				drop()
				continue
			}
			result = legacy.Result
		case 2:
			var legacy struct {
				Options legacyOptionsV2 `json:"options"`
				Result  sim.Result      `json:"result"`
			}
			if err := json.Unmarshal(b, &legacy); err != nil {
				drop()
				continue
			}
			if opts, err = migrateOptionsV2(legacy.Options); err != nil {
				drop()
				continue
			}
			result = legacy.Result
		}
		// The stored Result.Workload carries the old era's label; rewrite it
		// to the spec-form label the engine now produces (for synthetic
		// workloads the same string, for trace replays "file:sha=…"), so
		// VerifyCache's byte-exact re-execution diff stays clean on
		// migrated entries.
		result.Workload = opts.WorkloadLabel()
		if err := dc.store(OptionsHash(opts), opts, result); err != nil {
			return migrated, dropped, err
		}
		os.Remove(f)
		migrated++
	}
	return migrated, dropped, nil
}

// migrateWorkloads translates the legacy Workload/TracePath pair into
// workload specs. A trace replay keeps its path spelling — the stored
// options must stay locally executable for `bosim -verify`, and
// OptionsHash keys by content hash either way — but a trace whose file is
// unreadable cannot be rekeyed (the new key needs its content hash) and is
// reported as an error, so the entry is dropped.
func migrateWorkloads(workload, tracePath string) ([]trace.Spec, error) {
	if tracePath != "" {
		if _, err := trace.WireSpec(trace.FileSpec(tracePath)); err != nil {
			return nil, err
		}
		return []trace.Spec{trace.FileSpec(tracePath)}, nil
	}
	sp, err := trace.ParseSpec(workload)
	if err != nil {
		return nil, err
	}
	if _, err := trace.Normalize(sp); err != nil {
		return nil, err
	}
	return []trace.Spec{sp}, nil
}

// migrateOptionsV2 translates the v2 workload encoding into spec form.
func migrateOptionsV2(l legacyOptionsV2) (sim.Options, error) {
	ws, err := migrateWorkloads(l.Workload, l.TracePath)
	if err != nil {
		return sim.Options{}, err
	}
	o := sim.Options{
		Workloads:    ws,
		Cores:        l.Cores,
		Page:         l.Page,
		L2PF:         l.L2PF,
		L1PF:         l.L1PF,
		L3Policy:     l.L3Policy,
		LatePromote:  l.LatePromote,
		Instructions: l.Instructions,
		Seed:         l.Seed,
		CPU:          l.CPU,
		MaxCycles:    l.MaxCycles,
		Warmup:       l.Warmup,
		WarmupPF:     l.WarmupPF,
	}
	if _, err := prefetch.NormalizeL2(o.L2PF); err != nil {
		return sim.Options{}, err
	}
	if _, err := prefetch.NormalizeL1(o.L1PF); err != nil {
		return sim.Options{}, err
	}
	return o, nil
}

// migrateOptionsV1 translates the enum-era options into spec form.
func migrateOptionsV1(l legacyOptionsV1) (sim.Options, error) {
	ws, err := migrateWorkloads(l.Workload, l.TracePath)
	if err != nil {
		return sim.Options{}, err
	}
	o := sim.Options{
		Workloads:    ws,
		Cores:        l.Cores,
		Page:         l.Page,
		L3Policy:     l.L3Policy,
		LatePromote:  l.LatePromote,
		Instructions: l.Instructions,
		Seed:         l.Seed,
		CPU:          l.CPU,
		MaxCycles:    l.MaxCycles,
	}
	if l.StridePF {
		o.L1PF = prefetch.Spec{Name: "stride"}
	} else {
		o.L1PF = prefetch.Spec{Name: "none"}
	}
	switch l.L2PF {
	case "none", "nextline":
		o.L2PF = prefetch.Spec{Name: l.L2PF}
	case "offset":
		o.L2PF = sim.PFOffsetD(l.FixedOffset)
	case "bo":
		o.L2PF = boSpecFromParams(l.BOParams)
	case "sbp":
		o.L2PF = sbpSpecFromParams(l.SBPParams)
	default:
		return sim.Options{}, fmt.Errorf("unknown v1 prefetcher kind %q", l.L2PF)
	}
	if _, err := prefetch.NormalizeL2(o.L2PF); err != nil {
		return sim.Options{}, err
	}
	return o, nil
}

// boSpecFromParams renders a v1 core.Params override as a "bo" spec,
// emitting only the parameters that differ from the registered defaults.
func boSpecFromParams(p *core.Params) prefetch.Spec {
	spec := prefetch.Spec{Name: "bo"}
	if p == nil {
		return spec
	}
	def := core.DefaultParams()
	set := func(key, value string) { spec = spec.With(key, value) }
	if p.RREntries != def.RREntries {
		set("rr", fmt.Sprint(p.RREntries))
	}
	if p.RRTagBits != def.RRTagBits {
		set("tagbits", fmt.Sprint(p.RRTagBits))
	}
	if p.ScoreMax != def.ScoreMax {
		set("scoremax", fmt.Sprint(p.ScoreMax))
	}
	if p.RoundMax != def.RoundMax {
		set("roundmax", fmt.Sprint(p.RoundMax))
	}
	if p.BadScore != def.BadScore {
		set("badscore", fmt.Sprint(p.BadScore))
	}
	if !slices.Equal(p.Offsets, def.Offsets) {
		set("offsets", prefetch.FormatInts(p.Offsets))
	}
	if p.Degree != 0 && p.Degree != 1 {
		set("degree", fmt.Sprint(p.Degree))
	}
	if p.InsertRRAtIssue {
		set("rratissue", "true")
	}
	if p.TriggerOnAllAccesses {
		set("allaccess", "true")
	}
	if p.AdaptiveThrottle {
		set("adaptive", "true")
		if p.MinBadScore != 0 {
			set("minbad", fmt.Sprint(p.MinBadScore))
		}
		if p.MaxBadScore != 4 {
			set("maxbad", fmt.Sprint(p.MaxBadScore))
		}
	}
	return spec
}

// sbpSpecFromParams renders a v1 sbp.Params override as an "sbp" spec.
func sbpSpecFromParams(p *sbp.Params) prefetch.Spec {
	spec := prefetch.Spec{Name: "sbp"}
	if p == nil {
		return spec
	}
	def := sbp.DefaultParams()
	set := func(key, value string) { spec = spec.With(key, value) }
	if p.Period != def.Period {
		set("period", fmt.Sprint(p.Period))
	}
	if p.BloomBits != def.BloomBits {
		set("bits", fmt.Sprint(p.BloomBits))
	}
	if p.BloomHash != def.BloomHash {
		set("hashes", fmt.Sprint(p.BloomHash))
	}
	if p.MaxIssue != def.MaxIssue {
		set("maxissue", fmt.Sprint(p.MaxIssue))
	}
	if p.Cutoff1 != def.Cutoff1 {
		set("cutoff1", fmt.Sprint(p.Cutoff1))
	}
	if p.Cutoff2 != def.Cutoff2 {
		set("cutoff2", fmt.Sprint(p.Cutoff2))
	}
	if p.Cutoff3 != def.Cutoff3 {
		set("cutoff3", fmt.Sprint(p.Cutoff3))
	}
	if !slices.Equal(p.Offsets, def.Offsets) {
		set("offsets", prefetch.FormatInts(p.Offsets))
	}
	return spec
}
