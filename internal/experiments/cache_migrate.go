package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"bopsim/internal/core"
	"bopsim/internal/cpu"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sbp"
	"bopsim/internal/sim"
)

// This file migrates version-1 result-cache entries — written when Options
// still carried the closed PrefetcherKind enum and its per-kind escape
// hatches (FixedOffset, BOParams, SBPParams, StridePF) — to the version-2
// spec-based schema. Simulator behaviour did not change between the
// schemas, only the configuration encoding, so the stored measurements stay
// valid; the entries just need their options translated and their files
// rekeyed under the new OptionsHash.

// legacyOptionsV1 mirrors the v1 sim.Options JSON encoding.
type legacyOptionsV1 struct {
	Workload     string
	TracePath    string
	Cores        int
	Page         mem.PageSize
	L2PF         string
	FixedOffset  int
	L3Policy     string
	StridePF     bool
	LatePromote  bool
	Instructions uint64
	Seed         uint64
	BOParams     *core.Params
	SBPParams    *sbp.Params
	CPU          cpu.Config
	MaxCycles    uint64
}

// MigrateCache rewrites every version-1 entry under dir to the current
// schema and key, removing the old file. Entries already at the current
// version are untouched; unreadable or unmappable entries are dropped (the
// affected runs simply re-execute). It returns how many entries were
// migrated and how many dropped.
func MigrateCache(dir string) (migrated, dropped int, err error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, 0, err
	}
	dc := diskCache{dir}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			continue
		}
		var probe struct {
			Version int `json:"version"`
		}
		if err := json.Unmarshal(b, &probe); err != nil || probe.Version == resultCacheVersion {
			continue
		}
		if probe.Version != 1 {
			continue // unknown schema: leave it alone
		}
		var legacy struct {
			Options legacyOptionsV1 `json:"options"`
			Result  sim.Result      `json:"result"`
		}
		drop := func() {
			os.Remove(f)
			dropped++
		}
		if err := json.Unmarshal(b, &legacy); err != nil {
			drop()
			continue
		}
		opts, err := migrateOptionsV1(legacy.Options)
		if err != nil {
			drop()
			continue
		}
		if err := dc.store(OptionsHash(opts), opts, legacy.Result); err != nil {
			return migrated, dropped, err
		}
		os.Remove(f)
		migrated++
	}
	return migrated, dropped, nil
}

// migrateOptionsV1 translates the enum-era options into spec form.
func migrateOptionsV1(l legacyOptionsV1) (sim.Options, error) {
	o := sim.Options{
		Workload:     l.Workload,
		TracePath:    l.TracePath,
		Cores:        l.Cores,
		Page:         l.Page,
		L3Policy:     l.L3Policy,
		LatePromote:  l.LatePromote,
		Instructions: l.Instructions,
		Seed:         l.Seed,
		CPU:          l.CPU,
		MaxCycles:    l.MaxCycles,
	}
	if l.StridePF {
		o.L1PF = prefetch.Spec{Name: "stride"}
	} else {
		o.L1PF = prefetch.Spec{Name: "none"}
	}
	switch l.L2PF {
	case "none", "nextline":
		o.L2PF = prefetch.Spec{Name: l.L2PF}
	case "offset":
		o.L2PF = sim.PFOffsetD(l.FixedOffset)
	case "bo":
		o.L2PF = boSpecFromParams(l.BOParams)
	case "sbp":
		o.L2PF = sbpSpecFromParams(l.SBPParams)
	default:
		return sim.Options{}, fmt.Errorf("unknown v1 prefetcher kind %q", l.L2PF)
	}
	if _, err := prefetch.NormalizeL2(o.L2PF); err != nil {
		return sim.Options{}, err
	}
	return o, nil
}

// boSpecFromParams renders a v1 core.Params override as a "bo" spec,
// emitting only the parameters that differ from the registered defaults.
func boSpecFromParams(p *core.Params) prefetch.Spec {
	spec := prefetch.Spec{Name: "bo"}
	if p == nil {
		return spec
	}
	def := core.DefaultParams()
	set := func(key, value string) { spec = spec.With(key, value) }
	if p.RREntries != def.RREntries {
		set("rr", fmt.Sprint(p.RREntries))
	}
	if p.RRTagBits != def.RRTagBits {
		set("tagbits", fmt.Sprint(p.RRTagBits))
	}
	if p.ScoreMax != def.ScoreMax {
		set("scoremax", fmt.Sprint(p.ScoreMax))
	}
	if p.RoundMax != def.RoundMax {
		set("roundmax", fmt.Sprint(p.RoundMax))
	}
	if p.BadScore != def.BadScore {
		set("badscore", fmt.Sprint(p.BadScore))
	}
	if !slices.Equal(p.Offsets, def.Offsets) {
		set("offsets", prefetch.FormatInts(p.Offsets))
	}
	if p.Degree != 0 && p.Degree != 1 {
		set("degree", fmt.Sprint(p.Degree))
	}
	if p.InsertRRAtIssue {
		set("rratissue", "true")
	}
	if p.TriggerOnAllAccesses {
		set("allaccess", "true")
	}
	if p.AdaptiveThrottle {
		set("adaptive", "true")
		if p.MinBadScore != 0 {
			set("minbad", fmt.Sprint(p.MinBadScore))
		}
		if p.MaxBadScore != 4 {
			set("maxbad", fmt.Sprint(p.MaxBadScore))
		}
	}
	return spec
}

// sbpSpecFromParams renders a v1 sbp.Params override as an "sbp" spec.
func sbpSpecFromParams(p *sbp.Params) prefetch.Spec {
	spec := prefetch.Spec{Name: "sbp"}
	if p == nil {
		return spec
	}
	def := sbp.DefaultParams()
	set := func(key, value string) { spec = spec.With(key, value) }
	if p.Period != def.Period {
		set("period", fmt.Sprint(p.Period))
	}
	if p.BloomBits != def.BloomBits {
		set("bits", fmt.Sprint(p.BloomBits))
	}
	if p.BloomHash != def.BloomHash {
		set("hashes", fmt.Sprint(p.BloomHash))
	}
	if p.MaxIssue != def.MaxIssue {
		set("maxissue", fmt.Sprint(p.MaxIssue))
	}
	if p.Cutoff1 != def.Cutoff1 {
		set("cutoff1", fmt.Sprint(p.Cutoff1))
	}
	if p.Cutoff2 != def.Cutoff2 {
		set("cutoff2", fmt.Sprint(p.Cutoff2))
	}
	if p.Cutoff3 != def.Cutoff3 {
		set("cutoff3", fmt.Sprint(p.Cutoff3))
	}
	if !slices.Equal(p.Offsets, def.Offsets) {
		set("offsets", prefetch.FormatInts(p.Offsets))
	}
	return spec
}
