package experiments

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVerifyCacheCleanAndTampered is the -verify contract: a freshly
// written cache verifies clean, a tampered result is caught, and corrupt
// files are skipped rather than trusted or fatal.
func TestVerifyCacheCleanAndTampered(t *testing.T) {
	dir := t.TempDir()
	r := tinyRunner()
	r.CacheDir = dir
	r.Fig2() // 2 benchmarks x 1 config = 2 entries
	executed := int(r.Executed())

	rep, err := VerifyCache(dir, 0, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != executed || rep.Checked != executed || rep.Mismatched != 0 || rep.Skipped != 0 {
		t.Fatalf("clean cache: %+v, want %d entries all checked, none mismatched", rep, executed)
	}

	// Tamper with one stored result (keeping the schema version valid):
	// verification must flag exactly that entry.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files (err %v)", err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var e CacheEntry
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	e.Result.IPC += 0.25
	tampered, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err = VerifyCache(dir, 0, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatched != 1 {
		t.Errorf("tampered cache: %d mismatches, want 1 (%+v)", rep.Mismatched, rep)
	}

	// A corrupt file is skipped, not a mismatch.
	if err := os.WriteFile(filepath.Join(dir, "bogus.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyCache(dir, 0, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 {
		t.Errorf("corrupt file: %d skipped, want 1 (%+v)", rep.Skipped, rep)
	}

	// An entry filed under a key its options no longer hash to (e.g. a
	// trace edited in place) is unreachable by any lookup: orphaned, not
	// a trust failure.
	if err := os.Rename(files[1], filepath.Join(dir, strings.Repeat("f", 64)+".json")); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyCache(dir, 0, 1, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Orphaned != 1 {
		t.Errorf("mis-keyed entry: %d orphaned, want 1 (%+v)", rep.Orphaned, rep)
	}
}

// TestVerifyCacheSampling checks the sample bound is honoured and that
// sampling is deterministic in the seed.
func TestVerifyCacheSampling(t *testing.T) {
	dir := t.TempDir()
	r := tinyRunner()
	r.CacheDir = dir
	r.Fig6() // 4 entries
	if r.Executed() < 2 {
		t.Fatalf("expected several cache entries, got %d", r.Executed())
	}

	rep, err := VerifyCache(dir, 1, 42, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 1 {
		t.Errorf("checked %d entries with sample=1, want 1", rep.Checked)
	}
	if rep.Entries != int(r.Executed()) {
		t.Errorf("report says %d entries, cache has %d", rep.Entries, r.Executed())
	}
}
