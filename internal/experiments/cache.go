package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"bopsim/internal/sim"
)

// resultCacheVersion is bumped whenever the simulator's behaviour or the
// Options/Result schema changes in a way that invalidates stored results.
const resultCacheVersion = 1

// OptionsHash returns the canonical cache key of one simulation run: a
// SHA-256 over the JSON encoding of the *normalized* options plus the cache
// schema version. Every option that can change the outcome participates
// (including Seed, TracePath, SBPParams, MaxCycles and the CPU config),
// and equivalent spellings of the same run — zero values versus explicit
// defaults — hash identically because normalization resolves them first.
//
// TracePath is keyed by path, not content; retraced files need a fresh
// cache directory.
func OptionsHash(o sim.Options) string {
	keyed := struct {
		Version int
		Options sim.Options
	}{resultCacheVersion, o.Normalized()}
	b, err := json.Marshal(keyed)
	if err != nil {
		panic(fmt.Sprintf("experiments: options not hashable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// optionsKey is the Runner's cache key. It is the full-options hash, so
// runs differing in any outcome-affecting field never alias.
func optionsKey(o sim.Options) string { return OptionsHash(o) }

// cacheEntry is the on-disk record format: one JSON file per completed
// simulation, named <OptionsHash>.json, self-describing via the stored
// options so a human (or a migration tool) can see what produced it.
type cacheEntry struct {
	Version int         `json:"version"`
	Options sim.Options `json:"options"`
	Result  sim.Result  `json:"result"`
}

// diskCache persists simulation results under one directory.
type diskCache struct{ dir string }

func (c diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the stored result for key, if present and schema-compatible.
func (c diskCache) load(key string) (sim.Result, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e cacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Version != resultCacheVersion {
		return sim.Result{}, false
	}
	return e.Result, true
}

// store writes the result for key atomically (temp file + rename), so a
// concurrent reader never observes a partial entry and an interrupted run
// never corrupts the cache.
func (c diskCache) store(key string, o sim.Options, res sim.Result) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(cacheEntry{resultCacheVersion, o.Normalized(), res}, "", " ")
	if err != nil {
		return err
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path(key))
}
