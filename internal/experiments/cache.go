package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// resultCacheVersion is bumped whenever the simulator's behaviour or the
// Options/Result schema changes in a way that invalidates stored results.
//
// v2: Options moved from the closed PrefetcherKind enum (+ FixedOffset/
// BOParams/SBPParams/StridePF escape hatches) to prefetch.Spec fields, and
// TracePath is keyed by trace *content* rather than path.
//
// v3: Options moved from the Workload/TracePath pair to per-core workload
// specs (Options.Workloads); file replays are keyed inside the spec by
// content hash (trace.HashSpec). MigrateCache rewrites v1 and v2 entries
// in place.
const resultCacheVersion = 3

// OptionsHash returns the canonical cache key of one simulation run: a
// SHA-256 over the JSON encoding of the *normalized* options plus the cache
// schema version. Every option that can change the outcome participates
// (including Seed, the prefetcher specs, MaxCycles and the CPU config), and
// equivalent spellings of the same run — zero values versus explicit
// defaults, specs with spelled-out default parameters — hash identically
// because normalization resolves them first.
//
// Trace replays are keyed by the SHA-256 of the trace file's content, not
// its path: each "file" workload spec is rewritten to its hash form
// (trace.HashSpec), so editing a trace invalidates its cached results, and
// moving or copying one preserves them. An unreadable trace falls back to
// path keying (the simulation will fail with the real error anyway).
func OptionsHash(o sim.Options) string {
	keyed := struct {
		Version int
		Options sim.Options
	}{Version: resultCacheVersion, Options: o.Normalized()}
	// Normalized always reallocates the spec slice, so rewriting entries
	// here never aliases the caller's options.
	for i, w := range keyed.Options.Workloads {
		keyed.Options.Workloads[i] = trace.HashSpec(w)
	}
	b, err := json.Marshal(keyed)
	if err != nil {
		panic(fmt.Sprintf("experiments: options not hashable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// optionsKey is the Runner's cache key. It is the full-options hash, so
// runs differing in any outcome-affecting field never alias.
func optionsKey(o sim.Options) string { return OptionsHash(o) }

// CacheEntry is the on-disk record format: one JSON file per completed
// simulation, named <OptionsHash>.json, self-describing via the stored
// options so a human (or a migration tool) can see what produced it. It
// doubles as the wire format a distrib worker returns a finished job in —
// the coordinator writes received entries straight into this cache.
//
//bovet:schemalock
type CacheEntry struct {
	Version int         `json:"version"`
	Options sim.Options `json:"options"`
	Result  sim.Result  `json:"result"`
}

// SchemaVersion reports the current result-cache schema version. Remote
// workers refuse jobs from a coordinator on a different schema, since a
// version mismatch means the simulator's behaviour (or the options
// encoding) differs.
func SchemaVersion() int { return resultCacheVersion }

// TraceContentSHA returns the hex SHA-256 of the trace file's content
// (memoized by size+mtime), or "" when the file cannot be read. It is the
// identity trace replays are cache-keyed by, and what a distrib
// coordinator sends instead of a path so workers can resolve their own
// local copy.
func TraceContentSHA(path string) string { return trace.ContentSHA(path) }

// diskCache persists simulation results under one directory.
type diskCache struct{ dir string }

func (c diskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the stored result for key, if present and schema-compatible.
func (c diskCache) load(key string) (sim.Result, bool) {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return sim.Result{}, false
	}
	var e CacheEntry
	if err := json.Unmarshal(b, &e); err != nil || e.Version != resultCacheVersion {
		return sim.Result{}, false
	}
	return e.Result, true
}

// store writes the result for key atomically (temp file + rename), so a
// concurrent reader never observes a partial entry and an interrupted run
// never corrupts the cache.
func (c diskCache) store(key string, o sim.Options, res sim.Result) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(CacheEntry{resultCacheVersion, o.Normalized(), res}, "", " ")
	if err != nil {
		return err
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path(key))
}

// EvictCache is the size-bounded eviction pass: when the cache directory's
// .json entries exceed maxBytes, the oldest entries (by modification time,
// i.e. least recently written) are deleted until the total fits. It returns
// how many entries were removed and how many bytes were freed. A maxBytes
// <= 0 budget disables eviction.
func EvictCache(dir string, maxBytes int64) (removed int, freed int64, err error) {
	if maxBytes <= 0 {
		return 0, 0, nil
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return 0, 0, err
	}
	type entry struct {
		path  string
		size  int64
		mtime int64
	}
	var entries []entry
	var total int64
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			continue // raced with another process; skip
		}
		entries = append(entries, entry{path: f, size: st.Size(), mtime: st.ModTime().UnixNano()})
		total += st.Size()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return removed, freed, err
		}
		total -= e.size
		removed++
		freed += e.size
	}
	return removed, freed, nil
}
