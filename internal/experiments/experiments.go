// Package experiments regenerates every table and figure of the paper's
// evaluation (sections 5 and 6). Each FigN function runs the simulations
// that figure needs and returns text tables with the same rows (the 29
// benchmarks plus the geometric mean) and series (the baseline
// configurations) the paper plots. Speedups are computed exactly as in the
// paper: IPC relative to the same configuration with the baseline L2
// next-line prefetcher.
//
// The Runner is a scheduler, not a loop: every figure first enumerates the
// simulations it needs, the deduplicated job set runs on a worker pool
// (optionally backed by a persistent on-disk result cache), and the table
// is then assembled serially from the warm cache — so output bytes never
// depend on worker count or interleaving. See scheduler.go and DESIGN.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bopsim/internal/core"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sim"
	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

// CoreConfig is one baseline configuration: active core count x page size.
type CoreConfig struct {
	Cores int
	Page  mem.PageSize
}

// Label returns the paper-style configuration name.
func (c CoreConfig) Label() string { return sim.ConfigLabel(c.Cores, c.Page) }

// AllConfigs returns the paper's six baseline configurations.
func AllConfigs() []CoreConfig {
	var out []CoreConfig
	for _, page := range []mem.PageSize{mem.Page4K, mem.Page4M} {
		for _, cores := range []int{1, 2, 4} {
			out = append(out, CoreConfig{Cores: cores, Page: page})
		}
	}
	return out
}

// QuickConfigs returns a representative subset for fast regeneration:
// single-core at both page sizes plus the 2-core 4MB configuration where
// the paper's BO gains are largest.
func QuickConfigs() []CoreConfig {
	return []CoreConfig{
		{Cores: 1, Page: mem.Page4K},
		{Cores: 1, Page: mem.Page4M},
		{Cores: 2, Page: mem.Page4M},
	}
}

// Runner schedules and caches simulation runs for the figures.
type Runner struct {
	Instructions uint64
	Seed         uint64
	// Benchmarks is the row set of every figure: one workload spec per
	// row, run on core 0 of each configuration (satellite cores get the
	// registry's "microthrash" default). The default is the paper's 29
	// SPEC stand-ins, but any registered spec works — parameterized
	// ("gups:footprint=64mb"), trace replays ("file:path=x.trace"), or
	// combinators ("mix:gens=stream+pchase").
	Benchmarks []trace.Spec
	Configs    []CoreConfig
	// Log, when non-nil, receives one line per simulation run or cache
	// load (concurrent workers' lines are serialized, but their order
	// follows completion order).
	Log io.Writer
	// Workers bounds the scheduler's worker pool; <= 0 means
	// runtime.GOMAXPROCS(0). Table bytes are identical for any value.
	Workers int
	// Backend, when non-nil, executes scheduled jobs instead of the
	// in-process pool — e.g. a distrib.Pool fanning out to remote
	// boworkerd daemons. Workers is ignored then; the backend sizes its
	// own concurrency. Results are cached identically either way, so
	// table bytes do not depend on where simulations ran.
	Backend ExecBackend
	// MaxErrors bounds how many job failures RunJobs accumulates before
	// it stops dispatching further jobs; <= 0 means a default of 16. The
	// returned error joins every collected failure.
	MaxErrors int
	// CacheDir, when non-empty, persists every result as JSON under this
	// directory (keyed by OptionsHash) and satisfies future runs from it.
	CacheDir string
	// Warmup, when non-zero, gives every scheduled run a warmup region of
	// this many instructions (engine.Options.Warmup): caches, TLBs and
	// DRAM state warm up first, statistics reset at the barrier, and only
	// the measured region is reported.
	Warmup uint64
	// Checkpoint enables warmup sharing: pending jobs are grouped by
	// warmup-equivalence key (WarmupKey — everything that shapes the
	// machine up to the barrier, excluding the swept prefetcher specs),
	// each group's warmup leg runs once and is checkpointed under
	// CheckpointDir, and every variant forks from the snapshot. Results
	// are byte-identical with or without it; it only removes redundant
	// warmup work. Requires Warmup > 0 to have any effect.
	Checkpoint bool
	// CheckpointDir is where warmup snapshots are cached (content-
	// addressed, one .ckpt per warmup group). Empty means a directory
	// named "checkpoints" under CacheDir, or a temporary one when CacheDir
	// is empty too.
	CheckpointDir string
	// Progress, when non-nil, is called after each scheduled job finishes
	// with (completed, total) for the current job set. It is called from
	// worker goroutines and must be safe for concurrent use.
	Progress func(done, total int)

	mu       sync.Mutex
	cache    map[string]sim.Result
	logMu    sync.Mutex
	executed atomic.Int64

	// ckptTmp is the lazily created private fallback snapshot directory
	// (see checkpointDir).
	ckptTmpOnce sync.Once
	ckptTmp     string

	statusMu sync.Mutex
	status   ProgressStatus
	setStart time.Time
}

// NewRunner returns a Runner with the full benchmark list and the given
// configurations.
func NewRunner(instructions uint64, configs []CoreConfig) *Runner {
	return &Runner{
		Instructions: instructions,
		Seed:         1,
		Benchmarks:   trace.BenchmarkSpecs(),
		Configs:      configs,
		cache:        make(map[string]sim.Result),
	}
}

// options builds the default run options for a workload and configuration.
func (r *Runner) options(wl trace.Spec, cc CoreConfig) sim.Options {
	o := sim.DefaultOptions("")
	o.Workloads = []trace.Spec{wl}
	o.Cores = cc.Cores
	o.Page = cc.Page
	o.Instructions = r.Instructions
	o.Seed = r.Seed
	o.Warmup = r.Warmup
	return o
}

// speedupTable builds a per-benchmark table of IPC(variant)/IPC(baseline)
// across all configured CoreConfigs, with a GM row.
func (r *Runner) speedupTable(title string, variant func(o sim.Options) sim.Options) *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable(title, cols...)
		for _, wl := range r.Benchmarks {
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				base := run(r.options(wl, cc))
				v := run(variant(r.options(wl, cc)))
				row[i] = stats.Speedup(base.IPC, v.IPC)
			}
			tb.AddRow(wl.String(), row...)
		}
		tb.AddGeoMeanRow()
		return tb
	})
}

// Table1 renders the baseline microarchitecture parameters.
func Table1() string {
	return `Table 1: baseline microarchitecture (as modelled)
  cores                      1/2/4 active (core 0 measured; others run the
                             cache-thrashing micro-benchmark)
  core model                 256-entry ROB, 4-wide effective dispatch/retire,
                             dependence-aware load issue, store buffer
  cache line                 64 bytes
  DL1                        32KB 8-way LRU, 3-cycle latency, 32 MSHRs
  L2 (private)               512KB 8-way LRU, 11-cycle latency,
                             16-entry fill queue
  L3 (shared)                8MB 16-way 5P, 21-cycle latency,
                             32-entry fill queue
  TLBs                       DTLB1 64, TLB2 512 entries
  DL1 prefetch               stride prefetcher, 64 entries, distance 16,
                             16-entry filter, TLB2-gated
  L2 prefetch                next-line (baseline), prefetch bits
  memory                     2 channels, 64-bit bus at 1/4 core clock,
                             8 banks/rank, 8KB row/rank
  DDR3 (bus cycles)          tCL=11 tRCD=11 tRP=11 tRAS=33 tCWL=8 tRTP=6
                             tWR=12 tWTR=6 tBURST=4
  memory controller          32-entry read + 32-entry write queue per core,
                             FR-FCFS, steady/urgent modes, 7-bit proportional
                             counters, write bursts of 16
  page size                  4KB / 4MB
`
}

// Table2 renders the BO prefetcher default parameters.
func Table2() string {
	p := core.DefaultParams()
	return fmt.Sprintf(`Table 2: BO prefetcher default parameters
  RR table entries  %d
  RR tag bits       %d
  SCOREMAX          %d
  ROUNDMAX          %d
  BADSCORE          %d
  scores/offsets    %d (offset list of section 4.2)
`, p.RREntries, p.RRTagBits, p.ScoreMax, p.RoundMax, p.BadScore, len(p.Offsets))
}

// Fig2 reports baseline IPC for every benchmark and configuration.
func (r *Runner) Fig2() *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable("Figure 2: baseline IPC (core 0)", cols...)
		for _, wl := range r.Benchmarks {
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				row[i] = run(r.options(wl, cc)).IPC
			}
			tb.AddRow(wl.String(), row...)
		}
		return tb
	})
}

// Fig3 reports the impact of replacing the 5P L3 policy with LRU and with
// DRRIP (4KB pages in the paper).
func (r *Runner) Fig3() []*stats.Table {
	var out []*stats.Table
	for _, pol := range []string{"LRU", "DRRIP"} {
		pol := pol
		out = append(out, r.speedupTable(
			fmt.Sprintf("Figure 3: L3 replacement %s vs 5P baseline", pol),
			func(o sim.Options) sim.Options { o.L3Policy = pol; return o }))
	}
	return out
}

// Fig4 reports the impact of disabling the DL1 stride prefetcher.
func (r *Runner) Fig4() *stats.Table {
	return r.speedupTable("Figure 4: DL1 stride prefetcher disabled (vs baseline)",
		func(o sim.Options) sim.Options { o.L1PF = prefetch.Spec{Name: "none"}; return o })
}

// Fig5 reports the impact of disabling the L2 next-line prefetcher.
func (r *Runner) Fig5() *stats.Table {
	return r.speedupTable("Figure 5: L2 next-line prefetcher disabled (vs baseline)",
		func(o sim.Options) sim.Options { o.L2PF = sim.PFNone; return o })
}

// Fig6 reports BO prefetcher speedup relative to next-line.
func (r *Runner) Fig6() *stats.Table {
	return r.speedupTable("Figure 6: BO prefetcher speedup (vs next-line baseline)",
		func(o sim.Options) sim.Options { o.L2PF = sim.PFBO; return o })
}

// Fig7 compares BO against fixed offsets 2..7 (geometric means only, as in
// the paper).
func (r *Runner) Fig7() *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable("Figure 7: BO vs fixed-offset prefetching (GM speedup)", cols...)
		addRow := func(label string, variant func(o sim.Options) sim.Options) {
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				ratios := make([]float64, 0, len(r.Benchmarks))
				for _, wl := range r.Benchmarks {
					base := run(r.options(wl, cc))
					v := run(variant(r.options(wl, cc)))
					ratios = append(ratios, stats.Speedup(base.IPC, v.IPC))
				}
				row[i] = stats.GeoMean(ratios)
			}
			tb.AddRow(label, row...)
		}
		addRow("BO", func(o sim.Options) sim.Options { o.L2PF = sim.PFBO; return o })
		for d := 2; d <= 7; d++ {
			d := d
			addRow(fmt.Sprintf("D=%d", d), func(o sim.Options) sim.Options {
				o.L2PF = sim.PFOffsetD(d)
				return o
			})
		}
		return tb
	})
}

// Fig8Offsets is the default offset sample for the fixed-offset sweep.
func Fig8Offsets() []int {
	var out []int
	for d := 2; d <= 32; d += 2 {
		out = append(out, d)
	}
	for d := 36; d <= 64; d += 4 {
		out = append(out, d)
	}
	for d := 72; d <= 256; d += 8 {
		out = append(out, d)
	}
	return out
}

// Fig8 sweeps fixed offsets on the four benchmarks of Figure 8 (4MB pages,
// 1 core), with the BO prefetcher's speedup as a reference row.
func (r *Runner) Fig8(offsets []int) *stats.Table {
	if offsets == nil {
		offsets = Fig8Offsets()
	}
	benchmarks := []trace.Spec{{Name: "433.milc"}, {Name: "459.GemsFDTD"}, {Name: "470.lbm"}, {Name: "462.libquantum"}}
	cc := CoreConfig{Cores: 1, Page: mem.Page4M}
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(benchmarks))
		for i, b := range benchmarks {
			cols[i] = b.String()
		}
		tb := stats.NewTable("Figure 8: fixed-offset sweep, 4MB pages, 1 core (speedup vs next-line)", cols...)
		boRow := make([]float64, len(benchmarks))
		for i, wl := range benchmarks {
			base := run(r.options(wl, cc))
			o := r.options(wl, cc)
			o.L2PF = sim.PFBO
			boRow[i] = stats.Speedup(base.IPC, run(o).IPC)
		}
		tb.AddRow("BO", boRow...)
		for _, d := range offsets {
			row := make([]float64, len(benchmarks))
			for i, wl := range benchmarks {
				base := run(r.options(wl, cc))
				o := r.options(wl, cc)
				o.L2PF = sim.PFOffsetD(d)
				row[i] = stats.Speedup(base.IPC, run(o).IPC)
			}
			tb.AddRow(fmt.Sprintf("D=%d", d), row...)
		}
		return tb
	})
}

// Fig9 sweeps the BADSCORE throttling threshold (GM speedups).
func (r *Runner) Fig9() *stats.Table {
	return r.boParamSweep("Figure 9: impact of BADSCORE (GM speedup vs next-line)",
		[]int{0, 1, 2, 5, 10}, "badscore", "BADSCORE=%d")
}

// Fig10 sweeps the RR table size (GM speedups).
func (r *Runner) Fig10() *stats.Table {
	return r.boParamSweep("Figure 10: impact of RR table size (GM speedup vs next-line)",
		[]int{32, 64, 128, 256, 512}, "rr", "RR=%d")
}

// boParamSweep sweeps one registered "bo" spec parameter across values —
// the parameter sweeps of Figures 9 and 10 are just spec variants now.
func (r *Runner) boParamSweep(title string, values []int, param string, labelFmt string) *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable(title, cols...)
		for _, v := range values {
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				ratios := make([]float64, 0, len(r.Benchmarks))
				for _, wl := range r.Benchmarks {
					base := run(r.options(wl, cc))
					o := r.options(wl, cc)
					o.L2PF = sim.PFBO.With(param, fmt.Sprint(v))
					ratios = append(ratios, stats.Speedup(base.IPC, run(o).IPC))
				}
				row[i] = stats.GeoMean(ratios)
			}
			tb.AddRow(fmt.Sprintf(labelFmt, v), row...)
		}
		return tb
	})
}

// Fig11 compares BO and SBP geometric-mean speedups over the baseline.
func (r *Runner) Fig11() *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable("Figure 11: BO vs SBP (GM speedup vs next-line baseline)", cols...)
		for _, spec := range []prefetch.Spec{sim.PFBO, sim.PFSBP} {
			spec := spec
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				ratios := make([]float64, 0, len(r.Benchmarks))
				for _, wl := range r.Benchmarks {
					base := run(r.options(wl, cc))
					o := r.options(wl, cc)
					o.L2PF = spec
					ratios = append(ratios, stats.Speedup(base.IPC, run(o).IPC))
				}
				row[i] = stats.GeoMean(ratios)
			}
			tb.AddRow(spec.String(), row...)
		}
		return tb
	})
}

// Fig12 reports per-benchmark BO speedup relative to SBP.
func (r *Runner) Fig12() *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable("Figure 12: BO speedup relative to SBP", cols...)
		for _, wl := range r.Benchmarks {
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				oBO := r.options(wl, cc)
				oBO.L2PF = sim.PFBO
				oSBP := r.options(wl, cc)
				oSBP.L2PF = sim.PFSBP
				row[i] = stats.Speedup(run(oSBP).IPC, run(oBO).IPC)
			}
			tb.AddRow(wl.String(), row...)
		}
		tb.AddGeoMeanRow()
		return tb
	})
}

// Fig13 reports DRAM accesses per kilo-instruction (4KB pages, 1 core) for
// no-prefetch, next-line, BO and SBP, on the memory-active benchmarks.
func (r *Runner) Fig13() *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cc := CoreConfig{Cores: 1, Page: mem.Page4K}
		specs := []prefetch.Spec{sim.PFNone, sim.PFNextLine, sim.PFBO, sim.PFSBP}
		cols := make([]string, len(specs))
		for i, s := range specs {
			cols[i] = s.String()
		}
		tb := stats.NewTable("Figure 13: DRAM accesses per 1000 instructions (4KB, 1 core)", cols...)
		type entry struct {
			wl  string
			row []float64
		}
		var entries []entry
		for _, wl := range r.Benchmarks {
			row := make([]float64, len(specs))
			for i, s := range specs {
				o := r.options(wl, cc)
				o.L2PF = s
				row[i] = run(o).DRAMAccessesPerKI
			}
			// The paper omits benchmarks that access DRAM infrequently.
			if row[1] >= 2 {
				entries = append(entries, entry{wl.String(), row})
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].wl < entries[j].wl })
		for _, e := range entries {
			tb.AddRow(e.wl, e.row...)
		}
		return tb
	})
}

// Zoo is the registry-driven ablation sweep: one row per *registered* L2
// prefetcher (default parameters), GM speedup over the next-line baseline
// across the configured CoreConfigs. Because the row set comes from
// prefetch.L2Names, a prefetcher added by registration alone — e.g.
// internal/multi — shows up here, scheduled and cached like every paper
// figure, with no engine or scheduler change.
func (r *Runner) Zoo() *stats.Table {
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable("Prefetcher zoo: registered L2 prefetchers (GM speedup vs next-line)", cols...)
		for _, name := range prefetch.L2Names() {
			spec := prefetch.Spec{Name: name}
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				ratios := make([]float64, 0, len(r.Benchmarks))
				for _, wl := range r.Benchmarks {
					base := run(r.options(wl, cc))
					o := r.options(wl, cc)
					o.L2PF = spec
					ratios = append(ratios, stats.Speedup(base.IPC, run(o).IPC))
				}
				row[i] = stats.GeoMean(ratios)
			}
			tb.AddRow(name, row...)
		}
		return tb
	})
}

// WorkloadZoo is Zoo's mirror on the workload axis: one row per
// *registered* workload generator (default parameters), reporting the BO
// prefetcher's speedup over the next-line baseline across the configured
// CoreConfigs. Because the row set comes from trace.Names, a generator
// added by registration alone shows up here — scheduled and cached like
// every paper figure — with no scheduler change. Generators that need
// parameters to exist at all (like "file", whose default spec names no
// trace) are skipped.
func (r *Runner) WorkloadZoo() *stats.Table {
	var rows []trace.Spec
	for _, name := range trace.Names() {
		spec := trace.Spec{Name: name}
		if _, err := trace.Normalize(spec); err != nil {
			continue // not buildable with defaults (e.g. "file")
		}
		rows = append(rows, spec)
	}
	return r.materialize(func(run runFunc) *stats.Table {
		cols := make([]string, len(r.Configs))
		for i, cc := range r.Configs {
			cols[i] = cc.Label()
		}
		tb := stats.NewTable("Workload zoo: registered generators (BO speedup vs next-line)", cols...)
		for _, wl := range rows {
			row := make([]float64, len(r.Configs))
			for i, cc := range r.Configs {
				base := run(r.options(wl, cc))
				o := r.options(wl, cc)
				o.L2PF = sim.PFBO
				row[i] = stats.Speedup(base.IPC, run(o).IPC)
			}
			tb.AddRow(wl.String(), row...)
		}
		return tb
	})
}
