package experiments

import (
	"fmt"
	"io"

	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

// This file is the one place the figure names are mapped to Runner
// methods. cmd/experiments dispatches its -figN flags through
// TargetTables, and the fleet service renders submitted sweeps through
// RenderTarget — the same enumeration, the same Runner calls — so a sweep
// executed remotely produces the table bytes a local serial run would,
// by construction rather than by test.

// TargetNames lists every renderable target in canonical output order
// (the order `experiments -all` prints; "wzoo" last, excluded from -all).
func TargetNames() []string {
	names := []string{"table1", "table2"}
	for i := 2; i <= 13; i++ {
		names = append(names, fmt.Sprintf("fig%d", i))
	}
	return append(names, "zoo", "wzoo")
}

// ValidTarget reports whether name is a renderable target.
func ValidTarget(name string) bool {
	for _, n := range TargetNames() {
		if n == name {
			return true
		}
	}
	return false
}

// TargetTables builds the tables for one figure target. The static text
// targets ("table1", "table2") have no tables — render those through
// RenderTarget. quick only affects targets whose job set depends on it
// beyond the Runner's own configuration (fig8 samples fewer offsets).
func TargetTables(r *Runner, name string, quick bool) ([]*stats.Table, error) {
	one := func(tb *stats.Table) ([]*stats.Table, error) { return []*stats.Table{tb}, nil }
	switch name {
	case "fig2":
		return one(r.Fig2())
	case "fig3":
		return r.Fig3(), nil
	case "fig4":
		return one(r.Fig4())
	case "fig5":
		return one(r.Fig5())
	case "fig6":
		return one(r.Fig6())
	case "fig7":
		return one(r.Fig7())
	case "fig8":
		offsets := Fig8Offsets()
		if quick {
			offsets = nil
			for d := 2; d <= 256; d += 6 {
				offsets = append(offsets, d)
			}
		}
		return one(r.Fig8(offsets))
	case "fig9":
		return one(r.Fig9())
	case "fig10":
		return one(r.Fig10())
	case "fig11":
		return one(r.Fig11())
	case "fig12":
		return one(r.Fig12())
	case "fig13":
		return one(r.Fig13())
	case "zoo":
		return one(r.Zoo())
	case "wzoo":
		return one(r.WorkloadZoo())
	default:
		return nil, fmt.Errorf("experiments: unknown target %q (want one of %v)", name, TargetNames())
	}
}

// QuickBenchmarks is the row subset quick mode uses (when no explicit
// workload list overrides it): every benchmark the paper's figures single
// out, plus compute-bound representatives so the GM stays meaningful.
// cmd/experiments' -quick and a fleet sweep with Quick set trim through
// this same function, which is what keeps their output bytes identical.
func QuickBenchmarks() []trace.Spec {
	want := map[string]bool{
		"403.gcc": true, "410.bwaves": true, "416.gamess": true,
		"429.mcf": true, "433.milc": true, "437.leslie3d": true,
		"450.soplex": true, "456.hmmer": true, "459.GemsFDTD": true,
		"462.libquantum": true, "465.tonto": true, "470.lbm": true,
		"471.omnetpp": true, "473.astar": true, "482.sphinx3": true,
		"483.xalancbmk": true,
	}
	var out []trace.Spec
	for _, b := range trace.Benchmarks() {
		if want[b] {
			out = append(out, trace.Spec{Name: b})
		}
	}
	return out
}

// RenderTarget runs one target on r and writes its canonical text
// rendering to w: exactly the bytes `experiments -<name>` prints to
// stdout for that target.
func RenderTarget(r *Runner, name string, quick bool, w io.Writer) error {
	switch name {
	case "table1":
		fmt.Fprint(w, Table1())
		fmt.Fprintln(w)
		return nil
	case "table2":
		fmt.Fprint(w, Table2())
		fmt.Fprintln(w)
		return nil
	}
	tables, err := TargetTables(r, name, quick)
	if err != nil {
		return err
	}
	for _, tb := range tables {
		tb.Render(w)
	}
	return nil
}
