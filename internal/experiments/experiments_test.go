package experiments

import (
	"strings"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/trace"
)

// tinyRunner keeps experiment tests fast: two benchmarks, one config, short
// runs.
func tinyRunner() *Runner {
	r := NewRunner(40_000, []CoreConfig{{Cores: 1, Page: mem.Page4K}})
	r.Benchmarks = []trace.Spec{{Name: "416.gamess"}, {Name: "456.hmmer"}}
	return r
}

func TestAllConfigsShape(t *testing.T) {
	cfgs := AllConfigs()
	if len(cfgs) != 6 {
		t.Fatalf("%d configs, want 6", len(cfgs))
	}
	labels := map[string]bool{}
	for _, c := range cfgs {
		labels[c.Label()] = true
	}
	for _, want := range []string{"1-core/4KB", "2-core/4KB", "4-core/4KB",
		"1-core/4MB", "2-core/4MB", "4-core/4MB"} {
		if !labels[want] {
			t.Errorf("missing config %s", want)
		}
	}
	if len(QuickConfigs()) >= len(cfgs) {
		t.Error("quick configs not a strict subset")
	}
}

func TestTables1And2Render(t *testing.T) {
	if !strings.Contains(Table1(), "DDR3") || !strings.Contains(Table1(), "512KB") {
		t.Error("Table 1 missing expected content")
	}
	tb2 := Table2()
	for _, want := range []string{"SCOREMAX", "31", "ROUNDMAX", "100", "52"} {
		if !strings.Contains(tb2, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestFig2ProducesIPCRows(t *testing.T) {
	r := tinyRunner()
	tb := r.Fig2()
	if len(tb.Rows()) != 2 {
		t.Fatalf("%d rows, want 2", len(tb.Rows()))
	}
	v, ok := tb.Value("416.gamess", 0)
	if !ok || v <= 0 || v > 4 {
		t.Errorf("IPC cell = %v (ok=%v)", v, ok)
	}
}

func TestFig6SpeedupTableHasGM(t *testing.T) {
	r := tinyRunner()
	tb := r.Fig6()
	gm, ok := tb.Value("GM", 0)
	if !ok {
		t.Fatal("no GM row")
	}
	if gm < 0.5 || gm > 2 {
		t.Errorf("GM speedup %v implausible", gm)
	}
}

func TestRunCacheReuse(t *testing.T) {
	r := tinyRunner()
	r.Fig6()
	runsAfterFig6 := len(r.cache)
	r.Fig6() // identical work: fully cached
	if len(r.cache) != runsAfterFig6 {
		t.Errorf("cache grew on repeat: %d -> %d", runsAfterFig6, len(r.cache))
	}
	// Figure 5 shares the baselines with Figure 6: only the no-prefetch
	// variants should be new.
	r.Fig5()
	if got := len(r.cache); got != runsAfterFig6+2 {
		t.Errorf("cache has %d entries after Fig5, want %d", got, runsAfterFig6+2)
	}
}

// TestZooCoversRegistry checks the registry-driven sweep has one row per
// registered L2 prefetcher — including "multi", which exists only via
// registration — and that the baseline rows are exactly 1.0.
func TestZooCoversRegistry(t *testing.T) {
	r := tinyRunner()
	tb := r.Zoo()
	rows := map[string]bool{}
	for _, row := range tb.Rows() {
		rows[row] = true
	}
	for _, want := range []string{"none", "nextline", "offset", "bo", "sbp", "multi"} {
		if !rows[want] {
			t.Errorf("zoo table missing registered prefetcher %q (rows %v)", want, tb.Rows())
		}
	}
	if v, ok := tb.Value("nextline", 0); !ok || v != 1.0 {
		t.Errorf("nextline speedup vs itself = %v, want exactly 1", v)
	}
	if v, ok := tb.Value("multi", 0); !ok || v <= 0 {
		t.Errorf("multi speedup = %v (ok=%v)", v, ok)
	}
	// The sweep schedules through the same cache as the figures: repeating
	// it must execute nothing new.
	executed := r.Executed()
	r.Zoo()
	if r.Executed() != executed {
		t.Error("repeated Zoo re-executed cached simulations")
	}
}

func TestFig8OffsetsSampled(t *testing.T) {
	offs := Fig8Offsets()
	if offs[0] != 2 || offs[len(offs)-1] != 256 {
		t.Errorf("Fig8 offsets span %d..%d, want 2..256", offs[0], offs[len(offs)-1])
	}
	seen := map[int]bool{}
	for _, d := range offs {
		if seen[d] {
			t.Errorf("duplicate offset %d", d)
		}
		seen[d] = true
	}
	if !seen[32] || !seen[160] {
		t.Error("key sweep points missing")
	}
}

func TestFig13FiltersQuietBenchmarks(t *testing.T) {
	r := tinyRunner()
	tb := r.Fig13()
	// Every included row must actually be DRAM-active under the next-line
	// baseline (the filter threshold), and every excluded benchmark quiet.
	included := map[string]bool{}
	for _, row := range tb.Rows() {
		included[row] = true
		v, ok := tb.Value(row, 1) // next-line column
		if !ok || v < 2 {
			t.Errorf("row %s included with next-line traffic %.2f/KI", row, v)
		}
	}
	for _, wl := range r.Benchmarks {
		if included[wl.String()] {
			continue
		}
		o := r.options(wl, CoreConfig{Cores: 1, Page: mem.Page4K})
		res := r.run(o)
		if res.DRAMAccessesPerKI >= 2 {
			t.Errorf("benchmark %s excluded despite %.2f accesses/KI", wl, res.DRAMAccessesPerKI)
		}
	}
}
