package experiments

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestStatusTracksJobSet checks the Runner's progress snapshot: active
// with live slot assignments mid-sweep, frozen and idle afterwards.
func TestStatusTracksJobSet(t *testing.T) {
	r := tinyRunner()
	r.Workers = 2

	var mu sync.Mutex
	sawActive := false
	sawAssignment := false
	r.Progress = func(done, total int) {
		s := r.Status()
		mu.Lock()
		defer mu.Unlock()
		if s.Active {
			sawActive = true
		}
		for _, slot := range s.Slots {
			if slot.Job != "" {
				sawAssignment = true
			}
		}
	}
	r.Fig6() // 4 sims on 2 slots

	mu.Lock()
	defer mu.Unlock()
	if !sawActive {
		t.Error("Status never reported Active during the job set")
	}
	if !sawAssignment {
		t.Error("Status never showed a slot assignment during the job set")
	}
	s := r.Status()
	if s.Active {
		t.Error("Status still Active after RunJobs returned")
	}
	if s.Done != 4 || s.Total != 4 {
		t.Errorf("final status %d/%d, want 4/4", s.Done, s.Total)
	}
	if s.Executed != r.Executed() {
		t.Errorf("status Executed %d, Runner says %d", s.Executed, r.Executed())
	}
	if len(s.Slots) != 2 || !strings.HasPrefix(s.Slots[0].Label, "local/") {
		t.Errorf("slots %+v, want 2 local slots", s.Slots)
	}
	for _, slot := range s.Slots {
		if slot.Job != "" {
			t.Errorf("slot %s still shows assignment %q after completion", slot.Label, slot.Job)
		}
	}
	if s.ElapsedSeconds <= 0 || s.SimsPerSec <= 0 {
		t.Errorf("elapsed %.3fs, %.1f sims/s: want positive", s.ElapsedSeconds, s.SimsPerSec)
	}
}

// TestStatusHandlerServesJSON checks the -status endpoint end to end: the
// handler serves the snapshot as JSON and rejects non-GETs.
func TestStatusHandlerServesJSON(t *testing.T) {
	r := tinyRunner()
	r.Fig2()
	srv := httptest.NewServer(StatusHandler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /progress: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var s ProgressStatus
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Done != 2 || s.Total != 2 || s.Active {
		t.Errorf("served status %+v, want idle 2/2", s)
	}

	post, err := http.Post(srv.URL+"/progress", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST got %s, want 405", post.Status)
	}
}
