package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"bopsim/internal/engine"
	"bopsim/internal/sim"
	"bopsim/internal/trace"
)

// Warmup sharing. Every point of a sweep (offset/threshold sweeps, -zoo)
// replays the same trace warmup before its measured region; without
// sharing, a 40-variant sweep pays that warmup 40 times. The scheduler
// therefore groups pending jobs by warmup-equivalence key — the engine's
// WarmupSignature, which covers everything that shapes machine state up to
// the barrier and deliberately excludes the swept prefetcher specs — runs
// one warmup leg per group, checkpoints it, and forks every variant from
// the snapshot. Checkpoints are cached content-addressed on disk (named by
// signature hash, verified and shipped by content SHA-256 exactly like
// traces), so later invocations skip even the single warmup leg.
//
// Correctness never depends on a checkpoint: the engine's determinism
// guarantee makes a restored run byte-identical to a straight one, and
// every consumer (local backend, remote worker) falls back to the straight
// run when a snapshot is missing, corrupt or version-skewed.

// WarmupKey returns the hex SHA-256 of o's warmup signature: the identity
// of the warmup leg the run needs. Jobs with equal keys can fork from one
// checkpoint. It returns an error for jobs without a warmup region (there
// is nothing to share) or whose trace file is unreadable.
func WarmupKey(o sim.Options) (string, error) {
	o = o.Normalized()
	if o.Warmup == 0 {
		return "", fmt.Errorf("experiments: run has no warmup region")
	}
	sig, err := o.WarmupSignature()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(sig))
	return hex.EncodeToString(sum[:]), nil
}

// checkpointRef locates one warmup snapshot: where it lives on this
// machine and what its content hash is (the identity remote workers
// resolve against their own -trace-dir indexes).
type checkpointRef struct {
	path string
	sha  string
}

// checkpointStore manages the on-disk warmup snapshot cache: one
// <WarmupKey>.ckpt file per warmup-equivalence group.
type checkpointStore struct{ dir string }

func (c checkpointStore) pathFor(key string) string {
	return filepath.Join(c.dir, key+".ckpt")
}

// ensure returns the checkpoint for o's warmup group, running the warmup
// leg and writing the snapshot if no cached one exists.
func (c checkpointStore) ensure(ctx context.Context, o sim.Options) (checkpointRef, error) {
	key, err := WarmupKey(o)
	if err != nil {
		return checkpointRef{}, err
	}
	path := c.pathFor(key)
	if sha := trace.ContentSHA(path); sha != "" {
		return checkpointRef{path: path, sha: sha}, nil
	}
	data, err := runWarmupLeg(ctx, o)
	if err != nil {
		return checkpointRef{}, err
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return checkpointRef{}, err
	}
	if err := engine.WriteSnapshot(path, data); err != nil {
		return checkpointRef{}, err
	}
	sum := sha256.Sum256(data)
	return checkpointRef{path: path, sha: hex.EncodeToString(sum[:])}, nil
}

// runWarmupLeg executes one warmup region to its barrier and serializes the
// machine. For the default (shared) mode the leg's prefetcher specs are
// neutralized — the warmup runs with prefetching disabled anyway, so one
// leg serves every spec variant; under WarmupPF the specs are part of the
// group identity and stay.
func runWarmupLeg(ctx context.Context, o sim.Options) ([]byte, error) {
	if !o.WarmupPF {
		o.L2PF = sim.PFNone
		o.L1PF = sim.PFNone
	}
	s, err := engine.New(o)
	if err != nil {
		return nil, err
	}
	if err := s.RunWarmup(ctx); err != nil {
		return nil, err
	}
	return s.Checkpoint()
}

// checkpointDir resolves where warmup snapshots live: the configured
// directory, a "checkpoints" subdirectory of the result cache, or — as a
// last resort — a private temporary directory for this Runner. The
// fallback is deliberately fresh and 0700 rather than a fixed world-shared
// path: Restore trusts any snapshot whose signature matches, so a
// predictable shared directory would let another local user pre-plant
// forged machine state. Sharing snapshots across invocations needs
// CacheDir or CheckpointDir — long-lived callers should set one of them,
// since the fallback directory lives until something removes it
// (cmd/experiments creates and removes its own instead).
func (r *Runner) checkpointDir() string {
	if r.CheckpointDir != "" {
		return r.CheckpointDir
	}
	if r.CacheDir != "" {
		return filepath.Join(r.CacheDir, "checkpoints")
	}
	r.ckptTmpOnce.Do(func() {
		dir, err := os.MkdirTemp("", "bopsim-checkpoints-")
		if err != nil {
			r.logf("  checkpoint dir: %v; warmup sharing disabled\n", err)
			return
		}
		r.ckptTmp = dir
	})
	return r.ckptTmp
}

// ckptResolver lazily creates one checkpoint per warmup-equivalence group,
// on first demand from a dispatch slot. Laziness is the point: the first
// job of a group pays its group's warmup leg (or finds it cached), jobs of
// the same group wait on that leg only, and jobs of other groups keep the
// remaining slots busy — there is no global barrier stalling the whole
// sweep behind the slowest leg. Warmup legs always execute locally (they
// are the artifacts remote workers fork from), bounded to the local CPU
// count so a wide remote fleet cannot oversubscribe the coordinator.
type ckptResolver struct {
	store  checkpointStore
	sem    chan struct{}
	logf   func(format string, args ...any)
	mu     sync.Mutex
	groups map[string]*ckptEntry
}

type ckptEntry struct {
	once sync.Once
	ref  checkpointRef
	ok   bool
}

// checkpointResolver returns the Runner's lazy resolver, or nil when
// checkpointing is off or no snapshot directory could be resolved.
func (r *Runner) checkpointResolver() *ckptResolver {
	if !r.Checkpoint {
		return nil
	}
	dir := r.checkpointDir()
	if dir == "" {
		return nil
	}
	return &ckptResolver{
		store:  checkpointStore{dir: dir},
		sem:    make(chan struct{}, runtime.GOMAXPROCS(0)),
		logf:   r.logf,
		groups: make(map[string]*ckptEntry),
	}
}

// resolve returns o's group checkpoint, running the warmup leg on first
// demand. A group whose leg fails resolves to false: its jobs run
// straight, and the real error surfaces there.
func (c *ckptResolver) resolve(o sim.Options) (checkpointRef, bool) {
	key, err := WarmupKey(o)
	if err != nil {
		return checkpointRef{}, false // no warmup region or unreadable trace
	}
	c.mu.Lock()
	e := c.groups[key]
	if e == nil {
		e = &ckptEntry{}
		c.groups[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.sem <- struct{}{}
		defer func() { <-c.sem }()
		ref, err := c.store.ensure(context.Background(), o)
		if err != nil {
			c.logf("  warmup leg %.12s failed (%v); group runs without checkpoint\n", key, err)
			return
		}
		e.ref, e.ok = ref, true
		c.logf("  warmup %.12s ready (%s)\n", key, filepath.Base(ref.path))
	})
	return e.ref, e.ok
}
