package experiments

import (
	"encoding/json"
	"net/http"
	"time"
)

// This file is the Runner's observability surface: RunJobs maintains a
// ProgressStatus snapshot of the current (or last) job set — per-slot
// assignments included — and StatusHandler serves it as JSON, so a long
// `experiments -all -status :port` sweep can be watched from outside the
// process (and, when a distrib backend is wired in, shows which remote
// worker each simulation is on).

// SlotStatus is one execution slot's current assignment.
type SlotStatus struct {
	// Label names the slot ("local/3", "10.0.0.7:9123#1").
	Label string `json:"label"`
	// Job describes the simulation currently executing on the slot, or
	// "" when the slot is idle.
	Job string `json:"job,omitempty"`
}

// ProgressStatus is a point-in-time snapshot of the scheduler.
type ProgressStatus struct {
	// Active reports whether a job set is currently executing.
	Active bool `json:"active"`
	// Done and Total count the current (or, when idle, the last) job
	// set's scheduled simulations.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Executed counts simulations this Runner actually executed over its
	// lifetime (cache hits excluded), mirroring Runner.Executed.
	Executed uint64 `json:"executed"`
	// ElapsedSeconds is the wall time since the current job set started
	// (frozen at completion time once it finishes).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// SimsPerSec is Done/ElapsedSeconds for the current job set.
	SimsPerSec float64 `json:"sims_per_sec"`
	// Slots lists every execution slot and its current assignment.
	Slots []SlotStatus `json:"slots"`
}

// Status returns a snapshot of the scheduler's progress. Safe for
// concurrent use; cmd/experiments serves it over HTTP via StatusHandler.
func (r *Runner) Status() ProgressStatus {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	s := r.status
	s.Slots = append([]SlotStatus(nil), r.status.Slots...)
	if s.Active && !r.setStart.IsZero() {
		s.ElapsedSeconds = time.Since(r.setStart).Seconds()
	}
	if s.ElapsedSeconds > 0 {
		s.SimsPerSec = float64(s.Done) / s.ElapsedSeconds
	}
	s.Executed = r.Executed()
	return s
}

// beginJobSet resets the status snapshot for a new RunJobs invocation.
func (r *Runner) beginJobSet(backend ExecBackend, slots, total int) {
	labels := make([]SlotStatus, slots)
	for i := range labels {
		labels[i] = SlotStatus{Label: backend.SlotLabel(i)}
	}
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	r.setStart = time.Now()
	r.status = ProgressStatus{Active: true, Total: total, Slots: labels}
}

// endJobSet freezes the snapshot when RunJobs returns: elapsed time stops
// advancing and every slot reads idle.
func (r *Runner) endJobSet() {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	r.status.Active = false
	if !r.setStart.IsZero() {
		r.status.ElapsedSeconds = time.Since(r.setStart).Seconds()
	}
	for i := range r.status.Slots {
		r.status.Slots[i].Job = ""
	}
}

// setAssignment records what slot is executing (""= idle).
func (r *Runner) setAssignment(slot int, job string) {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	if slot < len(r.status.Slots) {
		r.status.Slots[slot].Job = job
	}
}

// noteDone advances the snapshot's completion counter monotonically
// (worker completions can report out of order).
func (r *Runner) noteDone(done int) {
	r.statusMu.Lock()
	defer r.statusMu.Unlock()
	if done > r.status.Done {
		r.status.Done = done
	}
}

// StatusHandler serves the Runner's progress snapshot as JSON on every
// GET ("/" and "/progress" alike), for `experiments -status :port`.
func StatusHandler(r *Runner) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(r.Status())
	})
}
