package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"bopsim/internal/sim"
	"bopsim/internal/stats"
	"bopsim/internal/trace"
)

// This file is the Runner's scheduler: figures enumerate the simulations
// they need, RunJobs deduplicates that set against everything already
// cached and executes the remainder on the configured ExecBackend (the
// in-process pool by default, a distrib worker fleet when one is wired
// in), and the figure then assembles its table serially from the warm
// cache — so the rendered output is byte-identical regardless of backend,
// worker count or interleaving.

// runFunc executes (or replays from cache) one simulation.
type runFunc func(sim.Options) sim.Result

// defaultMaxErrors bounds how many job failures RunJobs collects before it
// stops dispatching: enough that a sweep with a handful of bad specs
// reports them all in one pass, small enough that a systematically broken
// sweep doesn't burn hours failing every job.
const defaultMaxErrors = 16

// enumerationResult is what the recording stub hands back during the
// planning pass: harmless non-zero placeholders, since speedup and
// geometric-mean math reject non-positive values. The table built from
// them is discarded.
var enumerationResult = sim.Result{IPC: 1, DRAMAccessesPerKI: 1}

// materialize invokes build twice: first with a recording stub to
// enumerate every simulation the figure needs, then — after RunJobs has
// executed the deduplicated job set on the backend — against the warm
// cache to assemble the real table.
func (r *Runner) materialize(build func(run runFunc) *stats.Table) *stats.Table {
	var jobs []sim.Options
	build(func(o sim.Options) sim.Result {
		jobs = append(jobs, o)
		return enumerationResult
	})
	if err := r.RunJobs(jobs); err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return build(r.run)
}

// RunJobs executes every not-yet-cached simulation in opts on the
// execution backend and populates the Runner's caches. Duplicate entries
// (and entries already satisfied by the in-memory cache) are skipped, so
// callers can enumerate naively.
//
// Job failures are collected, not short-circuited: the returned error
// joins every failure (errors.Join), each prefixed with the run it
// belongs to, so a partially-failed sweep reports all its bad jobs in one
// pass. Dispatch stops early only once MaxErrors failures (default 16)
// have accumulated; in-flight jobs always complete.
func (r *Runner) RunJobs(opts []sim.Options) error {
	jobs := r.pendingJobs(opts)
	if len(jobs) == 0 {
		return nil
	}
	// Warmup sharing: each warmup group's leg is created lazily by the
	// first of its jobs to dispatch, and every variant forks from the
	// snapshot instead of replaying the warmup. Jobs whose group has no
	// usable checkpoint simply run straight — identical bytes, just
	// slower.
	ckpts := r.checkpointResolver()
	backend := r.backend()
	slots := backend.Slots()
	if slots < 1 {
		slots = 1
	}
	if slots > len(jobs) {
		slots = len(jobs)
	}
	maxErrors := r.MaxErrors
	if maxErrors <= 0 {
		maxErrors = defaultMaxErrors
	}

	total := len(jobs)
	r.beginJobSet(backend, slots, total)
	defer r.endJobSet()

	var done atomic.Int64
	var errMu sync.Mutex
	var errs []error
	tooManyErrors := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return len(errs) >= maxErrors
	}
	work := make(chan sim.Options)
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		slot := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range work {
				r.setAssignment(slot, describeOptions(o))
				_, err := r.runWith(o, func(o sim.Options) (sim.Result, error) {
					return r.execOnBackend(backend, slot, o, ckpts)
				})
				r.setAssignment(slot, "")
				if err != nil {
					errMu.Lock()
					errs = append(errs, fmt.Errorf("%s: %w", describeOptions(o), err))
					errMu.Unlock()
				}
				d := int(done.Add(1))
				r.noteDone(d)
				if r.Progress != nil {
					r.Progress(d, total)
				}
			}
		}()
	}
	for _, o := range jobs {
		// Stop dispatching once the failure budget is spent: the figure is
		// going to abort anyway, so don't burn hours finishing the sweep.
		if tooManyErrors() {
			break
		}
		work <- o
	}
	close(work)
	wg.Wait()
	return errors.Join(errs...)
}

// execOnBackend runs one job on the backend, forking from its warmup
// group's checkpoint when one can be resolved and the backend supports it.
func (r *Runner) execOnBackend(backend ExecBackend, slot int, o sim.Options, ckpts *ckptResolver) (sim.Result, error) {
	if ckpts != nil {
		if cb, ok := backend.(CheckpointBackend); ok {
			if ref, ok := ckpts.resolve(o); ok {
				return cb.RunFrom(slot, o, ref.path, ref.sha)
			}
		}
	}
	return backend.Run(slot, o)
}

// pendingJobs deduplicates opts by cache key and drops entries either
// cache already satisfies, preserving first-appearance order. Probing the
// disk cache here (not just per-job in runWith) matters for warmup
// sharing: a fully disk-cached rerun must schedule nothing, so
// prepareCheckpoints never pays a warmup leg for a group with no real work
// left. Disk hits are promoted into the in-memory cache, exactly as
// runWith would have done.
func (r *Runner) pendingJobs(opts []sim.Options) []sim.Options {
	type pending struct {
		o   sim.Options
		key string
	}
	seen := make(map[string]bool, len(opts))
	var maybe []pending
	r.mu.Lock()
	for _, o := range opts {
		k := optionsKey(o)
		if seen[k] {
			continue
		}
		seen[k] = true
		if _, ok := r.cache[k]; ok {
			continue
		}
		maybe = append(maybe, pending{o: o, key: k})
	}
	r.mu.Unlock()
	if r.CacheDir == "" || len(maybe) == 0 {
		jobs := make([]sim.Options, len(maybe))
		for i, p := range maybe {
			jobs[i] = p.o
		}
		return jobs
	}
	// Probe the disk cache concurrently — a mostly-cached rerun of a large
	// sweep would otherwise spend its startup in one goroutine's serial
	// read+decode loop — then apply the hits in input order so log lines
	// and the resulting job list stay deterministic.
	hits := make([]*sim.Result, len(maybe))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range maybe {
		i, key := i, p.key
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if res, ok := (diskCache{r.CacheDir}).load(key); ok {
				hits[i] = &res
			}
		}()
	}
	wg.Wait()
	var jobs []sim.Options
	for i, p := range maybe {
		if res := hits[i]; res != nil {
			r.mu.Lock()
			r.cache[p.key] = *res
			r.mu.Unlock()
			r.logf("  load %-55s IPC=%.3f\n", describeOptions(p.o), res.IPC)
			continue
		}
		jobs = append(jobs, p.o)
	}
	return jobs
}

// runWith executes one simulation via exec unless a cache satisfies it:
// in-memory first, then the on-disk cache (when CacheDir is set). Fresh
// results are written through to both, so a result computed by a remote
// worker lands in the shared disk cache in the same entry format a local
// run produces. Safe for concurrent use.
func (r *Runner) runWith(o sim.Options, exec func(sim.Options) (sim.Result, error)) (sim.Result, error) {
	key := optionsKey(o)
	r.mu.Lock()
	res, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	if r.CacheDir != "" {
		if res, ok := (diskCache{r.CacheDir}).load(key); ok {
			r.mu.Lock()
			r.cache[key] = res
			r.mu.Unlock()
			r.logf("  load %-55s IPC=%.3f\n", describeOptions(o), res.IPC)
			return res, nil
		}
	}
	res, err := exec(o)
	if err != nil {
		return sim.Result{}, err
	}
	r.executed.Add(1)
	r.logf("  ran  %-55s IPC=%.3f\n", describeOptions(o), res.IPC)
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	if r.CacheDir != "" {
		if err := (diskCache{r.CacheDir}).store(key, o, res); err != nil {
			r.logf("  cache write failed: %v\n", err)
		}
	}
	return res, nil
}

// runErr executes one simulation in-process unless a cache satisfies it.
// The figures' assembly pass uses it (via run) after RunJobs has warmed
// the cache, so it normally never executes anything.
func (r *Runner) runErr(o sim.Options) (sim.Result, error) {
	return r.runWith(o, sim.Run)
}

// run is runErr with the historical panic-on-error contract the figure
// builders rely on.
func (r *Runner) run(o sim.Options) sim.Result {
	res, err := r.runErr(o)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return res
}

// Executed returns how many simulations this Runner actually executed —
// locally or on a remote backend; cache hits, in memory or on disk, are
// not counted.
func (r *Runner) Executed() uint64 { return uint64(r.executed.Load()) }

// logf writes one progress line to r.Log, serializing concurrent workers.
func (r *Runner) logf(format string, args ...any) {
	if r.Log == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.Log, format, args...)
}

// describeOptions renders the human-readable run description used in log
// lines (the cache key itself is an opaque hash). Specs are
// self-describing, so their canonical strings carry every parameter that
// the old enum-era description had to special-case.
func describeOptions(o sim.Options) string {
	o = o.Normalized()
	// trace.SpecsLabel over the just-normalized specs — not WorkloadsLabel,
	// which would normalize a second time (registry normalization
	// constructs generators to validate, too much for a log line).
	d := fmt.Sprintf("%s|%d-core/%s|%s|%s|l1=%s|n=%d|seed=%d",
		trace.SpecsLabel(o.Workloads), o.Cores, o.Page, o.L2PF, o.L3Policy, o.L1PF, o.Instructions, o.Seed)
	if o.Warmup > 0 {
		d += fmt.Sprintf("|w=%d", o.Warmup)
	}
	return d
}
