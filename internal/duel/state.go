package duel

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// duelState mirrors the duel's own state and frames each candidate's state
// as opaque nested bytes, the way trace's GenState.Subs frames mix's
// sub-generator cursors. ASpec/BSpec pin the candidate identities: a restore
// into a duel built from different candidates is rejected before any nested
// frame is opened.
type duelState struct {
	ASpec string
	BSpec string
	A     []byte // candidate A's own prefetch.StateCodec frame
	B     []byte

	Winner int
	Count  int
	AScore int
	BScore int
	APend  []uint64
	BPend  []uint64
	AMarks []uint64
	BMarks []uint64
	Stats  Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	aFrame, err := p.ac.SaveState()
	if err != nil {
		return nil, fmt.Errorf("duel: saving candidate a: %w", err)
	}
	bFrame, err := p.bc.SaveState()
	if err != nil {
		return nil, fmt.Errorf("duel: saving candidate b: %w", err)
	}
	st := duelState{
		ASpec:  p.params.A.String(),
		BSpec:  p.params.B.String(),
		A:      aFrame,
		B:      bFrame,
		Winner: p.winner,
		Count:  p.count,
		AScore: p.aScore,
		BScore: p.bScore,
		APend:  make([]uint64, len(p.aPend)),
		BPend:  make([]uint64, len(p.bPend)),
		AMarks: make([]uint64, len(p.aMarks)),
		BMarks: make([]uint64, len(p.bMarks)),
		Stats:  p.stats,
	}
	for i, l := range p.aPend {
		st.APend[i] = uint64(l)
	}
	for i, l := range p.bPend {
		st.BPend[i] = uint64(l)
	}
	for i, l := range p.aMarks {
		st.AMarks[i] = uint64(l)
	}
	for i, l := range p.bMarks {
		st.BMarks[i] = uint64(l)
	}
	return prefetch.MarshalState(st)
}

// RestoreState implements prefetch.StateCodec. Everything is validated
// before anything is adopted, and the nested frames are opened by the
// candidates' own codecs — a truncated or mismatched child frame surfaces as
// their error, wrapped with which seat it sat in.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st duelState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if want := p.params.A.String(); st.ASpec != want {
		return fmt.Errorf("duel: state is for candidate a %q, this duel runs %q", st.ASpec, want)
	}
	if want := p.params.B.String(); st.BSpec != want {
		return fmt.Errorf("duel: state is for candidate b %q, this duel runs %q", st.BSpec, want)
	}
	if st.Winner != ownerA && st.Winner != ownerB {
		return fmt.Errorf("duel: winner %d out of range (want %d or %d)", st.Winner, ownerA, ownerB)
	}
	if st.Count < 0 || st.Count >= p.params.Period {
		return fmt.Errorf("duel: window count %d out of range 0..%d", st.Count, p.params.Period-1)
	}
	// One eligible access can consume a mark from each table, so the scores
	// bound independently against the window's access count.
	if st.AScore < 0 || st.BScore < 0 || st.AScore > st.Count || st.BScore > st.Count {
		return fmt.Errorf("duel: window scores %d/%d exceed the %d accesses observed", st.AScore, st.BScore, st.Count)
	}
	if len(st.APend) != len(p.aPend) || len(st.BPend) != len(p.bPend) ||
		len(st.AMarks) != len(p.aMarks) || len(st.BMarks) != len(p.bMarks) {
		return fmt.Errorf("duel: state pending/mark tables have %d/%d/%d/%d slots, prefetcher has %d",
			len(st.APend), len(st.BPend), len(st.AMarks), len(st.BMarks), len(p.aMarks))
	}
	if err := p.ac.RestoreState(st.A); err != nil {
		return fmt.Errorf("duel: restoring candidate a: %w", err)
	}
	if err := p.bc.RestoreState(st.B); err != nil {
		return fmt.Errorf("duel: restoring candidate b: %w", err)
	}
	p.winner = st.Winner
	p.count = st.Count
	p.aScore = st.AScore
	p.bScore = st.BScore
	for i, l := range st.APend {
		p.aPend[i] = mem.LineAddr(l)
	}
	for i, l := range st.BPend {
		p.bPend[i] = mem.LineAddr(l)
	}
	for i, l := range st.AMarks {
		p.aMarks[i] = mem.LineAddr(l)
	}
	for i, l := range st.BMarks {
		p.bMarks[i] = mem.LineAddr(l)
	}
	p.stats = st.Stats
	return nil
}
