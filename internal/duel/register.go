package duel

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Spec registration: "duel" joins the zoo through the registry alone, like
// multi did. The candidate specs are themselves registry specs, quoted with
// prefetch.QuoteSubSpec syntax since spec values cannot contain ':', '=' or
// ',' — e.g. "duel:a=bo.degree~2,b=multi.minscore~6,period=4096".
func init() {
	def := DefaultParams()
	prefetch.RegisterL2("duel", prefetch.Definition[prefetch.L2Prefetcher]{
		Help:         "set-dueling meta-prefetcher: two candidate specs race in sample sets, the winner drives the rest",
		Build:        buildSpec,
		Validate:     func(v prefetch.Values) error { _, err := buildSpec(mem.Page4K, v); return err },
		Canonicalize: prefetch.CanonicalizeSubSpecs("a", "b"),
		Defaults: map[string]string{
			"a":      "bo",
			"b":      "multi",
			"period": fmt.Sprint(def.Period),
			"margin": fmt.Sprint(def.Margin),
			"sets":   fmt.Sprint(def.Sets),
			"sample": fmt.Sprint(def.Sample),
			"recent": fmt.Sprint(def.Recent),
		},
	})
}

// buildSpec parses and validates duel's spec parameters, builds both
// candidates through the registry, and constructs the meta-prefetcher; the
// registered Validate hook delegates here (construction is cheap), so a spec
// Normalize accepts is always constructible.
func buildSpec(page mem.PageSize, v prefetch.Values) (prefetch.L2Prefetcher, error) {
	p := DefaultParams()
	var err error
	p.Period = v.Int("period", p.Period, &err)
	p.Margin = v.Int("margin", p.Margin, &err)
	p.Sets = v.Int("sets", p.Sets, &err)
	p.Sample = v.Int("sample", p.Sample, &err)
	p.Recent = v.Int("recent", p.Recent, &err)
	if err != nil {
		return nil, err
	}
	if p.Period < 1 {
		return nil, fmt.Errorf("period=%d must be >= 1", p.Period)
	}
	if p.Margin < 0 {
		return nil, fmt.Errorf("margin=%d must be >= 0", p.Margin)
	}
	if p.Sample < 2 {
		return nil, fmt.Errorf("sample=%d must be >= 2 (one set partition per candidate)", p.Sample)
	}
	if p.Sets < p.Sample {
		return nil, fmt.Errorf("sets=%d must be >= sample=%d", p.Sets, p.Sample)
	}
	if p.Recent < 1 {
		return nil, fmt.Errorf("recent=%d must be >= 1", p.Recent)
	}
	aRaw, bRaw := "bo", "multi"
	if s, ok := v["a"]; ok {
		aRaw = s
	}
	if s, ok := v["b"]; ok {
		bRaw = s
	}
	aSpec, a, err := BuildCandidate(aRaw, page)
	if err != nil {
		return nil, fmt.Errorf("candidate a: %v", err)
	}
	bSpec, b, err := BuildCandidate(bRaw, page)
	if err != nil {
		return nil, fmt.Errorf("candidate b: %v", err)
	}
	if aSpec.Equal(bSpec) {
		return nil, fmt.Errorf("candidates a and b are both %q: nothing to duel", aSpec)
	}
	p.A, p.B = aSpec, bSpec
	return New(p, a, b), nil
}

// BuildCandidate parses a quoted sub-spec and builds the child prefetcher it
// names, enforcing the meta-prefetcher nesting rules: the child must be a
// registered non-meta L2 prefetcher implementing prefetch.StateCodec, and a
// "none" child becomes an explicit prefetch.None instance so it can hold a
// seat. internal/adapt builds its base the same way.
func BuildCandidate(raw string, page mem.PageSize) (prefetch.Spec, prefetch.L2Prefetcher, error) {
	sp, err := prefetch.ParseSubSpec(raw)
	if err != nil {
		return prefetch.Spec{}, nil, err
	}
	norm, err := prefetch.NormalizeL2(sp)
	if err != nil {
		return prefetch.Spec{}, nil, err
	}
	pf, err := prefetch.NewL2(norm, page)
	if err != nil {
		return prefetch.Spec{}, nil, err
	}
	if pf == nil {
		pf = prefetch.None{}
	}
	if _, meta := pf.(prefetch.MetaL2); meta {
		return prefetch.Spec{}, nil, fmt.Errorf("%q is a meta-prefetcher: meta-prefetchers cannot nest", norm)
	}
	if _, ok := pf.(prefetch.StateCodec); !ok {
		return prefetch.Spec{}, nil, fmt.Errorf("%q does not implement prefetch.StateCodec, cannot be checkpointed as a child", norm)
	}
	return norm, pf, nil
}
