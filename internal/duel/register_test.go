package duel_test

// External test package: exercises duel exactly as the engine sees it, with
// the full registry linked (the in-package tests cannot import
// internal/prefetch/all — it imports duel back).

import (
	"strings"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	_ "bopsim/internal/prefetch/all"
)

func TestSpecNormalization(t *testing.T) {
	cases := []struct{ in, want string }{
		// The default candidates spelled out collapse to the bare name.
		{"duel:a=bo,b=multi", "duel"},
		{"duel:period=2048,sample=16", "duel"},
		// Quoted nested parameters survive normalization; the child spec is
		// canonicalized inside the quoting (multi's default maxissue drops).
		{"duel:a=bo.degree~2,period=512", "duel:a=bo.degree~2,period=512"},
		{"duel:b=multi.maxissue~4", "duel"},
		{"duel:b=multi.minscore~12;maxissue~4", "duel:b=multi.minscore~12"},
	}
	for _, c := range cases {
		got, err := prefetch.NormalizeL2(prefetch.MustSpec(c.in))
		if err != nil {
			t.Errorf("NormalizeL2(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("NormalizeL2(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestSpecBuilds(t *testing.T) {
	for _, good := range []string{
		"duel",
		"duel:a=offset.d~1,b=offset.d~33,period=256,margin=2,sets=64,sample=4",
		"duel:a=bo.degree~2;badscore~2,b=sbp",
		// "none" is a legal candidate: dueling a prefetcher against not
		// prefetching at all.
		"duel:a=none,b=bo",
	} {
		pf, err := prefetch.NewL2(prefetch.MustSpec(good), mem.Page4M)
		if err != nil {
			t.Errorf("NewL2(%q): %v", good, err)
			continue
		}
		if !strings.HasPrefix(pf.Name(), "duel[") {
			t.Errorf("NewL2(%q).Name() = %q", good, pf.Name())
		}
	}
}

func TestSpecRejections(t *testing.T) {
	for _, bad := range []string{
		// Meta-prefetchers cannot nest, in either seat.
		"duel:a=duel,b=bo",
		"duel:b=adapt.base~bo",
		// Identical candidates (after normalization) have nothing to duel.
		"duel:a=bo,b=bo",
		"duel:a=multi.maxissue~4", // normalizes to the default b=multi
		// Child spec errors surface through the parent.
		"duel:a=offset.d~0",
		"duel:a=nosuchpf",
		"duel:a=stride", // L1-only name
		// Dueling-parameter validation.
		"duel:sample=1",
		"duel:sets=8,sample=16",
		"duel:period=0",
		"duel:margin=-1",
		"duel:recent=0",
	} {
		if _, err := prefetch.NewL2(prefetch.MustSpec(bad), mem.Page4M); err == nil {
			t.Errorf("NewL2(%q) accepted", bad)
		}
	}
}
