package duel

import (
	"bytes"
	"testing"

	"bopsim/internal/core"
	"bopsim/internal/mem"
	"bopsim/internal/multi"
	"bopsim/internal/prefetch"
)

// harness emulates the hierarchy's side of the prefetcher contract: every
// OnAccess target is filled as a prefetch, and an access to a line that was
// prefetch-filled arrives as a prefetched hit (still eligible), which is
// exactly the event duel's scoring consumes.
type harness struct {
	pf         prefetch.L2Prefetcher
	prefetched map[mem.LineAddr]bool
}

func newHarness(pf prefetch.L2Prefetcher) *harness {
	return &harness{pf: pf, prefetched: make(map[mem.LineAddr]bool)}
}

// access drives one demand access and the fills it provokes, returning the
// issued targets.
func (h *harness) access(line mem.LineAddr) []mem.LineAddr {
	a := prefetch.AccessInfo{Line: line}
	if h.prefetched[line] {
		a.Hit, a.PrefetchedHit = true, true
		delete(h.prefetched, line)
	}
	targets := h.pf.OnAccess(a)
	for _, t := range targets {
		h.pf.OnFill(t, true)
		h.prefetched[t] = true
	}
	return targets
}

// testParams keeps windows short and partitions dense so a few thousand
// accesses settle the duel.
func testParams(a, b prefetch.Spec) Params {
	return Params{
		A: a, B: b,
		Period: 256,
		Margin: 2,
		Sets:   64,
		Sample: 4,
		Recent: 512,
	}
}

const pageLines = 65536 // 4MB page in 64B lines

// chunkedPhase is the short-stride phase: 16-line sequential bursts whose
// bases sit 997 lines apart, so offset 1 covers 15/16 accesses and offset 33
// covers none.
func chunkedPhase(h *harness, page mem.LineAddr, accesses int) {
	base := page * pageLines
	for i := 0; i < accesses/16; i++ {
		for j := mem.LineAddr(0); j < 16; j++ {
			h.access(base + mem.LineAddr(i)*997 + j)
		}
	}
}

// stridePhase is the long-stride phase: a stride-33 stream (33 is odd, so
// the walk visits every set of a power-of-two set count), wrapping inside
// one page; offset 33 covers nearly every access and offset 1 covers none.
func stridePhase(h *harness, page mem.LineAddr, accesses int) {
	base := page * pageLines
	for i := 0; i < accesses; i++ {
		h.access(base + mem.LineAddr(i*33%65000))
	}
}

// TestConvergesToBetterCandidatePerPhase is the acceptance scenario: two
// candidates that each lose one phase of a phase-switching workload. The
// duel must seat the short-stride specialist during chunked phases and the
// long-stride specialist during strided phases, switching both ways.
func TestConvergesToBetterCandidatePerPhase(t *testing.T) {
	p := testParams(prefetch.MustSpec("offset:d=1"), prefetch.MustSpec("offset:d=33"))
	pf := New(p,
		prefetch.NewFixedOffset(mem.Page4M, 1),
		prefetch.NewFixedOffset(mem.Page4M, 33))
	h := newHarness(pf)

	chunkedPhase(h, 0, 4096) // 16 windows
	if got := pf.Winner(); got != ownerA {
		t.Fatalf("after chunked phase: winner %d, want A (%d); stats %+v", got, ownerA, pf.Stats())
	}
	stridePhase(h, 8, 4096)
	if got := pf.Winner(); got != ownerB {
		t.Fatalf("after strided phase: winner %d, want B (%d); stats %+v", got, ownerB, pf.Stats())
	}
	chunkedPhase(h, 16, 4096)
	if got := pf.Winner(); got != ownerA {
		t.Fatalf("after second chunked phase: winner %d, want A (%d); stats %+v", got, ownerA, pf.Stats())
	}
	if s := pf.Stats(); s.Switches < 2 {
		t.Errorf("expected at least 2 seat switches, got %+v", s)
	}
}

// statefulDuel builds a duel over bo and multi — children with real learned
// state — for the nested-codec tests.
func statefulDuel() *Prefetcher {
	p := testParams(prefetch.MustSpec("bo"), prefetch.MustSpec("multi"))
	return New(p,
		core.New(mem.Page4M, core.DefaultParams()),
		multi.New(mem.Page4M, multi.DefaultParams()))
}

// TestMidWindowSaveRestore checkpoints a duel mid-window (count != 0, marks
// populated, children mid-learning) and requires the restored instance to
// issue identical prefetches and save identical bytes from then on.
func TestMidWindowSaveRestore(t *testing.T) {
	orig := statefulDuel()
	h := newHarness(orig)
	chunkedPhase(h, 0, 512)
	stridePhase(h, 8, 300) // 812 accesses: mid-window at period 256
	state, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	restored := statefulDuel()
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if restored.Winner() != orig.Winner() {
		t.Fatalf("restored winner %d != original %d", restored.Winner(), orig.Winner())
	}

	// The harness's prefetched-line set is hierarchy state, not prefetcher
	// state: the restored run must replay it too.
	h2 := newHarness(restored)
	for l := range h.prefetched {
		h2.prefetched[l] = true
	}
	for i := 0; i < 3000; i++ {
		line := mem.LineAddr(16*pageLines + i*7%60000)
		got := append([]mem.LineAddr(nil), h2.access(line)...)
		want := h.access(line)
		if len(got) != len(want) {
			t.Fatalf("access %d: restored issued %v, original %v", i, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("access %d: restored issued %v, original %v", i, got, want)
			}
		}
	}
	b1, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("diverged state bytes after identical post-restore streams")
	}
}

// TestRestoreRejections is the rejection matrix: every malformed or
// mismatched state must error without panicking, and a candidate-spec
// mismatch must be caught before any nested frame is opened.
func TestRestoreRejections(t *testing.T) {
	pf := statefulDuel()
	h := newHarness(pf)
	chunkedPhase(h, 0, 700)
	good, err := pf.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	var st duelState
	if err := prefetch.UnmarshalState(good, &st); err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*duelState)) []byte {
		var c duelState
		if err := prefetch.UnmarshalState(good, &c); err != nil {
			t.Fatal(err)
		}
		f(&c)
		b, err := prefetch.MarshalState(c)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte(`{"Nope":1}`)},
		{"truncated json", good[:len(good)/2]},
		{"candidate a spec mismatch", mutate(func(s *duelState) { s.ASpec = "offset:d=7" })},
		{"candidate b spec mismatch", mutate(func(s *duelState) { s.BSpec = "sbp" })},
		{"winner out of range", mutate(func(s *duelState) { s.Winner = ownerFollower })},
		{"window count at period", mutate(func(s *duelState) { s.Count = pf.params.Period })},
		{"negative window count", mutate(func(s *duelState) { s.Count = -1 })},
		{"scores exceed count", mutate(func(s *duelState) { s.AScore = s.Count + 1 })},
		{"mark table resized", mutate(func(s *duelState) { s.AMarks = s.AMarks[:4] })},
		{"truncated nested frame", mutate(func(s *duelState) { s.A = s.A[:len(s.A)-3] })},
		{"empty nested frame", mutate(func(s *duelState) { s.B = nil })},
	}
	for _, c := range cases {
		fresh := statefulDuel()
		if err := fresh.RestoreState(c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// The good bytes still restore after all that.
	if err := statefulDuel().RestoreState(good); err != nil {
		t.Errorf("good state rejected: %v", err)
	}
}

// TestSteadyStateZeroAlloc pins duel's own hot-path cost: once the mark
// tables exist, accesses, fills and window boundaries allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := testParams(prefetch.MustSpec("offset:d=1"), prefetch.MustSpec("offset:d=33"))
	pf := New(p,
		prefetch.NewFixedOffset(mem.Page4M, 1),
		prefetch.NewFixedOffset(mem.Page4M, 33))
	line := mem.LineAddr(0)
	step := func() {
		targets := pf.OnAccess(prefetch.AccessInfo{Line: line})
		for _, tgt := range targets {
			pf.OnFill(tgt, true)
		}
		line = (line + 33) % (1 << 20)
	}
	for i := 0; i < 10_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg != 0 {
		t.Errorf("steady-state OnAccess+OnFill allocates %.3f objects/op, want 0", avg)
	}
}
