// Package duel implements set-dueling adaptive prefetcher selection: a meta
// L2 prefetcher that runs two registered candidate specs side by side and
// lets the access stream itself decide which one drives the cache.
//
// The mechanism is the classic set-dueling monitor (Qureshi's DIP applied to
// prefetching, the direction Pythia's selection results point to): a fixed
// hash of a line's set index dedicates a small fraction of the L2's sets to
// candidate A and an equally small fraction to candidate B, each running
// "for real" in its sample sets — issuing prefetches, observing fills. The
// remaining follower sets run whichever candidate currently holds the
// winner's seat. Per evaluation window each candidate is scored on the
// useful-prefetch count of what its sample sets issue: a target issued from a
// candidate's sample sets that is filled (the existing OnFill hook promotes
// the issue to a mark) and later demanded by an eligible access scores one
// point for the issuer — attribution follows who issued the prefetch, not
// which set the target happens to land in. At the window boundary the
// challenger takes the seat only with a score lead above the hysteresis
// margin, so a noisy tie cannot thrash the followers.
//
// Because sample-set ownership is a pure function of the line address, the
// whole mechanism is deterministic, and its state — seat, window cursor,
// scores, mark tables, plus each candidate's own state as an opaque nested
// frame — round-trips through prefetch.StateCodec like mix's nested
// generator cursors do.
package duel

import (
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Partition owners, as computed by ownerOf.
const (
	ownerA        = 0
	ownerB        = 1
	ownerFollower = 2
)

// Params are the set-dueling tunables. A and B identify the candidates for
// checkpoint validation and reports; the registry's build path fills them
// from the a=/b= sub-specs.
type Params struct {
	A, B   prefetch.Spec
	Period int // eligible accesses per evaluation window
	Margin int // score lead the challenger needs to take the seat
	Sets   int // modeled L2 set count the sampling hash partitions
	Sample int // 2 of every Sample sets are dedicated, one per candidate
	Recent int // per-candidate pending-issue / fill-mark table entries (rounded up to a power of 2)
}

// DefaultParams dedicates 64 of the paper's 1024 L2 sets (Table 1: 512KB,
// 8-way, 64B lines) to each candidate and re-evaluates every 2048 eligible
// accesses.
func DefaultParams() Params {
	return Params{
		Period: 2048,
		Margin: 4,
		Sets:   1024,
		Sample: 16,
		Recent: 256,
	}
}

// Stats counts the duel's decisions for experiments and tests.
type Stats struct {
	Windows  uint64 // completed evaluation windows
	Switches uint64 // seat changes
	AScore   uint64 // lifetime useful-fill points for candidate A
	BScore   uint64 // lifetime useful-fill points for candidate B
}

// Prefetcher is the set-dueling meta-prefetcher. It implements
// prefetch.L2Prefetcher, prefetch.StateCodec and prefetch.MetaL2.
type Prefetcher struct {
	params Params
	name   string
	a, b   prefetch.L2Prefetcher
	ac, bc prefetch.StateCodec // the candidates' codecs (same objects as a, b)
	tag    bool                // either candidate wants the pre-issue tag check

	winner int // ownerA or ownerB: who drives the follower sets
	count  int // eligible accesses in the current window
	aScore int
	bScore int
	// Scoring attributes prefetches to their issuer, not to the set the
	// target lands in (a sample set's prefetch usually fills a *different*
	// set — crediting the landing set would split every candidate's work
	// across both scores and the duel could never separate them). aPend/
	// bPend record targets issued from each candidate's sample sets;
	// OnFill promotes a pending target to aMarks/bMarks; a later eligible
	// access consumes the mark for a point. All four are direct-mapped
	// (+1 so the zero value means empty) and cleared every window so
	// scores stay window-local.
	aPend  []mem.LineAddr
	bPend  []mem.LineAddr
	aMarks []mem.LineAddr
	bMarks []mem.LineAddr
	mask   uint64

	stats Stats
}

var _ prefetch.L2Prefetcher = (*Prefetcher)(nil)
var _ prefetch.PreIssueTagChecker = (*Prefetcher)(nil)
var _ prefetch.MetaL2 = (*Prefetcher)(nil)

// New returns a set-dueling prefetcher over two constructed candidates.
// Candidate A starts in the winner's seat. Both candidates must implement
// prefetch.StateCodec and must not be meta-prefetchers themselves; the
// registry's build path reports those as spec errors, so New treats them —
// and invalid Params — as programming errors and panics.
func New(p Params, a, b prefetch.L2Prefetcher) *Prefetcher {
	if a == nil || b == nil {
		panic("duel: nil candidate")
	}
	if p.Period < 1 || p.Margin < 0 {
		panic("duel: Period must be >= 1 and Margin >= 0")
	}
	if p.Sample < 2 || p.Sets < p.Sample {
		panic("duel: need Sample >= 2 and Sets >= Sample")
	}
	if p.Recent < 1 {
		panic("duel: Recent must be >= 1")
	}
	ac, ok := a.(prefetch.StateCodec)
	if !ok {
		panic("duel: candidate A does not implement prefetch.StateCodec")
	}
	bc, ok := b.(prefetch.StateCodec)
	if !ok {
		panic("duel: candidate B does not implement prefetch.StateCodec")
	}
	size := 1
	for size < p.Recent {
		size <<= 1
	}
	pf := &Prefetcher{
		params: p,
		name:   "duel[" + a.Name() + "|" + b.Name() + "]",
		a:      a,
		b:      b,
		ac:     ac,
		bc:     bc,
		aPend:  make([]mem.LineAddr, size),
		bPend:  make([]mem.LineAddr, size),
		aMarks: make([]mem.LineAddr, size),
		bMarks: make([]mem.LineAddr, size),
		mask:   uint64(size - 1),
	}
	if c, ok := a.(prefetch.PreIssueTagChecker); ok && c.PreIssueTagCheck() {
		pf.tag = true
	}
	if c, ok := b.(prefetch.PreIssueTagChecker); ok && c.PreIssueTagCheck() {
		pf.tag = true
	}
	return pf
}

// Name implements prefetch.L2Prefetcher.
func (p *Prefetcher) Name() string { return p.name }

// MetaL2 implements prefetch.MetaL2.
func (p *Prefetcher) MetaL2() {}

// PreIssueTagCheck implements prefetch.PreIssueTagChecker: opt in when
// either candidate does. The check is per-hierarchy, not per-set, so the
// conservative union is the only consistent answer.
func (p *Prefetcher) PreIssueTagCheck() bool { return p.tag }

// Stats returns a copy of the statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Winner reports which candidate drives the follower sets: 0 for A, 1 for B.
func (p *Prefetcher) Winner() int { return p.winner }

// ownerOf maps a line to its partition by hashing the line's set index:
// bucket 0 of every Sample buckets belongs to candidate A, bucket 1 to
// candidate B, the rest follow the winner. Fibonacci hashing spreads the
// low set-index bits, so strided streams (which alias set indices) still
// land in every partition.
func (p *Prefetcher) ownerOf(line mem.LineAddr) int {
	set := uint64(line) % uint64(p.params.Sets)
	bucket := (set * 0x9E3779B97F4A7C15 >> 32) % uint64(p.params.Sample)
	if bucket >= 2 {
		return ownerFollower
	}
	return int(bucket)
}

// drive returns the candidate that acts for a partition: sample sets are
// owned outright, follower sets go to the current winner.
func (p *Prefetcher) drive(owner int) prefetch.L2Prefetcher {
	switch {
	case owner == ownerA:
		return p.a
	case owner == ownerB:
		return p.b
	case p.winner == ownerA:
		return p.a
	default:
		return p.b
	}
}

// OnAccess implements prefetch.L2Prefetcher: consume fill marks (a useful
// prefetch scores exactly once, for its issuer, wherever the demand lands),
// advance the window, delegate the access to the partition's candidate and
// record what a sample-set candidate issued as pending.
//
//bovet:hotpath
func (p *Prefetcher) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	owner := p.ownerOf(a.Line)
	if a.Eligible() {
		if takeMark(p.aMarks, p.mask, a.Line) {
			p.aScore++
		}
		if takeMark(p.bMarks, p.mask, a.Line) {
			p.bScore++
		}
		p.count++
		if p.count >= p.params.Period {
			p.endWindow()
		}
	}
	targets := p.drive(owner).OnAccess(a)
	switch owner {
	case ownerA:
		for _, t := range targets {
			p.aPend[uint64(t)&p.mask] = t + 1
		}
	case ownerB:
		for _, t := range targets {
			p.bPend[uint64(t)&p.mask] = t + 1
		}
	}
	return targets
}

// OnFill implements prefetch.L2Prefetcher: promote a prefetch fill that a
// sample set issued from pending to scorable mark, and deliver the fill to
// the partition's candidate. A follower-set fill issued just before a seat
// change is delivered to the new winner — attribution in follower sets
// tracks the seat, which is deterministic and only perturbs the candidates'
// learning, never the scores (those come from sample-set issues alone).
//
//bovet:hotpath
func (p *Prefetcher) OnFill(line mem.LineAddr, wasPrefetch bool) {
	if wasPrefetch {
		if takeMark(p.aPend, p.mask, line) {
			p.aMarks[uint64(line)&p.mask] = line + 1
		}
		if takeMark(p.bPend, p.mask, line) {
			p.bMarks[uint64(line)&p.mask] = line + 1
		}
	}
	p.drive(p.ownerOf(line)).OnFill(line, wasPrefetch)
}

// endWindow settles the window: the challenger takes the seat only with a
// score lead above Margin, then scores and mark tables reset.
func (p *Prefetcher) endWindow() {
	p.stats.Windows++
	p.stats.AScore += uint64(p.aScore)
	p.stats.BScore += uint64(p.bScore)
	switch {
	case p.winner == ownerA && p.bScore > p.aScore+p.params.Margin:
		p.winner = ownerB
		p.stats.Switches++
	case p.winner == ownerB && p.aScore > p.bScore+p.params.Margin:
		p.winner = ownerA
		p.stats.Switches++
	}
	p.aScore, p.bScore = 0, 0
	for i := range p.aPend {
		p.aPend[i] = 0
	}
	for i := range p.bPend {
		p.bPend[i] = 0
	}
	for i := range p.aMarks {
		p.aMarks[i] = 0
	}
	for i := range p.bMarks {
		p.bMarks[i] = 0
	}
	p.count = 0
}

// takeMark probes a mark table and consumes the mark on a hit.
func takeMark(t []mem.LineAddr, mask uint64, line mem.LineAddr) bool {
	i := uint64(line) & mask
	if t[i] == line+1 {
		t[i] = 0
		return true
	}
	return false
}
