package rng

import "testing"

// TestStateRoundTrip checks a stream restored mid-sequence continues
// exactly where the original would have.
func TestStateRoundTrip(t *testing.T) {
	s := New(42)
	for i := 0; i < 1000; i++ {
		s.Uint64()
	}
	st := s.State()
	restored := New(0)
	restored.SetState(st)
	for i := 0; i < 1000; i++ {
		if a, b := s.Uint64(), restored.Uint64(); a != b {
			t.Fatalf("divergence %d draws after restore: %d vs %d", i, a, b)
		}
	}
	if s.State() != restored.State() {
		t.Fatal("states differ after identical draws")
	}
}
