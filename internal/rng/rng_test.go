package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		bound := int(n)%100 + 1
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Coarse chi-square-ish check: 16 buckets over 64k draws should each
	// hold ~4096 +- 10%.
	s := New(99)
	var buckets [16]int
	const draws = 1 << 16
	for i := 0; i < draws; i++ {
		buckets[s.Uint64()%16]++
	}
	for i, c := range buckets {
		if c < draws/16*9/10 || c > draws/16*11/10 {
			t.Errorf("bucket %d has %d draws, expected about %d", i, c, draws/16)
		}
	}
}

func TestOneIn(t *testing.T) {
	s := New(5)
	hits := 0
	const n = 32000
	for i := 0; i < n; i++ {
		if s.OneIn(32) {
			hits++
		}
	}
	if hits < n/32/2 || hits > n/32*2 {
		t.Errorf("OneIn(32) hit %d of %d", hits, n)
	}
}
