// Package rng provides a tiny deterministic pseudo-random stream
// (splitmix64). The simulator must be fully reproducible, so every component
// that needs randomness (BIP insertion, BRRIP, workload generators) owns its
// own seeded stream rather than sharing global state.
package rng

// Stream is a splitmix64 pseudo-random number generator. The zero value is a
// valid stream seeded with 0.
type Stream struct {
	state uint64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Uint64 returns the next 64-bit value.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a value uniform in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// OneIn reports true with probability 1/n.
func (s *Stream) OneIn(n int) bool { return s.Intn(n) == 0 }

// State returns the stream's internal state, for checkpointing. A stream
// restored with SetState produces exactly the sequence the original would
// have produced from this point on.
func (s *Stream) State() uint64 { return s.state }

// SetState replaces the stream's internal state with a previously saved one.
func (s *Stream) SetState(state uint64) { s.state = state }
