// Package adapt implements phase-adaptive prefetcher reconfiguration: a
// meta L2 prefetcher that wraps one registered spec and retunes its
// parameters live as the workload moves between phases, the runtime-guided
// reconfiguration idea from the POWER7 prefetcher study generalized over the
// prefetch.Retunable interface.
//
// The wrapper watches its base prefetcher's per-window accuracy: every
// prefetch fill is marked, every later eligible access that demands a marked
// line counts as useful, and at the window boundary the useful/filled ratio
// steers an aggressiveness ladder — a fixed, conservative-to-aggressive list
// of parameter settings. Accurate windows climb the ladder (more coverage),
// inaccurate windows descend it (less pollution), and windows with too few
// fills to judge climb too, since a starved prefetcher can only prove itself
// by issuing. Built-in ladders cover "bo" (degree/badscore) and "multi"
// (minscore); any other Retunable base can supply a single-key ladder via
// key=/levels=.
//
// Like duel, the wrapper's state — ladder level, window cursor, counters,
// mark table, plus the base's state as an opaque nested frame — round-trips
// through prefetch.StateCodec, so checkpointed and skip-ahead runs are
// byte-identical to straight ones.
package adapt

import (
	"fmt"
	"strings"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Params are the phase-adaptation tunables. Base identifies the wrapped spec
// for checkpoint validation and reports; the registry's build path fills it
// from the base= sub-spec.
type Params struct {
	Base     prefetch.Spec
	Window   int // eligible accesses per monitoring window
	Lo       int // accuracy percent below which the ladder descends
	Hi       int // accuracy percent above which the ladder climbs
	MinFills int // fewer prefetch fills than this reads as starvation, not accuracy
	Recent   int // prefetch-fill mark table entries (rounded up to a power of 2)

	// Key/Levels define a custom single-parameter ladder for bases without
	// a built-in one: Levels lists Key's values from conservative to
	// aggressive. Empty Key selects the built-in ladder for Base's name.
	Key    string
	Levels []string
}

// DefaultParams re-judges the base every 4096 eligible accesses against a
// 30%/60% accuracy band.
func DefaultParams() Params {
	return Params{
		Window:   4096,
		Lo:       30,
		Hi:       60,
		MinFills: 16,
		Recent:   256,
	}
}

// step is one parameter assignment of a ladder level.
type step struct {
	key, value string
}

// ladder is an ordered aggressiveness scale; level i's steps fully determine
// the tuned parameters (every level sets the same keys, so applying a level
// never depends on the previous one).
type ladder struct {
	levels [][]step
	start  int
}

// builtinLadder returns the ladder for a known base spec name.
func builtinLadder(name string) (ladder, bool) {
	switch name {
	case "bo":
		// Aggressiveness for BO means throttling less (lower badscore keeps
		// prefetch on through weaker phases) and issuing more (degree 2).
		return ladder{levels: [][]step{
			{{"degree", "1"}, {"badscore", "4"}},
			{{"degree", "1"}, {"badscore", "1"}},
			{{"degree", "2"}, {"badscore", "1"}},
		}, start: 1}, true
	case "multi":
		// Aggressiveness for multi means a lower per-window score bar for
		// keeping an offset enabled.
		return ladder{levels: [][]step{
			{{"minscore", "48"}},
			{{"minscore", "24"}},
			{{"minscore", "12"}},
			{{"minscore", "6"}},
		}, start: 1}, true
	}
	return ladder{}, false
}

// Stats counts the wrapper's decisions for experiments and tests.
type Stats struct {
	Windows uint64 // completed monitoring windows
	Retunes uint64 // windows that moved the ladder level
	Useful  uint64 // lifetime useful prefetch fills
	Filled  uint64 // lifetime prefetch fills
}

// Prefetcher is the phase-adaptive wrapper. It implements
// prefetch.L2Prefetcher, prefetch.StateCodec and prefetch.MetaL2.
type Prefetcher struct {
	params Params
	name   string
	base   prefetch.L2Prefetcher
	bc     prefetch.StateCodec // the base's codec (same object as base)
	rt     prefetch.Retunable  // the base's retune hook (same object as base)
	tag    bool
	lad    ladder

	level  int // current ladder level
	count  int // eligible accesses in the current window
	useful int // marked fills demanded this window
	filled int // prefetch fills this window
	// marks is a direct-mapped prefetch-fill mark table (+1 so the zero
	// value means empty), cleared every window.
	marks []mem.LineAddr
	mask  uint64

	stats Stats
}

var _ prefetch.L2Prefetcher = (*Prefetcher)(nil)
var _ prefetch.PreIssueTagChecker = (*Prefetcher)(nil)
var _ prefetch.MetaL2 = (*Prefetcher)(nil)

// New returns a phase-adaptive wrapper around a constructed base, positioned
// at its ladder's start level (the base's parameters are retuned to that
// level before the first access). The base must implement both
// prefetch.StateCodec and prefetch.Retunable, and every ladder level must be
// applicable; bad specs surface as errors — the registry's build path and
// direct callers share this validation.
func New(p Params, base prefetch.L2Prefetcher) (*Prefetcher, error) {
	if base == nil {
		return nil, fmt.Errorf("adapt: nil base")
	}
	if p.Window < 1 {
		return nil, fmt.Errorf("adapt: window=%d must be >= 1", p.Window)
	}
	if p.Lo < 0 || p.Hi > 100 || p.Lo > p.Hi {
		return nil, fmt.Errorf("adapt: accuracy band %d..%d must satisfy 0 <= lo <= hi <= 100", p.Lo, p.Hi)
	}
	if p.MinFills < 1 {
		return nil, fmt.Errorf("adapt: minfills=%d must be >= 1", p.MinFills)
	}
	if p.Recent < 1 {
		return nil, fmt.Errorf("adapt: recent=%d must be >= 1", p.Recent)
	}
	bc, ok := base.(prefetch.StateCodec)
	if !ok {
		return nil, fmt.Errorf("adapt: base %q does not implement prefetch.StateCodec", base.Name())
	}
	rt, ok := base.(prefetch.Retunable)
	if !ok {
		return nil, fmt.Errorf("adapt: base %q does not implement prefetch.Retunable", base.Name())
	}
	lad, err := resolveLadder(p, rt)
	if err != nil {
		return nil, err
	}
	size := 1
	for size < p.Recent {
		size <<= 1
	}
	pf := &Prefetcher{
		params: p,
		name:   "adapt[" + base.Name() + "]",
		base:   base,
		bc:     bc,
		rt:     rt,
		lad:    lad,
		marks:  make([]mem.LineAddr, size),
		mask:   uint64(size - 1),
	}
	if c, ok := base.(prefetch.PreIssueTagChecker); ok && c.PreIssueTagCheck() {
		pf.tag = true
	}
	// Prove every level applies — a ladder that fails mid-run would leave
	// the base half-tuned — then land on the start level. Each level sets
	// the same keys, so the walk's end state is exactly the start level's.
	for i := range lad.levels {
		if err := pf.apply(i); err != nil {
			return nil, fmt.Errorf("adapt: ladder level %d: %v", i, err)
		}
	}
	if err := pf.apply(lad.start); err != nil {
		return nil, fmt.Errorf("adapt: ladder start level %d: %v", lad.start, err)
	}
	return pf, nil
}

// resolveLadder picks the custom key=/levels= ladder when given, otherwise
// the built-in one for the base spec's name.
func resolveLadder(p Params, rt prefetch.Retunable) (ladder, error) {
	if p.Key != "" {
		if len(p.Levels) < 2 {
			return ladder{}, fmt.Errorf("adapt: custom ladder for %q needs >= 2 levels, got %d", p.Key, len(p.Levels))
		}
		lad := ladder{levels: make([][]step, len(p.Levels))}
		for i, v := range p.Levels {
			lad.levels[i] = []step{{p.Key, v}}
		}
		return lad, nil
	}
	if lad, ok := builtinLadder(p.Base.Name); ok {
		return lad, nil
	}
	return ladder{}, fmt.Errorf("adapt: no built-in ladder for base %q (retunable: %s); set key= and levels=",
		p.Base.Name, strings.Join(rt.RetunableKeys(), "|"))
}

// Name implements prefetch.L2Prefetcher.
func (p *Prefetcher) Name() string { return p.name }

// MetaL2 implements prefetch.MetaL2.
func (p *Prefetcher) MetaL2() {}

// PreIssueTagCheck implements prefetch.PreIssueTagChecker by delegation.
func (p *Prefetcher) PreIssueTagCheck() bool { return p.tag }

// Stats returns a copy of the statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Level reports the current ladder level, for tests and reports.
func (p *Prefetcher) Level() int { return p.level }

// Levels reports the ladder height.
func (p *Prefetcher) Levels() int { return len(p.lad.levels) }

// OnAccess implements prefetch.L2Prefetcher: consume a pending fill mark
// (a useful prefetch counts exactly once), advance the window, and delegate
// the access to the base.
//
//bovet:hotpath
func (p *Prefetcher) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	if a.Eligible() {
		i := uint64(a.Line) & p.mask
		if p.marks[i] == a.Line+1 {
			p.marks[i] = 0
			p.useful++
		}
		p.count++
		if p.count >= p.params.Window {
			p.endWindow()
		}
	}
	return p.base.OnAccess(a)
}

// OnFill implements prefetch.L2Prefetcher: mark prefetch fills for later
// accuracy scoring and deliver the fill to the base.
//
//bovet:hotpath
func (p *Prefetcher) OnFill(line mem.LineAddr, wasPrefetch bool) {
	if wasPrefetch {
		p.marks[uint64(line)&p.mask] = line + 1
		p.filled++
	}
	p.base.OnFill(line, wasPrefetch)
}

// endWindow judges the window and moves the ladder at most one level:
// starved windows (too few fills to judge) and accurate windows climb,
// inaccurate windows descend.
func (p *Prefetcher) endWindow() {
	p.stats.Windows++
	p.stats.Useful += uint64(p.useful)
	p.stats.Filled += uint64(p.filled)
	level := p.level
	switch {
	case p.filled < p.params.MinFills:
		level++
	case p.useful*100 < p.params.Lo*p.filled:
		level--
	case p.useful*100 > p.params.Hi*p.filled:
		level++
	}
	if level < 0 {
		level = 0
	}
	if level >= len(p.lad.levels) {
		level = len(p.lad.levels) - 1
	}
	if level != p.level {
		// New proved every level applicable on this very instance, so the
		// error is impossible; swallowing it keeps the hot path free of
		// allocating failure handling.
		_ = p.apply(level)
		p.stats.Retunes++
	}
	p.useful, p.filled = 0, 0
	for i := range p.marks {
		p.marks[i] = 0
	}
	p.count = 0
}

// apply retunes the base to one ladder level and records the position.
func (p *Prefetcher) apply(level int) error {
	for _, s := range p.lad.levels[level] {
		if err := p.rt.Retune(s.key, s.value); err != nil {
			return err
		}
	}
	p.level = level
	return nil
}
