package adapt_test

// External test package: exercises adapt exactly as the engine sees it, with
// the full registry linked (the in-package tests cannot import
// internal/prefetch/all — it imports adapt back).

import (
	"strings"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	_ "bopsim/internal/prefetch/all"
)

func TestSpecNormalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"adapt:base=bo,window=4096", "adapt"},
		{"adapt:base=bo.scoremax~31", "adapt"}, // child default drops inside the quoting
		{"adapt:base=multi.minscore~12,window=1024", "adapt:base=multi.minscore~12,window=1024"},
	}
	for _, c := range cases {
		got, err := prefetch.NormalizeL2(prefetch.MustSpec(c.in))
		if err != nil {
			t.Errorf("NormalizeL2(%q): %v", c.in, err)
			continue
		}
		if got.String() != c.want {
			t.Errorf("NormalizeL2(%q) = %q, want %q", c.in, got.String(), c.want)
		}
	}
}

func TestSpecBuilds(t *testing.T) {
	for _, good := range []string{
		"adapt",
		"adapt:base=multi,window=1024",
		"adapt:base=multi.offsets~1+2+4+8,lo=20,hi=70",
		// A custom single-key ladder works for any Retunable key.
		"adapt:base=multi,key=minscore,levels=48+12",
		"adapt:base=bo,key=degree,levels=1+2",
	} {
		pf, err := prefetch.NewL2(prefetch.MustSpec(good), mem.Page4M)
		if err != nil {
			t.Errorf("NewL2(%q): %v", good, err)
			continue
		}
		if !strings.HasPrefix(pf.Name(), "adapt[") {
			t.Errorf("NewL2(%q).Name() = %q", good, pf.Name())
		}
	}
}

func TestSpecRejections(t *testing.T) {
	for _, bad := range []string{
		// Meta-prefetchers cannot nest.
		"adapt:base=duel",
		"adapt:base=adapt.base~bo",
		// The base must be Retunable: a fixed offset has nothing to retune,
		// and "none" even less.
		"adapt:base=offset.d~4",
		"adapt:base=none",
		// sbp is a real prefetcher but has no built-in ladder and no custom
		// one was given.
		"adapt:base=sbp",
		// A custom ladder needs both halves and at least two levels.
		"adapt:key=badscore",
		"adapt:levels=1+2",
		"adapt:base=multi,key=minscore,levels=48",
		// A ladder level the base rejects fails at build, not mid-run.
		"adapt:base=multi,key=minscore,levels=48+nope",
		"adapt:base=bo,key=degree,levels=1+3",
		// Monitoring-parameter validation.
		"adapt:window=0",
		"adapt:lo=70,hi=30",
		"adapt:hi=101",
		"adapt:minfills=0",
		"adapt:recent=0",
	} {
		if _, err := prefetch.NewL2(prefetch.MustSpec(bad), mem.Page4M); err == nil {
			t.Errorf("NewL2(%q) accepted", bad)
		}
	}
}
