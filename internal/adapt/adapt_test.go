package adapt

import (
	"bytes"
	"fmt"
	"testing"

	"bopsim/internal/core"
	"bopsim/internal/mem"
	"bopsim/internal/multi"
	"bopsim/internal/prefetch"
)

// Fake base behaviors: what the base issues per eligible access. The behavior
// is set directly by tests (not by Retune), so each controller transition can
// be observed in isolation.
const (
	behaveSilent = iota // issue nothing: the window looks starved
	behaveJunk          // issue a far line nobody demands: accuracy 0
	behaveUseful        // issue the next line of a sequential stream: accuracy 100
)

// fakeBase is a scripted Retunable base that records every Retune call.
type fakeBase struct {
	behavior int
	retunes  []string
	failKey  string
}

func (f *fakeBase) Name() string { return "fake" }

func (f *fakeBase) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	if !a.Eligible() {
		return nil
	}
	switch f.behavior {
	case behaveJunk:
		return []mem.LineAddr{a.Line + 1_000_000}
	case behaveUseful:
		return []mem.LineAddr{a.Line + 1}
	}
	return nil
}

func (f *fakeBase) OnFill(mem.LineAddr, bool)  {}
func (f *fakeBase) SaveState() ([]byte, error) { return []byte(`{}`), nil }
func (f *fakeBase) RestoreState(data []byte) error {
	if !bytes.Equal(data, []byte(`{}`)) {
		return fmt.Errorf("fake: unexpected frame %q", data)
	}
	return nil
}
func (f *fakeBase) RetunableKeys() []string { return []string{"gain"} }

func (f *fakeBase) Retune(key, value string) error {
	if key == f.failKey {
		return fmt.Errorf("fake: key %q rejected", key)
	}
	f.retunes = append(f.retunes, key+"="+value)
	return nil
}

// harness mirrors the duel tests' hierarchy emulation: every target is filled
// as a prefetch, and a later access to it arrives as a prefetched hit.
type harness struct {
	pf         prefetch.L2Prefetcher
	prefetched map[mem.LineAddr]bool
}

func newHarness(pf prefetch.L2Prefetcher) *harness {
	return &harness{pf: pf, prefetched: make(map[mem.LineAddr]bool)}
}

func (h *harness) access(line mem.LineAddr) {
	a := prefetch.AccessInfo{Line: line}
	if h.prefetched[line] {
		a.Hit, a.PrefetchedHit = true, true
		delete(h.prefetched, line)
	}
	for _, t := range h.pf.OnAccess(a) {
		h.pf.OnFill(t, true)
		h.prefetched[t] = true
	}
}

// fakeParams is a short-window configuration over a 4-level custom ladder.
func fakeParams() Params {
	return Params{
		Base:     prefetch.MustSpec("offset:d=7"), // identity label only; the fake ignores it
		Window:   64,
		Lo:       30,
		Hi:       60,
		MinFills: 8,
		Recent:   256,
		Key:      "gain",
		Levels:   []string{"1", "2", "3", "4"},
	}
}

// runWindows drives exactly n whole monitoring windows of sequential traffic.
func runWindows(t *testing.T, pf *Prefetcher, h *harness, start mem.LineAddr, n int) mem.LineAddr {
	t.Helper()
	line := start
	for i := 0; i < n*pf.params.Window; i++ {
		h.access(line)
		line++
	}
	return line
}

// TestControllerMovesOneLevelPerWindow walks the three controller verdicts on
// a scripted base: starved windows climb, inaccurate windows descend,
// accurate windows climb, and the ladder clamps at both ends without
// counting a retune.
func TestControllerMovesOneLevelPerWindow(t *testing.T) {
	base := &fakeBase{behavior: behaveSilent}
	pf, err := New(fakeParams(), base)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Level() != 0 {
		t.Fatalf("custom ladder starts at level %d, want 0", pf.Level())
	}
	h := newHarness(pf)

	// Starved: no fills at all, so each window climbs one level until the
	// top, where further starved windows are clamped (no retune counted).
	line := runWindows(t, pf, h, 0, 5)
	if pf.Level() != 3 {
		t.Fatalf("after 5 starved windows: level %d, want clamped at 3", pf.Level())
	}
	if got := pf.Stats().Retunes; got != 3 {
		t.Fatalf("after 5 starved windows: %d retunes, want 3 (clamped windows do not retune)", got)
	}

	// Inaccurate: plenty of fills, none demanded, so each window descends
	// one level until the bottom clamp.
	base.behavior = behaveJunk
	line = runWindows(t, pf, h, line, 5)
	if pf.Level() != 0 {
		t.Fatalf("after 5 inaccurate windows: level %d, want clamped at 0", pf.Level())
	}
	if got := pf.Stats().Retunes; got != 6 {
		t.Fatalf("after inaccurate windows: %d retunes, want 6", got)
	}

	// Accurate: sequential stream demands every fill next access, so the
	// ladder climbs again.
	base.behavior = behaveUseful
	runWindows(t, pf, h, line, 2)
	if pf.Level() != 2 {
		t.Fatalf("after 2 accurate windows: level %d, want 2", pf.Level())
	}

	// Every level move landed on the base as a Retune of the ladder key.
	for _, r := range base.retunes {
		if r[:5] != "gain=" {
			t.Fatalf("unexpected retune %q", r)
		}
	}
	// New's validation walk applies levels 1,2,3,4 then start level 1; the 8
	// controller moves follow.
	if got := len(base.retunes); got != 5+8 {
		t.Fatalf("base saw %d retunes, want 13 (5 from construction, 8 from the controller)", got)
	}
}

// TestNewValidation covers the constructor's rejection paths: a ladder level
// the base refuses, a one-level custom ladder, levels without a key, and a
// base with no built-in ladder and no custom one.
func TestNewValidation(t *testing.T) {
	if _, err := New(fakeParams(), &fakeBase{failKey: "gain"}); err == nil {
		t.Error("ladder the base rejects was accepted")
	}

	short := fakeParams()
	short.Levels = []string{"1"}
	if _, err := New(short, &fakeBase{}); err == nil {
		t.Error("single-level ladder was accepted")
	}

	nobuiltin := fakeParams()
	nobuiltin.Key, nobuiltin.Levels = "", nil
	if _, err := New(nobuiltin, &fakeBase{}); err == nil {
		t.Error("base without a built-in ladder and no custom one was accepted")
	}

	bad := fakeParams()
	bad.Window = 0
	if _, err := New(bad, &fakeBase{}); err == nil {
		t.Error("window=0 was accepted")
	}

	band := fakeParams()
	band.Lo, band.Hi = 70, 30
	if _, err := New(band, &fakeBase{}); err == nil {
		t.Error("inverted accuracy band was accepted")
	}

	if _, err := New(fakeParams(), prefetch.NewFixedOffset(mem.Page4K, 1)); err == nil {
		t.Error("non-Retunable base was accepted")
	}
}

// statefulAdapt wraps a real multi base under the built-in minscore ladder.
func statefulAdapt(t *testing.T) *Prefetcher {
	t.Helper()
	p := DefaultParams()
	p.Base = prefetch.MustSpec("multi")
	p.Window = 256
	pf, err := New(p, multi.New(mem.Page4M, multi.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestMidWindowSaveRestore checkpoints the wrapper mid-window (counters and
// marks populated, base mid-learning) and requires the restored instance to
// issue identical prefetches and save identical bytes from then on.
func TestMidWindowSaveRestore(t *testing.T) {
	orig := statefulAdapt(t)
	h := newHarness(orig)
	for i := 0; i < 700; i++ { // mid-window at window 256
		h.access(mem.LineAddr(i * 3 % 5000))
	}
	state, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	restored := statefulAdapt(t)
	if err := restored.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	if restored.Level() != orig.Level() {
		t.Fatalf("restored level %d != original %d", restored.Level(), orig.Level())
	}

	h2 := newHarness(restored)
	for l := range h.prefetched {
		h2.prefetched[l] = true
	}
	for i := 0; i < 3000; i++ {
		line := mem.LineAddr(1 << 20)
		line += mem.LineAddr(i * 7 % 60000)
		h.access(line)
		h2.access(line)
	}
	b1, err := orig.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := restored.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("diverged state bytes after identical post-restore streams")
	}
}

// TestRestoreRejections is the rejection matrix: malformed or mismatched
// wrapper state must error without panicking, including out-of-range ladder
// levels and window counters and a truncated nested base frame.
func TestRestoreRejections(t *testing.T) {
	pf := statefulAdapt(t)
	h := newHarness(pf)
	for i := 0; i < 700; i++ {
		h.access(mem.LineAddr(i))
	}
	good, err := pf.SaveState()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*adaptState)) []byte {
		var c adaptState
		if err := prefetch.UnmarshalState(good, &c); err != nil {
			t.Fatal(err)
		}
		f(&c)
		b, err := prefetch.MarshalState(c)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte(`{"Nope":1}`)},
		{"truncated json", good[:len(good)/2]},
		{"base spec mismatch", mutate(func(s *adaptState) { s.BaseSpec = "bo" })},
		{"negative level", mutate(func(s *adaptState) { s.Level = -1 })},
		{"level beyond ladder", mutate(func(s *adaptState) { s.Level = 99 })},
		{"window count at window", mutate(func(s *adaptState) { s.Count = pf.params.Window })},
		{"negative window count", mutate(func(s *adaptState) { s.Count = -1 })},
		{"useful exceeds count", mutate(func(s *adaptState) { s.Useful = s.Count + 1 })},
		{"negative fills", mutate(func(s *adaptState) { s.Filled = -1 })},
		{"mark table resized", mutate(func(s *adaptState) { s.Marks = s.Marks[:4] })},
		{"truncated nested frame", mutate(func(s *adaptState) { s.Base = s.Base[:len(s.Base)-3] })},
		{"empty nested frame", mutate(func(s *adaptState) { s.Base = nil })},
	}
	for _, c := range cases {
		fresh := statefulAdapt(t)
		if err := fresh.RestoreState(c.data); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := statefulAdapt(t).RestoreState(good); err != nil {
		t.Errorf("good state rejected: %v", err)
	}
}

// TestRetuneLandsOnRealBase pins that the built-in multi ladder actually
// moves the wrapped prefetcher's gating: a descent to the most conservative
// level must raise multi's score bar enough that a weak stream's offsets are
// disabled, where the aggressive level keeps them.
func TestRetuneLandsOnRealBase(t *testing.T) {
	gate := func(level int) int {
		mp := multi.New(mem.Page4M, multi.DefaultParams())
		p := DefaultParams()
		p.Base = prefetch.MustSpec("multi")
		p.Window = 1 << 30 // never let the controller move the seeded level
		pf, err := New(p, mp)
		if err != nil {
			t.Fatal(err)
		}
		if err := pf.apply(level); err != nil {
			t.Fatal(err)
		}
		// A weak stream: one adjacent pair per 16 accesses scores offset 1
		// about 16 points per 256-access multi window — above minscore 6,
		// below minscore 48. The isolated accesses stride 997, scoring no
		// configured offset.
		h := newHarness(pf)
		line := mem.LineAddr(0)
		isolated := 0
		for i := 0; i < 6000; i++ {
			if i%16 == 15 {
				h.access(line + 1)
				continue
			}
			isolated++
			line = mem.LineAddr(isolated * 997 % 60000)
			h.access(line)
		}
		return len(mp.EnabledOffsets())
	}
	lad, ok := builtinLadder("multi")
	if !ok {
		t.Fatal("no built-in multi ladder")
	}
	conservative := gate(0)
	aggressive := gate(len(lad.levels) - 1)
	if conservative >= aggressive {
		t.Errorf("minscore ladder has no effect: %d offsets enabled at level 0, %d at top level",
			conservative, aggressive)
	}
}

// TestSteadyStateZeroAlloc pins the wrapper's own hot-path cost over a real
// bo base: accesses, fills and window boundaries allocate nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := DefaultParams()
	p.Base = prefetch.MustSpec("bo")
	p.Window = 256
	pf, err := New(p, core.New(mem.Page4M, core.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	line := mem.LineAddr(0)
	step := func() {
		targets := pf.OnAccess(prefetch.AccessInfo{Line: line})
		for _, tgt := range targets {
			pf.OnFill(tgt, true)
		}
		line = (line + 3) % (1 << 20)
	}
	for i := 0; i < 10_000; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(5000, step); avg != 0 {
		t.Errorf("steady-state OnAccess+OnFill allocates %.3f objects/op, want 0", avg)
	}
}
