package adapt

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// adaptState mirrors the wrapper's own state and frames the base's state as
// opaque nested bytes (duel's framing, one child). BaseSpec pins the base's
// identity; Level is re-applied on restore before the nested frame is
// opened, so the base's retuned parameters and its frame agree.
type adaptState struct {
	BaseSpec string
	Base     []byte // the base's own prefetch.StateCodec frame

	Level  int
	Count  int
	Useful int
	Filled int
	Marks  []uint64
	Stats  Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	frame, err := p.bc.SaveState()
	if err != nil {
		return nil, fmt.Errorf("adapt: saving base: %w", err)
	}
	st := adaptState{
		BaseSpec: p.params.Base.String(),
		Base:     frame,
		Level:    p.level,
		Count:    p.count,
		Useful:   p.useful,
		Filled:   p.filled,
		Marks:    make([]uint64, len(p.marks)),
		Stats:    p.stats,
	}
	for i, l := range p.marks {
		st.Marks[i] = uint64(l)
	}
	return prefetch.MarshalState(st)
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st adaptState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if want := p.params.Base.String(); st.BaseSpec != want {
		return fmt.Errorf("adapt: state is for base %q, this wrapper runs %q", st.BaseSpec, want)
	}
	if st.Level < 0 || st.Level >= len(p.lad.levels) {
		return fmt.Errorf("adapt: ladder level %d out of range 0..%d", st.Level, len(p.lad.levels)-1)
	}
	if st.Count < 0 || st.Count >= p.params.Window {
		return fmt.Errorf("adapt: window count %d out of range 0..%d", st.Count, p.params.Window-1)
	}
	if st.Useful < 0 || st.Useful > st.Count {
		return fmt.Errorf("adapt: %d useful fills exceed the %d accesses observed", st.Useful, st.Count)
	}
	if st.Filled < 0 {
		return fmt.Errorf("adapt: negative fill count %d", st.Filled)
	}
	if len(st.Marks) != len(p.marks) {
		return fmt.Errorf("adapt: state mark table has %d slots, prefetcher has %d", len(st.Marks), len(p.marks))
	}
	// Re-seat the ladder first — New proved every level applicable — then
	// let the base's frame overwrite whatever the retune reset.
	if err := p.apply(st.Level); err != nil {
		return fmt.Errorf("adapt: re-applying ladder level %d: %v", st.Level, err)
	}
	if err := p.bc.RestoreState(st.Base); err != nil {
		return fmt.Errorf("adapt: restoring base: %w", err)
	}
	p.count = st.Count
	p.useful = st.Useful
	p.filled = st.Filled
	for i, l := range st.Marks {
		p.marks[i] = mem.LineAddr(l)
	}
	p.stats = st.Stats
	return nil
}
