package adapt

import (
	"fmt"
	"strings"

	"bopsim/internal/duel"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Spec registration. The base spec is a registry spec quoted with
// prefetch.QuoteSubSpec syntax, e.g. "adapt:base=bo.rr~64,window=8192"; a
// custom ladder is a single retunable key plus its '+'-separated level
// values, e.g. "adapt:base=multi,key=minscore,levels=48+24+12+6".
func init() {
	def := DefaultParams()
	prefetch.RegisterL2("adapt", prefetch.Definition[prefetch.L2Prefetcher]{
		Help:         "phase-adaptive wrapper: retunes the base spec's params per accuracy window",
		Build:        buildSpec,
		Validate:     func(v prefetch.Values) error { _, err := buildSpec(mem.Page4K, v); return err },
		Canonicalize: prefetch.CanonicalizeSubSpecs("base"),
		Defaults: map[string]string{
			"base":     "bo",
			"window":   fmt.Sprint(def.Window),
			"lo":       fmt.Sprint(def.Lo),
			"hi":       fmt.Sprint(def.Hi),
			"minfills": fmt.Sprint(def.MinFills),
			"recent":   fmt.Sprint(def.Recent),
			"key":      "none",
			"levels":   "none",
		},
	})
}

// buildSpec parses and validates adapt's spec parameters, builds the base
// through the registry (same candidate rules as duel), and constructs the
// wrapper; the registered Validate hook delegates here.
func buildSpec(page mem.PageSize, v prefetch.Values) (prefetch.L2Prefetcher, error) {
	p := DefaultParams()
	var err error
	p.Window = v.Int("window", p.Window, &err)
	p.Lo = v.Int("lo", p.Lo, &err)
	p.Hi = v.Int("hi", p.Hi, &err)
	p.MinFills = v.Int("minfills", p.MinFills, &err)
	p.Recent = v.Int("recent", p.Recent, &err)
	if err != nil {
		return nil, err
	}
	if key, ok := v["key"]; ok && key != "none" {
		p.Key = key
	}
	if levels, ok := v["levels"]; ok && levels != "none" {
		p.Levels = strings.Split(levels, "+")
	}
	if (p.Key == "") != (len(p.Levels) == 0) {
		return nil, fmt.Errorf("key= and levels= define a custom ladder together; set both or neither")
	}
	baseRaw := "bo"
	if s, ok := v["base"]; ok {
		baseRaw = s
	}
	baseSpec, base, err := duel.BuildCandidate(baseRaw, page)
	if err != nil {
		return nil, fmt.Errorf("base: %v", err)
	}
	p.Base = baseSpec
	return New(p, base)
}
