// Package sim assembles full-system simulations: cores executing workload
// generators against the shared uncore, with the six baseline
// configurations of the paper ({1,2,4} active cores x {4KB,4MB} pages).
// Core 0 runs the benchmark under study; any other active core runs the
// cache-thrashing micro-benchmark, exactly as in section 5.1.
package sim

import (
	"fmt"

	"bopsim/internal/core"
	"bopsim/internal/cpu"
	"bopsim/internal/dram"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/sbp"
	"bopsim/internal/trace"
	"bopsim/internal/uncore"
)

// PrefetcherKind selects the L2 prefetcher.
type PrefetcherKind string

// Available L2 prefetcher configurations.
const (
	PFNone     PrefetcherKind = "none"
	PFNextLine PrefetcherKind = "nextline"
	PFOffset   PrefetcherKind = "offset" // fixed offset (Options.FixedOffset)
	PFBO       PrefetcherKind = "bo"
	PFSBP      PrefetcherKind = "sbp"
)

// Options describes one simulation run.
type Options struct {
	Workload string
	// TracePath, when non-empty, replays a recorded trace file on core 0
	// instead of the named synthetic workload (see internal/trace's file
	// format and cmd/tracegen).
	TracePath    string
	Cores        int // active cores: 1, 2 or 4
	Page         mem.PageSize
	L2PF         PrefetcherKind
	FixedOffset  int    // used when L2PF == PFOffset
	L3Policy     string // "5P" (default), "LRU", "DRRIP"
	StridePF     bool
	LatePromote  bool
	Instructions uint64 // retired instructions on core 0
	Seed         uint64
	// BOParams overrides the Best-Offset parameters (nil = Table 2).
	BOParams *core.Params
	// SBPParams overrides the Sandbox parameters (nil = section 6.3).
	SBPParams *sbp.Params
	CPU       cpu.Config
	// MaxCycles aborts a wedged simulation; 0 means a generous default.
	MaxCycles uint64
}

// DefaultOptions returns a 1-core, 4KB-page, next-line-prefetcher run of
// the named workload.
func DefaultOptions(workload string) Options {
	return Options{
		Workload:     workload,
		Cores:        1,
		Page:         mem.Page4K,
		L2PF:         PFNextLine,
		L3Policy:     "5P",
		StridePF:     true,
		LatePromote:  true,
		Instructions: 500_000,
		Seed:         1,
		CPU:          cpu.DefaultConfig(),
	}
}

// Result carries the measurements of one run.
type Result struct {
	Workload     string
	IPC          float64
	Cycles       uint64
	Instructions uint64
	Hier         uncore.Stats
	DRAM         dram.Stats
	// DRAMAccessesPerKI is DRAM reads+writes per 1000 core-0 instructions
	// (Figure 13's metric).
	DRAMAccessesPerKI float64
	// BO holds Best-Offset learning statistics when L2PF == PFBO.
	BO *core.Stats
	// FinalBOOffset is the offset BO ended the run with (0 otherwise).
	FinalBOOffset int
}

// newPrefetcher builds the configured L2 prefetcher for one core.
func (o Options) newPrefetcher() prefetch.L2Prefetcher {
	switch o.L2PF {
	case PFNone:
		return prefetch.None{}
	case PFNextLine, "":
		return prefetch.NewNextLine(o.Page)
	case PFOffset:
		return prefetch.NewFixedOffset(o.Page, o.FixedOffset)
	case PFBO:
		p := core.DefaultParams()
		if o.BOParams != nil {
			p = *o.BOParams
		}
		return core.New(o.Page, p)
	case PFSBP:
		p := sbp.DefaultParams()
		if o.SBPParams != nil {
			p = *o.SBPParams
		}
		return sbp.New(o.Page, p)
	}
	panic(fmt.Sprintf("sim: unknown prefetcher %q", o.L2PF))
}

// Run executes one simulation and returns its measurements.
func Run(o Options) (Result, error) {
	if o.Cores < 1 || o.Cores > 4 {
		return Result{}, fmt.Errorf("sim: %d active cores unsupported (want 1, 2 or 4)", o.Cores)
	}
	if o.Instructions == 0 {
		o.Instructions = 500_000
	}
	if o.CPU.ROBSize == 0 {
		o.CPU = cpu.DefaultConfig()
	}
	maxCycles := o.MaxCycles
	if maxCycles == 0 {
		maxCycles = o.Instructions * 400 // IPC floor of 1/400 before declaring a wedge
	}

	ucfg := uncore.DefaultConfig(o.Cores, o.Page)
	ucfg.L3Policy = o.L3Policy
	if ucfg.L3Policy == "" {
		ucfg.L3Policy = "5P"
	}
	ucfg.StridePrefetcher = o.StridePF
	ucfg.LatePromotion = o.LatePromote
	ucfg.Seed = o.Seed

	hier := uncore.New(ucfg, func(int) prefetch.L2Prefetcher { return o.newPrefetcher() }, nil)

	var gen trace.Generator
	var err error
	if o.TracePath != "" {
		gen, err = trace.OpenTraceFile(o.TracePath)
	} else {
		gen, err = trace.NewWorkload(o.Workload, o.Seed)
	}
	if err != nil {
		return Result{}, err
	}
	cores := []*cpu.Core{cpu.New(0, o.CPU, hier, gen)}
	for i := 1; i < o.Cores; i++ {
		cores = append(cores, cpu.New(i, o.CPU, hier, trace.NewThrasher(o.Seed+uint64(i)*7919)))
	}

	var now uint64
	for cores[0].Retired < o.Instructions {
		for _, c := range cores {
			c.Cycle(now)
		}
		hier.Tick(now)
		now++
		if now >= maxCycles {
			return Result{}, fmt.Errorf("sim: %s wedged after %d cycles (%d/%d instructions)",
				o.Workload, now, cores[0].Retired, o.Instructions)
		}
	}

	res := Result{
		Workload:     o.Workload,
		IPC:          float64(cores[0].Retired) / float64(now),
		Cycles:       now,
		Instructions: cores[0].Retired,
		Hier:         hier.Stats(),
		DRAM:         hier.Memory().TotalStats(),
	}
	res.DRAMAccessesPerKI = float64(hier.Memory().Accesses()) / float64(cores[0].Retired) * 1000
	if bo, ok := hier.L2Prefetcher(0).(*core.Prefetcher); ok {
		s := bo.Stats()
		res.BO = &s
		res.FinalBOOffset = bo.Offset()
	}
	return res, nil
}

// MustRun is Run that panics on error, for examples and benchmarks.
func MustRun(o Options) Result {
	r, err := Run(o)
	if err != nil {
		panic(err)
	}
	return r
}

// ConfigLabel names a (cores, page) baseline configuration as the paper
// does ("1-core/4KB", ...).
func ConfigLabel(cores int, page mem.PageSize) string {
	return fmt.Sprintf("%d-core/%s", cores, page)
}
