// Package sim is the convenience facade over internal/engine: one call runs
// a full-system simulation (cores executing workload generators against the
// shared uncore, with the six baseline configurations of the paper —
// {1,2,4} active cores x {4KB,4MB} pages) to completion and returns its
// measurements. Core 0 runs the benchmark under study; any other active
// core runs the cache-thrashing micro-benchmark, exactly as in section 5.1.
//
// The types here are aliases of the engine's, so code holding a sim.Options
// can construct an engine.Simulation directly when it needs stepping,
// snapshots or cancellation.
package sim

import (
	"context"
	"fmt"

	"bopsim/internal/engine"
	"bopsim/internal/mem"
)

// PrefetcherKind selects the L2 prefetcher.
type PrefetcherKind = engine.PrefetcherKind

// Available L2 prefetcher configurations.
const (
	PFNone     = engine.PFNone
	PFNextLine = engine.PFNextLine
	PFOffset   = engine.PFOffset
	PFBO       = engine.PFBO
	PFSBP      = engine.PFSBP
)

// Options describes one simulation run.
type Options = engine.Options

// Result carries the measurements of one run.
type Result = engine.Result

// DefaultOptions returns a 1-core, 4KB-page, next-line-prefetcher run of
// the named workload.
func DefaultOptions(workload string) Options {
	return engine.DefaultOptions(workload)
}

// Run executes one simulation to completion and returns its measurements.
// It is the uncancellable compatibility wrapper around engine.New +
// Simulation.Run; use the engine directly for stepping or cancellation.
func Run(o Options) (Result, error) {
	s, err := engine.New(o)
	if err != nil {
		return Result{}, err
	}
	return s.Run(context.Background())
}

// MustRun is Run that panics on error, for examples and benchmarks.
func MustRun(o Options) Result {
	r, err := Run(o)
	if err != nil {
		panic(err)
	}
	return r
}

// ConfigLabel names a (cores, page) baseline configuration as the paper
// does ("1-core/4KB", ...).
func ConfigLabel(cores int, page mem.PageSize) string {
	return fmt.Sprintf("%d-core/%s", cores, page)
}
