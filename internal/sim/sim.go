// Package sim is the convenience facade over internal/engine: one call runs
// a full-system simulation (cores executing workload generators against the
// shared uncore, with the six baseline configurations of the paper —
// {1,2,4} active cores x {4KB,4MB} pages) to completion and returns its
// measurements. Core 0 runs the benchmark under study; any other active
// core runs the cache-thrashing micro-benchmark, exactly as in section 5.1.
//
// The types here are aliases of the engine's, so code holding a sim.Options
// can construct an engine.Simulation directly when it needs stepping,
// snapshots or cancellation. The PF* values are compatibility shims for the
// historical closed PrefetcherKind enum: they are ordinary prefetch.Specs
// now, and any registered prefetcher — not just these — can be assigned to
// Options.L2PF.
package sim

import (
	"context"
	"fmt"

	"bopsim/internal/engine"
	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// PrefetcherKind is the historical name for a prefetcher selection; it is
// an open registry spec now, not a closed enum.
//
// Deprecated: use prefetch.Spec directly.
type PrefetcherKind = prefetch.Spec

// Specs for the historical enum spellings. Any registered spec works in
// their place (see prefetch.ParseSpec and prefetch.L2Names).
var (
	PFNone     = prefetch.Spec{Name: "none"}
	PFNextLine = prefetch.Spec{Name: "nextline"}
	PFBO       = prefetch.Spec{Name: "bo"}
	PFSBP      = prefetch.Spec{Name: "sbp"}
)

// PFOffsetD returns the fixed-offset prefetcher spec "offset:d=<d>" (the
// historical PFOffset + Options.FixedOffset pair).
func PFOffsetD(d int) prefetch.Spec {
	return prefetch.Spec{Name: "offset", Params: map[string]string{"d": fmt.Sprint(d)}}
}

// Options describes one simulation run.
type Options = engine.Options

// Result carries the measurements of one run.
type Result = engine.Result

// DefaultOptions returns a 1-core, 4KB-page, next-line-prefetcher run of
// the named workload.
func DefaultOptions(workload string) Options {
	return engine.DefaultOptions(workload)
}

// Run executes one simulation to completion and returns its measurements.
// It is the uncancellable compatibility wrapper around engine.New +
// Simulation.Run; use the engine directly for stepping or cancellation.
func Run(o Options) (Result, error) {
	s, err := engine.New(o)
	if err != nil {
		return Result{}, err
	}
	return s.Run(context.Background())
}

// MustRun is Run that panics on error, for examples and benchmarks.
func MustRun(o Options) Result {
	r, err := Run(o)
	if err != nil {
		panic(err)
	}
	return r
}

// ConfigLabel names a (cores, page) baseline configuration as the paper
// does ("1-core/4KB", ...).
func ConfigLabel(cores int, page mem.PageSize) string {
	return fmt.Sprintf("%d-core/%s", cores, page)
}
