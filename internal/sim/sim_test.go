package sim

import (
	"path/filepath"
	"testing"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
	"bopsim/internal/trace"
)

// quick returns fast options for integration tests.
func quick(workload string) Options {
	o := DefaultOptions(workload)
	o.Instructions = 60_000
	return o
}

func TestRunBasic(t *testing.T) {
	r, err := Run(quick("416.gamess"))
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.IPC > 4 {
		t.Errorf("IPC = %.2f out of range", r.IPC)
	}
	if r.Instructions < 60_000 {
		t.Errorf("retired %d instructions, want >= 60000", r.Instructions)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quick("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quick("403.gcc"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Errorf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestAllPrefetchersRun(t *testing.T) {
	// Every *registered* L2 prefetcher must run end to end — including any
	// added purely by registration, like "multi".
	names := prefetch.L2Names()
	if len(names) < 6 {
		t.Fatalf("only %d registered L2 prefetchers: %v", len(names), names)
	}
	for _, name := range names {
		o := quick("437.leslie3d")
		o.L2PF = prefetch.Spec{Name: name}
		if _, err := Run(o); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// A parameterized spec spelled as a string works the same way.
	o := quick("437.leslie3d")
	o.L2PF = prefetch.MustSpec("offset:d=4")
	if _, err := Run(o); err != nil {
		t.Errorf("offset:d=4: %v", err)
	}
}

func TestBOResultFieldsPopulated(t *testing.T) {
	o := quick("462.libquantum")
	o.L2PF = PFBO
	o.Page = mem.Page4M
	o.Instructions = 150_000
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.BO == nil {
		t.Fatal("BO stats missing")
	}
	if r.FinalBOOffset <= 0 {
		t.Errorf("FinalBOOffset = %d", r.FinalBOOffset)
	}
}

func TestMultiCoreInterferenceSlowsCore0(t *testing.T) {
	// The cache-thrashing micro-benchmark on other cores must reduce core
	// 0's IPC (Figure 2's effect).
	solo := quick("450.soplex")
	solo.Page = mem.Page4M
	r1, err := Run(solo)
	if err != nil {
		t.Fatal(err)
	}
	shared := solo
	shared.Cores = 4
	r4, err := Run(shared)
	if err != nil {
		t.Fatal(err)
	}
	if r4.IPC >= r1.IPC {
		t.Errorf("4-core IPC %.3f not below 1-core IPC %.3f", r4.IPC, r1.IPC)
	}
}

func TestLargePagesHelpTLBHeavyWorkload(t *testing.T) {
	small := quick("429.mcf")
	r4k, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	big := small
	big.Page = mem.Page4M
	r4m, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if r4m.Hier.TLBWalks >= r4k.Hier.TLBWalks {
		t.Errorf("4MB pages walked %d times vs %d with 4KB", r4m.Hier.TLBWalks, r4k.Hier.TLBWalks)
	}
	if r4m.IPC < r4k.IPC {
		t.Errorf("4MB-page IPC %.3f below 4KB-page IPC %.3f on a TLB-heavy workload", r4m.IPC, r4k.IPC)
	}
}

func TestBOBeatsNextLineOnStream(t *testing.T) {
	// The headline result on a timeliness-sensitive workload.
	base := quick("462.libquantum")
	base.Page = mem.Page4M
	base.Instructions = 200_000
	rNL, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	bo := base
	bo.L2PF = PFBO
	rBO, err := Run(bo)
	if err != nil {
		t.Fatal(err)
	}
	if rBO.IPC <= rNL.IPC*1.05 {
		t.Errorf("BO IPC %.3f not meaningfully above next-line %.3f", rBO.IPC, rNL.IPC)
	}
}

func TestInvalidOptions(t *testing.T) {
	o := quick("416.gamess")
	o.Cores = 5
	if _, err := Run(o); err == nil {
		t.Error("5 cores accepted")
	}
	o = quick("does-not-exist")
	if _, err := Run(o); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestConfigLabel(t *testing.T) {
	if got := ConfigLabel(2, mem.Page4M); got != "2-core/4MB" {
		t.Errorf("ConfigLabel = %q", got)
	}
}

func TestDRAMTrafficReported(t *testing.T) {
	o := quick("470.lbm")
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.DRAMAccessesPerKI <= 0 {
		t.Error("no DRAM traffic reported for a memory-heavy workload")
	}
	if r.DRAM.Reads == 0 {
		t.Error("DRAM read stats empty")
	}
}

func TestTraceReplayMatchesGenerator(t *testing.T) {
	// Recording a workload and replaying it must give identical timing.
	path := filepath.Join(t.TempDir(), "w.trace")
	const n = 60_000
	gen, err := trace.NewWorkload("456.hmmer", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Record more than we simulate so the trace never wraps.
	if err := trace.WriteTraceFile(path, gen, 2*n); err != nil {
		t.Fatal(err)
	}
	direct := quick("456.hmmer")
	direct.Instructions = n
	rDirect, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	replay := direct
	replay.Workloads = []trace.Spec{trace.FileSpec(path)}
	rReplay, err := Run(replay)
	if err != nil {
		t.Fatal(err)
	}
	if rDirect.Cycles != rReplay.Cycles {
		t.Errorf("replay took %d cycles, direct %d", rReplay.Cycles, rDirect.Cycles)
	}
}

func TestFig8ShapeOffsetPeaks(t *testing.T) {
	// The milc stand-in's Figure 8 signature: an offset that is a multiple
	// of 32 must beat its non-multiple neighbour.
	run := func(d int) float64 {
		o := quick("433.milc")
		o.Page = mem.Page4M
		o.Instructions = 150_000
		o.L2PF = PFOffsetD(d)
		r, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		return r.IPC
	}
	peak := run(64)
	off := run(61)
	if peak <= off {
		t.Errorf("offset 64 (%.3f IPC) did not beat offset 61 (%.3f IPC)", peak, off)
	}
}
