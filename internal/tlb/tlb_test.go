package tlb

import (
	"testing"

	"bopsim/internal/mem"
)

func TestFirstAccessWalks(t *testing.T) {
	h := New(mem.Page4K)
	if lat := h.Access(0x1000); lat != TLB2HitPenalty+PageWalkPenalty {
		t.Errorf("cold access latency = %d, want %d", lat, TLB2HitPenalty+PageWalkPenalty)
	}
	if h.Walks != 1 {
		t.Errorf("Walks = %d, want 1", h.Walks)
	}
}

func TestSecondAccessHitsDTLB1(t *testing.T) {
	h := New(mem.Page4K)
	h.Access(0x1000)
	if lat := h.Access(0x1008); lat != 0 {
		t.Errorf("warm access latency = %d, want 0", lat)
	}
}

func TestDTLB1EvictionFallsBackToTLB2(t *testing.T) {
	h := NewWithSizes(mem.Page4K, 2, 8)
	h.Access(0x1000)
	h.Access(0x2000)
	h.Access(0x3000) // evicts page of 0x1000 from DTLB1 but not TLB2
	if lat := h.Access(0x1000); lat != TLB2HitPenalty {
		t.Errorf("TLB2-hit latency = %d, want %d", lat, TLB2HitPenalty)
	}
}

func TestTrueLRUInDTLB1(t *testing.T) {
	h := NewWithSizes(mem.Page4K, 2, 64)
	h.Access(0x1000)
	h.Access(0x2000)
	h.Access(0x1000) // page 1 is now MRU
	h.Access(0x3000) // should evict page 2
	if lat := h.Access(0x1000); lat != 0 {
		t.Error("MRU page was evicted from DTLB1")
	}
	if lat := h.Access(0x2000); lat == 0 {
		t.Error("LRU page was not evicted from DTLB1")
	}
}

func Test4MBPagesCoverMoreAddresses(t *testing.T) {
	small := New(mem.Page4K)
	big := New(mem.Page4M)
	// Stride through 16MB at 4KB steps: 4096 distinct 4KB pages but only 4
	// distinct 4MB pages.
	for pass := 0; pass < 2; pass++ {
		for a := mem.Addr(0); a < 16<<20; a += 4096 {
			small.Access(a)
			big.Access(a)
		}
	}
	if big.Walks > 4 {
		t.Errorf("4MB pages walked %d times, want <= 4", big.Walks)
	}
	if small.Walks <= big.Walks {
		t.Errorf("4KB walks (%d) not greater than 4MB walks (%d)", small.Walks, big.Walks)
	}
}

func TestProbeTLB2DoesNotAllocate(t *testing.T) {
	h := New(mem.Page4K)
	if h.ProbeTLB2(0x5000) {
		t.Error("probe hit in empty TLB2")
	}
	// Still absent: probe must not allocate.
	if h.ProbeTLB2(0x5000) {
		t.Error("probe allocated an entry")
	}
	h.Access(0x5000)
	if !h.ProbeTLB2(0x5000) {
		t.Error("probe missed after demand access")
	}
}

func TestMissCountersAdvance(t *testing.T) {
	h := New(mem.Page4K)
	h.Access(0x1000)
	h.Access(0x2000)
	h.Access(0x1000)
	if h.DTLB1Misses() != 2 {
		t.Errorf("DTLB1Misses = %d, want 2", h.DTLB1Misses())
	}
	if h.TLB2Misses() != 2 {
		t.Errorf("TLB2Misses = %d, want 2", h.TLB2Misses())
	}
}
