package tlb

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"bopsim/internal/mem"
)

// TestTLBStateRoundTrip warms a TLB hierarchy, saves its state, checks the
// encoding is byte-stable, restores into a fresh hierarchy and verifies it
// behaves identically from there on.
func TestTLBStateRoundTrip(t *testing.T) {
	h := New(mem.Page4K)
	for i := 0; i < 2000; i++ {
		h.Access(mem.Addr(i*7) << 12)
	}
	st := h.SaveState()

	var a bytes.Buffer
	if err := gob.NewEncoder(&a).Encode(st); err != nil {
		t.Fatal(err)
	}
	var decoded State
	if err := gob.NewDecoder(bytes.NewReader(a.Bytes())).Decode(&decoded); err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("TLB state encode -> decode -> encode is not byte-stable")
	}

	fresh := New(mem.Page4K)
	if err := fresh.RestoreState(decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.SaveState(), st) {
		t.Fatal("restored TLB state differs from saved state")
	}
	// Identical access streams must produce identical latencies (hits,
	// misses and walk decisions all depend on the restored LRU state).
	for i := 0; i < 3000; i++ {
		va := mem.Addr(i*13) << 12
		if l1, l2 := h.Access(va), fresh.Access(va); l1 != l2 {
			t.Fatalf("access %d: latency %d on original, %d on restored", i, l1, l2)
		}
	}
	if h.Walks != fresh.Walks || h.DTLB1Misses() != fresh.DTLB1Misses() || h.TLB2Misses() != fresh.TLB2Misses() {
		t.Fatal("counters diverged under identical traffic after restore")
	}
}

// TestTLBRestoreRejectsBadState checks malformed level states are refused.
func TestTLBRestoreRejectsBadState(t *testing.T) {
	h := New(mem.Page4K)
	st := h.SaveState()

	oversized := st
	oversized.DTLB1.VPNs = make([]uint64, 100)
	oversized.DTLB1.Stamps = make([]uint64, 100)
	for i := range oversized.DTLB1.VPNs {
		oversized.DTLB1.VPNs[i] = uint64(i)
	}
	if err := New(mem.Page4K).RestoreState(oversized); err == nil {
		t.Error("restore with more entries than the level holds succeeded")
	}

	ragged := st
	ragged.TLB2.VPNs = []uint64{1, 2}
	ragged.TLB2.Stamps = []uint64{1}
	if err := New(mem.Page4K).RestoreState(ragged); err == nil {
		t.Error("restore with mismatched VPN/stamp lengths succeeded")
	}

	dup := st
	dup.TLB2.VPNs = []uint64{5, 5}
	dup.TLB2.Stamps = []uint64{1, 2}
	if err := New(mem.Page4K).RestoreState(dup); err == nil {
		t.Error("restore with duplicate VPNs succeeded")
	}
}

// TestTLBResetStats checks the barrier reset clears counters but keeps
// residency.
func TestTLBResetStats(t *testing.T) {
	h := New(mem.Page4K)
	for i := 0; i < 100; i++ {
		h.Access(mem.Addr(i) << 12)
	}
	if h.DTLB1Misses() == 0 {
		t.Fatal("warmup produced no misses")
	}
	h.ResetStats()
	if h.Walks != 0 || h.DTLB1Misses() != 0 || h.TLB2Misses() != 0 {
		t.Fatal("ResetStats left counters non-zero")
	}
	// Residency kept: re-touching a recently used page still hits (page 99
	// is the most recent of the warmup sweep, so it survived the DTLB1's
	// 64-entry LRU).
	before := h.DTLB1Misses()
	h.Access(mem.Addr(99) << 12)
	if h.DTLB1Misses() != before {
		t.Fatal("ResetStats dropped TLB residency")
	}
}
