// Package tlb models the data-TLB hierarchy of the baseline
// microarchitecture (Table 1: DTLB1 64 entries, shared TLB2 512 entries).
// TLB behaviour is what differentiates the paper's 4KB-page and 4MB-page
// baselines (Figure 2): with large pages nearly every access hits the DTLB1,
// while 4KB pages make large-working-set benchmarks pay frequent TLB2
// lookups and page walks.
//
// The L2 prefetchers never consult the TLB (paper section 5.6); the DL1
// stride prefetcher does, and drops prefetches that miss in the TLB2
// (section 5.5).
package tlb

import (
	"fmt"
	"sort"

	"bopsim/internal/mem"
)

// Latencies added to a memory access on the corresponding TLB outcome, in
// core cycles. A DTLB1 hit is folded into the DL1 access latency.
const (
	TLB2HitPenalty  = 7
	PageWalkPenalty = 50
)

// tlbLevel is one fully-associative translation buffer with true LRU. The
// resident set lives in dense vpn/stamp arrays with a map from VPN to slot:
// hits touch only the stamp array, and eviction is a linear scan over a
// contiguous stamp slice instead of a map iteration. Stamps are strictly
// increasing (every write is preceded by a clock increment), so the LRU
// minimum is unique and victim selection never depends on scan order.
type tlbLevel struct {
	entries int
	slot    map[uint64]int // VPN -> index into vpns/stamps
	vpns    []uint64
	stamps  []uint64
	clock   uint64
	hits    uint64
	misses  uint64
}

func newTLBLevel(entries int) *tlbLevel {
	return &tlbLevel{
		entries: entries,
		slot:    make(map[uint64]int, entries),
		vpns:    make([]uint64, 0, entries),
		stamps:  make([]uint64, 0, entries),
	}
}

// access looks up vpn, refreshing LRU state; insert on miss.
func (t *tlbLevel) access(vpn uint64) (hit bool) {
	t.clock++
	if i, ok := t.slot[vpn]; ok {
		t.stamps[i] = t.clock
		t.hits++
		return true
	}
	t.misses++
	t.insert(vpn)
	return false
}

// probe looks up vpn without inserting on miss (used by the DL1 stride
// prefetcher's TLB2 check, which drops the prefetch on a miss rather than
// walking the page table).
func (t *tlbLevel) probe(vpn uint64) bool {
	if i, ok := t.slot[vpn]; ok {
		t.clock++
		t.stamps[i] = t.clock
		return true
	}
	return false
}

func (t *tlbLevel) insert(vpn uint64) {
	if len(t.vpns) >= t.entries {
		victim, best := 0, ^uint64(0)
		for i, s := range t.stamps {
			if s < best {
				victim, best = i, s
			}
		}
		delete(t.slot, t.vpns[victim])
		t.vpns[victim] = vpn
		t.stamps[victim] = t.clock
		t.slot[vpn] = victim
		return
	}
	t.vpns = append(t.vpns, vpn)
	t.stamps = append(t.stamps, t.clock)
	t.slot[vpn] = len(t.vpns) - 1
}

// Hierarchy is a per-core DTLB1 backed by a TLB2.
type Hierarchy struct {
	page  mem.PageSize
	dtlb1 *tlbLevel
	tlb2  *tlbLevel
	// Walks counts page-table walks (TLB2 misses on demand accesses).
	Walks uint64
}

// New returns a TLB hierarchy for the given page size with the baseline
// entry counts (DTLB1 64, TLB2 512).
func New(page mem.PageSize) *Hierarchy {
	return &Hierarchy{page: page, dtlb1: newTLBLevel(64), tlb2: newTLBLevel(512)}
}

// NewWithSizes returns a TLB hierarchy with custom entry counts, for tests
// and sensitivity studies.
func NewWithSizes(page mem.PageSize, dtlb1, tlb2 int) *Hierarchy {
	return &Hierarchy{page: page, dtlb1: newTLBLevel(dtlb1), tlb2: newTLBLevel(tlb2)}
}

// Access translates the virtual address of a demand load/store and returns
// the extra latency in cycles caused by TLB misses (0 on a DTLB1 hit).
func (h *Hierarchy) Access(va mem.Addr) uint64 {
	vpn := h.page.PageOf(va)
	if h.dtlb1.access(vpn) {
		return 0
	}
	if h.tlb2.access(vpn) {
		return TLB2HitPenalty
	}
	h.Walks++
	return TLB2HitPenalty + PageWalkPenalty
}

// ProbeTLB2 reports whether the page of va is present in the TLB2 without
// allocating on miss. The DL1 stride prefetcher uses this and drops the
// prefetch when it returns false.
func (h *Hierarchy) ProbeTLB2(va mem.Addr) bool {
	return h.tlb2.probe(h.page.PageOf(va))
}

// DTLB1Misses returns the number of DTLB1 misses observed.
func (h *Hierarchy) DTLB1Misses() uint64 { return h.dtlb1.misses }

// TLB2Misses returns the number of TLB2 misses observed.
func (h *Hierarchy) TLB2Misses() uint64 { return h.tlb2.misses }

// LevelState is one TLB level's serialized contents: the resident VPNs with
// their LRU stamps (sorted by VPN so encoding is byte-stable — the live
// structure is a map) plus the level's clock and counters.
type LevelState struct {
	VPNs   []uint64
	Stamps []uint64
	Clock  uint64
	Hits   uint64
	Misses uint64
}

// State is the serialized state of one TLB hierarchy.
type State struct {
	DTLB1 LevelState
	TLB2  LevelState
	Walks uint64
}

func (t *tlbLevel) saveState() LevelState {
	vpns := append([]uint64(nil), t.vpns...)
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	st := LevelState{VPNs: vpns, Stamps: make([]uint64, len(vpns)),
		Clock: t.clock, Hits: t.hits, Misses: t.misses}
	for i, v := range vpns {
		st.Stamps[i] = t.stamps[t.slot[v]]
	}
	return st
}

func (t *tlbLevel) restoreState(st LevelState) error {
	if len(st.VPNs) != len(st.Stamps) {
		return fmt.Errorf("tlb: %d VPNs but %d stamps", len(st.VPNs), len(st.Stamps))
	}
	if len(st.VPNs) > t.entries {
		return fmt.Errorf("tlb: state has %d entries, level holds %d", len(st.VPNs), t.entries)
	}
	slot := make(map[uint64]int, t.entries)
	for i, v := range st.VPNs {
		if _, dup := slot[v]; dup {
			return fmt.Errorf("tlb: duplicate VPN %#x in state", v)
		}
		slot[v] = i
	}
	t.slot = slot
	t.vpns = append(t.vpns[:0], st.VPNs...)
	t.stamps = append(t.stamps[:0], st.Stamps...)
	t.clock, t.hits, t.misses = st.Clock, st.Hits, st.Misses
	return nil
}

// SaveState serializes the hierarchy's resident translations and counters.
func (h *Hierarchy) SaveState() State {
	return State{DTLB1: h.dtlb1.saveState(), TLB2: h.tlb2.saveState(), Walks: h.Walks}
}

// RestoreState replaces the hierarchy's state with a previously saved one.
func (h *Hierarchy) RestoreState(st State) error {
	if err := h.dtlb1.restoreState(st.DTLB1); err != nil {
		return fmt.Errorf("DTLB1: %w", err)
	}
	if err := h.tlb2.restoreState(st.TLB2); err != nil {
		return fmt.Errorf("TLB2: %w", err)
	}
	h.Walks = st.Walks
	return nil
}

// ResetStats clears the walk and hit/miss counters, keeping the resident
// translations (warmup barrier semantics).
func (h *Hierarchy) ResetStats() {
	h.Walks = 0
	h.dtlb1.hits, h.dtlb1.misses = 0, 0
	h.tlb2.hits, h.tlb2.misses = 0, 0
}
