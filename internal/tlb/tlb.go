// Package tlb models the data-TLB hierarchy of the baseline
// microarchitecture (Table 1: DTLB1 64 entries, shared TLB2 512 entries).
// TLB behaviour is what differentiates the paper's 4KB-page and 4MB-page
// baselines (Figure 2): with large pages nearly every access hits the DTLB1,
// while 4KB pages make large-working-set benchmarks pay frequent TLB2
// lookups and page walks.
//
// The L2 prefetchers never consult the TLB (paper section 5.6); the DL1
// stride prefetcher does, and drops prefetches that miss in the TLB2
// (section 5.5).
package tlb

import "bopsim/internal/mem"

// Latencies added to a memory access on the corresponding TLB outcome, in
// core cycles. A DTLB1 hit is folded into the DL1 access latency.
const (
	TLB2HitPenalty  = 7
	PageWalkPenalty = 50
)

// tlbLevel is one fully-associative translation buffer with true LRU.
type tlbLevel struct {
	entries int
	stamps  map[uint64]uint64
	clock   uint64
	hits    uint64
	misses  uint64
}

func newTLBLevel(entries int) *tlbLevel {
	return &tlbLevel{entries: entries, stamps: make(map[uint64]uint64, entries)}
}

// access looks up vpn, refreshing LRU state; insert on miss.
func (t *tlbLevel) access(vpn uint64) (hit bool) {
	t.clock++
	if _, ok := t.stamps[vpn]; ok {
		t.stamps[vpn] = t.clock
		t.hits++
		return true
	}
	t.misses++
	t.insert(vpn)
	return false
}

// probe looks up vpn without inserting on miss (used by the DL1 stride
// prefetcher's TLB2 check, which drops the prefetch on a miss rather than
// walking the page table).
func (t *tlbLevel) probe(vpn uint64) bool {
	if _, ok := t.stamps[vpn]; ok {
		t.clock++
		t.stamps[vpn] = t.clock
		return true
	}
	return false
}

func (t *tlbLevel) insert(vpn uint64) {
	if len(t.stamps) >= t.entries {
		victim, best := uint64(0), ^uint64(0)
		for v, s := range t.stamps {
			if s < best {
				victim, best = v, s
			}
		}
		delete(t.stamps, victim)
	}
	t.stamps[vpn] = t.clock
}

// Hierarchy is a per-core DTLB1 backed by a TLB2.
type Hierarchy struct {
	page  mem.PageSize
	dtlb1 *tlbLevel
	tlb2  *tlbLevel
	// Walks counts page-table walks (TLB2 misses on demand accesses).
	Walks uint64
}

// New returns a TLB hierarchy for the given page size with the baseline
// entry counts (DTLB1 64, TLB2 512).
func New(page mem.PageSize) *Hierarchy {
	return &Hierarchy{page: page, dtlb1: newTLBLevel(64), tlb2: newTLBLevel(512)}
}

// NewWithSizes returns a TLB hierarchy with custom entry counts, for tests
// and sensitivity studies.
func NewWithSizes(page mem.PageSize, dtlb1, tlb2 int) *Hierarchy {
	return &Hierarchy{page: page, dtlb1: newTLBLevel(dtlb1), tlb2: newTLBLevel(tlb2)}
}

// Access translates the virtual address of a demand load/store and returns
// the extra latency in cycles caused by TLB misses (0 on a DTLB1 hit).
func (h *Hierarchy) Access(va mem.Addr) uint64 {
	vpn := h.page.PageOf(va)
	if h.dtlb1.access(vpn) {
		return 0
	}
	if h.tlb2.access(vpn) {
		return TLB2HitPenalty
	}
	h.Walks++
	return TLB2HitPenalty + PageWalkPenalty
}

// ProbeTLB2 reports whether the page of va is present in the TLB2 without
// allocating on miss. The DL1 stride prefetcher uses this and drops the
// prefetch when it returns false.
func (h *Hierarchy) ProbeTLB2(va mem.Addr) bool {
	return h.tlb2.probe(h.page.PageOf(va))
}

// DTLB1Misses returns the number of DTLB1 misses observed.
func (h *Hierarchy) DTLB1Misses() uint64 { return h.dtlb1.misses }

// TLB2Misses returns the number of TLB2 misses observed.
func (h *Hierarchy) TLB2Misses() uint64 { return h.tlb2.misses }
