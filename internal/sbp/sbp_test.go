package sbp

import (
	"testing"
	"testing/quick"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

func miss(line mem.LineAddr) prefetch.AccessInfo {
	return prefetch.AccessInfo{Line: line}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(2048, 3)
	f := func(x uint64) bool {
		l := mem.LineAddr(x)
		b.Add(l)
		return b.Contains(l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomReset(t *testing.T) {
	b := NewBloom(2048, 3)
	b.Add(42)
	b.Reset()
	if b.Contains(42) {
		t.Error("element survived Reset")
	}
}

func TestBloomFalsePositiveRateReasonable(t *testing.T) {
	b := NewBloom(2048, 3)
	for i := mem.LineAddr(0); i < 256; i++ {
		b.Add(i * 7)
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains(mem.LineAddr(1<<30 + i)) {
			fp++
		}
	}
	// 256 elements in 2048 bits with 3 hashes: theoretical FP ~ 3%.
	if rate := float64(fp) / probes; rate > 0.15 {
		t.Errorf("false positive rate %.3f too high", rate)
	}
}

func TestBloomValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { NewBloom(0, 3) },
		func() { NewBloom(1000, 3) },
		func() { NewBloom(2048, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Bloom shape did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestNoPrefetchBeforeFirstEvaluation(t *testing.T) {
	p := New(mem.Page4M, DefaultParams())
	if got := p.OnAccess(miss(100)); got != nil {
		t.Errorf("prefetched before any evaluation completed: %v", got)
	}
}

// drive feeds n eligible misses of a stream with the given stride.
func drive(p *Prefetcher, start, stride mem.LineAddr, n int) {
	x := start
	for i := 0; i < n; i++ {
		p.OnAccess(miss(x))
		x += stride
	}
}

func TestSelectsOffsetsOnSequentialStream(t *testing.T) {
	params := DefaultParams()
	p := New(mem.Page4M, params)
	// One full evaluation pass = 52 candidates x 256 accesses.
	drive(p, 0, 1, len(params.Offsets)*params.Period+10)
	if p.Stats().Evaluations == 0 {
		t.Fatal("no evaluation pass completed")
	}
	active := p.ActiveOffsets()
	if len(active) == 0 {
		t.Fatal("no active offsets after a perfect sequential stream")
	}
	// Small offsets must be selected at high degree on a sequential stream.
	if deg, ok := active[1]; !ok || deg < 2 {
		t.Errorf("offset 1 degree = %d (ok=%v), want >= 2", deg, ok)
	}
}

func TestNoActiveOffsetsOnRandomPattern(t *testing.T) {
	params := DefaultParams()
	p := New(mem.Page4K, params)
	seed := uint64(7)
	for i := 0; i < len(params.Offsets)*params.Period+10; i++ {
		seed = mem.Mix64(seed)
		p.OnAccess(miss(mem.LineAddr(seed % (1 << 40))))
	}
	if n := len(p.ActiveOffsets()); n != 0 {
		t.Errorf("%d offsets active on random traffic", n)
	}
}

func TestIgnoresIneligibleAccesses(t *testing.T) {
	p := New(mem.Page4M, DefaultParams())
	before := p.Stats().FakeAdds
	p.OnAccess(prefetch.AccessInfo{Line: 5, Hit: true})
	if p.Stats().FakeAdds != before {
		t.Error("plain hit added a fake prefetch")
	}
}

func TestIssueCapRespected(t *testing.T) {
	params := DefaultParams()
	params.MaxIssue = 2
	p := New(mem.Page4M, params)
	drive(p, 0, 1, len(params.Offsets)*params.Period+10)
	got := p.OnAccess(miss(1 << 20))
	if len(got) > 2 {
		t.Errorf("issued %d prefetches, cap is 2", len(got))
	}
}

func TestPageBoundaryRespected(t *testing.T) {
	params := DefaultParams()
	p := New(mem.Page4K, params)
	drive(p, 0, 1, len(params.Offsets)*params.Period+10)
	// Access the last line of a page: no prefetch may cross.
	got := p.OnAccess(miss(63))
	for _, l := range got {
		if !mem.Page4K.SamePage(63, l) {
			t.Errorf("prefetch %d crosses the page boundary", l)
		}
	}
}

func TestStridedStreamSelectsMultiples(t *testing.T) {
	params := DefaultParams()
	p := New(mem.Page4M, params)
	drive(p, 0, 3, len(params.Offsets)*params.Period+10)
	active := p.ActiveOffsets()
	if len(active) == 0 {
		t.Fatal("no active offsets on a stride-3 stream")
	}
	// Multiples of 3 cover the stream directly and must reach the top
	// degree; non-multiples can pick up partial credit through the X-2D and
	// X-3D lookahead checks (that imprecision is inherent to the sandbox
	// method) but must stay below degree 2.
	if deg := active[3]; deg != 3 {
		t.Errorf("offset 3 degree = %d, want 3", deg)
	}
	for off, deg := range active {
		if off%3 != 0 && deg >= 2 {
			t.Errorf("non-multiple offset %d reached degree %d", off, deg)
		}
	}
}

func TestTimelinessBlindness(t *testing.T) {
	// The defining weakness of SBP (the paper's motivation): the sandbox
	// cannot distinguish a timely offset from a late one, so a sequential
	// stream yields a high score for offset 1 regardless of memory latency.
	// Verify offset 1 is active: BO under the same conditions with a lagged
	// RR table would avoid it (see core's TestTimelinessPushesOffsetUp).
	params := DefaultParams()
	p := New(mem.Page4M, params)
	drive(p, 0, 1, len(params.Offsets)*params.Period+10)
	if _, ok := p.ActiveOffsets()[1]; !ok {
		t.Error("offset 1 not active: sandbox scoring should be latency-blind")
	}
}

func TestDefaultParamsShape(t *testing.T) {
	p := DefaultParams()
	if p.BloomBits != 2048 || p.BloomHash != 3 || p.Period != 256 {
		t.Errorf("DefaultParams = %+v does not match section 6.3", p)
	}
	if len(p.Offsets) != 52 {
		t.Errorf("offset list has %d entries, want 52", len(p.Offsets))
	}
}
