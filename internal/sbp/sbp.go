// Package sbp implements the Sandbox prefetcher of Pugsley et al. (HPCA
// 2014) as adapted by the BO paper for a like-for-like comparison (section
// 6.3): the same 52-offset candidate list as BO, a 2048-bit Bloom filter
// "sandbox" with 3 hash functions, and an evaluation period of 256 eligible
// L2 accesses per candidate offset.
//
// During the evaluation of candidate d, every eligible access X adds a fake
// prefetch X+d to the sandbox and scores the candidate by checking the
// sandbox for X, X-D, X-2D and X-3D (one point per hit) — the lookahead
// checks are how SBP compensates for not measuring timeliness: a high score
// licenses prefetching several lines ahead with the same offset. At the end
// of a full pass over all candidates, offsets whose scores clear the
// accuracy cutoffs become the active prefetch offsets, with degree 1-3 each.
package sbp

import (
	"sort"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// Params are the SBP tunables.
type Params struct {
	Offsets   []int // candidate offsets (same list as BO for comparability)
	BloomBits uint64
	BloomHash int
	Period    int // eligible accesses per candidate evaluation (256)
	MaxIssue  int // cap on prefetches issued per access
	// Cutoffs are the score thresholds, as fractions of the maximum
	// possible period score (4 checks x Period), above which an offset is
	// prefetched with degree 1, 2, 3.
	Cutoff1, Cutoff2, Cutoff3 int
}

// DefaultParams mirrors section 6.3: 52 offsets, 2048-bit Bloom filter, 3
// hashes, 256-access periods. The degree cutoffs are 25%, 50% and 75% of
// the maximum per-period score, following the original SBP's accuracy-
// cutoff scheme.
func DefaultParams() Params {
	period := 256
	max := 4 * period
	return Params{
		Offsets:   prefetch.DefaultOffsetList(),
		BloomBits: 2048,
		BloomHash: 3,
		Period:    period,
		MaxIssue:  8,
		Cutoff1:   max / 4,
		Cutoff2:   max / 2,
		Cutoff3:   3 * max / 4,
	}
}

// activeOffset is one offset selected for real prefetching.
type activeOffset struct {
	offset int
	degree int
	score  int
}

// Stats counts SBP decisions for the experiments.
type Stats struct {
	Evaluations uint64 // completed full passes over the candidate list
	Issued      uint64 // prefetch lines returned to the hierarchy
	FakeAdds    uint64
}

// Prefetcher is the Sandbox prefetcher. It implements
// prefetch.L2Prefetcher.
type Prefetcher struct {
	params Params
	page   mem.PageSize
	bloom  *Bloom

	candIdx     int   // candidate currently being evaluated
	accessCount int   // eligible accesses so far in this period
	scores      []int // score per candidate, filled during the pass

	active []activeOffset

	//bovet:allow statecodec OnAccess scratch is valid only until the next call; never learned state
	buf []mem.LineAddr // issue scratch, reused across OnAccess calls

	stats Stats
}

var _ prefetch.L2Prefetcher = (*Prefetcher)(nil)

// New returns an SBP prefetcher for the given page size.
func New(page mem.PageSize, p Params) *Prefetcher {
	if len(p.Offsets) == 0 {
		panic("sbp: empty offset list")
	}
	return &Prefetcher{
		params: p,
		page:   page,
		bloom:  NewBloom(p.BloomBits, p.BloomHash),
		scores: make([]int, len(p.Offsets)),
	}
}

// Name implements prefetch.L2Prefetcher.
func (p *Prefetcher) Name() string { return "SBP" }

// Stats returns a copy of the statistics.
func (p *Prefetcher) Stats() Stats { return p.stats }

// ActiveOffsets returns the offsets currently used for prefetching with
// their degrees, for inspection by tests and examples.
func (p *Prefetcher) ActiveOffsets() map[int]int {
	out := make(map[int]int, len(p.active))
	for _, a := range p.active {
		out[a.offset] = a.degree
	}
	return out
}

// OnAccess implements prefetch.L2Prefetcher.
//
//bovet:hotpath
func (p *Prefetcher) OnAccess(a prefetch.AccessInfo) []mem.LineAddr {
	if !a.Eligible() {
		return nil
	}
	p.evaluate(a.Line)
	return p.issue(a.Line)
}

// evaluate runs the sandbox step for the candidate under evaluation.
func (p *Prefetcher) evaluate(x mem.LineAddr) {
	d := mem.LineAddr(p.params.Offsets[p.candIdx])
	// Score: check X, X-d, X-2d, X-3d against the sandbox.
	for k := mem.LineAddr(0); k <= 3; k++ {
		back := k * d
		if x >= back && p.bloom.Contains(x-back) {
			p.scores[p.candIdx]++
		}
	}
	// Fake prefetch X+d (page-bounded like a real one).
	if t := x + d; p.page.SamePage(x, t) {
		p.bloom.Add(t)
		p.stats.FakeAdds++
	}
	p.accessCount++
	if p.accessCount < p.params.Period {
		return
	}
	// Period over: move to the next candidate with a clean sandbox.
	p.accessCount = 0
	p.bloom.Reset()
	p.candIdx++
	if p.candIdx < len(p.params.Offsets) {
		return
	}
	p.candIdx = 0
	p.selectActive()
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.stats.Evaluations++
}

// selectActive converts the pass's scores into the active offset set.
func (p *Prefetcher) selectActive() {
	p.active = p.active[:0]
	for i, s := range p.scores {
		var deg int
		switch {
		case s >= p.params.Cutoff3:
			deg = 3
		case s >= p.params.Cutoff2:
			deg = 2
		case s >= p.params.Cutoff1:
			deg = 1
		default:
			continue
		}
		p.active = append(p.active, activeOffset{offset: p.params.Offsets[i], degree: deg, score: s})
	}
	// Highest-scoring offsets first so the per-access issue cap keeps the
	// best candidates.
	//bovet:allow hotalloc selectActive runs once per full candidate pass (~13k eligible accesses), off the steady-state path
	sort.Slice(p.active, func(i, j int) bool { return p.active[i].score > p.active[j].score })
}

// issue emits real prefetches for the active offsets, capped at MaxIssue
// lines per access. Redundant requests are filtered downstream by the L2
// tag check and the associative queue searches (section 6.3).
func (p *Prefetcher) issue(x mem.LineAddr) []mem.LineAddr {
	if len(p.active) == 0 {
		return nil
	}
	out := p.buf[:0]
	for _, a := range p.active {
		for k := 1; k <= a.degree; k++ {
			t := x + mem.LineAddr(a.offset*k)
			if !p.page.SamePage(x, t) {
				break
			}
			out = append(out, t)
			if len(out) >= p.params.MaxIssue {
				p.stats.Issued += uint64(len(out))
				p.buf = out
				return out
			}
		}
	}
	p.stats.Issued += uint64(len(out))
	p.buf = out
	return out
}

// OnFill implements prefetch.L2Prefetcher; SBP learns only from its
// sandbox, not from fills.
//
//bovet:hotpath
func (p *Prefetcher) OnFill(mem.LineAddr, bool) {}
