package sbp

import "bopsim/internal/mem"

// Bloom is the sandbox: a Bloom filter recording "fake" prefetches. The
// paper's SBP variant uses a 2048-bit filter indexed with 3 hash functions
// (section 6.3). A Bloom filter never produces false negatives, so every
// fake prefetch that would have been useful is credited; rare false
// positives slightly flatter the candidate, which is inherent to the
// sandbox method.
type Bloom struct {
	words  []uint64
	nbits  uint64
	hashes int
}

// NewBloom returns a filter with nbits bits (power of two) and k hashes.
func NewBloom(nbits uint64, k int) *Bloom {
	if nbits == 0 || nbits&(nbits-1) != 0 {
		panic("sbp: Bloom size must be a power of two")
	}
	if k <= 0 {
		panic("sbp: Bloom needs at least one hash")
	}
	return &Bloom{words: make([]uint64, nbits/64), nbits: nbits, hashes: k}
}

// bitFor derives the i-th bit position for line.
func (b *Bloom) bitFor(line mem.LineAddr, i int) uint64 {
	return mem.Mix64(uint64(line)*2654435761+uint64(i)*0x9e3779b97f4a7c15) & (b.nbits - 1)
}

// Add records a fake prefetch of line.
func (b *Bloom) Add(line mem.LineAddr) {
	for i := 0; i < b.hashes; i++ {
		bit := b.bitFor(line, i)
		b.words[bit/64] |= 1 << (bit % 64)
	}
}

// Contains reports whether line may have been added (no false negatives).
func (b *Bloom) Contains(line mem.LineAddr) bool {
	for i := 0; i < b.hashes; i++ {
		bit := b.bitFor(line, i)
		if b.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Reset clears the filter (done at every evaluation-period boundary).
func (b *Bloom) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}
