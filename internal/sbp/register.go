package sbp

import (
	"fmt"

	"bopsim/internal/mem"
	"bopsim/internal/prefetch"
)

// PreIssueTagCheck implements prefetch.PreIssueTagChecker: the paper adds
// an extra L2 tag lookup before issuing SBP's degree-N request streams
// (section 6.3).
func (p *Prefetcher) PreIssueTagCheck() bool { return true }

var _ prefetch.PreIssueTagChecker = (*Prefetcher)(nil)

// Spec registration: "sbp" with the section 6.3 defaults. Every parameter
// default — including the degree cutoffs — is a fixed value, never derived
// from another parameter: the registry's Normalize drops parameters
// spelled with their default, so a derived default would silently rewrite
// explicit settings (e.g. "period=128,cutoff1=256" must not normalize to
// "period=128"). Callers shrinking the period below the default should
// therefore spell the cutoffs they want.
func init() {
	def := DefaultParams()
	prefetch.RegisterL2("sbp", prefetch.Definition[prefetch.L2Prefetcher]{
		Help:     "Sandbox prefetcher (Pugsley et al.) as adapted in section 6.3",
		Build:    buildSpec,
		Validate: func(v prefetch.Values) error { _, err := buildSpec(mem.Page4K, v); return err },
		Defaults: map[string]string{
			"period":   fmt.Sprint(def.Period),
			"bits":     fmt.Sprint(def.BloomBits),
			"hashes":   fmt.Sprint(def.BloomHash),
			"maxissue": fmt.Sprint(def.MaxIssue),
			"cutoff1":  fmt.Sprint(def.Cutoff1),
			"cutoff2":  fmt.Sprint(def.Cutoff2),
			"cutoff3":  fmt.Sprint(def.Cutoff3),
			"offsets":  prefetch.FormatInts(def.Offsets),
		},
	})
}

// buildSpec parses and validates sbp's spec parameters and constructs the
// prefetcher; the registered Validate hook delegates here (construction is
// cheap), so a spec Normalize accepts is always constructible.
func buildSpec(page mem.PageSize, v prefetch.Values) (prefetch.L2Prefetcher, error) {
	p := DefaultParams()
	var err error
	p.Period = v.Int("period", p.Period, &err)
	bits := v.Int("bits", int(p.BloomBits), &err)
	p.BloomHash = v.Int("hashes", p.BloomHash, &err)
	p.MaxIssue = v.Int("maxissue", p.MaxIssue, &err)
	p.Cutoff1 = v.Int("cutoff1", p.Cutoff1, &err)
	p.Cutoff2 = v.Int("cutoff2", p.Cutoff2, &err)
	p.Cutoff3 = v.Int("cutoff3", p.Cutoff3, &err)
	p.Offsets = v.Ints("offsets", p.Offsets, &err)
	if err != nil {
		return nil, err
	}
	if bits < 1 || bits&(bits-1) != 0 {
		return nil, fmt.Errorf("bits=%d must be a positive power of two", bits)
	}
	p.BloomBits = uint64(bits)
	if p.Period < 1 || p.BloomHash < 1 || p.MaxIssue < 1 {
		return nil, fmt.Errorf("period, hashes and maxissue must be >= 1")
	}
	if len(p.Offsets) == 0 {
		return nil, fmt.Errorf("offsets must not be empty")
	}
	return New(page, p), nil
}
