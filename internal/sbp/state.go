package sbp

import (
	"fmt"

	"bopsim/internal/prefetch"
)

var _ prefetch.StateCodec = (*Prefetcher)(nil)

// activeState mirrors activeOffset with exported fields.
type activeState struct {
	Offset int
	Degree int
	Score  int
}

// sbpState mirrors the prefetcher's sandbox and evaluation state.
type sbpState struct {
	Bloom       []uint64
	CandIdx     int
	AccessCount int
	Scores      []int
	Active      []activeState
	Stats       Stats
}

// SaveState implements prefetch.StateCodec.
func (p *Prefetcher) SaveState() ([]byte, error) {
	st := sbpState{
		Bloom:       append([]uint64(nil), p.bloom.words...),
		CandIdx:     p.candIdx,
		AccessCount: p.accessCount,
		Scores:      append([]int(nil), p.scores...),
		Stats:       p.stats,
	}
	for _, a := range p.active {
		st.Active = append(st.Active, activeState{Offset: a.offset, Degree: a.degree, Score: a.score})
	}
	return prefetch.MarshalState(st)
}

// RestoreState implements prefetch.StateCodec.
func (p *Prefetcher) RestoreState(data []byte) error {
	var st sbpState
	if err := prefetch.UnmarshalState(data, &st); err != nil {
		return err
	}
	if len(st.Bloom) != len(p.bloom.words) {
		return fmt.Errorf("sbp: state sandbox has %d words, filter has %d", len(st.Bloom), len(p.bloom.words))
	}
	if len(st.Scores) != len(p.scores) {
		return fmt.Errorf("sbp: state has %d scores, prefetcher tests %d offsets", len(st.Scores), len(p.scores))
	}
	if st.CandIdx < 0 || st.CandIdx >= len(p.params.Offsets) {
		return fmt.Errorf("sbp: candidate cursor %d out of range 0..%d", st.CandIdx, len(p.params.Offsets)-1)
	}
	if st.AccessCount < 0 || st.AccessCount >= p.params.Period {
		return fmt.Errorf("sbp: access count %d out of range 0..%d", st.AccessCount, p.params.Period-1)
	}
	active := make([]activeOffset, 0, len(st.Active))
	for i, a := range st.Active {
		if a.Degree < 1 || a.Degree > 3 {
			return fmt.Errorf("sbp: active offset %d has degree %d, want 1..3", i, a.Degree)
		}
		active = append(active, activeOffset{offset: a.Offset, degree: a.Degree, score: a.Score})
	}
	copy(p.bloom.words, st.Bloom)
	copy(p.scores, st.Scores)
	p.candIdx = st.CandIdx
	p.accessCount = st.AccessCount
	p.active = active
	p.stats = st.Stats
	return nil
}
